#!/bin/sh
# obs_smoke_serve.sh — end-to-end smoke test of the live observability
# server: start cmd/lockmon serving on an ephemeral port, run the
# contended bankmt workload under it, then scrape every /debug endpoint
# and validate what comes back:
#
#   * /metrics must expose both telemetry and per-site lockprof series;
#   * /debug/vars must be JSON with telemetry and lockprof sections;
#   * /debug/lockprof/top must report at least two distinct lock sites
#     (the bankmt acceptance shape: distinct transfer call sites);
#   * /debug/pprof/lockcontention must be a profile that `go tool
#     pprof -raw` accepts, with contentions/delay sample types;
#   * /debug/lockscope/series must hold >= 2 windows with nonzero
#     slow-path rate (the run is sampled live via -scope), in both JSON
#     and CSV form;
#   * /debug/lockscope/stream must answer text/event-stream and deliver
#     >= 2 framed sample events;
#   * /debug/lockscope/ must serve the self-contained HTML dashboard.
#
# It then runs cmd/macrobench -timeseries over bankmt and sessiond and
# validates the per-workload phase timelines it writes.
#
# Usage: scripts/obs_smoke_serve.sh [outdir]   (default results/obs)
set -eu

GO="${GO:-go}"
OUT="${1:-results/obs}"
mkdir -p "$OUT"

SRV_LOG="$OUT/serve.log"
PROFILE="$OUT/lockcontention.pb.gz"

# The binary lives outside $OUT so CI artifact uploads of the results
# directory stay small.
BIN_DIR=$(mktemp -d)
"$GO" build -o "$BIN_DIR/lockmon" ./cmd/lockmon

# -repeat grows the sample population and stretches the run across many
# 50ms lockscope windows; -scope samples it live; -hold keeps the server
# up for the scrapes below; -serve 127.0.0.1:0 picks a free port and
# prints it.
"$BIN_DIR/lockmon" -workload bankmt -repeat 400 -scope -interval 50ms \
    -serve 127.0.0.1:0 -hold 60s \
    >"$SRV_LOG" 2>&1 &
SRV_PID=$!
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$BIN_DIR"' EXIT INT TERM

# Wait for the "serving on http://..." line, then for the workload
# report (the run is complete once the top-sites table is printed).
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^lockmon: serving on http:\/\/\(.*\)$/\1/p' "$SRV_LOG" | head -n 1)
    [ -n "$ADDR" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || { echo "FAIL: lockmon exited early:"; cat "$SRV_LOG"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: server address never appeared in $SRV_LOG"; exit 1; }
echo "serving on $ADDR"

for _ in $(seq 1 300); do
    grep -q "Top .* lock sites" "$SRV_LOG" && break
    kill -0 "$SRV_PID" 2>/dev/null || { echo "FAIL: lockmon exited before finishing:"; cat "$SRV_LOG"; exit 1; }
    sleep 0.1
done
grep -q "Top .* lock sites" "$SRV_LOG" || { echo "FAIL: workload never finished"; cat "$SRV_LOG"; exit 1; }

fetch() {
    curl -fsS --max-time 10 "http://$ADDR$1"
}

# /metrics: telemetry counters and site-labelled lockprof series.
METRICS=$(fetch /metrics)
echo "$METRICS" | grep -q '^thinlock_slow_path_entries_total ' \
    || { echo "FAIL: /metrics missing telemetry series"; exit 1; }
echo "$METRICS" | grep -q '^thinlock_lockprof_slow_entries_total{site=' \
    || { echo "FAIL: /metrics missing lockprof site series"; exit 1; }
echo "$METRICS" | grep -q '# TYPE thinlock_lockprof_inflations_total counter' \
    || { echo "FAIL: /metrics missing inflation family"; exit 1; }

# /debug/vars: merged JSON (python stdlib is available in CI runners;
# fall back to a shape grep when it is not).
VARS=$(fetch /debug/vars)
if command -v python3 >/dev/null 2>&1; then
    echo "$VARS" | python3 -c '
import json, sys
v = json.load(sys.stdin)
assert "telemetry" in v and "lockprof" in v, list(v)
assert v["lockprof"]["sites"], "no lockprof sites in /debug/vars"
'
else
    echo "$VARS" | grep -q '"lockprof"' || { echo "FAIL: /debug/vars missing lockprof"; exit 1; }
fi

# /debug/lockprof/top: the acceptance criterion — at least two distinct
# contended sites from the bankmt run.
TOP=$(fetch "/debug/lockprof/top?n=20")
echo "$TOP" | head -n 3
SITES=$(echo "$TOP" | sed -n 's/^lockprof: \([0-9][0-9]*\) sites.*/\1/p')
[ -n "$SITES" ] || { echo "FAIL: /debug/lockprof/top has no header"; echo "$TOP"; exit 1; }
[ "$SITES" -ge 2 ] || { echo "FAIL: only $SITES lock site(s) recorded, want >= 2"; echo "$TOP"; exit 1; }

# /debug/pprof/lockcontention: must be accepted by go tool pprof.
fetch /debug/pprof/lockcontention >"$PROFILE"
RAW=$("$GO" tool pprof -raw "$PROFILE")
echo "$RAW" | grep -q 'contentions/count delay/nanoseconds' \
    || { echo "FAIL: pprof -raw sample types wrong"; echo "$RAW" | head; exit 1; }
echo "$RAW" | grep -q 'Samples' \
    || { echo "FAIL: pprof -raw has no samples section"; exit 1; }

# /debug/lockscope/series: the acceptance shape — at least two sampled
# windows whose slow-path rate is nonzero (the contended bankmt run
# spans many 50ms windows).
SERIES=$(fetch /debug/lockscope/series)
if command -v python3 >/dev/null 2>&1; then
    echo "$SERIES" | python3 -c '
import json, sys
v = json.load(sys.stdin)
samples = v.get("samples") or []
assert len(samples) >= 2, f"only {len(samples)} lockscope windows"
busy = sum(1 for s in samples if s["slow_per_sec"] > 0)
assert busy >= 2, f"only {busy} windows with nonzero slow-path rate"
print(f"lockscope: {len(samples)} windows, {busy} with activity")
'
else
    echo "$SERIES" | grep -q '"slow_per_sec"' \
        || { echo "FAIL: /debug/lockscope/series has no samples"; exit 1; }
fi

# CSV form: the fixed header plus at least two data rows.
CSV=$(fetch "/debug/lockscope/series?format=csv")
echo "$CSV" | head -n 1 | grep -q '^index,at_ns,window_ns,slow_per_sec' \
    || { echo "FAIL: lockscope CSV header wrong"; echo "$CSV" | head -n 1; exit 1; }
CSV_ROWS=$(echo "$CSV" | wc -l)
[ "$CSV_ROWS" -ge 3 ] || { echo "FAIL: lockscope CSV has $CSV_ROWS lines, want >= 3"; exit 1; }

# /debug/lockscope/stream: server-sent events. The sampler keeps
# ticking through -hold, so two seconds of listening must deliver
# several framed samples; curl exits 28 when --max-time cuts the
# (endless) stream, which is the expected way out.
STREAM_CT=$(curl -s --max-time 2 -o "$OUT/stream.sse" -w '%{content_type}' \
    "http://$ADDR/debug/lockscope/stream" || true)
case "$STREAM_CT" in
    text/event-stream*) ;;
    *) echo "FAIL: stream Content-Type is '$STREAM_CT', want text/event-stream"; exit 1 ;;
esac
SSE_EVENTS=$(grep -c '^event: sample' "$OUT/stream.sse" || true)
SSE_DATA=$(grep -c '^data: ' "$OUT/stream.sse" || true)
[ "$SSE_EVENTS" -ge 2 ] && [ "$SSE_DATA" -ge 2 ] \
    || { echo "FAIL: stream delivered $SSE_EVENTS sample events / $SSE_DATA data frames, want >= 2"; exit 1; }
echo "lockscope stream: $SSE_EVENTS sample events in 2s"

# /debug/lockscope/: the self-contained dashboard.
fetch /debug/lockscope/ | grep -q '<!DOCTYPE html>' \
    || { echo "FAIL: lockscope dashboard is not HTML"; exit 1; }

kill "$SRV_PID" 2>/dev/null || true
wait "$SRV_PID" 2>/dev/null || true
trap - EXIT INT TERM

# macrobench -timeseries: per-phase contention timelines for the two
# concurrent acceptance workloads.
"$GO" build -o "$BIN_DIR/macrobench" ./cmd/macrobench
"$BIN_DIR/macrobench" -only bankmt,sessiond -samples 1 -scale 0.5 \
    -timeseries -timeseries-interval 5ms -timeseries-dir "$OUT" \
    >"$OUT/macrobench.log" 2>&1 \
    || { echo "FAIL: macrobench -timeseries:"; cat "$OUT/macrobench.log"; exit 1; }
for W in bankmt sessiond; do
    TS="$OUT/timeseries_$W.json"
    [ -f "$TS" ] || { echo "FAIL: $TS not written"; exit 1; }
    if command -v python3 >/dev/null 2>&1; then
        python3 -c '
import json, sys
path = sys.argv[1]
v = json.load(open(path))
phases = v["phases"]
assert phases, f"{path}: no phases"
total = sum(len(p["samples"] or []) for p in phases)
assert total >= 2, f"{path}: only {total} samples across phases"
impls = ", ".join(p["impl"] for p in phases)
print(f"{path}: {len(phases)} phases ({impls}), {total} samples")
' "$TS"
    else
        grep -q '"phases"' "$TS" || { echo "FAIL: $TS has no phases"; exit 1; }
    fi
done

rm -rf "$BIN_DIR"

echo "OK: obs serve smoke passed ($SITES sites, $SSE_EVENTS streamed samples, profile at $PROFILE)"
