#!/bin/sh
# deadlock_smoke.sh — end-to-end smoke test of the lock-order watchdog:
#
#   1. the abba workload under -lockdep must be flagged as a lock-order
#      inversion (ABBA caught from the orders alone — nothing hangs);
#   2. the safe dining workload under -lockdep must stay silent: heavy
#      nesting and contention with a consistent order is NOT a finding;
#   3. the dining-deadlock hazard workload under -watchdog must park all
#      five philosophers, and the stall dump must name every one of
#      them, the wait-for cycle, and exit with status 3;
#   4. the disabled-path overhead tests must pass: lockdep off is one
#      atomic load and zero allocations on the lock fast path.
#
# Usage: scripts/deadlock_smoke.sh [outdir]   (default results/deadlock)
set -eu

GO="${GO:-go}"
OUT="${1:-results/deadlock}"
mkdir -p "$OUT"

BIN_DIR=$(mktemp -d)
trap 'rm -rf "$BIN_DIR"' EXIT INT TERM
# A real binary, not `go run`: the watchdog exits 3 and `go run` folds
# every nonzero child status into its own exit 1.
"$GO" build -o "$BIN_DIR/lockmon" ./cmd/lockmon

echo "== 1/4 abba: latent inversion must be flagged without a hang"
"$BIN_DIR/lockmon" -workload abba -lockdep -top 0 >"$OUT/abba.log" 2>&1
grep -q "lock-order inversion #1" "$OUT/abba.log" \
    || { echo "FAIL: abba run did not report the inversion"; cat "$OUT/abba.log"; exit 1; }
grep -q "GuardA#" "$OUT/abba.log" && grep -q "GuardB#" "$OUT/abba.log" \
    || { echo "FAIL: inversion report does not name both guards"; cat "$OUT/abba.log"; exit 1; }

echo "== 2/4 dining (ordered): contended nesting must stay silent"
"$BIN_DIR/lockmon" -workload dining -lockdep -top 0 >"$OUT/dining.log" 2>&1
grep -q "no lock-order inversions or wait-for cycles observed" "$OUT/dining.log" \
    || { echo "FAIL: ordered dining was not clean"; cat "$OUT/dining.log"; exit 1; }
if grep -q "lock-order inversion #" "$OUT/dining.log"; then
    echo "FAIL: false positive on ordered dining"; cat "$OUT/dining.log"; exit 1
fi

echo "== 3/4 dining-deadlock: watchdog must dump the cycle and exit 3"
STATUS=0
timeout 120 "$BIN_DIR/lockmon" -workload dining-deadlock \
    -impl ThinLock-queued -watchdog 2s -top 0 \
    >"$OUT/deadlock.log" 2>&1 || STATUS=$?
[ "$STATUS" -eq 3 ] \
    || { echo "FAIL: watchdog run exited $STATUS, want 3"; cat "$OUT/deadlock.log"; exit 1; }
grep -q "lockdep stall dump" "$OUT/deadlock.log" \
    || { echo "FAIL: no stall dump in output"; cat "$OUT/deadlock.log"; exit 1; }
grep -q "wait-for cycle (5 threads deadlocked)" "$OUT/deadlock.log" \
    || { echo "FAIL: dump does not show the full 5-thread cycle"; cat "$OUT/deadlock.log"; exit 1; }
for p in 0 1 2 3 4; do
    grep -q "phil-$p#" "$OUT/deadlock.log" \
        || { echo "FAIL: dump does not name phil-$p"; cat "$OUT/deadlock.log"; exit 1; }
done
grep -q "holds Fork#" "$OUT/deadlock.log" \
    || { echo "FAIL: dump does not attribute held forks"; cat "$OUT/deadlock.log"; exit 1; }

echo "== 4/4 disabled-path overhead tests"
"$GO" test -run 'TestDisabledLockdep|TestEnabledSteadyState' -count=1 ./internal/lockdep/

echo "OK: deadlock smoke passed (logs in $OUT)"
