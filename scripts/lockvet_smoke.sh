#!/bin/sh
# lockvet_smoke.sh — end-to-end smoke test of the static lock checker:
#
#   1. `go vet -vettool=lockvet ./...` over the whole repo must come back
#      clean: no lock-word races, no leaked Lock/Unlock pairs, no
#      allocations in //lockvet:noalloc hot paths, no bare ignores;
#   2. every minijava corpus program must compile, pass the
#      structured-locking verifier, and carry the expected static
#      lock-order verdict (files named *abba* must cycle, others not);
#   3. the abba program must be flagged (exit 1, inversion in the
#      report) and the ordered dining program must stay silent (exit 0);
#   4. the static graph must diff against a real runtime lockdep export:
#      run the abba workload under `lockmon -lockdep-json`, feed the
#      export to `lockvet -runtime`, and require both static edges to
#      match observed runtime edges with zero static-only leftovers.
#
# Usage: scripts/lockvet_smoke.sh [outdir]   (default results/lockvet)
set -eu

GO="${GO:-go}"
OUT="${1:-results/lockvet}"
mkdir -p "$OUT"

BIN_DIR=$(mktemp -d)
trap 'rm -rf "$BIN_DIR"' EXIT INT TERM
"$GO" build -o "$BIN_DIR/lockvet" ./cmd/lockvet

echo "== 1/4 go vet -vettool: repo must be lockvet-clean"
"$GO" vet -vettool="$BIN_DIR/lockvet" ./...

echo "== 2/4 bytecode corpora: verifier + expected static verdicts"
"$BIN_DIR/lockvet" -corpus internal/minijava/testdata/programs
"$BIN_DIR/lockvet" -corpus internal/staticlock/testdata

echo "== 3/4 abba must be flagged, ordered dining must stay silent"
STATUS=0
"$BIN_DIR/lockvet" -prog internal/staticlock/testdata/abba.mj \
    -dot "$OUT/abba.dot" >"$OUT/abba.log" 2>&1 || STATUS=$?
[ "$STATUS" -eq 1 ] \
    || { echo "FAIL: abba.mj exited $STATUS, want 1"; cat "$OUT/abba.log"; exit 1; }
grep -q "lock-order inversion #1" "$OUT/abba.log" \
    || { echo "FAIL: abba report has no inversion"; cat "$OUT/abba.log"; exit 1; }
grep -q '"GuardA" -> "GuardB"' "$OUT/abba.dot" \
    || { echo "FAIL: abba DOT export is missing the A->B edge"; cat "$OUT/abba.dot"; exit 1; }
"$BIN_DIR/lockvet" -prog internal/staticlock/testdata/dining.mj >"$OUT/dining.log" 2>&1 \
    || { echo "FAIL: ordered dining was flagged"; cat "$OUT/dining.log"; exit 1; }
grep -q "0 static cycles" "$OUT/dining.log" \
    || { echo "FAIL: dining report is not clean"; cat "$OUT/dining.log"; exit 1; }

echo "== 4/4 static graph vs a real runtime lockdep export"
"$GO" run ./cmd/lockmon -workload abba -lockdep-json "$OUT/abba_runtime.json" \
    -top 0 >"$OUT/lockmon.log" 2>&1
STATUS=0
"$BIN_DIR/lockvet" -prog internal/staticlock/testdata/abba.mj \
    -runtime "$OUT/abba_runtime.json" >"$OUT/diff.log" 2>&1 || STATUS=$?
[ "$STATUS" -eq 1 ] \
    || { echo "FAIL: runtime diff run exited $STATUS, want 1 (cycles)"; cat "$OUT/diff.log"; exit 1; }
grep -q "2 matched" "$OUT/diff.log" \
    || { echo "FAIL: static edges did not match the runtime export"; cat "$OUT/diff.log"; exit 1; }
grep -q "0 static-only" "$OUT/diff.log" \
    || { echo "FAIL: static graph predicts edges the runtime never took"; cat "$OUT/diff.log"; exit 1; }

echo "OK: lockvet smoke passed (logs in $OUT)"
