// Command benchdiff compares two sets of macrobench -json results and
// fails (exit 1) when any implementation regressed beyond a threshold.
// Each side is either one bench_<workload>.json file or a directory of
// them; timings are matched on (workload, impl, param).
//
// Usage:
//
//	macrobench -json -json-dir results/base     # before a change
//	macrobench -json -json-dir results/head     # after
//	benchdiff -threshold 0.10 results/base results/head
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"thinlock/internal/bench"
)

type timingKey struct {
	Workload string
	Impl     string
	Param    int
}

func (k timingKey) String() string {
	if k.Param != 0 {
		return fmt.Sprintf("%s/%s@%d", k.Workload, k.Impl, k.Param)
	}
	return k.Workload + "/" + k.Impl
}

// diffRow is one matched timing pair. Ratio is new/old ns-per-op, so
// values above 1 are slowdowns.
type diffRow struct {
	Key        timingKey
	OldNsPerOp float64
	NewNsPerOp float64
	Ratio      float64
}

// computeDiff matches the two sides and flags every row whose slowdown
// exceeds threshold (0.10 = fail at >10% slower). Keys present on only
// one side are returned separately. A vanished benchmark (only in old)
// must be visible, not silently ignored. A key only in new is normal
// growth — a freshly added workload with no baseline committed yet —
// and is reported as a per-workload skip, never a failure: requiring a
// baseline for a brand-new benchmark would force every workload
// addition into two PRs.
func computeDiff(old, new map[timingKey]bench.JSONResult, threshold float64) (rows []diffRow, regressed []diffRow, vanished, skipped []string) {
	for k, o := range old {
		n, ok := new[k]
		if !ok {
			vanished = append(vanished, k.String())
			continue
		}
		r := diffRow{Key: k, OldNsPerOp: o.NsPerOp, NewNsPerOp: n.NsPerOp}
		if o.NsPerOp > 0 {
			r.Ratio = n.NsPerOp / o.NsPerOp
		}
		rows = append(rows, r)
		if r.Ratio > 1+threshold {
			regressed = append(regressed, r)
		}
	}
	for k := range new {
		if _, ok := old[k]; !ok {
			skipped = append(skipped, k.String())
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Ratio > rows[j].Ratio })
	sort.Slice(regressed, func(i, j int) bool { return regressed[i].Ratio > regressed[j].Ratio })
	sort.Strings(vanished)
	sort.Strings(skipped)
	return rows, regressed, vanished, skipped
}

// index flattens parsed files into the comparison map.
func index(files []bench.JSONFile) map[timingKey]bench.JSONResult {
	out := make(map[timingKey]bench.JSONResult)
	for _, f := range files {
		for _, r := range f.Results {
			out[timingKey{Workload: f.Workload, Impl: r.Impl, Param: r.Param}] = r
		}
	}
	return out
}

// load reads one bench_*.json file, or every bench_*.json in a
// directory.
func load(path string) ([]bench.JSONFile, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	paths := []string{path}
	if info.IsDir() {
		paths, err = filepath.Glob(filepath.Join(path, "bench_*.json"))
		if err != nil {
			return nil, err
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("%s: no bench_*.json files", path)
		}
		sort.Strings(paths)
	}
	var files []bench.JSONFile
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var f bench.JSONFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("%s: %v", p, err)
		}
		if f.Workload == "" {
			return nil, fmt.Errorf("%s: not a macrobench -json file (no workload field)", p)
		}
		files = append(files, f)
	}
	return files, nil
}

func provenance(files []bench.JSONFile) string {
	for _, f := range files {
		if f.GitRev != "" {
			return f.GitRev
		}
	}
	return "?"
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "fail when new/old ns-per-op exceeds 1+threshold")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold F] <old file-or-dir> <new file-or-dir>")
		os.Exit(2)
	}
	oldFiles, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newFiles, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	rows, regressed, vanished, skipped := computeDiff(index(oldFiles), index(newFiles), *threshold)
	fmt.Printf("benchdiff: old=%s new=%s threshold=%.0f%%\n",
		provenance(oldFiles), provenance(newFiles), 100**threshold)
	fmt.Printf("%-36s %14s %14s %8s\n", "benchmark/impl", "old ns/op", "new ns/op", "delta")
	fmt.Println(strings.Repeat("-", 36+14+14+8+3))
	for _, r := range rows {
		fmt.Printf("%-36s %14.0f %14.0f %+7.1f%%\n",
			r.Key, r.OldNsPerOp, r.NewNsPerOp, 100*(r.Ratio-1))
	}
	for _, v := range vanished {
		fmt.Printf("%-36s (only in old: benchmark vanished)\n", v)
	}
	for _, s := range skipped {
		fmt.Printf("SKIP %s (no baseline committed)\n", s)
	}
	if len(regressed) > 0 {
		fmt.Printf("\nFAIL: %d regression(s) beyond %.0f%%:\n", len(regressed), 100**threshold)
		for _, r := range regressed {
			fmt.Printf("  %s: %.0f -> %.0f ns/op (%+.1f%%)\n",
				r.Key, r.OldNsPerOp, r.NewNsPerOp, 100*(r.Ratio-1))
		}
		os.Exit(1)
	}
	summary := fmt.Sprintf("\nOK: no regression beyond %.0f%% across %d matched timings", 100**threshold, len(rows))
	if len(skipped) > 0 {
		summary += fmt.Sprintf(" (%d skipped: no baseline)", len(skipped))
	}
	fmt.Println(summary)
}
