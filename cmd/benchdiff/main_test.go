package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"thinlock/internal/bench"
)

func result(impl string, ns float64) bench.JSONResult {
	return bench.JSONResult{Impl: impl, NsPerOp: ns, Ops: 1000, ElapsedNs: int64(1000 * ns)}
}

func TestComputeDiffFlagsOnlyRealRegressions(t *testing.T) {
	old := map[timingKey]bench.JSONResult{
		{Workload: "bankmt", Impl: "ThinLock"}:  result("ThinLock", 100),
		{Workload: "bankmt", Impl: "JDK111"}:    result("JDK111", 400),
		{Workload: "javalex", Impl: "ThinLock"}: result("ThinLock", 50),
	}
	new := map[timingKey]bench.JSONResult{
		{Workload: "bankmt", Impl: "ThinLock"}:  result("ThinLock", 125), // +25%: regression
		{Workload: "bankmt", Impl: "JDK111"}:    result("JDK111", 420),   // +5%: within threshold
		{Workload: "javalex", Impl: "ThinLock"}: result("ThinLock", 40),  // improvement
	}
	rows, regressed, vanished, skipped := computeDiff(old, new, 0.10)
	if len(rows) != 3 || len(vanished) != 0 || len(skipped) != 0 {
		t.Fatalf("rows=%d vanished=%v skipped=%v, want 3 matched rows", len(rows), vanished, skipped)
	}
	if len(regressed) != 1 || regressed[0].Key.Workload != "bankmt" || regressed[0].Key.Impl != "ThinLock" {
		t.Fatalf("regressed = %+v, want exactly bankmt/ThinLock", regressed)
	}
	if got := regressed[0].Ratio; got < 1.24 || got > 1.26 {
		t.Errorf("ratio = %.3f, want 1.25", got)
	}
	// Rows sort worst-first so the regression leads the report.
	if rows[0].Key.Impl != "ThinLock" || rows[0].Key.Workload != "bankmt" {
		t.Errorf("worst row = %v, want bankmt/ThinLock", rows[0].Key)
	}
}

func TestComputeDiffReportsUnmatchedSides(t *testing.T) {
	old := map[timingKey]bench.JSONResult{
		{Workload: "gone", Impl: "ThinLock"}: result("ThinLock", 10),
	}
	new := map[timingKey]bench.JSONResult{
		{Workload: "added", Impl: "ThinLock"}: result("ThinLock", 10),
	}
	rows, regressed, vanished, skipped := computeDiff(old, new, 0.10)
	if len(rows) != 0 || len(regressed) != 0 {
		t.Fatalf("rows=%d regressed=%d, want none matched", len(rows), len(regressed))
	}
	if len(vanished) != 1 || vanished[0] != "gone/ThinLock" {
		t.Fatalf("vanished = %v, want [gone/ThinLock]", vanished)
	}
	if len(skipped) != 1 || skipped[0] != "added/ThinLock" {
		t.Fatalf("skipped = %v, want [added/ThinLock]", skipped)
	}
}

// A freshly added workload has head timings but no committed baseline.
// Every one of its rows must come back as a skip — never as a
// regression or a match — so growing the suite keeps exit status 0.
func TestComputeDiffSkipsWorkloadsWithNoBaseline(t *testing.T) {
	old := map[timingKey]bench.JSONResult{
		{Workload: "bankmt", Impl: "ThinLock"}: result("ThinLock", 100),
	}
	new := map[timingKey]bench.JSONResult{
		{Workload: "bankmt", Impl: "ThinLock"}: result("ThinLock", 101),
		{Workload: "dining", Impl: "ThinLock"}: result("ThinLock", 9999),
		{Workload: "dining", Impl: "JDK111"}:   result("JDK111", 9999),
		{Workload: "abba", Impl: "ThinLock"}:   result("ThinLock", 9999),
	}
	rows, regressed, vanished, skipped := computeDiff(old, new, 0.10)
	if len(rows) != 1 || len(regressed) != 0 || len(vanished) != 0 {
		t.Fatalf("rows=%d regressed=%d vanished=%v, want 1 clean match", len(rows), len(regressed), vanished)
	}
	want := []string{"abba/ThinLock", "dining/JDK111", "dining/ThinLock"}
	if len(skipped) != len(want) {
		t.Fatalf("skipped = %v, want %v", skipped, want)
	}
	for i := range want {
		if skipped[i] != want[i] {
			t.Fatalf("skipped = %v, want %v", skipped, want)
		}
	}
}

func TestComputeDiffThresholdBoundaryIsExclusive(t *testing.T) {
	old := map[timingKey]bench.JSONResult{
		{Workload: "w", Impl: "A"}: result("A", 100),
	}
	new := map[timingKey]bench.JSONResult{
		{Workload: "w", Impl: "A"}: result("A", 110), // exactly +10%
	}
	if _, regressed, _, _ := computeDiff(old, new, 0.10); len(regressed) != 0 {
		t.Errorf("exactly-at-threshold flagged as regression: %+v", regressed)
	}
}

func TestLoadFileAndDirectory(t *testing.T) {
	dir := t.TempDir()
	f := bench.JSONFile{
		Workload: "bankmt",
		GitRev:   "abc1234",
		Results:  []bench.JSONResult{result("ThinLock", 100), result("JDK111", 400)},
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "bench_bankmt.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, arg := range []string{path, dir} {
		files, err := load(arg)
		if err != nil {
			t.Fatalf("load(%s): %v", arg, err)
		}
		if len(files) != 1 || files[0].Workload != "bankmt" || len(files[0].Results) != 2 {
			t.Fatalf("load(%s) = %+v", arg, files)
		}
	}
	idx := index([]bench.JSONFile{f})
	if r, ok := idx[timingKey{Workload: "bankmt", Impl: "JDK111"}]; !ok || r.NsPerOp != 400 {
		t.Errorf("index missing bankmt/JDK111: %+v", idx)
	}

	// A directory with no bench files and a malformed file both error.
	if _, err := load(t.TempDir()); err == nil {
		t.Error("empty directory loaded without error")
	}
	bad := filepath.Join(dir, "bench_bad.json")
	if err := os.WriteFile(bad, []byte(`{"no":"workload"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(bad); err == nil {
		t.Error("file without workload field loaded without error")
	}
}
