package main

import (
	"os"
	"strings"
	"testing"

	"thinlock/internal/check"
)

// TestImplFlagUsageListsEveryImplementation pins the -impl help text to
// the live registry: adding an implementation to
// check.Implementations() must surface it in `lockcheck -help` with no
// manual edit here.
func TestImplFlagUsageListsEveryImplementation(t *testing.T) {
	usage := implFlagUsage()
	for _, name := range check.ImplementationNames() {
		if !strings.Contains(usage, name) {
			t.Errorf("-impl usage omits implementation %q: %s", name, usage)
		}
	}
	if !strings.Contains(usage, `"all"`) {
		t.Errorf("-impl usage must document the \"all\" shorthand: %s", usage)
	}
}

// TestReadmeListsEveryImplementation keeps the README's
// correctness-harness prose from drifting: every registered
// implementation name must appear somewhere in README.md.
func TestReadmeListsEveryImplementation(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readme)
	for _, name := range check.ImplementationNames() {
		if !strings.Contains(text, name) {
			t.Errorf("README.md does not mention implementation %q; update the correctness-harness section", name)
		}
	}
}

// TestSelectImpls covers the -impl/-mutate resolution paths, including
// the two biased mutations.
func TestSelectImpls(t *testing.T) {
	all, err := selectImpls("all", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(check.ImplementationNames()) {
		t.Errorf("selectImpls(all) returned %d impls, registry has %d",
			len(all), len(check.ImplementationNames()))
	}

	two, err := selectImpls("ThinLock, Biased", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 {
		t.Errorf("selectImpls subset returned %d impls, want 2", len(two))
	}

	if _, err := selectImpls("Bogus", ""); err == nil {
		t.Error("unknown implementation accepted")
	}

	for _, mutate := range []string{"overflow", "dropwake", "biasdepth", "biasdekker", "deflate-epoch", "deflate-queue"} {
		m, err := selectImpls("all", mutate)
		if err != nil {
			t.Fatalf("-mutate %s: %v", mutate, err)
		}
		if len(m) != 1 {
			t.Fatalf("-mutate %s returned %d impls, want 1", mutate, len(m))
		}
		for name, mk := range m {
			if mk() == nil {
				t.Errorf("-mutate %s factory %s built nil locker", mutate, name)
			}
		}
	}

	if _, err := selectImpls("all", "bogus"); err == nil {
		t.Error("unknown mutation accepted")
	}
}
