// Command lockcheck runs the concurrent differential checker from
// internal/check: it generates schedule-perturbed multi-threaded
// lock/unlock/wait/notify programs, executes them under the selected
// lock implementations, validates mutual exclusion, nesting balance,
// oracle agreement and monitor-table quiescence, and on failure prints
// a delta-debugged minimal program before exiting nonzero.
//
// Usage:
//
//	lockcheck [-impl all|name,name] [-threads N] [-objects N] [-ops N]
//	          [-rounds N] [-seed N] [-timeout D]
//	          [-mutate overflow|dropwake|biasdepth|biasdekker|deflate-epoch|deflate-queue]
//	          [-explore]
//
// The implementation names accepted by -impl are exactly
// check.ImplementationNames() — the -impl flag's help text lists them,
// so `lockcheck -help` is always current.
//
// -explore switches to the small-scope exhaustive mode, model checking
// every interleaving of tiny lock/unlock programs against the abstract
// lock-word state machine for every implementation variant.
//
// -mutate seeds a known protocol bug — into a thin-lock instance
// (overflow, dropwake), a biased-locking instance (biasdepth,
// biasdekker) or a compact-monitor instance (deflate-epoch,
// deflate-queue) — and checks that instead, demonstrating (in a few
// seconds) that the checker actually detects broken lock protocols;
// these runs are expected to FAIL. The deflate mutations first run the
// hand-written deflation corpus (check.DeflationCorpus), which exposes
// both deterministically at schedule seed 0.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"thinlock/internal/biased"
	"thinlock/internal/check"
	"thinlock/internal/core"
	"thinlock/internal/lockapi"
)

func main() {
	impl := flag.String("impl", "all", implFlagUsage())
	threads := flag.Int("threads", 4, "threads per generated program")
	objects := flag.Int("objects", 3, "objects per generated program")
	ops := flag.Int("ops", 30, "operations per thread")
	rounds := flag.Int("rounds", 20, "programs to generate per implementation")
	seed := flag.Int64("seed", 1, "base seed for program generation and schedule jitter")
	timeout := flag.Duration("timeout", 20*time.Second, "per-run watchdog bound")
	mutate := flag.String("mutate", "", "seed a known bug and check it: overflow | dropwake | biasdepth | biasdekker | deflate-epoch | deflate-queue")
	explore := flag.Bool("explore", false, "exhaustively model check all interleavings of tiny programs")
	flag.Parse()

	if *threads < 1 || *objects < 1 || *ops < 1 || *rounds < 1 {
		fmt.Fprintln(os.Stderr, "lockcheck: -threads, -objects, -ops and -rounds must all be >= 1")
		os.Exit(2)
	}

	if *explore {
		os.Exit(runExplore())
	}

	if *mutate == "overflow" {
		// The overflow bug needs deep nesting on one object to surface;
		// steer the default shape toward it (explicit flags still win).
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["objects"] {
			*objects = 1
		}
		if !set["threads"] {
			*threads = 2
		}
	}

	impls, err := selectImpls(*impl, *mutate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockcheck:", err)
		os.Exit(2)
	}

	// The deflation mutations break protocol steps that random programs
	// only trip over occasionally; the hand-written deflation corpus
	// exposes them deterministically, so those runs check it first.
	corpusFirst := *mutate == "deflate-epoch" || *mutate == "deflate-queue"

	failed := false
	for _, name := range sortedNames(impls) {
		mk := impls[name]
		if corpusFirst {
			fmt.Printf("%-18s deflation corpus (%d programs × %d schedule seeds) ... ",
				name, len(check.DeflationCorpus()), corpusSeeds)
			if bad := checkCorpus(mk, *timeout); bad != nil {
				failed = true
				fmt.Println("FAIL")
				fmt.Print(bad)
				continue // the corpus verdict stands; skip the random rounds
			}
			fmt.Println("ok")
		}
		fmt.Printf("%-18s %d rounds × %d threads × %d objects × %d ops ... ",
			name, *rounds, *threads, *objects, *ops)
		if bad := checkImpl(mk, *threads, *objects, *ops, *rounds, *seed, *timeout); bad != nil {
			failed = true
			fmt.Println("FAIL")
			fmt.Print(bad)
		} else {
			fmt.Println("ok")
		}
	}
	if failed {
		os.Exit(1)
	}
}

// corpusSeeds is how many schedule seeds each deflation corpus program
// runs under; the seeded deflation mutations fall to seed 0.
const corpusSeeds = 4

// checkCorpus runs the hand-written deflation corpus against one
// implementation and returns a report (nil when clean). The corpus
// programs are already minimal, so failures are reported as-is without
// delta debugging — which also keeps mutation runs fast when the
// failure kind is a stuck schedule (each stuck probe costs a full
// watchdog timeout).
func checkCorpus(mk func() lockapi.Locker, timeout time.Duration) error {
	for _, tc := range check.DeflationCorpus() {
		for seed := int64(0); seed < corpusSeeds; seed++ {
			cfg := check.DeflationCorpusConfig(seed, timeout)
			fs := check.CheckProgram(mk, tc.P, cfg)
			if len(fs) == 0 {
				continue
			}
			var b strings.Builder
			fmt.Fprintf(&b, "  corpus program %q (schedule seed %d):\n", tc.Name, seed)
			for _, f := range fs {
				fmt.Fprintf(&b, "    %v\n", f)
			}
			for _, line := range strings.Split(strings.TrimRight(tc.P.String(), "\n"), "\n") {
				fmt.Fprintf(&b, "    %s\n", line)
			}
			return fmt.Errorf("%s", b.String())
		}
	}
	return nil
}

// checkImpl runs the configured rounds against one implementation and
// returns a report (nil when clean).
func checkImpl(mk func() lockapi.Locker, threads, objects, ops, rounds int, seed int64, timeout time.Duration) error {
	for r := 0; r < rounds; r++ {
		rng := rand.New(rand.NewSource(seed + int64(r)*7919))
		p := check.Generate(rng, threads, objects, ops)
		cfg := check.Config{Schedule: seed + int64(r), Timeout: timeout}
		fs := check.CheckProgram(mk, p, cfg)
		if len(fs) == 0 {
			continue
		}
		min := check.Minimize(p, func(q check.Program) bool {
			return check.SameKind(check.CheckProgram(mk, q, cfg), fs[0].Kind)
		})
		var b strings.Builder
		fmt.Fprintf(&b, "  round %d (seed %d):\n", r, seed+int64(r))
		for _, f := range fs {
			fmt.Fprintf(&b, "    %v\n", f)
		}
		fmt.Fprintf(&b, "  minimized failing program:\n")
		for _, line := range strings.Split(strings.TrimRight(min.String(), "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
		return fmt.Errorf("%s", b.String())
	}
	return nil
}

// selectImpls resolves the -impl / -mutate flags to a factory map.
func selectImpls(names, mutate string) (map[string]func() lockapi.Locker, error) {
	switch mutate {
	case "":
	case "overflow":
		return map[string]func() lockapi.Locker{
			"ThinLock-mut-overflow": func() lockapi.Locker {
				return core.New(core.Options{
					CountBits:     2,
					TestMutations: core.Mutations{OverflowOffByOne: true},
				})
			},
		}, nil
	case "dropwake":
		return map[string]func() lockapi.Locker{
			"ThinLock-mut-dropwake": func() lockapi.Locker {
				return core.New(core.Options{
					QueuedInflation: true,
					TestMutations:   core.Mutations{DropQueuedWake: true},
				})
			},
		}, nil
	case "biasdepth":
		return map[string]func() lockapi.Locker{
			"Biased-mut-depth": func() lockapi.Locker {
				return biased.New(biased.Options{
					DisableRebias: true,
					TestMutations: biased.Mutations{RevokeOffByOne: true},
				})
			},
		}, nil
	case "biasdekker":
		return map[string]func() lockapi.Locker{
			"Biased-mut-dekker": func() lockapi.Locker {
				return biased.New(biased.Options{
					DisableRebias: true,
					TestMutations: biased.Mutations{SkipOwnerValidation: true},
				})
			},
		}, nil
	case "deflate-epoch":
		return map[string]func() lockapi.Locker{
			"ThinLock-mut-epoch": func() lockapi.Locker {
				return core.New(core.Options{
					RecycleMonitors: true,
					TestMutations:   core.Mutations{DeflateEpochSkip: true},
				})
			},
		}, nil
	case "deflate-queue":
		return map[string]func() lockapi.Locker{
			"ThinLock-mut-queue": func() lockapi.Locker {
				return core.New(core.Options{
					RecycleMonitors: true,
					TestMutations:   core.Mutations{DeflateQueueIgnore: true},
				})
			},
		}, nil
	default:
		return nil, fmt.Errorf("unknown -mutate %q (want overflow, dropwake, biasdepth, biasdekker, deflate-epoch or deflate-queue)", mutate)
	}

	all := check.Implementations()
	if names == "all" {
		return all, nil
	}
	out := make(map[string]func() lockapi.Locker)
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		mk, ok := all[n]
		if !ok {
			return nil, fmt.Errorf("unknown implementation %q (have: %s)",
				n, strings.Join(check.ImplementationNames(), ", "))
		}
		out[n] = mk
	}
	return out, nil
}

// implFlagUsage builds the -impl help text from the live registry, so
// the CLI's documentation can never drift from the implementations it
// actually accepts.
func implFlagUsage() string {
	return fmt.Sprintf("comma-separated implementations to check, or \"all\" (available: %s)",
		strings.Join(check.ImplementationNames(), ", "))
}

func sortedNames(m map[string]func() lockapi.Locker) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// runExplore is the -explore mode: exhaustive small-scope model
// checking of the lock-word transition table for every variant.
func runExplore() int {
	variants := []core.Variant{
		core.VariantStandard, core.VariantInline, core.VariantFnCall,
		core.VariantMPSync, core.VariantKernelCAS, core.VariantUnlockCAS,
	}
	code := 0
	for _, v := range variants {
		for _, bits := range []int{0, 1} {
			mc := check.ModelConfig{Variant: v, CountBits: bits}
			stats, err := check.ExploreAll(2, 3, 1, mc)
			label := fmt.Sprintf("%v (countbits=%d)", v, bits)
			if err != nil {
				code = 1
				fmt.Printf("%-28s FAIL\n%v\n", label, err)
				continue
			}
			fmt.Printf("%-28s ok: %d programs, %d states, %d transitions\n",
				label, stats.Programs, stats.States, stats.Transitions)
		}
	}
	// Three threads, two objects: wider races, cross-object independence.
	for _, cfg := range []struct{ threads, ops, objects int }{{3, 2, 1}, {2, 2, 2}} {
		stats, err := check.ExploreAll(cfg.threads, cfg.ops, cfg.objects, check.ModelConfig{Variant: core.VariantStandard})
		label := fmt.Sprintf("ThinLock %dt×%dop×%dobj", cfg.threads, cfg.ops, cfg.objects)
		if err != nil {
			code = 1
			fmt.Printf("%-28s FAIL\n%v\n", label, err)
			continue
		}
		fmt.Printf("%-28s ok: %d programs, %d states, %d transitions\n",
			label, stats.Programs, stats.States, stats.Transitions)
	}
	return code
}
