// Command lockcheck runs the concurrent differential checker from
// internal/check: it generates schedule-perturbed multi-threaded
// lock/unlock/wait/notify programs, executes them under the selected
// lock implementations, validates mutual exclusion, nesting balance,
// oracle agreement and monitor-table quiescence, and on failure prints
// a delta-debugged minimal program before exiting nonzero.
//
// Usage:
//
//	lockcheck [-impl all|name,name] [-threads N] [-objects N] [-ops N]
//	          [-rounds N] [-seed N] [-timeout D]
//	          [-mutate overflow|dropwake|biasdepth|biasdekker] [-explore]
//
// The implementation names accepted by -impl are exactly
// check.ImplementationNames() — the -impl flag's help text lists them,
// so `lockcheck -help` is always current.
//
// -explore switches to the small-scope exhaustive mode, model checking
// every interleaving of tiny lock/unlock programs against the abstract
// lock-word state machine for every implementation variant.
//
// -mutate seeds a known protocol bug — into a thin-lock instance
// (overflow, dropwake) or a biased-locking instance (biasdepth,
// biasdekker) — and checks that instead, demonstrating (in a few
// seconds) that the checker actually detects broken lock protocols;
// these runs are expected to FAIL.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"thinlock/internal/biased"
	"thinlock/internal/check"
	"thinlock/internal/core"
	"thinlock/internal/lockapi"
)

func main() {
	impl := flag.String("impl", "all", implFlagUsage())
	threads := flag.Int("threads", 4, "threads per generated program")
	objects := flag.Int("objects", 3, "objects per generated program")
	ops := flag.Int("ops", 30, "operations per thread")
	rounds := flag.Int("rounds", 20, "programs to generate per implementation")
	seed := flag.Int64("seed", 1, "base seed for program generation and schedule jitter")
	timeout := flag.Duration("timeout", 20*time.Second, "per-run watchdog bound")
	mutate := flag.String("mutate", "", "seed a known bug and check it: overflow | dropwake | biasdepth | biasdekker")
	explore := flag.Bool("explore", false, "exhaustively model check all interleavings of tiny programs")
	flag.Parse()

	if *threads < 1 || *objects < 1 || *ops < 1 || *rounds < 1 {
		fmt.Fprintln(os.Stderr, "lockcheck: -threads, -objects, -ops and -rounds must all be >= 1")
		os.Exit(2)
	}

	if *explore {
		os.Exit(runExplore())
	}

	if *mutate == "overflow" {
		// The overflow bug needs deep nesting on one object to surface;
		// steer the default shape toward it (explicit flags still win).
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["objects"] {
			*objects = 1
		}
		if !set["threads"] {
			*threads = 2
		}
	}

	impls, err := selectImpls(*impl, *mutate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockcheck:", err)
		os.Exit(2)
	}

	failed := false
	for _, name := range sortedNames(impls) {
		mk := impls[name]
		fmt.Printf("%-18s %d rounds × %d threads × %d objects × %d ops ... ",
			name, *rounds, *threads, *objects, *ops)
		if bad := checkImpl(mk, *threads, *objects, *ops, *rounds, *seed, *timeout); bad != nil {
			failed = true
			fmt.Println("FAIL")
			fmt.Print(bad)
		} else {
			fmt.Println("ok")
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkImpl runs the configured rounds against one implementation and
// returns a report (nil when clean).
func checkImpl(mk func() lockapi.Locker, threads, objects, ops, rounds int, seed int64, timeout time.Duration) error {
	for r := 0; r < rounds; r++ {
		rng := rand.New(rand.NewSource(seed + int64(r)*7919))
		p := check.Generate(rng, threads, objects, ops)
		cfg := check.Config{Schedule: seed + int64(r), Timeout: timeout}
		fs := check.CheckProgram(mk, p, cfg)
		if len(fs) == 0 {
			continue
		}
		min := check.Minimize(p, func(q check.Program) bool {
			return check.SameKind(check.CheckProgram(mk, q, cfg), fs[0].Kind)
		})
		var b strings.Builder
		fmt.Fprintf(&b, "  round %d (seed %d):\n", r, seed+int64(r))
		for _, f := range fs {
			fmt.Fprintf(&b, "    %v\n", f)
		}
		fmt.Fprintf(&b, "  minimized failing program:\n")
		for _, line := range strings.Split(strings.TrimRight(min.String(), "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
		return fmt.Errorf("%s", b.String())
	}
	return nil
}

// selectImpls resolves the -impl / -mutate flags to a factory map.
func selectImpls(names, mutate string) (map[string]func() lockapi.Locker, error) {
	switch mutate {
	case "":
	case "overflow":
		return map[string]func() lockapi.Locker{
			"ThinLock-mut-overflow": func() lockapi.Locker {
				return core.New(core.Options{
					CountBits:     2,
					TestMutations: core.Mutations{OverflowOffByOne: true},
				})
			},
		}, nil
	case "dropwake":
		return map[string]func() lockapi.Locker{
			"ThinLock-mut-dropwake": func() lockapi.Locker {
				return core.New(core.Options{
					QueuedInflation: true,
					TestMutations:   core.Mutations{DropQueuedWake: true},
				})
			},
		}, nil
	case "biasdepth":
		return map[string]func() lockapi.Locker{
			"Biased-mut-depth": func() lockapi.Locker {
				return biased.New(biased.Options{
					DisableRebias: true,
					TestMutations: biased.Mutations{RevokeOffByOne: true},
				})
			},
		}, nil
	case "biasdekker":
		return map[string]func() lockapi.Locker{
			"Biased-mut-dekker": func() lockapi.Locker {
				return biased.New(biased.Options{
					DisableRebias: true,
					TestMutations: biased.Mutations{SkipOwnerValidation: true},
				})
			},
		}, nil
	default:
		return nil, fmt.Errorf("unknown -mutate %q (want overflow, dropwake, biasdepth or biasdekker)", mutate)
	}

	all := check.Implementations()
	if names == "all" {
		return all, nil
	}
	out := make(map[string]func() lockapi.Locker)
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		mk, ok := all[n]
		if !ok {
			return nil, fmt.Errorf("unknown implementation %q (have: %s)",
				n, strings.Join(check.ImplementationNames(), ", "))
		}
		out[n] = mk
	}
	return out, nil
}

// implFlagUsage builds the -impl help text from the live registry, so
// the CLI's documentation can never drift from the implementations it
// actually accepts.
func implFlagUsage() string {
	return fmt.Sprintf("comma-separated implementations to check, or \"all\" (available: %s)",
		strings.Join(check.ImplementationNames(), ", "))
}

func sortedNames(m map[string]func() lockapi.Locker) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// runExplore is the -explore mode: exhaustive small-scope model
// checking of the lock-word transition table for every variant.
func runExplore() int {
	variants := []core.Variant{
		core.VariantStandard, core.VariantInline, core.VariantFnCall,
		core.VariantMPSync, core.VariantKernelCAS, core.VariantUnlockCAS,
	}
	code := 0
	for _, v := range variants {
		for _, bits := range []int{0, 1} {
			mc := check.ModelConfig{Variant: v, CountBits: bits}
			stats, err := check.ExploreAll(2, 3, 1, mc)
			label := fmt.Sprintf("%v (countbits=%d)", v, bits)
			if err != nil {
				code = 1
				fmt.Printf("%-28s FAIL\n%v\n", label, err)
				continue
			}
			fmt.Printf("%-28s ok: %d programs, %d states, %d transitions\n",
				label, stats.Programs, stats.States, stats.Transitions)
		}
	}
	// Three threads, two objects: wider races, cross-object independence.
	for _, cfg := range []struct{ threads, ops, objects int }{{3, 2, 1}, {2, 2, 2}} {
		stats, err := check.ExploreAll(cfg.threads, cfg.ops, cfg.objects, check.ModelConfig{Variant: core.VariantStandard})
		label := fmt.Sprintf("ThinLock %dt×%dop×%dobj", cfg.threads, cfg.ops, cfg.objects)
		if err != nil {
			code = 1
			fmt.Printf("%-28s FAIL\n%v\n", label, err)
			continue
		}
		fmt.Printf("%-28s ok: %d programs, %d states, %d transitions\n",
			label, stats.Programs, stats.States, stats.Transitions)
	}
	return code
}
