// Command thinlockc compiles a MiniJava source file to bytecode and runs
// its main function on the VM under a chosen lock implementation.
//
// Usage:
//
//	thinlockc [-impl name] [-entry main] [-dis] file.mj
//	thinlockc -e 'func main() { return 6 * 7; }'
//
// The program's result (main's return value) is printed, along with lock
// statistics for the thin-lock implementation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"thinlock/internal/bench"
	"thinlock/internal/core"
	"thinlock/internal/minijava"
	"thinlock/internal/object"
	"thinlock/internal/threading"
	"thinlock/internal/vm"
)

func main() {
	impl := flag.String("impl", "ThinLock", "lock implementation: "+strings.Join(bench.Names(bench.StandardImpls()), ", "))
	entry := flag.String("entry", "main", "function to run")
	dis := flag.Bool("dis", false, "print the compiled bytecode")
	format := flag.Bool("fmt", false, "pretty-print the parsed program and exit")
	inline := flag.String("e", "", "compile this source text instead of a file")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "thinlockc:", err)
		os.Exit(1)
	}

	var src string
	switch {
	case *inline != "":
		src = *inline
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: thinlockc [flags] file.mj  (or -e 'source')")
		os.Exit(2)
	}

	if *format {
		ast, err := minijava.Parse(src)
		if err != nil {
			fail(err)
		}
		fmt.Print(minijava.Format(ast))
		return
	}

	prog, err := minijava.Compile(src)
	if err != nil {
		fail(err)
	}
	if *dis {
		for _, m := range prog.Methods {
			mod := ""
			if m.Sync() {
				mod = " synchronized"
			}
			fmt.Printf("method %s%s (args=%d locals=%d):\n%s",
				m.QualifiedName(), mod, m.NumArgs, m.MaxLocals, vm.Disassemble(m.Code))
			for _, h := range m.Handlers {
				fmt.Printf("      handler [%d,%d) -> %d\n", h.StartPC, h.EndPC, h.HandlerPC)
			}
		}
	}

	f, ok := bench.Lookup(bench.StandardImpls(), *impl)
	if !ok {
		fail(fmt.Errorf("unknown implementation %q", *impl))
	}
	locker := f.New()
	machine, err := vm.New(prog, locker, object.NewHeap())
	if err != nil {
		fail(err)
	}
	reg := threading.NewRegistry()
	th, err := reg.Attach("main")
	if err != nil {
		fail(err)
	}
	res, err := machine.Run(th, *entry)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s = %d\n", *entry, res.I)
	if tl, ok := locker.(*core.ThinLocks); ok {
		s := tl.Stats()
		if s.Inflations() > 0 || s.FatLocks > 0 {
			fmt.Printf("thin-lock stats: inflations=%d fat locks=%d\n", s.Inflations(), s.FatLocks)
		}
	}
}
