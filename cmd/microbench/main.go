// Command microbench regenerates the paper's Table 2 micro-benchmark
// suite and the Figure 4 comparison of ThinLock, IBM112 and JDK111.
//
// Usage:
//
//	microbench [-iters N] [-samples N] [-quick] [-list] [-v]
//
// -list prints the Table 2 benchmark definitions. Otherwise the full
// kernel × implementation matrix is run and rendered as a table of ms
// per million operations, followed by the speedups over JDK111.
package main

import (
	"flag"
	"fmt"
	"os"

	"thinlock/internal/bench"
)

func main() {
	iters := flag.Int64("iters", 1_000_000, "loop iterations per kernel")
	samples := flag.Int("samples", bench.Samples, "samples per measurement (median reported)")
	quick := flag.Bool("quick", false, "shrink iterations and samples for a fast run")
	list := flag.Bool("list", false, "print the Table 2 benchmark definitions and exit")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()

	if *list {
		fmt.Print(bench.FormatKernelList())
		return
	}

	cfg := bench.DefaultFigure4Config()
	cfg.Iters = *iters
	cfg.Samples = *samples
	if *quick {
		cfg.Iters = 100_000
		cfg.Samples = 3
	}

	var progress func(string)
	if *verbose {
		progress = func(s string) { fmt.Fprintln(os.Stderr, "running:", s) }
	}

	rs, err := bench.RunFigure4(cfg, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}

	fmt.Print(bench.FormatTable(rs, fmt.Sprintf(
		"Figure 4: micro-benchmark performance (%d iterations, median of %d)",
		cfg.Iters, cfg.Samples)))
	fmt.Println()
	fmt.Print(bench.FormatSpeedups(rs, "JDK111", "Figure 4 speedups"))
}
