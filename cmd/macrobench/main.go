// Command macrobench regenerates the paper's macro-benchmark experiments:
// the Table 1 characterization, the Figure 3 nesting profile, and the
// Figure 5 speedup comparison across ThinLock, IBM112 and JDK111. The
// -predict flag reproduces the §3.4 arithmetic cross-checking macro
// speedups against micro-benchmark costs.
//
// Usage:
//
//	macrobench [-scale F] [-samples N] [-only name,name] [-table1] [-fig3] [-predict]
//	           [-telemetry] [-timeseries] [-v]
//
// -timeseries records a lockscope contention timeline during the
// Figure 5 run: the sampler captures windowed rates at the
// -timeseries-interval cadence, each (implementation, workload) pair
// becomes one phase cut at an exact boundary, and the per-workload
// timelines land in -timeseries-dir/timeseries_<workload>.json along
// with any anomalies the detector flagged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"thinlock/internal/bench"
	"thinlock/internal/lockprof"
	"thinlock/internal/lockscope"
	"thinlock/internal/telemetry"
	"thinlock/internal/workloads"
)

// timeseriesPhase is one (implementation, workload) stretch of the
// lockscope timeline.
type timeseriesPhase struct {
	Impl    string             `json:"impl"`
	Samples []lockscope.Sample `json:"samples"`
}

// timeseriesFile is the schema of timeseries_<workload>.json.
type timeseriesFile struct {
	Workload   string              `json:"workload"`
	IntervalNs int64               `json:"interval_ns"`
	Phases     []timeseriesPhase   `json:"phases"`
	Anomalies  []lockscope.Anomaly `json:"anomalies"`
}

func main() {
	scale := flag.Float64("scale", 1, "workload size multiplier")
	samples := flag.Int("samples", bench.Samples, "samples per measurement (median reported)")
	only := flag.String("only", "", "comma-separated workload subset")
	table1 := flag.Bool("table1", false, "print the Table 1 characterization and exit")
	fig3 := flag.Bool("fig3", false, "print the Figure 3 nesting profile and exit")
	predict := flag.Bool("predict", false, "run the §3.4 micro-to-macro prediction cross-check")
	space := flag.Bool("space", false, "print the lock-storage footprint comparison and exit")
	withTelemetry := flag.Bool("telemetry", false, "record lock telemetry during the Figure 5 run and write per-workload snapshots to -telemetry-dir")
	telemetryDir := flag.String("telemetry-dir", "results", "directory for -telemetry snapshot JSON files")
	withTimeseries := flag.Bool("timeseries", false, "record a lockscope contention timeline during the Figure 5 run and write per-workload phase timelines to -timeseries-dir")
	timeseriesInterval := flag.Duration("timeseries-interval", 50*time.Millisecond, "lockscope sampling cadence for -timeseries")
	timeseriesDir := flag.String("timeseries-dir", "results", "directory for -timeseries timeline JSON files")
	jsonOut := flag.Bool("json", false, "write machine-readable timings to -json-dir/bench_<workload>.json (compare runs with cmd/benchdiff)")
	jsonDir := flag.String("json-dir", "results", "directory for -json result files")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "macrobench:", err)
		os.Exit(1)
	}

	if *table1 || *fig3 {
		var rows []bench.Characterization
		for _, w := range workloads.All() {
			size := int(float64(w.DefaultSize) * *scale)
			if size < 1 {
				size = 1
			}
			c, err := bench.Characterize(w, size)
			if err != nil {
				fail(err)
			}
			rows = append(rows, c)
		}
		if *table1 {
			fmt.Print(bench.FormatTable1(rows))
		}
		if *fig3 {
			fmt.Print(bench.FormatFigure3(rows))
		}
		return
	}

	if *space {
		results := make(map[string][]bench.SpaceRow)
		var order []string
		for _, w := range workloads.All() {
			size := int(float64(w.DefaultSize) * *scale)
			if size < 1 {
				size = 1
			}
			rows, err := bench.SpaceUsage(w, size)
			if err != nil {
				fail(err)
			}
			results[w.Name] = rows
			order = append(order, w.Name)
		}
		fmt.Print(bench.FormatSpace(results, order))
		return
	}

	if *predict {
		runPredict(*samples)
		return
	}

	cfg := bench.DefaultFigure5Config()
	cfg.SizeScale = *scale
	cfg.Samples = *samples
	if *only != "" {
		cfg.Only = strings.Split(*only, ",")
	}
	var progress func(string)
	if *verbose {
		progress = func(s string) { fmt.Fprintln(os.Stderr, "running:", s) }
	}

	// With -telemetry, the always-on counter layer records every
	// measured run; the per-benchmark snapshot (covering all samples of
	// one implementation/workload pair) lands next to the timing
	// results. The counters are sharded atomics, so unlike the lockstat
	// wrapper this does not distort the timing comparison.
	var snaps map[string]map[string]telemetry.Snapshot
	if *withTelemetry {
		m := telemetry.Enable(telemetry.New())
		defer telemetry.Disable()
		snaps = make(map[string]map[string]telemetry.Snapshot)
		cfg.AfterRun = func(f bench.Factory, w workloads.Workload) {
			snap := m.Snapshot()
			m.Reset()
			if snaps[w.Name] == nil {
				snaps[w.Name] = make(map[string]telemetry.Snapshot)
			}
			snaps[w.Name][f.Name] = snap
		}
	}

	// With -timeseries, the lockscope sampler runs through the whole
	// Figure 5 sweep and each (implementation, workload) measurement is
	// cut into its own phase at an exact window boundary. The profiler
	// rides along at SampleEvery 1 so samples carry site attribution.
	var tsData map[string]*timeseriesFile
	var tsOrder []string
	if *withTimeseries {
		if !*withTelemetry {
			telemetry.Enable(telemetry.New())
			defer telemetry.Disable()
		}
		lockprof.Enable(lockprof.New(lockprof.Config{SampleEvery: 1}))
		defer lockprof.Disable()
		sc := lockscope.Enable(lockscope.New(lockscope.Config{
			Interval: *timeseriesInterval,
			// Long phases must not wrap out of the ring before the cut:
			// 4096 windows is ~3.4 min of history at the default cadence.
			Capacity: 4096,
		}))
		defer lockscope.Disable()
		sc.Start()
		defer sc.Stop()

		tsData = make(map[string]*timeseriesFile)
		var nextIdx uint64 // first sample index not yet consumed by a phase
		prevAfter := cfg.AfterRun
		cfg.AfterRun = func(f bench.Factory, w workloads.Workload) {
			cut := sc.ForceSample() // close the phase at an exact boundary
			var phase timeseriesPhase
			phase.Impl = f.Name
			for _, s := range sc.Series(0).Samples {
				if s.Index >= nextIdx && s.Index <= cut.Index {
					phase.Samples = append(phase.Samples, s)
				}
			}
			nextIdx = cut.Index + 1
			file := tsData[w.Name]
			if file == nil {
				file = &timeseriesFile{Workload: w.Name, IntervalNs: int64(sc.Interval())}
				tsData[w.Name] = file
				tsOrder = append(tsOrder, w.Name)
			}
			file.Phases = append(file.Phases, phase)
			for _, s := range phase.Samples {
				file.Anomalies = append(file.Anomalies, s.Anomalies...)
			}
			if prevAfter != nil {
				// The -telemetry hook resets the counters; rebaseline so
				// the next phase's first window does not difference
				// against pre-reset cumulative values.
				prevAfter(f, w)
				nextIdx = sc.ForceSample().Index + 1
			}
		}
	}

	rs, err := bench.RunFigure5(cfg, progress)
	if err != nil {
		fail(err)
	}

	if *withTimeseries {
		if err := os.MkdirAll(*timeseriesDir, 0o755); err != nil {
			fail(err)
		}
		for _, name := range tsOrder {
			path := filepath.Join(*timeseriesDir, "timeseries_"+name+".json")
			data, err := json.MarshalIndent(tsData[name], "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Fprintln(os.Stderr, "timeseries:", path)
		}
	}

	if *withTelemetry {
		if err := os.MkdirAll(*telemetryDir, 0o755); err != nil {
			fail(err)
		}
		for name, byImpl := range snaps {
			path := filepath.Join(*telemetryDir, "telemetry_"+name+".json")
			data, err := json.MarshalIndent(byImpl, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Fprintln(os.Stderr, "telemetry:", path)
		}
	}
	if *jsonOut {
		sizeOf := func(name string) int {
			w, ok := workloads.ByName(name)
			if !ok {
				return 0
			}
			size := int(float64(w.DefaultSize) * *scale)
			if size < 1 {
				size = 1
			}
			return size
		}
		paths, err := bench.WriteJSONResults(*jsonDir, rs, *samples, sizeOf)
		if err != nil {
			fail(err)
		}
		for _, p := range paths {
			fmt.Fprintln(os.Stderr, "json:", p)
		}
	}

	fmt.Print(bench.FormatMacroTable(rs, "Figure 5 raw times"))
	fmt.Println()
	fmt.Print(bench.FormatSpeedups(rs, "JDK111", "Figure 5"))
	medThin, maxThin := bench.MedianSpeedup(rs, "ThinLock", "JDK111")
	medIBM, maxIBM := bench.MedianSpeedup(rs, "IBM112", "JDK111")
	fmt.Printf("\nThinLock vs JDK111: median %.2fx, max %.2fx (paper: 1.22x / 1.7x)\n", medThin, maxThin)
	fmt.Printf("IBM112   vs JDK111: median %.2fx, max %.2fx (paper: 1.04x / —)\n", medIBM, maxIBM)
}

// runPredict reproduces §3.4: predict a workload's absolute speedup from
// the per-operation micro-benchmark cost difference times the workload's
// synchronized-operation count, then compare against the measured
// difference (the paper predicts 6.5s for javalex's 2.4M synchronized
// calls and measures 6.6s).
func runPredict(samples int) {
	const microIters = 500_000
	thin, _ := bench.Lookup(bench.StandardImpls(), "ThinLock")
	jdk, _ := bench.Lookup(bench.StandardImpls(), "JDK111")

	fastSync, err := bench.RunKernel(thin, "Sync", 0, microIters, samples)
	if err != nil {
		fmt.Fprintln(os.Stderr, "macrobench:", err)
		os.Exit(1)
	}
	slowSync, err := bench.RunKernel(jdk, "Sync", 0, microIters, samples)
	if err != nil {
		fmt.Fprintln(os.Stderr, "macrobench:", err)
		os.Exit(1)
	}

	fmt.Printf("micro cost: Sync %s %.0f ns/op, %s %.0f ns/op\n",
		fastSync.Impl, fastSync.NsPerOp(), slowSync.Impl, slowSync.NsPerOp())

	for _, name := range []string{"javalex", "jax"} {
		w, _ := workloads.ByName(name)
		c, err := bench.Characterize(w, w.DefaultSize)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macrobench:", err)
			os.Exit(1)
		}
		predicted := bench.Predict(fastSync, slowSync, int64(c.Report.TotalSyncs))

		rThin, _, err := bench.RunMacro(thin, w, w.DefaultSize, samples)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macrobench:", err)
			os.Exit(1)
		}
		rJDK, _, err := bench.RunMacro(jdk, w, w.DefaultSize, samples)
		if err != nil {
			fmt.Fprintln(os.Stderr, "macrobench:", err)
			os.Exit(1)
		}
		measured := rJDK.Elapsed.Seconds() - rThin.Elapsed.Seconds()
		fmt.Printf("%-10s %8d syncs: predicted saving %.3fs, measured %.3fs\n",
			name, c.Report.TotalSyncs, predicted, measured)
	}
}
