// Command thinlockvm runs a demonstration bytecode program on the
// internal VM under a chosen lock implementation, printing the
// disassembly, the result, and the lock statistics — a small driver for
// poking at the system end to end.
//
// Usage:
//
//	thinlockvm [-impl name] [-iters N] [-threads N] [-dis]
//	thinlockvm [-impl name] [-dis] -src prog.mj
//
// -impl accepts any name from bench.StandardImpls (its help text lists
// them). With -src, the minijava program's main() runs instead of the
// built-in counter workload; verifier errors and runtime traps cite
// minijava source lines via the compiler's pc-to-line table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"thinlock/internal/bench"
	"thinlock/internal/core"
	"thinlock/internal/lockapi"
	"thinlock/internal/minijava"
	"thinlock/internal/object"
	"thinlock/internal/threading"
	"thinlock/internal/vm"
)

func main() {
	impl := flag.String("impl", "ThinLock", "lock implementation: "+strings.Join(bench.Names(bench.StandardImpls()), ", "))
	iters := flag.Int64("iters", 100_000, "synchronized increments per thread")
	threads := flag.Int("threads", 4, "competing threads")
	dis := flag.Bool("dis", false, "print the program disassembly")
	src := flag.String("src", "", "minijava source file: compile and run its main() instead of the counter workload")
	flag.Parse()

	f, ok := bench.Lookup(bench.StandardImpls(), *impl)
	if !ok {
		fmt.Fprintf(os.Stderr, "thinlockvm: unknown implementation %q\n", *impl)
		os.Exit(1)
	}
	locker := f.New()

	if *src != "" {
		os.Exit(runSource(*src, locker, *dis))
	}

	// Counter.add: a synchronized method incrementing field 0.
	prog := vm.NewProgram()
	counter := &vm.Class{Name: "Counter", NumFields: 1}
	prog.AddClass(counter)
	prog.AddMethod(&vm.Method{
		Name: "add", Class: counter, Flags: vm.FlagSync,
		NumArgs: 1, MaxLocals: 1,
		Code: vm.NewAsm().
			Aload(0).Aload(0).GetField(0).Iconst(1).Iadd().PutField(0).
			Return().
			MustBuild(),
	})
	// hammer(obj, n): calls Counter.add n times.
	prog.AddMethod(&vm.Method{
		Name: "hammer", Flags: vm.FlagStatic,
		NumArgs: 2, MaxLocals: 3,
		Code: vm.NewAsm().
			Iconst(0).Istore(2).
			Label("loop").
			Iload(2).Iload(1).IfICmpGE("done").
			Aload(0).Invoke(0).
			Iinc(2, 1).
			Goto("loop").
			Label("done").
			Return().
			MustBuild(),
	})

	machine, err := vm.New(prog, locker, object.NewHeap())
	if err != nil {
		fmt.Fprintln(os.Stderr, "thinlockvm:", err)
		os.Exit(1)
	}

	if *dis {
		for _, m := range prog.Methods {
			fmt.Printf("method %s:\n%s", m.QualifiedName(), vm.Disassemble(m.Code))
		}
	}

	obj, err := machine.NewInstance("Counter")
	if err != nil {
		fmt.Fprintln(os.Stderr, "thinlockvm:", err)
		os.Exit(1)
	}

	reg := threading.NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < *threads; i++ {
		th, err := reg.Attach(fmt.Sprintf("worker-%d", i))
		if err != nil {
			fmt.Fprintln(os.Stderr, "thinlockvm:", err)
			os.Exit(1)
		}
		wg.Add(1)
		go func(th *threading.Thread) {
			defer wg.Done()
			if _, err := machine.Run(th, "hammer", vm.RefValue(obj), vm.IntValue(*iters)); err != nil {
				fmt.Fprintln(os.Stderr, "thinlockvm:", err)
				os.Exit(1)
			}
		}(th)
	}
	wg.Wait()

	want := int64(*threads) * *iters
	fmt.Printf("impl=%s threads=%d iters=%d -> counter=%d (want %d)\n",
		locker.Name(), *threads, *iters, obj.Fields[0].I, want)
	if obj.Fields[0].I != want {
		fmt.Fprintln(os.Stderr, "thinlockvm: LOST UPDATES — mutual exclusion violated")
		os.Exit(1)
	}
	if tl, ok := locker.(*core.ThinLocks); ok {
		s := tl.Stats()
		fmt.Printf("thin-lock stats: inflations=%d (contention=%d overflow=%d wait=%d) spins=%d fat locks=%d\n",
			s.Inflations(), s.InflationsContention, s.InflationsOverflow,
			s.InflationsWait, s.SpinAcquisitions, s.FatLocks)
		fmt.Printf("counter object inflated: %v\n", tl.Inflated(obj.Object))
	}
}

// runSource compiles and runs a minijava program's main(). Compile
// errors, verifier rejections, and runtime traps all go to stderr;
// traps cite minijava lines because the compiler fills Method.Lines.
func runSource(path string, locker lockapi.Locker, dis bool) int {
	text, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thinlockvm:", err)
		return 1
	}
	prog, err := minijava.Compile(string(text))
	if err != nil {
		fmt.Fprintf(os.Stderr, "thinlockvm: %s: %v\n", path, err)
		return 1
	}
	machine, err := vm.New(prog, locker, object.NewHeap())
	if err != nil {
		fmt.Fprintf(os.Stderr, "thinlockvm: %s: verifier: %v\n", path, err)
		return 1
	}
	if dis {
		for _, m := range prog.Methods {
			fmt.Printf("method %s:\n%s", m.QualifiedName(), vm.Disassemble(m.Code))
		}
	}
	th, err := threading.NewRegistry().Attach("main")
	if err != nil {
		fmt.Fprintln(os.Stderr, "thinlockvm:", err)
		return 1
	}
	res, err := machine.Run(th, "main")
	if err != nil {
		fmt.Fprintf(os.Stderr, "thinlockvm: %s: %v\n", path, err)
		return 1
	}
	fmt.Printf("%s: main() = %d\n", path, res.I)
	return 0
}
