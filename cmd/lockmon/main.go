// Command lockmon runs a workload with the always-on telemetry layer
// and the site-attributed contention profiler enabled, and reports what
// the locks did: live counter rates, a top-N hot-lock report, an
// expvar-style JSON snapshot, a Prometheus text-format snapshot, a
// pprof contention profile, and a Chrome trace-event file loadable in
// ui.perfetto.dev.
//
// Usage:
//
//	lockmon -list
//	lockmon [-workload name] [-impl name] [-size N] [-live] [-scope] [-interval D]
//	        [-json file] [-prom file] [-trace file] [-pprof file]
//	        [-top N] [-prof-rate N] [-repeat N]
//	        [-serve addr] [-hold D]
//	        [-lockdep] [-lockdep-dot file] [-watchdog D]
//
// Output files use "-" for stdout. The trace wraps the locker in the
// locktrace recorder, which serializes events through a mutex; leave it
// off when the counters alone are wanted.
//
// With -serve, lockmon binds addr (e.g. :8080, or 127.0.0.1:0 for an
// ephemeral port), prints the bound address, and exposes the live
// observability endpoints while the workload runs:
//
//	/metrics                     Prometheus text (telemetry + lockprof)
//	/debug/vars                  merged JSON snapshot
//	/debug/lockprof/top          top-N hot locks
//	/debug/pprof/lockcontention  pprof contention profile
//	/debug/lockdep/graph         lock-order graph (DOT or JSON)
//	/debug/lockdep/waitfor       live wait-for snapshot + cycle detector
//	/debug/lockdep/report        full lockdep report
//	/debug/lockscope/            live contention dashboard (with -scope)
//	/debug/lockscope/series      windowed time-series (JSON or CSV)
//	/debug/lockscope/stream      live sample stream (server-sent events)
//
// A SIGINT or SIGTERM drains the HTTP server gracefully (in-flight
// scrapes complete), prints a final telemetry snapshot, and exits 0.
//
// -repeat reruns the workload to lengthen the observation window, and
// -hold keeps the server up after the last run so scrapers can collect
// the final state. -hold has no effect without -serve (lockmon warns
// and ignores it).
//
// -scope enables the lockscope time-series sampler: live sampling of
// windowed contention rates at the chosen -interval cadence, printed
// per window to stderr with a slow-path-rate sparkline, with an anomaly
// summary after the run. Combined with -serve, the same sampler backs
// the /debug/lockscope endpoints and the live dashboard.
//
// -lockdep enables the lock-order watchdog and prints its report
// (inversions, wait-for state) after the run; -lockdep-dot also writes
// the order graph in Graphviz DOT. -watchdog D enables lockdep plus the
// stall watchdog: any blocking episode longer than D dumps the flight
// recorder to stderr and exits with status 3 — run the deliberately
// deadlocking hazard workloads (see -list) under it to see a full
// deadlock diagnosis. The hazard workloads park their contenders only
// on the queued-inflation thin-lock build, selectable as
// -impl ThinLock-queued.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"thinlock/internal/bench"
	"thinlock/internal/core"
	"thinlock/internal/jcl"
	"thinlock/internal/lockapi"
	"thinlock/internal/lockdep"
	"thinlock/internal/lockprof"
	"thinlock/internal/lockscope"
	"thinlock/internal/locktrace"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
	"thinlock/internal/workloads"
)

func main() {
	list := flag.Bool("list", false, "list workloads and implementations, then exit")
	workload := flag.String("workload", "bankmt", "workload to run (see -list)")
	impl := flag.String("impl", "ThinLock", "lock implementation: "+strings.Join(bench.Names(bench.StandardImpls()), ", "))
	size := flag.Int("size", 0, "workload size (0 = the workload's default)")
	live := flag.Bool("live", false, "print live counter deltas to stderr while running")
	scope := flag.Bool("scope", false, "enable the lockscope time-series sampler (windowed rates at the -interval cadence, printed live to stderr; backs /debug/lockscope with -serve)")
	interval := flag.Duration("interval", 250*time.Millisecond, "live print and lockscope sampling interval")
	jsonOut := flag.String("json", "", "write expvar-style JSON snapshot to this file (- for stdout)")
	promOut := flag.String("prom", "", "write Prometheus text-format snapshot to this file (- for stdout)")
	traceOut := flag.String("trace", "", "write Chrome trace-event JSON to this file (- for stdout)")
	pprofOut := flag.String("pprof", "", "write pprof contention profile (gzip protobuf) to this file (- for stdout)")
	topN := flag.Int("top", 10, "print the top-N hot lock sites/objects after the run (0 disables)")
	profRate := flag.Int("prof-rate", 0, "profiler sampling interval: sample 1 in N slow-path entries (0 = default)")
	repeat := flag.Int("repeat", 1, "run the workload this many times")
	serve := flag.String("serve", "", "serve live observability HTTP endpoints on this address (e.g. :8080 or 127.0.0.1:0)")
	hold := flag.Duration("hold", 0, "with -serve, keep serving this long after the last run")
	useLockdep := flag.Bool("lockdep", false, "enable the lock-order watchdog; print its report after the run")
	lockdepDot := flag.String("lockdep-dot", "", "write the lock-order graph in Graphviz DOT to this file (- for stdout; implies -lockdep)")
	lockdepJSON := flag.String("lockdep-json", "", "write the lock-order graph as JSON to this file (- for stdout; implies -lockdep); diffable against the static graph via lockvet -runtime")
	watchdog := flag.Duration("watchdog", 0, "stall threshold (implies -lockdep): a wait this long dumps the flight recorder to stderr and exits 3")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "lockmon: "+format+"\n", args...)
		os.Exit(1)
	}

	if *list {
		fmt.Println("workloads:")
		for _, w := range workloads.All() {
			mark := " "
			if w.Concurrent {
				mark = "*"
			}
			fmt.Printf("  %s %-12s (default size %d) %s\n", mark, w.Name, w.DefaultSize, w.Description)
		}
		fmt.Println("  (* = concurrent)")
		fmt.Println("hazard workloads (deadlock by design; run only under -watchdog):")
		for _, w := range workloads.Hazards() {
			fmt.Printf("  ! %-12s (default size %d) %s\n", w.Name, w.DefaultSize, w.Description)
		}
		fmt.Println("implementations:")
		for _, f := range bench.StandardImpls() {
			fmt.Printf("    %s\n", f.Name)
		}
		fmt.Println("    ThinLock-queued (thin locks with parking queues; required for hazard workloads)")
		return
	}

	w, ok := workloads.ByName(*workload)
	if !ok {
		fail("unknown workload %q (try -list)", *workload)
	}
	f, ok := bench.Lookup(bench.StandardImpls(), *impl)
	if !ok {
		// The hazard workloads need contenders that park rather than
		// spin, so a deadlocked table idles instead of pegging cores.
		if *impl == "ThinLock-queued" {
			f = bench.Factory{Name: *impl, New: func() lockapi.Locker {
				return core.New(core.Options{QueuedInflation: true})
			}}
		} else {
			fail("unknown implementation %q (try -list)", *impl)
		}
	}
	n := *size
	if n <= 0 {
		n = w.DefaultSize
	}
	if *repeat < 1 {
		*repeat = 1
	}

	var locker lockapi.Locker = f.New()
	var tracer *locktrace.Tracer
	if *traceOut != "" {
		tracer = locktrace.New(locker, 0)
		locker = tracer
	}

	if *hold > 0 && *serve == "" {
		fmt.Fprintln(os.Stderr, "lockmon: -hold has no effect without -serve")
	}

	m := telemetry.Enable(telemetry.New())
	defer telemetry.Disable()
	prof := lockprof.Enable(lockprof.New(lockprof.Config{SampleEvery: *profRate}))
	defer lockprof.Disable()

	var sc *lockscope.Scope
	cancelScope := func() {}
	scopeDone := make(chan struct{})
	if *scope {
		sc = lockscope.Enable(lockscope.New(lockscope.Config{Interval: *interval}))
		defer lockscope.Disable()
		var updates <-chan lockscope.Update
		updates, cancelScope = sc.Subscribe()
		go func() {
			defer close(scopeDone)
			// The sparkline tracks the slow-path rate over the most
			// recent windows, so a glance shows the trend, not just the
			// latest number.
			var rates []float64
			for u := range updates {
				rates = append(rates, u.Sample.SlowPerSec)
				if len(rates) > 30 {
					rates = rates[1:]
				}
				fmt.Fprintln(os.Stderr, lockscope.FormatSampleLine(u.Sample, lockscope.Sparkline(rates)))
			}
		}()
		sc.Start()
		defer sc.Stop()
	} else {
		close(scopeDone)
	}

	if *watchdog > 0 || *lockdepDot != "" || *lockdepJSON != "" {
		*useLockdep = true
	}
	var ld *lockdep.Lockdep
	if *useLockdep {
		ld = lockdep.Enable(lockdep.New(lockdep.Config{}))
		defer lockdep.Disable()
	}
	if *watchdog > 0 {
		wd := ld.StartWatchdog(lockdep.WatchdogOptions{
			Threshold: *watchdog,
			OnStall: func(sd lockdep.StallDump) {
				// A stall is the terminal diagnosis this mode exists for:
				// dump the flight recorder and exit distinctly so scripts
				// can assert "the watchdog fired" by status alone.
				sd.WriteText(os.Stderr)
				os.Exit(3)
			},
		})
		defer wd.Stop()
	}

	if *serve != "" {
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fail("serve: %v", err)
		}
		// Printed on its own line so scripts can scrape the bound address
		// (useful with an ephemeral :0 port).
		fmt.Printf("lockmon: serving on http://%s\n", ln.Addr())
		srv := &http.Server{Handler: lockprof.Handler()}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "lockmon: serve: %v\n", err)
			}
		}()
		defer srv.Close()
		// Graceful shutdown: drain in-flight scrapes, print a last
		// snapshot so the run is not lost, and exit cleanly.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			s := <-sig
			fmt.Fprintf(os.Stderr, "lockmon: %v: shutting down\n", s)
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(shutdownCtx); err != nil {
				fmt.Fprintf(os.Stderr, "lockmon: shutdown: %v\n", err)
			}
			fmt.Print(m.Snapshot().String())
			os.Exit(0)
		}()
	}

	ctx := jcl.NewContext(locker, object.NewHeap())
	reg := threading.NewRegistry()
	th, err := reg.Attach("main")
	if err != nil {
		fail("attach: %v", err)
	}

	stopLive := make(chan struct{})
	liveDone := make(chan struct{})
	if *live {
		go func() {
			defer close(liveDone)
			prev := m.Snapshot()
			tick := time.NewTicker(*interval)
			defer tick.Stop()
			for {
				select {
				case <-stopLive:
					return
				case <-tick.C:
					cur := m.Snapshot()
					printLive(os.Stderr, cur.Delta(prev))
					prev = cur
				}
			}
		}()
	}

	start := time.Now()
	var sum uint64
	for i := 0; i < *repeat; i++ {
		sum = w.Run(ctx, th, n)
	}
	elapsed := time.Since(start)

	close(stopLive)
	if *live {
		<-liveDone
	}

	snap := m.Snapshot()
	fmt.Printf("%s / %s size=%d runs=%d: checksum=%#x elapsed=%v\n", w.Name, f.Name, n, *repeat, sum, elapsed)
	fmt.Print(snap.String())

	psnap := prof.Snapshot()
	if *topN > 0 {
		fmt.Println()
		if err := psnap.WriteTop(os.Stdout, *topN); err != nil {
			fail("top: %v", err)
		}
	}

	if *jsonOut != "" {
		if err := writeTo(*jsonOut, snap.WriteJSON); err != nil {
			fail("json: %v", err)
		}
		if err := validateJSON(*jsonOut); err != nil {
			fail("json self-check: %v", err)
		}
	}
	if *promOut != "" {
		if err := writeTo(*promOut, snap.WritePrometheus); err != nil {
			fail("prom: %v", err)
		}
	}
	if *pprofOut != "" {
		if err := writeTo(*pprofOut, psnap.WritePprof); err != nil {
			fail("pprof: %v", err)
		}
		fmt.Printf("pprof: %d sites (inspect with `go tool pprof -top %s`)\n", len(psnap.Sites), *pprofOut)
	}
	if *traceOut != "" {
		events := tracer.Events()
		if err := writeTo(*traceOut, func(w io.Writer) error {
			return locktrace.WriteChromeTrace(w, events)
		}); err != nil {
			fail("trace: %v", err)
		}
		if err := validateTrace(*traceOut); err != nil {
			fail("trace self-check: %v", err)
		}
		fmt.Printf("trace: %d events (load in ui.perfetto.dev)\n", len(events))
	}

	if *useLockdep {
		fmt.Println()
		ld.WriteReport(os.Stdout)
	}
	if *lockdepDot != "" {
		if err := writeTo(*lockdepDot, func(w io.Writer) error {
			ld.WriteDOT(w)
			return nil
		}); err != nil {
			fail("lockdep dot: %v", err)
		}
	}
	if *lockdepJSON != "" {
		if err := writeTo(*lockdepJSON, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(ld.GraphJSON())
		}); err != nil {
			fail("lockdep json: %v", err)
		}
	}

	// The sampler keeps running through the hold window so the dashboard
	// and stream stay live while scrapers collect.
	if *serve != "" && *hold > 0 {
		fmt.Printf("lockmon: holding server for %v\n", *hold)
		time.Sleep(*hold)
	}

	if sc != nil {
		// Quiesce the live printer, close the in-progress window so
		// short runs still report, then summarize what the detector
		// flagged.
		sc.Stop()
		cancelScope()
		<-scopeDone
		sc.ForceSample()
		series := sc.Series(0)
		fmt.Printf("\nlockscope: %d windows sampled at %v, %d anomaly(ies) flagged\n",
			len(series.Samples), sc.Interval(), len(series.Anomalies))
		for _, a := range series.Anomalies {
			sites := ""
			if len(a.Sites) > 0 {
				sites = " at " + strings.Join(a.Sites, ", ")
			}
			fmt.Printf("lockscope:   window %d: %s spiked to %.3g (baseline %.3g, %.1f sigma)%s\n",
				a.Index, a.Metric, a.Value, a.Mean, a.Score, sites)
		}
	}
}

// printLive renders the nonzero counter deltas on one line.
func printLive(w io.Writer, d telemetry.Snapshot) {
	line := ""
	for _, k := range []string{
		"slow_path_entries", "inflations_contention", "queued_parks",
		"monitor_contended_entries", "monitor_handoffs", "cache_lookups", "hot_ops",
	} {
		if v := d.Counter(k); v > 0 {
			line += fmt.Sprintf(" %s=%d", k, v)
		}
	}
	if line == "" {
		line = " (idle)"
	}
	fmt.Fprintf(w, "lockmon:%s\n", line)
}

// writeTo writes via fn to path, with "-" meaning stdout.
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// validateJSON re-reads a written snapshot and checks it parses.
func validateJSON(path string) error {
	if path == "-" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var s telemetry.Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("%s is not a valid snapshot: %w", path, err)
	}
	return nil
}

// validateTrace re-reads a written trace and checks the required
// Chrome trace-event fields are present on every event.
func validateTrace(path string) error {
	if path == "-" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("%s is not a JSON array: %w", path, err)
	}
	for i, e := range events {
		for _, field := range []string{"ph", "ts", "tid", "pid"} {
			if _, ok := e[field]; !ok {
				return fmt.Errorf("%s: event %d missing %q", path, i, field)
			}
		}
	}
	return nil
}
