// Command lockvet is the project's static lock checker. It has two
// personalities:
//
// As a vet tool, it runs the Go-source analyzer suite (lockword,
// pairedunlock, hookalloc) over any package:
//
//	go build -o bin/lockvet ./cmd/lockvet
//	go vet -vettool=$PWD/bin/lockvet ./...
//
// As a bytecode checker, it compiles a minijava program, runs the
// structured-locking verifier, and builds the static lock-order graph
// with ABBA cycle detection:
//
//	lockvet -prog prog.mj                  # report; exit 1 if cycles
//	lockvet -prog prog.mj -dot graph.dot   # Graphviz export
//	lockvet -prog prog.mj -json graph.json # lockdep-shaped JSON export
//	lockvet -prog prog.mj -runtime rt.json # diff vs a runtime lockdep export
//	lockvet -corpus dir                    # verify every *.mj under dir
//
// The -runtime input is the JSON written by /debug/lockdep/graph?format=json
// (or `lockmon -lockdep-json`); the diff maps runtime "Class#id" locks
// onto static class nodes and splits edges into matched, runtime-only,
// and static-only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"thinlock/internal/analyzers"
	"thinlock/internal/minijava"
	"thinlock/internal/staticlock"
	"thinlock/internal/vm"
)

func main() {
	// The `go vet -vettool` protocol must win before flag parsing: cmd/go
	// probes with -flags / -V=full and then passes <objdir>/vet.cfg.
	for _, arg := range os.Args[1:] {
		if arg == "-flags" || arg == "--flags" ||
			strings.HasPrefix(arg, "-V") || strings.HasPrefix(arg, "--V") ||
			strings.HasSuffix(arg, ".cfg") {
			analyzers.VetMain(analyzers.All(), os.Args[1:])
		}
	}

	var (
		prog    = flag.String("prog", "", "minijava source file to verify and analyze")
		corpus  = flag.String("corpus", "", "directory of *.mj programs: verify each compiles and passes the verifier")
		dotOut  = flag.String("dot", "", "write the static lock-order graph as Graphviz DOT to this file")
		jsonOut = flag.String("json", "", "write the static lock-order graph as lockdep-shaped JSON to this file")
		runtime = flag.String("runtime", "", "runtime lockdep graph JSON export to diff against the static graph")
	)
	flag.Parse()

	switch {
	case *corpus != "":
		os.Exit(runCorpus(*corpus))
	case *prog != "":
		os.Exit(runProg(*prog, *dotOut, *jsonOut, *runtime))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "lockvet: "+format+"\n", args...)
	return 1
}

// analyzeFile compiles one minijava source and builds its static graph;
// the compile step includes the structured-locking verifier.
func analyzeFile(path string) (*staticlock.Graph, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := minijava.Compile(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	for _, m := range p.Methods {
		if _, err := vm.CollectMonitorFacts(p, m); err != nil {
			return nil, fmt.Errorf("%s: verifier: %v", path, err)
		}
	}
	g, err := staticlock.Analyze(p)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return g, nil
}

func runProg(path, dotOut, jsonOut, runtimePath string) int {
	g, err := analyzeFile(path)
	if err != nil {
		return fail("%v", err)
	}
	if dotOut != "" {
		f, err := os.Create(dotOut)
		if err != nil {
			return fail("%v", err)
		}
		g.WriteDOT(f)
		if err := f.Close(); err != nil {
			return fail("%v", err)
		}
	}
	if jsonOut != "" {
		raw, err := json.MarshalIndent(g.GraphJSON(), "", "  ")
		if err != nil {
			return fail("%v", err)
		}
		if err := os.WriteFile(jsonOut, append(raw, '\n'), 0o644); err != nil {
			return fail("%v", err)
		}
	}
	g.WriteReport(os.Stdout)
	if runtimePath != "" {
		f, err := os.Open(runtimePath)
		if err != nil {
			return fail("%v", err)
		}
		rt, err := staticlock.LoadRuntimeExport(f)
		f.Close()
		if err != nil {
			return fail("%v", err)
		}
		g.DiffRuntime(rt).WriteDiff(os.Stdout)
	}
	if len(g.Cycles()) > 0 {
		return 1
	}
	return 0
}

// runCorpus compiles every *.mj under dir; any compile or verifier
// failure, or any static cycle, is a finding. A file whose name
// contains "abba" is expected to cycle, mirroring the runtime deadlock
// workload naming.
func runCorpus(dir string) int {
	var checked, bad int
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".mj" {
			return err
		}
		checked++
		g, aerr := analyzeFile(path)
		if aerr != nil {
			bad++
			fmt.Fprintf(os.Stderr, "lockvet: %v\n", aerr)
			return nil
		}
		wantCycle := strings.Contains(filepath.Base(path), "abba")
		gotCycle := len(g.Cycles()) > 0
		if gotCycle != wantCycle {
			bad++
			if gotCycle {
				fmt.Fprintf(os.Stderr, "lockvet: %s: unexpected static lock-order cycle:\n", path)
				for _, r := range g.Cycles() {
					fmt.Fprintf(os.Stderr, "%s\n", r)
				}
			} else {
				fmt.Fprintf(os.Stderr, "lockvet: %s: expected a static ABBA cycle, found none\n", path)
			}
		}
		return nil
	})
	if err != nil {
		return fail("%v", err)
	}
	if checked == 0 {
		return fail("no .mj programs under %s", dir)
	}
	if bad > 0 {
		return 1
	}
	fmt.Printf("lockvet: corpus ok: %d program(s) verified\n", checked)
	return 0
}
