// Command tradeoffs regenerates the paper's Figure 6: the performance of
// the thin-lock implementation variants (NOP, Inline, FnCall, MP Sync,
// the final dynamic-test ThinLock, the kernel-CAS POWER path and the
// UnlkC&S pessimization) on the Sync, MixedSync, CallSync and Threads
// micro-benchmarks, with IBM112 as the reference.
//
// Usage:
//
//	tradeoffs [-iters N] [-samples N] [-threads N] [-quick] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"thinlock/internal/bench"
)

func main() {
	iters := flag.Int64("iters", 1_000_000, "loop iterations per kernel")
	samples := flag.Int("samples", bench.Samples, "samples per measurement (median reported)")
	threads := flag.Int("threads", 4, "thread count for the Threads kernel")
	quick := flag.Bool("quick", false, "shrink iterations and samples for a fast run")
	policy := flag.Bool("policy", false, "compare spin vs queued inflation on the long-hold pathological case")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()

	if *policy {
		const (
			rounds     = 200
			contenders = 3
			hold       = 500 * time.Microsecond
		)
		spin, queued, err := bench.RunContentionPolicyComparison(rounds, contenders, hold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tradeoffs:", err)
			os.Exit(1)
		}
		fmt.Printf("Contention policy on the §2.3.4 pathological case\n")
		fmt.Printf("(%d rounds, %d contenders, %v hold per round):\n", rounds, contenders, hold)
		fmt.Println(" ", spin)
		fmt.Println(" ", queued)
		fmt.Println("Queued inflation (Tasuki extension) replaces busy back-off with precise parks.")
		return
	}

	cfg := bench.DefaultFigure6Config()
	cfg.Iters = *iters
	cfg.Samples = *samples
	cfg.Threads = *threads
	if *quick {
		cfg.Iters = 100_000
		cfg.Samples = 3
	}

	var progress func(string)
	if *verbose {
		progress = func(s string) { fmt.Fprintln(os.Stderr, "running:", s) }
	}

	rs, err := bench.RunFigure6(cfg, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tradeoffs:", err)
		os.Exit(1)
	}

	fmt.Print(bench.FormatTable(rs, fmt.Sprintf(
		"Figure 6: implementation variants (%d iterations, median of %d; Threads n=%d)",
		cfg.Iters, cfg.Samples, cfg.Threads)))
	fmt.Println("\nExpected ordering (paper): NOP < Inline < FnCall ≈ ThinLock < MP Sync;")
	fmt.Println("UnlkC&S pays an extra atomic per unlock; KernelC&S pays a kernel call per lock.")
}
