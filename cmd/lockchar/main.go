// Command lockchar regenerates the paper's locking characterization: the
// Figure 3 depth-of-nesting profile and the Table 1 synchronization
// columns, by running every macro workload under an instrumented lock
// implementation.
//
// Usage:
//
//	lockchar [-scale F] [-only name,name]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"thinlock/internal/bench"
	"thinlock/internal/workloads"
)

func main() {
	scale := flag.Float64("scale", 1, "workload size multiplier")
	only := flag.String("only", "", "comma-separated workload subset")
	flag.Parse()

	var selected []workloads.Workload
	if *only == "" {
		selected = workloads.All()
	} else {
		for _, name := range strings.Split(*only, ",") {
			w, ok := workloads.ByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "lockchar: unknown workload %q\n", name)
				os.Exit(1)
			}
			selected = append(selected, w)
		}
	}

	var rows []bench.Characterization
	for _, w := range selected {
		size := int(float64(w.DefaultSize) * *scale)
		if size < 1 {
			size = 1
		}
		c, err := bench.Characterize(w, size)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockchar:", err)
			os.Exit(1)
		}
		rows = append(rows, c)
	}

	fmt.Print(bench.FormatTable1(rows))
	fmt.Println()
	fmt.Print(bench.FormatFigure3(rows))
	fmt.Println("\nPaper context: ≥45% of lock operations in every benchmark are on")
	fmt.Println("unlocked objects (median 80%); no benchmark nests deeper than four.")
}
