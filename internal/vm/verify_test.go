package vm

import (
	"strings"
	"testing"
)

// verifyOne builds a single-method program and verifies it.
func verifyOne(m *Method) error {
	p := NewProgram()
	if m.Class != nil {
		p.AddClass(m.Class)
	}
	p.AddMethod(m)
	return verify(p, m)
}

func TestVerifyAcceptsGoodCode(t *testing.T) {
	t.Parallel()
	m := &Method{
		Name: "ok", Flags: FlagStatic | FlagReturnsValue,
		NumArgs: 1, MaxLocals: 2,
		Code: NewAsm().
			Iconst(0).Istore(1).
			Label("loop").
			Iload(1).Iload(0).IfICmpGE("done").
			Iinc(1, 1).Goto("loop").
			Label("done").
			Iload(1).IReturn().
			MustBuild(),
	}
	if err := verifyOne(m); err != nil {
		t.Fatalf("good code rejected: %v", err)
	}
	if m.maxStack != 2 {
		t.Errorf("maxStack = %d, want 2", m.maxStack)
	}
}

func TestVerifyRejections(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		m    *Method
		want string
	}{
		{
			"empty code",
			&Method{Name: "m", Flags: FlagStatic},
			"empty",
		},
		{
			"stack underflow",
			&Method{Name: "m", Flags: FlagStatic,
				Code: []Instr{{Op: OpPop}, {Op: OpReturn}}},
			"underflow",
		},
		{
			"falls off end",
			&Method{Name: "m", Flags: FlagStatic,
				Code: []Instr{{Op: OpNop}}},
			"falls off",
		},
		{
			"jump out of range",
			&Method{Name: "m", Flags: FlagStatic,
				Code: []Instr{{Op: OpGoto, A: 99}}},
			"outside",
		},
		{
			"local out of range",
			&Method{Name: "m", Flags: FlagStatic, MaxLocals: 1,
				Code: []Instr{{Op: OpIload, A: 5}, {Op: OpPop}, {Op: OpReturn}}},
			"MaxLocals",
		},
		{
			"value return from void",
			&Method{Name: "m", Flags: FlagStatic,
				Code: []Instr{{Op: OpIconst, A: 1}, {Op: OpIReturn}}},
			"void method",
		},
		{
			"void return from value method",
			&Method{Name: "m", Flags: FlagStatic | FlagReturnsValue,
				Code: []Instr{{Op: OpReturn}}},
			"value-returning",
		},
		{
			"return with residue",
			&Method{Name: "m", Flags: FlagStatic,
				Code: []Instr{{Op: OpIconst, A: 1}, {Op: OpReturn}}},
			"leaves",
		},
		{
			"args exceed locals",
			&Method{Name: "m", Flags: FlagStatic, NumArgs: 3, MaxLocals: 1,
				Code: []Instr{{Op: OpReturn}}},
			"exceeds MaxLocals",
		},
		{
			"sync instance without receiver",
			&Method{Name: "m", Flags: FlagSync,
				Code: []Instr{{Op: OpReturn}}},
			"receiver",
		},
		{
			"sync static without class",
			&Method{Name: "m", Flags: FlagSync | FlagStatic,
				Code: []Instr{{Op: OpReturn}}},
			"class",
		},
		{
			"unknown class in new",
			&Method{Name: "m", Flags: FlagStatic,
				Code: []Instr{{Op: OpNew, A: 7}, {Op: OpPop}, {Op: OpReturn}}},
			"unknown class",
		},
		{
			"unknown method in invoke",
			&Method{Name: "m", Flags: FlagStatic,
				Code: []Instr{{Op: OpInvoke, A: 9}, {Op: OpReturn}}},
			"unknown method",
		},
		{
			"negative array length",
			&Method{Name: "m", Flags: FlagStatic,
				Code: []Instr{{Op: OpNewArray, A: -1}, {Op: OpPop}, {Op: OpReturn}}},
			"negative",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := verifyOne(tc.m)
			if err == nil {
				t.Fatalf("verifier accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestVerifyInconsistentMergeDepth(t *testing.T) {
	t.Parallel()
	// Two paths reach the same pc with different stack depths.
	m := &Method{
		Name: "m", Flags: FlagStatic, MaxLocals: 1,
		Code: NewAsm().
			Iload(0).IfEQ("merge").
			Iconst(1). // depth 1 on fallthrough path
			Label("merge").
			Pop(). // would underflow on the branch path
			Return().
			MustBuild(),
	}
	err := verifyOne(m)
	if err == nil {
		t.Fatal("inconsistent merge accepted")
	}
	if !strings.Contains(err.Error(), "depths") && !strings.Contains(err.Error(), "underflow") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyInvokeStackAccounting(t *testing.T) {
	t.Parallel()
	p := NewProgram()
	callee := &Method{
		Name: "two", Flags: FlagStatic | FlagReturnsValue,
		NumArgs: 2, MaxLocals: 2,
		Code: NewAsm().Iload(0).Iload(1).Iadd().IReturn().MustBuild(),
	}
	p.AddMethod(callee)
	caller := &Method{
		Name: "call", Flags: FlagStatic | FlagReturnsValue,
		Code: NewAsm().Iconst(1).Iconst(2).Invoke(0).IReturn().MustBuild(),
	}
	p.AddMethod(caller)
	if err := verify(p, callee); err != nil {
		t.Fatal(err)
	}
	if err := verify(p, caller); err != nil {
		t.Fatal(err)
	}
	if caller.maxStack != 2 {
		t.Errorf("caller maxStack = %d, want 2", caller.maxStack)
	}

	// A caller that supplies too few arguments must be rejected.
	bad := &Method{
		Name: "bad", Flags: FlagStatic | FlagReturnsValue,
		Code: NewAsm().Iconst(1).Invoke(0).IReturn().MustBuild(),
	}
	p.AddMethod(bad)
	if err := verify(p, bad); err == nil {
		t.Fatal("under-supplied invoke accepted")
	}
}

func TestAsmErrors(t *testing.T) {
	t.Parallel()
	if _, err := NewAsm().Goto("nowhere").Build(); err == nil {
		t.Error("undefined label accepted")
	}
	if _, err := NewAsm().Label("x").Label("x").Return().Build(); err == nil {
		t.Error("duplicate label accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on bad listing")
		}
	}()
	NewAsm().Goto("nowhere").MustBuild()
}

func TestOpStrings(t *testing.T) {
	t.Parallel()
	if OpMonitorEnter.String() != "monitorenter" {
		t.Error("op name")
	}
	if Op(200).String() != "op(200)" {
		t.Error("unknown op name")
	}
	in := Instr{Op: OpIinc, A: 3, B: -1}
	if in.String() != "iinc 3 -1" {
		t.Errorf("Instr.String = %q", in.String())
	}
	if (Instr{Op: OpIadd}).String() != "iadd" {
		t.Error("no-operand Instr.String")
	}
}
