// Package vm is a small stack-based bytecode interpreter in the mold of
// the JDK 1.1 interpreter the paper instrumented. It exists so that the
// paper's reference measurements are meaningful in this reproduction:
// the NoSync micro-benchmark "measures the cost of bytecode
// interpretation of the loop" (§3.3), and the Figure 6 "NOP" variant
// removes synchronization work while keeping bytecode dispatch. The
// monitorenter/monitorexit bytecodes and synchronized method invocation
// route through the same pluggable lock implementations as everything
// else in this repository.
package vm

import "fmt"

// Op is a bytecode opcode.
type Op uint8

// The instruction set. A and B are immediate operands; stack effects are
// noted per opcode.
const (
	// OpNop does nothing.
	OpNop Op = iota
	// OpIconst pushes the constant A.
	OpIconst
	// OpIload pushes locals[A].
	OpIload
	// OpIstore pops into locals[A].
	OpIstore
	// OpIinc adds B to locals[A] without touching the stack.
	OpIinc
	// OpIadd pops b, a and pushes a+b.
	OpIadd
	// OpIsub pops b, a and pushes a-b.
	OpIsub
	// OpImul pops b, a and pushes a*b.
	OpImul
	// OpDup duplicates the top of stack.
	OpDup
	// OpPop discards the top of stack.
	OpPop
	// OpGoto jumps to instruction index A.
	OpGoto
	// OpIfICmpLT pops b, a and jumps to A if a < b.
	OpIfICmpLT
	// OpIfICmpGE pops b, a and jumps to A if a >= b.
	OpIfICmpGE
	// OpIfEQ pops a and jumps to A if a == 0.
	OpIfEQ
	// OpIfNE pops a and jumps to A if a != 0.
	OpIfNE
	// OpAload pushes the reference in locals[A].
	OpAload
	// OpAstore pops a reference into locals[A].
	OpAstore
	// OpNew pushes a new instance of class index A.
	OpNew
	// OpNewArray pushes a new reference array of length A.
	OpNewArray
	// OpALoadIdx pops index, arrayref and pushes arrayref[index].
	OpALoadIdx
	// OpAStoreIdx pops value, index, arrayref and stores
	// arrayref[index] = value.
	OpAStoreIdx
	// OpGetField pops a reference and pushes its field A.
	OpGetField
	// OpPutField pops value, reference and stores field A.
	OpPutField
	// OpMonitorEnter pops a reference and locks it.
	OpMonitorEnter
	// OpMonitorExit pops a reference and unlocks it.
	OpMonitorExit
	// OpInvoke calls method index A, popping its arguments (receiver
	// first for instance methods) and pushing its result if any.
	OpInvoke
	// OpReturn returns void.
	OpReturn
	// OpIReturn pops the return value and returns it.
	OpIReturn
	// OpAReturn pops a reference return value and returns it.
	OpAReturn
	// OpThrow pops an exception value and throws it: control transfers
	// to the innermost handler covering the current pc, or unwinds to
	// the caller (releasing a synchronized method's monitor on the
	// way, as the JVM does on abrupt completion).
	OpThrow
	opCount // sentinel
)

var opNames = [...]string{
	OpNop:          "nop",
	OpIconst:       "iconst",
	OpIload:        "iload",
	OpIstore:       "istore",
	OpIinc:         "iinc",
	OpIadd:         "iadd",
	OpIsub:         "isub",
	OpImul:         "imul",
	OpDup:          "dup",
	OpPop:          "pop",
	OpGoto:         "goto",
	OpIfICmpLT:     "if_icmplt",
	OpIfICmpGE:     "if_icmpge",
	OpIfEQ:         "ifeq",
	OpIfNE:         "ifne",
	OpAload:        "aload",
	OpAstore:       "astore",
	OpNew:          "new",
	OpNewArray:     "newarray",
	OpALoadIdx:     "aaload",
	OpAStoreIdx:    "aastore",
	OpGetField:     "getfield",
	OpPutField:     "putfield",
	OpMonitorEnter: "monitorenter",
	OpMonitorExit:  "monitorexit",
	OpInvoke:       "invoke",
	OpReturn:       "return",
	OpIReturn:      "ireturn",
	OpAReturn:      "areturn",
	OpThrow:        "athrow",
}

// String returns the mnemonic.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Instr is one decoded instruction.
type Instr struct {
	Op   Op
	A, B int32
}

// String renders the instruction for disassembly.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpIadd, OpIsub, OpImul, OpDup, OpPop, OpALoadIdx, OpAStoreIdx,
		OpMonitorEnter, OpMonitorExit, OpReturn, OpIReturn, OpAReturn, OpThrow:
		return in.Op.String()
	case OpIinc:
		return fmt.Sprintf("%s %d %d", in.Op, in.A, in.B)
	default:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	}
}

// stackEffect returns (pops, pushes) for the verifier. Invoke is handled
// separately because its effect depends on the callee.
func (in Instr) stackEffect() (pops, pushes int) {
	switch in.Op {
	case OpNop, OpGoto, OpIinc:
		return 0, 0
	case OpIconst, OpIload, OpAload, OpNew, OpNewArray:
		return 0, 1
	case OpIstore, OpAstore, OpPop, OpIfEQ, OpIfNE,
		OpMonitorEnter, OpMonitorExit, OpIReturn, OpAReturn, OpThrow:
		return 1, 0
	case OpIadd, OpIsub, OpImul:
		return 2, 1
	case OpDup:
		return 1, 2
	case OpIfICmpLT, OpIfICmpGE:
		return 2, 0
	case OpALoadIdx:
		return 2, 1
	case OpAStoreIdx:
		return 3, 0
	case OpGetField:
		return 1, 1
	case OpPutField:
		return 2, 0
	case OpReturn:
		return 0, 0
	default:
		return 0, 0
	}
}
