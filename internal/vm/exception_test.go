package vm

import (
	"strings"
	"testing"

	"thinlock/internal/core"
)

func TestThrowCaughtInSameMethod(t *testing.T) {
	t.Parallel()
	asm := NewAsm().
		Label("start").
		Iconst(42).Throw().
		Label("end").
		Iconst(0).IReturn(). // skipped
		Label("handler").
		Iconst(1).Iadd().IReturn(). // exception value + 1
		Protect("start", "end", "handler")
	code, handlers, err := asm.BuildWithHandlers()
	if err != nil {
		t.Fatal(err)
	}
	v, th := newVM(t, func(p *Program) {
		p.AddMethod(&Method{
			Name: "m", Flags: FlagStatic | FlagReturnsValue,
			Code: code, Handlers: handlers,
		})
	})
	res, err := v.Run(th, "m")
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 43 {
		t.Fatalf("result = %d, want 43 (caught 42 + 1)", res.I)
	}
}

func TestThrowPropagatesToCaller(t *testing.T) {
	t.Parallel()
	v, th := newVM(t, func(p *Program) {
		// thrower (index 0): throws 7 unconditionally.
		p.AddMethod(&Method{
			Name: "thrower", Flags: FlagStatic | FlagReturnsValue,
			Code: NewAsm().Iconst(7).Throw().MustBuild(),
		})
		// catcher: invokes thrower under a handler.
		asm := NewAsm().
			Label("start").
			Invoke(0).IReturn().
			Label("end").
			Label("handler").
			Iconst(100).Iadd().IReturn().
			Protect("start", "end", "handler")
		code, handlers, err := asm.BuildWithHandlers()
		if err != nil {
			t.Fatal(err)
		}
		p.AddMethod(&Method{
			Name: "catcher", Flags: FlagStatic | FlagReturnsValue,
			Code: code, Handlers: handlers,
		})
	})
	res, err := v.Run(th, "catcher")
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 107 {
		t.Fatalf("result = %d, want 107", res.I)
	}
}

func TestUncaughtThrowBecomesError(t *testing.T) {
	t.Parallel()
	v, th := newVM(t, func(p *Program) {
		p.AddMethod(&Method{
			Name: "boom", Flags: FlagStatic | FlagReturnsValue,
			Code: NewAsm().Iconst(13).Throw().MustBuild(),
		})
	})
	_, err := v.Run(th, "boom")
	if err == nil || !strings.Contains(err.Error(), "uncaught exception 13") {
		t.Fatalf("err = %v, want uncaught exception 13", err)
	}
}

// TestThrowReleasesSynchronizedMethodMonitor is the JVM guarantee the
// exception machinery exists for: abrupt completion of a synchronized
// method must release the receiver's monitor.
func TestThrowReleasesSynchronizedMethodMonitor(t *testing.T) {
	t.Parallel()
	l := core.NewDefault()
	v, th := newVMWithLocker(t, l, func(p *Program) {
		c := &Class{Name: "C", NumFields: 0}
		p.AddClass(c)
		p.AddMethod(&Method{
			Name: "boom", Class: c, Flags: FlagSync | FlagReturnsValue,
			NumArgs: 1, MaxLocals: 1,
			Code: NewAsm().Iconst(9).Throw().MustBuild(),
		})
	})
	o, err := v.NewInstance("C")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(th, "C.boom", RefValue(o)); err == nil {
		t.Fatal("expected uncaught exception")
	}
	if !core.IsUnlocked(o.Header()) {
		t.Fatalf("receiver still locked after abrupt completion: %#x", o.Header())
	}
	// The object must be fully usable afterwards.
	l.Lock(th, o.Object)
	if err := l.Unlock(th, o.Object); err != nil {
		t.Fatal(err)
	}
}

// TestHandlerReleasesMonitorEnterExitPair mimics what a Java compiler
// emits for synchronized blocks: a catch-all handler that unlocks and
// rethrows. The lock must be free after the exception escapes.
func TestHandlerReleasesMonitorEnterExitPair(t *testing.T) {
	t.Parallel()
	l := core.NewDefault()
	v, th := newVMWithLocker(t, l, func(p *Program) {
		p.AddClass(&Class{Name: "L", NumFields: 0})
		asm := NewAsm().
			New(0).Astore(0).
			Aload(0).MonitorEnter().
			Label("start").
			Iconst(5).Throw().
			Label("end").
			Aload(0).MonitorExit().
			Iconst(0).IReturn().
			Label("handler").
			// stack: [exception]; unlock, then rethrow.
			Aload(0).MonitorExit().
			Throw().
			Protect("start", "end", "handler")
		code, handlers, err := asm.BuildWithHandlers()
		if err != nil {
			t.Fatal(err)
		}
		p.AddMethod(&Method{
			Name: "m", Flags: FlagStatic | FlagReturnsValue,
			MaxLocals: 1, Code: code, Handlers: handlers,
		})
	})
	_, err := v.Run(th, "m")
	if err == nil || !strings.Contains(err.Error(), "uncaught exception 5") {
		t.Fatalf("err = %v", err)
	}
	if s := l.Stats(); s.Inflations() != 0 {
		t.Error("inflated during single-threaded run")
	}
}

func TestFirstCoveringHandlerWins(t *testing.T) {
	t.Parallel()
	asm := NewAsm().
		Label("start").
		Iconst(1).Throw().
		Label("end").
		Iconst(0).IReturn().
		Label("h1").
		Iconst(10).Iadd().IReturn().
		Label("h2").
		Iconst(20).Iadd().IReturn().
		Protect("start", "end", "h1").
		Protect("start", "end", "h2")
	code, handlers, err := asm.BuildWithHandlers()
	if err != nil {
		t.Fatal(err)
	}
	v, th := newVM(t, func(p *Program) {
		p.AddMethod(&Method{Name: "m", Flags: FlagStatic | FlagReturnsValue,
			Code: code, Handlers: handlers})
	})
	res, err := v.Run(th, "m")
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 11 {
		t.Fatalf("result = %d, want 11 (first handler)", res.I)
	}
}

func TestHandlerClearsOperandStack(t *testing.T) {
	t.Parallel()
	// Throw with junk on the stack: the handler sees only the exception.
	asm := NewAsm().
		Iconst(111).Iconst(222). // junk
		Label("start").
		Iconst(3).Throw().
		Label("end").
		Pop().Pop().Iconst(0).IReturn().
		Label("handler").
		IReturn(). // returns exactly the thrown value
		Protect("start", "end", "handler")
	code, handlers, err := asm.BuildWithHandlers()
	if err != nil {
		t.Fatal(err)
	}
	v, th := newVM(t, func(p *Program) {
		p.AddMethod(&Method{Name: "m", Flags: FlagStatic | FlagReturnsValue,
			Code: code, Handlers: handlers})
	})
	res, err := v.Run(th, "m")
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 3 {
		t.Fatalf("result = %d, want 3", res.I)
	}
}

func TestVerifyRejectsBadHandlers(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		h    Handler
		want string
	}{
		{"inverted range", Handler{StartPC: 2, EndPC: 1, HandlerPC: 0}, "bad range"},
		{"range past end", Handler{StartPC: 0, EndPC: 99, HandlerPC: 0}, "bad range"},
		{"target out of range", Handler{StartPC: 0, EndPC: 1, HandlerPC: 99}, "outside"},
		{"negative start", Handler{StartPC: -1, EndPC: 1, HandlerPC: 0}, "bad range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := &Method{
				Name: "m", Flags: FlagStatic,
				Code:     []Instr{{Op: OpReturn}, {Op: OpReturn}},
				Handlers: []Handler{tc.h},
			}
			err := verifyOne(m)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestVerifySeedsHandlerDepth(t *testing.T) {
	t.Parallel()
	// The handler consumes the thrown value; an unbalanced handler must
	// be rejected.
	asm := NewAsm().
		Label("start").
		Iconst(1).Throw().
		Label("end").
		Iconst(0).IReturn().
		Label("handler").
		Pop().Pop(). // underflow: only the exception is on the stack
		Iconst(0).IReturn().
		Protect("start", "end", "handler")
	code, handlers, err := asm.BuildWithHandlers()
	if err != nil {
		t.Fatal(err)
	}
	m := &Method{Name: "m", Flags: FlagStatic | FlagReturnsValue,
		Code: code, Handlers: handlers}
	if err := verifyOne(m); err == nil || !strings.Contains(err.Error(), "underflow") {
		t.Fatalf("err = %v, want underflow", err)
	}
}

func TestBuildRejectsHandlersWithoutBuildWithHandlers(t *testing.T) {
	t.Parallel()
	asm := NewAsm().Label("a").Return().Label("b").Protect("a", "b", "a")
	if _, err := asm.Build(); err == nil {
		t.Fatal("Build accepted a listing with handlers")
	}
	bad := NewAsm().Label("a").Return().Protect("a", "missing", "a")
	if _, _, err := bad.BuildWithHandlers(); err == nil {
		t.Fatal("unresolved handler label accepted")
	}
}
