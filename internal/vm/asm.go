package vm

import "fmt"

// Asm builds instruction sequences with symbolic labels, so benchmark
// kernels and tests read like assembly listings instead of raw index
// arithmetic.
//
//	code, err := vm.NewAsm().
//		Iconst(0).Istore(1).
//		Label("loop").
//		Iload(1).Iload(0).IfICmpGE("done").
//		Iinc(1, 1).
//		Goto("loop").
//		Label("done").
//		Return().
//		Build()
type Asm struct {
	instrs   []Instr
	labels   map[string]int
	fixups   []fixup
	handlers []handlerFixup
	lines    []lineMark
	errs     []error
}

type lineMark struct {
	at   int // index of the first instruction the mark covers
	line int32
}

type fixup struct {
	instr int
	label string
}

type handlerFixup struct {
	start, end, target string
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int)}
}

// Label binds name to the next instruction's index.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("duplicate label %q", name))
	}
	a.labels[name] = len(a.instrs)
	return a
}

func (a *Asm) emit(in Instr) *Asm {
	a.instrs = append(a.instrs, in)
	return a
}

func (a *Asm) emitJump(op Op, label string) *Asm {
	a.fixups = append(a.fixups, fixup{len(a.instrs), label})
	return a.emit(Instr{Op: op})
}

// Line records that instructions emitted from here on originate at the
// given source line (until the next Line mark). Compilers use it to
// build the pc→line table consumed by Method.LineFor.
func (a *Asm) Line(line int32) *Asm {
	if n := len(a.lines); n > 0 && a.lines[n-1].at == len(a.instrs) {
		a.lines[n-1].line = line
		return a
	}
	a.lines = append(a.lines, lineMark{at: len(a.instrs), line: line})
	return a
}

// Nop emits nop.
func (a *Asm) Nop() *Asm { return a.emit(Instr{Op: OpNop}) }

// Iconst pushes v.
func (a *Asm) Iconst(v int32) *Asm { return a.emit(Instr{Op: OpIconst, A: v}) }

// Iload pushes local n.
func (a *Asm) Iload(n int32) *Asm { return a.emit(Instr{Op: OpIload, A: n}) }

// Istore pops into local n.
func (a *Asm) Istore(n int32) *Asm { return a.emit(Instr{Op: OpIstore, A: n}) }

// Iinc adds delta to local n.
func (a *Asm) Iinc(n, delta int32) *Asm { return a.emit(Instr{Op: OpIinc, A: n, B: delta}) }

// Iadd emits iadd.
func (a *Asm) Iadd() *Asm { return a.emit(Instr{Op: OpIadd}) }

// Isub emits isub.
func (a *Asm) Isub() *Asm { return a.emit(Instr{Op: OpIsub}) }

// Imul emits imul.
func (a *Asm) Imul() *Asm { return a.emit(Instr{Op: OpImul}) }

// Dup emits dup.
func (a *Asm) Dup() *Asm { return a.emit(Instr{Op: OpDup}) }

// Pop emits pop.
func (a *Asm) Pop() *Asm { return a.emit(Instr{Op: OpPop}) }

// Goto jumps to label.
func (a *Asm) Goto(label string) *Asm { return a.emitJump(OpGoto, label) }

// IfICmpLT jumps to label when (second-from-top < top).
func (a *Asm) IfICmpLT(label string) *Asm { return a.emitJump(OpIfICmpLT, label) }

// IfICmpGE jumps to label when (second-from-top >= top).
func (a *Asm) IfICmpGE(label string) *Asm { return a.emitJump(OpIfICmpGE, label) }

// IfEQ jumps to label when top == 0.
func (a *Asm) IfEQ(label string) *Asm { return a.emitJump(OpIfEQ, label) }

// IfNE jumps to label when top != 0.
func (a *Asm) IfNE(label string) *Asm { return a.emitJump(OpIfNE, label) }

// Aload pushes reference local n.
func (a *Asm) Aload(n int32) *Asm { return a.emit(Instr{Op: OpAload, A: n}) }

// Astore pops a reference into local n.
func (a *Asm) Astore(n int32) *Asm { return a.emit(Instr{Op: OpAstore, A: n}) }

// New instantiates class index c.
func (a *Asm) New(c int32) *Asm { return a.emit(Instr{Op: OpNew, A: c}) }

// NewArray pushes a reference array of length n.
func (a *Asm) NewArray(n int32) *Asm { return a.emit(Instr{Op: OpNewArray, A: n}) }

// ALoadIdx emits aaload.
func (a *Asm) ALoadIdx() *Asm { return a.emit(Instr{Op: OpALoadIdx}) }

// AStoreIdx emits aastore.
func (a *Asm) AStoreIdx() *Asm { return a.emit(Instr{Op: OpAStoreIdx}) }

// GetField pushes field f of the popped reference.
func (a *Asm) GetField(f int32) *Asm { return a.emit(Instr{Op: OpGetField, A: f}) }

// PutField stores into field f.
func (a *Asm) PutField(f int32) *Asm { return a.emit(Instr{Op: OpPutField, A: f}) }

// MonitorEnter locks the popped reference.
func (a *Asm) MonitorEnter() *Asm { return a.emit(Instr{Op: OpMonitorEnter}) }

// MonitorExit unlocks the popped reference.
func (a *Asm) MonitorExit() *Asm { return a.emit(Instr{Op: OpMonitorExit}) }

// Invoke calls method index m.
func (a *Asm) Invoke(m int32) *Asm { return a.emit(Instr{Op: OpInvoke, A: m}) }

// Throw emits athrow.
func (a *Asm) Throw() *Asm { return a.emit(Instr{Op: OpThrow}) }

// Pos reports the index the next emitted instruction will occupy; code
// generators use it to detect empty regions.
func (a *Asm) Pos() int { return len(a.instrs) }

// Protect registers an exception handler: anything thrown between the
// start label (inclusive) and the end label (exclusive) transfers to the
// handler label with the thrown value as the only stack entry.
func (a *Asm) Protect(start, end, handler string) *Asm {
	a.handlers = append(a.handlers, handlerFixup{start, end, handler})
	return a
}

// Return emits return.
func (a *Asm) Return() *Asm { return a.emit(Instr{Op: OpReturn}) }

// IReturn emits ireturn.
func (a *Asm) IReturn() *Asm { return a.emit(Instr{Op: OpIReturn}) }

// AReturn emits areturn.
func (a *Asm) AReturn() *Asm { return a.emit(Instr{Op: OpAReturn}) }

// Build resolves labels and returns the instruction sequence. Listings
// with Protect entries must use BuildWithHandlers instead.
func (a *Asm) Build() ([]Instr, error) {
	code, handlers, err := a.BuildWithHandlers()
	if err != nil {
		return nil, err
	}
	if len(handlers) > 0 {
		return nil, fmt.Errorf("listing declares handlers; use BuildWithHandlers")
	}
	return code, nil
}

// BuildWithHandlers resolves labels and returns the instruction sequence
// plus the exception table.
func (a *Asm) BuildWithHandlers() ([]Instr, []Handler, error) {
	if len(a.errs) > 0 {
		return nil, nil, a.errs[0]
	}
	resolve := func(label string) (int, error) {
		target, ok := a.labels[label]
		if !ok {
			return 0, fmt.Errorf("undefined label %q", label)
		}
		return target, nil
	}
	for _, f := range a.fixups {
		target, err := resolve(f.label)
		if err != nil {
			return nil, nil, err
		}
		a.instrs[f.instr].A = int32(target)
	}
	var handlers []Handler
	for _, h := range a.handlers {
		start, err := resolve(h.start)
		if err != nil {
			return nil, nil, err
		}
		end, err := resolve(h.end)
		if err != nil {
			return nil, nil, err
		}
		target, err := resolve(h.target)
		if err != nil {
			return nil, nil, err
		}
		handlers = append(handlers, Handler{StartPC: start, EndPC: end, HandlerPC: target})
	}
	return a.instrs, handlers, nil
}

// Lines materializes the recorded Line marks as a per-pc source-line
// table (0 where no mark covers the pc). Call after Build*.
func (a *Asm) Lines() []int32 {
	if len(a.lines) == 0 {
		return nil
	}
	out := make([]int32, len(a.instrs))
	for i, mk := range a.lines {
		end := len(a.instrs)
		if i+1 < len(a.lines) {
			end = a.lines[i+1].at
		}
		for pc := mk.at; pc < end && pc < len(out); pc++ {
			out[pc] = mk.line
		}
	}
	return out
}

// MustBuild is Build for statically-known-correct listings; it panics on
// error.
func (a *Asm) MustBuild() []Instr {
	code, err := a.Build()
	if err != nil {
		panic("vm: " + err.Error())
	}
	return code
}

// Disassemble renders code one instruction per line with indices.
func Disassemble(code []Instr) string {
	s := ""
	for i, in := range code {
		s += fmt.Sprintf("%4d  %s\n", i, in)
	}
	return s
}
