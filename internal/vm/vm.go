package vm

import (
	"fmt"

	"thinlock/internal/lockapi"
	"thinlock/internal/lockprof"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

// Value is one operand-stack or local slot: an integer or a reference.
type Value struct {
	I   int64
	Ref *Obj
}

// IntValue makes an integer Value.
func IntValue(i int64) Value { return Value{I: i} }

// RefValue makes a reference Value.
func RefValue(o *Obj) Value { return Value{Ref: o} }

// Obj is a VM heap object: a lockable identity plus field slots. Arrays
// are Objs whose Fields are the elements.
type Obj struct {
	*object.Object
	Fields []Value
}

// Class describes an object layout.
type Class struct {
	Name      string
	NumFields int
	// classObj is the object static synchronized methods lock.
	classObj *Obj
}

// MethodFlags control method dispatch behaviour.
type MethodFlags uint8

const (
	// FlagSync marks a synchronized method: the receiver (or the class
	// object for static methods) is locked for the method's duration.
	FlagSync MethodFlags = 1 << iota
	// FlagStatic marks a method with no receiver.
	FlagStatic
	// FlagReturnsValue marks a method ending in ireturn/areturn.
	FlagReturnsValue
)

// Handler is one exception-table entry: it catches anything thrown while
// pc is in [StartPC, EndPC) and transfers control to HandlerPC with the
// operand stack cleared to just the thrown value, as in the JVM.
type Handler struct {
	StartPC   int
	EndPC     int
	HandlerPC int
}

// Method is executable code.
type Method struct {
	Name  string
	Class *Class
	Flags MethodFlags
	// NumArgs counts argument slots, including the receiver for
	// instance methods (receiver is locals[0]).
	NumArgs   int
	MaxLocals int
	Code      []Instr
	// Handlers is the exception table, searched in order; the first
	// entry covering the throwing pc wins.
	Handlers []Handler
	// Lines maps pc to a source line (1-based; 0 = unknown). Optional;
	// the minijava compiler fills it so verifier errors and runtime
	// traps cite source lines instead of raw pcs.
	Lines []int32
	// ParamClasses gives, per argument slot (including the receiver),
	// the class index of the reference parameter, or -1 for ints and
	// untyped references. Optional; used by the static lock-order
	// analysis to name the classes behind slot-keyed monitors.
	ParamClasses []int

	index    int // in Program.Methods
	maxStack int // computed by the verifier
}

// LineFor returns the source line for pc, or 0 when unknown.
func (m *Method) LineFor(pc int) int32 {
	if pc >= 0 && pc < len(m.Lines) {
		return m.Lines[pc]
	}
	return 0
}

// at renders a trap location: " (line N, pc P)" when the line is known,
// " (pc P)" otherwise. Used to make runtime trap messages citable.
func (m *Method) at(pc int) string {
	if l := m.LineFor(pc); l > 0 {
		return fmt.Sprintf(" (line %d, pc %d)", l, pc)
	}
	return fmt.Sprintf(" (pc %d)", pc)
}

// Sync reports whether the method is synchronized.
func (m *Method) Sync() bool { return m.Flags&FlagSync != 0 }

// Static reports whether the method is static.
func (m *Method) Static() bool { return m.Flags&FlagStatic != 0 }

// ReturnsValue reports whether the method pushes a result for its caller.
func (m *Method) ReturnsValue() bool { return m.Flags&FlagReturnsValue != 0 }

// Program is a linked set of classes and methods.
type Program struct {
	Classes []*Class
	Methods []*Method

	classByName  map[string]int
	methodByName map[string]int
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		classByName:  make(map[string]int),
		methodByName: make(map[string]int),
	}
}

// AddClass registers a class and returns its index.
func (p *Program) AddClass(c *Class) int {
	idx := len(p.Classes)
	p.Classes = append(p.Classes, c)
	p.classByName[c.Name] = idx
	return idx
}

// AddMethod registers a method and returns its index. Methods are named
// "Class.method" in the lookup table (or just the name for static
// methods without a class).
func (p *Program) AddMethod(m *Method) int {
	idx := len(p.Methods)
	m.index = idx
	p.Methods = append(p.Methods, m)
	p.methodByName[m.QualifiedName()] = idx
	return idx
}

// QualifiedName returns "Class.name" (or the bare name with no class).
func (m *Method) QualifiedName() string {
	if m.Class != nil {
		return m.Class.Name + "." + m.Name
	}
	return m.Name
}

// ClassIndex returns the index of the named class.
func (p *Program) ClassIndex(name string) (int, bool) {
	i, ok := p.classByName[name]
	return i, ok
}

// MethodIndex returns the index of the named ("Class.method") method.
func (p *Program) MethodIndex(name string) (int, bool) {
	i, ok := p.methodByName[name]
	return i, ok
}

// Method returns the named method, or nil.
func (p *Program) Method(name string) *Method {
	if i, ok := p.methodByName[name]; ok {
		return p.Methods[i]
	}
	return nil
}

// VM executes programs over a heap and a lock implementation.
type VM struct {
	prog      *Program
	locker    lockapi.Locker
	heap      *object.Heap
	stepLimit int64
	skipSL    bool
}

// Option configures a VM at construction time.
type Option func(*VM)

// WithStepLimit bounds the number of instructions a single Run may
// execute (0 = unlimited). Exceeding the limit traps with a "step limit
// exceeded" error; the fuzzers use it to run arbitrary verified
// programs without hanging on infinite loops.
func WithStepLimit(n int64) Option { return func(v *VM) { v.stepLimit = n } }

// WithoutStructuredLocking disables the structured-locking layer of the
// verifier, keeping only the classic stack/flow checks. Tests use it to
// exercise the runtime illegal-monitor-state traps that the static
// verifier would otherwise reject at load time.
func WithoutStructuredLocking() Option { return func(v *VM) { v.skipSL = true } }

// New creates a VM, verifying the program's methods. Class objects (for
// static synchronized methods) are allocated here.
func New(prog *Program, locker lockapi.Locker, heap *object.Heap, opts ...Option) (*VM, error) {
	v := &VM{prog: prog, locker: locker, heap: heap}
	for _, o := range opts {
		o(v)
	}
	for _, m := range prog.Methods {
		if err := verifyMode(prog, m, v.skipSL); err != nil {
			return nil, fmt.Errorf("vm: verify %s: %w", m.QualifiedName(), err)
		}
	}
	for _, c := range prog.Classes {
		c.classObj = v.newObj(c.Name+"<class>", 0)
	}
	return v, nil
}

// Program returns the VM's program.
func (v *VM) Program() *Program { return v.prog }

// Locker returns the VM's lock implementation.
func (v *VM) Locker() lockapi.Locker { return v.locker }

// newObj allocates a VM object.
func (v *VM) newObj(class string, fields int) *Obj {
	return &Obj{Object: v.heap.New(class), Fields: make([]Value, fields)}
}

// NewInstance allocates an instance of the named class for host code.
func (v *VM) NewInstance(class string) (*Obj, error) {
	i, ok := v.prog.ClassIndex(class)
	if !ok {
		return nil, fmt.Errorf("vm: unknown class %q", class)
	}
	c := v.prog.Classes[i]
	return v.newObj(c.Name, c.NumFields), nil
}

// NewArray allocates a reference array for host code.
func (v *VM) NewArray(n int) *Obj { return v.newObj("[]", n) }

// execError carries interpreter failures through panics; Run converts
// them to errors.
type execError struct{ err error }

func throwf(format string, args ...any) {
	panic(execError{fmt.Errorf(format, args...)})
}

// Run executes the named method on thread t with the given arguments and
// returns its result (zero Value for void methods).
func (v *VM) Run(t *threading.Thread, methodName string, args ...Value) (res Value, err error) {
	m := v.prog.Method(methodName)
	if m == nil {
		return Value{}, fmt.Errorf("vm: unknown method %q", methodName)
	}
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(execError); ok {
				err = fmt.Errorf("vm: %s: %w", methodName, e.err)
				return
			}
			panic(r)
		}
	}()
	var steps int64
	res, threw := v.exec(t, m, args, &steps)
	if threw {
		return Value{}, fmt.Errorf("vm: %s: uncaught exception %d", methodName, res.I)
	}
	return res, nil
}

// exec interprets one method activation. Callee activations recurse.
// threw reports abrupt completion; the returned Value is then the thrown
// exception value. A synchronized method's monitor is released on both
// normal and abrupt completion, as required by the JVM specification.
func (v *VM) exec(t *threading.Thread, m *Method, args []Value, steps *int64) (result Value, threw bool) {
	if len(args) != m.NumArgs {
		throwf("%s: got %d args, want %d", m.QualifiedName(), len(args), m.NumArgs)
	}
	locals := make([]Value, m.MaxLocals)
	copy(locals, args)
	stack := make([]Value, 0, m.maxStack)

	// Synchronized method prologue: lock the receiver, or the class
	// object for a static method (§1: "the object must be locked for
	// the duration of the method's execution").
	var syncObj *Obj
	if m.Sync() {
		if m.Static() {
			syncObj = m.Class.classObj
		} else {
			syncObj = locals[0].Ref
			if syncObj == nil {
				throwf("%s: synchronized call on nil receiver", m.QualifiedName())
			}
		}
		if lockprof.Enabled() {
			// Attribute the prologue acquisition to the method with the
			// sentinel pc -1 (there is no monitorenter bytecode for a
			// synchronized method's entry).
			t.PublishFrame(m.QualifiedName(), -1)
			v.locker.Lock(t, syncObj.Object)
			t.ClearFrame()
		} else {
			v.locker.Lock(t, syncObj.Object)
		}
	}
	unlockSync := func() {
		if syncObj != nil {
			if err := v.locker.Unlock(t, syncObj.Object); err != nil {
				throwf("%s: illegal monitor state at method epilogue unlock: %v", m.QualifiedName(), err)
			}
		}
	}

	pop := func() Value {
		val := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return val
	}
	push := func(val Value) { stack = append(stack, val) }

	// throwTo dispatches a thrown value from the instruction at fromPC:
	// it returns the handler pc, or -1 to propagate to the caller.
	throwTo := func(fromPC int) int {
		for _, h := range m.Handlers {
			if fromPC >= h.StartPC && fromPC < h.EndPC {
				return h.HandlerPC
			}
		}
		return -1
	}
	// doThrow implements abrupt control transfer for value ex thrown at
	// fromPC, returning (newPC, propagate).
	doThrow := func(ex Value, fromPC int) (int, bool) {
		if h := throwTo(fromPC); h >= 0 {
			stack = stack[:0]
			push(ex)
			return h, false
		}
		return 0, true
	}

	pc := 0
	for {
		if v.stepLimit > 0 {
			*steps++
			if *steps > v.stepLimit {
				throwf("%s: step limit %d exceeded%s", m.QualifiedName(), v.stepLimit, m.at(pc))
			}
		}
		in := m.Code[pc]
		pc++
		switch in.Op {
		case OpNop:
		case OpIconst:
			push(IntValue(int64(in.A)))
		case OpIload:
			push(IntValue(locals[in.A].I))
		case OpIstore:
			locals[in.A] = IntValue(pop().I)
		case OpIinc:
			locals[in.A].I += int64(in.B)
		case OpIadd:
			b, a := pop(), pop()
			push(IntValue(a.I + b.I))
		case OpIsub:
			b, a := pop(), pop()
			push(IntValue(a.I - b.I))
		case OpImul:
			b, a := pop(), pop()
			push(IntValue(a.I * b.I))
		case OpDup:
			push(stack[len(stack)-1])
		case OpPop:
			pop()
		case OpGoto:
			pc = int(in.A)
		case OpIfICmpLT:
			b, a := pop(), pop()
			if a.I < b.I {
				pc = int(in.A)
			}
		case OpIfICmpGE:
			b, a := pop(), pop()
			if a.I >= b.I {
				pc = int(in.A)
			}
		case OpIfEQ:
			if pop().I == 0 {
				pc = int(in.A)
			}
		case OpIfNE:
			if pop().I != 0 {
				pc = int(in.A)
			}
		case OpAload:
			push(locals[in.A])
		case OpAstore:
			locals[in.A] = pop()
		case OpNew:
			c := v.prog.Classes[in.A]
			push(RefValue(v.newObj(c.Name, c.NumFields)))
		case OpNewArray:
			push(RefValue(v.newObj("[]", int(in.A))))
		case OpALoadIdx:
			idx, arr := pop(), pop()
			if arr.Ref == nil {
				throwf("aaload on nil array%s", m.at(pc-1))
			}
			if idx.I < 0 || idx.I >= int64(len(arr.Ref.Fields)) {
				throwf("aaload index %d outside [0,%d)%s", idx.I, len(arr.Ref.Fields), m.at(pc-1))
			}
			push(arr.Ref.Fields[idx.I])
		case OpAStoreIdx:
			val, idx, arr := pop(), pop(), pop()
			if arr.Ref == nil {
				throwf("aastore on nil array%s", m.at(pc-1))
			}
			if idx.I < 0 || idx.I >= int64(len(arr.Ref.Fields)) {
				throwf("aastore index %d outside [0,%d)%s", idx.I, len(arr.Ref.Fields), m.at(pc-1))
			}
			arr.Ref.Fields[idx.I] = val
		case OpGetField:
			ref := pop()
			if ref.Ref == nil {
				throwf("getfield on nil reference%s", m.at(pc-1))
			}
			if int(in.A) < 0 || int(in.A) >= len(ref.Ref.Fields) {
				throwf("getfield %d outside %q's %d fields%s", in.A, ref.Ref.Class(), len(ref.Ref.Fields), m.at(pc-1))
			}
			push(ref.Ref.Fields[in.A])
		case OpPutField:
			val, ref := pop(), pop()
			if ref.Ref == nil {
				throwf("putfield on nil reference%s", m.at(pc-1))
			}
			if int(in.A) < 0 || int(in.A) >= len(ref.Ref.Fields) {
				throwf("putfield %d outside %q's %d fields%s", in.A, ref.Ref.Class(), len(ref.Ref.Fields), m.at(pc-1))
			}
			ref.Ref.Fields[in.A] = val
		case OpMonitorEnter:
			ref := pop()
			if ref.Ref == nil {
				throwf("monitorenter on nil reference%s", m.at(pc-1))
			}
			telemetry.Inc(t, telemetry.CtrVMMonitorEnter)
			if lockprof.Enabled() {
				// Publish the bytecode site (pc was already advanced past
				// this instruction) so a slow-path acquisition is
				// attributed to "Class.method@pc" instead of interpreter
				// internals.
				t.PublishFrame(m.QualifiedName(), int32(pc-1))
				v.locker.Lock(t, ref.Ref.Object)
				t.ClearFrame()
				break
			}
			v.locker.Lock(t, ref.Ref.Object)
		case OpMonitorExit:
			ref := pop()
			if ref.Ref == nil {
				throwf("monitorexit on nil reference%s", m.at(pc-1))
			}
			telemetry.Inc(t, telemetry.CtrVMMonitorExit)
			if err := v.locker.Unlock(t, ref.Ref.Object); err != nil {
				throwf("illegal monitor state at monitorexit%s: %v", m.at(pc-1), err)
			}
		case OpInvoke:
			callee := v.prog.Methods[in.A]
			cargs := make([]Value, callee.NumArgs)
			for i := callee.NumArgs - 1; i >= 0; i-- {
				cargs[i] = pop()
			}
			res, calleeThrew := v.exec(t, callee, cargs, steps)
			if calleeThrew {
				newPC, propagate := doThrow(res, pc-1)
				if propagate {
					unlockSync()
					return res, true
				}
				pc = newPC
				continue
			}
			if callee.ReturnsValue() {
				push(res)
			}
		case OpThrow:
			ex := pop()
			newPC, propagate := doThrow(ex, pc-1)
			if propagate {
				unlockSync()
				return ex, true
			}
			pc = newPC
		case OpReturn:
			unlockSync()
			return Value{}, false
		case OpIReturn, OpAReturn:
			res := pop()
			unlockSync()
			return res, false
		default:
			throwf("undefined opcode %v at pc %d", in.Op, pc-1)
		}
	}
}
