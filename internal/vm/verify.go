package vm

import "fmt"

// verify performs a bytecode sanity pass over m: jump targets are in
// range, locals indices fit MaxLocals, the operand stack never
// underflows, stack depths agree at merge points, every path ends in a
// return matching the method's flags, and the method's maximum stack
// depth is computed for frame preallocation.
func verify(p *Program, m *Method) error {
	n := len(m.Code)
	if n == 0 {
		return fmt.Errorf("empty code")
	}
	if m.NumArgs > m.MaxLocals {
		return fmt.Errorf("NumArgs %d exceeds MaxLocals %d", m.NumArgs, m.MaxLocals)
	}
	if m.Sync() && !m.Static() && m.NumArgs < 1 {
		return fmt.Errorf("synchronized instance method needs a receiver argument")
	}
	if m.Sync() && m.Static() && m.Class == nil {
		return fmt.Errorf("static synchronized method needs a class")
	}

	// Exception table sanity: ranges and handler targets must be in
	// bounds, with non-empty ranges.
	for i, h := range m.Handlers {
		if h.StartPC < 0 || h.EndPC > n || h.StartPC >= h.EndPC {
			return fmt.Errorf("handler %d: bad range [%d,%d) over %d instructions", i, h.StartPC, h.EndPC, n)
		}
		if h.HandlerPC < 0 || h.HandlerPC >= n {
			return fmt.Errorf("handler %d: target %d outside [0,%d)", i, h.HandlerPC, n)
		}
	}

	// Static pre-pass: every instruction's immediate operands must be
	// valid even if the instruction turns out to be unreachable, as in
	// the JVM's bytecode verifier.
	for pc, in := range m.Code {
		switch in.Op {
		case OpGoto, OpIfICmpLT, OpIfICmpGE, OpIfEQ, OpIfNE:
			if int(in.A) < 0 || int(in.A) >= n {
				return fmt.Errorf("pc %d (%s): jump target outside [0,%d)", pc, in, n)
			}
		case OpIload, OpIstore, OpIinc, OpAload, OpAstore:
			if int(in.A) < 0 || int(in.A) >= m.MaxLocals {
				return fmt.Errorf("pc %d (%s): local %d outside MaxLocals %d", pc, in, in.A, m.MaxLocals)
			}
		case OpNew:
			if int(in.A) < 0 || int(in.A) >= len(p.Classes) {
				return fmt.Errorf("pc %d: new of unknown class %d", pc, in.A)
			}
		case OpInvoke:
			if int(in.A) < 0 || int(in.A) >= len(p.Methods) {
				return fmt.Errorf("pc %d: invoke of unknown method %d", pc, in.A)
			}
		case OpNewArray:
			if in.A < 0 {
				return fmt.Errorf("pc %d: negative array length %d", pc, in.A)
			}
		}
	}

	const unvisited = -1
	depthAt := make([]int, n)
	for i := range depthAt {
		depthAt[i] = unvisited
	}
	maxDepth := 0

	type workItem struct{ pc, depth int }
	work := []workItem{{0, 0}}
	// Handler entries execute with the operand stack holding exactly the
	// thrown value.
	for _, h := range m.Handlers {
		work = append(work, workItem{h.HandlerPC, 1})
	}

	branch := func(in Instr) (target int, isJump, falls bool) {
		switch in.Op {
		case OpGoto:
			return int(in.A), true, false
		case OpIfICmpLT, OpIfICmpGE, OpIfEQ, OpIfNE:
			return int(in.A), true, true
		case OpReturn, OpIReturn, OpAReturn, OpThrow:
			return 0, false, false
		default:
			return 0, false, true
		}
	}

	for len(work) > 0 {
		item := work[len(work)-1]
		work = work[:len(work)-1]
		pc, depth := item.pc, item.depth
		if d := depthAt[pc]; d != unvisited {
			if d != depth {
				return fmt.Errorf("pc %d reached with stack depths %d and %d", pc, d, depth)
			}
			continue
		}
		depthAt[pc] = depth

		in := m.Code[pc]
		pops, pushes := in.stackEffect()
		if in.Op == OpInvoke {
			callee := p.Methods[in.A]
			pops = callee.NumArgs
			if callee.ReturnsValue() {
				pushes = 1
			} else {
				pushes = 0
			}
		}
		if depth < pops {
			return fmt.Errorf("pc %d (%s): stack underflow (depth %d, pops %d)", pc, in, depth, pops)
		}
		depth = depth - pops + pushes
		if depth > maxDepth {
			maxDepth = depth
		}

		switch in.Op {
		case OpIReturn, OpAReturn:
			if !m.ReturnsValue() {
				return fmt.Errorf("pc %d: value return from void method", pc)
			}
			if depth != 0 {
				return fmt.Errorf("pc %d: return leaves %d values on stack", pc, depth)
			}
		case OpReturn:
			if m.ReturnsValue() {
				return fmt.Errorf("pc %d: void return from value-returning method", pc)
			}
			if depth != 0 {
				return fmt.Errorf("pc %d: return leaves %d values on stack", pc, depth)
			}
		}

		target, isJump, falls := branch(in)
		if isJump {
			work = append(work, workItem{target, depth})
		}
		if falls {
			if pc+1 >= n {
				return fmt.Errorf("pc %d (%s): control falls off the end", pc, in)
			}
			work = append(work, workItem{pc + 1, depth})
		}
	}

	m.maxStack = maxDepth
	return nil
}
