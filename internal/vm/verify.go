package vm

import "fmt"

// This file implements the bytecode verifier. On top of the classic
// stack/flow sanity pass it performs JVM §2.11.10-style *structured
// locking* verification by abstract interpretation: every execution
// path must exit exactly the monitors it entered, in LIFO order, and
// merge points must agree on the held-monitor stack. The analysis
// tracks the *provenance* of every operand-stack value so a
// monitorexit can be matched against the monitorenter that pushed the
// same reference:
//
//   - a value loaded by `aload N` carries provenance slot(N);
//   - a value allocated by `new`/`newarray` at pc P carries prov new(P)
//     (and keeps it through dup);
//   - anything else (getfield, aaload, invoke results, merged values)
//     is unknown.
//
// monitorenter keys the pushed monitor by that provenance. A
// monitorexit must match the innermost held key exactly — this is the
// javac compilation discipline (`astore tmp; aload tmp; monitorenter;
// ... aload tmp; monitorexit`) and everything the minijava compiler
// emits. Entering a monitor through an unknown-provenance reference
// poisons the key: no exit can ever match it, so such a region can
// only verify if the method never exits or completes afterwards —
// in practice it is rejected at the first exit or return.
//
// Soundness of the slot keying depends on two extra rules: storing to
// a local slot whose monitor key is currently held is rejected (the
// exit would unlock a different object than the enter locked), and a
// store to slot N downgrades any stacked slot(N) values to unknown.
//
// Exception edges are modeled precisely for this VM: the only abrupt
// sources are athrow and invoke of a method that may throw (computed
// as an interprocedural least fixpoint); runtime traps such as nil
// dereference abort the whole Run and never reach handlers. An edge
// goes to the first handler covering the pc — matching the runtime's
// first-covering-handler dispatch — with the entry monitor stack and
// an operand stack holding just the thrown value. A throwing pc with
// no covering handler unwinds to the caller, which is an error if any
// (explicit) monitor is held.

// Value provenance kinds.
const (
	provUnknown uint8 = iota
	provSlot          // loaded from local slot idx
	provNew           // allocated by new/newarray at pc idx
	provPoison        // monitor key for an unknown-provenance enter at pc idx
)

// absVal is one abstract operand-stack value: a provenance plus an
// optional class (index into Program.Classes, -1 unknown).
type absVal struct {
	kind  uint8
	idx   int32
	class int32
}

func unknownVal() absVal { return absVal{kind: provUnknown, idx: 0, class: -1} }

func (v absVal) sameKey(w absVal) bool { return v.kind == w.kind && v.idx == w.idx }

func (v absVal) String() string {
	switch v.kind {
	case provSlot:
		return fmt.Sprintf("slot %d", v.idx)
	case provNew:
		return fmt.Sprintf("new@%d", v.idx)
	case provPoison:
		return fmt.Sprintf("untracked ref (entered at pc %d)", v.idx)
	default:
		return "unknown ref"
	}
}

// monEntry is one held monitor: the key it was entered under and the
// pc of its monitorenter (-1 when keys from different paths merged).
type monEntry struct {
	key     absVal
	enterPC int32
}

// absState is the abstract machine state flowing into one pc.
type absState struct {
	stack  []absVal
	mons   []monEntry
	locals []int32 // class index per local slot, -1 unknown
}

func (s *absState) clone() *absState {
	c := &absState{
		stack:  append([]absVal(nil), s.stack...),
		mons:   append([]monEntry(nil), s.mons...),
		locals: append([]int32(nil), s.locals...),
	}
	return c
}

// join merges incoming state in into s, reporting whether s changed.
// Operand stacks must agree in depth (checked by the caller); values
// whose provenance disagrees join to unknown. Monitor stacks must
// agree in depth and keys — structured locking requires every path
// into a pc to hold the same monitors in the same order.
func (s *absState) join(in *absState) (changed bool, err error) {
	if len(s.mons) != len(in.mons) {
		return false, fmt.Errorf("reached holding %d and %d monitors", len(s.mons), len(in.mons))
	}
	for i := range s.mons {
		if !s.mons[i].key.sameKey(in.mons[i].key) {
			return false, fmt.Errorf("monitor stacks disagree: %s vs %s at depth %d",
				s.mons[i].key, in.mons[i].key, i)
		}
		if s.mons[i].enterPC != in.mons[i].enterPC && s.mons[i].enterPC != -1 {
			s.mons[i].enterPC = -1
			changed = true
		}
		if c := joinClass(s.mons[i].key.class, in.mons[i].key.class); c != s.mons[i].key.class {
			s.mons[i].key.class = c
			changed = true
		}
	}
	for i := range s.stack {
		v, w := s.stack[i], in.stack[i]
		if !v.sameKey(w) {
			if v.kind != provUnknown {
				s.stack[i].kind, s.stack[i].idx = provUnknown, 0
				changed = true
			}
		}
		if c := joinClass(s.stack[i].class, w.class); c != s.stack[i].class {
			s.stack[i].class = c
			changed = true
		}
	}
	for i := range s.locals {
		if c := joinClass(s.locals[i], in.locals[i]); c != s.locals[i] {
			s.locals[i] = c
			changed = true
		}
	}
	return changed, nil
}

func joinClass(a, b int32) int32 {
	if a == b {
		return a
	}
	return -1
}

// mayThrowSet computes, per method index, whether the method can
// complete abruptly: it contains an athrow (or a call to a
// may-throw method) at a pc not covered by one of its own handlers.
// Least fixpoint over the call graph; recursion converges because the
// set only grows.
func mayThrowSet(p *Program) []bool {
	may := make([]bool, len(p.Methods))
	covered := func(m *Method, pc int) bool {
		for _, h := range m.Handlers {
			if pc >= h.StartPC && pc < h.EndPC {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for i, m := range p.Methods {
			if may[i] {
				continue
			}
			for pc, in := range m.Code {
				escapes := in.Op == OpThrow ||
					(in.Op == OpInvoke && int(in.A) < len(may) && may[in.A])
				if escapes && !covered(m, pc) {
					may[i] = true
					changed = true
					break
				}
			}
		}
	}
	return may
}

// MonitorFact describes one monitor as the verifier understood it:
// the class of the locked object when statically known, the local
// slot the reference was loaded from (slot-keyed monitors), or the
// allocating pc (new-keyed monitors). Unknown fields are -1.
type MonitorFact struct {
	EnterPC int
	Line    int32
	Class   int32
	Slot    int32
	NewPC   int32
}

// MethodMonitorFacts is the structured-locking verifier's view of one
// method, exported for the static lock-order analysis
// (internal/staticlock).
type MethodMonitorFacts struct {
	Method *Method
	// HeldAt[pc] is the monitor stack on entry to pc (outermost
	// first), nil where pc is unreachable. Excludes the implicit
	// monitor of a synchronized method.
	HeldAt [][]MonitorFact
	// EnterAt maps each reachable monitorenter pc to the identity of
	// the monitor it pushes.
	EnterAt map[int]MonitorFact
}

func verify(p *Program, m *Method) error {
	return verifyMode(p, m, false)
}

// verifyMode runs verification; skipSL drops the structured-locking
// layer (monitor balance, merge agreement, throw/return-with-monitors)
// while keeping every classic check. Tests use skipSL to reach the
// runtime illegal-monitor-state traps.
func verifyMode(p *Program, m *Method, skipSL bool) error {
	_, err := verifyCore(p, m, skipSL, nil)
	return err
}

// CollectMonitorFacts verifies m with the structured-locking layer on
// and returns the monitor facts the fixpoint converged to.
func CollectMonitorFacts(p *Program, m *Method) (*MethodMonitorFacts, error) {
	facts := &MethodMonitorFacts{Method: m, EnterAt: make(map[int]MonitorFact)}
	states, err := verifyCore(p, m, false, facts)
	if err != nil {
		return nil, err
	}
	facts.HeldAt = make([][]MonitorFact, len(m.Code))
	for pc, st := range states {
		if st == nil {
			continue
		}
		held := make([]MonitorFact, 0, len(st.mons))
		for _, me := range st.mons {
			held = append(held, monitorFactOf(m, me))
		}
		facts.HeldAt[pc] = held
	}
	return facts, nil
}

func monitorFactOf(m *Method, me monEntry) MonitorFact {
	f := MonitorFact{
		EnterPC: int(me.enterPC),
		Line:    m.LineFor(int(me.enterPC)),
		Class:   me.key.class,
		Slot:    -1,
		NewPC:   -1,
	}
	switch me.key.kind {
	case provSlot:
		f.Slot = me.key.idx
	case provNew:
		f.NewPC = me.key.idx
	}
	return f
}

// verifyCore is the shared fixpoint engine. It returns the converged
// per-pc entry states (nil entries are unreachable) so callers can
// extract monitor facts.
func verifyCore(p *Program, m *Method, skipSL bool, facts *MethodMonitorFacts) ([]*absState, error) {
	n := len(m.Code)
	if n == 0 {
		return nil, fmt.Errorf("empty code")
	}
	if m.NumArgs > m.MaxLocals {
		return nil, fmt.Errorf("NumArgs %d exceeds MaxLocals %d", m.NumArgs, m.MaxLocals)
	}
	if m.Sync() && !m.Static() && m.NumArgs < 1 {
		return nil, fmt.Errorf("synchronized instance method needs a receiver argument")
	}
	if m.Sync() && m.Static() && m.Class == nil {
		return nil, fmt.Errorf("static synchronized method needs a class")
	}

	// Exception table sanity: ranges and handler targets must be in
	// bounds, with non-empty ranges.
	for i, h := range m.Handlers {
		if h.StartPC < 0 || h.EndPC > n || h.StartPC >= h.EndPC {
			return nil, fmt.Errorf("handler %d: bad range [%d,%d) over %d instructions", i, h.StartPC, h.EndPC, n)
		}
		if h.HandlerPC < 0 || h.HandlerPC >= n {
			return nil, fmt.Errorf("handler %d: target %d outside [0,%d)", i, h.HandlerPC, n)
		}
	}

	// Static pre-pass: every instruction's immediate operands must be
	// valid even if the instruction turns out to be unreachable, as in
	// the JVM's bytecode verifier.
	for pc, in := range m.Code {
		switch in.Op {
		case OpGoto, OpIfICmpLT, OpIfICmpGE, OpIfEQ, OpIfNE:
			if int(in.A) < 0 || int(in.A) >= n {
				return nil, fmt.Errorf("pc %d (%s): jump target outside [0,%d)", pc, in, n)
			}
		case OpIload, OpIstore, OpIinc, OpAload, OpAstore:
			if int(in.A) < 0 || int(in.A) >= m.MaxLocals {
				return nil, fmt.Errorf("pc %d (%s): local %d outside MaxLocals %d", pc, in, in.A, m.MaxLocals)
			}
		case OpNew:
			if int(in.A) < 0 || int(in.A) >= len(p.Classes) {
				return nil, fmt.Errorf("pc %d: new of unknown class %d", pc, in.A)
			}
		case OpInvoke:
			if int(in.A) < 0 || int(in.A) >= len(p.Methods) {
				return nil, fmt.Errorf("pc %d: invoke of unknown method %d", pc, in.A)
			}
		case OpNewArray:
			if in.A < 0 {
				return nil, fmt.Errorf("pc %d: negative array length %d", pc, in.A)
			}
		}
	}

	// ef decorates an error with the pc and, when known, source line.
	ef := func(pc int, format string, args ...any) error {
		loc := fmt.Sprintf("pc %d", pc)
		if l := m.LineFor(pc); l > 0 {
			loc = fmt.Sprintf("pc %d (line %d)", pc, l)
		}
		return fmt.Errorf("%s (%s): %s", loc, m.Code[pc], fmt.Sprintf(format, args...))
	}

	may := mayThrowSet(p)
	firstHandler := func(pc int) int {
		for _, h := range m.Handlers {
			if pc >= h.StartPC && pc < h.EndPC {
				return h.HandlerPC
			}
		}
		return -1
	}

	// Entry state: parameter slots carry their declared classes when
	// the compiler provided them.
	entry := &absState{locals: make([]int32, m.MaxLocals)}
	for i := range entry.locals {
		entry.locals[i] = -1
	}
	for i := 0; i < m.NumArgs && i < len(m.ParamClasses); i++ {
		entry.locals[i] = int32(m.ParamClasses[i])
	}
	if !m.Static() && m.NumArgs > 0 && m.Class != nil {
		if ci, ok := p.ClassIndex(m.Class.Name); ok {
			entry.locals[0] = int32(ci)
		}
	}

	states := make([]*absState, n)
	maxDepth := 0
	var work []int
	inWork := make([]bool, n)

	// flow merges state st into pc, enqueueing it on change.
	flow := func(fromPC, pc int, st *absState) error {
		if cur := states[pc]; cur != nil {
			if len(cur.stack) != len(st.stack) {
				return fmt.Errorf("pc %d reached with stack depths %d and %d", pc, len(cur.stack), len(st.stack))
			}
			changed, err := cur.join(st)
			if err != nil {
				return fmt.Errorf("pc %d: %w (paths via pc %d)", pc, err, fromPC)
			}
			if changed && !inWork[pc] {
				work = append(work, pc)
				inWork[pc] = true
			}
			return nil
		}
		states[pc] = st.clone()
		if !inWork[pc] {
			work = append(work, pc)
			inWork[pc] = true
		}
		return nil
	}

	if err := flow(0, 0, entry); err != nil {
		return nil, err
	}

	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[pc] = false

		in := m.Code[pc]
		st := states[pc].clone()
		entryMons := append([]monEntry(nil), st.mons...)

		pops, pushes := in.stackEffect()
		if in.Op == OpInvoke {
			callee := p.Methods[in.A]
			pops = callee.NumArgs
			if callee.ReturnsValue() {
				pushes = 1
			} else {
				pushes = 0
			}
		}
		if len(st.stack) < pops {
			return nil, ef(pc, "stack underflow (depth %d, pops %d)", len(st.stack), pops)
		}
		popped := make([]absVal, pops)
		copy(popped, st.stack[len(st.stack)-pops:])
		st.stack = st.stack[:len(st.stack)-pops]

		// Default pushes are unknown; specific opcodes refine below.
		for i := 0; i < pushes; i++ {
			st.stack = append(st.stack, unknownVal())
		}
		if d := len(st.stack); d > maxDepth {
			maxDepth = d
		}

		holdsSlot := func(slot int32) bool {
			for _, me := range st.mons {
				if me.key.kind == provSlot && me.key.idx == slot {
					return true
				}
			}
			return false
		}

		switch in.Op {
		case OpAload:
			st.stack[len(st.stack)-1] = absVal{kind: provSlot, idx: in.A, class: st.locals[in.A]}
		case OpNew:
			st.stack[len(st.stack)-1] = absVal{kind: provNew, idx: int32(pc), class: in.A}
		case OpNewArray:
			st.stack[len(st.stack)-1] = absVal{kind: provNew, idx: int32(pc), class: -1}
		case OpDup:
			// stackEffect says pop 1 push 2; restore the original value
			// in both positions.
			st.stack[len(st.stack)-2] = popped[0]
			st.stack[len(st.stack)-1] = popped[0]
		case OpAstore, OpIstore:
			if !skipSL && holdsSlot(in.A) {
				return nil, ef(pc, "store into local %d while its monitor is held", in.A)
			}
			if in.Op == OpAstore {
				st.locals[in.A] = popped[0].class
				// Any stacked value that was keyed to this slot no
				// longer matches what the slot holds.
				for i, v := range st.stack {
					if v.kind == provSlot && v.idx == in.A {
						st.stack[i].kind, st.stack[i].idx = provUnknown, 0
					}
				}
			} else {
				st.locals[in.A] = -1
			}
		case OpMonitorEnter:
			if !skipSL {
				key := popped[0]
				if key.kind == provUnknown {
					key = absVal{kind: provPoison, idx: int32(pc), class: popped[0].class}
				}
				st.mons = append(st.mons, monEntry{key: key, enterPC: int32(pc)})
				if facts != nil {
					facts.EnterAt[pc] = monitorFactOf(m, monEntry{key: key, enterPC: int32(pc)})
				}
			}
		case OpMonitorExit:
			if !skipSL {
				if len(st.mons) == 0 {
					return nil, ef(pc, "monitorexit with no monitor held")
				}
				top := st.mons[len(st.mons)-1]
				if !top.key.sameKey(popped[0]) {
					return nil, ef(pc, "monitorexit of %s does not match innermost held monitor (%s)",
						popped[0], top.key)
				}
				st.mons = st.mons[:len(st.mons)-1]
			}
		case OpIReturn, OpAReturn:
			if !m.ReturnsValue() {
				return nil, ef(pc, "value return from void method")
			}
			if len(st.stack) != 0 {
				return nil, ef(pc, "return leaves %d values on stack", len(st.stack))
			}
			if !skipSL && len(st.mons) > 0 {
				return nil, ef(pc, "return with %d monitor(s) still held (innermost %s, entered at pc %d)",
					len(st.mons), st.mons[len(st.mons)-1].key, st.mons[len(st.mons)-1].enterPC)
			}
		case OpReturn:
			if m.ReturnsValue() {
				return nil, ef(pc, "void return from value-returning method")
			}
			if len(st.stack) != 0 {
				return nil, ef(pc, "return leaves %d values on stack", len(st.stack))
			}
			if !skipSL && len(st.mons) > 0 {
				return nil, ef(pc, "return with %d monitor(s) still held (innermost %s, entered at pc %d)",
					len(st.mons), st.mons[len(st.mons)-1].key, st.mons[len(st.mons)-1].enterPC)
			}
		}

		// Exception edge: athrow always throws; invoke throws iff the
		// callee may. The thrown value travels alone on the operand
		// stack; monitors held at the throwing pc are still held in
		// the handler (which is how the javac pattern re-releases and
		// rethrows).
		if in.Op == OpThrow || (in.Op == OpInvoke && may[in.A]) {
			if h := firstHandler(pc); h >= 0 {
				hs := &absState{
					stack:  []absVal{unknownVal()},
					mons:   entryMons,
					locals: st.locals,
				}
				if err := flow(pc, h, hs); err != nil {
					return nil, err
				}
			} else if !skipSL && len(entryMons) > 0 {
				kind := "athrow"
				if in.Op == OpInvoke {
					kind = fmt.Sprintf("call to may-throw %s", p.Methods[in.A].QualifiedName())
				}
				return nil, ef(pc, "%s may unwind with %d monitor(s) still held (innermost %s, entered at pc %d)",
					kind, len(entryMons), entryMons[len(entryMons)-1].key, entryMons[len(entryMons)-1].enterPC)
			}
		}

		// Normal successors.
		var target int
		isJump, falls := false, true
		switch in.Op {
		case OpGoto:
			target, isJump, falls = int(in.A), true, false
		case OpIfICmpLT, OpIfICmpGE, OpIfEQ, OpIfNE:
			target, isJump = int(in.A), true
		case OpReturn, OpIReturn, OpAReturn, OpThrow:
			falls = false
		}
		if isJump {
			if err := flow(pc, target, st); err != nil {
				return nil, err
			}
		}
		if falls {
			if pc+1 >= n {
				return nil, ef(pc, "control falls off the end")
			}
			if err := flow(pc, pc+1, st); err != nil {
				return nil, err
			}
		}
	}

	m.maxStack = maxDepth
	return states, nil
}
