package vm

import (
	"strings"
	"sync"
	"testing"

	"thinlock/internal/core"
	"thinlock/internal/lockapi"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

func newVM(t *testing.T, build func(p *Program)) (*VM, *threading.Thread) {
	t.Helper()
	return newVMWithLocker(t, core.NewDefault(), build)
}

func newVMWithLocker(t *testing.T, l lockapi.Locker, build func(p *Program)) (*VM, *threading.Thread) {
	t.Helper()
	p := NewProgram()
	build(p)
	v, err := New(p, l, object.NewHeap())
	if err != nil {
		t.Fatal(err)
	}
	reg := threading.NewRegistry()
	th, err := reg.Attach("main")
	if err != nil {
		t.Fatal(err)
	}
	return v, th
}

func TestArithmetic(t *testing.T) {
	t.Parallel()
	v, th := newVM(t, func(p *Program) {
		p.AddMethod(&Method{
			Name: "calc", Flags: FlagStatic | FlagReturnsValue,
			MaxLocals: 0,
			Code: NewAsm().
				Iconst(6).Iconst(7).Imul(). // 42
				Iconst(2).Iadd().           // 44
				Iconst(4).Isub().           // 40
				IReturn().
				MustBuild(),
		})
	})
	res, err := v.Run(th, "calc")
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 40 {
		t.Fatalf("calc = %d, want 40", res.I)
	}
}

func TestLoopCounting(t *testing.T) {
	t.Parallel()
	// locals: 0 = limit (arg), 1 = i, 2 = acc
	v, th := newVM(t, func(p *Program) {
		p.AddMethod(&Method{
			Name: "sum", Flags: FlagStatic | FlagReturnsValue,
			NumArgs: 1, MaxLocals: 3,
			Code: NewAsm().
				Iconst(0).Istore(1).
				Iconst(0).Istore(2).
				Label("loop").
				Iload(1).Iload(0).IfICmpGE("done").
				Iload(2).Iload(1).Iadd().Istore(2).
				Iinc(1, 1).
				Goto("loop").
				Label("done").
				Iload(2).IReturn().
				MustBuild(),
		})
	})
	res, err := v.Run(th, "sum", IntValue(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 45 {
		t.Fatalf("sum(10) = %d, want 45", res.I)
	}
}

func TestFieldsAndNew(t *testing.T) {
	t.Parallel()
	v, th := newVM(t, func(p *Program) {
		p.AddClass(&Class{Name: "Point", NumFields: 2})
		p.AddMethod(&Method{
			Name: "mk", Flags: FlagStatic | FlagReturnsValue,
			MaxLocals: 1,
			Code: NewAsm().
				New(0).Astore(0).
				Aload(0).Iconst(3).PutField(0).
				Aload(0).Iconst(4).PutField(1).
				Aload(0).GetField(0).
				Aload(0).GetField(1).
				Imul().IReturn().
				MustBuild(),
		})
	})
	res, err := v.Run(th, "mk")
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 12 {
		t.Fatalf("mk = %d, want 12", res.I)
	}
}

func TestArrays(t *testing.T) {
	t.Parallel()
	v, th := newVM(t, func(p *Program) {
		p.AddClass(&Class{Name: "Cell", NumFields: 1})
		p.AddMethod(&Method{
			Name: "arr", Flags: FlagStatic | FlagReturnsValue,
			MaxLocals: 2,
			Code: NewAsm().
				NewArray(3).Astore(0).
				New(0).Astore(1).
				Aload(1).Iconst(9).PutField(0).
				// arr[2] = cell
				Aload(0).Iconst(2).Aload(1).AStoreIdx().
				// return arr[2].field0
				Aload(0).Iconst(2).ALoadIdx().GetField(0).
				IReturn().
				MustBuild(),
		})
	})
	res, err := v.Run(th, "arr")
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 9 {
		t.Fatalf("arr = %d, want 9", res.I)
	}
}

func TestInvokeAndRecursion(t *testing.T) {
	t.Parallel()
	v, th := newVM(t, func(p *Program) {
		// fact(n) = n <= 0 ? 1 : n * fact(n-1); method index known = 0.
		p.AddMethod(&Method{
			Name: "fact", Flags: FlagStatic | FlagReturnsValue,
			NumArgs: 1, MaxLocals: 1,
			Code: NewAsm().
				Iload(0).Iconst(1).IfICmpLT("base").
				Iload(0).
				Iload(0).Iconst(-1).Iadd().
				Invoke(0).
				Imul().IReturn().
				Label("base").
				Iconst(1).IReturn().
				MustBuild(),
		})
	})
	res, err := v.Run(th, "fact", IntValue(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 3628800 {
		t.Fatalf("fact(10) = %d, want 3628800", res.I)
	}
}

func TestMonitorEnterExitBytecodes(t *testing.T) {
	t.Parallel()
	l := core.NewDefault()
	v, th := newVMWithLocker(t, l, func(p *Program) {
		p.AddClass(&Class{Name: "Lockee", NumFields: 1})
		// sync(o) { o.f++ } iterated arg-many times; locals: 0=obj 1=limit 2=i
		p.AddMethod(&Method{
			Name: "spin", Flags: FlagStatic,
			NumArgs: 2, MaxLocals: 3,
			Code: NewAsm().
				Iconst(0).Istore(2).
				Label("loop").
				Iload(2).Iload(1).IfICmpGE("done").
				Aload(0).MonitorEnter().
				Aload(0).Aload(0).GetField(0).Iconst(1).Iadd().PutField(0).
				Aload(0).MonitorExit().
				Iinc(2, 1).
				Goto("loop").
				Label("done").
				Return().
				MustBuild(),
		})
	})
	o, err := v.NewInstance("Lockee")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(th, "spin", RefValue(o), IntValue(1000)); err != nil {
		t.Fatal(err)
	}
	if o.Fields[0].I != 1000 {
		t.Fatalf("field = %d, want 1000", o.Fields[0].I)
	}
	if !core.IsUnlocked(o.Header()) {
		t.Fatal("object left locked after balanced monitorenter/exit")
	}
}

func TestSynchronizedInstanceMethod(t *testing.T) {
	t.Parallel()
	v, th := newVM(t, func(p *Program) {
		c := &Class{Name: "Counter", NumFields: 1}
		p.AddClass(c)
		p.AddMethod(&Method{
			Name: "inc", Class: c, Flags: FlagSync,
			NumArgs: 1, MaxLocals: 1,
			Code: NewAsm().
				Aload(0).Aload(0).GetField(0).Iconst(1).Iadd().PutField(0).
				Return().
				MustBuild(),
		})
	})
	o, _ := v.NewInstance("Counter")
	for i := 0; i < 5; i++ {
		if _, err := v.Run(th, "Counter.inc", RefValue(o)); err != nil {
			t.Fatal(err)
		}
	}
	if o.Fields[0].I != 5 {
		t.Fatalf("counter = %d, want 5", o.Fields[0].I)
	}
	if !core.IsUnlocked(o.Header()) {
		t.Fatal("receiver left locked by synchronized method")
	}
}

func TestSynchronizedStaticMethodLocksClassObject(t *testing.T) {
	t.Parallel()
	var cls *Class
	v, th := newVM(t, func(p *Program) {
		cls = &Class{Name: "G", NumFields: 0}
		p.AddClass(cls)
		p.AddMethod(&Method{
			Name: "tick", Class: cls, Flags: FlagSync | FlagStatic,
			MaxLocals: 0,
			Code:      NewAsm().Return().MustBuild(),
		})
	})
	if _, err := v.Run(th, "G.tick"); err != nil {
		t.Fatal(err)
	}
	if cls.classObj == nil {
		t.Fatal("class object not allocated")
	}
	if !core.IsUnlocked(cls.classObj.Header()) {
		t.Fatal("class object left locked")
	}
}

func TestConcurrentSynchronizedMethods(t *testing.T) {
	t.Parallel()
	v, _ := newVM(t, func(p *Program) {
		c := &Class{Name: "Counter", NumFields: 1}
		p.AddClass(c)
		p.AddMethod(&Method{
			Name: "inc", Class: c, Flags: FlagSync,
			NumArgs: 1, MaxLocals: 1,
			Code: NewAsm().
				Aload(0).Aload(0).GetField(0).Iconst(1).Iadd().PutField(0).
				Return().
				MustBuild(),
		})
	})
	o, _ := v.NewInstance("Counter")
	reg := threading.NewRegistry()
	const goroutines, iters = 6, 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th, err := reg.Attach("w")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(th *threading.Thread) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := v.Run(th, "Counter.inc", RefValue(o)); err != nil {
					t.Error(err)
					return
				}
			}
		}(th)
	}
	wg.Wait()
	if o.Fields[0].I != goroutines*iters {
		t.Fatalf("counter = %d, want %d", o.Fields[0].I, goroutines*iters)
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	v, th := newVM(t, func(p *Program) {
		p.AddMethod(&Method{
			Name: "nilderef", Flags: FlagStatic, MaxLocals: 1,
			Code: NewAsm().
				Aload(0).MonitorEnter().
				Aload(0).MonitorExit().
				Return().
				MustBuild(),
		})
	})
	if _, err := v.Run(th, "missing"); err == nil {
		t.Error("unknown method did not error")
	}
	if _, err := v.Run(th, "nilderef"); err == nil || !strings.Contains(err.Error(), "nil") {
		t.Errorf("nil monitorenter err = %v", err)
	}
	if _, err := v.Run(th, "nilderef", IntValue(1), IntValue(2)); err == nil {
		t.Error("wrong arity did not error")
	}
}

func TestUnbalancedMonitorExitErrors(t *testing.T) {
	t.Parallel()
	// The structured-locking verifier rejects this statically; build the
	// VM with that layer off to reach the runtime trap it backstops.
	p := NewProgram()
	p.AddClass(&Class{Name: "X", NumFields: 0})
	p.AddMethod(&Method{
		Name: "bad", Flags: FlagStatic, MaxLocals: 1,
		Code: NewAsm().
			New(0).Astore(0).
			Aload(0).MonitorExit().
			Return().
			MustBuild(),
	})
	v, err := New(p, core.NewDefault(), object.NewHeap(), WithoutStructuredLocking())
	if err != nil {
		t.Fatal(err)
	}
	reg := threading.NewRegistry()
	th, err := reg.Attach("main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(th, "bad"); err == nil || !strings.Contains(err.Error(), "illegal monitor state") {
		t.Errorf("err = %v, want illegal monitor state failure", err)
	}
}

func TestVerifierRejectsUnbalancedMonitorExit(t *testing.T) {
	t.Parallel()
	p := NewProgram()
	p.AddClass(&Class{Name: "X", NumFields: 0})
	p.AddMethod(&Method{
		Name: "bad", Flags: FlagStatic, MaxLocals: 1,
		Code: NewAsm().
			New(0).Astore(0).
			Aload(0).MonitorExit().
			Return().
			MustBuild(),
	})
	_, err := New(p, core.NewDefault(), object.NewHeap())
	if err == nil || !strings.Contains(err.Error(), "no monitor held") {
		t.Errorf("err = %v, want static no-monitor-held rejection", err)
	}
}

func TestNewInstanceUnknownClass(t *testing.T) {
	t.Parallel()
	v, _ := newVM(t, func(p *Program) {
		p.AddMethod(&Method{Name: "noop", Flags: FlagStatic,
			Code: NewAsm().Return().MustBuild()})
	})
	if _, err := v.NewInstance("Ghost"); err == nil {
		t.Error("unknown class did not error")
	}
	if v.NewArray(4) == nil {
		t.Error("NewArray returned nil")
	}
}

func TestProgramLookups(t *testing.T) {
	t.Parallel()
	p := NewProgram()
	c := &Class{Name: "C"}
	ci := p.AddClass(c)
	m := &Method{Name: "m", Class: c, Flags: FlagStatic,
		Code: NewAsm().Return().MustBuild()}
	mi := p.AddMethod(m)
	if i, ok := p.ClassIndex("C"); !ok || i != ci {
		t.Error("ClassIndex")
	}
	if i, ok := p.MethodIndex("C.m"); !ok || i != mi {
		t.Error("MethodIndex")
	}
	if p.Method("C.m") != m || p.Method("nope") != nil {
		t.Error("Method lookup")
	}
	if m.QualifiedName() != "C.m" {
		t.Error("QualifiedName")
	}
	free := &Method{Name: "f", Flags: FlagStatic, Code: NewAsm().Return().MustBuild()}
	p.AddMethod(free)
	if free.QualifiedName() != "f" {
		t.Error("bare QualifiedName")
	}
}

func TestRemainingOpcodesExecute(t *testing.T) {
	t.Parallel()
	// Cover nop, dup, ifne, areturn and the Pos accessor in one method:
	// dup the constant 7, keep one copy if nonzero, return an object.
	v, th := newVM(t, func(p *Program) {
		p.AddClass(&Class{Name: "Box", NumFields: 1})
		asm := NewAsm()
		if asm.Pos() != 0 {
			t.Fatal("fresh Pos != 0")
		}
		asm.Nop().
			Iconst(7).Dup().IfNE("keep").
			Pop().Iconst(0).Istore(0).Goto("make").
			Label("keep").
			Istore(0).
			Label("make").
			New(0).Dup().Iload(0).PutField(0).
			AReturn()
		if asm.Pos() == 0 {
			t.Fatal("Pos did not advance")
		}
		p.AddMethod(&Method{
			Name: "mk", Flags: FlagStatic | FlagReturnsValue,
			MaxLocals: 1, Code: asm.MustBuild(),
		})
	})
	res, err := v.Run(th, "mk")
	if err != nil {
		t.Fatal(err)
	}
	if res.Ref == nil || res.Ref.Fields[0].I != 7 {
		t.Fatalf("result = %+v, want Box{7}", res)
	}
}

func TestDisassemble(t *testing.T) {
	t.Parallel()
	code := NewAsm().Iconst(5).Iinc(0, 2).Return().MustBuild()
	dis := Disassemble(code)
	for _, want := range []string{"iconst 5", "iinc 0 2", "return"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly %q missing %q", dis, want)
		}
	}
}

func TestLockerAccessor(t *testing.T) {
	t.Parallel()
	l := core.NewDefault()
	v, _ := newVMWithLocker(t, l, func(p *Program) {
		p.AddMethod(&Method{Name: "n", Flags: FlagStatic,
			Code: NewAsm().Return().MustBuild()})
	})
	if v.Locker() != l {
		t.Error("Locker accessor mismatch")
	}
	if v.Program() == nil {
		t.Error("Program accessor nil")
	}
}
