package vm

import (
	"strings"
	"testing"

	"thinlock/internal/core"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// FuzzVerify feeds arbitrary instruction streams to the verifier: it must
// either reject them or accept without panicking, and it must never
// accept code that jumps out of range. Accepted programs are then run
// (differentially): the structured-locking layer guarantees a verified
// method can never hit an illegal-monitor-state error at runtime, no
// matter what arguments it gets.
func FuzzVerify(f *testing.F) {
	// Seed with a valid method and a few near-valid mutations.
	valid := NewAsm().
		Iconst(0).Istore(1).
		Label("loop").
		Iload(1).Iload(0).IfICmpGE("done").
		Iinc(1, 1).Goto("loop").
		Label("done").
		Iload(1).IReturn().
		MustBuild()
	f.Add(encode(valid), 1, 2, true, 0, 0, 0)
	f.Add(encode([]Instr{{Op: OpReturn}}), 0, 0, false, 0, 1, 0)
	f.Add(encode([]Instr{{Op: OpGoto, A: 0}}), 0, 1, false, -1, 5, 2)
	f.Add(encode([]Instr{{Op: OpNew, A: 0}, {Op: OpPop}, {Op: OpReturn}}), 0, 0, false, 0, 3, 1)
	f.Add(encode([]Instr{{Op: OpIconst, A: 1}, {Op: OpThrow}, {Op: OpIReturn}}), 0, 0, true, 0, 2, 2)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, 2, 4, true, 1, 2, 3)
	// Verifier-rejected unbalanced monitor programs: the structured-
	// locking layer must keep rejecting these shapes, and mutations of
	// them must never reach an illegal monitor state at runtime.
	f.Add(encode([]Instr{ // monitorexit at depth zero
		{Op: OpAload, A: 0}, {Op: OpMonitorExit}, {Op: OpReturn},
	}), 1, 1, false, 0, 0, 0)
	f.Add(encode([]Instr{ // return with monitor held
		{Op: OpAload, A: 0}, {Op: OpMonitorEnter}, {Op: OpReturn},
	}), 1, 1, false, 0, 0, 0)
	f.Add(encode([]Instr{ // out-of-LIFO exit order
		{Op: OpAload, A: 0}, {Op: OpMonitorEnter},
		{Op: OpAload, A: 1}, {Op: OpMonitorEnter},
		{Op: OpAload, A: 0}, {Op: OpMonitorExit},
		{Op: OpAload, A: 1}, {Op: OpMonitorExit},
		{Op: OpReturn},
	}), 2, 2, false, 0, 0, 0)
	f.Add(encode([]Instr{ // balanced slot-keyed pair: accepted and runnable
		{Op: OpAload, A: 0}, {Op: OpMonitorEnter},
		{Op: OpAload, A: 0}, {Op: OpMonitorExit},
		{Op: OpReturn},
	}), 1, 1, false, 0, 0, 0)

	f.Fuzz(func(t *testing.T, raw []byte, numArgs, maxLocals int, returns bool,
		hStart, hEnd, hTarget int) {
		code := decode(raw)
		if len(code) == 0 {
			return
		}
		if numArgs < 0 || numArgs > 8 || maxLocals < 0 || maxLocals > 16 {
			return
		}
		flags := FlagStatic
		if returns {
			flags |= FlagReturnsValue
		}
		var handlers []Handler
		if hStart != 0 || hEnd != 0 || hTarget != 0 {
			handlers = []Handler{{StartPC: hStart, EndPC: hEnd, HandlerPC: hTarget}}
		}
		m := &Method{
			Name: "fuzz", Flags: flags,
			NumArgs: numArgs, MaxLocals: maxLocals,
			Code: code, Handlers: handlers,
		}
		p := NewProgram()
		p.AddClass(&Class{Name: "C", NumFields: 2})
		p.AddMethod(m)
		// Must not panic; errors are expected for garbage input.
		err := verify(p, m)
		if err != nil {
			return
		}
		// Accepted code must have in-range jump targets.
		for pc, in := range code {
			switch in.Op {
			case OpGoto, OpIfICmpLT, OpIfICmpGE, OpIfEQ, OpIfNE:
				if int(in.A) < 0 || int(in.A) >= len(code) {
					t.Fatalf("verifier accepted out-of-range jump at pc %d: %v", pc, in)
				}
			}
		}

		// Differential check: run the accepted program. Runtime traps
		// (nil refs, bad indexes, step limits, uncaught exceptions) are
		// all legal outcomes for garbage code, but an illegal monitor
		// state would mean the structured-locking verifier is unsound.
		machine, err := New(p, core.NewDefault(), object.NewHeap(), WithStepLimit(20000))
		if err != nil {
			t.Fatalf("New rejected what verify accepted: %v", err)
		}
		th, err := threading.NewRegistry().Attach("fuzz")
		if err != nil {
			t.Fatal(err)
		}
		args := make([]Value, numArgs)
		for i := range args {
			// A value that is usable both as a small int and as a lockable
			// object with a few fields, so more paths survive.
			args[i] = Value{I: 2, Ref: machine.NewArray(4)}
		}
		if _, err := machine.Run(th, "fuzz", args...); err != nil {
			if strings.Contains(err.Error(), "illegal monitor state") {
				t.Fatalf("verified program hit an illegal monitor state: %v\n%s",
					err, Disassemble(code))
			}
		}
	})
}

// encode packs instructions into a fuzz-friendly byte string.
func encode(code []Instr) []byte {
	out := make([]byte, 0, len(code)*3)
	for _, in := range code {
		out = append(out, byte(in.Op), byte(int8(in.A)), byte(int8(in.B)))
	}
	return out
}

// decode unpacks 3-byte groups into instructions, mapping bytes onto the
// opcode space and small signed operands.
func decode(raw []byte) []Instr {
	var code []Instr
	for i := 0; i+2 < len(raw); i += 3 {
		code = append(code, Instr{
			Op: Op(raw[i] % byte(opCount)),
			A:  int32(int8(raw[i+1])),
			B:  int32(int8(raw[i+2])),
		})
	}
	return code
}
