package vm

import (
	"strings"
	"testing"
)

// Tests for the JVM §2.11.10-style structured-locking layer of the
// verifier: monitor balance, LIFO exit matching, merge agreement, and
// throw/return-with-monitors rejection.

// handlerReleaseMethod is the javac synchronized-block shape: the
// protected region throws, the handler re-releases the monitor.
func handlerReleaseMethod() *Method {
	code, handlers, err := NewAsm().
		Aload(0).MonitorEnter().
		Label("start").
		Iload(1).Throw().
		Label("end").
		Label("handler").
		Aload(0).MonitorExit().
		Pop().
		Return().
		Protect("start", "end", "handler").
		BuildWithHandlers()
	if err != nil {
		panic(err)
	}
	return &Method{Name: "m", Flags: FlagStatic, NumArgs: 2, MaxLocals: 2,
		Code: code, Handlers: handlers}
}

func TestStructuredLockingAccepts(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		m    *Method
	}{
		{
			"slot-keyed enter/exit",
			&Method{Name: "m", Flags: FlagStatic, NumArgs: 1, MaxLocals: 1,
				Code: NewAsm().
					Aload(0).MonitorEnter().
					Aload(0).MonitorExit().
					Return().
					MustBuild()},
		},
		{
			"javac pattern: new, astore, slot-keyed region",
			&Method{Name: "m", Flags: FlagStatic, MaxLocals: 1,
				Class: &Class{Name: "X"},
				Code: NewAsm().
					New(0).Astore(0).
					Aload(0).MonitorEnter().
					Aload(0).MonitorExit().
					Return().
					MustBuild()},
		},
		{
			"nested LIFO monitors on distinct slots",
			&Method{Name: "m", Flags: FlagStatic, NumArgs: 2, MaxLocals: 2,
				Code: NewAsm().
					Aload(0).MonitorEnter().
					Aload(1).MonitorEnter().
					Aload(1).MonitorExit().
					Aload(0).MonitorExit().
					Return().
					MustBuild()},
		},
		{
			"dup-keyed new object",
			&Method{Name: "m", Flags: FlagStatic, MaxLocals: 0,
				Class: &Class{Name: "X"},
				Code: NewAsm().
					New(0).Dup().MonitorEnter().MonitorExit().
					Return().
					MustBuild()},
		},
		{
			"enter and exit inside a loop body",
			&Method{Name: "m", Flags: FlagStatic | FlagReturnsValue,
				NumArgs: 2, MaxLocals: 3,
				Code: NewAsm().
					Iconst(0).Istore(2).
					Label("loop").
					Iload(2).Iload(1).IfICmpGE("done").
					Aload(0).MonitorEnter().
					Iinc(2, 1).
					Aload(0).MonitorExit().
					Goto("loop").
					Label("done").
					Iload(2).IReturn().
					MustBuild()},
		},
		{
			"handler re-release pattern",
			handlerReleaseMethod(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := verifyOne(tc.m); err != nil {
				t.Fatalf("rejected: %v", err)
			}
		})
	}
}

func TestStructuredLockingRejects(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		m    *Method
		want string
	}{
		{
			"monitorexit at depth zero",
			&Method{Name: "m", Flags: FlagStatic, NumArgs: 1, MaxLocals: 1,
				Code: NewAsm().
					Aload(0).MonitorExit().
					Return().
					MustBuild()},
			"no monitor held",
		},
		{
			"return with monitor held",
			&Method{Name: "m", Flags: FlagStatic, NumArgs: 1, MaxLocals: 1,
				Code: NewAsm().
					Aload(0).MonitorEnter().
					Return().
					MustBuild()},
			"monitor(s) still held",
		},
		{
			"exit does not match innermost",
			&Method{Name: "m", Flags: FlagStatic, NumArgs: 2, MaxLocals: 2,
				Code: NewAsm().
					Aload(0).MonitorEnter().
					Aload(1).MonitorEnter().
					Aload(0).MonitorExit(). // out of LIFO order
					Aload(1).MonitorExit().
					Return().
					MustBuild()},
			"does not match innermost",
		},
		{
			"merge paths disagree on monitor depth",
			&Method{Name: "m", Flags: FlagStatic, NumArgs: 2, MaxLocals: 2,
				Code: NewAsm().
					Iload(1).IfEQ("skip").
					Aload(0).MonitorEnter().
					Label("skip").
					Aload(0).MonitorExit().
					Return().
					MustBuild()},
			"monitors",
		},
		{
			"merge paths disagree on monitor key",
			&Method{Name: "m", Flags: FlagStatic, NumArgs: 3, MaxLocals: 3,
				Code: NewAsm().
					Iload(2).IfEQ("other").
					Aload(0).MonitorEnter().
					Goto("join").
					Label("other").
					Aload(1).MonitorEnter().
					Label("join").
					Aload(0).MonitorExit().
					Return().
					MustBuild()},
			"monitor stacks disagree",
		},
		{
			"store over slot whose monitor is held",
			&Method{Name: "m", Flags: FlagStatic, NumArgs: 2, MaxLocals: 2,
				Code: NewAsm().
					Aload(0).MonitorEnter().
					Aload(1).Astore(0).
					Aload(0).MonitorExit().
					Return().
					MustBuild()},
			"while its monitor is held",
		},
		{
			"exit keyed by stale slot value",
			&Method{Name: "m", Flags: FlagStatic, NumArgs: 2, MaxLocals: 2,
				Code: NewAsm().
					Aload(0).MonitorEnter().
					Aload(0). // stacked slot-0 value...
					Aload(0).MonitorExit().
					Aload(1).Astore(0). // ...then slot 0 is replaced
					MonitorExit().      // stale value no longer keys slot 0
					Return().
					MustBuild()},
			"no monitor held",
		},
		{
			"throw with monitor held and no handler",
			&Method{Name: "m", Flags: FlagStatic, NumArgs: 2, MaxLocals: 2,
				Code: NewAsm().
					Aload(0).MonitorEnter().
					Iload(1).Throw().
					MustBuild()},
			"unwind",
		},
		{
			"unknown-provenance enter can never be exited",
			&Method{Name: "m", Flags: FlagStatic, NumArgs: 1, MaxLocals: 1,
				Code: NewAsm().
					Aload(0).GetField(0).MonitorEnter(). // field load: untracked
					Aload(0).GetField(0).MonitorExit().
					Return().
					MustBuild()},
			"untracked",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := verifyOne(tc.m)
			if err == nil {
				t.Fatalf("verifier accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestStructuredLockingInvokeUnwind checks the interprocedural
// may-throw analysis: calling a method that can throw while holding a
// monitor is only legal under a covering handler.
func TestStructuredLockingInvokeUnwind(t *testing.T) {
	t.Parallel()
	build := func(protect bool) error {
		p := NewProgram()
		thrower := &Method{
			Name: "boom", Flags: FlagStatic, NumArgs: 1, MaxLocals: 1,
			Code: NewAsm().Iload(0).Throw().MustBuild(),
		}
		p.AddMethod(thrower)
		a := NewAsm().
			Aload(0).MonitorEnter().
			Label("start").
			Iconst(3).Invoke(0).
			Label("end").
			Aload(0).MonitorExit().
			Return().
			Label("handler").
			Aload(0).MonitorExit().
			Pop().
			Return()
		if protect {
			a.Protect("start", "end", "handler")
		}
		code, handlers, err := a.BuildWithHandlers()
		if err != nil {
			return err
		}
		caller := &Method{
			Name: "call", Flags: FlagStatic, NumArgs: 1, MaxLocals: 1,
			Code: code, Handlers: handlers,
		}
		p.AddMethod(caller)
		if err := verify(p, thrower); err != nil {
			return err
		}
		return verify(p, caller)
	}
	if err := build(true); err != nil {
		t.Fatalf("covered may-throw call rejected: %v", err)
	}
	err := build(false)
	if err == nil {
		t.Fatal("uncovered may-throw call with monitor held accepted")
	}
	if !strings.Contains(err.Error(), "may unwind") {
		t.Fatalf("err = %v, want may-unwind rejection", err)
	}
}

// TestStructuredLockingCalleeCannotUnbalance: a callee that exits a
// monitor it did not enter is rejected on its own, so imbalance cannot
// cross call boundaries.
func TestStructuredLockingCalleeCannotUnbalance(t *testing.T) {
	t.Parallel()
	m := &Method{
		Name: "stealUnlock", Flags: FlagStatic, NumArgs: 1, MaxLocals: 1,
		Code: NewAsm().Aload(0).MonitorExit().Return().MustBuild(),
	}
	if err := verifyOne(m); err == nil {
		t.Fatal("callee-side naked monitorexit accepted")
	}
}

func TestCollectMonitorFacts(t *testing.T) {
	t.Parallel()
	p := NewProgram()
	cA := &Class{Name: "A"}
	cB := &Class{Name: "B"}
	p.AddClass(cA)
	p.AddClass(cB)
	m := &Method{
		Name: "nest", Flags: FlagStatic, NumArgs: 2, MaxLocals: 2,
		ParamClasses: []int{0, 1}, // a: A, b: B
		Code: NewAsm().
			Aload(0).MonitorEnter(). // pc 1
			Aload(1).MonitorEnter(). // pc 3
			Aload(1).MonitorExit().
			Aload(0).MonitorExit().
			Return().
			MustBuild(),
	}
	p.AddMethod(m)
	facts, err := CollectMonitorFacts(p, m)
	if err != nil {
		t.Fatal(err)
	}
	outer, ok := facts.EnterAt[1]
	if !ok || outer.Class != 0 || outer.Slot != 0 {
		t.Fatalf("outer enter fact = %+v, %v", outer, ok)
	}
	inner, ok := facts.EnterAt[3]
	if !ok || inner.Class != 1 || inner.Slot != 1 {
		t.Fatalf("inner enter fact = %+v, %v", inner, ok)
	}
	// At the inner enter, the outer monitor is held.
	held := facts.HeldAt[3]
	if len(held) != 1 || held[0].Class != 0 {
		t.Fatalf("held at inner enter = %+v", held)
	}
}
