package monitor

import (
	"strings"
	"testing"
	"time"

	"thinlock/internal/threading"
)

func TestRetireLifecycle(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 2)
	m := New()
	if m.Retired() {
		t.Fatal("fresh monitor retired")
	}

	// Retire requires sole ownership at depth 1.
	if m.Retire(ths[0]) {
		t.Fatal("retired an unowned monitor")
	}
	m.Enter(ths[0])
	m.Enter(ths[0])
	if m.Retire(ths[0]) {
		t.Fatal("retired at depth 2")
	}
	if err := m.Exit(ths[0]); err != nil {
		t.Fatal(err)
	}
	if m.Retire(ths[1]) {
		t.Fatal("non-owner retired the monitor")
	}
	if !m.Retire(ths[0]) {
		t.Fatal("owner at depth 1 could not retire")
	}
	if !m.Retired() {
		t.Fatal("Retired() false after Retire")
	}
	if m.Owner() != nil || m.Count() != 0 {
		t.Fatal("retire left ownership behind")
	}

	// A retired monitor rejects all entry forms.
	if m.EnterIfActive(ths[1]) {
		t.Fatal("EnterIfActive succeeded on retired monitor")
	}
	if m.TryEnter(ths[1]) {
		t.Fatal("TryEnter succeeded on retired monitor")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Enter on retired monitor did not panic")
		}
	}()
	m.Enter(ths[1])
}

func TestRetireRefusedWithQueuedThreads(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 2)
	m := New()
	m.Enter(ths[0])
	entered := make(chan struct{})
	go func() {
		if !m.EnterIfActive(ths[1]) {
			t.Error("EnterIfActive failed on active monitor")
		}
		close(entered)
	}()
	waitFor(t, func() bool { return m.EntryQueueLen() == 1 })
	if m.Retire(ths[0]) {
		t.Fatal("retired with a queued entrant")
	}
	if err := m.Exit(ths[0]); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("queued entrant lost")
	}
	if err := m.Exit(ths[1]); err != nil {
		t.Fatal(err)
	}
}

func TestRetireRefusedWithWaiters(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 2)
	m := New()
	go func() {
		m.Enter(ths[0])
		if _, err := m.Wait(ths[0], 0); err != nil {
			t.Error(err)
		}
		if err := m.Exit(ths[0]); err != nil {
			t.Error(err)
		}
	}()
	waitFor(t, func() bool { return m.WaitSetLen() == 1 })
	m.Enter(ths[1])
	if m.Retire(ths[1]) {
		t.Fatal("retired with a waiter in the wait set")
	}
	if err := m.Notify(ths[1]); err != nil {
		t.Fatal(err)
	}
	if err := m.Exit(ths[1]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, m.Quiescent)
}

func TestEnterIfActiveBehavesLikeEnterWhenActive(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 1)
	m := New()
	if !m.EnterIfActive(ths[0]) {
		t.Fatal("EnterIfActive on fresh monitor failed")
	}
	if !m.EnterIfActive(ths[0]) {
		t.Fatal("recursive EnterIfActive failed")
	}
	if m.Count() != 2 {
		t.Fatalf("count = %d", m.Count())
	}
	for i := 0; i < 2; i++ {
		if err := m.Exit(ths[0]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMonitorString(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 1)
	m := New()
	m.Enter(ths[0])
	s := m.String()
	for _, want := range []string{"monitor(", "count=1", "entry=0", "wait=0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if err := m.Exit(ths[0]); err != nil {
		t.Fatal(err)
	}
}

func TestInterruptibleInterface(t *testing.T) {
	t.Parallel()
	// The wait node satisfies threading.Interruptible; double interrupt
	// must be safe.
	var _ threading.Interruptible = (*node)(nil)
	n := &node{intr: make(chan struct{})}
	n.WakeForInterrupt()
	n.WakeForInterrupt() // idempotent via sync.Once
	select {
	case <-n.intr:
	default:
		t.Fatal("interrupt channel not closed")
	}
}
