package monitor

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thinlock/internal/testutil"
	"thinlock/internal/threading"
)

func newThreads(t *testing.T, n int) []*threading.Thread {
	t.Helper()
	r := threading.NewRegistry()
	out := make([]*threading.Thread, n)
	for i := range out {
		th, err := r.Attach("t")
		if err != nil {
			t.Fatal(err)
		}
		out[i] = th
	}
	return out
}

func TestEnterExitBasic(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 1)
	m := New()
	m.Enter(ths[0])
	if m.Owner() != ths[0] {
		t.Fatalf("owner = %v, want %v", m.Owner(), ths[0])
	}
	if m.Count() != 1 {
		t.Fatalf("count = %d, want 1", m.Count())
	}
	if err := m.Exit(ths[0]); err != nil {
		t.Fatal(err)
	}
	if m.Owner() != nil {
		t.Fatalf("owner = %v after exit, want nil", m.Owner())
	}
}

func TestRecursiveEnter(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 1)
	m := New()
	for i := 1; i <= 5; i++ {
		m.Enter(ths[0])
		if m.Count() != uint32(i) {
			t.Fatalf("count = %d after %d enters", m.Count(), i)
		}
	}
	for i := 4; i >= 0; i-- {
		if err := m.Exit(ths[0]); err != nil {
			t.Fatal(err)
		}
		if m.Count() != uint32(i) {
			t.Fatalf("count = %d, want %d", m.Count(), i)
		}
	}
	if m.Owner() != nil {
		t.Fatal("owner survives balanced exit")
	}
}

func TestExitWithoutOwnership(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 2)
	m := New()
	if err := m.Exit(ths[0]); err != ErrIllegalMonitorState {
		t.Fatalf("exit of unowned monitor: err = %v", err)
	}
	m.Enter(ths[0])
	if err := m.Exit(ths[1]); err != ErrIllegalMonitorState {
		t.Fatalf("exit by non-owner: err = %v", err)
	}
	if m.Owner() != ths[0] || m.Count() != 1 {
		t.Fatal("failed exit perturbed monitor state")
	}
}

func TestTryEnter(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 2)
	m := New()
	if !m.TryEnter(ths[0]) {
		t.Fatal("TryEnter of free monitor failed")
	}
	if !m.TryEnter(ths[0]) {
		t.Fatal("recursive TryEnter failed")
	}
	if m.Count() != 2 {
		t.Fatalf("count = %d, want 2", m.Count())
	}
	if m.TryEnter(ths[1]) {
		t.Fatal("TryEnter by second thread succeeded while owned")
	}
}

func TestContendedEnterBlocksAndHandsOff(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 2)
	m := New()
	m.Enter(ths[0])
	entered := make(chan struct{})
	go func() {
		m.Enter(ths[1])
		close(entered)
	}()
	// Give the second thread time to queue.
	waitFor(t, func() bool { return m.EntryQueueLen() == 1 })
	select {
	case <-entered:
		t.Fatal("second thread entered while monitor owned")
	default:
	}
	if err := m.Exit(ths[0]); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("handoff never happened")
	}
	if m.Owner() != ths[1] || m.Count() != 1 {
		t.Fatalf("owner=%v count=%d after handoff", m.Owner(), m.Count())
	}
	if m.ContendedEntries() != 1 {
		t.Errorf("ContendedEntries = %d, want 1", m.ContendedEntries())
	}
}

func TestHandoffIsFIFO(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 4)
	m := New()
	m.Enter(ths[0])
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		// Queue strictly one at a time so the queue order is known.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Enter(ths[i])
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			if err := m.Exit(ths[i]); err != nil {
				t.Error(err)
			}
		}(i)
		waitFor(t, func() bool { return m.EntryQueueLen() == i })
	}
	if err := m.Exit(ths[0]); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, got := range order {
		if got != i+1 {
			t.Fatalf("handoff order = %v, want [1 2 3]", order)
		}
	}
}

// TestMutualExclusion hammers a counter through the monitor and checks
// that no increment is lost and no two threads are ever inside at once.
func TestMutualExclusion(t *testing.T) {
	t.Parallel()
	const goroutines, iters = 8, 300
	ths := newThreads(t, goroutines)
	m := New()
	var inside, maxInside, counter int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(th *threading.Thread) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Enter(th)
				n := atomic.AddInt32(&inside, 1)
				if n > 1 {
					atomic.StoreInt32(&maxInside, n)
				}
				counter++
				atomic.AddInt32(&inside, -1)
				if err := m.Exit(th); err != nil {
					t.Error(err)
				}
			}
		}(ths[g])
	}
	wg.Wait()
	if maxInside > 1 {
		t.Fatalf("%d threads inside the monitor at once", maxInside)
	}
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d (lost updates)", counter, goroutines*iters)
	}
}

func TestSeedOwner(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 1)
	m := New()
	m.SeedOwner(ths[0], 7)
	if m.Owner() != ths[0] || m.Count() != 7 {
		t.Fatalf("owner=%v count=%d after seed", m.Owner(), m.Count())
	}
	for i := 0; i < 7; i++ {
		if err := m.Exit(ths[0]); err != nil {
			t.Fatal(err)
		}
	}
	if m.Owner() != nil {
		t.Fatal("owner after unwinding seeded count")
	}
}

func TestSeedOwnerPanicsWhenInUse(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 2)
	m := New()
	m.Enter(ths[0])
	defer func() {
		if recover() == nil {
			t.Fatal("SeedOwner on owned monitor did not panic")
		}
	}()
	m.SeedOwner(ths[1], 1)
}

func TestSeedOwnerPanicsOnZeroCount(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 1)
	m := New()
	defer func() {
		if recover() == nil {
			t.Fatal("SeedOwner with zero count did not panic")
		}
	}()
	m.SeedOwner(ths[0], 0)
}

func TestWaitRequiresOwnership(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 1)
	m := New()
	if _, err := m.Wait(ths[0], 0); err != ErrIllegalMonitorState {
		t.Fatalf("wait without ownership: err = %v", err)
	}
	if err := m.Notify(ths[0]); err != ErrIllegalMonitorState {
		t.Fatalf("notify without ownership: err = %v", err)
	}
	if err := m.NotifyAll(ths[0]); err != ErrIllegalMonitorState {
		t.Fatalf("notifyAll without ownership: err = %v", err)
	}
}

func TestWaitNotify(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 2)
	m := New()
	woke := make(chan bool, 1)
	go func() {
		m.Enter(ths[0])
		notified, err := m.Wait(ths[0], 0)
		if err != nil {
			t.Error(err)
		}
		woke <- notified
		if err := m.Exit(ths[0]); err != nil {
			t.Error(err)
		}
	}()
	waitFor(t, func() bool { return m.WaitSetLen() == 1 })
	m.Enter(ths[1])
	if err := m.Notify(ths[1]); err != nil {
		t.Fatal(err)
	}
	// Waiter must not wake until we exit (it has to re-acquire).
	select {
	case <-woke:
		t.Fatal("waiter resumed while notifier still owns monitor")
	case <-time.After(30 * time.Millisecond):
	}
	if err := m.Exit(ths[1]); err != nil {
		t.Fatal(err)
	}
	select {
	case notified := <-woke:
		if !notified {
			t.Fatal("waiter reported timeout, want notified")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestWaitReleasesFullRecursionAndRestoresIt(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 2)
	m := New()
	depthRestored := make(chan uint32, 1)
	go func() {
		m.Enter(ths[0])
		m.Enter(ths[0])
		m.Enter(ths[0]) // depth 3
		if _, err := m.Wait(ths[0], 0); err != nil {
			t.Error(err)
		}
		depthRestored <- m.Count()
		for i := 0; i < 3; i++ {
			if err := m.Exit(ths[0]); err != nil {
				t.Error(err)
			}
		}
	}()
	waitFor(t, func() bool { return m.WaitSetLen() == 1 })
	// The wait must have fully released: we can enter immediately.
	m.Enter(ths[1])
	if err := m.Notify(ths[1]); err != nil {
		t.Fatal(err)
	}
	if err := m.Exit(ths[1]); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-depthRestored:
		if d != 3 {
			t.Fatalf("restored depth = %d, want 3", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never resumed")
	}
}

func TestWaitTimeout(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 1)
	m := New()
	m.Enter(ths[0])
	start := time.Now()
	notified, err := m.Wait(ths[0], 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if notified {
		t.Fatal("notified = true on timeout")
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("wait returned after %v, want >= ~30ms", elapsed)
	}
	// Lock must be re-held after a timed-out wait.
	if m.Owner() != ths[0] || m.Count() != 1 {
		t.Fatalf("owner=%v count=%d after timeout", m.Owner(), m.Count())
	}
	if m.WaitSetLen() != 0 {
		t.Fatal("stale node left in wait set")
	}
}

func TestWaitTimeoutRecontends(t *testing.T) {
	t.Parallel()
	// A timed-out waiter must queue behind the current owner.
	ths := newThreads(t, 2)
	m := New()
	resumed := make(chan struct{})
	go func() {
		m.Enter(ths[0])
		if _, err := m.Wait(ths[0], 250*time.Millisecond); err != nil {
			t.Error(err)
		}
		close(resumed)
		if err := m.Exit(ths[0]); err != nil {
			t.Error(err)
		}
	}()
	waitFor(t, func() bool { return m.WaitSetLen() == 1 })
	m.Enter(ths[1]) // hold the lock across the waiter's timeout
	// The timed-out waiter must land in the entry queue, not resume.
	waitFor(t, func() bool { return m.EntryQueueLen() == 1 })
	select {
	case <-resumed:
		t.Fatal("timed-out waiter resumed while lock held elsewhere")
	default:
	}
	if err := m.Exit(ths[1]); err != nil {
		t.Fatal(err)
	}
	select {
	case <-resumed:
	case <-time.After(2 * time.Second):
		t.Fatal("timed-out waiter never re-acquired")
	}
}

func TestNotifyWakesExactlyOne(t *testing.T) {
	t.Parallel()
	const waiters = 4
	ths := newThreads(t, waiters+1)
	m := New()
	var woken atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(th *threading.Thread) {
			defer wg.Done()
			m.Enter(th)
			if _, err := m.Wait(th, 0); err != nil {
				t.Error(err)
			}
			woken.Add(1)
			if err := m.Exit(th); err != nil {
				t.Error(err)
			}
		}(ths[i])
	}
	waitFor(t, func() bool { return m.WaitSetLen() == waiters })

	notifier := ths[waiters]
	m.Enter(notifier)
	if err := m.Notify(notifier); err != nil {
		t.Fatal(err)
	}
	if err := m.Exit(notifier); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return woken.Load() == 1 })
	time.Sleep(30 * time.Millisecond)
	if woken.Load() != 1 {
		t.Fatalf("woken = %d after single notify, want 1", woken.Load())
	}

	// Clean up: wake the rest.
	m.Enter(notifier)
	if err := m.NotifyAll(notifier); err != nil {
		t.Fatal(err)
	}
	if err := m.Exit(notifier); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if woken.Load() != waiters {
		t.Fatalf("woken = %d after notifyAll, want %d", woken.Load(), waiters)
	}
}

func TestNotifyAllWakesAll(t *testing.T) {
	t.Parallel()
	const waiters = 6
	ths := newThreads(t, waiters+1)
	m := New()
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(th *threading.Thread) {
			defer wg.Done()
			m.Enter(th)
			notified, err := m.Wait(th, 0)
			if err != nil {
				t.Error(err)
			}
			if !notified {
				t.Error("waiter woke without notify")
			}
			if err := m.Exit(th); err != nil {
				t.Error(err)
			}
		}(ths[i])
	}
	waitFor(t, func() bool { return m.WaitSetLen() == waiters })
	m.Enter(ths[waiters])
	if err := m.NotifyAll(ths[waiters]); err != nil {
		t.Fatal(err)
	}
	if m.WaitSetLen() != 0 {
		t.Fatal("wait set nonempty after notifyAll")
	}
	if err := m.Exit(ths[waiters]); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestNotifyWithEmptyWaitSetIsNoop(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 1)
	m := New()
	m.Enter(ths[0])
	if err := m.Notify(ths[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.NotifyAll(ths[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Exit(ths[0]); err != nil {
		t.Fatal(err)
	}
}

func TestWaitInterrupted(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 1)
	m := New()
	errCh := make(chan error, 1)
	go func() {
		m.Enter(ths[0])
		_, err := m.Wait(ths[0], 0)
		errCh <- err
		if e := m.Exit(ths[0]); e != nil {
			t.Error(e)
		}
	}()
	waitFor(t, func() bool { return m.WaitSetLen() == 1 })
	ths[0].Interrupt()
	select {
	case err := <-errCh:
		if err != threading.ErrInterrupted {
			t.Fatalf("err = %v, want ErrInterrupted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("interrupt did not wake waiter")
	}
	if ths[0].IsInterrupted() {
		t.Fatal("interrupt status not cleared by interrupted wait")
	}
}

func TestWaitWithPendingInterrupt(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 1)
	m := New()
	m.Enter(ths[0])
	ths[0].Interrupt()
	if _, err := m.Wait(ths[0], 0); err != threading.ErrInterrupted {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	// The monitor must still be held.
	if m.Owner() != ths[0] {
		t.Fatal("pending-interrupt wait released the monitor")
	}
	if err := m.Exit(ths[0]); err != nil {
		t.Fatal(err)
	}
}

func TestQuiescent(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 1)
	m := New()
	if !m.Quiescent() {
		t.Fatal("fresh monitor not quiescent")
	}
	m.Enter(ths[0])
	if m.Quiescent() {
		t.Fatal("owned monitor reported quiescent")
	}
	if err := m.Exit(ths[0]); err != nil {
		t.Fatal(err)
	}
	if !m.Quiescent() {
		t.Fatal("released monitor not quiescent")
	}
}

func TestStatsCounters(t *testing.T) {
	t.Parallel()
	ths := newThreads(t, 2)
	m := New()
	m.Enter(ths[0])
	go func() {
		time.Sleep(20 * time.Millisecond)
		if err := m.Exit(ths[0]); err != nil {
			t.Error(err)
		}
	}()
	m.Enter(ths[1]) // contended
	if err := m.Notify(ths[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(ths[1], 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := m.Exit(ths[1]); err != nil {
		t.Fatal(err)
	}
	if m.ContendedEntries() == 0 {
		t.Error("ContendedEntries not counted")
	}
	if m.Waits() != 1 {
		t.Errorf("Waits = %d, want 1", m.Waits())
	}
	if m.Notifies() != 1 {
		t.Errorf("Notifies = %d, want 1", m.Notifies())
	}
}

// waitFor blocks until a monitor-state condition raced by another
// goroutine holds, via the shared bounded-backoff helper.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	testutil.Eventually(t, 10*time.Second, "monitor condition", cond)
}

func BenchmarkUncontendedEnterExit(b *testing.B) {
	r := threading.NewRegistry()
	th, _ := r.Attach("b")
	m := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Enter(th)
		if err := m.Exit(th); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecursiveEnterExit(b *testing.B) {
	r := threading.NewRegistry()
	th, _ := r.Attach("b")
	m := New()
	m.Enter(th)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Enter(th)
		if err := m.Exit(th); err != nil {
			b.Fatal(err)
		}
	}
}
