// Package monitor implements the heavy-weight ("fat") locks that thin
// locks inflate into, together with the global table mapping 23-bit
// monitor indices to monitor structures.
//
// The paper assumes "a pre-existing heavy-weight system ... to support the
// full range of Java synchronization semantics, including queuing of
// unsatisfied lock requests, and the wait, notify, and notifyAll
// operations. Such a system will represent a monitor as a multi-word
// structure which includes space for a thread pointer, a nested lock
// count, and the necessary queues." (§2.1). This package is that system:
// a Monitor holds an owner thread pointer, the lock count (the number of
// locks, not the number minus one as in a thin lock — Figure 2), a FIFO
// entry queue and a wait set. Blocked threads park on per-node channels.
//
// Monitor entry uses direct handoff: when the owner exits, ownership is
// transferred to the head of the entry queue before that thread resumes,
// which keeps the queue FIFO-fair and makes the ownership invariant easy
// to state (owner == nil implies the entry queue is empty).
package monitor

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"thinlock/internal/lockprof"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

// ErrIllegalMonitorState is returned when a thread performs exit, wait,
// notify or notifyAll on a monitor it does not own, mirroring Java's
// IllegalMonitorStateException.
var ErrIllegalMonitorState = errors.New("monitor: thread does not own monitor")

// nodeState tracks where a blocked thread's node currently lives.
// All transitions happen under the monitor latch.
type nodeState int

const (
	stateEntryQueue nodeState = iota // blocked entering; in entry queue
	stateWaitSet                     // blocked in wait; in wait set
	stateGranted                     // ownership handed to this node
)

// node represents one blocked thread, used for both the entry queue and
// the wait set (notify moves a node from the wait set to the entry
// queue without reallocating).
type node struct {
	t       *threading.Thread
	granted chan struct{} // receives the ownership handoff; buffered 1
	intr    chan struct{} // closed on interrupt (wait nodes only)
	intrOne sync.Once
	reentry uint32 // lock count to restore when granted
	state   nodeState
}

// WakeForInterrupt implements threading.Interruptible.
func (n *node) WakeForInterrupt() {
	n.intrOne.Do(func() { close(n.intr) })
}

// Monitor is a heavy-weight recursive lock with condition-variable
// semantics. The zero value is unusable; create monitors with New or
// Table.Allocate.
type Monitor struct {
	latch   sync.Mutex
	owner   *threading.Thread
	count   uint32
	entry   []*node // FIFO entry queue
	waits   []*node // wait set, notified in FIFO order
	index   uint32  // index in the owning Table (0 if table-less)
	retired bool    // set by Retire; the monitor no longer guards its object

	// recycledIdx records that the Table served this monitor's index
	// from a free list rather than extending the index space. Set once
	// at allocation, read-only afterwards.
	recycledIdx bool

	contended atomic.Uint64 // entries that had to queue
	waitCount atomic.Uint64 // Wait calls
	notifies  atomic.Uint64 // Notify + NotifyAll calls
}

// New returns a fresh unowned monitor that is not registered in any
// table (Index reports 0).
func New() *Monitor { return &Monitor{} }

// Index returns the monitor's index in its Table, or 0 if it was created
// with New.
func (m *Monitor) Index() uint32 { return m.index }

// String implements fmt.Stringer.
func (m *Monitor) String() string {
	m.latch.Lock()
	defer m.latch.Unlock()
	return fmt.Sprintf("monitor(idx=%d owner=%v count=%d entry=%d wait=%d)",
		m.index, m.owner, m.count, len(m.entry), len(m.waits))
}

// Enter acquires the monitor for t, blocking until it is available.
// Re-entry by the owner increments the lock count. Entering a retired
// monitor is a caller bug (only the deflation extension retires monitors,
// and it enters through EnterIfActive).
func (m *Monitor) Enter(t *threading.Thread) {
	if !m.enterWithCount(t, 1) {
		panic("monitor: Enter on retired monitor")
	}
}

// EnterIfActive is like Enter but fails fast, without acquiring, when the
// monitor has been retired by the deflation extension. A false return
// means the caller must retry from the object header, which no longer
// points at this monitor.
func (m *Monitor) EnterIfActive(t *threading.Thread) bool {
	m.latch.Lock()
	if m.retired {
		m.latch.Unlock()
		return false
	}
	m.latch.Unlock()
	// Between the check and the enter the monitor cannot become retired
	// while we block: Retire requires ownership with empty queues, and
	// our queue node prevents that. It can, however, retire before we
	// queue; enterWithCount re-checks under one latch acquisition.
	return m.enterWithCount(t, 1)
}

// Retire deflates the monitor: if t owns it exactly once and both queues
// are empty, the monitor is marked retired and released, and true is
// returned. A retired monitor rejects all future entries, forcing
// latecomers back to the object header. Used only by the deflation
// extension; the paper's protocol never deflates (§2.3).
func (m *Monitor) Retire(t *threading.Thread) bool {
	m.latch.Lock()
	defer m.latch.Unlock()
	if m.owner != t || m.count != 1 || len(m.entry) > 0 || len(m.waits) > 0 {
		return false
	}
	m.owner = nil
	m.count = 0
	m.retired = true
	telemetry.Inc(t, telemetry.CtrMonitorRetirements)
	return true
}

// RetireDroppingQueue is Retire with the entry-queue emptiness check
// removed: a queued contender's node is abandoned, its handoff never
// arrives, and the thread sleeps forever. It exists only as the seeded
// deflate-queue mutation (see core.Mutations), so the differential
// checker can prove it detects a deflation that strands contenders.
func (m *Monitor) RetireDroppingQueue(t *threading.Thread) bool {
	m.latch.Lock()
	defer m.latch.Unlock()
	if m.owner != t || m.count != 1 || len(m.waits) > 0 {
		return false
	}
	m.owner = nil
	m.count = 0
	m.retired = true
	telemetry.Inc(t, telemetry.CtrMonitorRetirements)
	return true
}

// RecycledIndex reports whether this monitor's index was served from the
// table's free list (i.e. a previous monitor was deflated out of it).
func (m *Monitor) RecycledIndex() bool { return m.recycledIdx }

// Retired reports whether the monitor has been deflated away.
func (m *Monitor) Retired() bool {
	m.latch.Lock()
	defer m.latch.Unlock()
	return m.retired
}

// enterWithCount acquires the monitor and, when the acquisition is an
// initial one (not a recursive re-entry), sets the lock count to c. Wait
// re-acquisition uses c to restore its saved recursion depth in one step.
// It returns false without acquiring if the monitor is retired.
func (m *Monitor) enterWithCount(t *threading.Thread, c uint32) bool {
	m.latch.Lock()
	if m.retired {
		m.latch.Unlock()
		return false
	}
	switch {
	case m.owner == nil:
		m.owner = t
		m.count = c
		m.latch.Unlock()
		return true
	case m.owner == t:
		m.count += c
		m.latch.Unlock()
		return true
	}
	n := &node{t: t, granted: make(chan struct{}, 1), reentry: c, state: stateEntryQueue}
	m.entry = append(m.entry, n)
	m.contended.Add(1)
	depth := len(m.entry)
	m.latch.Unlock()
	tm := telemetry.Active()
	p := lockprof.Active()
	if tm == nil && p == nil {
		<-n.granted // direct handoff: owner/count already set for us
		return true
	}
	if tm != nil {
		tm.Inc(t, telemetry.CtrMonitorContendedEntries)
		tm.Observe(t, telemetry.HistEntryQueueDepth, int64(depth))
	}
	start := telemetry.Now()
	<-n.granted // direct handoff: owner/count already set for us
	stalled := telemetry.Now() - start
	if tm != nil {
		tm.Observe(t, telemetry.HistMonitorStallNs, stalled)
	}
	if p != nil {
		p.Park(t, stalled)
	}
	return true
}

// TryEnter acquires the monitor only if it can do so without blocking,
// reporting whether it succeeded.
func (m *Monitor) TryEnter(t *threading.Thread) bool {
	m.latch.Lock()
	defer m.latch.Unlock()
	if m.retired {
		return false
	}
	switch {
	case m.owner == nil:
		m.owner = t
		m.count = 1
		return true
	case m.owner == t:
		m.count++
		return true
	}
	return false
}

// SeedOwner makes t the owner with the given lock count without blocking.
// It is used during inflation: the inflating thread already holds the
// object's thin lock, so it installs itself as the fat lock's owner
// before publishing the monitor index in the object header. Seeding a
// monitor that is in use is a bug in the caller.
func (m *Monitor) SeedOwner(t *threading.Thread, count uint32) {
	m.latch.Lock()
	defer m.latch.Unlock()
	if m.owner != nil || len(m.entry) > 0 || len(m.waits) > 0 {
		panic("monitor: SeedOwner on a monitor in use")
	}
	if count == 0 {
		panic("monitor: SeedOwner with zero count")
	}
	m.owner = t
	m.count = count
}

// Exit releases one level of the monitor. Releasing the last level hands
// the monitor to the head of the entry queue, if any.
func (m *Monitor) Exit(t *threading.Thread) error {
	m.latch.Lock()
	if m.owner != t {
		m.latch.Unlock()
		return ErrIllegalMonitorState
	}
	m.count--
	if m.count == 0 {
		m.handoffLocked()
	}
	m.latch.Unlock()
	return nil
}

// handoffLocked transfers ownership to the head of the entry queue, or
// marks the monitor unowned. Caller holds the latch and has already set
// count to 0.
func (m *Monitor) handoffLocked() {
	if len(m.entry) == 0 {
		m.owner = nil
		return
	}
	n := m.entry[0]
	copy(m.entry, m.entry[1:])
	m.entry = m.entry[:len(m.entry)-1]
	m.owner = n.t
	m.count = n.reentry
	n.state = stateGranted
	telemetry.Inc(n.t, telemetry.CtrMonitorHandoffs)
	n.granted <- struct{}{}
}

// Wait releases the monitor completely (whatever the recursion depth),
// blocks until notified, interrupted, or d elapses (d <= 0 waits
// forever), then re-acquires the monitor at the saved depth before
// returning.
//
// notified reports whether the thread was woken by Notify/NotifyAll
// (false for timeout). err is ErrIllegalMonitorState if t does not own
// the monitor, or threading.ErrInterrupted if the wait was interrupted
// (in which case the interrupt status is cleared, as in Java).
func (m *Monitor) Wait(t *threading.Thread, d time.Duration) (notified bool, err error) {
	m.latch.Lock()
	if m.owner != t {
		m.latch.Unlock()
		return false, ErrIllegalMonitorState
	}
	if t.IsInterrupted() {
		m.latch.Unlock()
		t.Interrupted() // clear, as Java does when throwing
		return false, threading.ErrInterrupted
	}
	m.waitCount.Add(1)
	telemetry.Inc(t, telemetry.CtrWaits)
	n := &node{
		t:       t,
		granted: make(chan struct{}, 1),
		intr:    make(chan struct{}),
		reentry: m.count,
		state:   stateWaitSet,
	}
	m.waits = append(m.waits, n)
	m.count = 0
	m.handoffLocked()
	t.SetWaitNode(n)
	m.latch.Unlock()

	interrupted := false
	if d > 0 {
		timer := time.NewTimer(d)
		select {
		case <-n.granted:
			notified = true
		case <-timer.C:
			telemetry.Inc(t, telemetry.CtrWaitTimerWakeups)
		case <-n.intr:
			interrupted = true
		}
		timer.Stop()
	} else {
		select {
		case <-n.granted:
			notified = true
		case <-n.intr:
			interrupted = true
		}
	}
	t.SetWaitNode(nil)

	if !notified {
		// Timeout or interrupt. If the node is still in the wait set we
		// cancel it and re-acquire the lock by queueing normally. If a
		// concurrent notify already moved it to the entry queue, the
		// handoff is (or will be) on its way: consume it instead. In
		// the latter race Java treats the wakeup as a notification; a
		// pending interrupt status is preserved for the caller.
		m.latch.Lock()
		if n.state == stateWaitSet {
			m.removeWaiterLocked(n)
			// Re-acquire: become a normal entry-queue node reusing
			// the same channel and reentry count.
			switch {
			case m.owner == nil:
				m.owner = t
				m.count = n.reentry
				n.state = stateGranted
				m.latch.Unlock()
			case m.owner == t:
				// Impossible: we fully released and cannot have
				// re-entered while blocked.
				panic("monitor: waiter already owns monitor")
			default:
				n.state = stateEntryQueue
				m.entry = append(m.entry, n)
				m.contended.Add(1)
				m.latch.Unlock()
				<-n.granted
			}
		} else {
			// Notified concurrently with the timeout/interrupt: a
			// handoff will arrive on n.granted. Wait for it.
			m.latch.Unlock()
			<-n.granted
			notified = true
		}
	}

	if interrupted && t.Interrupted() {
		return notified, threading.ErrInterrupted
	}
	return notified, nil
}

// removeWaiterLocked deletes n from the wait set. Caller holds the latch.
func (m *Monitor) removeWaiterLocked(n *node) {
	for i, w := range m.waits {
		if w == n {
			m.waits = append(m.waits[:i], m.waits[i+1:]...)
			return
		}
	}
}

// Notify moves the longest-waiting thread from the wait set to the entry
// queue. Waking a monitor with no waiters is a no-op, as in Java.
func (m *Monitor) Notify(t *threading.Thread) error {
	m.latch.Lock()
	defer m.latch.Unlock()
	if m.owner != t {
		return ErrIllegalMonitorState
	}
	m.notifies.Add(1)
	telemetry.Inc(t, telemetry.CtrNotifies)
	m.notifyOneLocked()
	return nil
}

// NotifyAll moves every waiting thread to the entry queue.
func (m *Monitor) NotifyAll(t *threading.Thread) error {
	m.latch.Lock()
	defer m.latch.Unlock()
	if m.owner != t {
		return ErrIllegalMonitorState
	}
	m.notifies.Add(1)
	telemetry.Inc(t, telemetry.CtrNotifies)
	for len(m.waits) > 0 {
		m.notifyOneLocked()
	}
	return nil
}

// notifyOneLocked moves the head of the wait set to the entry queue.
// Caller holds the latch.
func (m *Monitor) notifyOneLocked() {
	if len(m.waits) == 0 {
		return
	}
	n := m.waits[0]
	copy(m.waits, m.waits[1:])
	m.waits = m.waits[:len(m.waits)-1]
	n.state = stateEntryQueue
	m.entry = append(m.entry, n)
}

// Owner returns the current owning thread, or nil.
func (m *Monitor) Owner() *threading.Thread {
	m.latch.Lock()
	defer m.latch.Unlock()
	return m.owner
}

// Count returns the current lock count.
func (m *Monitor) Count() uint32 {
	m.latch.Lock()
	defer m.latch.Unlock()
	return m.count
}

// EntryQueueLen reports how many threads are blocked entering.
func (m *Monitor) EntryQueueLen() int {
	m.latch.Lock()
	defer m.latch.Unlock()
	return len(m.entry)
}

// WaitSetLen reports how many threads are in the wait set.
func (m *Monitor) WaitSetLen() int {
	m.latch.Lock()
	defer m.latch.Unlock()
	return len(m.waits)
}

// Quiescent reports whether the monitor is unowned with empty queues;
// used by the deflation extension.
func (m *Monitor) Quiescent() bool {
	m.latch.Lock()
	defer m.latch.Unlock()
	return m.owner == nil && len(m.entry) == 0 && len(m.waits) == 0
}

// ContendedEntries reports how many Enter calls had to block.
func (m *Monitor) ContendedEntries() uint64 { return m.contended.Load() }

// Waits reports how many Wait calls were made.
func (m *Monitor) Waits() uint64 { return m.waitCount.Load() }

// Notifies reports how many Notify/NotifyAll calls were made.
func (m *Monitor) Notifies() uint64 { return m.notifies.Load() }
