package monitor

import (
	"sync"
	"testing"

	"thinlock/internal/threading"
)

// retireAndFree walks one monitor through the deflation lifecycle so the
// table tests can exercise Free without the core package: seed an owner,
// retire, return the index.
func retireAndFree(t *testing.T, tb *Table, m *Monitor, th *threading.Thread) {
	t.Helper()
	m.SeedOwner(th, 1)
	if !m.Retire(th) {
		t.Fatalf("Retire of quiescent owned monitor failed: %v", m)
	}
	tb.Free(m)
}

func testThread(t *testing.T, reg *threading.Registry, name string) *threading.Thread {
	t.Helper()
	th, err := reg.Attach(name)
	if err != nil {
		t.Fatalf("attach %s: %v", name, err)
	}
	return th
}

// TestFreeRecyclesIndex: with no readers pinned, a freed index must be
// reused by the next allocation, Len must stay cumulative, and Span must
// not grow.
func TestFreeRecyclesIndex(t *testing.T) {
	tb := NewTable()
	th := testThread(t, threading.NewRegistry(), "a")

	m := tb.Allocate()
	idx := m.Index()
	retireAndFree(t, tb, m, th)

	m2 := tb.Allocate()
	if m2.Index() != idx {
		t.Fatalf("recycled allocation got index %d, want %d", m2.Index(), idx)
	}
	if !m2.RecycledIndex() {
		t.Fatal("recycled allocation not marked as recycled")
	}
	if m2 == m {
		t.Fatal("monitor struct was reused; recycled indices must get fresh monitors")
	}
	if m2.Retired() {
		t.Fatal("fresh monitor on recycled index is retired")
	}
	if got, want := tb.Len(), 2; got != want {
		t.Errorf("Len = %d, want %d (cumulative)", got, want)
	}
	if got, want := tb.Span(), 1; got != want {
		t.Errorf("Span = %d, want %d (index space must not grow)", got, want)
	}
	if got := tb.Recycled(); got != 1 {
		t.Errorf("Recycled = %d, want 1", got)
	}
	if got := tb.Live(); got != 1 {
		t.Errorf("Live = %d, want 1", got)
	}
	// The stale pointer still resolves to the retired monitor semantics:
	// the old struct stays retired forever.
	if !m.Retired() {
		t.Error("old monitor lost its retired mark after recycle")
	}
}

// TestPinHoldsBackReclaim: an index freed while a reader is pinned below
// the free's stamp must not be reused until the reader unpins.
func TestPinHoldsBackReclaim(t *testing.T) {
	tb := NewTable()
	reg := threading.NewRegistry()
	th := testThread(t, reg, "a")
	reader := testThread(t, reg, "r")

	// Reader opens its window before the deflation.
	token := tb.Pin(reader.Index())

	m := tb.Allocate()
	idx := m.Index()
	retireAndFree(t, tb, m, th)

	m2 := tb.Allocate()
	if m2.Index() == idx {
		t.Fatalf("index %d reused while a reader pin predating the free is live", idx)
	}
	if got, want := tb.Span(), 2; got != want {
		t.Errorf("Span = %d, want %d (allocation must extend, not reuse)", got, want)
	}

	tb.Unpin(token)
	m3 := tb.Allocate()
	if m3.Index() != idx {
		t.Fatalf("after unpin, allocation got index %d, want recycled %d", m3.Index(), idx)
	}
}

// TestLatePinDoesNotBlockReclaim: a reader that pins after the free's
// stamp cannot be holding the freed index, so it must not stall reuse.
func TestLatePinDoesNotBlockReclaim(t *testing.T) {
	tb := NewTable()
	reg := threading.NewRegistry()
	th := testThread(t, reg, "a")
	reader := testThread(t, reg, "r")

	m := tb.Allocate()
	idx := m.Index()
	retireAndFree(t, tb, m, th)

	token := tb.Pin(reader.Index()) // window opens after the grace stamp
	defer tb.Unpin(token)

	m2 := tb.Allocate()
	if m2.Index() != idx {
		t.Fatalf("allocation got index %d, want recycled %d (late pin must not block)", m2.Index(), idx)
	}
}

// TestFallbackPinBlocksReclaim: when a thread's pin slot is occupied the
// pin degrades to a global conservative count that stalls all reclaim.
func TestFallbackPinBlocksReclaim(t *testing.T) {
	tb := NewTable()
	reg := threading.NewRegistry()
	th := testThread(t, reg, "a")
	r1 := testThread(t, reg, "r1")

	tok1 := tb.Pin(r1.Index())
	tok2 := tb.Pin(r1.Index()) // same slot: must fall back
	if tok2 != -1 {
		t.Fatalf("second pin on one slot returned token %d, want fallback -1", tok2)
	}
	tb.Unpin(tok1) // slot pin gone; only the fallback remains

	m := tb.Allocate()
	idx := m.Index()
	retireAndFree(t, tb, m, th)
	if m2 := tb.Allocate(); m2.Index() == idx {
		t.Fatalf("index %d reused while a fallback pin is live", idx)
	}

	tb.Unpin(tok2)
	if m3 := tb.Allocate(); m3.Index() != idx {
		t.Fatalf("after fallback unpin, got index %d, want recycled %d", m3.Index(), idx)
	}
}

// TestFreeUnretiredPanics: Free must refuse a monitor that has not been
// retired — freeing a live monitor would recycle an index still bound.
func TestFreeUnretiredPanics(t *testing.T) {
	tb := NewTable()
	m := tb.Allocate()
	defer func() {
		if recover() == nil {
			t.Fatal("Free of an unretired monitor did not panic")
		}
	}()
	tb.Free(m)
}

// TestConcurrentChurnKeepsSpanBounded hammers allocate/retire/free from
// many goroutines and asserts the index space stays near the concurrency
// level while cumulative allocations run far past it.
func TestConcurrentChurnKeepsSpanBounded(t *testing.T) {
	tb := NewTable()
	reg := threading.NewRegistry()

	workers := 8
	rounds := 5000
	if testing.Short() {
		rounds = 500
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := testThread(t, reg, "w")
		wg.Add(1)
		go func(th *threading.Thread) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				m := tb.Allocate()
				m.SeedOwner(th, 1)
				if !m.Retire(th) {
					t.Error("Retire failed on freshly owned monitor")
					return
				}
				tb.Free(m)
			}
		}(th)
	}
	wg.Wait()

	if got, want := tb.Len(), workers*rounds; got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	if tb.Live() != 0 {
		t.Errorf("Live = %d, want 0 after all frees", tb.Live())
	}
	// Every worker holds at most one live index, plus slack for indices
	// parked in limbo across a round boundary. 16x concurrency is a
	// generous bound that a monotonic table (span == workers*rounds)
	// misses by three orders of magnitude.
	if bound := workers * 16; tb.Span() > bound {
		t.Errorf("Span = %d after %d churn allocations, want <= %d (table must recycle)",
			tb.Span(), workers*rounds, bound)
	}
	if tb.Recycled() == 0 {
		t.Error("no allocation was ever served from the free list")
	}
}
