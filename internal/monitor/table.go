package monitor

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// IndexBits is the width of a monitor index in an inflated lock word: the
// 24-bit lock field minus the monitor shape bit.
const IndexBits = 23

// MaxMonitors is the size of the monitor index space.
const MaxMonitors = 1 << IndexBits

// chunkBits sizes the table's fixed chunks. Lookups are lock-free; only
// growth takes the table mutex.
const chunkBits = 10

const chunkSize = 1 << chunkBits

// Table maps monitor indices to monitors, mirroring "the table which maps
// inflated monitor indices to fat locks" (§2.3). Get is wait-free (an
// atomic load plus two indexing operations — the paper's "shifting the
// monitor index to the right and indexing into the vector"), because it
// sits on the locking fast path for every inflated object.
type Table struct {
	mu     sync.Mutex
	chunks atomic.Pointer[[]*[chunkSize]*Monitor]
	next   uint32 // next index to hand out; index 0 is a valid monitor
}

// NewTable returns an empty monitor table.
func NewTable() *Table {
	t := &Table{}
	empty := make([]*[chunkSize]*Monitor, 0)
	t.chunks.Store(&empty)
	return t
}

// Allocate creates a new monitor, assigns it the next index, and returns
// it. It panics if the 23-bit index space is exhausted, which corresponds
// to a VM that has inflated eight million locks.
func (tb *Table) Allocate() *Monitor {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	idx := tb.next
	if idx >= MaxMonitors {
		panic("monitor: 23-bit monitor index space exhausted")
	}
	tb.next++

	chunks := *tb.chunks.Load()
	ci := int(idx >> chunkBits)
	if ci >= len(chunks) {
		grown := make([]*[chunkSize]*Monitor, ci+1)
		copy(grown, chunks)
		grown[ci] = new([chunkSize]*Monitor)
		tb.chunks.Store(&grown)
		chunks = grown
	}
	m := &Monitor{index: idx}
	chunks[ci][idx&(chunkSize-1)] = m
	return m
}

// Get returns the monitor with the given index. It panics on an index
// that was never allocated: encountering one means an object header held
// a corrupt inflated lock word.
func (tb *Table) Get(idx uint32) *Monitor {
	chunks := *tb.chunks.Load()
	ci := int(idx >> chunkBits)
	if ci >= len(chunks) {
		panic(fmt.Sprintf("monitor: index %d beyond table", idx))
	}
	m := chunks[ci][idx&(chunkSize-1)]
	if m == nil {
		panic(fmt.Sprintf("monitor: index %d unallocated", idx))
	}
	return m
}

// Len reports how many monitors have been allocated.
func (tb *Table) Len() int {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return int(tb.next)
}
