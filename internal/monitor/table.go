package monitor

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// IndexBits is the width of a monitor index in an inflated lock word: the
// 24-bit lock field minus the monitor shape bit.
const IndexBits = 23

// MaxMonitors is the size of the monitor index space.
const MaxMonitors = 1 << IndexBits

// chunkBits sizes the table's fixed chunks. Lookups are lock-free; only
// growth takes the table mutex.
const chunkBits = 10

const chunkSize = 1 << chunkBits

// numShards is the number of independent free/limbo lists the recycler
// spreads returned indices over, so concurrent deflations on different
// objects never contend on one list head.
const numShards = 8

// numPins sizes the reader pin-slot array. Thread indices are dense from
// 1, so any realistic run maps threads to distinct slots; two threads
// that do alias a slot fall back to a conservative global pin count that
// simply stalls reclamation (never compromising safety).
const numPins = 256

// freeNode is one recycled index on a shard's free or limbo stack. Nodes
// are ordinary garbage-collected allocations and are never reused, so the
// classic Treiber-stack ABA problem cannot arise: a node's next pointer
// is written once, before its single push.
type freeNode struct {
	idx   uint32
	stamp uint64 // grace-period epoch assigned at Free time
	next  *freeNode
}

// tableShard is one lane of the recycler.
type tableShard struct {
	free  atomic.Pointer[freeNode] // indices past their grace period
	limbo atomic.Pointer[freeNode] // indices still inside it
	_     [48]byte                 // keep neighbouring shard heads off one line
}

// pinSlot is one reader's published epoch. A nonzero value e means "a
// reader that loaded the global epoch as e may still be dereferencing a
// monitor index it read from an object header".
type pinSlot struct {
	epoch atomic.Uint64
	_     [56]byte
}

// Table maps monitor indices to monitors, mirroring "the table which maps
// inflated monitor indices to fat locks" (§2.3). Get is wait-free (an
// atomic load plus two indexing operations — the paper's "shifting the
// monitor index to the right and indexing into the vector"), because it
// sits on the locking fast path for every inflated object.
//
// Beyond the paper (whose table only ever grows), the table recycles
// indices: Free returns a deflated monitor's index through a grace
// period so that a racing Get can never observe a recycled slot, and
// Allocate prefers recycled indices over extending the index space.
// Allocation and recycling are latch-free — fresh indices come from an
// atomic counter and recycled ones from per-shard Treiber stacks; the
// mutex guards only chunk growth, which happens O(span/chunkSize) times
// ever. Monitor structs themselves are never reused: a recycled index
// gets a fresh Monitor, so a stale pointer obtained before the recycle
// stays permanently retired and can never be confused with the new
// tenant.
//
// The grace period is a quiescence scheme in the QSBR family. Readers
// that may hold a stale index (the lock slow path, between loading an
// object header and calling Get) bracket the window with Pin/Unpin:
// Pin publishes the current global epoch in a per-thread slot before the
// header is (re)loaded. Free stamps the returned index with epoch+1
// (incremented after the object's header has been restored to thin).
// An index with stamp s is reusable only when no published pin is below
// s: such a pin could belong to a reader that loaded the old fat header
// before it was restored — under sequentially consistent atomics that
// reader's pin store precedes the header restore, which precedes the
// stamp increment, which precedes any reclaim scan, so the scan is
// guaranteed to see the pin and hold the index back.
type Table struct {
	mu     sync.Mutex // guards chunk growth only
	chunks atomic.Pointer[[]*[chunkSize]*Monitor]

	next      atomic.Uint32 // next never-used index; index 0 is valid
	allocated atomic.Uint64 // cumulative Allocate calls (fresh + recycled)
	freed     atomic.Uint64 // cumulative Free calls
	recycled  atomic.Uint64 // Allocate calls served from a free list
	limboLen  atomic.Int64  // indices currently awaiting their grace period

	epoch    atomic.Uint64 // global grace epoch; starts at 1 (0 = unpinned)
	cursor   atomic.Uint32 // round-robin shard selector for Allocate/Free
	fallback atomic.Int64  // pins that lost their slot to another thread

	shards [numShards]tableShard
	pins   [numPins]pinSlot
}

// NewTable returns an empty monitor table.
func NewTable() *Table {
	t := &Table{}
	empty := make([]*[chunkSize]*Monitor, 0)
	t.chunks.Store(&empty)
	t.epoch.Store(1) // pin value 0 must mean "no pin published"
	return t
}

// Allocate returns a monitor bound to a unique live index, preferring a
// recycled index (one whose grace period has expired) over extending the
// index space. It panics if the 23-bit index space is exhausted, which
// corresponds to a VM that has inflated eight million locks at once.
func (tb *Table) Allocate() *Monitor {
	tb.allocated.Add(1)
	if n := tb.popFree(); n != nil {
		tb.recycled.Add(1)
		m := &Monitor{index: n.idx, recycledIdx: true}
		tb.bind(n.idx, m)
		return m
	}
	idx := tb.next.Add(1) - 1
	if idx >= MaxMonitors {
		panic("monitor: 23-bit monitor index space exhausted")
	}
	m := &Monitor{index: idx}
	tb.bind(idx, m)
	return m
}

// bind publishes m as the tenant of idx, growing the chunk directory if
// idx is beyond it. The store into an existing chunk is an atomic
// pointer-sized write through a slot that racing Gets read; Go guarantees
// word-sized aligned stores are not torn, and the recycler's grace period
// guarantees no Get dereferences idx between the old tenant's retirement
// and this store.
func (tb *Table) bind(idx uint32, m *Monitor) {
	ci := int(idx >> chunkBits)
	chunks := *tb.chunks.Load()
	if ci >= len(chunks) {
		tb.mu.Lock()
		chunks = *tb.chunks.Load()
		if ci >= len(chunks) {
			grown := make([]*[chunkSize]*Monitor, ci+1)
			copy(grown, chunks)
			for i := len(chunks); i <= ci; i++ {
				grown[i] = new([chunkSize]*Monitor)
			}
			tb.chunks.Store(&grown)
			chunks = grown
		}
		tb.mu.Unlock()
	}
	chunks[ci][idx&(chunkSize-1)] = m
}

// Get returns the monitor with the given index. It panics on an index
// that was never allocated: encountering one means an object header held
// a corrupt inflated lock word. Callers that may hold a stale index (one
// read from a header that a concurrent deflation can rewrite) must
// bracket the header load and the Get with Pin/Unpin and re-load the
// header after pinning; otherwise the slot they index may have been
// handed to a different object's monitor.
func (tb *Table) Get(idx uint32) *Monitor {
	chunks := *tb.chunks.Load()
	ci := int(idx >> chunkBits)
	if ci >= len(chunks) {
		panic(fmt.Sprintf("monitor: index %d beyond table", idx))
	}
	m := chunks[ci][idx&(chunkSize-1)]
	if m == nil {
		panic(fmt.Sprintf("monitor: index %d unallocated", idx))
	}
	return m
}

// Pin publishes the acting thread (identified by its dense registry
// index) as a table reader and returns a token for Unpin. It must be
// called before loading the object header whose monitor index will be
// passed to Get; the header must be (re)loaded after Pin returns. Pin
// never blocks: if the thread's slot is occupied by an aliasing thread
// it falls back to a global conservative pin.
func (tb *Table) Pin(threadIdx uint16) int {
	e := tb.epoch.Load()
	slot := int(threadIdx) % numPins
	if tb.pins[slot].epoch.CompareAndSwap(0, e) {
		return slot
	}
	// Slot collision (more than numPins concurrent readers, or a hash
	// alias). Fall back to a global count that blocks all reclamation
	// while nonzero — safe, merely less precise.
	tb.fallback.Add(1)
	return -1
}

// Unpin withdraws a Pin. The token is Pin's return value.
func (tb *Table) Unpin(token int) {
	if token < 0 {
		tb.fallback.Add(-1)
		return
	}
	tb.pins[token].epoch.Store(0)
}

// Free returns a deflated monitor's index to the recycler. The caller
// must already have retired the monitor and restored the object's header
// (so no new reader can reach the index through that object); Free then
// opens a grace period: the index parks in a limbo list stamped with the
// next epoch and becomes allocatable only once every pinned reader
// published an epoch at or above the stamp. Freeing an unretired monitor
// is a caller bug.
func (tb *Table) Free(m *Monitor) {
	if !m.Retired() {
		panic("monitor: Free of a monitor that was not retired")
	}
	tb.freeWithGrace(m, true)
}

// FreeSkippingGrace is Free without the grace period: the index goes
// straight to the free list, reusable immediately. It exists only as the
// seeded deflate-epoch mutation (see core.Mutations) — it recreates the
// recycle race the epoch scheme prevents, so the differential checker
// can prove it would catch a broken grace period.
func (tb *Table) FreeSkippingGrace(m *Monitor) {
	tb.freeWithGrace(m, false)
}

func (tb *Table) freeWithGrace(m *Monitor, grace bool) {
	tb.freed.Add(1)
	sh := &tb.shards[tb.cursor.Add(1)%numShards]
	n := &freeNode{idx: m.index}
	if !grace {
		push(&sh.free, n)
		return
	}
	// The stamp must be taken after the caller's header restore; the
	// increment also moves the global epoch forward so new readers
	// publish values that do not hold this index back.
	n.stamp = tb.epoch.Add(1)
	push(&sh.limbo, n)
	tb.limboLen.Add(1)
}

// popFree returns a reusable index node, or nil. It first tries the free
// stacks, then attempts to graduate limbo indices whose grace period has
// expired. The scan is amortized into allocation so there is no
// background sweeper thread (the JDK111 global-latch sweep is exactly
// what this design avoids).
func (tb *Table) popFree() *freeNode {
	start := tb.cursor.Add(1)
	for i := uint32(0); i < numShards; i++ {
		if n := pop(&tb.shards[(start+i)%numShards].free); n != nil {
			return n
		}
	}
	if tb.limboLen.Load() == 0 {
		return nil
	}
	tb.reclaim()
	for i := uint32(0); i < numShards; i++ {
		if n := pop(&tb.shards[(start+i)%numShards].free); n != nil {
			return n
		}
	}
	return nil
}

// reclaim graduates every limbo index whose stamp is at or below the
// oldest published reader epoch from limbo to its shard's free stack.
func (tb *Table) reclaim() {
	safe := tb.safeEpoch()
	if safe == 0 {
		return
	}
	for s := range tb.shards {
		sh := &tb.shards[s]
		n := sh.limbo.Swap(nil)
		for n != nil {
			next := n.next
			if n.stamp <= safe {
				tb.limboLen.Add(-1)
				push(&sh.free, n)
			} else {
				push(&sh.limbo, n)
			}
			n = next
		}
	}
}

// safeEpoch returns the newest stamp that is safe to reuse: the minimum
// over all published reader pins, or the current epoch when no reader is
// pinned. Zero means nothing can be reclaimed right now (a fallback pin
// is active).
func (tb *Table) safeEpoch() uint64 {
	if tb.fallback.Load() != 0 {
		return 0
	}
	safe := tb.epoch.Load()
	for i := range tb.pins {
		if v := tb.pins[i].epoch.Load(); v != 0 && v <= safe {
			// A reader pinned at v may hold any index stamped above v;
			// stamps <= v predate its window and stay reclaimable.
			safe = v
		}
	}
	return safe
}

// push adds n to the Treiber stack at head.
func push(head *atomic.Pointer[freeNode], n *freeNode) {
	for {
		h := head.Load()
		n.next = h
		if head.CompareAndSwap(h, n) {
			return
		}
	}
}

// pop removes and returns the top of the Treiber stack at head, or nil.
// Safe against ABA because nodes are never pushed twice (each Free
// allocates a fresh node and the garbage collector keeps a popped node's
// memory alive while any raced pop still references it).
func pop(head *atomic.Pointer[freeNode]) *freeNode {
	for {
		h := head.Load()
		if h == nil {
			return nil
		}
		if head.CompareAndSwap(h, h.next) {
			return h
		}
	}
}

// Len reports how many monitors have ever been allocated (fresh plus
// recycled) — one per inflation, so the differential checker's
// monitors-vs-inflations accounting holds whether or not indices are
// recycled.
func (tb *Table) Len() int { return int(tb.allocated.Load()) }

// Live reports how many monitors are currently bound to an object
// (allocated minus freed). Without deflation this equals Len.
func (tb *Table) Live() int {
	return int(tb.allocated.Load() - tb.freed.Load())
}

// Span reports the size of the index space in use: the high-water count
// of simultaneously live monitors, and the measure of the table's memory
// footprint. A recycling workload keeps Span near its peak concurrent
// demand while Len grows with every inflation.
func (tb *Table) Span() int { return int(tb.next.Load()) }

// Recycled reports how many allocations were served from the free lists.
func (tb *Table) Recycled() uint64 { return tb.recycled.Load() }

// Freed reports how many indices were returned by Free.
func (tb *Table) Freed() uint64 { return tb.freed.Load() }
