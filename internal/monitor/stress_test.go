package monitor

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thinlock/internal/threading"
)

// TestTimedWaitNotifyRaceStorm races timed waits against notifies: every
// waiter must wake exactly once (by notify or timeout), re-acquire, and
// exit cleanly; the monitor must end quiescent.
func TestTimedWaitNotifyRaceStorm(t *testing.T) {
	t.Parallel()
	reg := threading.NewRegistry()
	m := New()
	const waiters = 8
	const rounds = 30

	var wg sync.WaitGroup
	var wakes atomic.Int64
	for i := 0; i < waiters; i++ {
		th, err := reg.Attach("w")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(th *threading.Thread, i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				m.Enter(th)
				// Mix of timeouts near the notify cadence to force the
				// timeout-vs-notify race in both directions.
				d := time.Duration(1+(i+r)%3) * time.Millisecond
				if _, err := m.Wait(th, d); err != nil {
					t.Errorf("wait: %v", err)
				}
				wakes.Add(1)
				if err := m.Exit(th); err != nil {
					t.Errorf("exit: %v", err)
				}
			}
		}(th, i)
	}

	stop := make(chan struct{})
	notifier, err := reg.Attach("n")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.Enter(notifier)
			if err := m.Notify(notifier); err != nil {
				t.Error(err)
			}
			if err := m.Exit(notifier); err != nil {
				t.Error(err)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	if wakes.Load() != waiters*rounds {
		t.Fatalf("wakes = %d, want %d", wakes.Load(), waiters*rounds)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !m.Quiescent() {
		if time.Now().After(deadline) {
			t.Fatalf("monitor not quiescent: %v", m)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMonitorAsCyclicBarrier builds a reusable barrier from the monitor
// primitives and runs several generations — a classic integration of
// enter/wait/notifyAll semantics.
func TestMonitorAsCyclicBarrier(t *testing.T) {
	t.Parallel()
	reg := threading.NewRegistry()
	m := New()
	const parties = 5
	const generations = 20

	var count int
	var generation int

	await := func(th *threading.Thread) {
		m.Enter(th)
		gen := generation
		count++
		if count == parties {
			count = 0
			generation++
			if err := m.NotifyAll(th); err != nil {
				t.Error(err)
			}
		} else {
			for generation == gen {
				if _, err := m.Wait(th, 0); err != nil {
					t.Error(err)
					break
				}
			}
		}
		if err := m.Exit(th); err != nil {
			t.Error(err)
		}
	}

	results := make([][]int, parties)
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		th, err := reg.Attach("p")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, th *threading.Thread) {
			defer wg.Done()
			for g := 0; g < generations; g++ {
				results[p] = append(results[p], g)
				await(th)
			}
		}(p, th)
	}
	wg.Wait()
	for p := 0; p < parties; p++ {
		if len(results[p]) != generations {
			t.Fatalf("party %d completed %d generations", p, len(results[p]))
		}
	}
	if !m.Quiescent() {
		t.Fatal("barrier monitor not quiescent")
	}
}

// TestManyMonitorsConcurrently exercises the table and independent
// monitors in parallel.
func TestManyMonitorsConcurrently(t *testing.T) {
	t.Parallel()
	reg := threading.NewRegistry()
	tb := NewTable()
	const monitors = 16
	ms := make([]*Monitor, monitors)
	counters := make([]int64, monitors)
	for i := range ms {
		ms[i] = tb.Allocate()
	}
	const goroutines, iters = 8, 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th, err := reg.Attach("w")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(seed int, th *threading.Thread) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (seed*13 + i*7) % monitors
				ms[k].Enter(th)
				counters[k]++
				if err := ms[k].Exit(th); err != nil {
					t.Error(err)
				}
			}
		}(g, th)
	}
	wg.Wait()
	var total int64
	for _, c := range counters {
		total += c
	}
	if total != goroutines*iters {
		t.Fatalf("total = %d, want %d", total, goroutines*iters)
	}
}
