package monitor

import (
	"sync"
	"testing"
)

func TestTableAllocateAssignsSequentialIndices(t *testing.T) {
	t.Parallel()
	tb := NewTable()
	for i := 0; i < 3000; i++ { // crosses a chunk boundary
		m := tb.Allocate()
		if m.Index() != uint32(i) {
			t.Fatalf("index = %d, want %d", m.Index(), i)
		}
	}
	if tb.Len() != 3000 {
		t.Errorf("Len = %d, want 3000", tb.Len())
	}
}

func TestTableGetReturnsSameMonitor(t *testing.T) {
	t.Parallel()
	tb := NewTable()
	ms := make([]*Monitor, 2500)
	for i := range ms {
		ms[i] = tb.Allocate()
	}
	for i, want := range ms {
		if got := tb.Get(uint32(i)); got != want {
			t.Fatalf("Get(%d) returned a different monitor", i)
		}
	}
}

func TestTableGetPanicsOnBadIndex(t *testing.T) {
	t.Parallel()
	tb := NewTable()
	tb.Allocate()
	defer func() {
		if recover() == nil {
			t.Fatal("Get of unallocated index did not panic")
		}
	}()
	tb.Get(99999)
}

func TestTableConcurrentAllocateAndGet(t *testing.T) {
	t.Parallel()
	tb := NewTable()
	const goroutines, perG = 8, 400
	indices := make([][]uint32, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m := tb.Allocate()
				indices[g] = append(indices[g], m.Index())
				if tb.Get(m.Index()) != m {
					t.Errorf("Get(%d) mismatch", m.Index())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[uint32]bool)
	for _, batch := range indices {
		for _, idx := range batch {
			if seen[idx] {
				t.Fatalf("duplicate monitor index %d", idx)
			}
			seen[idx] = true
		}
	}
	if tb.Len() != goroutines*perG {
		t.Errorf("Len = %d, want %d", tb.Len(), goroutines*perG)
	}
}

func TestNewMonitorHasIndexZero(t *testing.T) {
	t.Parallel()
	if New().Index() != 0 {
		t.Error("table-less monitor should report index 0")
	}
}

func BenchmarkTableGet(b *testing.B) {
	tb := NewTable()
	for i := 0; i < 1024; i++ {
		tb.Allocate()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tb.Get(uint32(i & 1023))
	}
}
