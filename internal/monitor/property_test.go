package monitor

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"thinlock/internal/threading"
)

// TestPropertyEntryQueueIsFIFO: for any contender count, grant order
// equals queue order.
func TestPropertyEntryQueueIsFIFO(t *testing.T) {
	t.Parallel()
	prop := func(nRaw uint8) bool {
		n := int(nRaw%6) + 2
		reg := threading.NewRegistry()
		m := New()
		holder, err := reg.Attach("holder")
		if err != nil {
			return false
		}
		m.Enter(holder)

		order := make([]int, 0, n)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			th, err := reg.Attach("c")
			if err != nil {
				return false
			}
			wg.Add(1)
			go func(i int, th *threading.Thread) {
				defer wg.Done()
				m.Enter(th)
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				if err := m.Exit(th); err != nil {
					t.Error(err)
				}
			}(i, th)
			// Serialize queue entry so the expected order is known.
			deadline := time.Now().Add(5 * time.Second)
			for m.EntryQueueLen() != i+1 {
				if time.Now().After(deadline) {
					t.Error("contender never queued")
					return false
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
		if err := m.Exit(holder); err != nil {
			return false
		}
		wg.Wait()
		for i, got := range order {
			if got != i {
				return false
			}
		}
		return m.Quiescent()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBalancedRandomRecursion: for any depth sequence, recursive
// enter/exit always balances and leaves the monitor quiescent.
func TestPropertyBalancedRandomRecursion(t *testing.T) {
	t.Parallel()
	prop := func(depths []uint8) bool {
		reg := threading.NewRegistry()
		th, err := reg.Attach("t")
		if err != nil {
			return false
		}
		m := New()
		for _, d := range depths {
			depth := int(d%20) + 1
			for i := 0; i < depth; i++ {
				m.Enter(th)
				if m.Count() != uint32(i+1) {
					return false
				}
			}
			for i := 0; i < depth; i++ {
				if err := m.Exit(th); err != nil {
					return false
				}
			}
			if !m.Quiescent() {
				return false
			}
		}
		return m.Exit(th) == ErrIllegalMonitorState
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
