package core

import (
	"sync"
	"testing"
	"time"
)

func TestDeflationRestoresThinLock(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{EnableDeflation: true})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")
	misc := o.Misc()

	inflateByContention(t, f, a, b, o)
	// The contender's unlock already had a chance to deflate (it held
	// the lock once with empty queues).
	if IsInflated(o.Header()) {
		t.Fatalf("header = %#x, want deflated", o.Header())
	}
	if o.Header() != misc {
		t.Fatalf("header = %#x, want pure misc %#x", o.Header(), misc)
	}
	if f.l.Stats().Deflations == 0 {
		t.Error("Deflations counter not incremented")
	}

	// The object must be fully usable as a thin lock again.
	f.l.Lock(a, o)
	if IsInflated(o.Header()) {
		t.Fatal("re-lock after deflation went fat")
	}
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
}

func TestDeflationSkippedWhileNested(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{EnableDeflation: true})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")

	inflateByContention(t, f, a, b, o)
	// Re-inflate by contention again, then hold it nested: the inner
	// unlocks must not deflate.
	f.l.Lock(a, o)
	base := f.l.Stats().SpinRounds
	done := make(chan struct{})
	go func() {
		f.l.Lock(b, o)
		f.l.Lock(b, o)
		if err := f.l.Unlock(b, o); err != nil {
			t.Error(err)
		}
		// Nested unlock above must not deflate: still fat here.
		if !IsInflated(o.Header()) {
			t.Error("deflated while still owned nested")
		}
		if err := f.l.Unlock(b, o); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	waitForStat(t, func() bool { return f.l.Stats().SpinRounds > base })
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestDeflationWithWaitersIsSkipped(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{EnableDeflation: true})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")

	woke := make(chan struct{})
	go func() {
		f.l.Lock(a, o)
		if _, err := f.l.Wait(a, o, 0); err != nil {
			t.Error(err)
		}
		close(woke)
		if err := f.l.Unlock(a, o); err != nil {
			t.Error(err)
		}
	}()
	waitForStat(t, func() bool {
		return IsInflated(o.Header()) && f.l.Monitor(o).WaitSetLen() == 1
	})

	// B locks and unlocks: must NOT deflate because A is in the wait
	// set.
	f.l.Lock(b, o)
	if err := f.l.Unlock(b, o); err != nil {
		t.Fatal(err)
	}
	if !IsInflated(o.Header()) {
		t.Fatal("deflated with a waiter present")
	}
	f.l.Lock(b, o)
	if err := f.l.Notify(b, o); err != nil {
		t.Fatal(err)
	}
	if err := f.l.Unlock(b, o); err != nil {
		t.Fatal(err)
	}
	select {
	case <-woke:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter lost by deflation logic")
	}
}

// TestDeflationStress hammers one object with contention so it cycles
// between thin and fat; mutual exclusion must hold throughout.
func TestDeflationStress(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{EnableDeflation: true})
	o := f.heap.New("X")
	const goroutines, iters = 6, 500
	var counter int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th := f.thread(t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f.l.Lock(th, o)
				counter++
				if err := f.l.Unlock(th, o); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d (lost update through deflation)",
			counter, goroutines*iters)
	}
	if f.l.Stats().Deflations == 0 {
		t.Log("warning: stress run never deflated; timing-dependent")
	}
}

// TestNoDeflationByDefault locks in the paper's discipline: once fat,
// forever fat.
func TestNoDeflationByDefault(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")
	inflateByContention(t, f, a, b, o)
	for i := 0; i < 10; i++ {
		f.l.Lock(a, o)
		if err := f.l.Unlock(a, o); err != nil {
			t.Fatal(err)
		}
		if !IsInflated(o.Header()) {
			t.Fatal("lock deflated without the extension enabled")
		}
	}
	if f.l.Stats().Deflations != 0 {
		t.Error("Deflations counted without the extension")
	}
}
