// Package core implements thin locks, the paper's primary contribution.
//
// The 24 high bits of each object's header word form the lock field
// (Figure 1). The first bit is the monitor shape bit: 0 for a thin lock,
// 1 for an inflated (fat) lock. A thin lock holds a 15-bit owner thread
// index and an 8-bit nested lock count storing (locks − 1); thread index
// 0 with count 0 means unlocked. An inflated lock holds a 23-bit index
// into the global monitor table. The low 8 bits of the word are
// miscellaneous header data that are constant while the object may be
// locked, so lock-field updates can rewrite the whole word.
//
// The protocol's costs are asymmetric by design (§2.3): the only atomic
// operation is the compare-and-swap on initial acquisition. Nested
// locking, nested unlocking and final unlocking are plain loads and
// stores, justified by the locking discipline that no thread other than
// the owner ever writes the lock word of a thin-locked object.
package core

import "thinlock/internal/threading"

// Lock word layout. Bit 31 is the monitor shape bit; bits 30..16 hold the
// thread index of a thin lock; bits 15..8 hold the thin nested count;
// bits 30..8 hold the monitor index of an inflated lock; bits 7..0 are
// the miscellaneous (non-lock) header bits.
const (
	// ShapeBit distinguishes thin (0) from inflated (1) lock words.
	ShapeBit uint32 = 1 << 31

	// IndexShift positions the owner thread index.
	IndexShift = threading.IndexShift // 16

	// TIDMask selects the thread-index bits of a thin lock word.
	TIDMask uint32 = 0x7FFF << IndexShift

	// CountShift positions the thin nested lock count.
	CountShift = 8

	// CountUnit is the value added to the lock word to increment the
	// nested count by one.
	CountUnit uint32 = 1 << CountShift

	// CountMask selects the thin count bits.
	CountMask uint32 = 0xFF << CountShift

	// MiscMask selects the non-lock header bits.
	MiscMask uint32 = 0xFF

	// MaxThinCount is the largest encodable thin count. Since the count
	// stores (locks − 1), a thin lock supports 256 nested locks; the
	// 257th acquisition overflows and inflates (§2.3: "in our
	// implementation, we define excessive as 257").
	MaxThinCount = 255

	// nestedCheckLimit is the bound used by the nested-locking check:
	// after XORing the loaded word with the owner's pre-shifted thread
	// index, any value below 255<<8 means "thin, owned by this thread,
	// count < 255" (§2.3.3). The misc bits pass through the XOR
	// untouched and always stay below the limit.
	nestedCheckLimit = uint32(MaxThinCount) << CountShift

	// FatIndexShift positions the monitor index of an inflated word.
	FatIndexShift = 8

	// FatIndexMask selects the monitor-index bits of an inflated word.
	FatIndexMask uint32 = 0x7FFFFF << FatIndexShift
)

// IsInflated reports whether w is an inflated lock word.
func IsInflated(w uint32) bool { return w&ShapeBit != 0 }

// IsUnlocked reports whether w is a thin, unlocked word.
func IsUnlocked(w uint32) bool { return w&^MiscMask == 0 }

// ThinOwner returns the owner thread index of a thin lock word (0 if
// unlocked). Meaningless for inflated words.
func ThinOwner(w uint32) uint16 { return uint16((w & TIDMask) >> IndexShift) }

// ThinCount returns the encoded nested count of a thin lock word, which
// is the number of locks minus one.
func ThinCount(w uint32) uint32 { return (w & CountMask) >> CountShift }

// FatIndex returns the monitor index of an inflated lock word.
func FatIndex(w uint32) uint32 { return (w & FatIndexMask) >> FatIndexShift }

// ThinWord assembles a thin lock word.
func ThinWord(owner uint16, count uint32, misc uint32) uint32 {
	return uint32(owner)<<IndexShift | count<<CountShift | misc&MiscMask
}

// InflatedWord assembles an inflated lock word referring to monitor index
// idx.
func InflatedWord(idx uint32, misc uint32) uint32 {
	return ShapeBit | idx<<FatIndexShift | misc&MiscMask
}

// Bias encoding (used by internal/biased).
//
// A biased ("reserved") lock word is a post-paper extension of the same
// 24-bit lock field: shape bit 0 (so inflated-word tests are unchanged),
// the reserving thread's 15-bit index in the usual owner position, and
// the top bit of the count field — BiasBit — set to mark the word as a
// reservation rather than a held thin lock. The remaining low bits of
// the count field carry a small bias epoch. The recursion depth of a
// biased lock is NOT stored in the word (it lives in the owner's
// per-thread bias slot, see threading.BiasSlot), which is what lets the
// owner reacquire and release without ever writing shared memory.
//
// An implementation that installs biased words must cap its own thin
// counts at BiasMaxThinCount so bit 15 unambiguously distinguishes the
// two flavours; core's standard thin locks never produce biased words.
const (
	// BiasBit marks a thin-shaped word as a bias reservation. It is the
	// top bit of the count field.
	BiasBit uint32 = 1 << 15

	// BiasMaxThinCount is the largest thin count an implementation that
	// also uses biased words may encode (bit 15 is reserved for BiasBit,
	// leaving 7 count bits: up to 128 nested locks).
	BiasMaxThinCount = 127

	// MaxBiasEpochBits bounds the epoch width: the count field below
	// BiasBit has 7 bits.
	MaxBiasEpochBits = 7
)

// IsBiased reports whether w is a bias reservation word (for either a
// live reservation or a revocation in progress).
func IsBiased(w uint32) bool { return w&(ShapeBit|BiasBit) == BiasBit }

// IsBiasRevoking reports whether w is the revocation sentinel: a biased
// word with owner index 0, installed by a revoker to claim exclusive
// right to rewrite the word. No thread can bias to index 0 (reserved).
func IsBiasRevoking(w uint32) bool { return IsBiased(w) && w&TIDMask == 0 }

// BiasOwner returns the reserving thread index of a biased word.
func BiasOwner(w uint32) uint16 { return ThinOwner(w) }

// BiasEpoch extracts the epoch of a biased word given the configured
// epoch width in bits.
func BiasEpoch(w uint32, epochBits int) uint32 {
	return (w >> CountShift) & (1<<epochBits - 1)
}

// BiasedWord assembles a bias reservation word for the given owner,
// epoch (masked to epochBits) and misc bits.
func BiasedWord(owner uint16, epoch uint32, epochBits int, misc uint32) uint32 {
	return uint32(owner)<<IndexShift | BiasBit |
		(epoch&(1<<epochBits-1))<<CountShift | misc&MiscMask
}

// BiasRevokingWord assembles the revocation sentinel preserving misc.
func BiasRevokingWord(misc uint32) uint32 { return BiasBit | misc&MiscMask }
