package core

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// Tests for the compact-monitor extension (Options.RecycleMonitors): a
// deflated monitor's index is retired through the table's grace period
// and reused by later inflations, so the table footprint tracks the peak
// number of simultaneously inflated objects instead of every inflation
// ever performed.

func TestRecycleImpliesDeflation(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{RecycleMonitors: true})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")

	inflateByContention(t, f, a, b, o)

	// The contending thread's unlock was the final release of a fat lock
	// held once with empty queues, so the monitor deflated and its index
	// was freed.
	s := f.l.Stats()
	if s.Deflations == 0 {
		t.Fatal("RecycleMonitors did not imply deflation")
	}
	if s.MonitorFrees == 0 {
		t.Fatal("deflation did not free the monitor index")
	}
	if s.LiveMonitors != 0 {
		t.Fatalf("LiveMonitors = %d after full release, want 0", s.LiveMonitors)
	}
	if f.l.Inflated(o) {
		t.Fatal("header still inflated after deflation")
	}

	// The object must remain fully usable as a thin lock.
	f.l.Lock(a, o)
	if f.l.Inflated(o) {
		t.Fatal("re-lock of deflated object inflated")
	}
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
}

func TestRecycleReusesIndexAcrossObjects(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{RecycleMonitors: true})
	th := f.thread(t)

	// Single-threaded wait-timeout churn: each round inflates a fresh
	// object (wait needs queues), times out, re-acquires and fully
	// releases — deflating and freeing the monitor. With no concurrent
	// pins the grace period resolves immediately, so every round after
	// the first must reuse the first round's index.
	const rounds = 64
	for i := 0; i < rounds; i++ {
		o := f.heap.New("X")
		f.l.Lock(th, o)
		if notified, err := f.l.Wait(th, o, time.Microsecond); err != nil {
			t.Fatal(err)
		} else if notified {
			t.Fatal("timeout wait reported notified")
		}
		if err := f.l.Unlock(th, o); err != nil {
			t.Fatal(err)
		}
	}

	s := f.l.Stats()
	if s.InflationsWait != rounds {
		t.Fatalf("InflationsWait = %d, want %d", s.InflationsWait, rounds)
	}
	if s.Deflations != rounds {
		t.Fatalf("Deflations = %d, want %d", s.Deflations, rounds)
	}
	if s.MonitorFrees != rounds {
		t.Fatalf("MonitorFrees = %d, want %d", s.MonitorFrees, rounds)
	}
	if s.FatLocks != rounds {
		t.Fatalf("FatLocks (cumulative allocations) = %d, want %d", s.FatLocks, rounds)
	}
	if s.MonitorRecycles != rounds-1 {
		t.Fatalf("MonitorRecycles = %d, want %d", s.MonitorRecycles, rounds-1)
	}
	if s.TableSpan != 1 {
		t.Fatalf("TableSpan = %d after sequential churn, want 1", s.TableSpan)
	}
	if s.LiveMonitors != 0 {
		t.Fatalf("LiveMonitors = %d, want 0", s.LiveMonitors)
	}
}

func TestNoRecycleWithoutOption(t *testing.T) {
	t.Parallel()
	// Plain deflation (the pre-existing extension) must keep its
	// allocate-only table: indices retire but are never reused.
	f := newFixture(t, Options{EnableDeflation: true})
	th := f.thread(t)
	const rounds = 8
	for i := 0; i < rounds; i++ {
		o := f.heap.New("X")
		f.l.Lock(th, o)
		if _, err := f.l.Wait(th, o, time.Microsecond); err != nil {
			t.Fatal(err)
		}
		if err := f.l.Unlock(th, o); err != nil {
			t.Fatal(err)
		}
	}
	s := f.l.Stats()
	if s.Deflations != rounds {
		t.Fatalf("Deflations = %d, want %d", s.Deflations, rounds)
	}
	if s.MonitorFrees != 0 || s.MonitorRecycles != 0 {
		t.Fatalf("frees/recycles = %d/%d without RecycleMonitors, want 0/0",
			s.MonitorFrees, s.MonitorRecycles)
	}
	if s.TableSpan != rounds {
		t.Fatalf("TableSpan = %d, want %d (monotonic without recycling)", s.TableSpan, rounds)
	}
}

// TestChurnBoundMillions is the memory-bound certificate of the compact
// extension: it inflates and abandons millions of objects (10M+ in a
// full-strength run) through the cheapest deterministic inflation path —
// count overflow with a 1-bit count field — and asserts the monitor
// table's footprint stays O(1) for a single thread instead of
// O(ever-inflated). Every cycle allocates a fresh object, inflates it,
// deflates it on final unlock and recycles the index.
func TestChurnBoundMillions(t *testing.T) {
	t.Parallel()
	cycles := 10_000_000
	if testing.Short() {
		cycles = 100_000
	} else if raceEnabled {
		// The race detector multiplies the per-cycle cost ~20x; the
		// bound property is scale-independent.
		cycles = 200_000
	}

	f := newFixture(t, Options{RecycleMonitors: true, CountBits: 1})
	th := f.thread(t)
	for i := 0; i < cycles; i++ {
		o := f.heap.New("X")
		// Three nested locks overflow the 1-bit count on the third
		// acquisition and inflate carrying depth 3.
		f.l.Lock(th, o)
		f.l.Lock(th, o)
		f.l.Lock(th, o)
		for j := 0; j < 3; j++ {
			if err := f.l.Unlock(th, o); err != nil {
				t.Fatalf("cycle %d unlock %d: %v", i, j, err)
			}
		}
	}

	s := f.l.Stats()
	if got, want := s.InflationsOverflow, uint64(cycles); got != want {
		t.Fatalf("InflationsOverflow = %d, want %d", got, want)
	}
	if got, want := s.Deflations, uint64(cycles); got != want {
		t.Fatalf("Deflations = %d, want %d", got, want)
	}
	if got, want := s.MonitorFrees, uint64(cycles); got != want {
		t.Fatalf("MonitorFrees = %d, want %d", got, want)
	}
	if s.LiveMonitors != 0 {
		t.Fatalf("LiveMonitors = %d after churn, want 0", s.LiveMonitors)
	}
	// The whole point: footprint is O(concurrently-held), not
	// O(ever-inflated). One thread holds at most one monitor here.
	if s.TableSpan != 1 {
		t.Fatalf("TableSpan = %d after %d inflate/deflate cycles, want 1", s.TableSpan, cycles)
	}
}

// TestRecycleConcurrentChurn races inflation, deflation, index recycling
// and the pinned stale-index lookup against each other: worker pairs
// ping-pong over shared objects with in-section yields so locks inflate,
// deflate on final release, and are re-entered by threads still holding
// the old header value. Run under -race this exercises the pin
// protocol's ordering end to end.
func TestRecycleConcurrentChurn(t *testing.T) {
	t.Parallel()
	pairs := 4
	rounds := 4000
	if testing.Short() || raceEnabled {
		rounds = 600
	}

	f := newFixture(t, Options{RecycleMonitors: true})
	done := make(chan error, 2*pairs)
	for p := 0; p < pairs; p++ {
		o := f.heap.New("X")
		for w := 0; w < 2; w++ {
			th, err := f.reg.Attach(fmt.Sprintf("churn-%d-%d", p, w))
			if err != nil {
				t.Fatal(err)
			}
			w := w
			go func() {
				var err error
				for r := 0; r < rounds && err == nil; r++ {
					f.l.Lock(th, o)
					if (r+w)%3 == 0 {
						runtime.Gosched()
					}
					err = f.l.Unlock(th, o)
				}
				done <- err
			}()
		}
	}
	for i := 0; i < 2*pairs; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	s := f.l.Stats()
	if s.Inflations() == 0 {
		t.Fatal("ping-pong churn produced no inflations; the test exercised nothing")
	}
	// Every inflation's final release finds empty queues eventually, so
	// all monitors deflate and the table drains completely.
	if s.LiveMonitors != 0 {
		t.Fatalf("LiveMonitors = %d after all workers joined, want 0", s.LiveMonitors)
	}
	if s.MonitorFrees != s.Deflations {
		t.Fatalf("MonitorFrees = %d, Deflations = %d; every deflation must free", s.MonitorFrees, s.Deflations)
	}
	// Footprint bound: at most one monitor per pair exists at once, plus
	// slack for indices parked in the grace-period limbo while pins from
	// other pairs were live.
	if max := 4 * pairs; s.TableSpan > max {
		t.Fatalf("TableSpan = %d, want <= %d (bounded by concurrent holders)", s.TableSpan, max)
	}
}
