package core

import (
	"testing"
	"testing/quick"

	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// TestPropertyBalancedNesting checks that for any nesting depth sequence,
// balanced lock/unlock leaves every object unlocked with its misc bits
// intact, inflating exactly when some depth exceeds 256.
func TestPropertyBalancedNesting(t *testing.T) {
	t.Parallel()
	prop := func(depths []uint16) bool {
		l := New(Options{})
		heap := object.NewHeap()
		reg := threading.NewRegistry()
		th, err := reg.Attach("p")
		if err != nil {
			return false
		}
		for _, d := range depths {
			depth := int(d%300) + 1
			o := heap.New("X")
			misc := o.Misc()
			for i := 0; i < depth; i++ {
				l.Lock(th, o)
			}
			wantInflated := depth > 256
			if IsInflated(o.Header()) != wantInflated {
				return false
			}
			for i := 0; i < depth; i++ {
				if err := l.Unlock(th, o); err != nil {
					return false
				}
			}
			if wantInflated {
				// Stays inflated but unowned.
				if !IsInflated(o.Header()) || l.Monitor(o).Owner() != nil {
					return false
				}
			} else if o.Header() != misc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyInterleavedObjects drives a random interleaving of lock and
// unlock operations over a small set of objects by one thread, tracking a
// model of expected depths; the implementation must agree with the model
// at every step.
func TestPropertyInterleavedObjects(t *testing.T) {
	t.Parallel()
	prop := func(ops []uint8) bool {
		const numObjects = 4
		l := New(Options{})
		heap := object.NewHeap()
		reg := threading.NewRegistry()
		th, err := reg.Attach("p")
		if err != nil {
			return false
		}
		objs := make([]*object.Object, numObjects)
		depth := make([]int, numObjects)
		for i := range objs {
			objs[i] = heap.New("X")
		}
		for _, op := range ops {
			i := int(op) % numObjects
			if op&0x80 == 0 || depth[i] == 0 {
				// Lock (also when an unlock would be unbalanced).
				if depth[i] >= 256 {
					continue // stay within thin range for this model
				}
				l.Lock(th, objs[i])
				depth[i]++
			} else {
				if err := l.Unlock(th, objs[i]); err != nil {
					return false
				}
				depth[i]--
			}
			// Model check.
			w := objs[i].Header()
			if depth[i] == 0 {
				if !IsUnlocked(w) {
					return false
				}
			} else {
				if ThinOwner(w) != th.Index() || int(ThinCount(w)) != depth[i]-1 {
					return false
				}
			}
		}
		// Unwind.
		for i, d := range depth {
			for j := 0; j < d; j++ {
				if err := l.Unlock(th, objs[i]); err != nil {
					return false
				}
			}
			if !IsUnlocked(objs[i].Header()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDiscipline verifies invariant 1 of DESIGN.md on a
// single-threaded trace: the lock word of an object owned by thread T is
// only ever changed between observations made by T itself — i.e. a
// non-owner performing failed unlocks never perturbs it.
func TestPropertyDiscipline(t *testing.T) {
	t.Parallel()
	prop := func(attempts uint8) bool {
		l := New(Options{})
		heap := object.NewHeap()
		reg := threading.NewRegistry()
		a, err := reg.Attach("a")
		if err != nil {
			return false
		}
		b, err := reg.Attach("b")
		if err != nil {
			return false
		}
		o := heap.New("X")
		l.Lock(a, o)
		before := o.Header()
		for i := 0; i < int(attempts%16); i++ {
			if err := l.Unlock(b, o); err != ErrIllegalMonitorState {
				return false
			}
			if _, err := l.Wait(b, o, 0); err != ErrIllegalMonitorState {
				return false
			}
			if err := l.Notify(b, o); err != ErrIllegalMonitorState {
				return false
			}
		}
		return o.Header() == before && l.Unlock(a, o) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
