package core

import (
	"sync/atomic"
	"time"

	"thinlock/internal/arch"
	"thinlock/internal/lockdep"
	"thinlock/internal/lockprof"
	"thinlock/internal/monitor"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

// ErrIllegalMonitorState is returned when a thread unlocks, waits on or
// notifies an object whose monitor it does not own.
var ErrIllegalMonitorState = monitor.ErrIllegalMonitorState

// Variant selects one of the implementation alternatives studied in
// §3.5 / Figure 6 of the paper.
type Variant int

const (
	// VariantStandard is the paper's final implementation ("ThinLock"
	// in Figure 6): the machine type is tested dynamically on every
	// lock and unlock operation, selecting the uniprocessor,
	// multiprocessor or kernel-CAS path.
	VariantStandard Variant = iota
	// VariantInline is the fastest variant: the uniprocessor path with
	// no dynamic machine test ("Inline" in Figure 6).
	VariantInline
	// VariantFnCall routes lock and unlock through single out-of-line
	// routines ("FnCall" in Figure 6).
	VariantFnCall
	// VariantMPSync is the multiprocessor path: isync after lock and
	// sync around unlock ("MP Sync" in Figure 6).
	VariantMPSync
	// VariantKernelCAS models old POWER machines whose compare-and-swap
	// is a kernel service (§3.5.1).
	VariantKernelCAS
	// VariantUnlockCAS performs the unlock with a compare-and-swap
	// instead of a plain store ("UnlkC&S" in Figure 6), demonstrating
	// the value of the store-only unlock discipline.
	VariantUnlockCAS
	// VariantNOP removes all locking ("NOP" in Figure 6, the "speed of
	// light"): lock and unlock do nothing. Only meaningful for
	// single-threaded measurement.
	VariantNOP
)

// String returns the Figure 6 label for the variant.
func (v Variant) String() string {
	switch v {
	case VariantStandard:
		return "ThinLock"
	case VariantInline:
		return "Inline"
	case VariantFnCall:
		return "FnCall"
	case VariantMPSync:
		return "MP Sync"
	case VariantKernelCAS:
		return "KernelC&S"
	case VariantUnlockCAS:
		return "UnlkC&S"
	case VariantNOP:
		return "NOP"
	default:
		return "unknown-variant"
	}
}

// Options configures a ThinLocks instance.
type Options struct {
	// Variant selects the implementation alternative. The default is
	// VariantStandard.
	Variant Variant
	// CPU is the simulated machine the Standard variant's dynamic test
	// selects for. Ignored by the other variants, which hard-wire a
	// machine. The default is PowerPCUP.
	CPU arch.CPU
	// EnableDeflation turns on the deflation extension (not in the
	// paper, whose locks stay inflated for the object's lifetime):
	// a fat lock whose queues are empty is turned back into a thin
	// lock on final unlock.
	EnableDeflation bool
	// RecycleMonitors turns on the compact-monitor extension (after
	// Dice & Kogan's Compact Java Monitors; implies EnableDeflation):
	// a deflated monitor's table index is retired through a grace
	// period and then reused by later inflations, so the monitor
	// table's footprint tracks the peak number of simultaneously
	// inflated objects instead of growing monotonically with every
	// inflation. Readers of possibly-stale monitor indices pin the
	// table around the header reload (see monitor.Table).
	RecycleMonitors bool
	// QueuedInflation turns on the queued-contention extension (the
	// Tasuki-lock protocol; see queued.go): contenders park on a
	// contention queue instead of spinning, signalled by a flat-lock-
	// contention bit the owner checks after each final unlock.
	QueuedInflation bool
	// CountBits narrows the nested-count field for the §3.2 ablation
	// ("our use of 8 bits for the lock count is highly conservative;
	// 2 or 3 bits is probably sufficient"). Valid values are 1..8;
	// 0 means the paper's 8. A lock nests up to 2^CountBits times
	// before the next acquisition overflows and inflates. The field
	// always occupies the same 8 bit positions; narrowing only lowers
	// the overflow threshold.
	CountBits int
	// TestMutations plants deliberate protocol bugs so the differential
	// checker can prove it detects them. Test-only; see mutation.go.
	TestMutations Mutations
}

// Stats is a snapshot of a ThinLocks instance's internal counters.
type Stats struct {
	// InflationsContention counts inflations caused by a second thread
	// contending for a thin lock.
	InflationsContention uint64
	// InflationsOverflow counts inflations caused by the 257th nested
	// lock.
	InflationsOverflow uint64
	// InflationsWait counts inflations caused by a wait operation on a
	// thin-locked object.
	InflationsWait uint64
	// SpinAcquisitions counts slow-path acquisitions that had to spin
	// for a thin lock held by another thread.
	SpinAcquisitions uint64
	// SpinRounds counts individual back-off pauses across all spins.
	SpinRounds uint64
	// Deflations counts fat locks turned back into thin locks (always 0
	// unless the deflation extension is enabled).
	Deflations uint64
	// QueuedParks counts contenders that parked on a contention queue
	// (always 0 unless queued inflation is enabled).
	QueuedParks uint64
	// FLCWakeups counts owner-side contention-queue wakeups.
	FLCWakeups uint64
	// FatLocks is the number of monitors ever allocated.
	FatLocks int
	// MonitorFrees counts monitor indices returned to the recycler
	// (always 0 unless monitor recycling is enabled).
	MonitorFrees uint64
	// MonitorRecycles counts inflations that reused a recycled index.
	MonitorRecycles uint64
	// LiveMonitors is the number of monitors currently bound to an
	// object (FatLocks minus MonitorFrees).
	LiveMonitors int
	// TableSpan is the size of the monitor index space in use — the
	// table's memory footprint. With recycling it tracks the peak
	// number of simultaneously inflated objects; without, it equals
	// FatLocks.
	TableSpan int
}

// Inflations returns the total number of inflations for any cause.
func (s Stats) Inflations() uint64 {
	return s.InflationsContention + s.InflationsOverflow + s.InflationsWait
}

// ThinLocks implements lockapi.Locker with the paper's algorithm. It is
// a veneer over the heavy-weight monitor subsystem: uncontended and
// nested locking never touch a monitor.
type ThinLocks struct {
	table     *monitor.Table
	variant   Variant
	cpu       arch.CPU
	deflation bool
	recycle   bool
	queued    bool
	flc       *flcTable
	mut       Mutations
	// nestedLimit is the XOR-check bound: maxCount << CountShift.
	nestedLimit uint32
	// maxCount is the largest encodable count, (1 << CountBits) - 1.
	maxCount uint32

	inflContention atomic.Uint64
	inflOverflow   atomic.Uint64
	inflWait       atomic.Uint64
	spinAcq        atomic.Uint64
	spinRounds     atomic.Uint64
	deflations     atomic.Uint64
	recycles       atomic.Uint64
	queuedParks    atomic.Uint64
	flcWakeups     atomic.Uint64
}

// New returns a ThinLocks instance with the given options.
func New(opts Options) *ThinLocks {
	bits := opts.CountBits
	if bits <= 0 || bits > 8 {
		bits = 8
	}
	maxCount := uint32(1)<<bits - 1
	tl := &ThinLocks{
		table:       monitor.NewTable(),
		variant:     opts.Variant,
		cpu:         opts.CPU,
		deflation:   opts.EnableDeflation || opts.RecycleMonitors,
		recycle:     opts.RecycleMonitors,
		queued:      opts.QueuedInflation,
		mut:         opts.TestMutations,
		nestedLimit: maxCount << CountShift,
		maxCount:    maxCount,
	}
	if tl.queued {
		tl.flc = newFLCTable()
	}
	return tl
}

// NewDefault returns the standard configuration: dynamic machine test on
// a PowerPC uniprocessor, no deflation.
func NewDefault() *ThinLocks { return New(Options{}) }

// Name implements lockapi.Locker.
func (l *ThinLocks) Name() string {
	if l.variant == VariantStandard {
		return "ThinLock"
	}
	return "ThinLock/" + l.variant.String()
}

// Variant returns the configured implementation variant.
func (l *ThinLocks) Variant() Variant { return l.variant }

// Stats returns a snapshot of the instance's counters.
func (l *ThinLocks) Stats() Stats {
	return Stats{
		InflationsContention: l.inflContention.Load(),
		InflationsOverflow:   l.inflOverflow.Load(),
		InflationsWait:       l.inflWait.Load(),
		SpinAcquisitions:     l.spinAcq.Load(),
		SpinRounds:           l.spinRounds.Load(),
		Deflations:           l.deflations.Load(),
		QueuedParks:          l.queuedParks.Load(),
		FLCWakeups:           l.flcWakeups.Load(),
		FatLocks:             l.table.Len(),
		MonitorFrees:         l.table.Freed(),
		MonitorRecycles:      l.recycles.Load(),
		LiveMonitors:         l.table.Live(),
		TableSpan:            l.table.Span(),
	}
}

// Lock acquires o's monitor for t (§2.3.1, §2.3.3, §2.3.4). The
// lockdep hook runs after the acquisition so the order graph sees
// every lock exactly when it is held; disabled it costs one atomic
// load and a not-taken branch (lockdep needs every acquisition, not a
// sample — see the lockdep package comment).
func (l *ThinLocks) Lock(t *threading.Thread, o *object.Object) {
	l.lockDispatch(t, o)
	if d := lockdep.Active(); d != nil && l.variant != VariantNOP {
		d.Acquired(t, o)
	}
}

func (l *ThinLocks) lockDispatch(t *threading.Thread, o *object.Object) {
	switch l.variant {
	case VariantStandard:
		// The dynamic machine-type test of §3.5.1: selected on every
		// operation, costing one predictable branch.
		switch l.cpu {
		case arch.PowerPCMP:
			l.lockFast(t, o, arch.PowerPCMP, true)
		case arch.POWER:
			l.lockFast(t, o, arch.POWER, false)
		default:
			l.lockFast(t, o, arch.PowerPCUP, false)
		}
	case VariantInline, VariantUnlockCAS:
		l.lockInline(t, o)
	case VariantFnCall:
		lockFn(l, t, o)
	case VariantMPSync:
		l.lockFast(t, o, arch.PowerPCMP, true)
	case VariantKernelCAS:
		l.lockFast(t, o, arch.POWER, false)
	case VariantNOP:
		// Locking removed: the speed of light.
	}
}

// lockInline is the leanest fast path: load, mask, compare-and-swap.
// This is the paper's 17-instruction common case.
func (l *ThinLocks) lockInline(t *threading.Thread, o *object.Object) {
	hp := o.HeaderAddr()
	old := atomic.LoadUint32(hp) & MiscMask
	if atomic.CompareAndSwapUint32(hp, old, old|t.Shifted()) {
		return
	}
	l.lockSlow(t, o, arch.PowerPCUP, false)
}

// lockFn is the out-of-line lock routine of the FnCall variant.
//
//go:noinline
func lockFn(l *ThinLocks, t *threading.Thread, o *object.Object) {
	l.lockInline(t, o)
}

// lockFast is the machine-parameterized fast path.
func (l *ThinLocks) lockFast(t *threading.Thread, o *object.Object, cpu arch.CPU, fence bool) {
	hp := o.HeaderAddr()
	old := atomic.LoadUint32(hp) & MiscMask
	if arch.CAS(cpu, hp, old, old|t.Shifted()) {
		if fence {
			arch.ISync()
		}
		return
	}
	l.lockSlow(t, o, cpu, fence)
}

// lockSlow handles every case except an initial lock of an unlocked
// object: nested locking, locking an inflated object, count overflow,
// and contention (§2.3.3–§2.3.4). The telemetry and lockprof wrappers
// live here, off the fast path: when both are disabled the cost is two
// atomic loads and a branch.
func (l *ThinLocks) lockSlow(t *threading.Thread, o *object.Object, cpu arch.CPU, fence bool) {
	m := telemetry.Active()
	p := lockprof.Active()
	if m == nil && p == nil {
		l.lockSlowBody(t, o, cpu, fence)
		return
	}
	if m != nil {
		m.Inc(t, telemetry.CtrSlowPathEntries)
	}
	if p != nil {
		p.SlowPathEnter(t, o)
	}
	start := telemetry.Now()
	l.lockSlowBody(t, o, cpu, fence)
	elapsed := telemetry.Now() - start
	if m != nil {
		m.Observe(t, telemetry.HistAcquireSlowNs, elapsed)
	}
	if p != nil {
		p.SlowPathExit(t, o, elapsed)
	}
}

// lockSlowBody is the slow-path state machine proper.
func (l *ThinLocks) lockSlowBody(t *threading.Thread, o *object.Object, cpu arch.CPU, fence bool) {
	hp := o.HeaderAddr()
	shifted := t.Shifted()
	var b arch.Backoff
	spun := false
	for {
		w := atomic.LoadUint32(hp)
		x := w ^ shifted
		switch {
		case x < l.nestedLimit:
			// Thin, owned by this thread, count < 255: nested lock.
			// The owner may update the word with a plain store.
			atomic.StoreUint32(hp, w+CountUnit)
			return

		case IsInflated(w):
			lockdep.Blocked(t, o, lockdep.WaitFat)
			var m *monitor.Monitor
			if l.recycle {
				// With index recycling the index in w may already have
				// been handed to a different object's monitor; re-read
				// the header under a table pin so the recycler cannot
				// reuse the index inside our lookup window.
				if m = l.pinnedFat(hp, t); m == nil {
					continue // deflated between loads; retry the header
				}
			} else {
				m = l.table.Get(FatIndex(w))
			}
			if l.enterFat(m, t) {
				if fence {
					arch.ISync()
				}
				return
			}
			// The monitor was retired by deflation; the header no
			// longer (or soon will no longer) point at it. Retry.

		case x&TIDMask == 0:
			// Thin, owned by this thread, count saturated: the next
			// lock would overflow the count field, so inflate,
			// carrying the full nesting depth into the fat lock.
			// With the paper's 8-bit field this is the 257th lock.
			l.inflOverflow.Add(1)
			telemetry.Inc(t, telemetry.CtrInflationsOverflow)
			lockprof.Inflation(t, o, lockprof.CauseOverflow)
			locks := l.maxCount + 2
			if l.mut.OverflowOffByOne {
				locks-- // seeded bug: one recursion level lost
			}
			l.inflate(t, o, locks)
			return

		case w&TIDMask == 0:
			// Unlocked. If we spun to get here the object has shown
			// contention, so once we win the thin lock we inflate it,
			// banking on the locality-of-contention principle: "if
			// there is contention for an object once, there is likely
			// to be contention for it again" (§2.3.4).
			if arch.CAS(cpu, hp, w, w&MiscMask|shifted) {
				if spun {
					l.spinAcq.Add(1)
					l.inflContention.Add(1)
					telemetry.Inc(t, telemetry.CtrInflationsContention)
					lockprof.Inflation(t, o, lockprof.CauseContention)
					l.inflate(t, o, 1)
				}
				if fence {
					arch.ISync()
				}
				return
			}
			telemetry.Inc(t, telemetry.CtrCASFailures)
			lockprof.CASFailure(t)

		default:
			// Thin-locked by another thread. Our discipline forbids
			// writing the lock word, so either park on the contention
			// queue (queued-inflation extension) or spin with
			// exponential back-off until the owner releases (§2.3.4).
			spun = true
			if l.queued {
				lockdep.Blocked(t, o, lockdep.WaitQueued)
				l.queueWait(t, o)
			} else {
				lockdep.Blocked(t, o, lockdep.WaitSpin)
				l.spinRounds.Add(1)
				telemetry.Inc(t, telemetry.CtrSpinRounds)
				b.Pause()
			}
		}
	}
}

// pinnedFat resolves the object header at hp to its fat monitor under a
// table reader pin: the pin is published first, the header is re-read,
// and only then is the index dereferenced, so a concurrent deflation
// cannot recycle the index between the load and the Get (monitor.Table's
// grace period holds it back until we unpin). Returns nil if the header
// is no longer inflated. The monitor pointer stays valid after unpinning
// — monitor structs are never reused, so the worst a latecomer sees is a
// permanently retired monitor, answered by EnterIfActive.
//
// Exit/Wait/Notify need no pin: they are owner-validated. If the caller
// owns the fat lock the index binding cannot change (only the owner can
// retire it), and if it does not, any monitor the stale index resolves
// to is one the caller cannot own (a fresh monitor's owner is seeded as
// its inflater and changes only by queue handoff), so the operation
// fails with ErrIllegalMonitorState exactly as it must.
func (l *ThinLocks) pinnedFat(hp *uint32, t *threading.Thread) *monitor.Monitor {
	if l.mut.DeflateEpochSkip {
		// Seeded bug: dereference the possibly-stale index with no pin
		// and no header re-read, dwelling in the window to make the
		// recycle race schedulable (the sleep is a legal schedule; only
		// the missing grace protection is the bug).
		w := atomic.LoadUint32(hp)
		time.Sleep(200 * time.Microsecond)
		if !IsInflated(w) {
			return nil
		}
		return l.table.Get(FatIndex(w))
	}
	token := l.table.Pin(t.Index())
	w := atomic.LoadUint32(hp)
	if !IsInflated(w) {
		l.table.Unpin(token)
		return nil
	}
	m := l.table.Get(FatIndex(w))
	l.table.Unpin(token)
	return m
}

// enterFat enters a fat lock, honoring the deflation extension: it
// reports false if the monitor was retired, in which case the caller
// must re-read the object header.
func (l *ThinLocks) enterFat(m *monitor.Monitor, t *threading.Thread) bool {
	if !l.deflation {
		m.Enter(t)
		return true
	}
	return m.EnterIfActive(t)
}

// inflate converts the thin lock the calling thread owns into a fat lock
// holding `locks` nested locks. The header store may be plain: the
// inflating thread owns the thin lock, and the discipline guarantees
// exclusive write access to the lock word.
func (l *ThinLocks) inflate(t *threading.Thread, o *object.Object, locks uint32) *monitor.Monitor {
	m := l.table.Allocate()
	if m.RecycledIndex() {
		l.recycles.Add(1)
		telemetry.Inc(t, telemetry.CtrMonitorRecycles)
	}
	m.SeedOwner(t, locks)
	o.SetHeader(InflatedWord(m.Index(), o.Header()))
	if l.queued {
		// Contenders parked before the inflation would otherwise wait
		// for a thin release that will never come; wake them so they
		// re-read the header and queue on the fat lock.
		l.maybeWakeQueued(o)
	}
	return m
}

// Unlock releases one level of o's monitor (§2.3.2).
func (l *ThinLocks) Unlock(t *threading.Thread, o *object.Object) error {
	err := l.unlockDispatch(t, o)
	if err == nil {
		if d := lockdep.Active(); d != nil && l.variant != VariantNOP {
			d.Released(t, o)
		}
	}
	return err
}

func (l *ThinLocks) unlockDispatch(t *threading.Thread, o *object.Object) error {
	switch l.variant {
	case VariantStandard:
		switch l.cpu {
		case arch.PowerPCMP:
			return l.unlockStore(t, o, true)
		default:
			return l.unlockStore(t, o, false)
		}
	case VariantInline, VariantKernelCAS:
		return l.unlockStore(t, o, false)
	case VariantFnCall:
		return unlockFn(l, t, o)
	case VariantMPSync:
		return l.unlockStore(t, o, true)
	case VariantUnlockCAS:
		return l.unlockCAS(t, o)
	case VariantNOP:
		return nil
	default:
		return l.unlockStore(t, o, false)
	}
}

// unlockStore is the paper's unlock: a load, a compare, and a plain
// store. No atomic operation is needed because lock ownership is a
// stable property — if this thread owns the lock the loaded value cannot
// be stale, and if it does not, any stale value still shows that it does
// not (§2.3.2).
func (l *ThinLocks) unlockStore(t *threading.Thread, o *object.Object, fence bool) error {
	hp := o.HeaderAddr()
	w := atomic.LoadUint32(hp)
	if w^t.Shifted() < CountUnit {
		// Thin, owned by this thread, count 0: the common case.
		// On a multiprocessor the sync barrier makes the critical
		// section's writes visible before the release (§3.5.1).
		if fence {
			arch.Sync()
		}
		atomic.StoreUint32(hp, w^t.Shifted())
		if l.queued {
			l.wakeAfterUnlock(o)
		}
		return nil
	}
	return l.unlockSlow(t, o, fence, false)
}

// unlockCAS is the UnlkC&S variant: the release uses a compare-and-swap,
// paying the atomic-operation cost the discipline makes unnecessary.
func (l *ThinLocks) unlockCAS(t *threading.Thread, o *object.Object) error {
	hp := o.HeaderAddr()
	w := atomic.LoadUint32(hp)
	if w^t.Shifted() < CountUnit {
		if !atomic.CompareAndSwapUint32(hp, w, w^t.Shifted()) {
			// Unreachable: we own the lock, so no other thread may
			// write the word.
			panic("core: unlock CAS failed while owning the lock")
		}
		if l.queued {
			l.wakeAfterUnlock(o)
		}
		return nil
	}
	return l.unlockSlow(t, o, false, true)
}

// unlockFn is the out-of-line unlock routine of the FnCall variant.
//
//go:noinline
func unlockFn(l *ThinLocks, t *threading.Thread, o *object.Object) error {
	return l.unlockStore(t, o, false)
}

// unlockSlow handles nested thin unlocks, fat unlocks, and errors.
func (l *ThinLocks) unlockSlow(t *threading.Thread, o *object.Object, fence, useCAS bool) error {
	lockprof.UnlockSlow(t, o)
	hp := o.HeaderAddr()
	w := atomic.LoadUint32(hp)
	x := w ^ t.Shifted()
	if x>>IndexShift == 0 {
		// Thin and owned by this thread.
		var nw uint32
		if x < CountUnit {
			nw = w ^ t.Shifted() // final release: clear the thread index
			if fence {
				arch.Sync()
			}
		} else {
			nw = w - CountUnit // nested release: decrement the count
		}
		if useCAS {
			if !atomic.CompareAndSwapUint32(hp, w, nw) {
				panic("core: unlock CAS failed while owning the lock")
			}
		} else {
			atomic.StoreUint32(hp, nw)
		}
		if l.queued && x < CountUnit {
			l.wakeAfterUnlock(o)
		}
		return nil
	}
	if IsInflated(w) {
		// No pin needed here: if this thread owns the fat lock the
		// binding is stable (only the owner can retire it), and if it
		// does not, the retire/exit below fail with the right error —
		// see pinnedFat.
		m := l.table.Get(FatIndex(w))
		if l.deflation && l.retireFat(m, t) {
			// Deflation extension: the fat lock was held exactly once
			// with empty queues; retire it and restore a thin,
			// unlocked header. Latecomers holding the stale monitor
			// index bounce off the retired monitor and re-read the
			// header.
			l.deflations.Add(1)
			telemetry.Inc(t, telemetry.CtrDeflations)
			lockprof.Deflation(t, o)
			if fence {
				arch.Sync()
			}
			atomic.StoreUint32(hp, w&MiscMask)
			if l.recycle {
				// Recycle the index only after the header restore: the
				// grace stamp taken inside Free must postdate the last
				// moment a reader could have found the index through
				// this object.
				l.freeIndex(t, m)
			}
			return nil
		}
		return m.Exit(t)
	}
	// Thin but owned by another thread (or unlocked).
	return ErrIllegalMonitorState
}

// retireFat retires a quiescent fat lock, honoring the seeded
// deflate-queue mutation (which skips the entry-queue emptiness check,
// stranding queued contenders — see core.Mutations).
func (l *ThinLocks) retireFat(m *monitor.Monitor, t *threading.Thread) bool {
	if l.mut.DeflateQueueIgnore {
		return m.RetireDroppingQueue(t)
	}
	return m.Retire(t)
}

// freeIndex returns a retired monitor's index to the table's recycler,
// honoring the seeded deflate-epoch mutation (which skips the grace
// period, recreating the stale-index reuse race the epoch scheme
// prevents).
func (l *ThinLocks) freeIndex(t *threading.Thread, m *monitor.Monitor) {
	if l.mut.DeflateEpochSkip {
		l.table.FreeSkippingGrace(m)
	} else {
		l.table.Free(m)
	}
	telemetry.Inc(t, telemetry.CtrMonitorFrees)
}

// Wait implements lockapi.Locker. Waiting requires queues, so a
// thin-locked object is first inflated at its current nesting depth.
func (l *ThinLocks) Wait(t *threading.Thread, o *object.Object, d time.Duration) (bool, error) {
	if ld := lockdep.Active(); ld != nil {
		ld.CondWaitBegin(t, o)
		ok, err := l.waitBody(t, o, d)
		ld.CondWaitEnd(t, o)
		return ok, err
	}
	return l.waitBody(t, o, d)
}

func (l *ThinLocks) waitBody(t *threading.Thread, o *object.Object, d time.Duration) (bool, error) {
	w := o.Header()
	if IsInflated(w) {
		return l.table.Get(FatIndex(w)).Wait(t, d)
	}
	if w&TIDMask == t.Shifted() {
		l.inflWait.Add(1)
		telemetry.Inc(t, telemetry.CtrInflationsWait)
		lockprof.Inflation(t, o, lockprof.CauseWait)
		m := l.inflate(t, o, ThinCount(w)+1)
		return m.Wait(t, d)
	}
	return false, ErrIllegalMonitorState
}

// Notify implements lockapi.Locker. A thin-locked object can have no
// waiters (waiting inflates), so notify on an owned thin lock is a no-op.
func (l *ThinLocks) Notify(t *threading.Thread, o *object.Object) error {
	w := o.Header()
	if IsInflated(w) {
		return l.table.Get(FatIndex(w)).Notify(t)
	}
	if w&TIDMask == t.Shifted() {
		return nil
	}
	return ErrIllegalMonitorState
}

// NotifyAll implements lockapi.Locker.
func (l *ThinLocks) NotifyAll(t *threading.Thread, o *object.Object) error {
	w := o.Header()
	if IsInflated(w) {
		return l.table.Get(FatIndex(w)).NotifyAll(t)
	}
	if w&TIDMask == t.Shifted() {
		return nil
	}
	return ErrIllegalMonitorState
}

// Inflated reports whether o's lock is currently in the fat state.
func (l *ThinLocks) Inflated(o *object.Object) bool { return IsInflated(o.Header()) }

// HolderIndex returns the thread index currently holding o's lock, or 0
// if unlocked. For an inflated lock it consults the monitor.
func (l *ThinLocks) HolderIndex(o *object.Object) uint16 {
	w := o.Header()
	if !IsInflated(w) {
		return ThinOwner(w)
	}
	owner := l.table.Get(FatIndex(w)).Owner()
	if owner == nil {
		return 0
	}
	return owner.Index()
}

// Monitor returns the fat lock of an inflated object, or nil if the
// object's lock is thin. Intended for tests and diagnostics.
func (l *ThinLocks) Monitor(o *object.Object) *monitor.Monitor {
	w := o.Header()
	if !IsInflated(w) {
		return nil
	}
	return l.table.Get(FatIndex(w))
}
