//go:build race

package core

// raceEnabled reports whether the race detector instruments this build;
// the churn bound test scales its cycle count down under its overhead.
const raceEnabled = true
