package core

import (
	"sync"
	"sync/atomic"

	"thinlock/internal/lockprof"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

// Queued inflation: an extension replacing the spin loop of §2.3.4.
//
// The paper acknowledges one pathological case for spinning: "when an
// object is locked by one thread and not released for a long time, during
// which time other threads are spinning on the object". The follow-up
// work on Tasuki locks (Onodera & Kawachiya, OOPSLA'99) eliminated the
// spin with a *flat lock contention* (flc) bit that a contender may set,
// placed where lock-word stores by the owner can never clobber it. This
// file implements that protocol:
//
//	contender:  set flc (atomic, in the flags word);
//	            re-read the lock word — still thin-locked by another
//	            thread? then park on the object's contention queue;
//	            otherwise retry immediately.
//	owner:      release the thin lock with the usual plain store, then
//	            load the flags word; if flc is set, wake the queue.
//
// Both sides' operations are sequentially consistent atomics, so the
// classic Dekker argument applies: if the contender parked, the owner's
// release either preceded the contender's re-read (contender would have
// seen the lock free) or the owner's flag load follows the contender's
// flag store (owner wakes the queue). No wakeup can be lost.
//
// The woken contenders race to acquire the thin lock; the winner inflates
// it under the locality-of-contention principle, and the losers find the
// inflated word and queue on the fat lock. The cost of the extension is
// one extra atomic load on every final unlock while the lock is thin.

// FlagFLC is the flat-lock-contention bit in the object's flags word.
const FlagFLC uint32 = 1 << 0

// flcQueue is the parking list for contenders on one thin-locked object.
type flcQueue struct {
	mu      sync.Mutex
	waiters []chan struct{}
}

// flcTable maps object ids to contention queues. Entries exist only
// while a thin lock is contended; inflation makes them garbage.
type flcTable struct {
	mu     sync.Mutex
	queues map[uint64]*flcQueue
}

func newFLCTable() *flcTable {
	return &flcTable{queues: make(map[uint64]*flcQueue)}
}

// get returns (creating if needed) the queue for object id.
func (ft *flcTable) get(id uint64) *flcQueue {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	q := ft.queues[id]
	if q == nil {
		q = &flcQueue{}
		ft.queues[id] = q
	}
	return q
}

// drop removes the queue for id if it has no waiters.
func (ft *flcTable) drop(id uint64) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if q := ft.queues[id]; q != nil {
		q.mu.Lock()
		empty := len(q.waiters) == 0
		q.mu.Unlock()
		if empty {
			delete(ft.queues, id)
		}
	}
}

// queueLen reports the number of queues currently allocated (tests).
func (ft *flcTable) queueLen() int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return len(ft.queues)
}

// queueWait blocks t until o's thin lock is released (or briefly, on any
// wake). Returns immediately if the lock is observed free or inflated.
func (l *ThinLocks) queueWait(t *threading.Thread, o *object.Object) {
	q := l.flc.get(o.ID())

	// Publish contention before re-checking the lock word (store→load
	// ordering is what makes the handshake safe).
	o.SetFlagBits(FlagFLC)

	w := atomic.LoadUint32(o.HeaderAddr())
	if w&TIDMask == 0 || IsInflated(w) {
		// Released (or inflated) in the window: no need to park.
		return
	}

	ch := make(chan struct{})
	q.mu.Lock()
	// Re-check under the queue lock so a concurrent wake cannot slip
	// between the check and the append.
	w = atomic.LoadUint32(o.HeaderAddr())
	if w&TIDMask == 0 || IsInflated(w) || o.Flags()&FlagFLC == 0 {
		q.mu.Unlock()
		return
	}
	q.waiters = append(q.waiters, ch)
	q.mu.Unlock()

	l.queuedParks.Add(1)
	m := telemetry.Active()
	p := lockprof.Active()
	if m == nil && p == nil {
		<-ch
		return
	}
	if m != nil {
		m.Inc(t, telemetry.CtrQueuedParks)
	}
	start := telemetry.Now()
	<-ch
	parked := telemetry.Now() - start
	if m != nil {
		m.Observe(t, telemetry.HistMonitorStallNs, parked)
	}
	if p != nil {
		p.Park(t, parked)
	}
}

// wakeQueued clears the flc bit and releases every parked contender.
// Called by the releasing owner after its unlock store.
func (l *ThinLocks) wakeQueued(o *object.Object) {
	o.ClearFlagBits(FlagFLC)
	q := l.flc.get(o.ID())
	q.mu.Lock()
	waiters := q.waiters
	q.waiters = nil
	q.mu.Unlock()
	for _, ch := range waiters {
		close(ch)
	}
	l.flcWakeups.Add(1)
	telemetry.Inc(nil, telemetry.CtrFLCWakeups)
	l.flc.drop(o.ID())
}

// maybeWakeQueued is the owner's post-release hook: one atomic load in
// the common (uncontended) case.
func (l *ThinLocks) maybeWakeQueued(o *object.Object) {
	if o.Flags()&FlagFLC != 0 {
		l.wakeQueued(o)
	}
}

// wakeAfterUnlock is maybeWakeQueued behind the DropQueuedWake seeded
// mutation (see mutation.go). Inflation's wakeup is deliberately not
// routed through here: the mutation models a bug in the unlock path
// only.
func (l *ThinLocks) wakeAfterUnlock(o *object.Object) {
	if l.mut.DropQueuedWake {
		return
	}
	l.maybeWakeQueued(o)
}
