package core

import (
	"fmt"
	"testing"
)

// TestCountBitsAblation exercises the §3.2 ablation: with a k-bit count
// field, 2^k nested locks stay thin and the (2^k+1)-th inflates.
func TestCountBitsAblation(t *testing.T) {
	t.Parallel()
	for _, bits := range []int{1, 2, 3, 8} {
		bits := bits
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			f := newFixture(t, Options{CountBits: bits})
			th := f.thread(t)
			o := f.heap.New("X")
			thinMax := 1 << bits

			for i := 0; i < thinMax; i++ {
				f.l.Lock(th, o)
				if IsInflated(o.Header()) {
					t.Fatalf("inflated at %d locks; %d should stay thin", i+1, thinMax)
				}
			}
			if got := ThinCount(o.Header()); got != uint32(thinMax-1) {
				t.Fatalf("count = %d at saturation, want %d", got, thinMax-1)
			}

			f.l.Lock(th, o) // overflow
			if !IsInflated(o.Header()) {
				t.Fatalf("lock %d did not inflate", thinMax+1)
			}
			if got := f.l.Monitor(o).Count(); got != uint32(thinMax+1) {
				t.Fatalf("fat count = %d, want %d", got, thinMax+1)
			}
			if s := f.l.Stats(); s.InflationsOverflow != 1 {
				t.Fatalf("InflationsOverflow = %d", s.InflationsOverflow)
			}
			for i := 0; i < thinMax+1; i++ {
				if err := f.l.Unlock(th, o); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestCountBitsDefault confirms 0 and out-of-range values select the
// paper's 8-bit field.
func TestCountBitsDefault(t *testing.T) {
	t.Parallel()
	for _, bits := range []int{0, -1, 9, 100} {
		l := New(Options{CountBits: bits})
		if l.maxCount != 255 {
			t.Errorf("CountBits=%d: maxCount = %d, want 255", bits, l.maxCount)
		}
	}
}

// TestCountBitsNeverOverflowsOnShallowWorkload checks the paper's claim
// that 2 bits suffice for real programs: a workload nesting at most 3
// deep must never trigger an overflow inflation even with CountBits=2.
func TestCountBitsNeverOverflowsOnShallowWorkload(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{CountBits: 2})
	th := f.thread(t)
	for i := 0; i < 200; i++ {
		o := f.heap.New("X")
		// Nest to 3 (like Stack.Pop -> Peek -> LastElement) repeatedly.
		for rep := 0; rep < 5; rep++ {
			f.l.Lock(th, o)
			f.l.Lock(th, o)
			f.l.Lock(th, o)
			for u := 0; u < 3; u++ {
				if err := f.l.Unlock(th, o); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if s := f.l.Stats(); s.InflationsOverflow != 0 {
		t.Fatalf("shallow nesting overflowed a 2-bit count %d times", s.InflationsOverflow)
	}
}
