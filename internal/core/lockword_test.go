package core

import (
	"testing"
	"testing/quick"
)

func TestThinWordRoundTrip(t *testing.T) {
	t.Parallel()
	prop := func(owner uint16, count uint8, misc uint8) bool {
		owner &= 0x7FFF
		w := ThinWord(owner, uint32(count), uint32(misc))
		return !IsInflated(w) &&
			ThinOwner(w) == owner &&
			ThinCount(w) == uint32(count) &&
			w&MiscMask == uint32(misc)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestInflatedWordRoundTrip(t *testing.T) {
	t.Parallel()
	prop := func(idx uint32, misc uint8) bool {
		idx &= 0x7FFFFF
		w := InflatedWord(idx, uint32(misc))
		return IsInflated(w) &&
			FatIndex(w) == idx &&
			w&MiscMask == uint32(misc)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIsUnlocked(t *testing.T) {
	t.Parallel()
	if !IsUnlocked(0) {
		t.Error("0 should be unlocked")
	}
	if !IsUnlocked(0xA5) {
		t.Error("pure misc bits should be unlocked")
	}
	if IsUnlocked(ThinWord(3, 0, 0xA5)) {
		t.Error("owned word reported unlocked")
	}
	if IsUnlocked(InflatedWord(1, 0)) {
		t.Error("inflated word reported unlocked")
	}
}

// TestFigure1Encodings checks the concrete lock words of Figure 1 of the
// paper: (c) unlocked, (d) locked once by thread A, (e) locked twice.
func TestFigure1Encodings(t *testing.T) {
	t.Parallel()
	const misc = uint32(0x2A)
	const threadA = uint16(5)

	unlocked := ThinWord(0, 0, misc)
	if unlocked != misc {
		t.Errorf("unlocked word = %#x, want misc bits only %#x", unlocked, misc)
	}

	once := ThinWord(threadA, 0, misc)
	if want := uint32(threadA)<<16 | misc; once != want {
		t.Errorf("locked-once word = %#x, want %#x", once, want)
	}
	// The paper constructs it as old | (index pre-shifted by 16).
	if once != unlocked|uint32(threadA)<<IndexShift {
		t.Error("locked-once word is not old|shifted as in §2.3.1")
	}

	twice := ThinWord(threadA, 1, misc)
	// §2.3.3: the count is incremented "by adding 256 to the lock word".
	if twice != once+CountUnit {
		t.Errorf("locked-twice word = %#x, want once+%#x", twice, CountUnit)
	}
	if ThinCount(twice) != 1 {
		t.Errorf("count = %d for a doubly-locked object, want 1 (locks minus one)", ThinCount(twice))
	}
}

// TestNestedCheckXORTrick verifies the §2.3.3 fast nested-lock test:
// XOR the lock word with the pre-shifted thread index; any result below
// 255<<8 means thin + owned-by-us + count<255, for every misc value.
func TestNestedCheckXORTrick(t *testing.T) {
	t.Parallel()
	prop := func(owner uint16, count uint8, misc uint8, otherOwner uint16) bool {
		owner = owner&0x7FFF | 1 // nonzero
		otherOwner &= 0x7FFF
		shifted := uint32(owner) << IndexShift

		w := ThinWord(owner, uint32(count), uint32(misc))
		ours := w ^ shifted
		if count < 255 {
			if ours >= nestedCheckLimit {
				return false // false negative
			}
		} else if ours < nestedCheckLimit {
			return false // count saturated must fail the check
		}

		if otherOwner != owner {
			other := ThinWord(otherOwner, uint32(count), uint32(misc))
			if otherOwner != 0 && other^shifted < nestedCheckLimit {
				return false // false positive on foreign owner
			}
		}

		fat := InflatedWord(uint32(owner)<<7, uint32(misc))
		return fat^shifted >= nestedCheckLimit // fat words must fail
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestLockFieldIs24Bits verifies no encoding touches the misc byte.
func TestLockFieldIs24Bits(t *testing.T) {
	t.Parallel()
	if ShapeBit|TIDMask|CountMask != 0xFFFFFF00 {
		t.Errorf("thin fields cover %#x, want high 24 bits", ShapeBit|TIDMask|CountMask)
	}
	if ShapeBit&TIDMask != 0 || TIDMask&CountMask != 0 || CountMask&MiscMask != 0 {
		t.Error("lock word fields overlap")
	}
	if ShapeBit|FatIndexMask != 0xFFFFFF00 {
		t.Errorf("fat fields cover %#x, want high 24 bits", ShapeBit|FatIndexMask)
	}
}

func TestVariantStrings(t *testing.T) {
	t.Parallel()
	want := map[Variant]string{
		VariantStandard:  "ThinLock",
		VariantInline:    "Inline",
		VariantFnCall:    "FnCall",
		VariantMPSync:    "MP Sync",
		VariantKernelCAS: "KernelC&S",
		VariantUnlockCAS: "UnlkC&S",
		VariantNOP:       "NOP",
		Variant(42):      "unknown-variant",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("Variant(%d).String() = %q, want %q", v, v.String(), s)
		}
	}
}
