package core

import (
	"sync"
	"testing"
	"time"

	"thinlock/internal/arch"
)

// TestMPVariantContentionAndInflation exercises the multiprocessor code
// path (CAS + isync / sync + store) through a full contention episode:
// spin, acquire, inflate, fat handoff.
func TestMPVariantContentionAndInflation(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{Variant: VariantMPSync})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")

	f.l.Lock(a, o)
	acquired := make(chan struct{})
	go func() {
		f.l.Lock(b, o)
		close(acquired)
	}()
	waitForStat(t, func() bool { return f.l.Stats().SpinRounds > 0 })
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("MP contender never acquired")
	}
	if !IsInflated(o.Header()) {
		t.Fatal("MP contention did not inflate")
	}
	if err := f.l.Unlock(b, o); err != nil {
		t.Fatal(err)
	}
}

// TestKernelCASContention drives contention through the simulated POWER
// kernel compare-and-swap service.
func TestKernelCASContention(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{Variant: VariantKernelCAS})
	o := f.heap.New("X")
	const goroutines, iters = 4, 200
	var counter int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th := f.thread(t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f.l.Lock(th, o)
				counter++
				if err := f.l.Unlock(th, o); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

// TestStandardMPQueuedDeflationComposition stacks every orthogonal
// feature — MP machine model, queued inflation, deflation, narrow count
// field — and hammers one object; correctness must be preserved by the
// composition, not just each feature alone.
func TestStandardMPQueuedDeflationComposition(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{
		CPU:             arch.PowerPCMP,
		QueuedInflation: true,
		EnableDeflation: true,
		CountBits:       3,
	})
	o := f.heap.New("X")
	const goroutines, iters = 6, 250
	var counter int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th := f.thread(t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f.l.Lock(th, o)
				f.l.Lock(th, o) // nested within the 3-bit budget
				counter++
				if err := f.l.Unlock(th, o); err != nil {
					t.Error(err)
				}
				if err := f.l.Unlock(th, o); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}
