package core

import (
	"sync"
	"testing"
	"time"

	"thinlock/internal/object"
)

func TestQueuedContentionParksAndInflates(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{QueuedInflation: true})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")

	f.l.Lock(a, o)
	acquired := make(chan struct{})
	go func() {
		f.l.Lock(b, o)
		close(acquired)
	}()

	// B must park, not spin.
	waitForStat(t, func() bool { return f.l.Stats().QueuedParks > 0 })
	if f.l.Stats().SpinRounds != 0 {
		t.Error("queued mode still spun")
	}
	if o.Flags()&FlagFLC == 0 {
		t.Error("flc bit not set while contender parked")
	}
	select {
	case <-acquired:
		t.Fatal("B acquired while A held the lock")
	default:
	}

	if err := f.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("queued contender never woken")
	}
	if !IsInflated(o.Header()) {
		t.Fatal("queued contention did not inflate")
	}
	s := f.l.Stats()
	if s.FLCWakeups == 0 {
		t.Error("owner never performed an flc wakeup")
	}
	if s.InflationsContention != 1 {
		t.Errorf("InflationsContention = %d, want 1", s.InflationsContention)
	}
	if err := f.l.Unlock(b, o); err != nil {
		t.Fatal(err)
	}
}

func TestQueuedMutualExclusionStress(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{QueuedInflation: true})
	o := f.heap.New("X")
	const goroutines, iters = 8, 400
	var counter int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th := f.thread(t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f.l.Lock(th, o)
				counter++
				if err := f.l.Unlock(th, o); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

func TestQueuedManyObjectsStress(t *testing.T) {
	t.Parallel()
	// Contention across several objects exercises queue creation and
	// cleanup concurrently.
	f := newFixture(t, Options{QueuedInflation: true})
	const objects, goroutines, iters = 4, 6, 300
	objs := make([]*object.Object, objects)
	counters := make([]int64, objects)
	for i := range objs {
		objs[i] = f.heap.New("X")
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th := f.thread(t)
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (seed + i) % objects
				f.l.Lock(th, objs[k])
				counters[k]++
				if err := f.l.Unlock(th, objs[k]); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, c := range counters {
		total += c
	}
	if total != goroutines*iters {
		t.Fatalf("total = %d, want %d", total, goroutines*iters)
	}
}

func TestQueuedOverflowInflationWakesParkedContender(t *testing.T) {
	t.Parallel()
	// A parks on B's thin lock; B inflates via count overflow rather
	// than unlocking. A must still be woken (by the inflate hook) and
	// enter the fat lock.
	f := newFixture(t, Options{QueuedInflation: true})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")

	f.l.Lock(b, o) // B holds once
	acquired := make(chan struct{})
	go func() {
		f.l.Lock(a, o)
		close(acquired)
	}()
	waitForStat(t, func() bool { return f.l.Stats().QueuedParks > 0 })

	// B drives its own lock to overflow: inflates while holding.
	for i := 0; i < 256; i++ {
		f.l.Lock(b, o)
	}
	if !IsInflated(o.Header()) {
		t.Fatal("overflow did not inflate")
	}
	// A should now be queued on the fat lock, not parked on flc.
	select {
	case <-acquired:
		t.Fatal("A acquired while B holds 257 locks")
	default:
	}
	for i := 0; i < 257; i++ {
		if err := f.l.Unlock(b, o); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("contender parked before overflow inflation was never woken")
	}
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
}

func TestQueuedFlagClearedAfterWake(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{QueuedInflation: true})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")
	f.l.Lock(a, o)
	done := make(chan struct{})
	go func() {
		f.l.Lock(b, o)
		if err := f.l.Unlock(b, o); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	waitForStat(t, func() bool { return f.l.Stats().QueuedParks > 0 })
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	<-done
	if o.Flags()&FlagFLC != 0 {
		t.Error("flc bit left set after contention resolved")
	}
	if n := f.l.flc.queueLen(); n != 0 {
		t.Errorf("%d contention queues leaked", n)
	}
}

func TestQueuedNoOverheadWithoutContention(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{QueuedInflation: true})
	th := f.thread(t)
	o := f.heap.New("X")
	for i := 0; i < 100; i++ {
		f.l.Lock(th, o)
		if err := f.l.Unlock(th, o); err != nil {
			t.Fatal(err)
		}
	}
	s := f.l.Stats()
	if s.QueuedParks != 0 || s.FLCWakeups != 0 || s.FatLocks != 0 {
		t.Errorf("uncontended run touched queues: %+v", s)
	}
	if f.l.flc.queueLen() != 0 {
		t.Error("queues allocated without contention")
	}
}

func TestQueuedWithDeflationCycles(t *testing.T) {
	t.Parallel()
	// Queued inflation + eager deflation: locks cycle thin→fat→thin
	// under contention; mutual exclusion and wakeups must survive.
	f := newFixture(t, Options{QueuedInflation: true, EnableDeflation: true})
	o := f.heap.New("X")
	const goroutines, iters = 6, 300
	var counter int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th := f.thread(t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f.l.Lock(th, o)
				counter++
				if err := f.l.Unlock(th, o); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

func TestFLCTableDropKeepsNonEmptyQueues(t *testing.T) {
	t.Parallel()
	ft := newFLCTable()
	q := ft.get(7)
	q.waiters = append(q.waiters, make(chan struct{}))
	ft.drop(7)
	if ft.queueLen() != 1 {
		t.Error("drop removed a queue with waiters")
	}
	q.waiters = nil
	ft.drop(7)
	if ft.queueLen() != 0 {
		t.Error("drop kept an empty queue")
	}
	ft.drop(99) // absent id: no-op
}
