package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thinlock/internal/arch"
	"thinlock/internal/object"
	"thinlock/internal/testutil"
	"thinlock/internal/threading"
)

type fixture struct {
	l    *ThinLocks
	heap *object.Heap
	reg  *threading.Registry
}

func newFixture(t *testing.T, opts Options) *fixture {
	t.Helper()
	return &fixture{l: New(opts), heap: object.NewHeap(), reg: threading.NewRegistry()}
}

func (f *fixture) thread(t *testing.T) *threading.Thread {
	t.Helper()
	th, err := f.reg.Attach("t")
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestLockUnlockedObject(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{})
	th := f.thread(t)
	o := f.heap.New("X")
	misc := o.Misc()

	f.l.Lock(th, o)
	w := o.Header()
	if IsInflated(w) {
		t.Fatal("uncontended lock inflated")
	}
	if ThinOwner(w) != th.Index() {
		t.Fatalf("owner = %d, want %d", ThinOwner(w), th.Index())
	}
	if ThinCount(w) != 0 {
		t.Fatalf("count = %d after first lock, want 0 (locks-1)", ThinCount(w))
	}
	if w&MiscMask != misc {
		t.Fatalf("misc bits changed: %#x -> %#x", misc, w&MiscMask)
	}

	if err := f.l.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
	if o.Header() != misc {
		t.Fatalf("header = %#x after unlock, want pure misc %#x", o.Header(), misc)
	}
}

func TestNestedLocking(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{})
	th := f.thread(t)
	o := f.heap.New("X")

	const depth = 10
	for i := 0; i < depth; i++ {
		f.l.Lock(th, o)
		if got := ThinCount(o.Header()); got != uint32(i) {
			t.Fatalf("count = %d after %d locks, want %d", got, i+1, i)
		}
	}
	if IsInflated(o.Header()) {
		t.Fatal("shallow nesting inflated the lock")
	}
	for i := depth - 1; i >= 0; i-- {
		if err := f.l.Unlock(th, o); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if got := ThinCount(o.Header()); got != uint32(i-1) {
				t.Fatalf("count = %d after unlock to depth %d", got, i)
			}
		}
	}
	if !IsUnlocked(o.Header()) {
		t.Fatalf("header = %#x after balanced unlocks", o.Header())
	}
}

// TestCountOverflowInflates drives nesting past 256: the 257th lock must
// inflate, carrying the full count into the fat lock.
func TestCountOverflowInflates(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{})
	th := f.thread(t)
	o := f.heap.New("X")

	for i := 0; i < 256; i++ {
		f.l.Lock(th, o)
	}
	if IsInflated(o.Header()) {
		t.Fatal("inflated before the 257th lock")
	}
	if got := ThinCount(o.Header()); got != 255 {
		t.Fatalf("count = %d at 256 locks, want 255", got)
	}

	f.l.Lock(th, o) // 257th
	if !IsInflated(o.Header()) {
		t.Fatal("257th lock did not inflate")
	}
	m := f.l.Monitor(o)
	if m.Count() != 257 {
		t.Fatalf("fat count = %d, want 257", m.Count())
	}
	if m.Owner() != th {
		t.Fatal("fat owner is not the inflating thread")
	}
	if s := f.l.Stats(); s.InflationsOverflow != 1 {
		t.Errorf("InflationsOverflow = %d, want 1", s.InflationsOverflow)
	}

	for i := 0; i < 257; i++ {
		if err := f.l.Unlock(th, o); err != nil {
			t.Fatalf("unlock %d: %v", i, err)
		}
	}
	if !IsInflated(o.Header()) {
		t.Fatal("lock deflated; paper's locks stay inflated")
	}
	if m.Owner() != nil {
		t.Fatal("owner after full unwind")
	}
}

func TestUnlockWithoutOwnership(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")

	if err := f.l.Unlock(a, o); err != ErrIllegalMonitorState {
		t.Fatalf("unlock of unlocked object: err = %v", err)
	}
	f.l.Lock(a, o)
	if err := f.l.Unlock(b, o); err != ErrIllegalMonitorState {
		t.Fatalf("unlock by non-owner: err = %v", err)
	}
	// State unperturbed.
	if ThinOwner(o.Header()) != a.Index() || ThinCount(o.Header()) != 0 {
		t.Fatal("failed unlock modified the lock word")
	}
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
}

func TestContentionInflates(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")

	f.l.Lock(a, o)
	acquired := make(chan struct{})
	go func() {
		f.l.Lock(b, o) // must spin, then inflate
		close(acquired)
	}()
	// Let B reach the spin loop.
	waitForStat(t, func() bool { return f.l.Stats().SpinRounds > 0 })
	select {
	case <-acquired:
		t.Fatal("B acquired while A held the lock")
	default:
	}
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("B never acquired after A released")
	}
	if !IsInflated(o.Header()) {
		t.Fatal("contention did not inflate the lock")
	}
	m := f.l.Monitor(o)
	if m.Owner() != b || m.Count() != 1 {
		t.Fatalf("fat owner=%v count=%d, want B with 1", m.Owner(), m.Count())
	}
	s := f.l.Stats()
	if s.InflationsContention != 1 {
		t.Errorf("InflationsContention = %d, want 1", s.InflationsContention)
	}
	if s.SpinAcquisitions != 1 {
		t.Errorf("SpinAcquisitions = %d, want 1", s.SpinAcquisitions)
	}
	if err := f.l.Unlock(b, o); err != nil {
		t.Fatal(err)
	}
	// Figure 2(c): the object stays inflated after unlock.
	if !IsInflated(o.Header()) {
		t.Fatal("object deflated on unlock")
	}
}

func TestInflatedLockStaysInflatedAndWorks(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")

	inflateByContention(t, f, a, b, o)
	if !IsInflated(o.Header()) {
		t.Fatal("contention did not inflate")
	}

	// Subsequent lock/unlock cycles use the fat lock.
	for i := 0; i < 5; i++ {
		f.l.Lock(a, o)
		f.l.Lock(a, o)
		if m := f.l.Monitor(o); m.Count() != 2 {
			t.Fatalf("fat count = %d, want 2", m.Count())
		}
		if err := f.l.Unlock(a, o); err != nil {
			t.Fatal(err)
		}
		if err := f.l.Unlock(a, o); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.l.Stats().FatLocks; got != 1 {
		t.Errorf("FatLocks = %d, want 1 (no re-inflation)", got)
	}
}

// inflateByContention forces o's lock fat: a holds it, b contends.
func inflateByContention(t *testing.T, f *fixture, a, b *threading.Thread, o *object.Object) {
	t.Helper()
	f.l.Lock(a, o)
	done := make(chan struct{})
	go func() {
		f.l.Lock(b, o)
		if err := f.l.Unlock(b, o); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	waitForStat(t, func() bool { return f.l.Stats().SpinRounds > 0 })
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	<-done
	if f.l.Stats().InflationsContention == 0 {
		t.Fatal("contention did not inflate")
	}
}

func TestMutualExclusionAllVariants(t *testing.T) {
	t.Parallel()
	variants := []Variant{
		VariantStandard, VariantInline, VariantFnCall,
		VariantMPSync, VariantKernelCAS, VariantUnlockCAS,
	}
	for _, v := range variants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			f := newFixture(t, Options{Variant: v})
			o := f.heap.New("X")
			const goroutines, iters = 6, 400
			var counter int64
			var inside int32
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				th := f.thread(t)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						f.l.Lock(th, o)
						if atomic.AddInt32(&inside, 1) != 1 {
							t.Error("two threads inside critical section")
						}
						counter++
						atomic.AddInt32(&inside, -1)
						if err := f.l.Unlock(th, o); err != nil {
							t.Error(err)
						}
					}
				}()
			}
			wg.Wait()
			if counter != goroutines*iters {
				t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
			}
		})
	}
}

func TestMutualExclusionWithCPUModels(t *testing.T) {
	t.Parallel()
	for _, cpu := range []arch.CPU{arch.PowerPCUP, arch.PowerPCMP, arch.POWER} {
		cpu := cpu
		t.Run(cpu.String(), func(t *testing.T) {
			t.Parallel()
			f := newFixture(t, Options{CPU: cpu})
			o := f.heap.New("X")
			const goroutines, iters = 4, 300
			var counter int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				th := f.thread(t)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						f.l.Lock(th, o)
						counter++
						if err := f.l.Unlock(th, o); err != nil {
							t.Error(err)
						}
					}
				}()
			}
			wg.Wait()
			if counter != goroutines*iters {
				t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
			}
		})
	}
}

func TestWaitInflatesThinLock(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")

	notified := make(chan bool, 1)
	go func() {
		f.l.Lock(a, o)
		f.l.Lock(a, o) // depth 2 so the saved count is interesting
		n, err := f.l.Wait(a, o, 0)
		if err != nil {
			t.Error(err)
		}
		if m := f.l.Monitor(o); m.Count() != 2 {
			t.Errorf("restored count = %d, want 2", m.Count())
		}
		notified <- n
		if err := f.l.Unlock(a, o); err != nil {
			t.Error(err)
		}
		if err := f.l.Unlock(a, o); err != nil {
			t.Error(err)
		}
	}()

	// Wait until A is in the wait set; the lock must now be inflated
	// and free.
	waitForStat(t, func() bool {
		return IsInflated(o.Header()) && f.l.Monitor(o).WaitSetLen() == 1
	})
	if s := f.l.Stats(); s.InflationsWait != 1 {
		t.Errorf("InflationsWait = %d, want 1", s.InflationsWait)
	}

	f.l.Lock(b, o)
	if err := f.l.Notify(b, o); err != nil {
		t.Fatal(err)
	}
	if err := f.l.Unlock(b, o); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-notified:
		if !n {
			t.Fatal("waiter reported timeout, want notified")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestWaitTimeoutViaAPI(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{})
	th := f.thread(t)
	o := f.heap.New("X")
	f.l.Lock(th, o)
	n, err := f.l.Wait(th, o, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if n {
		t.Fatal("notified = true on timeout")
	}
	if err := f.l.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
}

func TestWaitNotifyErrorsWithoutOwnership(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")

	if _, err := f.l.Wait(a, o, 0); err != ErrIllegalMonitorState {
		t.Errorf("wait unowned: err = %v", err)
	}
	if err := f.l.Notify(a, o); err != ErrIllegalMonitorState {
		t.Errorf("notify unowned: err = %v", err)
	}
	if err := f.l.NotifyAll(a, o); err != ErrIllegalMonitorState {
		t.Errorf("notifyAll unowned: err = %v", err)
	}

	f.l.Lock(a, o)
	if _, err := f.l.Wait(b, o, 0); err != ErrIllegalMonitorState {
		t.Errorf("wait by non-owner: err = %v", err)
	}
	if err := f.l.Notify(b, o); err != ErrIllegalMonitorState {
		t.Errorf("notify by non-owner: err = %v", err)
	}
	// Notify with no waiters on an owned thin lock is a no-op success.
	if err := f.l.Notify(a, o); err != nil {
		t.Errorf("notify on owned thin lock: err = %v", err)
	}
	if err := f.l.NotifyAll(a, o); err != nil {
		t.Errorf("notifyAll on owned thin lock: err = %v", err)
	}
	if IsInflated(o.Header()) {
		t.Error("waiterless notify inflated the lock")
	}
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
}

func TestHolderIndex(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")

	if f.l.HolderIndex(o) != 0 {
		t.Error("holder of unlocked object != 0")
	}
	f.l.Lock(a, o)
	if f.l.HolderIndex(o) != a.Index() {
		t.Error("thin holder mismatch")
	}
	inflateByContentionFromHeld(t, f, a, b, o)
	f.l.Lock(a, o)
	if f.l.HolderIndex(o) != a.Index() {
		t.Error("fat holder mismatch")
	}
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	if f.l.HolderIndex(o) != 0 {
		t.Error("holder of released fat lock != 0")
	}
}

// inflateByContentionFromHeld assumes a already holds o once, creates
// contention from b, and leaves o inflated and unlocked.
func inflateByContentionFromHeld(t *testing.T, f *fixture, a, b *threading.Thread, o *object.Object) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		f.l.Lock(b, o)
		if err := f.l.Unlock(b, o); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	waitForStat(t, func() bool { return f.l.Stats().SpinRounds > 0 })
	if err := f.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestPerInstanceIsolation(t *testing.T) {
	t.Parallel()
	// Two ThinLocks instances must not share monitor tables.
	f := newFixture(t, Options{})
	l2 := New(Options{})
	a, b := f.thread(t), f.thread(t)
	o1 := f.heap.New("X")
	o2 := f.heap.New("Y")
	inflateByContention(t, f, a, b, o1)
	if !IsInflated(o1.Header()) {
		t.Fatal("o1 not inflated")
	}
	// o2 inflated under l2 gets index 0 in l2's table; operations on it
	// through l2 must not touch f.l's monitor of the same index.
	l2.Lock(a, o2)
	done := make(chan struct{})
	go func() {
		l2.Lock(b, o2)
		if err := l2.Unlock(b, o2); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	waitForStat(t, func() bool { return l2.Stats().SpinRounds > 0 })
	if err := l2.Unlock(a, o2); err != nil {
		t.Fatal(err)
	}
	<-done
	if f.l.Stats().FatLocks != 1 || l2.Stats().FatLocks != 1 {
		t.Errorf("fat locks = %d/%d, want 1/1",
			f.l.Stats().FatLocks, l2.Stats().FatLocks)
	}
}

func TestNewDefaultAndInflatedAccessor(t *testing.T) {
	t.Parallel()
	l := NewDefault()
	if l.Variant() != VariantStandard {
		t.Error("NewDefault variant")
	}
	heap := object.NewHeap()
	o := heap.New("X")
	if l.Inflated(o) {
		t.Error("fresh object reported inflated")
	}
}

func TestNames(t *testing.T) {
	t.Parallel()
	if got := New(Options{}).Name(); got != "ThinLock" {
		t.Errorf("standard Name = %q", got)
	}
	if got := New(Options{Variant: VariantNOP}).Name(); got != "ThinLock/NOP" {
		t.Errorf("NOP Name = %q", got)
	}
	if New(Options{Variant: VariantInline}).Variant() != VariantInline {
		t.Error("Variant() mismatch")
	}
}

func TestNOPVariantDoesNothing(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{Variant: VariantNOP})
	th := f.thread(t)
	o := f.heap.New("X")
	f.l.Lock(th, o)
	if o.Header() != o.Misc() {
		t.Error("NOP lock modified the header")
	}
	if err := f.l.Unlock(th, o); err != nil {
		t.Error(err)
	}
}

func TestStatsSnapshot(t *testing.T) {
	t.Parallel()
	s := Stats{InflationsContention: 1, InflationsOverflow: 2, InflationsWait: 3}
	if s.Inflations() != 6 {
		t.Errorf("Inflations() = %d, want 6", s.Inflations())
	}
}

// waitForStat blocks until a stats condition raced by another goroutine
// holds, via the shared bounded-backoff helper.
func waitForStat(t *testing.T, cond func() bool) {
	t.Helper()
	testutil.Eventually(t, 5*time.Second, "stat condition", cond)
}
