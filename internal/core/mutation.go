package core

// Mutations are deliberately seeded bugs used to validate that the
// concurrent differential checker (internal/check) has teeth: a harness
// that cannot catch a known-planted protocol bug proves nothing when it
// passes on the real code. They are a test-only option — nothing in the
// repository enables a mutation outside internal/check tests and the
// `lockcheck -mutate` demonstration flag — and the zero value disables
// all of them.
//
// The mutations target the classic failure classes of lock-word
// protocols:
//
//   - OverflowOffByOne plants an off-by-one in the nested-count overflow
//     inflation of §2.3.3: the fat lock is seeded with one recursion
//     level too few, so the monitor is fully released one unlock early.
//     The thread's final unlock then reports ErrIllegalMonitorState, and
//     under contention a second thread can enter the critical section
//     while the first still believes it holds the lock — a mutual
//     exclusion violation.
//
//   - DropQueuedWake removes the owner-side contention-queue wakeup from
//     the unlock paths of the queued-inflation (Tasuki) extension,
//     breaking the Dekker handshake documented in queued.go. A contender
//     that parked on the flat-lock-contention queue is never woken: a
//     lost wakeup that leaves the schedule permanently stuck.
//
//   - DeflateEpochSkip breaks the compact-monitor grace period: a
//     deflated monitor's index goes straight to the free list
//     (Table.FreeSkippingGrace) and the fat-lock lookup dereferences
//     the header's index without pinning or re-reading (dwelling in the
//     window so the race is schedulable). A reader holding a stale
//     index can then resolve it to a different object's freshly
//     inflated monitor and enter the wrong critical section — the
//     use-after-free class of bug quiescence-based reclamation exists
//     to prevent. Surfaces as a mutual-exclusion violation or outcome
//     divergence.
//
//   - DeflateQueueIgnore retires a monitor without checking that its
//     entry queue is empty (Monitor.RetireDroppingQueue): a contender
//     already queued for the handoff is abandoned and sleeps forever —
//     the deflation analogue of a lost wakeup, surfacing as a stuck
//     schedule.
//
// (The paper's `sync` barrier in the MPSync unlock path cannot serve as
// a mutation here: arch.Sync models only the instruction's cost, because
// Go's sequentially consistent atomics already provide the ordering, so
// dropping it is unobservable by construction.)
type Mutations struct {
	// OverflowOffByOne seeds the overflow inflation with maxCount+1
	// locks instead of the correct maxCount+2.
	OverflowOffByOne bool

	// DropQueuedWake skips maybeWakeQueued after thin-lock releases,
	// losing the wakeup the queued-inflation protocol depends on.
	DropQueuedWake bool

	// DeflateEpochSkip recycles deflated monitor indices without the
	// grace period and looks indices up without the reader pin.
	DeflateEpochSkip bool

	// DeflateQueueIgnore deflates monitors without checking the entry
	// queue, stranding queued contenders.
	DeflateQueueIgnore bool
}

// Enabled reports whether any mutation is switched on.
func (m Mutations) Enabled() bool {
	return m.OverflowOffByOne || m.DropQueuedWake || m.DeflateEpochSkip || m.DeflateQueueIgnore
}
