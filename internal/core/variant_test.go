package core

import (
	"testing"

	"thinlock/internal/arch"
)

// TestVariantSemanticsMatrix drives the full single-threaded semantic
// surface (nesting, overflow inflation, illegal unlocks, wait-timeout)
// through every variant × CPU model combination, so every specialized
// lock/unlock code path is exercised.
func TestVariantSemanticsMatrix(t *testing.T) {
	t.Parallel()
	variants := []Variant{
		VariantStandard, VariantInline, VariantFnCall,
		VariantMPSync, VariantKernelCAS, VariantUnlockCAS,
	}
	cpus := []arch.CPU{arch.PowerPCUP, arch.PowerPCMP, arch.POWER}
	for _, v := range variants {
		for _, cpu := range cpus {
			v, cpu := v, cpu
			t.Run(v.String()+"/"+cpu.String(), func(t *testing.T) {
				t.Parallel()
				f := newFixture(t, Options{Variant: v, CPU: cpu})
				th := f.thread(t)
				a, b := f.heap.New("A"), f.heap.New("B")

				// Balanced nesting to depth 5 on a, interleaved with b.
				for i := 0; i < 5; i++ {
					f.l.Lock(th, a)
					f.l.Lock(th, b)
				}
				for i := 0; i < 5; i++ {
					if err := f.l.Unlock(th, b); err != nil {
						t.Fatal(err)
					}
					if err := f.l.Unlock(th, a); err != nil {
						t.Fatal(err)
					}
				}
				if !IsUnlocked(a.Header()) || !IsUnlocked(b.Header()) {
					t.Fatalf("headers not released: a=%#x b=%#x", a.Header(), b.Header())
				}

				// Illegal unlock must not perturb anything.
				if err := f.l.Unlock(th, a); err != ErrIllegalMonitorState {
					t.Fatalf("unlock of unlocked object: err = %v", err)
				}

				// Count overflow inflates and keeps working.
				o := f.heap.New("O")
				for i := 0; i < 257; i++ {
					f.l.Lock(th, o)
				}
				if !IsInflated(o.Header()) {
					t.Fatal("overflow did not inflate")
				}
				for i := 0; i < 257; i++ {
					if err := f.l.Unlock(th, o); err != nil {
						t.Fatal(err)
					}
				}
				// Fat lock/unlock cycle after inflation (fat fast and
				// slow unlock paths per variant).
				f.l.Lock(th, o)
				f.l.Lock(th, o)
				if err := f.l.Unlock(th, o); err != nil {
					t.Fatal(err)
				}
				if err := f.l.Unlock(th, o); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestNOPVariantIgnoresEverything pins the NOP contract across the full
// method surface.
func TestNOPVariantIgnoresEverything(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{Variant: VariantNOP})
	th := f.thread(t)
	o := f.heap.New("X")
	for i := 0; i < 300; i++ { // past any count limit: still no inflation
		f.l.Lock(th, o)
	}
	if o.Header() != o.Misc() {
		t.Fatal("NOP wrote the header")
	}
	if err := f.l.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
	if s := f.l.Stats(); s.Inflations() != 0 || s.FatLocks != 0 {
		t.Fatalf("NOP produced stats: %+v", s)
	}
}

// TestStandardVariantOnPOWERUsesKernelCAS checks that the dynamic machine
// test routes POWER through the kernel service (observable only through
// correct mutual exclusion; the path itself is exercised here
// single-threaded with a contention case in the CPU-model matrix test).
func TestStandardVariantOnPOWERUsesKernelCAS(t *testing.T) {
	t.Parallel()
	f := newFixture(t, Options{CPU: arch.POWER})
	th := f.thread(t)
	o := f.heap.New("X")
	f.l.Lock(th, o)
	if ThinOwner(o.Header()) != th.Index() {
		t.Fatal("kernel-CAS lock did not install owner")
	}
	if err := f.l.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
}

// TestWaitOnVariantLocks checks the wait/notify path under the MP and
// kernel variants (inflation by wait plus fat unlock with fences).
func TestWaitOnVariantLocks(t *testing.T) {
	t.Parallel()
	for _, v := range []Variant{VariantMPSync, VariantKernelCAS, VariantUnlockCAS} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			f := newFixture(t, Options{Variant: v})
			th := f.thread(t)
			o := f.heap.New("X")
			f.l.Lock(th, o)
			notified, err := f.l.Wait(th, o, 1)
			if err != nil {
				t.Fatal(err)
			}
			if notified {
				t.Fatal("notified with no notifier")
			}
			if !IsInflated(o.Header()) {
				t.Fatal("wait did not inflate")
			}
			if err := f.l.Unlock(th, o); err != nil {
				t.Fatal(err)
			}
		})
	}
}
