// Package analyzertest is a miniature of
// golang.org/x/tools/go/analysis/analysistest: it typechecks a package
// under an analyzer's testdata/src directory, runs the analyzer, and
// matches the diagnostics against `// want "regexp"` comments in the
// sources. Only the standard library is used; imports inside testdata
// resolve through the source importer, so testdata may import std
// packages like sync and sync/atomic.
package analyzertest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"thinlock/internal/analyzers"
)

// wantRE matches `// want "..."` (interpreted string) or a backquoted
// raw string, each holding a regexp, as analysistest does.
var wantRE = regexp.MustCompile("//\\s*want\\s+(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<pkg> relative to the caller's directory,
// runs the analyzers over it, and reports mismatches on t.
func Run(t *testing.T, testdata string, as []*analyzers.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read testdata package: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pattern, err := strconv.Unquote(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want string %s: %v", path, i+1, m[1], err)
			}
			re, err := regexp.Compile(pattern)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pattern, err)
			}
			wants = append(wants, &expectation{file: path, line: i + 1, re: re, raw: pattern})
		}
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tcfg := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	typed, err := tcfg.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", pkg, err)
	}

	diags, err := analyzers.RunAnalyzers(as, fset, files, typed, info)
	if err != nil {
		t.Fatal(err)
	}

	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
