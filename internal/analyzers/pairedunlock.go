package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PairedUnlock checks that every function balances its Lock/Unlock and
// RLock/RUnlock calls per receiver: a function body with more Lock
// calls on a receiver than Unlock calls (deferred ones included) leaks
// the lock on some path. This is a per-function count heuristic, not a
// path-sensitive proof — functions that intentionally return holding a
// lock document it with //lockvet:ignore.
//
// Unlock-without-Lock is NOT flagged: unlocking a caller-held lock is
// a legitimate shape (the runtime's monitor epilogue does exactly
// that).
var PairedUnlock = &Analyzer{
	Name:          "pairedunlock",
	Doc:           "flag functions that acquire a lock more often than they release it",
	SkipTestFiles: true,
	Run:           runPairedUnlock,
}

// lockPairs maps an acquire method to its release method.
var lockPairs = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

func runPairedUnlock(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockBalance(pass, fd)
		}
	}
	return nil
}

// recvKey names a lock receiver stably: by the types.Object of its
// root identifier plus the selector path, so `l.mu` in two statements
// is one receiver while shadowed variables stay distinct.
func recvKey(pass *Pass, e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if obj == nil {
			return "", false
		}
		return objKey(obj), true
	case *ast.SelectorExpr:
		base, ok := recvKey(pass, x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.ParenExpr:
		return recvKey(pass, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return recvKey(pass, x.X)
		}
	case *ast.CallExpr:
		// mu() or x.Locker(): a fresh value per call; treat each call
		// expression as its own receiver (balanced within the call
		// count heuristic by position-independent rendering).
		return types.ExprString(x), true
	}
	return "", false
}

func objKey(obj types.Object) string {
	return obj.Name() + "@" + obj.Parent().String()
}

type lockSite struct {
	pos     token.Pos
	acquire string // "Lock" or "RLock"
	display string // receiver as written, for the message
	count   int
}

func checkLockBalance(pass *Pass, fd *ast.FuncDecl) {
	type key struct{ recv, release string }
	acquires := map[key]*lockSite{}
	releases := map[key]int{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		name := sel.Sel.Name
		if release, isAcq := lockPairs[name]; isAcq {
			recv, ok := recvKey(pass, sel.X)
			if !ok {
				return true
			}
			k := key{recv, release}
			if acquires[k] == nil {
				acquires[k] = &lockSite{
					pos:     sel.Sel.Pos(),
					acquire: name,
					display: types.ExprString(sel.X),
				}
			}
			acquires[k].count++
			return true
		}
		for _, release := range lockPairs {
			if name == release {
				if recv, ok := recvKey(pass, sel.X); ok {
					releases[key{recv, release}]++
				}
			}
		}
		return true
	})
	for k, site := range acquires {
		if site.count > releases[k] {
			pass.Reportf(site.pos,
				"%s.%s called %d time(s) but %s only %d time(s) in %s; a path may leak the lock",
				site.display, site.acquire, site.count, k.release, releases[k], fd.Name.Name)
		}
	}
}
