package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockWord flags plain (non-atomic) reads and writes of variables and
// fields that are accessed through sync/atomic anywhere else in the
// package. A lock word read with a plain load can observe a torn or
// stale value; the thin-lock header is exactly such a word, and the
// paper's protocol is only sound if every access goes through the
// atomic helpers.
//
// Taking the address of such a field (`&o.header`) is allowed — that
// is how the atomic helpers are built — as is accessing it inside the
// sync/atomic call itself.
var LockWord = &Analyzer{
	Name:          "lockword",
	Doc:           "flag plain accesses to fields elsewhere accessed via sync/atomic",
	SkipTestFiles: true,
	Run:           runLockWord,
}

// atomicFuncs are the sync/atomic package functions whose first
// argument is the address of the word being operated on.
func isAtomicAddrFunc(name string) bool {
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func runLockWord(pass *Pass) error {
	// Pass 1: every object whose address is passed to a sync/atomic
	// function, with one representative position for the message.
	atomicObjs := map[types.Object]token.Pos{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isAtomicAddrFunc(sel.Sel.Name) {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
			if !ok || pn.Imported().Path() != "sync/atomic" {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if obj := addressedObject(pass, addr.X); obj != nil {
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = call.Pos()
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: flag uses of those objects that are neither under & nor
	// part of the atomic calls found above.
	for _, f := range pass.Files {
		addrTaken := map[ast.Expr]bool{}
		selIdent := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					addrTaken[x.X] = true
				}
			case *ast.SelectorExpr:
				// The Sel ident is handled via the SelectorExpr case
				// below; don't double-visit it as a bare Ident.
				selIdent[x.Sel] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			var obj types.Object
			var pos token.Pos
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if addrTaken[ast.Expr(e)] {
					return true
				}
				if sel, ok := pass.TypesInfo.Selections[e]; ok {
					obj = sel.Obj()
					pos = e.Sel.Pos()
				}
			case *ast.Ident:
				if addrTaken[ast.Expr(e)] || selIdent[e] {
					return true
				}
				obj = pass.TypesInfo.Uses[e]
				pos = e.Pos()
			default:
				return true
			}
			if obj == nil {
				return true
			}
			if first, hot := atomicObjs[obj]; hot {
				pass.Reportf(pos,
					"plain access to %s, which is accessed via sync/atomic at %s; a plain load or store of a lock word can race",
					obj.Name(), pass.Fset.Position(first))
			}
			return true
		})
	}
	return nil
}

// addressedObject resolves &expr to the field or variable object being
// addressed, or nil when it is not a simple var/field.
func addressedObject(pass *Pass, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[x]; ok {
			return sel.Obj()
		}
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[x]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				return obj
			}
		}
	case *ast.IndexExpr:
		// &arr[i]: attribute the array/slice variable itself.
		return addressedObject(pass, x.X)
	}
	return nil
}
