package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// reportAll is a test analyzer that flags every return statement.
var reportAll = &Analyzer{
	Name: "reportall",
	Doc:  "test analyzer: flag every return",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					p.Reportf(r.Pos(), "return here")
				}
				return true
			})
		}
		return nil
	},
}

const ignoreSrc = `package p

func a() int {
	return 1 //lockvet:ignore demo same-line suppression
}

func b() int {
	//lockvet:ignore demo previous-line suppression
	return 2
}

func c() int {
	return 3
}

//lockvet:ignore
func d() {}
`

func TestIgnoreDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", ignoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers([]*Analyzer{reportAll}, fset, []*ast.File{f}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+":"+d.Message)
	}
	// a and b suppressed; c's return survives; the bare ignore above d
	// is itself a finding.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics %v, want 2", len(diags), got)
	}
	if diags[0].Message != "return here" || diags[0].Pos.Line != 13 {
		t.Errorf("first diagnostic = %+v, want the return in c at line 13", diags[0])
	}
	if diags[1].Analyzer != "ignore" || !strings.Contains(diags[1].Message, "without a reason") {
		t.Errorf("second diagnostic = %+v, want bare-ignore finding", diags[1])
	}
}

func TestSkipTestFilesFiltering(t *testing.T) {
	fset := token.NewFileSet()
	main, err := parser.ParseFile(fset, "p.go", "package p\nfunc a() int { return 1 }\n", parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tst, err := parser.ParseFile(fset, "p_test.go", "package p\nfunc b() int { return 2 }\n", parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	skipper := &Analyzer{Name: "skipper", SkipTestFiles: true, Run: reportAll.Run}
	diags, err := RunAnalyzers([]*Analyzer{skipper}, fset, []*ast.File{main, tst}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Pos.Filename != "p.go" {
		t.Fatalf("got %v, want exactly the p.go finding", diags)
	}
}
