package analyzers_test

import (
	"testing"

	"thinlock/internal/analyzers"
	"thinlock/internal/analyzers/analyzertest"
)

func TestLockWordGolden(t *testing.T) {
	t.Parallel()
	analyzertest.Run(t, "testdata", []*analyzers.Analyzer{analyzers.LockWord}, "lockword")
}

func TestPairedUnlockGolden(t *testing.T) {
	t.Parallel()
	analyzertest.Run(t, "testdata", []*analyzers.Analyzer{analyzers.PairedUnlock}, "pairedunlock")
}

func TestHookAllocGolden(t *testing.T) {
	t.Parallel()
	analyzertest.Run(t, "testdata", []*analyzers.Analyzer{analyzers.HookAlloc}, "hookalloc")
}
