package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// HookAlloc forbids heap-allocating constructs in functions marked
// //lockvet:noalloc. The marked functions are the ones lock fast paths
// call while spinning or while holding a contended word — telemetry
// counters, site hashing, lockdep hooks — where an allocation can
// trigger GC (and in a real VM, GC can itself need the very lock being
// acquired).
//
// Flagged constructs: make, new, append, composite literals, closures
// (FuncLit), go statements, and []byte/string conversions. Escape
// analysis may well keep some of these on the stack; the directive
// asks for the conservative guarantee.
//
// Unlike the other analyzers this one includes _test.go files, so a
// benchmark helper marked noalloc is held to the same bar.
var HookAlloc = &Analyzer{
	Name: "hookalloc",
	Doc:  "forbid allocation in //lockvet:noalloc functions",
	Run:  runHookAlloc,
}

const noallocDirective = "lockvet:noalloc"

// isNoalloc reports whether the function's doc comment carries the
// directive.
func isNoalloc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == noallocDirective || strings.HasPrefix(text, noallocDirective+" ") {
			return true
		}
	}
	return false
}

func runHookAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isNoalloc(fd) {
				continue
			}
			checkNoalloc(pass, fd)
		}
	}
	return nil
}

func checkNoalloc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			pass.Reportf(x.Pos(), "composite literal allocates in //lockvet:noalloc function %s", name)
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "closure allocates in //lockvet:noalloc function %s", name)
			return false // the closure body runs later; don't double-report
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "go statement allocates in //lockvet:noalloc function %s", name)
		case *ast.CallExpr:
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				switch fun.Name {
				case "make", "new", "append":
					if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
						pass.Reportf(x.Pos(), "%s allocates in //lockvet:noalloc function %s", fun.Name, name)
					}
				}
			}
			if conv, kind := allocatingConversion(pass, x); conv {
				pass.Reportf(x.Pos(), "%s conversion allocates in //lockvet:noalloc function %s", kind, name)
			}
		}
		return true
	})
}

// allocatingConversion detects string<->[]byte/[]rune conversions,
// which copy.
func allocatingConversion(pass *Pass, call *ast.CallExpr) (bool, string) {
	if len(call.Args) != 1 {
		return false, ""
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false, ""
	}
	dst := tv.Type.Underlying()
	src := pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil {
		return false, ""
	}
	srcU := src.Underlying()
	isString := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isSlice := func(t types.Type) bool {
		_, ok := t.(*types.Slice)
		return ok
	}
	if isString(dst) && isSlice(srcU) {
		return true, "[]byte-to-string"
	}
	if isSlice(dst) && isString(srcU) {
		return true, "string-to-slice"
	}
	return false, ""
}
