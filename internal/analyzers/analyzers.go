// Package analyzers is a dependency-free miniature of the
// golang.org/x/tools go/analysis vocabulary: enough structure to write
// typed Go source checkers, run them under `go vet -vettool` (see
// unitchecker.go), and test them against `// want` goldens — with
// nothing beyond the standard library.
//
// Suppression: a finding is silenced by `//lockvet:ignore <reason>` on
// the same line or the line above. The reason is mandatory; a bare
// ignore is itself reported, so every suppression documents why.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	// SkipTestFiles drops *_test.go files from the pass before Run.
	SkipTestFiles bool
	Run           func(*Pass) error
}

// Pass carries one package's syntax and types through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s", d.Pos, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ignoreDirective is the suppression marker.
const ignoreDirective = "lockvet:ignore"

// ignoreSet maps file -> line -> reason for every //lockvet:ignore.
type ignoreSet map[string]map[int]string

// collectIgnores scans comments; bare directives (no reason) are
// reported immediately as findings of the pseudo-analyzer "ignore".
func collectIgnores(fset *token.FileSet, files []*ast.File) (ignoreSet, []Diagnostic) {
	ig := ignoreSet{}
	var bare []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				pos := fset.Position(c.Pos())
				if reason == "" {
					bare = append(bare, Diagnostic{
						Pos:      pos,
						Message:  "lockvet:ignore without a reason; write //lockvet:ignore <why>",
						Analyzer: "ignore",
					})
					continue
				}
				if ig[pos.Filename] == nil {
					ig[pos.Filename] = map[int]string{}
				}
				ig[pos.Filename][pos.Line] = reason
			}
		}
	}
	return ig, bare
}

// suppressed reports whether d has an ignore on its line or the line
// above it.
func (ig ignoreSet) suppressed(d Diagnostic) bool {
	lines := ig[d.Pos.Filename]
	if lines == nil {
		return false
	}
	_, same := lines[d.Pos.Line]
	_, above := lines[d.Pos.Line-1]
	return same || above
}

// RunAnalyzers executes every analyzer over one typed package and
// returns the surviving diagnostics, sorted by position. Bare ignore
// directives surface as findings regardless of which analyzers run.
func RunAnalyzers(as []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	ig, out := collectIgnores(fset, files)
	for _, a := range as {
		pfiles := files
		if a.SkipTestFiles {
			pfiles = nil
			for _, f := range files {
				name := fset.Position(f.Pos()).Filename
				if strings.HasSuffix(name, "_test.go") {
					continue
				}
				pfiles = append(pfiles, f)
			}
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pfiles,
			Pkg:       pkg,
			TypesInfo: info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if !ig.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// All returns the full lockvet analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{LockWord, PairedUnlock, HookAlloc}
}
