package analyzers

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// This file implements the `go vet -vettool` protocol with no
// dependency on golang.org/x/tools: cmd/go invokes the tool once with
// `-flags` (expecting a JSON description of its flags), may invoke it
// with `-V=full` (expecting a version line it can hash into the build
// cache key), and then runs `tool [flags] <objdir>/vet.cfg` once per
// package, where vet.cfg is the JSON below. Findings go to stderr as
// "file:line:col: message" and exit status 2; a clean package exits 0
// after writing the (empty, facts-free) VetxOutput file.

// vetConfig mirrors the fields cmd/go marshals into vet.cfg (see
// cmd/go/internal/work.vetConfig). Unknown fields are ignored.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath  string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// VetMain is the entry point cmd/lockvet delegates to when invoked by
// `go vet`. It never returns.
func VetMain(as []*Analyzer, args []string) {
	os.Exit(vetMain(as, args, os.Stdout, os.Stderr))
}

func vetMain(as []*Analyzer, args []string, stdout, stderr io.Writer) int {
	var cfgPath string
	for _, arg := range args {
		switch {
		case arg == "-flags", arg == "--flags":
			// All our flags are implicit; report an empty set so
			// cmd/go accepts any standard vet flag combination.
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasPrefix(arg, "-V"), strings.HasPrefix(arg, "--V"):
			fmt.Fprintf(stdout, "lockvet version %s\n", buildID())
			return 0
		case strings.HasSuffix(arg, ".cfg"):
			cfgPath = arg
		default:
			// Ignore vet flags like -unsafeptr=false: the suite always
			// runs every lockvet analyzer.
		}
	}
	if cfgPath == "" {
		fmt.Fprintln(stderr, "lockvet: no vet.cfg argument; run via `go vet -vettool=$(pwd)/bin/lockvet ./...`")
		return 1
	}
	diags, err := runConfig(as, cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "lockvet: %v\n", err)
		return 1
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
		}
		return 2
	}
	return 0
}

// buildID returns a stable fingerprint of the running binary, so the
// go command's cache invalidates when lockvet itself changes.
func buildID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:12]
}

func runConfig(as []*Analyzer, cfgPath string) ([]Diagnostic, error) {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("parse %s: %w", cfgPath, err)
	}
	// Facts output must exist even though lockvet computes none:
	// cmd/go caches and feeds it back via PackageVetx.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	pkg, info, err := typecheck(&cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}
	return RunAnalyzers(as, fset, files, pkg, info)
}

// typecheck types the package using the compiler's export data, the
// way cmd/vet does: imports resolve through ImportMap to the export
// files cmd/go listed in PackageFile.
func typecheck(cfg *vetConfig, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	goVersion := cfg.GoVersion // "go1.22" form, or "" in hand-written configs
	if !strings.HasPrefix(goVersion, "go") {
		goVersion = ""
	}
	tcfg := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: goVersion,
		Error:     func(error) {}, // collect via returned err; keep going
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}
