// Package pairedunlock is golden testdata for the pairedunlock
// analyzer.
package pairedunlock

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
}

func ok(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
}

func okDirect(s *S) {
	s.mu.Lock()
	work()
	s.mu.Unlock()
}

func work() {}

func leak(s *S) {
	s.mu.Lock() // want `a path may leak the lock`
	work()
}

func rleak(s *S) {
	s.rw.RLock() // want `a path may leak the lock`
	work()
}

func rok(s *S) {
	s.rw.RLock()
	defer s.rw.RUnlock()
}

// wrongPair releases a read lock with the write unlock; the RLock is
// left unpaired.
func wrongPair(s *S) {
	s.rw.RLock() // want `a path may leak the lock`
	s.rw.Unlock()
}

// unlockOnly releases a caller-held lock: legitimate, not flagged.
func unlockOnly(s *S) {
	s.mu.Unlock()
}

// heldOnReturn hands the locked mutex to its caller by contract.
func heldOnReturn(s *S) {
	//lockvet:ignore returns holding the lock; caller must call unlockOnly
	s.mu.Lock()
}

// twoMutexes must be tracked per receiver, not pooled.
func twoMutexes(a, b *S) {
	a.mu.Lock()
	b.mu.Lock() // want `a path may leak the lock`
	a.mu.Unlock()
}
