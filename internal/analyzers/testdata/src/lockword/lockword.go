// Package lockword is golden testdata for the lockword analyzer.
package lockword

import "sync/atomic"

// Object mirrors the runtime's lock-word layout: header is only ever
// touched through sync/atomic.
type Object struct {
	header uint32
	id     uint64
}

func (o *Object) Header() uint32 { return atomic.LoadUint32(&o.header) }

func (o *Object) CASHeader(old, new uint32) bool {
	return atomic.CompareAndSwapUint32(&o.header, old, new)
}

func (o *Object) Racy() uint32 {
	return o.header // want `plain access to header`
}

func (o *Object) RacyWrite(w uint32) {
	o.header = w // want `plain access to header`
}

// Addr takes the address without dereferencing: allowed, this is how
// atomic helpers are plumbed.
func (o *Object) Addr() *uint32 { return &o.header }

// ID reads a field nobody touches atomically: fine.
func (o *Object) ID() uint64 { return o.id }

// fresh writes the header plainly before publication; the ignore
// documents why that is safe.
func fresh(w uint32) *Object {
	o := new(Object)
	//lockvet:ignore not yet published to other goroutines
	o.header = w
	return o
}

var word uint32

func bump() { atomic.AddUint32(&word, 1) }

func peek() uint32 {
	return word // want `plain access to word`
}
