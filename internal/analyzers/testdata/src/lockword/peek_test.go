package lockword

// lockword skips _test.go files: a test peeking at the raw word under
// a stopped world is not a production race.
func testOnlyPeek(o *Object) uint32 {
	return o.header
}
