// Package hookalloc is golden testdata for the hookalloc analyzer.
package hookalloc

type pair struct{ a, b int }

// Inc is the shape the directive exists for: a counter bump with no
// allocation.
//
//lockvet:noalloc
func Inc(p *uint64) {
	*p++
}

//lockvet:noalloc
func makeAndAppend() []int {
	s := make([]int, 4) // want `make allocates`
	s = append(s, 1)    // want `append allocates`
	return s
}

//lockvet:noalloc
func lit() *pair {
	return &pair{} // want `composite literal allocates`
}

//lockvet:noalloc
func nw() *pair {
	return new(pair) // want `new allocates`
}

//lockvet:noalloc
func clo() func() {
	return func() {} // want `closure allocates`
}

//lockvet:noalloc
func spawn() {
	go work() // want `go statement allocates`
}

func work() {}

//lockvet:noalloc
func conv(b []byte) string {
	return string(b) // want `\[\]byte-to-string conversion allocates`
}

//lockvet:noalloc
func conv2(s string) []byte {
	return []byte(s) // want `string-to-slice conversion allocates`
}

// free is unmarked: allocation is fine here.
func free() []int {
	return make([]int, 8)
}

// justified documents why its single allocation is acceptable.
//
//lockvet:noalloc
func justified() *pair {
	//lockvet:ignore only reached on the cold panic path
	return &pair{}
}
