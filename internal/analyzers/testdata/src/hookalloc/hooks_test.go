package hookalloc

// hookalloc does NOT skip _test.go files: a noalloc helper used from
// benchmarks is held to the same bar.
//
//lockvet:noalloc
func benchHelper() []int {
	return make([]int, 1) // want `make allocates`
}
