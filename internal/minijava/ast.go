package minijava

// The abstract syntax tree. Nodes carry the source position of their
// introducing token for error reporting.

// Program is a parsed compilation unit.
type Program struct {
	Classes []*ClassDecl
	Funcs   []*FuncDecl
}

// ClassDecl declares a class with integer fields and methods.
type ClassDecl struct {
	Name    string
	Fields  []string
	Methods []*MethodDecl
	Line    int
	Col     int
}

// Param is a parameter declaration; Class is "" for int parameters.
type Param struct {
	Name  string
	Class string
	Line  int
	Col   int
}

// MethodDecl declares a method.
type MethodDecl struct {
	Name   string
	Sync   bool
	Params []Param
	Body   *Block
	Line   int
	Col    int
}

// FuncDecl declares a top-level function (static, no receiver).
type FuncDecl struct {
	Name   string
	Params []Param
	Body   *Block
	Line   int
	Col    int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Block is a brace-delimited statement list with its own scope.
type Block struct {
	Stmts []Stmt
}

// VarStmt declares and initializes a local variable.
type VarStmt struct {
	Name string
	Init Expr
	Line int
	Col  int
}

// AssignStmt assigns to a local variable or a field of `this`/an object.
type AssignStmt struct {
	Target Expr // IdentExpr or FieldExpr
	Value  Expr
	Line   int
	Col    int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
}

// ReturnStmt returns an integer value.
type ReturnStmt struct {
	Value Expr
	Line  int
	Col   int
}

// ExprStmt evaluates an expression for effect (a call).
type ExprStmt struct {
	X Expr
}

// SyncStmt is `synchronized (expr) block`.
type SyncStmt struct {
	Lock Expr
	Body *Block
	Line int
	Col  int
}

// ThrowStmt is `throw expr;` — the thrown value is an int code.
type ThrowStmt struct {
	Value Expr
	Line  int
	Col   int
}

// TryStmt is `try block catch (name) block`; the catch binds the thrown
// value to an int variable.
type TryStmt struct {
	Body  *Block
	Name  string
	Catch *Block
	Line  int
	Col   int
}

func (*Block) stmtNode()      {}
func (*VarStmt) stmtNode()    {}
func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}
func (*SyncStmt) stmtNode()   {}
func (*ThrowStmt) stmtNode()  {}
func (*TryStmt) stmtNode()    {}

// Expr is an expression node.
type Expr interface {
	exprNode()
	pos() (int, int)
}

// NumExpr is an integer literal.
type NumExpr struct {
	Value int64
	Line  int
	Col   int
}

// IdentExpr names a local variable or parameter.
type IdentExpr struct {
	Name string
	Line int
	Col  int
}

// ThisExpr is the receiver inside a method.
type ThisExpr struct {
	Line int
	Col  int
}

// NewExpr instantiates a class.
type NewExpr struct {
	Class string
	Line  int
	Col   int
}

// FieldExpr reads obj.field.
type FieldExpr struct {
	Obj   Expr
	Field string
	Line  int
	Col   int
}

// CallExpr invokes obj.method(args...) or a top-level func(args...).
type CallExpr struct {
	Obj    Expr // nil for top-level function calls
	Method string
	Args   []Expr
	Line   int
	Col    int
}

// BinExpr is a binary operation; Op is the operator token kind.
type BinExpr struct {
	Op   tokKind
	L, R Expr
	Line int
	Col  int
}

func (*NumExpr) exprNode()   {}
func (*IdentExpr) exprNode() {}
func (*ThisExpr) exprNode()  {}
func (*NewExpr) exprNode()   {}
func (*FieldExpr) exprNode() {}
func (*CallExpr) exprNode()  {}
func (*BinExpr) exprNode()   {}

func (e *NumExpr) pos() (int, int)   { return e.Line, e.Col }
func (e *IdentExpr) pos() (int, int) { return e.Line, e.Col }
func (e *ThisExpr) pos() (int, int)  { return e.Line, e.Col }
func (e *NewExpr) pos() (int, int)   { return e.Line, e.Col }
func (e *FieldExpr) pos() (int, int) { return e.Line, e.Col }
func (e *CallExpr) pos() (int, int)  { return e.Line, e.Col }
func (e *BinExpr) pos() (int, int)   { return e.Line, e.Col }
