package minijava

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"thinlock/internal/core"
	"thinlock/internal/object"
	"thinlock/internal/threading"
	"thinlock/internal/vm"
)

// TestCompileTestdataPrograms compiles every testdata/programs/*.mj
// program, asserts the structured-locking verifier accepts it (the
// synchronized-block handler pattern included), checks monitor facts
// are collectable for every method, and runs main against the
// `// expect: N` header.
func TestCompileTestdataPrograms(t *testing.T) {
	t.Parallel()
	files, err := filepath.Glob(filepath.Join("testdata", "programs", "*.mj"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata programs found")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			t.Parallel()
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			first := strings.SplitN(string(src), "\n", 2)[0]
			want, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(first, "// expect:")), 10, 64)
			if err != nil {
				t.Fatalf("bad `// expect: N` header %q: %v", first, err)
			}
			prog, err := Compile(string(src))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			// vm.New runs the structured-locking verifier over every
			// method; a rejection here is the failure this test guards.
			machine, err := vm.New(prog, core.NewDefault(), object.NewHeap())
			if err != nil {
				t.Fatalf("structured-locking verifier rejected compiled program: %v", err)
			}
			for _, m := range prog.Methods {
				if _, err := vm.CollectMonitorFacts(prog, m); err != nil {
					t.Fatalf("CollectMonitorFacts(%s): %v", m.QualifiedName(), err)
				}
			}
			th, err := threading.NewRegistry().Attach("main")
			if err != nil {
				t.Fatal(err)
			}
			res, err := machine.Run(th, "main")
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.I != want {
				t.Fatalf("main() = %d, want %d", res.I, want)
			}
		})
	}
}

// TestCompileFuzzSeeds feeds every checked-in FuzzCompile seed through
// the compiler: whatever the compiler accepts, the verifier (with the
// structured-locking layer on) must accept too.
func TestCompileFuzzSeeds(t *testing.T) {
	t.Parallel()
	files, err := filepath.Glob(filepath.Join("testdata", "fuzz", "FuzzCompile", "*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		// Go fuzz corpus format: a version line, then string("...").
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "string(") || !strings.HasSuffix(line, ")") {
				continue
			}
			src, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "string("), ")"))
			if err != nil {
				t.Fatalf("%s: unquote: %v", file, err)
			}
			prog, err := Compile(src)
			if err != nil {
				continue // malformed seeds are expected
			}
			if _, err := vm.New(prog, core.NewDefault(), object.NewHeap()); err != nil {
				t.Errorf("%s: compiler accepted but verifier rejected: %v", filepath.Base(file), err)
			}
		}
	}
}
