package minijava

import (
	"strings"
	"sync"
	"testing"

	"thinlock/internal/core"
	"thinlock/internal/hotlocks"
	"thinlock/internal/lockapi"
	"thinlock/internal/monitorcache"
	"thinlock/internal/object"
	"thinlock/internal/threading"
	"thinlock/internal/vm"
)

// run compiles src and executes fn("main") under the given locker.
func run(t *testing.T, src string, l lockapi.Locker) int64 {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	machine, err := vm.New(prog, l, object.NewHeap())
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	reg := threading.NewRegistry()
	th, err := reg.Attach("main")
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Run(th, "main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.I
}

func runThin(t *testing.T, src string) int64 {
	t.Helper()
	return run(t, src, core.NewDefault())
}

func TestArithmeticAndPrecedence(t *testing.T) {
	t.Parallel()
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 - 2 - 3", 5},
		{"-4 + 10", 6},
		{"2 * 3 * 4", 24},
		{"7 - 2 * 3", 1},
	}
	for _, tc := range cases {
		src := "func main() { return " + tc.expr + "; }"
		if got := runThin(t, src); got != tc.want {
			t.Errorf("%s = %d, want %d", tc.expr, got, tc.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	t.Parallel()
	cases := []struct {
		expr string
		want int64
	}{
		{"1 < 2", 1}, {"2 < 1", 0}, {"1 < 1", 0},
		{"1 <= 1", 1}, {"2 <= 1", 0},
		{"2 > 1", 1}, {"1 > 2", 0},
		{"1 >= 1", 1}, {"1 >= 2", 0},
		{"3 == 3", 1}, {"3 == 4", 0},
		{"3 != 4", 1}, {"3 != 3", 0},
	}
	for _, tc := range cases {
		src := "func main() { return " + tc.expr + "; }"
		if got := runThin(t, src); got != tc.want {
			t.Errorf("%s = %d, want %d", tc.expr, got, tc.want)
		}
	}
}

func TestVariablesAndWhile(t *testing.T) {
	t.Parallel()
	src := `
func main() {
    var sum = 0;
    var i = 1;
    while (i <= 10) {
        sum = sum + i;
        i = i + 1;
    }
    return sum;
}`
	if got := runThin(t, src); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestIfElse(t *testing.T) {
	t.Parallel()
	src := `
func classify(n) {
    if (n < 0) { return -1; }
    if (n == 0) { return 0; } else { return 1; }
}
func main() {
    return classify(-5) * 100 + classify(0) * 10 + classify(9);
}`
	if got := runThin(t, src); got != -99 {
		t.Fatalf("got %d, want -99", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	t.Parallel()
	src := `
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() { return fib(15); }`
	if got := runThin(t, src); got != 610 {
		t.Fatalf("fib(15) = %d, want 610", got)
	}
}

func TestClassesFieldsAndMethods(t *testing.T) {
	t.Parallel()
	src := `
class Point {
    field x;
    field y;
    method setX(v) { this.x = v; return v; }
    method setY(v) { this.y = v; return v; }
    method manhattan() { return this.x + this.y; }
}
func main() {
    var p = new Point;
    p.setX(3);
    p.setY(4);
    return p.manhattan();
}`
	if got := runThin(t, src); got != 7 {
		t.Fatalf("manhattan = %d, want 7", got)
	}
}

func TestSynchronizedMethodLocksReceiver(t *testing.T) {
	t.Parallel()
	src := `
class Counter {
    field value;
    sync method add(n) { this.value = this.value + n; return this.value; }
}
func main() {
    var c = new Counter;
    var i = 0;
    while (i < 100) { c.add(2); i = i + 1; }
    return c.add(0);
}`
	l := core.NewDefault()
	if got := run(t, src, l); got != 200 {
		t.Fatalf("counter = %d, want 200", got)
	}
	if s := l.Stats(); s.Inflations() != 0 {
		t.Errorf("single-threaded sync methods inflated %d locks", s.Inflations())
	}
}

func TestSynchronizedStatement(t *testing.T) {
	t.Parallel()
	src := `
class Box { field v; }
func main() {
    var b = new Box;
    var total = 0;
    var i = 0;
    while (i < 50) {
        synchronized (b) {
            b.v = b.v + 1;
            synchronized (b) {   // nested lock on the same object
                total = total + b.v;
            }
        }
        i = i + 1;
    }
    return total;
}`
	// total = 1+2+...+50 = 1275.
	if got := runThin(t, src); got != 1275 {
		t.Fatalf("total = %d, want 1275", got)
	}
}

func TestObjectsAsLocalsAndArguments(t *testing.T) {
	t.Parallel()
	src := `
class Cell {
    field v;
    method get() { return this.v; }
    sync method set(x) { this.v = x; return x; }
}
func main() {
    var a = new Cell;
    var b = new Cell;
    a.set(10);
    b.set(20);
    var c = a;        // object assignment
    c.set(11);
    return a.get() + b.get();
}`
	if got := runThin(t, src); got != 31 {
		t.Fatalf("got %d, want 31", got)
	}
}

func TestCompiledProgramAgreesAcrossLockers(t *testing.T) {
	t.Parallel()
	src := `
class Acc {
    field total;
    sync method bump(n) { this.total = this.total + n; return this.total; }
}
func main() {
    var a = new Acc;
    var i = 0;
    while (i < 200) {
        synchronized (a) { a.bump(i); }
        i = i + 1;
    }
    return a.bump(0);
}`
	want := run(t, src, core.NewDefault())
	if got := run(t, src, monitorcache.NewDefault()); got != want {
		t.Errorf("JDK111 result %d, want %d", got, want)
	}
	if got := run(t, src, hotlocks.NewDefault()); got != want {
		t.Errorf("IBM112 result %d, want %d", got, want)
	}
	if want != 19900 {
		t.Errorf("sum = %d, want 19900", want)
	}
}

// TestCompiledContention runs a compiled synchronized method from many
// goroutines: the full pipeline (source -> bytecode -> interpreter ->
// thin locks) must preserve mutual exclusion.
func TestCompiledContention(t *testing.T) {
	t.Parallel()
	src := `
class Counter {
    field value;
    sync method inc() { this.value = this.value + 1; return this.value; }
    method get() { return this.value; }
}
func hammer(c: Counter, n) {
    var i = 0;
    while (i < n) { c.inc(); i = i + 1; }
    return 0;
}`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	l := core.NewDefault()
	machine, err := vm.New(prog, l, object.NewHeap())
	if err != nil {
		t.Fatal(err)
	}
	counter, err := machine.NewInstance("Counter")
	if err != nil {
		t.Fatal(err)
	}
	reg := threading.NewRegistry()
	const goroutines, iters = 4, 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th, err := reg.Attach("w")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(th *threading.Thread) {
			defer wg.Done()
			if _, err := machine.Run(th, "hammer",
				vm.RefValue(counter), vm.IntValue(iters)); err != nil {
				t.Error(err)
			}
		}(th)
	}
	wg.Wait()
	main, _ := reg.Attach("main")
	res, err := machine.Run(main, "Counter.get", vm.RefValue(counter))
	if err != nil {
		t.Fatal(err)
	}
	if res.I != goroutines*iters {
		t.Fatalf("counter = %d, want %d", res.I, goroutines*iters)
	}
}

func TestComments(t *testing.T) {
	t.Parallel()
	src := `
// leading comment
func main() {
    var x = 1; // trailing comment
    // whole-line comment
    return x + 1;
}`
	if got := runThin(t, src); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
}

func TestImplicitReturnZero(t *testing.T) {
	t.Parallel()
	if got := runThin(t, "func main() { var x = 5; x = x + 1; }"); got != 0 {
		t.Fatalf("implicit return = %d, want 0", got)
	}
}

func TestCompileErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undefined variable", "func main() { return y; }", "undefined variable"},
		{"unknown class", "func main() { var x = new Ghost; return 0; }", "unknown class"},
		{"unknown method", "class C {} func main() { var c = new C; return c.m(); }", "no method"},
		{"unknown field", "class C {} func main() { var c = new C; return c.f; }", "no field"},
		{"unknown function", "func main() { return nope(); }", "unknown function"},
		{"arity", "func f(a, b) { return a + b; } func main() { return f(1); }", "takes 2 argument"},
		{"dup class", "class C {} class C {} func main() { return 0; }", "duplicate class"},
		{"dup method", "class C { method m() { return 0; } method m() { return 0; } } func main() { return 0; }", "duplicate method"},
		{"dup field", "class C { field f; field f; } func main() { return 0; }", "duplicate field"},
		{"dup func", "func f() { return 0; } func f() { return 0; } func main() { return 0; }", "duplicate function"},
		{"dup var", "func main() { var x = 1; var x = 2; return x; }", "duplicate variable"},
		{"this outside method", "func main() { return this.x; }", "'this' outside"},
		{"sync on int", "func main() { synchronized (1) { } return 0; }", "needs an object"},
		{"return object", "class C {} func main() { return new C; }", "return int"},
		{"assign type mismatch", "class C {} func main() { var x = 1; x = new C; return 0; }", "cannot assign"},
		{"int condition", "class C {} func main() { if (new C) { } return 0; }", "condition must be int"},
		{"field of int", "func main() { var x = 1; return x.f; }", "no field"},
		{"method of int", "func main() { var x = 1; return x.m(); }", "no method"},
		{"object arith", "class C {} func main() { return 1 + new C; }", "int operands"},
		{"object argument", "class C {} func f(a) { return a; } func main() { return f(new C); }", "must be int"},
		{"typed param mismatch", "class C {} class D {} func f(a: C) { return 0; } func main() { return f(new D); }", "must be C"},
		{"unknown param class", "func f(a: Ghost) { return 0; } func main() { return f(0); }", "unknown class"},
		{"throw object", "class C {} func main() { throw new C; return 0; }", "int exception code"},
		{"assign to literal", "func main() { 1 = 2; return 0; }", "assignment"},
		{"parse: missing semi", "func main() { return 0 }", "expected ';'"},
		{"parse: missing brace", "func main() { return 0;", "unterminated block"},
		{"parse: stray token", "klass C {} func main() { return 0; }", "expected"},
		{"lex: bad char", "func main() { return 0 # 1; }", "unexpected character"},
		{"lex: bare bang", "func main() { return 1 ! 2; }", "unexpected '!'"},
		{"lex: huge literal", "func main() { return 99999999999999; }", "too large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatalf("compiled successfully, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	t.Parallel()
	_, err := Compile("func main() {\n    return y;\n}")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line number: %v", err)
	}
}

func TestCompiledCodePassesVerifier(t *testing.T) {
	t.Parallel()
	// vm.New verifies every method; a program with deep nesting of
	// control flow must still verify.
	src := `
func main() {
    var acc = 0;
    var i = 0;
    while (i < 3) {
        var j = 0;
        while (j < 3) {
            if (i == j) { acc = acc + 10; } else {
                if (i < j) { acc = acc + 1; }
            }
            j = j + 1;
        }
        i = i + 1;
    }
    return acc;
}`
	if got := runThin(t, src); got != 33 {
		t.Fatalf("acc = %d, want 33", got)
	}
}
