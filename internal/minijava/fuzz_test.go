package minijava

import (
	"testing"

	"thinlock/internal/core"
	"thinlock/internal/object"
	"thinlock/internal/vm"
)

// FuzzCompile checks two properties over arbitrary source text: the
// compiler never panics, and anything it accepts assembles into a program
// the VM verifier also accepts (the compiler emits only verifiable code).
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"func main() { return 0; }",
		"func main() { return 1 + 2 * 3; }",
		"class C { field f; sync method m(n) { this.f = n; return n; } } func main() { var c = new C; return c.m(7); }",
		"func main() { var i = 0; while (i < 10) { i = i + 1; } return i; }",
		"func main() { synchronized (new Object) { } return 0; }",
		"class A { method x() { return 0; } } func g(a: A) { return a.x(); } func main() { return g(new A); }",
		"func main() { if (1 < 2) { return 3; } else { return 4; } }",
		"func main( { return 0; }",
		"class { }",
		"func main() { return 99999999999999999999; }",
		"func main() { return ((((1)))); }",
		"// just a comment",
		"func main() { var x = -(-(-1)); return x; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Property 1: parseable source must print to a parse/print
		// fixpoint.
		if ast, err := Parse(src); err == nil {
			once := Format(ast)
			ast2, err := Parse(once)
			if err != nil {
				t.Fatalf("printer emitted unparseable text: %v\nsource:\n%s\nprinted:\n%s", err, src, once)
			}
			if twice := Format(ast2); twice != once {
				t.Fatalf("printer is not a fixpoint\nsource:\n%s\nonce:\n%s\ntwice:\n%s", src, once, twice)
			}
		}
		// Property 2: anything the compiler accepts must pass the VM
		// verifier.
		prog, err := Compile(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if _, err := vm.New(prog, core.NewDefault(), object.NewHeap()); err != nil {
			t.Fatalf("compiler accepted source the verifier rejects: %v\nsource:\n%s", err, src)
		}
	})
}
