package minijava

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse turns source text into an AST.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for p.peek().kind != tokEOF {
		switch p.peek().kind {
		case tokClass:
			c, err := p.classDecl()
			if err != nil {
				return nil, err
			}
			prog.Classes = append(prog.Classes, c)
		case tokFunc:
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			t := p.peek()
			return nil, errf(t.line, t.col, "expected 'class' or 'func', found %v", t.kind)
		}
	}
	return prog, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokKind) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return t, errf(t.line, t.col, "expected %v, found %v", kind, t.kind)
	}
	return p.next(), nil
}

func (p *parser) accept(kind tokKind) bool {
	if p.peek().kind == kind {
		p.next()
		return true
	}
	return false
}

// classDecl = "class" ident "{" (fieldDecl | methodDecl)* "}"
func (p *parser) classDecl() (*ClassDecl, error) {
	kw, _ := p.expect(tokClass)
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	c := &ClassDecl{Name: name.text, Line: kw.line, Col: kw.col}
	for !p.accept(tokRBrace) {
		switch p.peek().kind {
		case tokField:
			p.next()
			f, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
			c.Fields = append(c.Fields, f.text)
		case tokSync, tokMethod:
			m, err := p.methodDecl()
			if err != nil {
				return nil, err
			}
			c.Methods = append(c.Methods, m)
		default:
			t := p.peek()
			return nil, errf(t.line, t.col, "expected 'field', 'method' or 'sync' in class body, found %v", t.kind)
		}
	}
	return c, nil
}

// methodDecl = ["sync"] "method" ident "(" params ")" block
func (p *parser) methodDecl() (*MethodDecl, error) {
	sync := p.accept(tokSync)
	kw, err := p.expect(tokMethod)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &MethodDecl{
		Name: name.text, Sync: sync, Params: params, Body: body,
		Line: kw.line, Col: kw.col,
	}, nil
}

// funcDecl = "func" ident "(" params ")" block
func (p *parser) funcDecl() (*FuncDecl, error) {
	kw, _ := p.expect(tokFunc)
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.text, Params: params, Body: body, Line: kw.line, Col: kw.col}, nil
}

// paramList = "(" (param ("," param)*)? ")"; param = ident (":" ident)?.
// The optional annotation names the class of an object parameter;
// unannotated parameters are ints.
func (p *parser) paramList() ([]Param, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var params []Param
	if p.peek().kind != tokRParen {
		for {
			id, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			prm := Param{Name: id.text, Line: id.line, Col: id.col}
			if p.accept(tokColon) {
				cls, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				prm.Class = cls.text
			}
			params = append(params, prm)
			if !p.accept(tokComma) {
				break
			}
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return params, nil
}

// block = "{" stmt* "}"
func (p *parser) block() (*Block, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept(tokRBrace) {
		if p.peek().kind == tokEOF {
			t := p.peek()
			return nil, errf(t.line, t.col, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

// stmt parses one statement.
func (p *parser) stmt() (Stmt, error) {
	switch t := p.peek(); t.kind {
	case tokVar:
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &VarStmt{Name: name.text, Init: init, Line: t.line, Col: t.col}, nil

	case tokIf:
		p.next()
		cond, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els *Block
		if p.accept(tokElse) {
			if els, err = p.block(); err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els}, nil

	case tokWhile:
		p.next()
		cond, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil

	case tokReturn:
		p.next()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: v, Line: t.line, Col: t.col}, nil

	case tokSynchronized:
		p.next()
		lock, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &SyncStmt{Lock: lock, Body: body, Line: t.line, Col: t.col}, nil

	case tokThrow:
		p.next()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &ThrowStmt{Value: v, Line: t.line, Col: t.col}, nil

	case tokTry:
		p.next()
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokCatch); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		catch, err := p.block()
		if err != nil {
			return nil, err
		}
		return &TryStmt{Body: body, Name: name.text, Catch: catch, Line: t.line, Col: t.col}, nil

	case tokLBrace:
		return p.block()

	default:
		// assignment or expression statement
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind == tokAssign {
			eq := p.next()
			switch x.(type) {
			case *IdentExpr, *FieldExpr:
			default:
				return nil, errf(eq.line, eq.col, "left side of assignment must be a variable or field")
			}
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
			return &AssignStmt{Target: x, Value: v, Line: eq.line, Col: eq.col}, nil
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x}, nil
	}
}

func (p *parser) parenExpr() (Expr, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return x, nil
}

// expr = addExpr (relop addExpr)?
func (p *parser) expr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch t := p.peek(); t.kind {
	case tokLT, tokLE, tokGT, tokGE, tokEQ, tokNE:
		p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: t.kind, L: l, R: r, Line: t.line, Col: t.col}, nil
	}
	return l, nil
}

// addExpr = mulExpr (("+"|"-") mulExpr)*
func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPlus && t.kind != tokMinus {
			return l, nil
		}
		p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: t.kind, L: l, R: r, Line: t.line, Col: t.col}
	}
}

// mulExpr = postfix ("*" postfix)*
func (p *parser) mulExpr() (Expr, error) {
	l, err := p.postfix()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokStar {
		t := p.next()
		r, err := p.postfix()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: tokStar, L: l, R: r, Line: t.line, Col: t.col}
	}
	return l, nil
}

// postfix = primary ("." ident ( "(" args ")" )? )*
func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokDot {
		dot := p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if p.peek().kind == tokLParen {
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			x = &CallExpr{Obj: x, Method: name.text, Args: args, Line: dot.line, Col: dot.col}
		} else {
			x = &FieldExpr{Obj: x, Field: name.text, Line: dot.line, Col: dot.col}
		}
	}
	return x, nil
}

func (p *parser) argList() ([]Expr, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var args []Expr
	if p.peek().kind != tokRParen {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(tokComma) {
				break
			}
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return args, nil
}

// primary = number | ident | ident "(" args ")" | "this" | "new" ident |
// "-" primary | "(" expr ")"
func (p *parser) primary() (Expr, error) {
	switch t := p.peek(); t.kind {
	case tokNumber:
		p.next()
		return &NumExpr{Value: t.num, Line: t.line, Col: t.col}, nil
	case tokIdent:
		p.next()
		if p.peek().kind == tokLParen {
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Method: t.text, Args: args, Line: t.line, Col: t.col}, nil
		}
		return &IdentExpr{Name: t.text, Line: t.line, Col: t.col}, nil
	case tokThis:
		p.next()
		return &ThisExpr{Line: t.line, Col: t.col}, nil
	case tokNew:
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		return &NewExpr{Class: name.text, Line: t.line, Col: t.col}, nil
	case tokMinus:
		p.next()
		x, err := p.primary()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: tokMinus,
			L:    &NumExpr{Value: 0, Line: t.line, Col: t.col},
			R:    x,
			Line: t.line, Col: t.col}, nil
	case tokLParen:
		return p.parenExpr()
	default:
		return nil, errf(t.line, t.col, "expected expression, found %v", t.kind)
	}
}
