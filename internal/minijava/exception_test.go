package minijava

import (
	"strings"
	"testing"

	"thinlock/internal/core"
	"thinlock/internal/object"
	"thinlock/internal/threading"
	"thinlock/internal/vm"
)

func TestThrowAndCatch(t *testing.T) {
	t.Parallel()
	src := `
func main() {
    var result = 0;
    try {
        throw 42;
    } catch (e) {
        result = e + 1;
    }
    return result;
}`
	if got := runThin(t, src); got != 43 {
		t.Fatalf("got %d, want 43", got)
	}
}

func TestCatchSkippedWhenNoThrow(t *testing.T) {
	t.Parallel()
	src := `
func main() {
    var result = 1;
    try {
        result = 2;
    } catch (e) {
        result = 99;
    }
    return result;
}`
	if got := runThin(t, src); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
}

func TestThrowAcrossFunctionCalls(t *testing.T) {
	t.Parallel()
	src := `
func risky(n) {
    if (n > 10) { throw n; }
    return n * 2;
}
func main() {
    var total = 0;
    var i = 8;
    while (i < 14) {
        try {
            total = total + risky(i);
        } catch (e) {
            total = total + 1000 + e;
        }
        i = i + 1;
    }
    return total;
}`
	// i=8,9,10: 16+18+20 = 54; i=11,12,13: 1011+1012+1013 = 3036.
	if got := runThin(t, src); got != 3090 {
		t.Fatalf("got %d, want 3090", got)
	}
}

func TestUncaughtThrowSurfacesAsError(t *testing.T) {
	t.Parallel()
	src := `func main() { throw 5; return 0; }`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	machine, err := vm.New(prog, core.NewDefault(), object.NewHeap())
	if err != nil {
		t.Fatal(err)
	}
	reg := threading.NewRegistry()
	th, _ := reg.Attach("main")
	if _, err := machine.Run(th, "main"); err == nil ||
		!strings.Contains(err.Error(), "uncaught exception 5") {
		t.Fatalf("err = %v", err)
	}
}

// TestThrowThroughSynchronizedBlockReleasesLock is the point of the whole
// exception mechanism: an exception escaping a synchronized block must
// not leave the lock held.
func TestThrowThroughSynchronizedBlockReleasesLock(t *testing.T) {
	t.Parallel()
	src := `
class Box { field v; }
func poke(b: Box, n) {
    synchronized (b) {
        b.v = n;
        if (n > 5) { throw n; }
    }
    return 0;
}
func main() {
    var b = new Box;
    var caught = 0;
    try {
        poke(b, 9);
    } catch (e) {
        caught = e;
    }
    // The lock must be free: this synchronized block would deadlock
    // (single-threaded self-lock would actually nest, so instead we
    // verify via a fresh locking below and the header check in Go).
    synchronized (b) { b.v = b.v + 1; }
    return caught * 100 + b.v;
}`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	l := core.NewDefault()
	machine, err := vm.New(prog, l, object.NewHeap())
	if err != nil {
		t.Fatal(err)
	}
	reg := threading.NewRegistry()
	th, _ := reg.Attach("main")
	res, err := machine.Run(th, "main")
	if err != nil {
		t.Fatal(err)
	}
	if res.I != 910 {
		t.Fatalf("got %d, want 910", res.I)
	}
}

func TestThrowThroughSyncMethodReleasesLock(t *testing.T) {
	t.Parallel()
	src := `
class Guard {
    field v;
    sync method arm(n) {
        this.v = n;
        throw n;
    }
    method value() { return this.v; }
}
func main() {
    var g = new Guard;
    var caught = 0;
    try { g.arm(7); } catch (e) { caught = e; }
    return caught * 10 + g.value();
}`
	l := core.NewDefault()
	if got := run(t, src, l); got != 77 {
		t.Fatalf("got %d, want 77", got)
	}
	if s := l.Stats(); s.Inflations() != 0 {
		t.Errorf("inflated %d locks in a single-threaded run", s.Inflations())
	}
}

func TestReturnInsideSynchronizedBlockUnlocks(t *testing.T) {
	t.Parallel()
	src := `
class Box { field v; }
func grab(b: Box) {
    synchronized (b) {
        b.v = b.v + 1;
        return b.v;
    }
}
func main() {
    var b = new Box;
    var x = grab(b);
    var y = grab(b);   // would hang forever if grab leaked the lock
    synchronized (b) { b.v = b.v + 100; }
    return x * 1000 + y * 100 + b.v;
}`
	if got := runThin(t, src); got != 1000+200+102 {
		t.Fatalf("got %d, want 1302", got)
	}
}

func TestReturnInsideNestedSynchronizedBlocksUnlocksAll(t *testing.T) {
	t.Parallel()
	src := `
class A { field v; }
class B { field v; }
func deep(a: A, b: B) {
    synchronized (a) {
        synchronized (b) {
            return 5;
        }
    }
}
func main() {
    var a = new A;
    var b = new B;
    var r = deep(a, b) + deep(a, b);
    synchronized (a) { synchronized (b) { r = r + 1; } }
    return r;
}`
	if got := runThin(t, src); got != 11 {
		t.Fatalf("got %d, want 11", got)
	}
}

func TestNestedTryCatch(t *testing.T) {
	t.Parallel()
	src := `
func main() {
    var log = 0;
    try {
        try {
            throw 3;
        } catch (inner) {
            log = log + inner;       // 3
            throw inner * 10;        // rethrow transformed
        }
    } catch (outer) {
        log = log * 100 + outer;     // 3*100 + 30
    }
    return log;
}`
	if got := runThin(t, src); got != 330 {
		t.Fatalf("got %d, want 330", got)
	}
}

func TestEmptySynchronizedBody(t *testing.T) {
	t.Parallel()
	// Regression: an empty protected region must not emit an empty
	// handler range (which the verifier rejects).
	src := `
class L {}
func main() {
    var l = new L;
    synchronized (l) { }
    synchronized (l) { { } { { } } }
    return 7;
}`
	if got := runThin(t, src); got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
}

func TestEmptyTryBody(t *testing.T) {
	t.Parallel()
	src := `
func main() {
    var x = 1;
    try { } catch (e) { x = 99; }
    return x;
}`
	if got := runThin(t, src); got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
}

func TestCatchVariableScoping(t *testing.T) {
	t.Parallel()
	src := `
func main() {
    var e = 1;
    try { throw 9; } catch (e) { e = e + 1; }
    return e;   // the outer e is untouched
}`
	if got := runThin(t, src); got != 1 {
		t.Fatalf("got %d, want 1 (outer variable shadowed, not clobbered)", got)
	}
}
