// Package minijava compiles a small Java-like language to the bytecode
// of the internal VM. It exists for two reasons. First, the paper's
// macro suite is language-processing tools, and a working compiler is the
// most honest synthetic member of that family. Second, its output runs
// *on* the VM: synchronized methods and synchronized blocks in source
// become FlagSync methods and monitorenter/monitorexit bytecodes, so a
// compiled program exercises any lock implementation end to end.
//
// The language: integer expressions, var/if/while/return statements,
// classes with integer fields and (optionally synchronized) methods,
// object creation with `new`, method calls, and `synchronized (expr)
// stmt` blocks. Types are int and class references, inferred from
// initializers.
//
//	class Counter {
//	    field value;
//	    sync method add(n) { this.value = this.value + n; return this.value; }
//	}
//	func main() {
//	    var c = new Counter;
//	    var i = 0;
//	    while (i < 10) { c.add(2); i = i + 1; }
//	    return c.add(0);
//	}
package minijava

import "fmt"

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokClass
	tokField
	tokMethod
	tokSync
	tokFunc
	tokVar
	tokIf
	tokElse
	tokWhile
	tokReturn
	tokNew
	tokThis
	tokSynchronized
	tokThrow
	tokTry
	tokCatch
	tokLBrace // {
	tokRBrace // }
	tokLParen // (
	tokRParen // )
	tokSemi   // ;
	tokColon  // :
	tokComma  // ,
	tokDot    // .
	tokAssign // =
	tokPlus   // +
	tokMinus  // -
	tokStar   // *
	tokLT     // <
	tokLE     // <=
	tokGT     // >
	tokGE     // >=
	tokEQ     // ==
	tokNE     // !=
)

var keywords = map[string]tokKind{
	"class":        tokClass,
	"field":        tokField,
	"method":       tokMethod,
	"sync":         tokSync,
	"func":         tokFunc,
	"var":          tokVar,
	"if":           tokIf,
	"else":         tokElse,
	"while":        tokWhile,
	"return":       tokReturn,
	"new":          tokNew,
	"this":         tokThis,
	"synchronized": tokSynchronized,
	"throw":        tokThrow,
	"try":          tokTry,
	"catch":        tokCatch,
}

var kindNames = map[tokKind]string{
	tokEOF: "end of input", tokIdent: "identifier", tokNumber: "number",
	tokClass: "'class'", tokField: "'field'", tokMethod: "'method'",
	tokSync: "'sync'", tokFunc: "'func'", tokVar: "'var'", tokIf: "'if'",
	tokElse: "'else'", tokWhile: "'while'", tokReturn: "'return'",
	tokNew: "'new'", tokThis: "'this'", tokSynchronized: "'synchronized'",
	tokThrow: "'throw'", tokTry: "'try'", tokCatch: "'catch'",
	tokLBrace: "'{'", tokRBrace: "'}'", tokLParen: "'('", tokRParen: "')'",
	tokSemi: "';'", tokColon: "':'", tokComma: "','", tokDot: "'.'", tokAssign: "'='",
	tokPlus: "'+'", tokMinus: "'-'", tokStar: "'*'", tokLT: "'<'",
	tokLE: "'<='", tokGT: "'>'", tokGE: "'>='", tokEQ: "'=='", tokNE: "'!='",
}

func (k tokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	num  int64
	line int
	col  int
}

// Error is a compile error with a source position.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("minijava: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
