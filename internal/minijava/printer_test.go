package minijava

import (
	"strings"
	"testing"
)

// roundTrip parses src, formats it, and checks the fixpoint property:
// formatting the reparse of the formatted text reproduces it exactly.
func roundTrip(t *testing.T, src string) string {
	t.Helper()
	ast, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	once := Format(ast)
	ast2, err := Parse(once)
	if err != nil {
		t.Fatalf("reparse of formatted output failed: %v\n%s", err, once)
	}
	twice := Format(ast2)
	if once != twice {
		t.Fatalf("printer not a fixpoint:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
	return once
}

func TestFormatFixpointOnRepresentativePrograms(t *testing.T) {
	t.Parallel()
	programs := []string{
		`func main() { return 0; }`,
		`func main() { return 1 + 2 * 3 - (4 + 5) * 6; }`,
		`func main() { return (1 + 2) * 3; }`,
		`func f(a, b: Box, c) { return a + c; }
		 class Box { field v; }
		 func main() { return f(1, new Box, 2); }`,
		`class Counter {
		    field value;
		    sync method add(n) { this.value = this.value + n; return this.value; }
		    method get() { return this.value; }
		 }
		 func main() {
		    var c = new Counter;
		    var i = 0;
		    while (i < 10) {
		        if (i == 5) { c.add(100); } else { c.add(1); }
		        i = i + 1;
		    }
		    synchronized (c) { c.add(0); }
		    try { throw c.get(); } catch (e) { return e; }
		    return -1;
		 }`,
		`func main() { var x = 1 - 2 - 3; return x - (4 - 5); }`,
		`func main() { { var inner = 1; } return 0; }`,
	}
	for _, src := range programs {
		roundTrip(t, src)
	}
}

func TestFormatPreservesSemantics(t *testing.T) {
	t.Parallel()
	src := `
class Acc {
    field total;
    sync method bump(n) { this.total = this.total + n; return this.total; }
}
func main() {
    var a = new Acc;
    var i = 0;
    while (i < 20) {
        synchronized (a) { a.bump(i * 2 - 1); }
        i = i + 1;
    }
    try { throw a.bump(0); } catch (e) { return e + (1 + 2) * 3; }
    return 0;
}`
	original := runThin(t, src)
	ast, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	reprinted := runThin(t, Format(ast))
	if original != reprinted {
		t.Fatalf("formatted program computes %d, original %d", reprinted, original)
	}
}

func TestFormatParenthesization(t *testing.T) {
	t.Parallel()
	cases := []struct {
		src  string
		want string // the expression as printed inside "return ...;"
	}{
		{"func main() { return (1 + 2) * 3; }", "(1 + 2) * 3"},
		{"func main() { return 1 + 2 * 3; }", "1 + 2 * 3"},
		{"func main() { return 1 - (2 - 3); }", "1 - (2 - 3)"},
		{"func main() { return 1 - 2 - 3; }", "1 - 2 - 3"},
		{"func main() { return (1 < 2) == (3 < 4); }", "(1 < 2) == (3 < 4)"},
		{"func main() { return -5 + 1; }", "0 - 5 + 1"}, // unary minus desugars
	}
	for _, tc := range cases {
		ast, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		out := Format(ast)
		if !strings.Contains(out, "return "+tc.want+";") {
			t.Errorf("formatting %q produced:\n%s\nwant expression %q", tc.src, out, tc.want)
		}
		roundTrip(t, tc.src)
	}
}

func TestFormatSemanticsUnderParenChanges(t *testing.T) {
	t.Parallel()
	// The minimal-parens printer must not change evaluation.
	src := "func main() { return 100 - (10 - (3 - 1)) * (2 + 1); }"
	original := runThin(t, src)
	out := roundTrip(t, src)
	if got := runThin(t, out); got != original {
		t.Fatalf("reprinted = %d, original = %d\n%s", got, original, out)
	}
}
