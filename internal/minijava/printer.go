package minijava

import (
	"fmt"
	"strings"
)

// Format renders an AST back to canonical source text. The printer and
// parser form a fixpoint: Parse(Format(p)) yields an AST that formats to
// the same text, which the round-trip tests (and fuzzing) verify.
func Format(p *Program) string {
	var pr printer
	for i, c := range p.Classes {
		if i > 0 {
			pr.nl()
		}
		pr.classDecl(c)
	}
	for i, f := range p.Funcs {
		if i > 0 || len(p.Classes) > 0 {
			pr.nl()
		}
		pr.funcDecl(f)
	}
	return pr.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (pr *printer) line(format string, args ...any) {
	pr.b.WriteString(strings.Repeat("    ", pr.indent))
	fmt.Fprintf(&pr.b, format, args...)
	pr.b.WriteByte('\n')
}

func (pr *printer) nl() { pr.b.WriteByte('\n') }

func (pr *printer) classDecl(c *ClassDecl) {
	pr.line("class %s {", c.Name)
	pr.indent++
	for _, f := range c.Fields {
		pr.line("field %s;", f)
	}
	for _, m := range c.Methods {
		mod := "method"
		if m.Sync {
			mod = "sync method"
		}
		pr.line("%s %s(%s) {", mod, m.Name, formatParams(m.Params))
		pr.indent++
		pr.blockBody(m.Body)
		pr.indent--
		pr.line("}")
	}
	pr.indent--
	pr.line("}")
}

func (pr *printer) funcDecl(f *FuncDecl) {
	pr.line("func %s(%s) {", f.Name, formatParams(f.Params))
	pr.indent++
	pr.blockBody(f.Body)
	pr.indent--
	pr.line("}")
}

func formatParams(params []Param) string {
	parts := make([]string, len(params))
	for i, p := range params {
		if p.Class != "" {
			parts[i] = p.Name + ": " + p.Class
		} else {
			parts[i] = p.Name
		}
	}
	return strings.Join(parts, ", ")
}

func (pr *printer) blockBody(b *Block) {
	for _, s := range b.Stmts {
		pr.stmt(s)
	}
}

func (pr *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		pr.line("{")
		pr.indent++
		pr.blockBody(s)
		pr.indent--
		pr.line("}")
	case *VarStmt:
		pr.line("var %s = %s;", s.Name, formatExpr(s.Init))
	case *AssignStmt:
		pr.line("%s = %s;", formatExpr(s.Target), formatExpr(s.Value))
	case *IfStmt:
		pr.line("if (%s) {", formatExpr(s.Cond))
		pr.indent++
		pr.blockBody(s.Then)
		pr.indent--
		if s.Else != nil {
			pr.line("} else {")
			pr.indent++
			pr.blockBody(s.Else)
			pr.indent--
		}
		pr.line("}")
	case *WhileStmt:
		pr.line("while (%s) {", formatExpr(s.Cond))
		pr.indent++
		pr.blockBody(s.Body)
		pr.indent--
		pr.line("}")
	case *ReturnStmt:
		pr.line("return %s;", formatExpr(s.Value))
	case *ExprStmt:
		pr.line("%s;", formatExpr(s.X))
	case *SyncStmt:
		pr.line("synchronized (%s) {", formatExpr(s.Lock))
		pr.indent++
		pr.blockBody(s.Body)
		pr.indent--
		pr.line("}")
	case *ThrowStmt:
		pr.line("throw %s;", formatExpr(s.Value))
	case *TryStmt:
		pr.line("try {")
		pr.indent++
		pr.blockBody(s.Body)
		pr.indent--
		pr.line("} catch (%s) {", s.Name)
		pr.indent++
		pr.blockBody(s.Catch)
		pr.indent--
		pr.line("}")
	}
}

// opText maps binary-operator token kinds to source text.
var opText = map[tokKind]string{
	tokPlus: "+", tokMinus: "-", tokStar: "*",
	tokLT: "<", tokLE: "<=", tokGT: ">", tokGE: ">=",
	tokEQ: "==", tokNE: "!=",
}

// precedence levels for minimal parenthesization, mirroring the parser:
// comparisons (1) < additive (2) < multiplicative (3) < postfix/primary (4).
func precedence(e Expr) int {
	b, ok := e.(*BinExpr)
	if !ok {
		return 4
	}
	switch b.Op {
	case tokStar:
		return 3
	case tokPlus, tokMinus:
		return 2
	default:
		return 1
	}
}

// formatExpr renders an expression with minimal parentheses.
func formatExpr(e Expr) string {
	switch e := e.(type) {
	case *NumExpr:
		return fmt.Sprintf("%d", e.Value)
	case *IdentExpr:
		return e.Name
	case *ThisExpr:
		return "this"
	case *NewExpr:
		return "new " + e.Class
	case *FieldExpr:
		return formatOperand(e.Obj, 4) + "." + e.Field
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = formatExpr(a)
		}
		call := e.Method + "(" + strings.Join(args, ", ") + ")"
		if e.Obj != nil {
			return formatOperand(e.Obj, 4) + "." + call
		}
		return call
	case *BinExpr:
		p := precedence(e)
		// The grammar is left-associative for +,-,* (right operand needs
		// parens at equal precedence, left only below it) and
		// non-associative for comparisons (both operands need parens at
		// comparison precedence).
		lmin := p
		if p == 1 {
			lmin = p + 1
		}
		l := formatOperand(e.L, lmin)
		r := formatOperand(e.R, p+1)
		return l + " " + opText[e.Op] + " " + r
	default:
		return "?"
	}
}

// formatOperand parenthesizes e when its precedence is below min.
func formatOperand(e Expr, min int) string {
	if precedence(e) < min {
		return "(" + formatExpr(e) + ")"
	}
	return formatExpr(e)
}
