package minijava

// lexer turns source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// lexAll scans the entire input, ending with a tokEOF token.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) peekByte() (byte, bool) {
	if lx.pos >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.pos], true
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans one token.
func (lx *lexer) next() (token, error) {
	// Skip whitespace and // comments.
	for {
		c, ok := lx.peekByte()
		if !ok {
			return token{kind: tokEOF, line: lx.line, col: lx.col}, nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.advance()
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for {
				c, ok := lx.peekByte()
				if !ok || c == '\n' {
					break
				}
				lx.advance()
			}
		default:
			goto scan
		}
	}
scan:
	line, col := lx.line, lx.col
	c := lx.advance()

	switch {
	case isLetter(c):
		start := lx.pos - 1
		for {
			c, ok := lx.peekByte()
			if !ok || !(isLetter(c) || isDigit(c)) {
				break
			}
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if kind, ok := keywords[text]; ok {
			return token{kind: kind, text: text, line: line, col: col}, nil
		}
		return token{kind: tokIdent, text: text, line: line, col: col}, nil

	case isDigit(c):
		n := int64(c - '0')
		for {
			c, ok := lx.peekByte()
			if !ok || !isDigit(c) {
				break
			}
			lx.advance()
			n = n*10 + int64(c-'0')
			if n > 1<<31 {
				return token{}, errf(line, col, "integer literal too large")
			}
		}
		return token{kind: tokNumber, num: n, line: line, col: col}, nil
	}

	two := func(next byte, yes, no tokKind) token {
		if c, ok := lx.peekByte(); ok && c == next {
			lx.advance()
			return token{kind: yes, line: line, col: col}
		}
		return token{kind: no, line: line, col: col}
	}

	switch c {
	case '{':
		return token{kind: tokLBrace, line: line, col: col}, nil
	case '}':
		return token{kind: tokRBrace, line: line, col: col}, nil
	case '(':
		return token{kind: tokLParen, line: line, col: col}, nil
	case ')':
		return token{kind: tokRParen, line: line, col: col}, nil
	case ';':
		return token{kind: tokSemi, line: line, col: col}, nil
	case ':':
		return token{kind: tokColon, line: line, col: col}, nil
	case ',':
		return token{kind: tokComma, line: line, col: col}, nil
	case '.':
		return token{kind: tokDot, line: line, col: col}, nil
	case '+':
		return token{kind: tokPlus, line: line, col: col}, nil
	case '-':
		return token{kind: tokMinus, line: line, col: col}, nil
	case '*':
		return token{kind: tokStar, line: line, col: col}, nil
	case '=':
		return two('=', tokEQ, tokAssign), nil
	case '<':
		return two('=', tokLE, tokLT), nil
	case '>':
		return two('=', tokGE, tokGT), nil
	case '!':
		if c, ok := lx.peekByte(); ok && c == '=' {
			lx.advance()
			return token{kind: tokNE, line: line, col: col}, nil
		}
		return token{}, errf(line, col, "unexpected '!'")
	}
	return token{}, errf(line, col, "unexpected character %q", c)
}
