package minijava

import (
	"fmt"

	"thinlock/internal/vm"
)

// ty is an expression type: the zero value is int; otherwise a class
// reference.
type ty struct {
	class string
}

var tyInt = ty{}

func (t ty) isInt() bool { return t.class == "" }

func (t ty) String() string {
	if t.isInt() {
		return "int"
	}
	return t.class
}

// Compile parses and compiles source text to a verified VM program.
// Classes become vm.Classes; methods and top-level functions become
// vm.Methods (synchronized methods carry vm.FlagSync; `synchronized`
// statements compile to monitorenter/monitorexit pairs around the body).
func Compile(src string) (*vm.Program, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		prog:    vm.NewProgram(),
		classes: make(map[string]*classInfo),
		funcs:   make(map[string]int),
		sigs:    make(map[int][]ty),
	}
	return c.compile(ast)
}

// classInfo is the symbol-table entry for a class.
type classInfo struct {
	decl    *ClassDecl
	vmClass *vm.Class
	index   int            // class index in the program
	fields  map[string]int // field name -> slot
	methods map[string]int // method name -> program method index
}

type compiler struct {
	prog    *vm.Program
	classes map[string]*classInfo
	funcs   map[string]int // top-level function name -> method index
	// sigs records the parameter types (receiver excluded) of every
	// method index, for call-site type checking.
	sigs map[int][]ty
}

func (c *compiler) compile(ast *Program) (*vm.Program, error) {
	// Pass 1: declare classes, fields, and method/function signatures so
	// bodies can reference anything declared anywhere in the unit.
	for _, cd := range ast.Classes {
		if _, dup := c.classes[cd.Name]; dup {
			return nil, errf(cd.Line, cd.Col, "duplicate class %q", cd.Name)
		}
		info := &classInfo{
			decl:    cd,
			vmClass: &vm.Class{Name: cd.Name, NumFields: len(cd.Fields)},
			fields:  make(map[string]int),
			methods: make(map[string]int),
		}
		for i, f := range cd.Fields {
			if _, dup := info.fields[f]; dup {
				return nil, errf(cd.Line, cd.Col, "duplicate field %q in class %q", f, cd.Name)
			}
			info.fields[f] = i
		}
		info.index = c.prog.AddClass(info.vmClass)
		c.classes[cd.Name] = info
	}
	for _, cd := range ast.Classes {
		info := c.classes[cd.Name]
		for _, md := range cd.Methods {
			if _, dup := info.methods[md.Name]; dup {
				return nil, errf(md.Line, md.Col, "duplicate method %q in class %q", md.Name, cd.Name)
			}
			flags := vm.FlagReturnsValue
			if md.Sync {
				flags |= vm.FlagSync
			}
			m := &vm.Method{
				Name:    md.Name,
				Class:   info.vmClass,
				Flags:   flags,
				NumArgs: 1 + len(md.Params), // receiver + params
			}
			idx := c.prog.AddMethod(m)
			info.methods[md.Name] = idx
			sig, err := c.paramTypes(md.Params)
			if err != nil {
				return nil, err
			}
			c.sigs[idx] = sig
		}
	}
	for _, fd := range ast.Funcs {
		if _, dup := c.funcs[fd.Name]; dup {
			return nil, errf(fd.Line, fd.Col, "duplicate function %q", fd.Name)
		}
		m := &vm.Method{
			Name:    fd.Name,
			Flags:   vm.FlagStatic | vm.FlagReturnsValue,
			NumArgs: len(fd.Params),
		}
		idx := c.prog.AddMethod(m)
		c.funcs[fd.Name] = idx
		sig, err := c.paramTypes(fd.Params)
		if err != nil {
			return nil, err
		}
		c.sigs[idx] = sig
	}

	// Pass 2: compile bodies.
	for _, cd := range ast.Classes {
		info := c.classes[cd.Name]
		for _, md := range cd.Methods {
			m := c.prog.Methods[info.methods[md.Name]]
			if err := c.compileBody(m, info, md.Params, md.Body); err != nil {
				return nil, err
			}
		}
	}
	for _, fd := range ast.Funcs {
		m := c.prog.Methods[c.funcs[fd.Name]]
		if err := c.compileBody(m, nil, fd.Params, fd.Body); err != nil {
			return nil, err
		}
	}
	return c.prog, nil
}

// fnScope holds the state for compiling one body.
type fnScope struct {
	c        *compiler
	asm      *vm.Asm
	class    *classInfo // nil for top-level functions
	scopes   []map[string]localVar
	nextSlot int
	maxSlot  int
	labels   int
	syncTmps []int // local slots of enclosing `synchronized` lock objects
}

type localVar struct {
	slot int
	ty   ty
}

// paramTypes resolves parameter annotations into types.
func (c *compiler) paramTypes(params []Param) ([]ty, error) {
	sig := make([]ty, len(params))
	for i, p := range params {
		if p.Class != "" {
			if _, ok := c.classes[p.Class]; !ok {
				return nil, errf(p.Line, p.Col, "unknown class %q in parameter %q", p.Class, p.Name)
			}
			sig[i] = ty{class: p.Class}
		}
	}
	return sig, nil
}

// compileBody fills in m's Code and MaxLocals.
func (c *compiler) compileBody(m *vm.Method, class *classInfo, params []Param, body *Block) error {
	fs := &fnScope{c: c, asm: vm.NewAsm(), class: class}
	fs.pushScope()
	if class != nil {
		// Receiver occupies slot 0 under the name `this` (reached via
		// ThisExpr, not by identifier lookup).
		fs.alloc()
	}
	sig, err := c.paramTypes(params)
	if err != nil {
		return err
	}
	for i, p := range params {
		if err := fs.declare(p.Name, sig[i], p.Line, p.Col); err != nil {
			return err
		}
	}
	if err = fs.block(body); err != nil {
		return err
	}
	// Implicit `return 0` for bodies whose control can fall off the end;
	// unreachable when every path returns explicitly.
	fs.asm.Iconst(0).IReturn()
	code, handlers, err := fs.asm.BuildWithHandlers()
	if err != nil {
		return err
	}
	m.Code = code
	m.Handlers = handlers
	m.MaxLocals = fs.maxSlot
	m.Lines = fs.asm.Lines()
	// Parameter classes seed the verifier's per-slot class inference,
	// which the static lock-order graph keys its nodes on.
	m.ParamClasses = make([]int, m.NumArgs)
	i := 0
	if class != nil {
		m.ParamClasses[0] = class.index
		i = 1
	}
	for j, t := range sig {
		if t.isInt() {
			m.ParamClasses[i+j] = -1
		} else {
			m.ParamClasses[i+j] = c.classes[t.class].index
		}
	}
	return nil
}

// stmtLine reports the source line a statement starts on (0 unknown).
func stmtLine(s Stmt) int {
	switch s := s.(type) {
	case *VarStmt:
		return s.Line
	case *AssignStmt:
		return s.Line
	case *IfStmt:
		l, _ := s.Cond.pos()
		return l
	case *WhileStmt:
		l, _ := s.Cond.pos()
		return l
	case *ReturnStmt:
		return s.Line
	case *ExprStmt:
		l, _ := s.X.pos()
		return l
	case *SyncStmt:
		return s.Line
	case *ThrowStmt:
		return s.Line
	case *TryStmt:
		return s.Line
	}
	return 0
}

func (fs *fnScope) pushScope() {
	fs.scopes = append(fs.scopes, make(map[string]localVar))
}

func (fs *fnScope) popScope() {
	fs.scopes = fs.scopes[:len(fs.scopes)-1]
}

// alloc reserves the next local slot.
func (fs *fnScope) alloc() int {
	slot := fs.nextSlot
	fs.nextSlot++
	if fs.nextSlot > fs.maxSlot {
		fs.maxSlot = fs.nextSlot
	}
	return slot
}

// declare binds a new name in the innermost scope.
func (fs *fnScope) declare(name string, t ty, line, col int) error {
	top := fs.scopes[len(fs.scopes)-1]
	if _, dup := top[name]; dup {
		return errf(line, col, "duplicate variable %q", name)
	}
	top[name] = localVar{slot: fs.alloc(), ty: t}
	return nil
}

// lookup resolves a name through the scope stack.
func (fs *fnScope) lookup(name string) (localVar, bool) {
	for i := len(fs.scopes) - 1; i >= 0; i-- {
		if v, ok := fs.scopes[i][name]; ok {
			return v, true
		}
	}
	return localVar{}, false
}

func (fs *fnScope) newLabel(prefix string) string {
	fs.labels++
	return fmt.Sprintf("%s%d", prefix, fs.labels)
}

// block compiles a block in its own scope. Slots are not reused after the
// scope closes, which keeps slot/type assignments unambiguous for the
// verifier at the cost of a few extra frame slots.
func (fs *fnScope) block(b *Block) error {
	fs.pushScope()
	defer fs.popScope()
	for _, s := range b.Stmts {
		if err := fs.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fs *fnScope) stmt(s Stmt) error {
	if l := stmtLine(s); l > 0 {
		fs.asm.Line(int32(l))
	}
	switch s := s.(type) {
	case *Block:
		return fs.block(s)

	case *VarStmt:
		t, err := fs.expr(s.Init)
		if err != nil {
			return err
		}
		if err := fs.declare(s.Name, t, s.Line, s.Col); err != nil {
			return err
		}
		v, _ := fs.lookup(s.Name)
		if t.isInt() {
			fs.asm.Istore(int32(v.slot))
		} else {
			fs.asm.Astore(int32(v.slot))
		}
		return nil

	case *AssignStmt:
		switch target := s.Target.(type) {
		case *IdentExpr:
			v, ok := fs.lookup(target.Name)
			if !ok {
				return errf(target.Line, target.Col, "undefined variable %q", target.Name)
			}
			t, err := fs.expr(s.Value)
			if err != nil {
				return err
			}
			if t != v.ty {
				return errf(s.Line, s.Col, "cannot assign %v to %q (%v)", t, target.Name, v.ty)
			}
			if t.isInt() {
				fs.asm.Istore(int32(v.slot))
			} else {
				fs.asm.Astore(int32(v.slot))
			}
			return nil
		case *FieldExpr:
			_, slot, err := fs.fieldRef(target)
			if err != nil {
				return err
			}
			t, err := fs.expr(s.Value)
			if err != nil {
				return err
			}
			if !t.isInt() {
				return errf(s.Line, s.Col, "fields hold int values, not %v", t)
			}
			fs.asm.PutField(int32(slot))
			return nil
		default:
			return errf(s.Line, s.Col, "invalid assignment target")
		}

	case *IfStmt:
		elseL := fs.newLabel("else")
		endL := fs.newLabel("endif")
		if err := fs.cond(s.Cond, elseL); err != nil {
			return err
		}
		if err := fs.block(s.Then); err != nil {
			return err
		}
		fs.asm.Goto(endL)
		fs.asm.Label(elseL)
		if s.Else != nil {
			if err := fs.block(s.Else); err != nil {
				return err
			}
		}
		fs.asm.Label(endL)
		return nil

	case *WhileStmt:
		loopL := fs.newLabel("loop")
		endL := fs.newLabel("endloop")
		fs.asm.Label(loopL)
		if err := fs.cond(s.Cond, endL); err != nil {
			return err
		}
		if err := fs.block(s.Body); err != nil {
			return err
		}
		fs.asm.Goto(loopL)
		fs.asm.Label(endL)
		return nil

	case *ReturnStmt:
		t, err := fs.expr(s.Value)
		if err != nil {
			return err
		}
		if !t.isInt() {
			return errf(s.Line, s.Col, "functions return int values, not %v", t)
		}
		// Returning from inside `synchronized` blocks releases each
		// enclosing lock, innermost first, after the return value is
		// evaluated — Java's abrupt-completion semantics.
		for i := len(fs.syncTmps) - 1; i >= 0; i-- {
			fs.asm.Aload(int32(fs.syncTmps[i])).MonitorExit()
		}
		fs.asm.IReturn()
		return nil

	case *ExprStmt:
		if _, err := fs.expr(s.X); err != nil {
			return err
		}
		fs.asm.Pop()
		return nil

	case *SyncStmt:
		t, err := fs.expr(s.Lock)
		if err != nil {
			return err
		}
		if t.isInt() {
			return errf(s.Line, s.Col, "synchronized needs an object, not int")
		}
		tmp := fs.alloc() // anonymous slot holding the locked object
		fs.asm.Astore(int32(tmp))
		fs.asm.Aload(int32(tmp)).MonitorEnter()
		// Protect the body with an unlock-and-rethrow handler, exactly
		// as javac compiles synchronized blocks, so an exception cannot
		// leave the lock held.
		startL := fs.newLabel("syncstart")
		endL := fs.newLabel("syncend")
		handlerL := fs.newLabel("synchandler")
		doneL := fs.newLabel("syncdone")
		fs.asm.Label(startL)
		bodyStart := fs.asm.Pos()
		fs.syncTmps = append(fs.syncTmps, tmp)
		err = fs.block(s.Body)
		fs.syncTmps = fs.syncTmps[:len(fs.syncTmps)-1]
		if err != nil {
			return err
		}
		nonEmpty := fs.asm.Pos() > bodyStart
		fs.asm.Label(endL)
		fs.asm.Aload(int32(tmp)).MonitorExit()
		if nonEmpty {
			// An empty body cannot throw, and the verifier rejects
			// empty handler ranges, so protect only real bodies.
			fs.asm.Goto(doneL)
			fs.asm.Label(handlerL)
			fs.asm.Aload(int32(tmp)).MonitorExit()
			fs.asm.Throw()
			fs.asm.Label(doneL)
			fs.asm.Protect(startL, endL, handlerL)
		}
		return nil

	case *ThrowStmt:
		t, err := fs.expr(s.Value)
		if err != nil {
			return err
		}
		if !t.isInt() {
			return errf(s.Line, s.Col, "throw needs an int exception code, not %v", t)
		}
		fs.asm.Throw()
		return nil

	case *TryStmt:
		startL := fs.newLabel("trystart")
		endL := fs.newLabel("tryend")
		handlerL := fs.newLabel("catch")
		doneL := fs.newLabel("trydone")
		fs.asm.Label(startL)
		bodyStart := fs.asm.Pos()
		if err := fs.block(s.Body); err != nil {
			return err
		}
		if fs.asm.Pos() == bodyStart {
			// An empty try body cannot throw: the catch is dead code.
			return nil
		}
		fs.asm.Label(endL)
		fs.asm.Goto(doneL)
		fs.asm.Label(handlerL)
		// Bind the thrown value to the catch variable in its own scope.
		fs.pushScope()
		if err := fs.declare(s.Name, tyInt, s.Line, s.Col); err != nil {
			fs.popScope()
			return err
		}
		v, _ := fs.lookup(s.Name)
		fs.asm.Istore(int32(v.slot))
		err := fs.block(s.Catch)
		fs.popScope()
		if err != nil {
			return err
		}
		fs.asm.Label(doneL)
		fs.asm.Protect(startL, endL, handlerL)
		return nil

	default:
		return fmt.Errorf("minijava: unknown statement %T", s)
	}
}

// cond compiles a boolean context: fall through when true, jump to
// falseLabel when false.
func (fs *fnScope) cond(e Expr, falseLabel string) error {
	t, err := fs.expr(e)
	if err != nil {
		return err
	}
	if !t.isInt() {
		line, col := e.pos()
		return errf(line, col, "condition must be int (0 = false), not %v", t)
	}
	fs.asm.IfEQ(falseLabel)
	return nil
}

// fieldRef compiles the object part of a field access and resolves the
// field slot.
func (fs *fnScope) fieldRef(f *FieldExpr) (*classInfo, int, error) {
	t, err := fs.expr(f.Obj)
	if err != nil {
		return nil, 0, err
	}
	if t.isInt() {
		return nil, 0, errf(f.Line, f.Col, "int has no field %q", f.Field)
	}
	info := fs.c.classes[t.class]
	slot, ok := info.fields[f.Field]
	if !ok {
		return nil, 0, errf(f.Line, f.Col, "class %q has no field %q", t.class, f.Field)
	}
	return info, slot, nil
}

// expr compiles an expression, leaving its value on the stack, and
// returns its type.
func (fs *fnScope) expr(e Expr) (ty, error) {
	switch e := e.(type) {
	case *NumExpr:
		fs.asm.Iconst(int32(e.Value))
		return tyInt, nil

	case *IdentExpr:
		v, ok := fs.lookup(e.Name)
		if !ok {
			return ty{}, errf(e.Line, e.Col, "undefined variable %q", e.Name)
		}
		if v.ty.isInt() {
			fs.asm.Iload(int32(v.slot))
		} else {
			fs.asm.Aload(int32(v.slot))
		}
		return v.ty, nil

	case *ThisExpr:
		if fs.class == nil {
			return ty{}, errf(e.Line, e.Col, "'this' outside a method")
		}
		fs.asm.Aload(0)
		return ty{class: fs.class.decl.Name}, nil

	case *NewExpr:
		info, ok := fs.c.classes[e.Class]
		if !ok {
			return ty{}, errf(e.Line, e.Col, "unknown class %q", e.Class)
		}
		fs.asm.New(int32(info.index))
		return ty{class: e.Class}, nil

	case *FieldExpr:
		_, slot, err := fs.fieldRef(e)
		if err != nil {
			return ty{}, err
		}
		fs.asm.GetField(int32(slot))
		return tyInt, nil

	case *CallExpr:
		return fs.call(e)

	case *BinExpr:
		return fs.binary(e)

	default:
		return ty{}, fmt.Errorf("minijava: unknown expression %T", e)
	}
}

func (fs *fnScope) call(e *CallExpr) (ty, error) {
	var midx int
	var want int
	if e.Obj == nil {
		// Top-level function call.
		idx, ok := fs.c.funcs[e.Method]
		if !ok {
			return ty{}, errf(e.Line, e.Col, "unknown function %q", e.Method)
		}
		midx = idx
		want = fs.c.prog.Methods[idx].NumArgs
	} else {
		t, err := fs.expr(e.Obj) // receiver on the stack
		if err != nil {
			return ty{}, err
		}
		if t.isInt() {
			return ty{}, errf(e.Line, e.Col, "int has no method %q", e.Method)
		}
		info := fs.c.classes[t.class]
		idx, ok := info.methods[e.Method]
		if !ok {
			return ty{}, errf(e.Line, e.Col, "class %q has no method %q", t.class, e.Method)
		}
		midx = idx
		want = fs.c.prog.Methods[idx].NumArgs - 1
	}
	if len(e.Args) != want {
		return ty{}, errf(e.Line, e.Col, "%q takes %d argument(s), got %d", e.Method, want, len(e.Args))
	}
	sig := fs.c.sigs[midx]
	for i, a := range e.Args {
		t, err := fs.expr(a)
		if err != nil {
			return ty{}, err
		}
		if t != sig[i] {
			line, col := a.pos()
			return ty{}, errf(line, col, "argument %d of %q must be %v, got %v", i+1, e.Method, sig[i], t)
		}
	}
	fs.asm.Invoke(int32(midx))
	return tyInt, nil
}

func (fs *fnScope) binary(e *BinExpr) (ty, error) {
	compileInts := func(l, r Expr) error {
		lt, err := fs.expr(l)
		if err != nil {
			return err
		}
		if !lt.isInt() {
			line, col := l.pos()
			return errf(line, col, "operator needs int operands, got %v", lt)
		}
		rt, err := fs.expr(r)
		if err != nil {
			return err
		}
		if !rt.isInt() {
			line, col := r.pos()
			return errf(line, col, "operator needs int operands, got %v", rt)
		}
		return nil
	}

	switch e.Op {
	case tokPlus, tokMinus, tokStar:
		if err := compileInts(e.L, e.R); err != nil {
			return ty{}, err
		}
		switch e.Op {
		case tokPlus:
			fs.asm.Iadd()
		case tokMinus:
			fs.asm.Isub()
		case tokStar:
			fs.asm.Imul()
		}
		return tyInt, nil

	case tokLT, tokLE, tokGT, tokGE:
		// Normalize to the VM's if_icmplt / if_icmpge by swapping
		// operands for > and <=.
		l, r := e.L, e.R
		op := e.Op
		if op == tokGT {
			l, r, op = r, l, tokLT
		} else if op == tokLE {
			l, r, op = r, l, tokGE
		}
		if err := compileInts(l, r); err != nil {
			return ty{}, err
		}
		trueL := fs.newLabel("true")
		endL := fs.newLabel("endcmp")
		if op == tokLT {
			fs.asm.IfICmpLT(trueL)
		} else {
			fs.asm.IfICmpGE(trueL)
		}
		fs.asm.Iconst(0).Goto(endL).Label(trueL).Iconst(1).Label(endL)
		return tyInt, nil

	case tokEQ, tokNE:
		if err := compileInts(e.L, e.R); err != nil {
			return ty{}, err
		}
		fs.asm.Isub()
		trueL := fs.newLabel("true")
		endL := fs.newLabel("endcmp")
		if e.Op == tokEQ {
			fs.asm.IfEQ(trueL)
		} else {
			fs.asm.IfNE(trueL)
		}
		fs.asm.Iconst(0).Goto(endL).Label(trueL).Iconst(1).Label(endL)
		return tyInt, nil

	default:
		return ty{}, errf(e.Line, e.Col, "unknown operator")
	}
}
