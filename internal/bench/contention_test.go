package bench

import (
	"strings"
	"testing"
	"time"
)

func TestContentionPolicySpin(t *testing.T) {
	r, err := RunContentionPolicy(false, 3, 2, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if r.Policy != "spin" {
		t.Errorf("policy = %q", r.Policy)
	}
	if r.SpinRounds == 0 {
		t.Error("spin policy recorded no spin pauses under a long hold")
	}
	if r.Parks != 0 {
		t.Error("spin policy parked")
	}
	if r.Elapsed < 15*time.Millisecond {
		t.Errorf("elapsed = %v, must cover 3 x 5ms holds", r.Elapsed)
	}
}

func TestContentionPolicyQueued(t *testing.T) {
	r, err := RunContentionPolicy(true, 3, 2, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if r.Policy != "queued" {
		t.Errorf("policy = %q", r.Policy)
	}
	if r.Parks == 0 {
		t.Error("queued policy never parked under a long hold")
	}
	if r.SpinRounds != 0 {
		t.Error("queued policy spun")
	}
}

func TestContentionPolicyComparison(t *testing.T) {
	spin, queued, err := RunContentionPolicyComparison(2, 2, 3*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// The headline claim: queued waiting replaces busy pauses with
	// precise parks.
	if spin.SpinRounds == 0 || queued.Parks == 0 {
		t.Errorf("comparison lacks signal: spin=%+v queued=%+v", spin, queued)
	}
	if !strings.Contains(spin.String(), "spin-pauses=") {
		t.Errorf("String() = %q", spin.String())
	}
}
