package bench

import (
	"strings"
	"testing"
	"time"

	"thinlock/internal/workloads"
)

func TestRunMacroProducesChecksumAndTiming(t *testing.T) {
	w, ok := workloads.ByName("crema")
	if !ok {
		t.Fatal("crema missing")
	}
	f, _ := Lookup(StandardImpls(), "ThinLock")
	r, sum, err := RunMacro(f, w, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sum == 0 {
		t.Error("zero checksum")
	}
	if r.Elapsed <= 0 || r.Benchmark != "crema" || r.Impl != "ThinLock" {
		t.Errorf("bad result: %+v", r)
	}
}

func TestCharacterizeProducesTable1Row(t *testing.T) {
	w, _ := workloads.ByName("javalex")
	c, err := Characterize(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Objects == 0 {
		t.Error("no objects counted")
	}
	if c.Report.SyncedObjects == 0 || c.Report.TotalSyncs == 0 {
		t.Error("no sync activity recorded")
	}
	// Table 1: "The number of synchronized objects is generally less
	// than a tenth of the total number of objects created."
	if float64(c.Report.SyncedObjects) >= float64(c.Objects) {
		t.Errorf("synced objects %d >= objects %d", c.Report.SyncedObjects, c.Objects)
	}
	// Figure 3: the dominant bucket must be first locks.
	if c.Report.DepthShare(0) < 0.45 {
		t.Errorf("first-lock share = %.2f, paper floor is 0.45", c.Report.DepthShare(0))
	}
	// §3.2: nesting is very shallow (never more than four deep).
	if c.Report.MaxDepth() > 4 {
		t.Errorf("max nesting depth = %d, want <= 4", c.Report.MaxDepth())
	}
}

func TestFigure3ShapeAcrossSuite(t *testing.T) {
	// The paper's aggregate claims: at least 45% of locks in every
	// benchmark are on unlocked objects; the median share is ~80%; no
	// benchmark nests deeper than 4.
	var shares []float64
	for _, w := range workloads.All() {
		c, err := Characterize(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		share := c.Report.DepthShare(0)
		shares = append(shares, share)
		if share < 0.45 {
			t.Errorf("%s: first-lock share %.2f below the paper's 45%% floor", w.Name, share)
		}
		if c.Report.MaxDepth() > 4 {
			t.Errorf("%s: nesting depth %d exceeds the paper's observed max of 4", w.Name, c.Report.MaxDepth())
		}
	}
	// Median share should be high (paper: 80%). Allow slack but require
	// a strong majority.
	n := 0
	for _, s := range shares {
		if s >= 0.6 {
			n++
		}
	}
	if n < len(shares)/2 {
		t.Errorf("fewer than half the workloads have >=60%% first locks: %v", shares)
	}
}

func TestFormatTable1AndFigure3(t *testing.T) {
	w, _ := workloads.ByName("crema")
	c, err := Characterize(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	t1 := FormatTable1([]Characterization{c})
	for _, want := range []string{"Table 1", "crema", "syncs/s.obj"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	f3 := FormatFigure3([]Characterization{c})
	for _, want := range []string{"Figure 3", "First", "crema"} {
		if !strings.Contains(f3, want) {
			t.Errorf("Figure 3 missing %q:\n%s", want, f3)
		}
	}
}

func TestRunFigure5SmokeAndChecksumAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the workload suite under three implementations")
	}
	cfg := Figure5Config{SizeScale: 0.05, Samples: 1, Only: []string{"crema", "jnet"}}
	rs, err := RunFigure5(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(StandardImpls()); len(rs.Results) != want {
		t.Errorf("results = %d, want %d", len(rs.Results), want)
	}
}

func TestMedianSpeedup(t *testing.T) {
	rs := &ResultSet{}
	add := func(bench, impl string, ms int) {
		rs.Add(Result{Benchmark: bench, Impl: impl,
			Elapsed: time.Duration(ms) * time.Millisecond, Ops: 1})
	}
	add("a", "ThinLock", 100)
	add("a", "JDK111", 150) // 1.5x
	add("b", "ThinLock", 100)
	add("b", "JDK111", 110) // 1.1x
	add("c", "ThinLock", 100)
	add("c", "JDK111", 120) // 1.2x
	med, max := MedianSpeedup(rs, "ThinLock", "JDK111")
	if med != 1.2 {
		t.Errorf("median = %f, want 1.2", med)
	}
	if max != 1.5 {
		t.Errorf("max = %f, want 1.5", max)
	}
	if m, x := MedianSpeedup(&ResultSet{}, "a", "b"); m != 0 || x != 0 {
		t.Error("empty set speedups")
	}
}
