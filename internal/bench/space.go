package bench

import (
	"fmt"
	"strings"

	"thinlock/internal/core"
	"thinlock/internal/hotlocks"
	"thinlock/internal/jcl"
	"thinlock/internal/lockstat"
	"thinlock/internal/monitorcache"
	"thinlock/internal/object"
	"thinlock/internal/threading"
	"thinlock/internal/workloads"
)

// Space model for the paper's storage argument (§1, §5): thin locks use
// 24 bits that already exist in the object header, so their only
// dedicated storage is the fat locks created by contention; the monitor
// cache and hot locks keep multi-word monitor structures outside objects
// for every (cached) synchronized object.

// MonitorBytes models the size of one heavy-weight monitor structure:
// a thread pointer, a lock count, two queue heads and a latch — the
// "multi-word structure" of §2.1 — plus its table slot.
const MonitorBytes = 48

// CacheEntryBytes models one monitor-cache binding (hash-table entry:
// key, pointer, chain).
const CacheEntryBytes = 24

// SpaceRow is the dedicated lock storage one implementation used for one
// workload.
type SpaceRow struct {
	Impl string
	// SyncedObjects is how many distinct objects were locked.
	SyncedObjects int
	// Structures is how many monitor structures exist at the end of the
	// run.
	Structures int
	// Bytes is the modeled dedicated lock storage.
	Bytes int
}

// SpaceUsage runs the workload once under each implementation and
// reports the modeled lock-storage footprint.
func SpaceUsage(w workloads.Workload, size int) ([]SpaceRow, error) {
	var rows []SpaceRow

	// ThinLock: dedicated storage = inflated monitors only.
	{
		l := core.NewDefault()
		rec := lockstat.New(l)
		synced, err := runWorkload(rec, w, size)
		if err != nil {
			return nil, err
		}
		fat := l.Stats().FatLocks
		rows = append(rows, SpaceRow{
			Impl:          "ThinLock",
			SyncedObjects: synced,
			Structures:    fat,
			Bytes:         fat * MonitorBytes,
		})
	}

	// JDK111: the whole monitor pool plus live cache bindings.
	{
		l := monitorcache.NewDefault()
		rec := lockstat.New(l)
		synced, err := runWorkload(rec, w, size)
		if err != nil {
			return nil, err
		}
		pool := l.PoolSize()
		rows = append(rows, SpaceRow{
			Impl:          "JDK111",
			SyncedObjects: synced,
			Structures:    pool,
			Bytes:         pool*MonitorBytes + l.BoundMonitors()*CacheEntryBytes,
		})
	}

	// IBM112: 32 hot locks plus the cold cache's fat locks.
	{
		l := hotlocks.NewDefault()
		rec := lockstat.New(l)
		synced, err := runWorkload(rec, w, size)
		if err != nil {
			return nil, err
		}
		structures := l.Slots() + l.ColdCount()
		rows = append(rows, SpaceRow{
			Impl:          "IBM112",
			SyncedObjects: synced,
			Structures:    structures,
			Bytes:         structures*MonitorBytes + l.ColdCount()*CacheEntryBytes,
		})
	}

	return rows, nil
}

// runWorkload executes w under the instrumented locker and returns the
// synced-object count.
func runWorkload(rec *lockstat.Recorder, w workloads.Workload, size int) (int, error) {
	ctx := jcl.NewContext(rec, object.NewHeap())
	reg := threading.NewRegistry()
	t, err := reg.Attach("space")
	if err != nil {
		return 0, err
	}
	w.Run(ctx, t, size)
	return rec.Snapshot().SyncedObjects, nil
}

// FormatSpace renders the space comparison for a set of workloads.
func FormatSpace(results map[string][]SpaceRow, order []string) string {
	var b strings.Builder
	b.WriteString("Lock storage footprint (modeled; monitor=48B, cache entry=24B)\n")
	fmt.Fprintf(&b, "%-12s %-10s %12s %12s %12s\n",
		"program", "impl", "sync.obj", "structures", "bytes")
	for _, name := range order {
		for _, r := range results[name] {
			fmt.Fprintf(&b, "%-12s %-10s %12d %12d %12d\n",
				name, r.Impl, r.SyncedObjects, r.Structures, r.Bytes)
		}
	}
	return b.String()
}
