package bench

import (
	"strings"
	"testing"
	"time"
)

func TestKernelsRunUnderEveryImplementation(t *testing.T) {
	const iters = 2_000
	for _, f := range StandardImpls() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			m, err := NewMicro(f.New())
			if err != nil {
				t.Fatal(err)
			}
			steps := []struct {
				name string
				run  func() error
			}{
				{"NoSync", func() error { return m.NoSync(iters) }},
				{"Sync", func() error { return m.Sync(iters) }},
				{"NestedSync", func() error { return m.NestedSync(iters) }},
				{"MixedSync", func() error { return m.MixedSync(iters) }},
				{"MultiSync1", func() error { return m.MultiSync(1, iters) }},
				{"MultiSync33", func() error { return m.MultiSync(33, iters) }},
				{"MultiSync200", func() error { return m.MultiSync(200, iters) }},
				{"Call", func() error { return m.Call(iters) }},
				{"CallSync", func() error { return m.CallSync(iters) }},
				{"NestedCallSync", func() error { return m.NestedCallSync(iters) }},
				{"Threads2", func() error { return m.Threads(2, iters/2) }},
				{"Threads4", func() error { return m.Threads(4, iters/4) }},
			}
			for _, s := range steps {
				if err := s.run(); err != nil {
					t.Fatalf("%s: %v", s.name, err)
				}
			}
		})
	}
}

func TestKernelsRunUnderEveryVariant(t *testing.T) {
	const iters = 1_000
	for _, f := range VariantImpls() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			m, err := NewMicro(f.New())
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Sync(iters); err != nil {
				t.Fatal(err)
			}
			if err := m.MixedSync(iters); err != nil {
				t.Fatal(err)
			}
			if err := m.CallSync(iters); err != nil {
				t.Fatal(err)
			}
			if f.Name != "NOP" {
				if err := m.Threads(3, iters); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestDispatchUnknownKernel(t *testing.T) {
	m, err := NewMicro(StandardImpls()[0].New())
	if err != nil {
		t.Fatal(err)
	}
	if err := dispatch(m, "Bogus", 0, 1); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestDispatchCoversAllKernels(t *testing.T) {
	m, err := NewMicro(StandardImpls()[0].New())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kernels() {
		param := 0
		if k.Swept {
			param = 2
		}
		if err := dispatch(m, k.Name, param, 100); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestRunKernelProducesResult(t *testing.T) {
	f, ok := Lookup(StandardImpls(), "ThinLock")
	if !ok {
		t.Fatal("ThinLock factory missing")
	}
	r, err := RunKernel(f, "Sync", 0, 5_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmark != "Sync" || r.Impl != "ThinLock" || r.Ops != 5_000 {
		t.Errorf("result fields wrong: %+v", r)
	}
	if r.Elapsed <= 0 {
		t.Error("non-positive elapsed time")
	}
	if r.NsPerOp() <= 0 {
		t.Error("non-positive ns/op")
	}
}

func TestResultMath(t *testing.T) {
	r := Result{Benchmark: "Sync", Impl: "A", Elapsed: 2 * time.Second, Ops: 1_000_000}
	if r.NsPerOp() != 2000 {
		t.Errorf("NsPerOp = %f", r.NsPerOp())
	}
	if r.MsPerMillion() != 2000 {
		t.Errorf("MsPerMillion = %f", r.MsPerMillion())
	}
	base := Result{Elapsed: 4 * time.Second}
	if r.Speedup(base) != 2 {
		t.Errorf("Speedup = %f", r.Speedup(base))
	}
	if (Result{}).NsPerOp() != 0 {
		t.Error("zero-ops NsPerOp")
	}
	if (Result{}).Speedup(base) != 0 {
		t.Error("zero-elapsed Speedup")
	}
	if r.Key() != "Sync" {
		t.Errorf("Key = %q", r.Key())
	}
	r.Param = 32
	if r.Key() != "Sync 32" {
		t.Errorf("Key = %q", r.Key())
	}
}

func TestResultSetQueries(t *testing.T) {
	rs := &ResultSet{}
	rs.Add(Result{Benchmark: "Sync", Impl: "A", Elapsed: time.Second, Ops: 1})
	rs.Add(Result{Benchmark: "Sync", Impl: "B", Elapsed: 2 * time.Second, Ops: 1})
	rs.Add(Result{Benchmark: "MultiSync", Impl: "A", Param: 32, Elapsed: time.Second, Ops: 1})
	if _, ok := rs.Get("Sync", "B", 0); !ok {
		t.Error("Get missed")
	}
	if _, ok := rs.Get("Sync", "C", 0); ok {
		t.Error("Get found phantom")
	}
	if got := rs.Impls(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("Impls = %v", got)
	}
	if got := rs.Benchmarks(); len(got) != 2 {
		t.Errorf("Benchmarks = %v", got)
	}
}

func TestMedianOf(t *testing.T) {
	calls := 0
	d, err := MedianOf(5, func() error {
		calls++
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Errorf("calls = %d", calls)
	}
	if d < time.Millisecond/2 {
		t.Errorf("median = %v", d)
	}
	if _, err := MedianOf(0, func() error { return nil }); err != nil {
		t.Error("samples=0 should clamp to 1")
	}
}

func TestFormatTableAndSpeedups(t *testing.T) {
	rs := &ResultSet{}
	rs.Add(Result{Benchmark: "Sync", Impl: "ThinLock", Elapsed: time.Second, Ops: 1_000_000})
	rs.Add(Result{Benchmark: "Sync", Impl: "JDK111", Elapsed: 4 * time.Second, Ops: 1_000_000})
	table := FormatTable(rs, "Figure 4")
	for _, want := range []string{"Figure 4", "ThinLock", "JDK111", "Sync", "1000.0", "4000.0"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	sp := FormatSpeedups(rs, "JDK111", "Figure 5")
	if !strings.Contains(sp, "4.00x") {
		t.Errorf("speedups missing 4.00x:\n%s", sp)
	}
	if strings.Contains(strings.Split(sp, "\n")[1], "JDK111") {
		t.Error("baseline column not suppressed")
	}
}

func TestFormatMacroTable(t *testing.T) {
	rs := &ResultSet{}
	rs.Add(Result{Benchmark: "crema", Impl: "ThinLock", Elapsed: 1500 * time.Millisecond, Ops: 1})
	out := FormatMacroTable(rs, "Figure 5 raw times")
	for _, want := range []string{"Figure 5", "crema", "1500.0", "ms per run"} {
		if !strings.Contains(out, want) {
			t.Errorf("macro table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatKernelList(t *testing.T) {
	s := FormatKernelList()
	for _, k := range Kernels() {
		if !strings.Contains(s, k.Name) {
			t.Errorf("kernel list missing %s", k.Name)
		}
	}
}

func TestPredict(t *testing.T) {
	fast := Result{Elapsed: 1 * time.Second, Ops: 1_000_000}   // 1000 ns/op
	slow := Result{Elapsed: 36 * time.Second, Ops: 10_000_000} // 3600 ns/op
	// 2.6 us/op difference over 2.4M ops = 6.24 s.
	got := Predict(fast, slow, 2_400_000)
	if got < 6.23 || got > 6.25 {
		t.Errorf("Predict = %f, want ~6.24", got)
	}
}

func TestRunFigure4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full kernel × impl matrix")
	}
	cfg := Figure4Config{
		Iters:          2_000,
		Samples:        1,
		MultiSyncSizes: []int{1, 64},
		ThreadCounts:   []int{2},
	}
	var lines []string
	rs, err := RunFigure4(cfg, func(s string) { lines = append(lines, s) })
	if err != nil {
		t.Fatal(err)
	}
	// 6 fixed kernels + 2 multisync + 1 threads = 9 per impl.
	want := 9 * len(StandardImpls())
	if len(rs.Results) != want {
		t.Errorf("results = %d, want %d", len(rs.Results), want)
	}
	if len(lines) != want {
		t.Errorf("progress lines = %d, want %d", len(lines), want)
	}
}

func TestRunFigure6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full variant matrix")
	}
	cfg := Figure6Config{Iters: 1_000, Samples: 1, Threads: 2}
	rs, err := RunFigure6(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every variant × 3 kernels + (all but NOP) × Threads.
	n := len(VariantImpls())
	if want := n*3 + (n - 1); len(rs.Results) != want {
		t.Errorf("results = %d, want %d", len(rs.Results), want)
	}
	if _, ok := rs.Get("Threads", "NOP", 2); ok {
		t.Error("NOP must be excluded from Threads")
	}
}

func TestDefaultConfigs(t *testing.T) {
	f4 := DefaultFigure4Config()
	if f4.Iters != 1_000_000 || f4.Samples != Samples || len(f4.MultiSyncSizes) == 0 || len(f4.ThreadCounts) == 0 {
		t.Errorf("Figure4 defaults: %+v", f4)
	}
	f5 := DefaultFigure5Config()
	if f5.SizeScale != 1 || f5.Samples != Samples {
		t.Errorf("Figure5 defaults: %+v", f5)
	}
	f6 := DefaultFigure6Config()
	if f6.Iters != 1_000_000 || f6.Threads != 4 {
		t.Errorf("Figure6 defaults: %+v", f6)
	}
}

func TestMicroLockerAccessor(t *testing.T) {
	l := StandardImpls()[0].New()
	m, err := NewMicro(l)
	if err != nil {
		t.Fatal(err)
	}
	if m.Locker() != l {
		t.Error("Locker accessor mismatch")
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup(StandardImpls(), "IBM112"); !ok {
		t.Error("IBM112 missing")
	}
	if _, ok := Lookup(StandardImpls(), "nope"); ok {
		t.Error("phantom factory found")
	}
}

func TestSyncOnReusedTargetStaysCorrect(t *testing.T) {
	m, err := NewMicro(StandardImpls()[1].New()) // IBM112
	if err != nil {
		t.Fatal(err)
	}
	o, err := m.NewTarget()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := m.SyncOn(o, 1_000); err != nil {
			t.Fatal(err)
		}
	}
}
