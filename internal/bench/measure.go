package bench

import (
	"fmt"
	"sort"
	"time"
)

// Samples is how many times each measurement is repeated; the paper
// reports "the median of 10 sample runs" (§3). Commands may lower this
// for quick runs.
const Samples = 10

// Measure times fn once.
func Measure(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// MedianOf runs fn samples times and returns the median duration,
// mirroring the paper's methodology.
func MedianOf(samples int, fn func() error) (time.Duration, error) {
	if samples < 1 {
		samples = 1
	}
	ds := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		d, err := Measure(fn)
		if err != nil {
			return 0, err
		}
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2], nil
}

// Result is one (benchmark, implementation) measurement.
type Result struct {
	Benchmark string
	Impl      string
	// Param is the sweep parameter (working-set size n, thread count),
	// 0 when the benchmark has none.
	Param int
	// Elapsed is the median wall-clock time for Ops operations.
	Elapsed time.Duration
	// Ops is the number of benchmark operations performed.
	Ops int64
}

// NsPerOp returns nanoseconds per operation.
func (r Result) NsPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Elapsed.Nanoseconds()) / float64(r.Ops)
}

// MsPerMillion scales to milliseconds per million operations, the unit
// of the paper's Figure 4 bars (which plot ms for 10^6-iteration loops).
func (r Result) MsPerMillion() float64 { return r.NsPerOp() }

// Key identifies the measurement in tables.
func (r Result) Key() string {
	if r.Param != 0 {
		return fmt.Sprintf("%s %d", r.Benchmark, r.Param)
	}
	return r.Benchmark
}

// Speedup returns how many times faster r is than baseline (>1 means r
// wins).
func (r Result) Speedup(baseline Result) float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(baseline.Elapsed) / float64(r.Elapsed)
}

// ResultSet accumulates results and answers table queries.
type ResultSet struct {
	Results []Result
}

// Add appends a result.
func (rs *ResultSet) Add(r Result) { rs.Results = append(rs.Results, r) }

// Get finds the result for (benchmark, impl, param).
func (rs *ResultSet) Get(benchmark, impl string, param int) (Result, bool) {
	for _, r := range rs.Results {
		if r.Benchmark == benchmark && r.Impl == impl && r.Param == param {
			return r, true
		}
	}
	return Result{}, false
}

// Benchmarks returns the distinct (benchmark, param) keys in insertion
// order.
func (rs *ResultSet) Benchmarks() []Result {
	var keys []Result
	seen := make(map[string]bool)
	for _, r := range rs.Results {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, r)
		}
	}
	return keys
}

// Impls returns the distinct implementation names in insertion order.
func (rs *ResultSet) Impls() []string {
	var impls []string
	seen := make(map[string]bool)
	for _, r := range rs.Results {
		if !seen[r.Impl] {
			seen[r.Impl] = true
			impls = append(impls, r.Impl)
		}
	}
	return impls
}
