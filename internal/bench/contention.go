package bench

import (
	"fmt"
	"sync"
	"time"

	"thinlock/internal/core"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// ContentionPolicy compares the paper's spin-with-back-off inflation
// (§2.3.4) against the queued-inflation extension on the case the paper
// itself flags as pathological: "when an object is locked by one thread
// and not released for a long time, during which time other threads are
// spinning on the object".
//
// Each round uses a fresh object: the owner acquires it, holds it for
// holdTime, and releases; contenders attempt the lock for the whole
// window and the round ends when all of them have acquired once (the
// first of them inflates the lock).

// ContentionPolicyResult reports one policy's behaviour.
type ContentionPolicyResult struct {
	Policy     string
	Elapsed    time.Duration
	SpinRounds uint64
	Parks      uint64
	Rounds     int
}

// String renders the result for reports.
func (r ContentionPolicyResult) String() string {
	return fmt.Sprintf("%-7s %12v  spin-pauses=%-9d parks=%d",
		r.Policy, r.Elapsed.Round(time.Microsecond), r.SpinRounds, r.Parks)
}

// RunContentionPolicy measures one policy (queued=false is the paper's
// spinning) over the given number of rounds.
func RunContentionPolicy(queued bool, rounds, contenders int, holdTime time.Duration) (ContentionPolicyResult, error) {
	l := core.New(core.Options{QueuedInflation: queued})
	heap := object.NewHeap()
	reg := threading.NewRegistry()
	owner, err := reg.Attach("owner")
	if err != nil {
		return ContentionPolicyResult{}, err
	}
	ths := make([]*threading.Thread, contenders)
	for i := range ths {
		if ths[i], err = reg.Attach("contender"); err != nil {
			return ContentionPolicyResult{}, err
		}
	}

	start := time.Now()
	for r := 0; r < rounds; r++ {
		o := heap.New("X")
		l.Lock(owner, o)
		var wg sync.WaitGroup
		for _, th := range ths {
			th := th
			wg.Add(1)
			go func() {
				defer wg.Done()
				l.Lock(th, o)
				if err := l.Unlock(th, o); err != nil {
					panic(err)
				}
			}()
		}
		time.Sleep(holdTime) // the long hold the paper warns about
		if err := l.Unlock(owner, o); err != nil {
			return ContentionPolicyResult{}, err
		}
		wg.Wait()
	}
	elapsed := time.Since(start)

	s := l.Stats()
	name := "spin"
	if queued {
		name = "queued"
	}
	return ContentionPolicyResult{
		Policy:     name,
		Elapsed:    elapsed,
		SpinRounds: s.SpinRounds,
		Parks:      s.QueuedParks,
		Rounds:     rounds,
	}, nil
}

// RunContentionPolicyComparison runs both policies and returns
// (spin, queued).
func RunContentionPolicyComparison(rounds, contenders int, holdTime time.Duration) (spin, queued ContentionPolicyResult, err error) {
	spin, err = RunContentionPolicy(false, rounds, contenders, holdTime)
	if err != nil {
		return
	}
	queued, err = RunContentionPolicy(true, rounds, contenders, holdTime)
	return
}
