package bench

import (
	"strings"
	"testing"

	"thinlock/internal/workloads"
)

func TestSpaceUsageShape(t *testing.T) {
	// crema churns many short-lived synchronized containers — the case
	// the paper's space argument targets.
	w, ok := workloads.ByName("crema")
	if !ok {
		t.Fatal("crema missing")
	}
	rows, err := SpaceUsage(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byImpl := make(map[string]SpaceRow)
	for _, r := range rows {
		byImpl[r.Impl] = r
	}

	thin := byImpl["ThinLock"]
	jdk := byImpl["JDK111"]
	ibm := byImpl["IBM112"]

	// Single-threaded: thin locks never inflate, so zero dedicated
	// storage — the paper's headline space result.
	if thin.Structures != 0 || thin.Bytes != 0 {
		t.Errorf("ThinLock used %d structures / %d bytes, want 0/0", thin.Structures, thin.Bytes)
	}
	// The baselines must hold real monitor populations.
	if jdk.Bytes == 0 || ibm.Bytes == 0 {
		t.Errorf("baseline footprints are zero: jdk=%d ibm=%d", jdk.Bytes, ibm.Bytes)
	}
	if thin.Bytes >= jdk.Bytes || thin.Bytes >= ibm.Bytes {
		t.Errorf("thin locks do not save space: thin=%d jdk=%d ibm=%d",
			thin.Bytes, jdk.Bytes, ibm.Bytes)
	}
	// All three saw the same workload.
	if thin.SyncedObjects == 0 || thin.SyncedObjects != jdk.SyncedObjects ||
		jdk.SyncedObjects != ibm.SyncedObjects {
		t.Errorf("synced-object counts diverge: %d/%d/%d",
			thin.SyncedObjects, jdk.SyncedObjects, ibm.SyncedObjects)
	}
}

func TestFormatSpace(t *testing.T) {
	w, _ := workloads.ByName("jnet")
	rows, err := SpaceUsage(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatSpace(map[string][]SpaceRow{"jnet": rows}, []string{"jnet"})
	for _, want := range []string{"jnet", "ThinLock", "JDK111", "IBM112", "bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
