package bench

import (
	"fmt"
	"sort"
	"time"
)

// KernelInfo describes one Table 2 micro-benchmark.
type KernelInfo struct {
	Name        string
	Description string
	// Swept marks kernels parameterized by a working-set or thread
	// count n.
	Swept bool
}

// Kernels returns the paper's Table 2 in order.
func Kernels() []KernelInfo {
	return []KernelInfo{
		{"NoSync", "No locking — reference benchmark", false},
		{"Sync", "Initial lock with a synchronized() statement", false},
		{"NestedSync", "Nested lock with a synchronized() statement", false},
		{"MixedSync", "Three nested locks of the same object per iteration (§3.5)", false},
		{"MultiSync", "Like Sync, but synchronizes n objects every iteration", true},
		{"Call", "Calls a non-synchronized method — reference benchmark", false},
		{"CallSync", "Calls a synchronized method to obtain an initial lock", false},
		{"NestedCallSync", "Calls a synchronized method to obtain a nested lock", false},
		{"Threads", "Initial locking performed concurrently by n competing threads", true},
	}
}

// dispatch runs the named kernel on m.
func dispatch(m *Micro, kernel string, param int, iters int64) error {
	switch kernel {
	case "NoSync":
		return m.NoSync(iters)
	case "Sync":
		return m.Sync(iters)
	case "NestedSync":
		return m.NestedSync(iters)
	case "MixedSync":
		return m.MixedSync(iters)
	case "MultiSync":
		return m.MultiSync(param, iters)
	case "Call":
		return m.Call(iters)
	case "CallSync":
		return m.CallSync(iters)
	case "NestedCallSync":
		return m.NestedCallSync(iters)
	case "Threads":
		per := iters / int64(param)
		if per == 0 {
			per = 1
		}
		return m.Threads(param, per)
	default:
		return fmt.Errorf("bench: unknown kernel %q", kernel)
	}
}

// RunKernel measures one kernel under one implementation. Each sample
// runs on a freshly constructed implementation instance (a fresh "JVM"),
// matching the paper's per-run methodology, and the median is reported.
func RunKernel(f Factory, kernel string, param int, iters int64, samples int) (Result, error) {
	if samples < 1 {
		samples = 1
	}
	ds := make([]time.Duration, 0, samples)
	for s := 0; s < samples; s++ {
		m, err := NewMicro(f.New())
		if err != nil {
			return Result{}, err
		}
		d, err := Measure(func() error { return dispatch(m, kernel, param, iters) })
		if err != nil {
			return Result{}, err
		}
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return Result{
		Benchmark: kernel,
		Impl:      f.Name,
		Param:     param,
		Elapsed:   ds[len(ds)/2],
		Ops:       iters,
	}, nil
}

// Figure4Config controls the Figure 4 sweep.
type Figure4Config struct {
	// Iters is the loop count per kernel (the paper uses 10^6-scale
	// loops).
	Iters int64
	// Samples per measurement (median reported).
	Samples int
	// MultiSyncSizes is the working-set sweep; the interesting
	// crossovers are around the hot-lock count (32) and the monitor
	// cache capacity.
	MultiSyncSizes []int
	// ThreadCounts is the contention sweep.
	ThreadCounts []int
}

// DefaultFigure4Config returns the sweep used by cmd/microbench.
func DefaultFigure4Config() Figure4Config {
	return Figure4Config{
		Iters:          1_000_000,
		Samples:        Samples,
		MultiSyncSizes: []int{1, 4, 16, 32, 64, 128, 256, 512, 1024},
		ThreadCounts:   []int{1, 2, 4, 8},
	}
}

// RunFigure4 produces the micro-benchmark comparison of Figure 4:
// every kernel under ThinLock, IBM112 and JDK111.
func RunFigure4(cfg Figure4Config, progress func(string)) (*ResultSet, error) {
	rs := &ResultSet{}
	note := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}
	for _, f := range StandardImpls() {
		for _, k := range []string{"NoSync", "Sync", "NestedSync", "Call", "CallSync", "NestedCallSync"} {
			note("%s / %s", f.Name, k)
			r, err := RunKernel(f, k, 0, cfg.Iters, cfg.Samples)
			if err != nil {
				return nil, err
			}
			rs.Add(r)
		}
		for _, n := range cfg.MultiSyncSizes {
			note("%s / MultiSync %d", f.Name, n)
			r, err := RunKernel(f, "MultiSync", n, cfg.Iters, cfg.Samples)
			if err != nil {
				return nil, err
			}
			rs.Add(r)
		}
		for _, n := range cfg.ThreadCounts {
			note("%s / Threads %d", f.Name, n)
			r, err := RunKernel(f, "Threads", n, cfg.Iters, cfg.Samples)
			if err != nil {
				return nil, err
			}
			rs.Add(r)
		}
	}
	return rs, nil
}

// Figure6Config controls the implementation-variant study.
type Figure6Config struct {
	Iters   int64
	Samples int
	// Threads is the contention level for the Threads column.
	Threads int
}

// DefaultFigure6Config returns the sweep used by cmd/tradeoffs.
func DefaultFigure6Config() Figure6Config {
	return Figure6Config{Iters: 1_000_000, Samples: Samples, Threads: 4}
}

// RunFigure6 produces the Figure 6 variant study: Sync, MixedSync,
// CallSync and Threads under each thin-lock code-path variant (plus the
// IBM112 reference). The NOP variant is excluded from the Threads column
// because without locking the benchmark would race, just as the paper
// could not collect NOP results for Threads ("the Java VM was unable to
// initialize itself properly").
func RunFigure6(cfg Figure6Config, progress func(string)) (*ResultSet, error) {
	rs := &ResultSet{}
	for _, f := range VariantImpls() {
		for _, k := range []string{"Sync", "MixedSync", "CallSync"} {
			if progress != nil {
				progress(fmt.Sprintf("%s / %s", f.Name, k))
			}
			r, err := RunKernel(f, k, 0, cfg.Iters, cfg.Samples)
			if err != nil {
				return nil, err
			}
			rs.Add(r)
		}
		if f.Name == "NOP" {
			continue
		}
		if progress != nil {
			progress(fmt.Sprintf("%s / Threads %d", f.Name, cfg.Threads))
		}
		r, err := RunKernel(f, "Threads", cfg.Threads, cfg.Iters, cfg.Samples)
		if err != nil {
			return nil, err
		}
		rs.Add(r)
	}
	return rs, nil
}
