package bench

import (
	"fmt"
	"strings"
)

// FormatTable renders a ResultSet as a fixed-width text table: one row
// per benchmark, one column per implementation, values in ms per million
// operations (the unit of the paper's Figure 4 bars).
func FormatTable(rs *ResultSet, title string) string {
	var b strings.Builder
	impls := rs.Impls()
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-20s", "benchmark")
	for _, impl := range impls {
		fmt.Fprintf(&b, "%14s", impl)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 20+14*len(impls)))
	b.WriteByte('\n')
	for _, key := range rs.Benchmarks() {
		fmt.Fprintf(&b, "%-20s", key.Key())
		for _, impl := range impls {
			if r, ok := rs.Get(key.Benchmark, impl, key.Param); ok {
				fmt.Fprintf(&b, "%14.1f", r.MsPerMillion())
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("(ms per 10^6 operations; lower is better)\n")
	return b.String()
}

// FormatMacroTable renders whole-run results (Ops == 1) in milliseconds
// per run.
func FormatMacroTable(rs *ResultSet, title string) string {
	var b strings.Builder
	impls := rs.Impls()
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-20s", "benchmark")
	for _, impl := range impls {
		fmt.Fprintf(&b, "%14s", impl)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 20+14*len(impls)))
	b.WriteByte('\n')
	for _, key := range rs.Benchmarks() {
		fmt.Fprintf(&b, "%-20s", key.Key())
		for _, impl := range impls {
			if r, ok := rs.Get(key.Benchmark, impl, key.Param); ok {
				fmt.Fprintf(&b, "%14.1f", float64(r.Elapsed.Microseconds())/1000)
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("(ms per run; lower is better)\n")
	return b.String()
}

// FormatSpeedups renders each implementation's speedup over the named
// baseline, the form of the paper's Figure 5 bars (speedup over JDK111).
func FormatSpeedups(rs *ResultSet, baseline, title string) string {
	var b strings.Builder
	impls := rs.Impls()
	fmt.Fprintf(&b, "%s (speedup over %s; >1 is faster)\n", title, baseline)
	fmt.Fprintf(&b, "%-20s", "benchmark")
	for _, impl := range impls {
		if impl == baseline {
			continue
		}
		fmt.Fprintf(&b, "%14s", impl)
	}
	b.WriteByte('\n')
	for _, key := range rs.Benchmarks() {
		base, ok := rs.Get(key.Benchmark, baseline, key.Param)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-20s", key.Key())
		for _, impl := range impls {
			if impl == baseline {
				continue
			}
			if r, ok := rs.Get(key.Benchmark, impl, key.Param); ok {
				fmt.Fprintf(&b, "%13.2fx", r.Speedup(base))
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatKernelList renders Table 2.
func FormatKernelList() string {
	var b strings.Builder
	b.WriteString("Table 2: Micro-Benchmarks\n")
	for _, k := range Kernels() {
		name := k.Name
		if k.Swept {
			name += " n"
		}
		fmt.Fprintf(&b, "  %-16s %s\n", name, k.Description)
	}
	return b.String()
}

// Predict implements the paper's §3.4 cross-check: from a micro-benchmark
// cost difference and an operation count, predict the absolute time saved
// on a macro run. The paper predicts 6.5s of javalex speedup from 2.4M
// synchronized calls at 2.7s per million, against 6.6s measured.
func Predict(fast, slow Result, operations int64) float64 {
	perOpNs := slow.NsPerOp() - fast.NsPerOp()
	return perOpNs * float64(operations) / 1e9 // seconds
}
