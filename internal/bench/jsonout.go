package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// JSONResult is one (implementation, parameter) timing inside a bench
// JSON file.
type JSONResult struct {
	Impl      string  `json:"impl"`
	Param     int     `json:"param,omitempty"`
	NsPerOp   float64 `json:"ns_per_op"`
	ElapsedNs int64   `json:"elapsed_ns"`
	Ops       int64   `json:"ops"`
}

// JSONFile is the schema of results/bench_<workload>.json: every
// implementation's timing for one workload plus enough metadata to make
// two files comparable (cmd/benchdiff refuses nothing — it matches on
// workload/impl/param — but records the provenance it finds here).
type JSONFile struct {
	Workload  string       `json:"workload"`
	Size      int          `json:"size,omitempty"`
	Samples   int          `json:"samples,omitempty"`
	GitRev    string       `json:"git_rev,omitempty"`
	Timestamp string       `json:"timestamp,omitempty"`
	Results   []JSONResult `json:"results"`
}

// GitRev returns the current short commit hash, or "" when the tree is
// not a git checkout (results stay usable either way).
func GitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// JSONFiles groups a result set into per-workload JSON documents,
// sorted by workload then implementation for stable output.
func JSONFiles(rs *ResultSet, samples int, sizeOf func(workload string) int) []JSONFile {
	byWorkload := make(map[string]*JSONFile)
	var order []string
	rev := GitRev()
	now := time.Now().UTC().Format(time.RFC3339)
	for _, r := range rs.Results {
		f, ok := byWorkload[r.Benchmark]
		if !ok {
			f = &JSONFile{
				Workload:  r.Benchmark,
				Samples:   samples,
				GitRev:    rev,
				Timestamp: now,
			}
			if sizeOf != nil {
				f.Size = sizeOf(r.Benchmark)
			}
			byWorkload[r.Benchmark] = f
			order = append(order, r.Benchmark)
		}
		f.Results = append(f.Results, JSONResult{
			Impl:      r.Impl,
			Param:     r.Param,
			NsPerOp:   r.NsPerOp(),
			ElapsedNs: r.Elapsed.Nanoseconds(),
			Ops:       r.Ops,
		})
	}
	sort.Strings(order)
	out := make([]JSONFile, 0, len(order))
	for _, name := range order {
		f := byWorkload[name]
		sort.Slice(f.Results, func(i, j int) bool {
			if f.Results[i].Impl != f.Results[j].Impl {
				return f.Results[i].Impl < f.Results[j].Impl
			}
			return f.Results[i].Param < f.Results[j].Param
		})
		out = append(out, *f)
	}
	return out
}

// WriteJSONResults writes one bench_<workload>.json per workload in rs
// into dir (created if absent) and returns the paths written.
func WriteJSONResults(dir string, rs *ResultSet, samples int, sizeOf func(workload string) int) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, f := range JSONFiles(rs, samples, sizeOf) {
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, fmt.Sprintf("bench_%s.json", f.Workload))
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
