// Package bench implements the paper's benchmark harness: the Table 2
// micro-benchmark kernels (as bytecode programs run on the internal VM,
// as in the paper's instrumented interpreter), the implementation
// factories compared in Figures 4 and 6, wall-clock measurement, and the
// report formatters that regenerate the paper's tables and figures.
package bench

import (
	"fmt"
	"sync"

	"thinlock/internal/lockapi"
	"thinlock/internal/object"
	"thinlock/internal/threading"
	"thinlock/internal/vm"
)

// Micro hosts the Table 2 micro-benchmark kernels over one lock
// implementation. Each kernel "runs a tight loop for a specified number
// of iterations; inside the loop an integer variable is incremented. The
// benchmarks differ in what occurs between the outer loop and the inner
// variable update." (§3.3)
type Micro struct {
	vm     *vm.VM
	locker lockapi.Locker
	reg    *threading.Registry
	main   *threading.Thread
}

// Kernel method names inside the Micro program.
const (
	kernelNoSync         = "noSync"
	kernelSync           = "sync"
	kernelNestedSync     = "nestedSync"
	kernelMixedSync      = "mixedSync"
	kernelMultiSync      = "multiSync"
	kernelCall           = "call"
	kernelCallSync       = "callSync"
	kernelNestedCallSync = "nestedCallSync"
)

// NewMicro builds the kernel program and a VM over the given locker.
func NewMicro(locker lockapi.Locker) (*Micro, error) {
	prog := buildMicroProgram()
	machine, err := vm.New(prog, locker, object.NewHeap())
	if err != nil {
		return nil, err
	}
	reg := threading.NewRegistry()
	main, err := reg.Attach("bench-main")
	if err != nil {
		return nil, err
	}
	return &Micro{vm: machine, locker: locker, reg: reg, main: main}, nil
}

// Locker returns the implementation under test.
func (m *Micro) Locker() lockapi.Locker { return m.locker }

// buildMicroProgram assembles every kernel.
func buildMicroProgram() *vm.Program {
	p := vm.NewProgram()
	target := &vm.Class{Name: "Target", NumFields: 1}
	p.AddClass(target)

	// Target.get: the plain method Call invokes. Mirrors a trivial
	// accessor like BitSet.get without its synchronized block.
	getIdx := p.AddMethod(&vm.Method{
		Name: "get", Class: target, Flags: vm.FlagReturnsValue,
		NumArgs: 1, MaxLocals: 1,
		Code: vm.NewAsm().
			Aload(0).GetField(0).
			IReturn().
			MustBuild(),
	})

	// Target.getSync: the synchronized accessor CallSync invokes.
	getSyncIdx := p.AddMethod(&vm.Method{
		Name: "getSync", Class: target, Flags: vm.FlagSync | vm.FlagReturnsValue,
		NumArgs: 1, MaxLocals: 1,
		Code: vm.NewAsm().
			Aload(0).GetField(0).
			IReturn().
			MustBuild(),
	})

	// noSync(limit): reference loop. locals: 0=limit 1=i 2=x
	p.AddMethod(&vm.Method{
		Name: kernelNoSync, Flags: vm.FlagStatic | vm.FlagReturnsValue,
		NumArgs: 1, MaxLocals: 3,
		Code: vm.NewAsm().
			Iconst(0).Istore(1).
			Label("loop").
			Iload(1).Iload(0).IfICmpGE("done").
			Iinc(2, 1).
			Iinc(1, 1).
			Goto("loop").
			Label("done").
			Iload(2).IReturn().
			MustBuild(),
	})

	// sync(obj, limit): synchronized block per iteration.
	// locals: 0=obj 1=limit 2=i 3=x
	p.AddMethod(&vm.Method{
		Name: kernelSync, Flags: vm.FlagStatic | vm.FlagReturnsValue,
		NumArgs: 2, MaxLocals: 4,
		Code: vm.NewAsm().
			Iconst(0).Istore(2).
			Label("loop").
			Iload(2).Iload(1).IfICmpGE("done").
			Aload(0).MonitorEnter().
			Iinc(3, 1).
			Aload(0).MonitorExit().
			Iinc(2, 1).
			Goto("loop").
			Label("done").
			Iload(3).IReturn().
			MustBuild(),
	})

	// nestedSync(obj, limit): "the object is locked outside of the
	// loop, so that it measures the cost of nested locking (at level
	// 1)".
	p.AddMethod(&vm.Method{
		Name: kernelNestedSync, Flags: vm.FlagStatic | vm.FlagReturnsValue,
		NumArgs: 2, MaxLocals: 4,
		Code: vm.NewAsm().
			Aload(0).MonitorEnter().
			Iconst(0).Istore(2).
			Label("loop").
			Iload(2).Iload(1).IfICmpGE("done").
			Aload(0).MonitorEnter().
			Iinc(3, 1).
			Aload(0).MonitorExit().
			Iinc(2, 1).
			Goto("loop").
			Label("done").
			Aload(0).MonitorExit().
			Iload(3).IReturn().
			MustBuild(),
	})

	// mixedSync(obj, limit): "a cross between Sync and NestedSync — it
	// performs three nested locks of the same object on every
	// iteration" (§3.5).
	p.AddMethod(&vm.Method{
		Name: kernelMixedSync, Flags: vm.FlagStatic | vm.FlagReturnsValue,
		NumArgs: 2, MaxLocals: 4,
		Code: vm.NewAsm().
			Iconst(0).Istore(2).
			Label("loop").
			Iload(2).Iload(1).IfICmpGE("done").
			Aload(0).MonitorEnter().
			Aload(0).MonitorEnter().
			Aload(0).MonitorEnter().
			Iinc(3, 1).
			Aload(0).MonitorExit().
			Aload(0).MonitorExit().
			Aload(0).MonitorExit().
			Iinc(2, 1).
			Goto("loop").
			Label("done").
			Iload(3).IReturn().
			MustBuild(),
	})

	// multiSync(arr, n, limit): "Like Sync, but synchronizes n objects
	// every iteration. It is designed to simulate the effects of
	// various working sets of locks."
	// locals: 0=arr 1=n 2=limit 3=i 4=j 5=x 6=obj
	p.AddMethod(&vm.Method{
		Name: kernelMultiSync, Flags: vm.FlagStatic | vm.FlagReturnsValue,
		NumArgs: 3, MaxLocals: 7,
		Code: vm.NewAsm().
			Iconst(0).Istore(3).
			Label("outer").
			Iload(3).Iload(2).IfICmpGE("done").
			Iconst(0).Istore(4).
			Label("inner").
			Iload(4).Iload(1).IfICmpGE("next").
			Aload(0).Iload(4).ALoadIdx().Astore(6).
			Aload(6).MonitorEnter().
			Iinc(5, 1).
			Aload(6).MonitorExit().
			Iinc(4, 1).
			Goto("inner").
			Label("next").
			Iinc(3, 1).
			Goto("outer").
			Label("done").
			Iload(5).IReturn().
			MustBuild(),
	})

	// call(obj, limit): invokes the plain method — reference benchmark
	// for the Call* pair.
	p.AddMethod(&vm.Method{
		Name: kernelCall, Flags: vm.FlagStatic | vm.FlagReturnsValue,
		NumArgs: 2, MaxLocals: 4,
		Code: vm.NewAsm().
			Iconst(0).Istore(2).
			Label("loop").
			Iload(2).Iload(1).IfICmpGE("done").
			Aload(0).Invoke(int32(getIdx)).Pop().
			Iinc(2, 1).
			Goto("loop").
			Label("done").
			Iload(3).IReturn().
			MustBuild(),
	})

	// callSync(obj, limit): invokes the synchronized method.
	p.AddMethod(&vm.Method{
		Name: kernelCallSync, Flags: vm.FlagStatic | vm.FlagReturnsValue,
		NumArgs: 2, MaxLocals: 4,
		Code: vm.NewAsm().
			Iconst(0).Istore(2).
			Label("loop").
			Iload(2).Iload(1).IfICmpGE("done").
			Aload(0).Invoke(int32(getSyncIdx)).Pop().
			Iinc(2, 1).
			Goto("loop").
			Label("done").
			Iload(3).IReturn().
			MustBuild(),
	})

	// nestedCallSync(obj, limit): holds the lock across the loop so each
	// synchronized call is a nested acquisition.
	p.AddMethod(&vm.Method{
		Name: kernelNestedCallSync, Flags: vm.FlagStatic | vm.FlagReturnsValue,
		NumArgs: 2, MaxLocals: 4,
		Code: vm.NewAsm().
			Aload(0).MonitorEnter().
			Iconst(0).Istore(2).
			Label("loop").
			Iload(2).Iload(1).IfICmpGE("done").
			Aload(0).Invoke(int32(getSyncIdx)).Pop().
			Iinc(2, 1).
			Goto("loop").
			Label("done").
			Aload(0).MonitorExit().
			Iload(3).IReturn().
			MustBuild(),
	})

	return p
}

// NoSync runs the reference loop.
func (m *Micro) NoSync(iters int64) error {
	_, err := m.vm.Run(m.main, kernelNoSync, vm.IntValue(iters))
	return err
}

// Sync runs the initial-locking kernel on a fresh object.
func (m *Micro) Sync(iters int64) error {
	o, err := m.vm.NewInstance("Target")
	if err != nil {
		return err
	}
	return m.SyncOn(o, iters)
}

// SyncOn runs the initial-locking kernel on the given object (reusing an
// object keeps a hot-locks implementation hot across calls).
func (m *Micro) SyncOn(o *vm.Obj, iters int64) error {
	_, err := m.vm.Run(m.main, kernelSync, vm.RefValue(o), vm.IntValue(iters))
	return err
}

// NewTarget allocates a kernel object for reuse across runs.
func (m *Micro) NewTarget() (*vm.Obj, error) { return m.vm.NewInstance("Target") }

// NestedSync runs the nested-locking kernel.
func (m *Micro) NestedSync(iters int64) error {
	o, err := m.vm.NewInstance("Target")
	if err != nil {
		return err
	}
	_, err = m.vm.Run(m.main, kernelNestedSync, vm.RefValue(o), vm.IntValue(iters))
	return err
}

// MixedSync runs the three-nested-locks kernel of §3.5.
func (m *Micro) MixedSync(iters int64) error {
	o, err := m.vm.NewInstance("Target")
	if err != nil {
		return err
	}
	_, err = m.vm.Run(m.main, kernelMixedSync, vm.RefValue(o), vm.IntValue(iters))
	return err
}

// MultiSync synchronizes a working set of n objects every iteration,
// performing iters lock operations in total.
func (m *Micro) MultiSync(n int, iters int64) error {
	arr := m.vm.NewArray(n)
	for i := 0; i < n; i++ {
		o, err := m.vm.NewInstance("Target")
		if err != nil {
			return err
		}
		arr.Fields[i] = vm.RefValue(o)
	}
	outer := iters / int64(n)
	if outer == 0 {
		outer = 1
	}
	_, err := m.vm.Run(m.main, kernelMultiSync,
		vm.RefValue(arr), vm.IntValue(int64(n)), vm.IntValue(outer))
	return err
}

// Call runs the plain-method-call reference kernel.
func (m *Micro) Call(iters int64) error {
	o, err := m.vm.NewInstance("Target")
	if err != nil {
		return err
	}
	_, err = m.vm.Run(m.main, kernelCall, vm.RefValue(o), vm.IntValue(iters))
	return err
}

// CallSync runs the synchronized-method-call kernel.
func (m *Micro) CallSync(iters int64) error {
	o, err := m.vm.NewInstance("Target")
	if err != nil {
		return err
	}
	_, err = m.vm.Run(m.main, kernelCallSync, vm.RefValue(o), vm.IntValue(iters))
	return err
}

// NestedCallSync runs the nested synchronized-method-call kernel.
func (m *Micro) NestedCallSync(iters int64) error {
	o, err := m.vm.NewInstance("Target")
	if err != nil {
		return err
	}
	_, err = m.vm.Run(m.main, kernelNestedCallSync, vm.RefValue(o), vm.IntValue(iters))
	return err
}

// Threads spawns n threads that each run the Sync kernel itersPerThread
// times on the same shared object: "Initial locking performed
// concurrently by n competing threads" (Table 2). Under thin locks this
// inflates the shared object's lock.
func (m *Micro) Threads(n int, itersPerThread int64) error {
	o, err := m.vm.NewInstance("Target")
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		th, err := m.reg.Attach(fmt.Sprintf("bench-%d", i))
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, th *threading.Thread) {
			defer wg.Done()
			defer m.reg.Detach(th)
			_, errs[i] = m.vm.Run(th, kernelSync, vm.RefValue(o), vm.IntValue(itersPerThread))
		}(i, th)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
