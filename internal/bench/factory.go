package bench

import (
	"thinlock/internal/biased"
	"thinlock/internal/core"
	"thinlock/internal/hotlocks"
	"thinlock/internal/lockapi"
	"thinlock/internal/monitorcache"
)

// Factory names and constructs one lock implementation configuration.
type Factory struct {
	// Name is the label used in reports ("ThinLock", "JDK111", ...).
	Name string
	// New constructs a fresh instance; benchmarks never share state
	// between runs.
	New func() lockapi.Locker
}

// StandardImpls returns the implementations compared throughout the
// paper's evaluation (Figures 4 and 5) — ThinLock, IBM112 and JDK111 —
// plus the biased-reservation and compact-monitor follow-on designs.
// The extensions are appended after the paper's trio: reports and tests
// index the trio by position.
func StandardImpls() []Factory {
	return []Factory{
		{Name: "ThinLock", New: func() lockapi.Locker { return core.NewDefault() }},
		{Name: "IBM112", New: func() lockapi.Locker { return hotlocks.NewDefault() }},
		{Name: "JDK111", New: func() lockapi.Locker { return monitorcache.NewDefault() }},
		{Name: "Biased", New: func() lockapi.Locker { return biased.NewDefault() }},
		{Name: "ThinLock-compact", New: func() lockapi.Locker { return core.New(core.Options{RecycleMonitors: true}) }},
	}
}

// VariantImpls returns the Figure 6 implementation-variant ladder, from
// the NOP "speed of light" to the UnlkC&S pessimization, with the IBM112
// reference the paper plots alongside them.
func VariantImpls() []Factory {
	mk := func(v core.Variant) func() lockapi.Locker {
		return func() lockapi.Locker { return core.New(core.Options{Variant: v}) }
	}
	return []Factory{
		{Name: "NOP", New: mk(core.VariantNOP)},
		{Name: "Inline", New: mk(core.VariantInline)},
		{Name: "FnCall", New: mk(core.VariantFnCall)},
		{Name: "MP Sync", New: mk(core.VariantMPSync)},
		{Name: "ThinLock", New: mk(core.VariantStandard)},
		{Name: "KernelC&S", New: mk(core.VariantKernelCAS)},
		{Name: "UnlkC&S", New: mk(core.VariantUnlockCAS)},
		{Name: "IBM112", New: func() lockapi.Locker { return hotlocks.NewDefault() }},
		{Name: "Biased", New: func() lockapi.Locker { return biased.NewDefault() }},
		{Name: "Biased-off", New: func() lockapi.Locker { return biased.New(biased.Options{DisableBias: true}) }},
	}
}

// Names returns the factory names in order; CLI help text derives its
// implementation lists from this so it cannot drift from Lookup.
func Names(fs []Factory) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name
	}
	return out
}

// Lookup returns the named factory from fs, or false.
func Lookup(fs []Factory, name string) (Factory, bool) {
	for _, f := range fs {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}
