package bench

import (
	"thinlock/internal/core"
	"thinlock/internal/hotlocks"
	"thinlock/internal/lockapi"
	"thinlock/internal/monitorcache"
)

// Factory names and constructs one lock implementation configuration.
type Factory struct {
	// Name is the label used in reports ("ThinLock", "JDK111", ...).
	Name string
	// New constructs a fresh instance; benchmarks never share state
	// between runs.
	New func() lockapi.Locker
}

// StandardImpls returns the three implementations compared throughout
// the paper's evaluation (Figures 4 and 5): ThinLock, IBM112 and JDK111.
func StandardImpls() []Factory {
	return []Factory{
		{Name: "ThinLock", New: func() lockapi.Locker { return core.NewDefault() }},
		{Name: "IBM112", New: func() lockapi.Locker { return hotlocks.NewDefault() }},
		{Name: "JDK111", New: func() lockapi.Locker { return monitorcache.NewDefault() }},
	}
}

// VariantImpls returns the Figure 6 implementation-variant ladder, from
// the NOP "speed of light" to the UnlkC&S pessimization, with the IBM112
// reference the paper plots alongside them.
func VariantImpls() []Factory {
	mk := func(v core.Variant) func() lockapi.Locker {
		return func() lockapi.Locker { return core.New(core.Options{Variant: v}) }
	}
	return []Factory{
		{Name: "NOP", New: mk(core.VariantNOP)},
		{Name: "Inline", New: mk(core.VariantInline)},
		{Name: "FnCall", New: mk(core.VariantFnCall)},
		{Name: "MP Sync", New: mk(core.VariantMPSync)},
		{Name: "ThinLock", New: mk(core.VariantStandard)},
		{Name: "KernelC&S", New: mk(core.VariantKernelCAS)},
		{Name: "UnlkC&S", New: mk(core.VariantUnlockCAS)},
		{Name: "IBM112", New: func() lockapi.Locker { return hotlocks.NewDefault() }},
	}
}

// Lookup returns the named factory from fs, or false.
func Lookup(fs []Factory, name string) (Factory, bool) {
	for _, f := range fs {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}
