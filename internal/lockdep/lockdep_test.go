package lockdep_test

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"thinlock/internal/lockdep"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// fixture holds a fresh Lockdep (not globally installed — these tests
// drive its methods directly), some threads and some objects.
type fixture struct {
	d    *lockdep.Lockdep
	heap *object.Heap
	reg  *threading.Registry
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	return &fixture{
		d:    lockdep.New(lockdep.Config{}),
		heap: object.NewHeap(),
		reg:  threading.NewRegistry(),
	}
}

func (f *fixture) thread(t testing.TB, name string) *threading.Thread {
	t.Helper()
	th, err := f.reg.Attach(name)
	if err != nil {
		t.Fatal(err)
	}
	return th
}

// lockPair acquires a then b and releases both, in one call so both
// acquisitions share a Go call site.
func lockPair(d *lockdep.Lockdep, th *threading.Thread, a, b *object.Object) {
	d.Acquired(th, a)
	d.Acquired(th, b)
	d.Released(th, b)
	d.Released(th, a)
}

func TestABBAInversionFlagged(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	t1, t2 := f.thread(t, "alpha"), f.thread(t, "beta")
	a, b := f.heap.New("Account"), f.heap.New("Account")

	lockPair(f.d, t1, a, b) // establishes a -> b
	if got := f.d.Inversions(); len(got) != 0 {
		t.Fatalf("inversions after one order = %d, want 0", len(got))
	}
	lockPair(f.d, t2, b, a) // inverse order: must be flagged immediately
	reps := f.d.Inversions()
	if len(reps) != 1 {
		t.Fatalf("inversions = %d, want 1", len(reps))
	}
	r := reps[0]
	if len(r.Cycle) != 2 {
		t.Fatalf("cycle length = %d, want 2", len(r.Cycle))
	}
	s := r.String()
	if !strings.Contains(s, "lock-order inversion") || !strings.Contains(s, "potential deadlock") {
		t.Errorf("report string %q missing expected phrasing", s)
	}
	for _, want := range []string{a.String(), b.String(), "alpha#", "beta#"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q does not mention %q", s, want)
		}
	}
	// The same cycle must not be reported twice.
	lockPair(f.d, t2, b, a)
	if got := f.d.Inversions(); len(got) != 1 {
		t.Errorf("duplicate cycle re-reported: inversions = %d, want 1", len(got))
	}
}

// A single transfer(x, y) site called with swapped arguments is the
// classic ABBA that site-keyed tracking cannot see. The graph is keyed
// by object, so it must be flagged even though every acquisition shares
// one VM site.
func TestSwappedArgumentsThroughOneSiteAreFlagged(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	t1, t2 := f.thread(t, "alpha"), f.thread(t, "beta")
	a, b := f.heap.New("Account"), f.heap.New("Account")

	t1.PublishFrame("Bank.transfer", 42)
	lockPair(f.d, t1, a, b)
	t1.ClearFrame()

	t2.PublishFrame("Bank.transfer", 42)
	lockPair(f.d, t2, b, a)
	t2.ClearFrame()

	reps := f.d.Inversions()
	if len(reps) != 1 {
		t.Fatalf("swapped-argument ABBA through one site not flagged: inversions = %d, want 1", len(reps))
	}
	if !strings.Contains(reps[0].String(), "Bank.transfer @42") {
		t.Errorf("report %q does not carry the VM site", reps[0])
	}
}

func TestConsistentOrderIsNotFlagged(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	objs := make([]*object.Object, 6)
	for i := range objs {
		objs[i] = f.heap.New("Row")
	}
	for _, name := range []string{"w1", "w2", "w3"} {
		th := f.thread(t, name)
		// Each thread acquires ascending runs of the same objects.
		for lo := 0; lo < len(objs); lo++ {
			for hi := lo; hi < len(objs); hi++ {
				f.d.Acquired(th, objs[hi])
			}
			for hi := len(objs) - 1; hi >= lo; hi-- {
				f.d.Released(th, objs[hi])
			}
		}
	}
	st := f.d.Stats()
	if st.Inversions != 0 {
		t.Fatalf("consistent global order produced %d inversions", st.Inversions)
	}
	if st.Edges == 0 || st.Nodes != len(objs) {
		t.Errorf("graph did not record the order: %+v", st)
	}
}

// One thread taking a then b, and later b then a, establishes both
// orders itself — that cannot deadlock and must be suppressed. But the
// moment a second thread contributes to either edge, the cycle becomes
// a real hazard and must surface.
func TestSingleThreadCycleSuppressedUntilSecondThread(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	t1, t2 := f.thread(t, "solo"), f.thread(t, "intruder")
	a, b := f.heap.New("Res"), f.heap.New("Res")

	lockPair(f.d, t1, a, b)
	lockPair(f.d, t1, b, a)
	st := f.d.Stats()
	if st.Inversions != 0 {
		t.Fatalf("single-thread cycle reported as inversion")
	}
	if st.SingleThreadCycles == 0 {
		t.Fatalf("single-thread cycle not counted as suppressed")
	}
	// Second thread re-establishes a -> b: the edge goes multi-thread
	// and the suppressed cycle must now be reported.
	lockPair(f.d, t2, a, b)
	if got := f.d.Inversions(); len(got) != 1 {
		t.Fatalf("cycle not re-reported after second thread joined: inversions = %d, want 1", len(got))
	}
}

func TestNestedReacquisitionFoldsNoEdges(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	th := f.thread(t, "nest")
	a, b := f.heap.New("Obj"), f.heap.New("Obj")
	f.d.Acquired(th, a)
	f.d.Acquired(th, a) // recursive: no new entry, no edges
	f.d.Acquired(th, b)
	f.d.Acquired(th, b)
	f.d.Released(th, b)
	f.d.Released(th, b)
	f.d.Released(th, a)
	f.d.Released(th, a)
	st := f.d.Stats()
	if st.Edges != 1 {
		t.Errorf("edges = %d, want exactly 1 (a->b)", st.Edges)
	}
	if st.Nodes != 2 {
		t.Errorf("nodes = %d, want 2", st.Nodes)
	}
}

func TestCondWaitRemovesAndRestoresHeldEntry(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	waiter, prober := f.thread(t, "waiter"), f.thread(t, "prober")
	o := f.heap.New("Cond")

	f.d.Acquired(waiter, o)
	f.d.Acquired(waiter, o) // recursion depth 2
	f.d.CondWaitBegin(waiter, o)

	// While in wait the monitor is released: the waiter must not show
	// as a holder, or another thread blocking on o would fabricate a
	// wait-for edge at a thread that holds nothing.
	f.d.Blocked(prober, o, lockdep.WaitFat)
	if cycles := f.d.DetectWaitCycles(); len(cycles) != 0 {
		t.Fatalf("phantom wait-for cycle through a cond-waiting thread: %v", cycles)
	}
	waiters := f.d.WaitingThreads()
	var sawWaiter bool
	for _, w := range waiters {
		if strings.HasPrefix(w.Thread, "waiter#") {
			sawWaiter = true
			if w.Kind != "cond-wait" {
				t.Errorf("waiter kind = %q, want cond-wait", w.Kind)
			}
			if len(w.Holds) != 0 {
				t.Errorf("cond-waiting thread still shows holds: %+v", w.Holds)
			}
		}
	}
	if !sawWaiter {
		t.Fatalf("cond-waiting thread missing from wait-for snapshot: %+v", waiters)
	}

	f.d.Unblocked(prober)
	f.d.CondWaitEnd(waiter, o)
	// The entry is back at its saved recursion depth: two releases must
	// balance it exactly.
	f.d.Released(waiter, o)
	f.d.Released(waiter, o)
	if w := f.d.WaitingThreads(); len(w) != 0 {
		t.Errorf("wait state not cleared after CondWaitEnd: %+v", w)
	}
}

func TestWaitForCycleDetectionAndRevalidation(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	t1, t2 := f.thread(t, "phil-a"), f.thread(t, "phil-b")
	a, b := f.heap.New("Fork"), f.heap.New("Fork")

	f.d.Acquired(t1, a)
	f.d.Acquired(t2, b)
	f.d.Blocked(t1, b, lockdep.WaitQueued)
	f.d.Blocked(t2, a, lockdep.WaitSpin)

	cycles := f.d.DetectWaitCycles()
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1", len(cycles))
	}
	c := cycles[0]
	if len(c.Threads) != 2 {
		t.Fatalf("cycle threads = %d, want 2", len(c.Threads))
	}
	s := c.String()
	for _, want := range []string{"wait-for cycle", "phil-a#", "phil-b#", "queued-park", "spin", "holds"} {
		if !strings.Contains(s, want) {
			t.Errorf("cycle report %q missing %q", s, want)
		}
	}

	// Resolve one leg: the cycle must disappear (revalidation aside,
	// the edge itself is gone from the snapshot).
	f.d.Unblocked(t2)
	if cycles := f.d.DetectWaitCycles(); len(cycles) != 0 {
		t.Fatalf("cycle survived after a waiter unblocked: %v", cycles)
	}

	// A repeated Blocked on the same object and kind must keep the
	// original episode (same sequence, same start), so stall timing
	// measures from the first report.
	before := f.d.WaitingThreads()
	f.d.Blocked(t1, b, lockdep.WaitQueued)
	after := f.d.WaitingThreads()
	if len(before) != 1 || len(after) != 1 {
		t.Fatalf("waiters before/after re-block = %d/%d, want 1/1", len(before), len(after))
	}
	if after[0].WaitNs < before[0].WaitNs {
		t.Errorf("re-blocking restarted the episode clock: %d -> %d ns", before[0].WaitNs, after[0].WaitNs)
	}
}

func TestFlightRecorderOrdersEvents(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	th := f.thread(t, "rec")
	a, b := f.heap.New("Obj"), f.heap.New("Obj")
	f.d.Acquired(th, a)
	f.d.Blocked(th, b, lockdep.WaitSpin)
	f.d.Acquired(th, b)
	f.d.Released(th, b)
	f.d.Released(th, a)

	evs := f.d.Events()
	if len(evs) != 5 {
		t.Fatalf("events = %d, want 5: %+v", len(evs), evs)
	}
	wantKinds := []string{"acquire", "blocked", "acquire", "release", "release"}
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %q, want %q", i, ev.Kind, wantKinds[i])
		}
		if i > 0 && ev.Seq <= evs[i-1].Seq {
			t.Errorf("events out of order: seq %d then %d", evs[i-1].Seq, ev.Seq)
		}
		if !strings.HasPrefix(ev.Thread, "rec#") {
			t.Errorf("event %d thread = %q, want rec#...", i, ev.Thread)
		}
	}
	if evs[1].Detail != "spin" {
		t.Errorf("blocked event detail = %q, want spin", evs[1].Detail)
	}
}

func TestWatchdogDumpsOnceAndNamesTheDeadlock(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	t1, t2 := f.thread(t, "phil-a"), f.thread(t, "phil-b")
	a, b := f.heap.New("Fork"), f.heap.New("Fork")

	f.d.Acquired(t1, a)
	f.d.Acquired(t2, b)
	f.d.Blocked(t1, b, lockdep.WaitQueued)
	f.d.Blocked(t2, a, lockdep.WaitQueued)

	dumps := make(chan lockdep.StallDump, 4)
	w := f.d.StartWatchdog(lockdep.WatchdogOptions{
		Threshold: 30 * time.Millisecond,
		Interval:  10 * time.Millisecond,
		OnStall:   func(sd lockdep.StallDump) { dumps <- sd },
	})
	defer w.Stop()

	var dump lockdep.StallDump
	select {
	case dump = <-dumps:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired on a stalled wait")
	}
	if len(dump.Stalled) == 0 {
		t.Fatalf("dump has no stalled threads")
	}
	if len(dump.Cycles) != 1 {
		t.Fatalf("dump cycles = %d, want the deadlock named", len(dump.Cycles))
	}
	var text strings.Builder
	dump.WriteText(&text)
	for _, want := range []string{"stall dump", "phil-a#", "phil-b#", "wait-for cycle", "recent events"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("dump text missing %q:\n%s", want, text.String())
		}
	}

	// The same blocking episodes must not dump again.
	select {
	case <-dumps:
		t.Fatal("watchdog dumped the same stall twice")
	case <-time.After(100 * time.Millisecond):
	}
	if got := w.Dumps(); got != 1 {
		t.Errorf("dump count = %d, want 1", got)
	}
}

func TestExportsRenderGraphAndReport(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	t1, t2 := f.thread(t, "alpha"), f.thread(t, "beta")
	a, b := f.heap.New("Account"), f.heap.New("Account")
	lockPair(f.d, t1, a, b)
	lockPair(f.d, t2, b, a)

	ex := f.d.GraphJSON()
	if len(ex.Nodes) != 2 || len(ex.Edges) != 2 || len(ex.Inversions) != 1 {
		t.Fatalf("graph export = %d nodes / %d edges / %d inversions, want 2/2/1",
			len(ex.Nodes), len(ex.Edges), len(ex.Inversions))
	}
	for _, e := range ex.Edges {
		if !e.Inverted {
			t.Errorf("edge %s -> %s not marked inverted despite being in the cycle", e.From, e.To)
		}
	}

	var dot strings.Builder
	f.d.WriteDOT(&dot)
	for _, want := range []string{"digraph lockorder", a.String(), b.String(), `color="red"`} {
		if !strings.Contains(dot.String(), want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot.String())
		}
	}

	var rep strings.Builder
	f.d.WriteReport(&rep)
	if !strings.Contains(rep.String(), "lock-order inversion") {
		t.Errorf("text report missing the inversion:\n%s", rep.String())
	}

	if _, err := f.d.MarshalJSONReport(); err != nil {
		t.Errorf("JSON report: %v", err)
	}
}

func TestGlobalEnableDisable(t *testing.T) {
	// Not parallel: owns the global registration.
	lockdep.Disable()
	if lockdep.Enabled() || lockdep.Active() != nil {
		t.Fatal("lockdep enabled at test start")
	}
	d := lockdep.Enable(lockdep.New(lockdep.Config{}))
	defer lockdep.Disable()
	if lockdep.Active() != d || !lockdep.Enabled() {
		t.Fatal("Enable did not install")
	}
	// The package-level wrappers must feed the installed instance.
	f := newFixture(t)
	th := f.thread(t, "glob")
	o := f.heap.New("Obj")
	lockdep.Blocked(th, o, lockdep.WaitSpin)
	if got := len(d.WaitingThreads()); got != 1 {
		t.Fatalf("global Blocked not recorded: waiters = %d", got)
	}
	lockdep.Unblocked(th)
	if got := len(d.WaitingThreads()); got != 0 {
		t.Fatalf("global Unblocked not recorded: waiters = %d", got)
	}
}

// Concurrent hammering must not race, corrupt counters, or report a
// false inversion when every thread uses the same order (run with
// -race in CI's race job).
func TestConcurrentConsistentOrderIsClean(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	objs := []*object.Object{f.heap.New("X"), f.heap.New("X"), f.heap.New("X")}
	const workers = 8
	var done atomic.Int32
	for w := 0; w < workers; w++ {
		th := f.thread(t, "hammer")
		go func(th *threading.Thread) {
			defer done.Add(1)
			for i := 0; i < 500; i++ {
				for _, o := range objs {
					f.d.Acquired(th, o)
				}
				for j := len(objs) - 1; j >= 0; j-- {
					f.d.Released(th, objs[j])
				}
			}
		}(th)
	}
	for done.Load() != workers {
		time.Sleep(time.Millisecond)
	}
	st := f.d.Stats()
	if st.Inversions != 0 {
		t.Fatalf("false inversions under consistent concurrent order: %+v", st)
	}
	if st.Nodes != 3 {
		t.Errorf("nodes = %d, want 3", st.Nodes)
	}
}
