package lockdep

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"thinlock/internal/threading"
)

// Lock sites are captured with the same two encodings as lockprof (a VM
// method+pc published in the thread, or a Go caller PC chain), but this
// package keeps its own copy of the machinery: lockprof's debug server
// imports lockdep to export its reports, so lockdep cannot import
// lockprof back. Sites are interned into a bounded table and referred
// to everywhere else by a small integer id, so held entries, wait
// states, graph edges and ring events can store a site in one atomic
// word.

// maxStackDepth is how many Go caller PCs a site key retains.
const maxStackDepth = 8

// maxSites bounds the number of distinct sites; past it, captures
// resolve to site id 0 ("site table full") and a drop is counted.
const maxSites = 2048

// siteProbe is the linear probe window before an insert gives up.
const siteProbe = 64

// siteKey identifies one acquisition or blocking site. Comparable, so
// records deduplicate with ==.
type siteKey struct {
	vmMethod string
	vmPC     int32
	pcs      [maxStackDepth]uintptr
	depth    uint8
}

// hash returns a 64-bit FNV-1a hash of the key.
func (k siteKey) hash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime
			v >>= 8
		}
	}
	for i := 0; i < len(k.vmMethod); i++ {
		h ^= uint64(k.vmMethod[i])
		h *= prime
	}
	mix(uint64(uint32(k.vmPC)))
	for i := uint8(0); i < k.depth; i++ {
		mix(uint64(k.pcs[i]))
	}
	return h
}

// siteRec is one interned site. The label is symbolized lazily, off the
// hook paths.
type siteRec struct {
	key  siteKey
	id   uint32
	once sync.Once
	lbl  string
}

// label resolves and caches the human-readable site label.
func (r *siteRec) label() string {
	r.once.Do(func() { r.lbl = r.key.label() })
	return r.lbl
}

// siteTable interns siteKeys into small ids: a single open-addressed
// array of atomic pointers, CAS-inserted, never resized. A record's id
// is its slot index plus one, so id→record lookup is a direct index.
type siteTable struct {
	slots [maxSites]atomic.Pointer[siteRec]
	drops atomic.Uint64
}

// get returns the id for k, interning it if new; 0 when the probe
// window around its hash is full.
func (tb *siteTable) get(k siteKey) uint32 {
	h := k.hash()
	idx := h & (maxSites - 1)
	for i := uint64(0); i < siteProbe; i++ {
		slot := (idx + i) & (maxSites - 1)
		r := tb.slots[slot].Load()
		if r == nil {
			nr := &siteRec{key: k, id: uint32(slot) + 1}
			if tb.slots[slot].CompareAndSwap(nil, nr) {
				return nr.id
			}
			r = tb.slots[slot].Load()
		}
		if r.key == k {
			return r.id
		}
	}
	tb.drops.Add(1)
	return 0
}

// byID returns the record for a site id, or nil for 0 / out of range.
func (tb *siteTable) byID(id uint32) *siteRec {
	if id == 0 || id > maxSites {
		return nil
	}
	return tb.slots[id-1].Load()
}

// captureSite resolves the acting thread's current lock site to an
// interned id: the published VM frame if there is one, otherwise the
// Go caller PC chain. Allocation-free for known sites (the PC buffer
// lives in the key, on the stack).
func (d *Lockdep) captureSite(t *threading.Thread) uint32 {
	var k siteKey
	if t != nil {
		if method, pc, ok := t.Frame(); ok && method != "" {
			k.vmMethod, k.vmPC = method, pc
		}
	}
	if k.vmMethod == "" {
		n := runtime.Callers(3, k.pcs[:])
		k.depth = uint8(n)
	}
	return d.sites.get(k)
}

// SiteLabel returns the display label for a site id ("?" for 0).
func (d *Lockdep) SiteLabel(id uint32) string {
	r := d.sites.byID(id)
	if r == nil {
		return "?"
	}
	return r.label()
}

// internalFramePrefixes name the lock-machinery packages whose frames
// are skipped when choosing a site's display label, so the label lands
// on the workload frame that requested the lock.
var internalFramePrefixes = []string{
	"thinlock/internal/lockdep",
	"thinlock/internal/lockprof",
	"thinlock/internal/core",
	"thinlock/internal/biased",
	"thinlock/internal/monitor",
	"thinlock/internal/monitorcache",
	"thinlock/internal/hotlocks",
	"thinlock/internal/lockapi",
	"thinlock/internal/jcl.(*Context).synchronized",
	"thinlock/internal/locktrace",
	"thinlock/internal/arch",
	"runtime",
}

func isInternalFrame(fn string) bool {
	for _, p := range internalFramePrefixes {
		if strings.HasPrefix(fn, p+".") || fn == p {
			return true
		}
	}
	return false
}

// label symbolizes the key and picks the display name: VM sites yield
// "Class.method @pc"; Go sites yield the first frame that is not lock
// machinery, or the leaf frame as a fallback.
func (k siteKey) label() string {
	if k.vmMethod != "" {
		return fmt.Sprintf("%s @%d", k.vmMethod, k.vmPC)
	}
	frames := runtime.CallersFrames(k.pcs[:k.depth])
	var fallback string
	for {
		f, more := frames.Next()
		if f.Function != "" {
			if fallback == "" {
				fallback = frameLabel(f.Function, f.File, f.Line)
			}
			if !isInternalFrame(f.Function) {
				return frameLabel(f.Function, f.File, f.Line)
			}
		}
		if !more {
			break
		}
	}
	if fallback != "" {
		return fallback
	}
	return "(unknown site)"
}

func frameLabel(fn, file string, line int) string {
	return fmt.Sprintf("%s (%s:%d)", fn, shortFile(file), line)
}

// shortFile trims a file path to its last two components.
func shortFile(path string) string {
	short := path
	slashes := 0
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			slashes++
			if slashes == 2 {
				short = path[i+1:]
				break
			}
		}
	}
	return short
}
