// Package lockdep is a runtime lock-order watchdog in the spirit of the
// Linux kernel's lockdep, layered on the same hook discipline as
// internal/telemetry and internal/lockprof.
//
// Where telemetry answers "how much" and lockprof answers "where",
// lockdep answers "can this hang, and if it already has, why": it
//
//   - maintains a per-thread stack of held locks and folds every
//     observed nesting pair (held A while acquiring B) into a global
//     lock-order graph keyed by lock *object*, with lockprof-style site
//     annotations on the edges. The first time the inverse order of an
//     existing edge appears — from a different thread — the resulting
//     cycle is reported as a *potential* deadlock (an ABBA inversion),
//     even if no hang ever occurs;
//   - maintains a live wait-for state fed from the slow paths of the
//     lock implementations (thin-lock spinning, the queued-contention
//     park, fat-monitor entry, bias revocation, and Object.wait), with
//     an on-demand cycle detector that names the deadlocked threads,
//     the sites they hold and the site each blocks on;
//   - keeps a flight recorder: a fixed ring of recent lock events that
//     a stall watchdog (see watchdog.go) dumps together with the
//     current holders and wait-for edges when any wait exceeds a
//     threshold, so a hang is diagnosable post mortem.
//
// The overhead contract matches telemetry's and lockprof's: the
// uncontended fast paths carry no lockdep hook at all; with lockdep
// disabled every hook site is one atomic pointer load, a compare and a
// not-taken branch, and allocates nothing (enforced by
// overhead_test.go). Enabled, the steady state (known sites, known
// edges) is allocation-free too; only the first observation of a site
// or an order edge allocates its record.
//
// Unlike lockprof, acquisitions are not sampled: the order graph is
// only sound if every nested acquisition is folded in, so an enabled
// lockdep captures a call-site on every first (non-nested) acquisition.
// That makes it a diagnosis tool to switch on, not an always-on
// profiler — which is exactly the kernel-lockdep trade-off.
//
// The order graph is keyed by object, not by site: a single
// transfer(a, b) call site passed (x, y) by one thread and (y, x) by
// another is invisible to a site-pair graph but is precisely the ABBA
// hang lockdep exists to catch. Sites annotate the edges for reporting.
// A cycle whose edges were all contributed by one thread cannot
// deadlock (one thread cannot block on itself through intact nesting)
// and is suppressed, not reported; the suppression is re-examined when
// a second thread later contributes to any of its edges.
package lockdep

import (
	"sync/atomic"

	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

// numSlots is the size of the per-thread state array, indexed by
// thread index modulo numSlots as in lockprof: past numSlots concurrent
// threads, slots alias and attribution may mix (all fields are atomics,
// so aliasing is benign for memory safety).
const numSlots = 4096

// maxHeld bounds the per-thread held-lock stack. Deeper nesting than
// this is counted in a drop counter and the over-deep locks simply go
// untracked (the paper's workloads nest a handful of monitors at most).
const maxHeld = 16

// WaitKind classifies why a thread is blocked on an object.
type WaitKind uint32

const (
	// WaitNone marks a thread that is not blocked.
	WaitNone WaitKind = iota
	// WaitSpin is a thread spinning for a thin lock held by another
	// thread (§2.3.4 of the paper).
	WaitSpin
	// WaitQueued is a thread parked on the flat-lock-contention queue
	// (the queued-inflation extension).
	WaitQueued
	// WaitFat is a thread entering a fat monitor that may be owned.
	WaitFat
	// WaitRevocation is a thread waiting out a bias-revocation
	// handshake.
	WaitRevocation
	// WaitCond is a thread in Object.wait (released the lock, waiting
	// for a notify and then the re-acquisition).
	WaitCond
)

// String returns the report label for the kind.
func (k WaitKind) String() string {
	switch k {
	case WaitNone:
		return "none"
	case WaitSpin:
		return "spin"
	case WaitQueued:
		return "queued-park"
	case WaitFat:
		return "monitor-enter"
	case WaitRevocation:
		return "bias-revocation"
	case WaitCond:
		return "cond-wait"
	default:
		return "unknown"
	}
}

// heldEntry is one held lock on a thread's stack. All fields are
// atomics because the wait-for detector and the watchdog read other
// threads' stacks while the owner mutates them; a torn read can at
// worst duplicate or miss an entry, which detection revalidates.
type heldEntry struct {
	obj  atomic.Pointer[object.Object]
	id   atomic.Uint64
	n    atomic.Uint32 // recursion depth at this entry
	site atomic.Uint32 // site id of the first acquisition
}

// threadSlot is one thread's lockdep state: held stack, wait-for state
// and the saved depth of an in-progress Object.wait.
type threadSlot struct {
	thr atomic.Pointer[threading.Thread]

	heldLen  atomic.Uint32
	held     [maxHeld]heldEntry
	overflow atomic.Uint32 // pushes dropped because the stack was full

	waitObj   atomic.Pointer[object.Object]
	waitKind  atomic.Uint32
	waitSite  atomic.Uint32
	waitStart atomic.Int64
	waitSeq   atomic.Uint64 // bumped per distinct blocking episode

	condObj   atomic.Pointer[object.Object]
	condDepth atomic.Uint32
	condSite  atomic.Uint32
}

// Config configures a Lockdep instance. The zero value is valid.
type Config struct{}

// Lockdep is one lock-order tracking state. Create with New, install
// globally with Enable; all methods are safe for concurrent use.
type Lockdep struct {
	startNs int64

	sites siteTable
	graph graph
	ring  ring
	slots [numSlots]threadSlot

	heldOverflows atomic.Uint64
}

// New returns an empty Lockdep with the given configuration.
func New(cfg Config) *Lockdep {
	_ = cfg
	return &Lockdep{startNs: telemetry.Now()}
}

// slot returns the acting thread's state slot (slot 0 for nil).
func (d *Lockdep) slot(t *threading.Thread) *threadSlot {
	if t == nil {
		return &d.slots[0]
	}
	return &d.slots[int(t.Index())&(numSlots-1)]
}

func (s *threadSlot) noteThread(t *threading.Thread) {
	if t != nil && s.thr.Load() != t {
		s.thr.Store(t)
	}
}

// threadIndex returns t's index (0 for nil).
func threadIndex(t *threading.Thread) uint32 {
	if t == nil {
		return 0
	}
	return uint32(t.Index())
}

// Acquired records that t now owns o. Called by the lock
// implementations after every successful Lock. A re-acquisition of an
// already-held object only bumps its recursion count; a first
// acquisition captures the call site, pushes a held entry, folds one
// order edge per other held lock into the graph, and clears any
// wait-for state the slow path recorded on the way in.
func (d *Lockdep) Acquired(t *threading.Thread, o *object.Object) {
	s := d.slot(t)
	s.noteThread(t)
	if s.waitObj.Load() != nil {
		s.waitObj.Store(nil)
		s.waitKind.Store(uint32(WaitNone))
	}
	n := s.heldLen.Load()
	if n > maxHeld {
		n = maxHeld
	}
	for i := uint32(0); i < n; i++ {
		if s.held[i].id.Load() == o.ID() {
			s.held[i].n.Add(1)
			return
		}
	}
	site := d.captureSite(t)
	d.ring.record(EvAcquire, threadIndex(t), o, site, 0)
	if n >= maxHeld {
		s.overflow.Add(1)
		d.heldOverflows.Add(1)
		return
	}
	e := &s.held[n]
	e.obj.Store(o)
	e.id.Store(o.ID())
	e.n.Store(1)
	e.site.Store(site)
	s.heldLen.Store(n + 1)
	for i := uint32(0); i < n; i++ {
		d.graph.addEdge(d, &s.held[i], o, site, t)
	}
}

// Released records that t released one level of o. The final release
// pops the held entry (order within the stack does not matter once the
// edges are folded, so the pop swaps with the last entry).
func (d *Lockdep) Released(t *threading.Thread, o *object.Object) {
	s := d.slot(t)
	n := s.heldLen.Load()
	if n > maxHeld {
		n = maxHeld
	}
	for i := int(n) - 1; i >= 0; i-- {
		if s.held[i].id.Load() != o.ID() {
			continue
		}
		if c := s.held[i].n.Load(); c > 1 {
			s.held[i].n.Store(c - 1)
			return
		}
		last := n - 1
		if uint32(i) != last {
			s.held[i].obj.Store(s.held[last].obj.Load())
			s.held[i].id.Store(s.held[last].id.Load())
			s.held[i].n.Store(s.held[last].n.Load())
			s.held[i].site.Store(s.held[last].site.Load())
		}
		s.held[last].obj.Store(nil)
		s.held[last].id.Store(0)
		s.heldLen.Store(last)
		d.ring.record(EvRelease, threadIndex(t), o, 0, 0)
		return
	}
	// Not on the stack: either the push was dropped on overflow, or
	// lockdep was enabled after the acquisition. Burn an overflow
	// credit if one exists so the counters stay roughly honest.
	if c := s.overflow.Load(); c > 0 {
		s.overflow.Store(c - 1)
	}
}

// Blocked records that t is about to block (or spin) on o. Called from
// the slow paths; may be called repeatedly while a spin loop retries,
// in which case the original start time is kept so stall durations are
// measured from the first report. The wait state is cleared by the
// Acquired that ends the episode (or by Unblocked on non-acquiring
// paths).
func (d *Lockdep) Blocked(t *threading.Thread, o *object.Object, kind WaitKind) {
	s := d.slot(t)
	if s.waitObj.Load() == o && WaitKind(s.waitKind.Load()) == kind {
		return
	}
	s.noteThread(t)
	site := d.captureSite(t)
	s.waitSite.Store(site)
	s.waitKind.Store(uint32(kind))
	s.waitStart.Store(telemetry.Now())
	s.waitSeq.Add(1)
	s.waitObj.Store(o)
	d.ring.record(EvBlocked, threadIndex(t), o, site, uint32(kind))
}

// Unblocked clears t's wait-for state on paths that do not end in an
// acquisition (e.g. waiting out a bias revocation during an unlock).
func (d *Lockdep) Unblocked(t *threading.Thread) {
	s := d.slot(t)
	if s.waitObj.Load() != nil {
		s.waitObj.Store(nil)
		s.waitKind.Store(uint32(WaitNone))
	}
}

// CondWaitBegin records that t entered Object.wait on o: the held
// entry for o (at whatever recursion depth) leaves the stack — the
// monitor is released for the duration of the wait, and leaving it on
// the stack would fabricate wait-for edges pointing at a thread that
// holds nothing — and the thread is marked waiting on o.
func (d *Lockdep) CondWaitBegin(t *threading.Thread, o *object.Object) {
	s := d.slot(t)
	s.noteThread(t)
	n := s.heldLen.Load()
	if n > maxHeld {
		n = maxHeld
	}
	for i := uint32(0); i < n; i++ {
		if s.held[i].id.Load() != o.ID() {
			continue
		}
		s.condObj.Store(o)
		s.condDepth.Store(s.held[i].n.Load())
		s.condSite.Store(s.held[i].site.Load())
		last := n - 1
		if i != last {
			s.held[i].obj.Store(s.held[last].obj.Load())
			s.held[i].id.Store(s.held[last].id.Load())
			s.held[i].n.Store(s.held[last].n.Load())
			s.held[i].site.Store(s.held[last].site.Load())
		}
		s.held[last].obj.Store(nil)
		s.held[last].id.Store(0)
		s.heldLen.Store(last)
		break
	}
	site := d.captureSite(t)
	s.waitSite.Store(site)
	s.waitKind.Store(uint32(WaitCond))
	s.waitStart.Store(telemetry.Now())
	s.waitSeq.Add(1)
	s.waitObj.Store(o)
	d.ring.record(EvCondWait, threadIndex(t), o, site, uint32(WaitCond))
}

// CondWaitEnd records that t's Object.wait on o returned (notified,
// timed out, interrupted, or refused with an error): the wait state is
// cleared and, if CondWaitBegin removed a held entry, it is restored at
// its saved depth. The restore folds no new order edges — the original
// acquisition already did.
func (d *Lockdep) CondWaitEnd(t *threading.Thread, o *object.Object) {
	s := d.slot(t)
	if s.waitObj.Load() == o {
		s.waitObj.Store(nil)
		s.waitKind.Store(uint32(WaitNone))
	}
	if s.condObj.Load() != o {
		return
	}
	s.condObj.Store(nil)
	n := s.heldLen.Load()
	if n >= maxHeld {
		s.overflow.Add(1)
		d.heldOverflows.Add(1)
		return
	}
	e := &s.held[n]
	e.obj.Store(o)
	e.id.Store(o.ID())
	e.n.Store(s.condDepth.Load())
	e.site.Store(s.condSite.Load())
	s.heldLen.Store(n + 1)
	d.ring.record(EvCondWake, threadIndex(t), o, s.condSite.Load(), 0)
}

// Stats is a snapshot of lockdep's internal counters.
type Stats struct {
	// Nodes and Edges size the lock-order graph.
	Nodes, Edges int
	// Inversions counts reported lock-order inversion cycles.
	Inversions int
	// SingleThreadCycles counts order cycles observed but suppressed
	// because every edge came from one thread.
	SingleThreadCycles uint64
	// SiteDrops / NodeDrops / EdgeDrops / ReportDrops count events the
	// bounded tables discarded.
	SiteDrops, NodeDrops, EdgeDrops, ReportDrops uint64
	// HeldOverflows counts held-stack pushes dropped at maxHeld depth.
	HeldOverflows uint64
	// Events is the flight-recorder sequence number (total events ever
	// recorded; the ring keeps the most recent RingSize).
	Events uint64
}

// Stats returns a snapshot of the counters.
func (d *Lockdep) Stats() Stats {
	nodes, edges := d.graph.size()
	return Stats{
		Nodes:              nodes,
		Edges:              edges,
		Inversions:         len(d.Inversions()),
		SingleThreadCycles: d.graph.singleThread.Load(),
		SiteDrops:          d.sites.drops.Load(),
		NodeDrops:          d.graph.nodeDrops.Load(),
		EdgeDrops:          d.graph.edgeDrops.Load(),
		ReportDrops:        d.graph.reportDrops.Load(),
		HeldOverflows:      d.heldOverflows.Load(),
		Events:             d.ring.seq.Load(),
	}
}

// active is the globally installed Lockdep the hook helpers feed.
var active atomic.Pointer[Lockdep]

// Enable installs d as the global hook target (nil disables) and
// returns d.
func Enable(d *Lockdep) *Lockdep {
	active.Store(d)
	return d
}

// Disable uninstalls the global hook target.
func Disable() { active.Store(nil) }

// Active returns the installed Lockdep, or nil when disabled.
func Active() *Lockdep { return active.Load() }

// Enabled reports whether a global Lockdep is installed.
func Enabled() bool { return active.Load() != nil }

// Blocked records a blocking episode on the installed Lockdep; a no-op
// (one atomic load, one branch, no allocation) when disabled.
func Blocked(t *threading.Thread, o *object.Object, kind WaitKind) {
	if d := active.Load(); d != nil {
		d.Blocked(t, o, kind)
	}
}

// Unblocked clears a blocking episode on the installed Lockdep; no-op
// when disabled.
func Unblocked(t *threading.Thread) {
	if d := active.Load(); d != nil {
		d.Unblocked(t)
	}
}
