package lockdep

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

// The lock-order graph. Nodes are lock objects (keyed by allocation
// id); a directed edge A→B means "some thread held A while acquiring
// B". Kernel lockdep's central trick applies: edges are *ever-observed*
// facts, never removed, so a cycle proves that the inverse orders both
// happened at least once — a potential ABBA deadlock — even if the two
// orders were never in flight simultaneously.
//
// Storage follows lockprof's bounded lock-free shape: nodes live in a
// sharded open-addressed table of atomic pointers; each node carries a
// small fixed array of outgoing edges, CAS-appended. Cycle detection
// runs only when an edge is first observed (or first becomes
// multi-threaded), serialized by a mutex — a rare event, off every per-
// acquisition path.

const (
	numShards         = 16
	nodeSlotsPerShard = 256 // 4096 nodes total
	nodeProbe         = 64
	// maxOut bounds a node's outgoing order edges.
	maxOut = 32
	// maxReports bounds stored inversion reports.
	maxReports = 64
	// maxCycleLen bounds the DFS depth (and so reported cycle length).
	maxCycleLen = 32
)

// gedge is one order edge. The first observing thread is recorded so
// single-thread cycles can be suppressed; multi flips (permanently)
// when a second thread observes the same nesting pair. The observer is
// identified by Thread pointer, not index: the registry recycles
// indices, so two sequential threads can share one — and inverse orders
// from two threads are a real hazard even when their lifetimes never
// overlapped.
type gedge struct {
	from, to *gnode
	holdSite uint32 // site where `from` was acquired by the first observer
	acqSite  uint32 // site where `to` was acquired while holding `from`
	thread   *threading.Thread
	threadNm string
	multi    atomic.Bool
}

// threads reports how many distinct threads the edge is known to have:
// 1, or 2 meaning "at least two".
func (e *gedge) threads() int {
	if e.multi.Load() {
		return 2
	}
	return 1
}

// gnode is one lock object in the order graph.
type gnode struct {
	id    uint64
	class string
	out   [maxOut]atomic.Pointer[gedge]
	// mark is the DFS visit stamp, guarded by graph.mu.
	mark uint64
}

func (n *gnode) label() string {
	c := n.class
	if c == "" {
		c = "object"
	}
	return fmt.Sprintf("%s#%d", c, n.id)
}

type nodeShard struct {
	slots [nodeSlotsPerShard]atomic.Pointer[gnode]
}

// graph is the sharded lock-order graph plus the inversion reports.
type graph struct {
	shards    [numShards]nodeShard
	nodeDrops atomic.Uint64
	edgeDrops atomic.Uint64
	edgeCount atomic.Uint64

	// mu serializes cycle detection, DFS marks and report insertion.
	mu    sync.Mutex
	stamp uint64

	reports      [maxReports]atomic.Pointer[InversionReport]
	reportLen    atomic.Uint32
	reportDrops  atomic.Uint64
	singleThread atomic.Uint64
}

// nodeHash mixes an object id (a SplitMix64 finalizer round).
func nodeHash(id uint64) uint64 {
	id ^= id >> 30
	id *= 0xbf58476d1ce4e5b9
	id ^= id >> 27
	id *= 0x94d049bb133111eb
	id ^= id >> 31
	return id
}

// node returns the graph node for object id, inserting one if needed;
// nil when the probe window is full.
func (g *graph) node(id uint64, class string) *gnode {
	h := nodeHash(id)
	sh := &g.shards[(h>>60)&(numShards-1)]
	idx := h & (nodeSlotsPerShard - 1)
	for i := uint64(0); i < nodeProbe; i++ {
		slot := &sh.slots[(idx+i)&(nodeSlotsPerShard-1)]
		n := slot.Load()
		if n == nil {
			nn := &gnode{id: id, class: class}
			if slot.CompareAndSwap(nil, nn) {
				return nn
			}
			n = slot.Load()
		}
		if n.id == id {
			return n
		}
	}
	g.nodeDrops.Add(1)
	return nil
}

// addEdge folds "held `from` while acquiring o at acqSite" into the
// graph and runs cycle detection when the edge is new or when it just
// became multi-threaded.
func (g *graph) addEdge(d *Lockdep, from *heldEntry, o *object.Object, acqSite uint32, t *threading.Thread) {
	fObj := from.obj.Load()
	if fObj == nil || fObj.ID() == o.ID() {
		return
	}
	fn := g.node(fObj.ID(), fObj.Class())
	tn := g.node(o.ID(), o.Class())
	if fn == nil || tn == nil {
		return
	}
	for i := 0; i < maxOut; i++ {
		e := fn.out[i].Load()
		if e == nil {
			ne := &gedge{
				from:     fn,
				to:       tn,
				holdSite: from.site.Load(),
				acqSite:  acqSite,
				thread:   t,
				threadNm: threadName(t),
			}
			if fn.out[i].CompareAndSwap(nil, ne) {
				g.edgeCount.Add(1)
				g.checkCycle(d, ne)
				return
			}
			e = fn.out[i].Load()
		}
		if e.to == tn {
			if e.thread != t && !e.multi.Load() {
				e.multi.Store(true)
				// The edge's thread signature changed: a cycle through
				// it that was suppressed as single-threaded may now be
				// reportable.
				g.checkCycle(d, e)
			}
			return
		}
	}
	g.edgeDrops.Add(1)
}

func threadName(t *threading.Thread) string {
	if t == nil {
		return "?"
	}
	return fmt.Sprintf("%s#%d", t.Name(), t.Index())
}

// checkCycle looks for a path to.from⇝e.from; appending e closes a
// cycle, i.e. the inverse of an already-recorded order has now been
// observed. Runs under g.mu; rare (first observation of an edge only).
func (g *graph) checkCycle(d *Lockdep, e *gedge) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stamp++
	path := make([]*gedge, 0, 8)
	cycle := g.dfs(e.to, e.from, path)
	if cycle == nil {
		return
	}
	cycle = append(cycle, e)
	// A cycle all of whose edges came from a single thread cannot
	// deadlock: the thread established both orders itself, in sequence.
	distinct := map[*threading.Thread]bool{}
	multi := false
	for _, ce := range cycle {
		distinct[ce.thread] = true
		if ce.multi.Load() {
			multi = true
		}
	}
	if len(distinct) < 2 && !multi {
		g.singleThread.Add(1)
		return
	}
	g.report(d, cycle)
}

// dfs searches from cur for target along outgoing edges, returning the
// edge path (nil if unreachable). Visit marks use the per-check stamp
// so no per-node clearing is needed.
func (g *graph) dfs(cur, target *gnode, path []*gedge) []*gedge {
	if cur == target {
		out := make([]*gedge, len(path))
		copy(out, path)
		return out
	}
	if cur.mark == g.stamp || len(path) >= maxCycleLen {
		return nil
	}
	cur.mark = g.stamp
	for i := 0; i < maxOut; i++ {
		e := cur.out[i].Load()
		if e == nil {
			break
		}
		if found := g.dfs(e.to, target, append(path, e)); found != nil {
			return found
		}
	}
	return nil
}

// InversionEdge is one leg of a reported lock-order inversion cycle.
type InversionEdge struct {
	// From/To name the lock objects ("class#id").
	From string `json:"from"`
	To   string `json:"to"`
	// HoldSite is where From was acquired by the thread that then
	// acquired To at AcquireSite while still holding it.
	HoldSite    string `json:"hold_site"`
	AcquireSite string `json:"acquire_site"`
	// Thread is the first thread observed establishing this order;
	// MultiThread reports whether at least one more did too.
	Thread      string `json:"thread"`
	MultiThread bool   `json:"multi_thread"`
}

// InversionReport is one detected lock-order cycle: a potential
// deadlock, flagged the first time the inverse order appeared.
type InversionReport struct {
	// Seq orders reports by detection time.
	Seq uint64 `json:"seq"`
	// DetectedNs is the telemetry.Now timestamp of detection.
	DetectedNs int64 `json:"detected_ns"`
	// Cycle lists the edges of the order cycle; the last edge is the
	// one whose observation closed it.
	Cycle []InversionEdge `json:"cycle"`

	key string // canonical node-set key for dedup
}

// String renders the report on one line per edge.
func (r *InversionReport) String() string {
	s := fmt.Sprintf("lock-order inversion #%d (potential deadlock, %d locks):", r.Seq, len(r.Cycle))
	for _, e := range r.Cycle {
		s += fmt.Sprintf("\n  %s -> %s  [held at %s, acquired at %s, by %s",
			e.From, e.To, e.HoldSite, e.AcquireSite, e.Thread)
		if e.MultiThread {
			s += " and others"
		}
		s += "]"
	}
	return s
}

// report stores a deduplicated InversionReport for the cycle. Caller
// holds g.mu.
func (g *graph) report(d *Lockdep, cycle []*gedge) {
	ids := make([]uint64, len(cycle))
	for i, e := range cycle {
		ids[i] = e.from.id
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	key := fmt.Sprint(ids)
	n := g.reportLen.Load()
	for i := uint32(0); i < n; i++ {
		if r := g.reports[i].Load(); r != nil && r.key == key {
			return
		}
	}
	if n >= maxReports {
		g.reportDrops.Add(1)
		return
	}
	rep := &InversionReport{
		Seq:        uint64(n) + 1,
		DetectedNs: telemetry.Now(),
		key:        key,
	}
	for _, e := range cycle {
		rep.Cycle = append(rep.Cycle, InversionEdge{
			From:        e.from.label(),
			To:          e.to.label(),
			HoldSite:    d.SiteLabel(e.holdSite),
			AcquireSite: d.SiteLabel(e.acqSite),
			Thread:      e.threadNm,
			MultiThread: e.multi.Load(),
		})
	}
	g.reports[n].Store(rep)
	g.reportLen.Store(n + 1)
	d.ring.record(EvInversion, 0, nil, 0, uint32(rep.Seq))
}

// size reports the node and edge counts.
func (g *graph) size() (nodes, edges int) {
	for s := range g.shards {
		for i := range g.shards[s].slots {
			if g.shards[s].slots[i].Load() != nil {
				nodes++
			}
		}
	}
	return nodes, int(g.edgeCount.Load())
}

// nodes returns every published node.
func (g *graph) nodes() []*gnode {
	var out []*gnode
	for s := range g.shards {
		for i := range g.shards[s].slots {
			if n := g.shards[s].slots[i].Load(); n != nil {
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Inversions returns the reported lock-order inversion cycles in
// detection order.
func (d *Lockdep) Inversions() []*InversionReport {
	g := &d.graph
	n := g.reportLen.Load()
	out := make([]*InversionReport, 0, n)
	for i := uint32(0); i < n; i++ {
		if r := g.reports[i].Load(); r != nil {
			out = append(out, r)
		}
	}
	return out
}
