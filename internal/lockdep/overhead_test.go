package lockdep_test

// Overhead contract for the lock-order watchdog (see the lockdep
// package comment): with lockdep disabled, every hook site in the lock
// implementations is one atomic pointer load, a compare and a
// not-taken branch, and no lock path may allocate. Enabled, the steady
// state (known sites, known objects, known order edges) is
// allocation-free too; only the first observation of a site, node or
// edge allocates its record.

import (
	"sort"
	"testing"
	"time"

	"thinlock/internal/core"
	"thinlock/internal/lockdep"
	"thinlock/internal/lockprof"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

type lockFixture struct {
	l    *core.ThinLocks
	heap *object.Heap
	th   *threading.Thread
	o    *object.Object
	o2   *object.Object
}

func newLockFixture(t testing.TB) *lockFixture {
	t.Helper()
	f := &lockFixture{l: core.NewDefault(), heap: object.NewHeap()}
	reg := threading.NewRegistry()
	th, err := reg.Attach("bench")
	if err != nil {
		t.Fatal(err)
	}
	f.th = th
	f.o = f.heap.New("Object")
	f.o2 = f.heap.New("Object")
	return f
}

// Not parallel: owns the global lockdep registration.
func TestDisabledLockdepDoesNotAllocate(t *testing.T) {
	lockdep.Disable()
	lockprof.Disable()
	telemetry.Disable()
	f := newLockFixture(t)
	if allocs := testing.AllocsPerRun(100, func() {
		f.l.Lock(f.th, f.o)
		if err := f.l.Unlock(f.th, f.o); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("disabled fast path allocates %.1f objects per op", allocs)
	}
	// Nested acquisition of two objects drives the slow path through
	// every lockdep hook site (Acquired, Released, the Blocked sites are
	// branch-gated) in its disabled state.
	if allocs := testing.AllocsPerRun(100, func() {
		f.l.Lock(f.th, f.o)
		f.l.Lock(f.th, f.o2)
		f.l.Unlock(f.th, f.o2)
		f.l.Unlock(f.th, f.o)
	}); allocs != 0 {
		t.Errorf("disabled nested path allocates %.1f objects per op", allocs)
	}
}

// Not parallel: owns the global lockdep registration.
func TestEnabledSteadyStateDoesNotAllocate(t *testing.T) {
	lockprof.Disable()
	telemetry.Disable()
	d := lockdep.Enable(lockdep.New(lockdep.Config{}))
	defer lockdep.Disable()
	f := newLockFixture(t)
	// First pass interns the site, the graph nodes and the order edge.
	f.l.Lock(f.th, f.o)
	f.l.Lock(f.th, f.o2)
	f.l.Unlock(f.th, f.o2)
	f.l.Unlock(f.th, f.o)
	if allocs := testing.AllocsPerRun(100, func() {
		f.l.Lock(f.th, f.o)
		f.l.Lock(f.th, f.o2)
		f.l.Unlock(f.th, f.o2)
		f.l.Unlock(f.th, f.o)
	}); allocs != 0 {
		t.Errorf("enabled steady-state path allocates %.1f objects per op", allocs)
	}
	st := d.Stats()
	if st.Edges == 0 || st.Events == 0 {
		t.Fatalf("lockdep recorded nothing (test measured the wrong path): %+v", st)
	}
}

// medianCycle times reps uncontended lock/unlock cycles and returns the
// median of samples runs, robust against scheduler noise.
func medianCycle(f *lockFixture, samples, reps int) time.Duration {
	ds := make([]time.Duration, 0, samples)
	for s := 0; s < samples; s++ {
		start := time.Now()
		for i := 0; i < reps; i++ {
			f.l.Lock(f.th, f.o)
			f.l.Unlock(f.th, f.o)
		}
		ds = append(ds, time.Since(start))
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// TestDisabledLockdepOverheadIsBounded: with lockdep compiled in but
// disabled, the uncontended cycle pays two atomic loads (Lock and
// Unlock hooks). Enabling and disabling again must return the cycle to
// its baseline (no residue), and the *enabled* cycle — which captures a
// call site on every first acquisition by design, see the package
// comment on why lockdep cannot sample — gets only a catastrophic-
// regression rail: it catches cycle detection or wait-for scanning
// leaking onto the steady-state path, not microsecond drift. The
// precise numbers are BenchmarkUncontendedLockUnlockLockdep. Not
// parallel: owns the global registration and times itself.
func TestDisabledLockdepOverheadIsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	f := newLockFixture(t)
	const samples, reps = 9, 20000
	lockdep.Disable()
	lockprof.Disable()
	telemetry.Disable()
	medianCycle(f, 3, reps) // warm up
	base := medianCycle(f, samples, reps)
	lockdep.Enable(lockdep.New(lockdep.Config{}))
	medianCycle(f, 3, reps) // intern the site before timing
	on := medianCycle(f, samples, reps)
	lockdep.Disable()
	after := medianCycle(f, samples, reps)
	if base > 0 && float64(after) > 2*float64(base) {
		t.Errorf("disabled lockdep cycle regressed after an enable/disable round: %.2fx (before=%v after=%v)",
			float64(after)/float64(base), base, after)
	}
	if base > 0 && float64(on) > 200*float64(base) {
		t.Errorf("enabled lockdep slowed uncontended cycle %.0fx (off=%v on=%v); is detection running on the hot path?",
			float64(on)/float64(base), base, on)
	}
}

// BenchmarkUncontendedLockUnlockLockdep measures the Disabled/Enabled
// cost of the hooks on the uncontended cycle:
//
//	go test -bench UncontendedLockUnlockLockdep -benchmem ./internal/lockdep/
func BenchmarkUncontendedLockUnlockLockdep(b *testing.B) {
	run := func(b *testing.B) {
		f := newLockFixture(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.l.Lock(f.th, f.o)
			f.l.Unlock(f.th, f.o)
		}
	}
	b.Run("Disabled", func(b *testing.B) {
		lockdep.Disable()
		run(b)
	})
	b.Run("Enabled", func(b *testing.B) {
		lockdep.Enable(lockdep.New(lockdep.Config{}))
		defer lockdep.Disable()
		run(b)
	})
}

// BenchmarkNestedPairLockdep measures the two-object nesting cycle,
// where the enabled path also folds (steady-state: looks up) an order
// edge per acquisition.
func BenchmarkNestedPairLockdep(b *testing.B) {
	run := func(b *testing.B) {
		f := newLockFixture(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.l.Lock(f.th, f.o)
			f.l.Lock(f.th, f.o2)
			f.l.Unlock(f.th, f.o2)
			f.l.Unlock(f.th, f.o)
		}
	}
	b.Run("Disabled", func(b *testing.B) {
		lockdep.Disable()
		run(b)
	})
	b.Run("Enabled", func(b *testing.B) {
		lockdep.Enable(lockdep.New(lockdep.Config{}))
		defer lockdep.Disable()
		run(b)
	})
}
