package lockdep

import (
	"fmt"
	"sort"
	"sync/atomic"

	"thinlock/internal/object"
	"thinlock/internal/telemetry"
)

// The flight recorder: a fixed ring of recent lock events, written
// lock-free from the hook paths (one Add plus a handful of plain
// atomic stores per event) and snapshotted on demand by the watchdog
// and the debug endpoints. Writers never coordinate, so a reader can
// observe a slot mid-overwrite; the per-slot sequence number written
// first and checked by the reader makes such tears visible, and the
// recorder is explicitly best-effort — it exists to answer "what were
// the locks doing just before the hang", not to be a precise trace
// (internal/locktrace is the precise, mutex-serialized recorder).

// RingSize is the flight-recorder capacity (most recent events kept).
const RingSize = 1024

// EventKind classifies a flight-recorder event.
type EventKind uint32

const (
	// EvAcquire is a first (non-nested) acquisition.
	EvAcquire EventKind = iota + 1
	// EvRelease is a final release.
	EvRelease
	// EvBlocked is the start of a blocking episode (aux = WaitKind).
	EvBlocked
	// EvCondWait is an Object.wait entry.
	EvCondWait
	// EvCondWake is an Object.wait return.
	EvCondWake
	// EvInversion marks a lock-order inversion report (aux = report seq).
	EvInversion
	// EvStallDump marks a watchdog flight-recorder dump.
	EvStallDump
)

// String returns the event label.
func (k EventKind) String() string {
	switch k {
	case EvAcquire:
		return "acquire"
	case EvRelease:
		return "release"
	case EvBlocked:
		return "blocked"
	case EvCondWait:
		return "cond-wait"
	case EvCondWake:
		return "cond-wake"
	case EvInversion:
		return "inversion"
	case EvStallDump:
		return "stall-dump"
	default:
		return "unknown"
	}
}

// ringSlot is one recorder slot; every field is atomic so concurrent
// writers and readers stay race-free (tears show as seq mismatches).
type ringSlot struct {
	seq    atomic.Uint64
	tns    atomic.Int64
	kind   atomic.Uint32
	thread atomic.Uint32
	obj    atomic.Pointer[object.Object]
	site   atomic.Uint32
	aux    atomic.Uint32
}

// ring is the recorder.
type ring struct {
	seq   atomic.Uint64
	slots [RingSize]ringSlot
}

// record appends one event (lock-free, allocation-free).
func (r *ring) record(kind EventKind, thread uint32, o *object.Object, site, aux uint32) {
	seq := r.seq.Add(1)
	s := &r.slots[seq&(RingSize-1)]
	s.seq.Store(seq)
	s.tns.Store(telemetry.Now())
	s.kind.Store(uint32(kind))
	s.thread.Store(thread)
	s.obj.Store(o)
	s.site.Store(site)
	s.aux.Store(aux)
}

// Event is one exported flight-recorder event.
type Event struct {
	Seq    uint64 `json:"seq"`
	TimeNs int64  `json:"time_ns"`
	Kind   string `json:"kind"`
	Thread string `json:"thread"`
	Object string `json:"object,omitempty"`
	Site   string `json:"site,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Events returns the flight recorder's contents, oldest first.
func (d *Lockdep) Events() []Event {
	var out []Event
	for i := range d.ring.slots {
		s := &d.ring.slots[i]
		seq := s.seq.Load()
		if seq == 0 {
			continue
		}
		kind := EventKind(s.kind.Load())
		ev := Event{
			Seq:    seq,
			TimeNs: s.tns.Load(),
			Kind:   kind.String(),
			Thread: d.threadLabel(uint16(s.thread.Load())),
		}
		if o := s.obj.Load(); o != nil {
			ev.Object = o.String()
		}
		if site := s.site.Load(); site != 0 {
			ev.Site = d.SiteLabel(site)
		}
		switch kind {
		case EvBlocked:
			ev.Detail = WaitKind(s.aux.Load()).String()
		case EvInversion:
			ev.Detail = "report"
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// threadLabel resolves a thread index to "name#index" via the slot the
// thread last touched, falling back to the bare index.
func (d *Lockdep) threadLabel(idx uint16) string {
	if idx == 0 {
		return "-"
	}
	if t := d.slots[int(idx)&(numSlots-1)].thr.Load(); t != nil && t.Index() == idx {
		return threadName(t)
	}
	return fmt.Sprintf("#%d", idx)
}
