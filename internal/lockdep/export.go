package lockdep

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Export formats for the debug endpoints (lockprof's /debug server
// mounts these under /debug/lockdep/*) and for cmd/lockmon reports.

// GraphEdge is one lock-order edge in the JSON export.
type GraphEdge struct {
	From        string `json:"from"`
	To          string `json:"to"`
	HoldSite    string `json:"hold_site"`
	AcquireSite string `json:"acquire_site"`
	Thread      string `json:"thread"`
	MultiThread bool   `json:"multi_thread"`
	Inverted    bool   `json:"inverted"` // part of a reported inversion cycle
}

// GraphExport is the JSON shape of /debug/lockdep/graph?format=json.
type GraphExport struct {
	Nodes      []string           `json:"nodes"`
	Edges      []GraphEdge        `json:"edges"`
	Inversions []*InversionReport `json:"inversions"`
	Stats      Stats              `json:"stats"`
}

// invertedEdges collects the (from, to) label pairs that appear in any
// reported inversion cycle, so exports can highlight them.
func (d *Lockdep) invertedEdges() map[[2]string]bool {
	out := map[[2]string]bool{}
	for _, r := range d.Inversions() {
		for _, e := range r.Cycle {
			out[[2]string{e.From, e.To}] = true
		}
	}
	return out
}

// GraphJSON returns the lock-order graph as a JSON export value.
func (d *Lockdep) GraphJSON() GraphExport {
	inv := d.invertedEdges()
	ex := GraphExport{
		Inversions: d.Inversions(),
		Stats:      d.Stats(),
	}
	for _, n := range d.graph.nodes() {
		ex.Nodes = append(ex.Nodes, n.label())
		for i := 0; i < maxOut; i++ {
			e := n.out[i].Load()
			if e == nil {
				break
			}
			ge := GraphEdge{
				From:        e.from.label(),
				To:          e.to.label(),
				HoldSite:    d.SiteLabel(e.holdSite),
				AcquireSite: d.SiteLabel(e.acqSite),
				Thread:      e.threadNm,
				MultiThread: e.multi.Load(),
			}
			ge.Inverted = inv[[2]string{ge.From, ge.To}]
			ex.Edges = append(ex.Edges, ge)
		}
	}
	return ex
}

// dotQuote escapes a string for use inside a DOT double-quoted id.
func dotQuote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

// WriteDOT renders the lock-order graph in Graphviz DOT form. Edges
// that participate in a reported inversion cycle are drawn red and
// bold; multi-thread edges solid, single-observer edges dashed.
func (d *Lockdep) WriteDOT(w io.Writer) {
	inv := d.invertedEdges()
	fmt.Fprintln(w, "digraph lockorder {")
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\"];")
	for _, n := range d.graph.nodes() {
		fmt.Fprintf(w, "  %s;\n", dotQuote(n.label()))
		for i := 0; i < maxOut; i++ {
			e := n.out[i].Load()
			if e == nil {
				break
			}
			attrs := []string{
				fmt.Sprintf("label=%s", dotQuote(d.SiteLabel(e.acqSite))),
			}
			if inv[[2]string{e.from.label(), e.to.label()}] {
				attrs = append(attrs, `color="red"`, `penwidth=2`)
			} else if !e.multi.Load() {
				attrs = append(attrs, `style="dashed"`)
			}
			fmt.Fprintf(w, "  %s -> %s [%s];\n",
				dotQuote(e.from.label()), dotQuote(e.to.label()), strings.Join(attrs, ", "))
		}
	}
	fmt.Fprintln(w, "}")
}

// WaitForExport is the JSON shape of /debug/lockdep/waitfor.
type WaitForExport struct {
	Waiters []WaitNode  `json:"waiters"`
	Cycles  []WaitCycle `json:"cycles"`
}

// WaitForJSON snapshots the wait-for graph and runs the cycle detector.
func (d *Lockdep) WaitForJSON() WaitForExport {
	return WaitForExport{
		Waiters: d.WaitingThreads(),
		Cycles:  d.DetectWaitCycles(),
	}
}

// WriteReport renders the full text report: counters, every inversion,
// any live deadlock, and the current waiters. This is what
// /debug/lockdep/report and `lockmon -lockdep` print.
func (d *Lockdep) WriteReport(w io.Writer) {
	st := d.Stats()
	fmt.Fprintf(w, "lockdep: %d lock objects, %d order edges, %d inversions, %d single-thread cycles suppressed\n",
		st.Nodes, st.Edges, st.Inversions, st.SingleThreadCycles)
	if st.SiteDrops+st.NodeDrops+st.EdgeDrops+st.ReportDrops+st.HeldOverflows > 0 {
		fmt.Fprintf(w, "lockdep: drops: sites=%d nodes=%d edges=%d reports=%d held-overflows=%d\n",
			st.SiteDrops, st.NodeDrops, st.EdgeDrops, st.ReportDrops, st.HeldOverflows)
	}
	for _, r := range d.Inversions() {
		fmt.Fprintf(w, "%s\n", r)
	}
	cycles := d.DetectWaitCycles()
	for _, c := range cycles {
		fmt.Fprintf(w, "%s\n", c)
	}
	waiters := d.WaitingThreads()
	if len(waiters) > 0 {
		fmt.Fprintf(w, "blocked threads (%d):\n", len(waiters))
		for _, n := range waiters {
			fmt.Fprintf(w, "  %s blocked on %s (%s at %s, %s)\n",
				n.Thread, n.BlockedOn, n.Kind, n.BlockedSite, time_ns(n.WaitNs))
		}
	}
	if st.Inversions == 0 && len(cycles) == 0 {
		fmt.Fprintf(w, "lockdep: no lock-order inversions or wait-for cycles observed\n")
	}
}

// MarshalJSONReport returns the report as one JSON document (used by
// /debug/lockdep/report?format=json).
func (d *Lockdep) MarshalJSONReport() ([]byte, error) {
	return json.MarshalIndent(struct {
		Stats      Stats              `json:"stats"`
		Inversions []*InversionReport `json:"inversions"`
		WaitFor    WaitForExport      `json:"wait_for"`
	}{
		Stats:      d.Stats(),
		Inversions: d.Inversions(),
		WaitFor:    d.WaitForJSON(),
	}, "", "  ")
}
