package lockdep_test

// End-to-end deadlock diagnosis through the real lock implementation:
// five philosophers on queued-inflation thin locks (contenders park on
// channels instead of burning CPU), all grabbing their left fork and
// then reaching for the right one. The wait-for detector must name the
// full cycle, and the watchdog must dump it. The philosopher goroutines
// stay parked for the life of the test binary — that is what a deadlock
// is — so this test leaks exactly numPhilosophers goroutines by design.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"thinlock/internal/core"
	"thinlock/internal/lockdep"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

const numPhilosophers = 5

// Not parallel: owns the global lockdep registration.
func TestDiningPhilosophersDeadlockIsDiagnosed(t *testing.T) {
	d := lockdep.Enable(lockdep.New(lockdep.Config{}))
	defer lockdep.Disable()

	l := core.New(core.Options{QueuedInflation: true})
	heap := object.NewHeap()
	reg := threading.NewRegistry()
	forks := make([]*object.Object, numPhilosophers)
	for i := range forks {
		forks[i] = heap.New("Fork")
	}

	// Barrier: every philosopher holds its left fork before any reaches
	// for the right one, so the deadlock forms deterministically.
	firstHeld := make(chan struct{}, numPhilosophers)
	proceed := make(chan struct{})
	for i := 0; i < numPhilosophers; i++ {
		i := i
		if _, err := reg.Go(fmt.Sprintf("phil-%d", i), func(th *threading.Thread) {
			l.Lock(th, forks[i])
			firstHeld <- struct{}{}
			<-proceed
			l.Lock(th, forks[(i+1)%numPhilosophers]) // never returns
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < numPhilosophers; i++ {
		<-firstHeld
	}
	close(proceed)

	// The detector must find the full 5-thread cycle.
	deadline := time.Now().Add(10 * time.Second)
	var cycle lockdep.WaitCycle
	for {
		var found bool
		for _, c := range d.DetectWaitCycles() {
			if len(c.Threads) == numPhilosophers {
				cycle, found = c, true
				break
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deadlock never detected; waiters: %+v", d.WaitingThreads())
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := cycle.String()
	if !strings.Contains(s, "wait-for cycle (5 threads deadlocked)") {
		t.Errorf("cycle header wrong: %q", s)
	}
	for i := 0; i < numPhilosophers; i++ {
		if !strings.Contains(s, fmt.Sprintf("phil-%d#", i)) {
			t.Errorf("cycle does not name phil-%d:\n%s", i, s)
		}
	}
	// Every philosopher holds one fork and blocks on another; the report
	// must show both the held and the blocked-on sites.
	if strings.Count(s, "holds Fork#") != numPhilosophers {
		t.Errorf("cycle does not list every held fork:\n%s", s)
	}
	if !strings.Contains(s, "queued-park") {
		t.Errorf("cycle does not show the park kind:\n%s", s)
	}

	// The watchdog must dump the same stall, once per episode.
	dumps := make(chan lockdep.StallDump, 1)
	w := d.StartWatchdog(lockdep.WatchdogOptions{
		Threshold: 50 * time.Millisecond,
		Interval:  10 * time.Millisecond,
		OnStall: func(sd lockdep.StallDump) {
			select {
			case dumps <- sd:
			default:
			}
		},
	})
	defer w.Stop()
	var dump lockdep.StallDump
	select {
	case dump = <-dumps:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never dumped the deadlock")
	}
	if len(dump.Stalled) != numPhilosophers {
		t.Errorf("stalled threads = %d, want %d", len(dump.Stalled), numPhilosophers)
	}
	if len(dump.Cycles) == 0 {
		t.Errorf("watchdog dump does not include the wait-for cycle")
	}
	var text strings.Builder
	dump.WriteText(&text)
	for _, want := range []string{"stall dump", "wait-for cycle", "phil-0#", "recent events"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("dump text missing %q", want)
		}
	}
}

// Ordered forks — every philosopher takes the lower-numbered fork
// first — contend on the same objects but cannot deadlock, and lockdep
// must stay silent: no inversions and, once the run drains, no cycles.
// Not parallel: owns the global lockdep registration.
func TestOrderedForksProduceNoReports(t *testing.T) {
	d := lockdep.Enable(lockdep.New(lockdep.Config{}))
	defer lockdep.Disable()

	l := core.New(core.Options{QueuedInflation: true})
	heap := object.NewHeap()
	reg := threading.NewRegistry()
	forks := make([]*object.Object, numPhilosophers)
	for i := range forks {
		forks[i] = heap.New("Fork")
	}

	var dones []<-chan struct{}
	for i := 0; i < numPhilosophers; i++ {
		i := i
		done, err := reg.Go(fmt.Sprintf("phil-%d", i), func(th *threading.Thread) {
			lo, hi := i, (i+1)%numPhilosophers
			if lo > hi {
				lo, hi = hi, lo
			}
			for round := 0; round < 200; round++ {
				l.Lock(th, forks[lo])
				l.Lock(th, forks[hi])
				l.Unlock(th, forks[hi])
				l.Unlock(th, forks[lo])
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		dones = append(dones, done)
	}
	for _, done := range dones {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("ordered philosophers hung (they must not)")
		}
	}
	st := d.Stats()
	if st.Inversions != 0 {
		t.Fatalf("ordered acquisition reported inversions: %+v\n%v", st, d.Inversions())
	}
	if cycles := d.DetectWaitCycles(); len(cycles) != 0 {
		t.Fatalf("wait cycles after all threads exited: %v", cycles)
	}
	if st.Edges == 0 {
		t.Errorf("no order edges recorded — hooks not wired?")
	}
}
