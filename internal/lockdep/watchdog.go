package lockdep

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"thinlock/internal/telemetry"
)

// The stall watchdog. A background ticker scans the wait-for state; any
// thread whose current blocking episode has lasted past a threshold
// triggers a flight-recorder dump: the stalled threads, every current
// wait-for edge, any wait-for cycles (a stall that *is* a deadlock gets
// named as one), the lock-order inversions seen so far, and the recent
// event ring. Each blocking episode dumps at most once (tracked by the
// per-slot wait sequence number), so a hard hang produces one report,
// not one per tick.

// WatchdogOptions configures StartWatchdog. The zero value is valid.
type WatchdogOptions struct {
	// Threshold is how long a single blocking episode may last before
	// it is reported as a stall. Default 1s.
	Threshold time.Duration
	// Interval is the scan period. Default Threshold/4, floored at
	// 10ms.
	Interval time.Duration
	// OnStall receives each dump. Default: write text to os.Stderr is
	// NOT assumed — a nil OnStall only counts the stall; callers that
	// want output must say where.
	OnStall func(StallDump)
}

// StallDump is one watchdog report: everything needed to diagnose the
// stall post mortem.
type StallDump struct {
	// WhenNs is the telemetry.Now timestamp of the dump.
	WhenNs int64 `json:"when_ns"`
	// Threshold is the stall threshold that was exceeded.
	Threshold time.Duration `json:"threshold_ns"`
	// Stalled lists the threads whose wait exceeded the threshold.
	Stalled []WaitNode `json:"stalled"`
	// Waiters is the full wait-for snapshot at dump time.
	Waiters []WaitNode `json:"waiters"`
	// Cycles lists confirmed wait-for cycles: actual deadlocks.
	Cycles []WaitCycle `json:"cycles,omitempty"`
	// Inversions lists the lock-order inversion reports seen so far.
	Inversions []*InversionReport `json:"inversions,omitempty"`
	// Events is the flight recorder at dump time, oldest first.
	Events []Event `json:"events,omitempty"`
}

// WriteText renders the dump as an indented text report.
func (sd StallDump) WriteText(w io.Writer) {
	fmt.Fprintf(w, "=== lockdep stall dump (threshold %v) ===\n", sd.Threshold)
	fmt.Fprintf(w, "stalled threads: %d\n", len(sd.Stalled))
	for _, n := range sd.Stalled {
		fmt.Fprintf(w, "  %s blocked on %s for %s (%s at %s)\n",
			n.Thread, n.BlockedOn, time_ns(n.WaitNs), n.Kind, n.BlockedSite)
		if n.Holder != "" {
			fmt.Fprintf(w, "    held by %s\n", n.Holder)
		}
		for _, h := range n.Holds {
			fmt.Fprintf(w, "    holds %s (acquired at %s)\n", h.Object, h.Site)
		}
	}
	if len(sd.Cycles) > 0 {
		fmt.Fprintf(w, "deadlocks:\n")
		for _, c := range sd.Cycles {
			fmt.Fprintf(w, "%s\n", c)
		}
	}
	if len(sd.Inversions) > 0 {
		fmt.Fprintf(w, "lock-order inversions:\n")
		for _, r := range sd.Inversions {
			fmt.Fprintf(w, "%s\n", r)
		}
	}
	if n := len(sd.Events); n > 0 {
		const tail = 32
		evs := sd.Events
		if n > tail {
			fmt.Fprintf(w, "recent events (last %d of %d):\n", tail, n)
			evs = evs[n-tail:]
		} else {
			fmt.Fprintf(w, "recent events (%d):\n", n)
		}
		for _, ev := range evs {
			fmt.Fprintf(w, "  [%d] %-10s %-14s %s", ev.Seq, ev.Kind, ev.Thread, ev.Object)
			if ev.Detail != "" {
				fmt.Fprintf(w, " (%s)", ev.Detail)
			}
			if ev.Site != "" {
				fmt.Fprintf(w, " at %s", ev.Site)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "=== end stall dump ===\n")
}

// Watchdog is a running stall scanner. Stop it with Stop.
type Watchdog struct {
	d    *Lockdep
	opts WatchdogOptions

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// lastDump remembers, per thread slot, the wait sequence number of
	// the last episode already dumped, so each stall reports once.
	lastDump [numSlots]atomic.Uint64

	dumps atomic.Uint64
}

// StartWatchdog begins scanning d for stalls and returns the running
// watchdog.
func (d *Lockdep) StartWatchdog(opts WatchdogOptions) *Watchdog {
	if opts.Threshold <= 0 {
		opts.Threshold = time.Second
	}
	if opts.Interval <= 0 {
		opts.Interval = opts.Threshold / 4
	}
	if opts.Interval < 10*time.Millisecond {
		opts.Interval = 10 * time.Millisecond
	}
	w := &Watchdog{
		d:    d,
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go w.run()
	return w
}

// Stop halts the watchdog and waits for its goroutine to exit. Safe to
// call more than once.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

// Dumps reports how many stall dumps have fired.
func (w *Watchdog) Dumps() uint64 { return w.dumps.Load() }

func (w *Watchdog) run() {
	defer close(w.done)
	tick := time.NewTicker(w.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.scan()
		}
	}
}

// scan inspects the current waiters and fires a dump if any episode
// has outlived the threshold and was not already reported.
func (w *Watchdog) scan() {
	edges := w.d.snapshotWaiters()
	thresholdNs := w.opts.Threshold.Nanoseconds()
	var stalled []WaitNode
	var fresh []*waitEdge
	for i := range edges {
		e := &edges[i]
		if e.node.WaitNs < thresholdNs {
			continue
		}
		if w.lastDump[e.slot].Load() == e.seq {
			continue // this episode already dumped
		}
		stalled = append(stalled, e.node)
		fresh = append(fresh, e)
	}
	if len(stalled) == 0 {
		return
	}
	for _, e := range fresh {
		w.lastDump[e.slot].Store(e.seq)
	}
	dump := StallDump{
		WhenNs:     telemetry.Now(),
		Threshold:  w.opts.Threshold,
		Stalled:    stalled,
		Waiters:    make([]WaitNode, 0, len(edges)),
		Cycles:     w.d.DetectWaitCycles(),
		Inversions: w.d.Inversions(),
		Events:     w.d.Events(),
	}
	for i := range edges {
		dump.Waiters = append(dump.Waiters, edges[i].node)
	}
	w.dumps.Add(1)
	w.d.ring.record(EvStallDump, 0, nil, 0, uint32(len(stalled)))
	if w.opts.OnStall != nil {
		w.opts.OnStall(dump)
	}
}
