package lockdep

import (
	"fmt"

	"thinlock/internal/telemetry"
)

// The live wait-for graph. Unlike the order graph (ever-observed
// facts), the wait-for state is instantaneous: an edge exists while
// thread W is blocked acquiring object O and thread H's held stack
// contains O. A cycle in *this* graph is not a potential deadlock — it
// is one, and the detector names every participant: the thread, what
// it blocks on, where, for how long, and everything it holds.
//
// The hooks record wait states optimistically (a slow path marks
// Blocked before it knows whether it will actually park), so a
// snapshot can contain edges that resolve microseconds later. The
// detector therefore revalidates each cycle against the live state
// (same blocking episode, by sequence number) before reporting it;
// callers that want certainty (the watchdog) additionally only fire
// after a threshold of real elapsed time.

// HeldLock describes one lock a thread holds, for reports.
type HeldLock struct {
	Object string `json:"object"`
	ID     uint64 `json:"id"`
	Depth  uint32 `json:"depth"`
	Site   string `json:"site"`
}

// WaitNode is one blocked thread in the wait-for graph.
type WaitNode struct {
	Thread      string     `json:"thread"`
	ThreadIndex uint16     `json:"thread_index"`
	Kind        string     `json:"kind"`
	BlockedOn   string     `json:"blocked_on"`
	BlockedOnID uint64     `json:"blocked_on_id"`
	BlockedSite string     `json:"blocked_site"`
	WaitNs      int64      `json:"wait_ns"`
	Holder      string     `json:"holder,omitempty"` // thread holding BlockedOn, if known
	Holds       []HeldLock `json:"holds,omitempty"`
}

// WaitCycle is one deadlock: a closed loop of threads each blocked on
// an object the next one holds.
type WaitCycle struct {
	Threads []WaitNode `json:"threads"`
}

// String renders the cycle one thread per line.
func (c WaitCycle) String() string {
	s := fmt.Sprintf("wait-for cycle (%d threads deadlocked):", len(c.Threads))
	for _, n := range c.Threads {
		s += fmt.Sprintf("\n  %s blocked on %s (%s at %s, %v)", n.Thread, n.BlockedOn,
			n.Kind, n.BlockedSite, time_ns(n.WaitNs))
		for _, h := range n.Holds {
			s += fmt.Sprintf("\n    holds %s (depth %d, acquired at %s)", h.Object, h.Depth, h.Site)
		}
	}
	return s
}

func time_ns(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%dus", ns/1e3)
	}
}

// waitEdge is the internal snapshot of one blocked thread.
type waitEdge struct {
	slot     int // index into d.slots
	seq      uint64
	objID    uint64
	holder   int // slot index of the holder, -1 if none found
	node     WaitNode
}

// snapshotWaiters collects every thread currently marked blocked,
// resolving the holder of each blocked-on object by scanning the held
// stacks. On-demand cost only (reports, watchdog scans).
func (d *Lockdep) snapshotWaiters() []waitEdge {
	now := telemetry.Now()
	var out []waitEdge
	for i := range d.slots {
		s := &d.slots[i]
		o := s.waitObj.Load()
		if o == nil {
			continue
		}
		kind := WaitKind(s.waitKind.Load())
		e := waitEdge{
			slot:   i,
			seq:    s.waitSeq.Load(),
			objID:  o.ID(),
			holder: -1,
		}
		e.node = WaitNode{
			Kind:        kind.String(),
			BlockedOn:   o.String(),
			BlockedOnID: o.ID(),
			BlockedSite: d.SiteLabel(s.waitSite.Load()),
			WaitNs:      now - s.waitStart.Load(),
		}
		if t := s.thr.Load(); t != nil {
			e.node.Thread = threadName(t)
			e.node.ThreadIndex = t.Index()
		} else {
			e.node.Thread = fmt.Sprintf("slot#%d", i)
		}
		e.node.Holds = d.heldOf(i)
		if h := d.holderOf(o.ID(), i); h >= 0 {
			e.holder = h
			if t := d.slots[h].thr.Load(); t != nil {
				e.node.Holder = threadName(t)
			}
		}
		out = append(out, e)
	}
	return out
}

// heldOf lists slot i's held locks.
func (d *Lockdep) heldOf(i int) []HeldLock {
	s := &d.slots[i]
	n := s.heldLen.Load()
	if n > maxHeld {
		n = maxHeld
	}
	var out []HeldLock
	for j := uint32(0); j < n; j++ {
		o := s.held[j].obj.Load()
		if o == nil {
			continue
		}
		out = append(out, HeldLock{
			Object: o.String(),
			ID:     o.ID(),
			Depth:  s.held[j].n.Load(),
			Site:   d.SiteLabel(s.held[j].site.Load()),
		})
	}
	return out
}

// holderOf scans all held stacks for objID, skipping the waiter's own
// slot (a thread nested-blocking on a lock it owns is not a wait-for
// edge). Returns the holder's slot index or -1.
func (d *Lockdep) holderOf(objID uint64, skip int) int {
	for i := range d.slots {
		if i == skip {
			continue
		}
		s := &d.slots[i]
		n := s.heldLen.Load()
		if n == 0 {
			continue
		}
		if n > maxHeld {
			n = maxHeld
		}
		for j := uint32(0); j < n; j++ {
			if s.held[j].id.Load() == objID {
				return i
			}
		}
	}
	return -1
}

// WaitingThreads returns the current wait-for edges (every blocked
// thread, with its holder where one is known).
func (d *Lockdep) WaitingThreads() []WaitNode {
	edges := d.snapshotWaiters()
	out := make([]WaitNode, 0, len(edges))
	for _, e := range edges {
		out = append(out, e.node)
	}
	return out
}

// DetectWaitCycles runs the on-demand deadlock detector: it snapshots
// the wait-for graph, finds the cycles, revalidates every participant
// against the live state (same object, same blocking episode) and
// returns the confirmed cycles.
func (d *Lockdep) DetectWaitCycles() []WaitCycle {
	edges := d.snapshotWaiters()
	bySlot := make(map[int]*waitEdge, len(edges))
	for i := range edges {
		bySlot[edges[i].slot] = &edges[i]
	}
	var cycles []WaitCycle
	state := make(map[int]int, len(edges)) // 0 unvisited, 1 on stack, 2 done
	for i := range edges {
		if state[edges[i].slot] != 0 {
			continue
		}
		// Walk waiter→holder until we fall off the graph or loop.
		var stack []*waitEdge
		cur := &edges[i]
		for cur != nil && state[cur.slot] == 0 {
			state[cur.slot] = 1
			stack = append(stack, cur)
			if cur.holder < 0 {
				break
			}
			cur = bySlot[cur.holder]
		}
		if cur != nil && state[cur.slot] == 1 {
			// Found a loop: the cycle is the stack suffix from cur.
			start := 0
			for j, e := range stack {
				if e == cur {
					start = j
					break
				}
			}
			cyc := stack[start:]
			if d.revalidate(cyc) {
				var wc WaitCycle
				for _, e := range cyc {
					wc.Threads = append(wc.Threads, e.node)
				}
				cycles = append(cycles, wc)
			}
		}
		for _, e := range stack {
			state[e.slot] = 2
		}
	}
	return cycles
}

// revalidate confirms every member of a candidate cycle is still in
// the same blocking episode on the same object, filtering out cycles
// assembled from already-resolved optimistic wait marks.
func (d *Lockdep) revalidate(cyc []*waitEdge) bool {
	if len(cyc) < 2 {
		return false
	}
	for _, e := range cyc {
		s := &d.slots[e.slot]
		o := s.waitObj.Load()
		if o == nil || o.ID() != e.objID || s.waitSeq.Load() != e.seq {
			return false
		}
	}
	return true
}
