package staticlock

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"thinlock/internal/lockdep"
)

// GraphJSON exports the static graph in lockdep's GraphExport shape so
// the same tooling (and `lockvet -runtime`) consumes both. Thread is
// always "static"; MultiThread is true on cross-node edges because a
// static edge stands for every thread that could run the path, and
// false on suppressed self edges so DOT dashes them like lockdep's
// single-observer edges.
func (g *Graph) GraphJSON() lockdep.GraphExport {
	ex := lockdep.GraphExport{
		Nodes:      g.sortedNodes(),
		Inversions: g.cycles,
	}
	for _, e := range g.sortedEdges() {
		ex.Edges = append(ex.Edges, lockdep.GraphEdge{
			From:        e.from,
			To:          e.to,
			HoldSite:    e.holdSite,
			AcquireSite: e.acquireSite,
			Thread:      "static",
			MultiThread: e.from != e.to,
			Inverted:    e.inverted,
		})
	}
	ex.Stats.Nodes = len(ex.Nodes)
	ex.Stats.Edges = len(ex.Edges)
	ex.Stats.Inversions = len(g.cycles)
	return ex
}

func dotQuote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

// WriteDOT renders the static graph in the same Graphviz form as
// lockdep.WriteDOT: cycle edges red and bold, self edges dashed.
func (g *Graph) WriteDOT(w io.Writer) {
	fmt.Fprintln(w, "digraph lockorder {")
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\"];")
	for _, n := range g.sortedNodes() {
		fmt.Fprintf(w, "  %s;\n", dotQuote(n))
	}
	for _, e := range g.sortedEdges() {
		attrs := []string{fmt.Sprintf("label=%s", dotQuote(e.acquireSite))}
		if e.inverted {
			attrs = append(attrs, `color="red"`, `penwidth=2`)
		} else if e.from == e.to {
			attrs = append(attrs, `style="dashed"`)
		}
		fmt.Fprintf(w, "  %s -> %s [%s];\n",
			dotQuote(e.from), dotQuote(e.to), strings.Join(attrs, ", "))
	}
	fmt.Fprintln(w, "}")
}

// WriteReport renders a text report in the lockdep report style.
func (g *Graph) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "staticlock: %d lock nodes, %d order edges, %d static cycles, %d same-class nestings suppressed\n",
		len(g.nodes), len(g.edges), len(g.cycles), len(g.selfNesting))
	for _, r := range g.cycles {
		fmt.Fprintf(w, "%s\n", r)
	}
	if len(g.cycles) == 0 {
		fmt.Fprintf(w, "staticlock: no statically possible lock-order cycles\n")
	}
}

// LoadRuntimeExport parses a lockdep GraphExport JSON document, as
// written by /debug/lockdep/graph?format=json or `lockmon`.
func LoadRuntimeExport(r io.Reader) (*lockdep.GraphExport, error) {
	var ex lockdep.GraphExport
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ex); err != nil {
		return nil, fmt.Errorf("staticlock: parse runtime export: %w", err)
	}
	return &ex, nil
}

// Diff compares the static graph against a runtime lockdep export.
type Diff struct {
	// Matched lists static edges the runtime also observed.
	Matched []lockdep.GraphEdge
	// RuntimeOnly lists runtime edges outside the static graph —
	// either instance-level order within one class (static self edge)
	// or coverage the static walk missed.
	RuntimeOnly []lockdep.GraphEdge
	// StaticOnly lists statically possible edges no runtime observation
	// hit: latent orders the test workload never exercised.
	StaticOnly []lockdep.GraphEdge
}

// runtimeNode maps a runtime lock label ("Fork#3") to its static node
// ("Fork") by stripping the instance id suffix.
func runtimeNode(label string) string {
	if i := strings.LastIndex(label, "#"); i > 0 {
		digits := label[i+1:]
		if digits != "" && strings.Trim(digits, "0123456789") == "" {
			return label[:i]
		}
	}
	return label
}

// DiffRuntime folds a runtime export onto the static graph. Runtime
// edges between two instances of one class match the static self edge
// when one exists.
func (g *Graph) DiffRuntime(rt *lockdep.GraphExport) Diff {
	var d Diff
	seen := make(map[[2]string]bool)
	for _, re := range rt.Edges {
		k := [2]string{runtimeNode(re.From), runtimeNode(re.To)}
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := g.edges[k]; ok {
			d.Matched = append(d.Matched, re)
		} else if k[0] == k[1] && g.selfNesting[k[0]] != nil {
			d.Matched = append(d.Matched, re)
		} else {
			d.RuntimeOnly = append(d.RuntimeOnly, re)
		}
	}
	for _, e := range g.sortedEdges() {
		if !seen[[2]string{e.from, e.to}] {
			d.StaticOnly = append(d.StaticOnly, lockdep.GraphEdge{
				From: e.from, To: e.to,
				HoldSite: e.holdSite, AcquireSite: e.acquireSite,
				Thread: "static", MultiThread: e.from != e.to,
				Inverted: e.inverted,
			})
		}
	}
	for _, s := range [][]lockdep.GraphEdge{d.Matched, d.RuntimeOnly, d.StaticOnly} {
		sort.Slice(s, func(i, j int) bool {
			if s[i].From != s[j].From {
				return s[i].From < s[j].From
			}
			return s[i].To < s[j].To
		})
	}
	return d
}

// WriteDiff renders the diff as text.
func (d Diff) WriteDiff(w io.Writer) {
	fmt.Fprintf(w, "static-vs-runtime lock order: %d matched, %d runtime-only, %d static-only\n",
		len(d.Matched), len(d.RuntimeOnly), len(d.StaticOnly))
	for _, e := range d.Matched {
		fmt.Fprintf(w, "  = %s -> %s (runtime: acquired at %s by %s)\n", e.From, e.To, e.AcquireSite, e.Thread)
	}
	for _, e := range d.RuntimeOnly {
		fmt.Fprintf(w, "  + runtime-only %s -> %s (acquired at %s by %s)\n", e.From, e.To, e.AcquireSite, e.Thread)
	}
	for _, e := range d.StaticOnly {
		fmt.Fprintf(w, "  - static-only %s -> %s (possible at %s, never observed)\n", e.From, e.To, e.AcquireSite)
	}
}
