package staticlock

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"thinlock/internal/lockdep"
	"thinlock/internal/minijava"
	"thinlock/internal/object"
	"thinlock/internal/threading"
	"thinlock/internal/vm"
)

func analyzeFile(t *testing.T, path string) *Graph {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := minijava.Compile(string(src))
	if err != nil {
		t.Fatalf("compile %s: %v", path, err)
	}
	g, err := Analyze(prog)
	if err != nil {
		t.Fatalf("analyze %s: %v", path, err)
	}
	return g
}

func TestAbbaFlagged(t *testing.T) {
	g := analyzeFile(t, "testdata/abba.mj")
	cycles := g.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("got %d cycles, want 1: %v", len(cycles), cycles)
	}
	rep := cycles[0]
	nodes := map[string]bool{}
	for _, e := range rep.Cycle {
		nodes[e.From] = true
		if e.Thread != "static" {
			t.Errorf("cycle edge thread = %q, want static", e.Thread)
		}
	}
	if !nodes["GuardA"] || !nodes["GuardB"] {
		t.Fatalf("cycle over %v, want GuardA and GuardB", nodes)
	}
	// Both directions must exist and be marked inverted in the export.
	ex := g.GraphJSON()
	dirs := map[[2]string]bool{}
	for _, e := range ex.Edges {
		if e.Inverted {
			dirs[[2]string{e.From, e.To}] = true
		}
	}
	if !dirs[[2]string{"GuardA", "GuardB"}] || !dirs[[2]string{"GuardB", "GuardA"}] {
		t.Fatalf("inverted edges = %v, want both GuardA<->GuardB directions", dirs)
	}
	// Sites carry minijava source lines.
	for _, e := range rep.Cycle {
		if !strings.Contains(e.AcquireSite, "(line ") {
			t.Errorf("acquire site %q does not cite a source line", e.AcquireSite)
		}
	}
}

func TestDiningStaysSilent(t *testing.T) {
	g := analyzeFile(t, "testdata/dining.mj")
	if got := g.Cycles(); len(got) != 0 {
		t.Fatalf("ordered dining flagged: %v", got)
	}
	if n := g.SelfNestings()["Fork"]; n == 0 {
		t.Fatalf("expected a suppressed Fork self nesting, got %v", g.SelfNestings())
	}
	// The self edge is still present in the export, dashed, uninverted.
	ex := g.GraphJSON()
	var self *lockdep.GraphEdge
	for i, e := range ex.Edges {
		if e.From == "Fork" && e.To == "Fork" {
			self = &ex.Edges[i]
		}
	}
	if self == nil {
		t.Fatal("Fork self edge missing from export")
	}
	if self.Inverted || self.MultiThread {
		t.Fatalf("self edge should be uninverted single-observer, got %+v", self)
	}
	if ex.Stats.Inversions != 0 {
		t.Fatalf("stats report %d inversions", ex.Stats.Inversions)
	}
}

// TestAsmAbbaFlagged builds the ABBA shape directly in bytecode (no
// compiler): two static methods locking class-typed params in opposite
// orders, discovered through an interprocedural walk from main.
func TestAsmAbbaFlagged(t *testing.T) {
	p := vm.NewProgram()
	ca := p.AddClass(&vm.Class{Name: "A", NumFields: 1})
	cb := p.AddClass(&vm.Class{Name: "B", NumFields: 1})
	lockBoth := func(name string, first, second int32) *vm.Method {
		return &vm.Method{
			Name: name, Flags: vm.FlagStatic,
			NumArgs: 2, MaxLocals: 2,
			ParamClasses: []int{ca, cb},
			Code: vm.NewAsm().
				Aload(first).MonitorEnter().
				Aload(second).MonitorEnter().
				Aload(second).MonitorExit().
				Aload(first).MonitorExit().
				Return().
				MustBuild(),
		}
	}
	mf := p.AddMethod(lockBoth("f", 0, 1))
	mg := p.AddMethod(lockBoth("g", 1, 0))
	p.AddMethod(&vm.Method{
		Name: "main", Flags: vm.FlagStatic, MaxLocals: 2,
		Code: vm.NewAsm().
			New(int32(ca)).Astore(0).
			New(int32(cb)).Astore(1).
			Aload(0).Aload(1).Invoke(int32(mf)).
			Aload(0).Aload(1).Invoke(int32(mg)).
			Return().
			MustBuild(),
	})
	g, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cycles()) != 1 {
		t.Fatalf("got %d cycles, want 1:\n%s", len(g.Cycles()), dotOf(g))
	}
}

func dotOf(g *Graph) string {
	var b bytes.Buffer
	g.WriteDOT(&b)
	return b.String()
}

func TestExportShapes(t *testing.T) {
	g := analyzeFile(t, "testdata/abba.mj")
	dot := dotOf(g)
	for _, want := range []string{
		"digraph lockorder {",
		"rankdir=LR;",
		`"GuardA" -> "GuardB"`,
		`color="red", penwidth=2`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}

	raw, err := json.Marshal(g.GraphJSON())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"from"`, `"to"`, `"hold_site"`, `"acquire_site"`, `"inverted"`, `"nodes"`, `"inversions"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("JSON export missing key %s", key)
		}
	}
	// The static export must round-trip through the same loader that
	// reads runtime lockdep exports.
	ex, err := LoadRuntimeExport(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Edges) != len(g.GraphJSON().Edges) || len(ex.Nodes) != len(g.GraphJSON().Nodes) {
		t.Fatalf("round-trip lost shape: %d/%d edges, %d/%d nodes",
			len(ex.Edges), len(g.GraphJSON().Edges), len(ex.Nodes), len(g.GraphJSON().Nodes))
	}

	var rep bytes.Buffer
	g.WriteReport(&rep)
	if !strings.Contains(rep.String(), "lock-order inversion #1") {
		t.Errorf("report missing inversion:\n%s", rep.String())
	}
}

// TestDiffRuntime drives a real lockdep instance through the abba
// workload's acquisition orders, exports its graph JSON, and diffs it
// against the static analysis of testdata/abba.mj: every runtime edge
// must map onto a static edge.
func TestDiffRuntime(t *testing.T) {
	g := analyzeFile(t, "testdata/abba.mj")

	d := lockdep.New(lockdep.Config{})
	reg := threading.NewRegistry()
	t1, err := reg.Attach("t1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := reg.Attach("t2")
	if err != nil {
		t.Fatal(err)
	}
	heap := object.NewHeap()
	a := heap.New("GuardA")
	b := heap.New("GuardB")
	// t1: A then B; t2: B then A — the runtime view of the same hazard.
	d.Acquired(t1, a)
	d.Acquired(t1, b)
	d.Released(t1, b)
	d.Released(t1, a)
	d.Acquired(t2, b)
	d.Acquired(t2, a)
	d.Released(t2, a)
	d.Released(t2, b)

	raw, err := json.Marshal(d.GraphJSON())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := LoadRuntimeExport(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Edges) == 0 {
		t.Fatal("runtime export has no edges; workload did not register")
	}
	diff := g.DiffRuntime(rt)
	if len(diff.RuntimeOnly) != 0 {
		t.Fatalf("runtime observed edges the static graph missed: %+v", diff.RuntimeOnly)
	}
	if len(diff.Matched) != 2 {
		t.Fatalf("matched %d edges, want 2 (A->B and B->A): %+v", len(diff.Matched), diff.Matched)
	}
	var out bytes.Buffer
	diff.WriteDiff(&out)
	if !strings.Contains(out.String(), "2 matched, 0 runtime-only") {
		t.Errorf("diff summary wrong:\n%s", out.String())
	}
}

// TestRuntimeNodeMapping pins the label-collapsing rule.
func TestRuntimeNodeMapping(t *testing.T) {
	cases := map[string]string{
		"Fork#3":       "Fork",
		"GuardA#12":    "GuardA",
		"Fork":         "Fork",
		"Main.f#slot0": "Main.f#slot0", // static slot names survive
		"object#7":     "object",
		"#7":           "#7",
		"Weird#tag":    "Weird#tag",
	}
	for in, want := range cases {
		if got := runtimeNode(in); got != want {
			t.Errorf("runtimeNode(%q) = %q, want %q", in, got, want)
		}
	}
}
