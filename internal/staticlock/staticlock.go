// Package staticlock builds a *static* lock-order graph for a whole
// vm.Program by walking its call graph over the monitor facts the
// structured-locking verifier proves (internal/vm.CollectMonitorFacts).
//
// Nodes are lock identities as far as they are statically known:
// classes (every instance of a class collapses into one node, the way
// internal/lockdep's runtime nodes "Class#id" collapse when the #id is
// stripped), "Class<class>" objects for static synchronized methods,
// and per-method slots or sites when no class is known. Edges mean "a
// path exists that acquires To while holding From". Cross-node cycles
// are reported as static ABBA hazards; pure same-node self edges
// (nested locking of two instances of one class, e.g. the dining
// philosophers' ordered forks) are recorded but deliberately NOT
// reported — instance order within a class is invisible statically,
// and flagging it would make every ordered fine-grained structure a
// false positive.
//
// The graph exports in the same DOT/JSON shapes as internal/lockdep so
// `lockvet -runtime` can diff "statically possible" against "observed
// at runtime".
package staticlock

import (
	"fmt"
	"sort"
	"strings"

	"thinlock/internal/lockdep"
	"thinlock/internal/vm"
)

// held is one monitor held in the current exploration context.
type held struct {
	node string
	site string
}

// edge is one aggregated order edge.
type edge struct {
	from, to    string
	holdSite    string // where From was (first) acquired
	acquireSite string // where To was (first) acquired while holding From
	count       int    // distinct (site) observations folded in
	inverted    bool   // participates in a reported cycle
}

// Graph is the static lock-order graph of one program.
type Graph struct {
	prog  *vm.Program
	nodes map[string]bool
	edges map[[2]string]*edge
	// selfNesting counts suppressed same-node nestings per node.
	selfNesting map[string]*edge
	cycles      []*lockdep.InversionReport
}

// Analyze verifies every method (collecting monitor facts) and builds
// the static lock-order graph by interprocedural exploration: every
// method is considered a potential entry point, and calls are followed
// with the caller's held-monitor context.
func Analyze(p *vm.Program) (*Graph, error) {
	g := &Graph{
		prog:        p,
		nodes:       make(map[string]bool),
		edges:       make(map[[2]string]*edge),
		selfNesting: make(map[string]*edge),
	}
	facts := make([]*vm.MethodMonitorFacts, len(p.Methods))
	for i, m := range p.Methods {
		f, err := vm.CollectMonitorFacts(p, m)
		if err != nil {
			return nil, fmt.Errorf("staticlock: %s: %w", m.QualifiedName(), err)
		}
		facts[i] = f
	}
	// visited memoizes (method, held-node context) so recursive and
	// deeply-shared call graphs terminate: re-walking a method under a
	// context adding no new held nodes cannot add new edges.
	visited := make(map[string]bool)
	var walk func(mi int, ctx []held)
	walk = func(mi int, ctx []held) {
		key := keyOf(mi, ctx)
		if visited[key] {
			return
		}
		visited[key] = true
		m := p.Methods[mi]
		f := facts[mi]
		if m.Sync() {
			n := g.syncNode(m)
			site := fmt.Sprintf("%s@sync-prologue", m.QualifiedName())
			g.addAcquire(ctx, n, site)
			ctx = append(append([]held(nil), ctx...), held{node: n, site: site})
		}
		for pc, in := range m.Code {
			switch in.Op {
			case vm.OpMonitorEnter:
				ef, ok := f.EnterAt[pc]
				if !ok {
					continue // unreachable
				}
				inner := g.heldContext(m, ctx, f.HeldAt[pc])
				g.addAcquire(inner, g.nodeFor(m, ef), g.siteFor(m, ef.EnterPC, ef.Line))
			case vm.OpInvoke:
				if f.HeldAt[pc] == nil {
					continue // unreachable
				}
				walk(int(in.A), g.heldContext(m, ctx, f.HeldAt[pc]))
			}
		}
	}
	for i := range p.Methods {
		walk(i, nil)
	}
	g.detectCycles()
	return g, nil
}

func keyOf(mi int, ctx []held) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", mi)
	for _, h := range ctx {
		b.WriteByte('|')
		b.WriteString(h.node)
	}
	return b.String()
}

// heldContext appends the verifier's held-monitor stack at a pc to the
// interprocedural context.
func (g *Graph) heldContext(m *vm.Method, ctx []held, heldAt []vm.MonitorFact) []held {
	out := append([]held(nil), ctx...)
	for _, hf := range heldAt {
		out = append(out, held{node: g.nodeFor(m, hf), site: g.siteFor(m, hf.EnterPC, hf.Line)})
	}
	return out
}

// syncNode names the implicit monitor of a synchronized method.
func (g *Graph) syncNode(m *vm.Method) string {
	if m.Static() {
		return m.Class.Name + "<class>"
	}
	return m.Class.Name
}

// nodeFor names the lock behind one monitor fact.
func (g *Graph) nodeFor(m *vm.Method, f vm.MonitorFact) string {
	if f.Class >= 0 && int(f.Class) < len(g.prog.Classes) {
		return g.prog.Classes[f.Class].Name
	}
	if f.Slot >= 0 {
		return fmt.Sprintf("%s#slot%d", m.QualifiedName(), f.Slot)
	}
	return fmt.Sprintf("%s@%d", m.QualifiedName(), f.EnterPC)
}

// siteFor renders an acquisition site in the lockprof style
// ("Class.method@pc"), with the minijava line when known.
func (g *Graph) siteFor(m *vm.Method, pc int, line int32) string {
	if line > 0 {
		return fmt.Sprintf("%s@%d (line %d)", m.QualifiedName(), pc, line)
	}
	return fmt.Sprintf("%s@%d", m.QualifiedName(), pc)
}

// addAcquire folds "acquired `to` while holding everything in ctx"
// into the graph: one edge per held monitor, as lockdep does at
// runtime. Same-node edges are counted but kept out of cycle
// detection (see the package comment).
func (g *Graph) addAcquire(ctx []held, to, acqSite string) {
	g.nodes[to] = true
	for _, h := range ctx {
		g.nodes[h.node] = true
		if h.node == to {
			e := g.selfNesting[to]
			if e == nil {
				e = &edge{from: h.node, to: to, holdSite: h.site, acquireSite: acqSite}
				g.selfNesting[to] = e
			}
			e.count++
			continue
		}
		k := [2]string{h.node, to}
		e := g.edges[k]
		if e == nil {
			e = &edge{from: h.node, to: to, holdSite: h.site, acquireSite: acqSite}
			g.edges[k] = e
		}
		e.count++
	}
}

// detectCycles finds strongly connected components among the
// cross-node edges and reports one representative cycle per component
// as a static ABBA hazard, marking every intra-component edge
// inverted.
func (g *Graph) detectCycles() {
	adj := make(map[string][]string)
	for k := range g.edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	for _, outs := range adj {
		sort.Strings(outs)
	}
	scc := tarjan(g.sortedNodes(), adj)
	seq := uint64(0)
	for _, comp := range scc {
		if len(comp) < 2 {
			continue
		}
		inComp := make(map[string]bool, len(comp))
		for _, n := range comp {
			inComp[n] = true
		}
		for k, e := range g.edges {
			if inComp[k[0]] && inComp[k[1]] {
				e.inverted = true
			}
		}
		cyc := cycleWithin(comp[0], adj, inComp)
		seq++
		rep := &lockdep.InversionReport{Seq: seq}
		for i := 0; i+1 < len(cyc); i++ {
			e := g.edges[[2]string{cyc[i], cyc[i+1]}]
			rep.Cycle = append(rep.Cycle, lockdep.InversionEdge{
				From: e.from, To: e.to,
				HoldSite: e.holdSite, AcquireSite: e.acquireSite,
				Thread: "static",
			})
		}
		g.cycles = append(g.cycles, rep)
	}
	sort.Slice(g.cycles, func(i, j int) bool {
		return g.cycles[i].Cycle[0].From < g.cycles[j].Cycle[0].From
	})
	for i, r := range g.cycles {
		r.Seq = uint64(i + 1)
	}
}

// cycleWithin returns a closed node path start -> ... -> start using
// only edges inside the component.
func cycleWithin(start string, adj map[string][]string, inComp map[string]bool) []string {
	var path []string
	seen := make(map[string]bool)
	var dfs func(n string) bool
	dfs = func(n string) bool {
		path = append(path, n)
		if n == start && len(path) > 1 {
			return true
		}
		if seen[n] {
			path = path[:len(path)-1]
			return false
		}
		seen[n] = true
		for _, next := range adj[n] {
			if !inComp[next] {
				continue
			}
			if dfs(next) {
				return true
			}
		}
		path = path[:len(path)-1]
		return false
	}
	seen[start] = false
	for _, next := range adj[start] {
		if !inComp[next] {
			continue
		}
		path = []string{start}
		seen = map[string]bool{}
		if dfs(next) {
			return path
		}
	}
	return []string{start, start}
}

// tarjan computes strongly connected components.
func tarjan(nodes []string, adj map[string][]string) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	next := 0
	var strong func(n string)
	strong = func(n string) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, w := range adj[n] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[n] {
					low[n] = low[w]
				}
			} else if onStack[w] && index[w] < low[n] {
				low[n] = index[w]
			}
		}
		if low[n] == index[n] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == n {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	return comps
}

func (g *Graph) sortedNodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Cycles returns the reported static ABBA cycles.
func (g *Graph) Cycles() []*lockdep.InversionReport { return g.cycles }

// SelfNestings returns the suppressed same-node nesting counts.
func (g *Graph) SelfNestings() map[string]int {
	out := make(map[string]int, len(g.selfNesting))
	for n, e := range g.selfNesting {
		out[n] = e.count
	}
	return out
}

// sortedEdges returns cross-node edges then self edges, sorted.
func (g *Graph) sortedEdges() []*edge {
	out := make([]*edge, 0, len(g.edges)+len(g.selfNesting))
	for _, e := range g.edges {
		out = append(out, e)
	}
	for _, e := range g.selfNesting {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].from != out[j].from {
			return out[i].from < out[j].from
		}
		return out[i].to < out[j].to
	})
	return out
}
