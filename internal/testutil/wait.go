// Package testutil holds small helpers shared by the test suites of the
// lock packages. It must not be imported by non-test code.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// DefaultWaitTimeout bounds Eventually when the caller passes 0.
const DefaultWaitTimeout = 10 * time.Second

// Eventually polls cond with bounded exponential backoff until it
// returns true or timeout elapses (0 means DefaultWaitTimeout), and
// fails the test on timeout. It replaces the ad-hoc sleep/poll loops
// the test suites used to carry: the early iterations only yield the
// scheduler, so a condition raced by another goroutine is usually seen
// within microseconds, while the capped sleep keeps a stuck condition
// from burning CPU under -race.
func Eventually(t testing.TB, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	if !eventually(timeout, cond) {
		t.Fatalf("condition never became true: %s", what)
	}
}

// EventuallyTrue is Eventually without the test dependency; it reports
// whether cond became true before timeout. Used where the caller wants
// to handle the timeout itself (e.g. the checker's watchdog).
func EventuallyTrue(timeout time.Duration, cond func() bool) bool {
	return eventually(timeout, cond)
}

func eventually(timeout time.Duration, cond func() bool) bool {
	if timeout <= 0 {
		timeout = DefaultWaitTimeout
	}
	deadline := time.Now().Add(timeout)
	sleep := 50 * time.Microsecond
	const maxSleep = 10 * time.Millisecond
	for i := 0; ; i++ {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return cond()
		}
		if i < 8 {
			runtime.Gosched()
			continue
		}
		time.Sleep(sleep)
		if sleep < maxSleep {
			sleep *= 2
		}
	}
}
