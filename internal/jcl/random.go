package jcl

import (
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// Random is java.util.Random as of JDK 1.1: a 48-bit linear congruential
// generator whose next method is synchronized.
type Random struct {
	ctx  *Context
	obj  *object.Object
	seed int64
}

const (
	randMultiplier = 0x5DEECE66D
	randAddend     = 0xB
	randMask       = 1<<48 - 1
)

// NewRandom allocates a generator with the given seed.
func (c *Context) NewRandom(seed int64) *Random {
	return &Random{
		ctx:  c,
		obj:  c.heap.New("Random"),
		seed: (seed ^ randMultiplier) & randMask,
	}
}

// Object returns the generator's lockable identity.
func (r *Random) Object() *object.Object { return r.obj }

// next returns the top bits of the next LCG state. Synchronized, as in
// JDK 1.1.
func (r *Random) next(t *threading.Thread, bits uint) int32 {
	var out int32
	r.ctx.synchronized(t, r.obj, func() {
		r.seed = (r.seed*randMultiplier + randAddend) & randMask
		out = int32(r.seed >> (48 - bits))
	})
	return out
}

// NextInt returns a uniformly distributed int32. Synchronized.
func (r *Random) NextInt(t *threading.Thread) int32 {
	return r.next(t, 32)
}

// NextIntN returns a uniformly distributed value in [0, n). Synchronized
// per next call, following Java's rejection algorithm.
func (r *Random) NextIntN(t *threading.Thread, n int32) int32 {
	if n <= 0 {
		panic("jcl: NextIntN bound must be positive")
	}
	if n&-n == n { // power of two
		return int32((int64(n) * int64(r.next(t, 31))) >> 31)
	}
	for {
		bits := r.next(t, 31)
		val := bits % n
		if bits-val+(n-1) >= 0 {
			return val
		}
	}
}

// NextFloat returns a uniform value in [0, 1). Synchronized.
func (r *Random) NextFloat(t *threading.Thread) float32 {
	return float32(r.next(t, 24)) / (1 << 24)
}
