package jcl

import (
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// Vector is java.util.Vector: a growable array whose public methods are
// all synchronized. The paper's javalex benchmark made almost one million
// calls to the synchronized elementAt method alone (§3.4).
type Vector struct {
	ctx   *Context
	obj   *object.Object
	elems []any
}

// NewVector allocates an empty Vector.
func (c *Context) NewVector() *Vector {
	return &Vector{ctx: c, obj: c.heap.New("Vector")}
}

// NewVectorWithCapacity allocates a Vector with initial capacity.
func (c *Context) NewVectorWithCapacity(capacity int) *Vector {
	return &Vector{ctx: c, obj: c.heap.New("Vector"), elems: make([]any, 0, capacity)}
}

// Object returns the Vector's lockable identity.
func (v *Vector) Object() *object.Object { return v.obj }

// AddElement appends e. Synchronized. As in JDK 1.1, it calls the public
// synchronized EnsureCapacity from inside its own synchronized region, so
// every append performs one nested (depth-two) lock acquisition — a large
// part of the "Second" bars of the paper's Figure 3.
func (v *Vector) AddElement(t *threading.Thread, e any) {
	v.ctx.synchronized(t, v.obj, func() {
		v.EnsureCapacity(t, len(v.elems)+1)
		v.elems = append(v.elems, e)
	})
}

// EnsureCapacity grows the backing array to hold at least capacity
// elements. Synchronized (and typically entered nested, from AddElement
// or InsertElementAt).
func (v *Vector) EnsureCapacity(t *threading.Thread, capacity int) {
	v.ctx.synchronized(t, v.obj, func() {
		if cap(v.elems) < capacity {
			grown := make([]any, len(v.elems), 2*capacity)
			copy(grown, v.elems)
			v.elems = grown
		}
	})
}

// Capacity returns the backing array capacity. Synchronized.
func (v *Vector) Capacity(t *threading.Thread) int {
	var c int
	v.ctx.synchronized(t, v.obj, func() {
		c = cap(v.elems)
	})
	return c
}

// ElementAt returns the element at index i, or panics if out of range,
// as Java throws ArrayIndexOutOfBoundsException. Synchronized.
func (v *Vector) ElementAt(t *threading.Thread, i int) any {
	var e any
	v.ctx.synchronized(t, v.obj, func() {
		e = v.elems[i]
	})
	return e
}

// SetElementAt replaces the element at index i. Synchronized.
func (v *Vector) SetElementAt(t *threading.Thread, e any, i int) {
	v.ctx.synchronized(t, v.obj, func() {
		v.elems[i] = e
	})
}

// InsertElementAt inserts e at index i. Synchronized, with a nested
// EnsureCapacity call as in JDK 1.1.
func (v *Vector) InsertElementAt(t *threading.Thread, e any, i int) {
	v.ctx.synchronized(t, v.obj, func() {
		v.EnsureCapacity(t, len(v.elems)+1)
		v.elems = append(v.elems, nil)
		copy(v.elems[i+1:], v.elems[i:])
		v.elems[i] = e
	})
}

// RemoveElementAt deletes the element at index i. Synchronized.
func (v *Vector) RemoveElementAt(t *threading.Thread, i int) {
	v.ctx.synchronized(t, v.obj, func() {
		copy(v.elems[i:], v.elems[i+1:])
		v.elems = v.elems[:len(v.elems)-1]
	})
}

// RemoveElement deletes the first occurrence of e, reporting whether one
// was found. Synchronized.
func (v *Vector) RemoveElement(t *threading.Thread, e any) bool {
	removed := false
	v.ctx.synchronized(t, v.obj, func() {
		for i, x := range v.elems {
			if x == e {
				copy(v.elems[i:], v.elems[i+1:])
				v.elems = v.elems[:len(v.elems)-1]
				removed = true
				return
			}
		}
	})
	return removed
}

// RemoveAllElements empties the vector. Synchronized.
func (v *Vector) RemoveAllElements(t *threading.Thread) {
	v.ctx.synchronized(t, v.obj, func() {
		v.elems = v.elems[:0]
	})
}

// Size returns the element count. Synchronized.
func (v *Vector) Size(t *threading.Thread) int {
	var n int
	v.ctx.synchronized(t, v.obj, func() {
		n = len(v.elems)
	})
	return n
}

// IsEmpty reports whether the vector has no elements. Synchronized.
func (v *Vector) IsEmpty(t *threading.Thread) bool {
	return v.Size(t) == 0
}

// FirstElement returns the first element; panics when empty. Synchronized.
func (v *Vector) FirstElement(t *threading.Thread) any {
	return v.ElementAt(t, 0)
}

// LastElement returns the last element; panics when empty. Synchronized.
func (v *Vector) LastElement(t *threading.Thread) any {
	var e any
	v.ctx.synchronized(t, v.obj, func() {
		e = v.elems[len(v.elems)-1]
	})
	return e
}

// IndexOf returns the index of the first occurrence of e, or -1.
// Synchronized.
func (v *Vector) IndexOf(t *threading.Thread, e any) int {
	idx := -1
	v.ctx.synchronized(t, v.obj, func() {
		for i, x := range v.elems {
			if x == e {
				idx = i
				return
			}
		}
	})
	return idx
}

// Contains reports whether e occurs in the vector. Synchronized.
func (v *Vector) Contains(t *threading.Thread, e any) bool {
	return v.IndexOf(t, e) >= 0
}

// CopyInto copies the elements into dst. Synchronized.
func (v *Vector) CopyInto(t *threading.Thread, dst []any) {
	v.ctx.synchronized(t, v.obj, func() {
		copy(dst, v.elems)
	})
}

// Elements returns an enumeration over the vector. As in JDK 1.1, the
// enumeration's methods synchronize on the vector itself.
func (v *Vector) Elements() *Enumeration {
	return &Enumeration{v: v}
}

// Enumeration is java.util.VectorEnumerator: each step synchronizes on
// the underlying vector.
type Enumeration struct {
	v   *Vector
	pos int
}

// HasMoreElements reports whether the enumeration has elements left.
// Synchronized on the vector.
func (e *Enumeration) HasMoreElements(t *threading.Thread) bool {
	var more bool
	e.v.ctx.synchronized(t, e.v.obj, func() {
		more = e.pos < len(e.v.elems)
	})
	return more
}

// NextElement returns the next element; panics past the end.
// Synchronized on the vector.
func (e *Enumeration) NextElement(t *threading.Thread) any {
	var x any
	e.v.ctx.synchronized(t, e.v.obj, func() {
		x = e.v.elems[e.pos]
		e.pos++
	})
	return x
}

// Stack is java.util.Stack, which extends Vector and synchronizes on the
// same object.
type Stack struct {
	Vector
}

// NewStack allocates an empty Stack.
func (c *Context) NewStack() *Stack {
	return &Stack{Vector{ctx: c, obj: c.heap.New("Stack")}}
}

// Push pushes e and returns it. Synchronized (via addElement in Java).
func (s *Stack) Push(t *threading.Thread, e any) any {
	s.AddElement(t, e)
	return e
}

// Pop removes and returns the top element; panics when empty. As in JDK
// 1.1, the synchronized pop calls the synchronized Peek and
// RemoveElementAt, producing depth-two nested locking.
func (s *Stack) Pop(t *threading.Thread) any {
	var e any
	s.ctx.synchronized(t, s.obj, func() {
		e = s.Peek(t)
		s.RemoveElementAt(t, s.Size(t)-1)
	})
	return e
}

// Peek returns the top element without removing it; panics when empty.
// Synchronized, calling the synchronized LastElement (nested when invoked
// from Pop).
func (s *Stack) Peek(t *threading.Thread) any {
	var e any
	s.ctx.synchronized(t, s.obj, func() {
		e = s.LastElement(t)
	})
	return e
}

// Empty reports whether the stack is empty. Synchronized.
func (s *Stack) Empty(t *threading.Thread) bool {
	return s.IsEmpty(t)
}

// Search returns the 1-based distance of e from the top, or -1.
// Synchronized.
func (s *Stack) Search(t *threading.Thread, e any) int {
	res := -1
	s.ctx.synchronized(t, s.obj, func() {
		for i := len(s.elems) - 1; i >= 0; i-- {
			if s.elems[i] == e {
				res = len(s.elems) - i
				return
			}
		}
	})
	return res
}
