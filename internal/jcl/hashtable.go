package jcl

import (
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// Hashtable is java.util.Hashtable: a synchronized map. Keys must be Go
// comparables (strings and integers in our workloads, mirroring Java's
// String and Integer keys).
type Hashtable struct {
	ctx       *Context
	obj       *object.Object
	m         map[any]any
	threshold int
}

// NewHashtable allocates an empty Hashtable.
func (c *Context) NewHashtable() *Hashtable {
	return &Hashtable{
		ctx:       c,
		obj:       c.heap.New("Hashtable"),
		m:         make(map[any]any),
		threshold: 8, // initial capacity × load factor, as in JDK 1.1
	}
}

// Object returns the Hashtable's lockable identity.
func (h *Hashtable) Object() *object.Object { return h.obj }

// Put associates value with key, returning the previous value or nil.
// Synchronized; when the table outgrows its threshold Put calls the
// synchronized Rehash from inside its own region, a nested lock as in
// JDK 1.1.
func (h *Hashtable) Put(t *threading.Thread, key, value any) any {
	var prev any
	h.ctx.synchronized(t, h.obj, func() {
		if len(h.m) >= h.threshold {
			h.Rehash(t)
		}
		prev = h.m[key]
		h.m[key] = value
	})
	return prev
}

// Rehash doubles the table's capacity. Synchronized (normally entered
// nested, from Put). Go's map grows itself, so the model only rebuilds
// the map to charge the traversal and advance the threshold.
func (h *Hashtable) Rehash(t *threading.Thread) {
	h.ctx.synchronized(t, h.obj, func() {
		grown := make(map[any]any, 2*len(h.m))
		for k, v := range h.m {
			grown[k] = v
		}
		h.m = grown
		h.threshold *= 2
	})
}

// Get returns the value for key, or nil. Synchronized.
func (h *Hashtable) Get(t *threading.Thread, key any) any {
	var v any
	h.ctx.synchronized(t, h.obj, func() {
		v = h.m[key]
	})
	return v
}

// Remove deletes key's mapping, returning the removed value or nil.
// Synchronized.
func (h *Hashtable) Remove(t *threading.Thread, key any) any {
	var prev any
	h.ctx.synchronized(t, h.obj, func() {
		prev = h.m[key]
		delete(h.m, key)
	})
	return prev
}

// ContainsKey reports whether key has a mapping. Synchronized.
func (h *Hashtable) ContainsKey(t *threading.Thread, key any) bool {
	var ok bool
	h.ctx.synchronized(t, h.obj, func() {
		_, ok = h.m[key]
	})
	return ok
}

// Size returns the number of mappings. Synchronized.
func (h *Hashtable) Size(t *threading.Thread) int {
	var n int
	h.ctx.synchronized(t, h.obj, func() {
		n = len(h.m)
	})
	return n
}

// IsEmpty reports whether the table is empty. Synchronized.
func (h *Hashtable) IsEmpty(t *threading.Thread) bool {
	return h.Size(t) == 0
}

// Clear removes every mapping. Synchronized.
func (h *Hashtable) Clear(t *threading.Thread) {
	h.ctx.synchronized(t, h.obj, func() {
		clear(h.m)
	})
}

// Keys returns a snapshot of the keys (Java returns an Enumeration; a
// slice keeps the workload code simple). Synchronized.
func (h *Hashtable) Keys(t *threading.Thread) []any {
	var keys []any
	h.ctx.synchronized(t, h.obj, func() {
		keys = make([]any, 0, len(h.m))
		for k := range h.m {
			keys = append(keys, k)
		}
	})
	return keys
}
