// Package jcl is a miniature "Java class library": the thread-safe
// container classes whose synchronized methods dominate the paper's
// macro-benchmarks. "The most commonly used public methods of standard
// utility classes like Vector and Hashtable are synchronized. When these
// classes are used by single-threaded programs ... there is substantial
// performance degradation in the absence of any true concurrency" (§1).
//
// Every public method of every class here locks the receiving object
// through a pluggable lock implementation, exactly as javac or javalex
// paid a monitorenter/monitorexit pair per Vector.elementAt call. The
// macro workloads in internal/workloads are written against this package,
// which is what lets a single workload be timed under ThinLock, JDK111
// and IBM112.
package jcl

import (
	"thinlock/internal/lockapi"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// Context binds the class library to a heap and a lock implementation.
type Context struct {
	locker lockapi.Locker
	heap   *object.Heap
}

// NewContext returns a class-library context using the given locker and
// heap.
func NewContext(l lockapi.Locker, h *object.Heap) *Context {
	return &Context{locker: l, heap: h}
}

// Locker returns the context's lock implementation.
func (c *Context) Locker() lockapi.Locker { return c.locker }

// Heap returns the context's heap.
func (c *Context) Heap() *object.Heap { return c.heap }

// synchronized runs fn holding o's monitor, Java-style.
func (c *Context) synchronized(t *threading.Thread, o *object.Object, fn func()) {
	lockapi.Synchronized(c.locker, t, o, fn)
}
