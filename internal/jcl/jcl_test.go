package jcl

import (
	"testing"

	"thinlock/internal/core"
	"thinlock/internal/hotlocks"
	"thinlock/internal/lockapi"
	"thinlock/internal/monitorcache"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

func newCtx(t *testing.T) (*Context, *threading.Thread) {
	t.Helper()
	ctx := NewContext(core.NewDefault(), object.NewHeap())
	reg := threading.NewRegistry()
	th, err := reg.Attach("t")
	if err != nil {
		t.Fatal(err)
	}
	return ctx, th
}

func TestVectorBasics(t *testing.T) {
	t.Parallel()
	ctx, th := newCtx(t)
	v := ctx.NewVector()
	if !v.IsEmpty(th) {
		t.Fatal("new vector not empty")
	}
	for i := 0; i < 10; i++ {
		v.AddElement(th, i)
	}
	if v.Size(th) != 10 {
		t.Fatalf("Size = %d", v.Size(th))
	}
	if v.ElementAt(th, 3) != 3 {
		t.Fatalf("ElementAt(3) = %v", v.ElementAt(th, 3))
	}
	if v.FirstElement(th) != 0 || v.LastElement(th) != 9 {
		t.Fatal("First/LastElement wrong")
	}
	v.SetElementAt(th, 42, 3)
	if v.ElementAt(th, 3) != 42 {
		t.Fatal("SetElementAt failed")
	}
	if v.IndexOf(th, 42) != 3 {
		t.Fatalf("IndexOf(42) = %d", v.IndexOf(th, 42))
	}
	if !v.Contains(th, 42) || v.Contains(th, 99) {
		t.Fatal("Contains wrong")
	}
}

func TestVectorInsertRemove(t *testing.T) {
	t.Parallel()
	ctx, th := newCtx(t)
	v := ctx.NewVector()
	for i := 0; i < 5; i++ {
		v.AddElement(th, i)
	}
	v.InsertElementAt(th, 99, 2) // 0 1 99 2 3 4
	if v.ElementAt(th, 2) != 99 || v.ElementAt(th, 3) != 2 || v.Size(th) != 6 {
		t.Fatal("InsertElementAt wrong")
	}
	v.RemoveElementAt(th, 2) // 0 1 2 3 4
	if v.ElementAt(th, 2) != 2 || v.Size(th) != 5 {
		t.Fatal("RemoveElementAt wrong")
	}
	if !v.RemoveElement(th, 3) { // 0 1 2 4
		t.Fatal("RemoveElement missed")
	}
	if v.RemoveElement(th, 77) {
		t.Fatal("RemoveElement of absent element")
	}
	if v.Size(th) != 4 || v.ElementAt(th, 3) != 4 {
		t.Fatal("RemoveElement wrong state")
	}
	v.RemoveAllElements(th)
	if !v.IsEmpty(th) {
		t.Fatal("RemoveAllElements left elements")
	}
}

func TestVectorCopyIntoAndEnumeration(t *testing.T) {
	t.Parallel()
	ctx, th := newCtx(t)
	v := ctx.NewVectorWithCapacity(8)
	for i := 0; i < 5; i++ {
		v.AddElement(th, i*i)
	}
	dst := make([]any, 5)
	v.CopyInto(th, dst)
	for i := range dst {
		if dst[i] != i*i {
			t.Fatalf("CopyInto[%d] = %v", i, dst[i])
		}
	}
	e := v.Elements()
	var got []any
	for e.HasMoreElements(th) {
		got = append(got, e.NextElement(th))
	}
	if len(got) != 5 || got[4] != 16 {
		t.Fatalf("enumeration = %v", got)
	}
}

func TestVectorEveryCallSynchronizes(t *testing.T) {
	t.Parallel()
	// The point of the paper: library calls cost lock operations even
	// single-threaded. Verify with an instrumented locker.
	ctx, th := newCtx(t)
	v := ctx.NewVector()
	thin := ctx.Locker().(*core.ThinLocks)
	_ = thin
	for i := 0; i < 100; i++ {
		v.AddElement(th, i)
	}
	for i := 0; i < 100; i++ {
		_ = v.ElementAt(th, i)
	}
	// The header must be back to unlocked after all calls, proving
	// balanced lock/unlock pairs.
	if !core.IsUnlocked(v.Object().Header()) {
		t.Fatalf("vector still locked: header = %#x", v.Object().Header())
	}
}

func TestStack(t *testing.T) {
	t.Parallel()
	ctx, th := newCtx(t)
	s := ctx.NewStack()
	if !s.Empty(th) {
		t.Fatal("new stack not empty")
	}
	s.Push(th, "a")
	s.Push(th, "b")
	s.Push(th, "c")
	if s.Peek(th) != "c" {
		t.Fatal("Peek wrong")
	}
	if s.Search(th, "c") != 1 || s.Search(th, "a") != 3 || s.Search(th, "z") != -1 {
		t.Fatal("Search wrong")
	}
	if s.Pop(th) != "c" || s.Pop(th) != "b" {
		t.Fatal("Pop order wrong")
	}
	if s.Size(th) != 1 {
		t.Fatal("Size after pops")
	}
}

func TestHashtable(t *testing.T) {
	t.Parallel()
	ctx, th := newCtx(t)
	h := ctx.NewHashtable()
	if !h.IsEmpty(th) {
		t.Fatal("new table not empty")
	}
	if prev := h.Put(th, "one", 1); prev != nil {
		t.Fatalf("Put returned %v for fresh key", prev)
	}
	if prev := h.Put(th, "one", 11); prev != 1 {
		t.Fatalf("Put returned %v, want 1", prev)
	}
	h.Put(th, "two", 2)
	if h.Get(th, "one") != 11 || h.Get(th, "two") != 2 {
		t.Fatal("Get wrong")
	}
	if h.Get(th, "three") != nil {
		t.Fatal("Get of absent key")
	}
	if !h.ContainsKey(th, "one") || h.ContainsKey(th, "zero") {
		t.Fatal("ContainsKey wrong")
	}
	if h.Size(th) != 2 {
		t.Fatalf("Size = %d", h.Size(th))
	}
	keys := h.Keys(th)
	if len(keys) != 2 {
		t.Fatalf("Keys = %v", keys)
	}
	if h.Remove(th, "one") != 11 {
		t.Fatal("Remove wrong value")
	}
	if h.Remove(th, "one") != nil {
		t.Fatal("second Remove returned value")
	}
	h.Clear(th)
	if h.Size(th) != 0 {
		t.Fatal("Clear left entries")
	}
}

func TestStringBuffer(t *testing.T) {
	t.Parallel()
	ctx, th := newCtx(t)
	sb := ctx.NewStringBuffer()
	sb.Append(th, "hello").AppendChar(th, ' ').Append(th, "world").AppendInt(th, 42)
	if got := sb.String(th); got != "hello world42" {
		t.Fatalf("String = %q", got)
	}
	if sb.Length(th) != 13 {
		t.Fatalf("Length = %d", sb.Length(th))
	}
	if sb.CharAt(th, 0) != 'h' {
		t.Fatal("CharAt wrong")
	}
	sb.SetLength(th, 5)
	if sb.String(th) != "hello" {
		t.Fatalf("after SetLength: %q", sb.String(th))
	}
	sb.Reverse(th)
	if sb.String(th) != "olleh" {
		t.Fatalf("after Reverse: %q", sb.String(th))
	}
	sb.SetLength(th, 7)
	if sb.Length(th) != 7 {
		t.Fatal("SetLength extend failed")
	}
}

func TestBitSet(t *testing.T) {
	t.Parallel()
	ctx, th := newCtx(t)
	b := ctx.NewBitSet(64)
	if b.Get(th, 5) {
		t.Fatal("fresh bit set")
	}
	b.Set(th, 5)
	b.Set(th, 63)
	b.Set(th, 200) // grows
	if !b.Get(th, 5) || !b.Get(th, 63) || !b.Get(th, 200) {
		t.Fatal("Set/Get wrong")
	}
	if b.Get(th, 6) || b.Get(th, 1000) {
		t.Fatal("unset bits read true")
	}
	if b.Cardinality(th) != 3 {
		t.Fatalf("Cardinality = %d", b.Cardinality(th))
	}
	b.Clear(th, 5)
	if b.Get(th, 5) {
		t.Fatal("Clear failed")
	}
	if b.Size(th) < 201 {
		t.Fatalf("Size = %d after growth", b.Size(th))
	}
}

func TestBitSetLogicalOps(t *testing.T) {
	t.Parallel()
	ctx, th := newCtx(t)
	a := ctx.NewBitSet(64)
	b := ctx.NewBitSet(64)
	a.Set(th, 1)
	a.Set(th, 2)
	b.Set(th, 2)
	b.Set(th, 3)

	and := ctx.NewBitSet(64)
	and.Or(th, a)
	and.And(th, b)
	if !and.Get(th, 2) || and.Get(th, 1) || and.Get(th, 3) {
		t.Fatal("And wrong")
	}

	or := ctx.NewBitSet(64)
	or.Or(th, a)
	or.Or(th, b)
	if !or.Get(th, 1) || !or.Get(th, 2) || !or.Get(th, 3) {
		t.Fatal("Or wrong")
	}

	xor := ctx.NewBitSet(64)
	xor.Or(th, a)
	xor.Xor(th, b)
	if !xor.Get(th, 1) || xor.Get(th, 2) || !xor.Get(th, 3) {
		t.Fatal("Xor wrong")
	}
}

func TestRandomDeterminism(t *testing.T) {
	t.Parallel()
	ctx, th := newCtx(t)
	r1 := ctx.NewRandom(12345)
	r2 := ctx.NewRandom(12345)
	for i := 0; i < 50; i++ {
		if r1.NextInt(th) != r2.NextInt(th) {
			t.Fatal("same seed diverged")
		}
	}
	r3 := ctx.NewRandom(99)
	saw := make(map[int32]bool)
	for i := 0; i < 100; i++ {
		v := r3.NextIntN(th, 10)
		if v < 0 || v >= 10 {
			t.Fatalf("NextIntN out of range: %d", v)
		}
		saw[v] = true
	}
	if len(saw) < 5 {
		t.Error("NextIntN not covering range")
	}
	f := r3.NextFloat(th)
	if f < 0 || f >= 1 {
		t.Fatalf("NextFloat out of range: %f", f)
	}
}

func TestRandomMatchesJavaLCG(t *testing.T) {
	t.Parallel()
	// Known values from Java's documented LCG with seed 0.
	ctx, th := newCtx(t)
	r := ctx.NewRandom(0)
	got := r.NextInt(th)
	// First next(32) for seed 0: seed = (0^0x5DEECE66D * 0x5DEECE66D + 0xB) & (2^48-1)
	seed := (int64(0) ^ randMultiplier) & randMask
	seed = (seed*randMultiplier + randAddend) & randMask
	want := int32(seed >> 16)
	if got != want {
		t.Fatalf("NextInt = %d, want %d", got, want)
	}
}

// TestLibraryAcrossImplementations runs a mixed container workload under
// all three lock implementations and checks identical results.
func TestLibraryAcrossImplementations(t *testing.T) {
	t.Parallel()
	run := func(l lockapi.Locker) string {
		ctx := NewContext(l, object.NewHeap())
		reg := threading.NewRegistry()
		th, err := reg.Attach("t")
		if err != nil {
			t.Fatal(err)
		}
		v := ctx.NewVector()
		h := ctx.NewHashtable()
		sb := ctx.NewStringBuffer()
		for i := 0; i < 200; i++ {
			v.AddElement(th, i%17)
			h.Put(th, i%13, i)
		}
		sum := 0
		for i := 0; i < 200; i++ {
			sum += v.ElementAt(th, i).(int)
		}
		sb.AppendInt(th, int64(sum)).AppendChar(th, '/').AppendInt(th, int64(h.Size(th)))
		return sb.String(th)
	}
	thin := run(core.NewDefault())
	jdk := run(monitorcache.NewDefault())
	ibm := run(hotlocks.NewDefault())
	if thin != jdk || jdk != ibm {
		t.Fatalf("results diverge: thin=%q jdk=%q ibm=%q", thin, jdk, ibm)
	}
}

// TestConcurrentVectorUse is the multithreaded sanity check: concurrent
// appends through the synchronized API must not lose elements.
func TestConcurrentVectorUse(t *testing.T) {
	t.Parallel()
	ctx := NewContext(core.NewDefault(), object.NewHeap())
	reg := threading.NewRegistry()
	v := ctx.NewVector()
	const goroutines, perG = 6, 200
	done := make(chan struct{}, goroutines)
	for g := 0; g < goroutines; g++ {
		th, err := reg.Attach("w")
		if err != nil {
			t.Fatal(err)
		}
		go func(th *threading.Thread) {
			for i := 0; i < perG; i++ {
				v.AddElement(th, i)
			}
			done <- struct{}{}
		}(th)
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	main, _ := reg.Attach("main")
	if v.Size(main) != goroutines*perG {
		t.Fatalf("Size = %d, want %d", v.Size(main), goroutines*perG)
	}
}
