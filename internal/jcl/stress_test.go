package jcl

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"thinlock/internal/core"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// TestVectorMatchesSliceModel drives random operation sequences against
// both a Vector and a plain Go slice model; every observation must agree.
func TestVectorMatchesSliceModel(t *testing.T) {
	t.Parallel()
	prop := func(ops []uint16) bool {
		ctx := NewContext(core.NewDefault(), object.NewHeap())
		reg := threading.NewRegistry()
		th, err := reg.Attach("p")
		if err != nil {
			return false
		}
		v := ctx.NewVector()
		var model []any

		for _, raw := range ops {
			op := int(raw % 8)
			arg := int(raw / 8)
			switch op {
			case 0: // add
				v.AddElement(th, arg)
				model = append(model, arg)
			case 1: // elementAt
				if len(model) == 0 {
					continue
				}
				i := arg % len(model)
				if v.ElementAt(th, i) != model[i] {
					return false
				}
			case 2: // setElementAt
				if len(model) == 0 {
					continue
				}
				i := arg % len(model)
				v.SetElementAt(th, arg, i)
				model[i] = arg
			case 3: // removeElementAt
				if len(model) == 0 {
					continue
				}
				i := arg % len(model)
				v.RemoveElementAt(th, i)
				model = append(model[:i], model[i+1:]...)
			case 4: // insertElementAt
				i := 0
				if len(model) > 0 {
					i = arg % len(model)
				}
				v.InsertElementAt(th, arg, i)
				model = append(model, nil)
				copy(model[i+1:], model[i:])
				model[i] = arg
			case 5: // indexOf
				want := -1
				for i, x := range model {
					if x == arg {
						want = i
						break
					}
				}
				if v.IndexOf(th, arg) != want {
					return false
				}
			case 6: // removeElement
				want := false
				for i, x := range model {
					if x == arg {
						model = append(model[:i], model[i+1:]...)
						want = true
						break
					}
				}
				if v.RemoveElement(th, arg) != want {
					return false
				}
			case 7: // size
				if v.Size(th) != len(model) {
					return false
				}
			}
		}
		// Final full comparison.
		if v.Size(th) != len(model) {
			return false
		}
		for i, x := range model {
			if v.ElementAt(th, i) != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestHashtableConcurrentDistinctKeys has each thread own a key range;
// all entries must survive.
func TestHashtableConcurrentDistinctKeys(t *testing.T) {
	t.Parallel()
	ctx := NewContext(core.NewDefault(), object.NewHeap())
	reg := threading.NewRegistry()
	h := ctx.NewHashtable()
	const goroutines, perG = 6, 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th, err := reg.Attach("w")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, th *threading.Thread) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("k-%d-%d", g, i)
				h.Put(th, key, g*perG+i)
			}
		}(g, th)
	}
	wg.Wait()
	main, _ := reg.Attach("main")
	if h.Size(main) != goroutines*perG {
		t.Fatalf("Size = %d, want %d", h.Size(main), goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			key := fmt.Sprintf("k-%d-%d", g, i)
			if h.Get(main, key) != g*perG+i {
				t.Fatalf("Get(%s) = %v", key, h.Get(main, key))
			}
		}
	}
}

// TestStackConcurrentPushPop checks conservation: everything pushed is
// popped exactly once across threads.
func TestStackConcurrentPushPop(t *testing.T) {
	t.Parallel()
	ctx := NewContext(core.NewDefault(), object.NewHeap())
	reg := threading.NewRegistry()
	s := ctx.NewStack()
	const producers, perP = 4, 200

	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		th, _ := reg.Attach("p")
		wg.Add(1)
		go func(g int, th *threading.Thread) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				s.Push(th, g*perP+i)
			}
		}(g, th)
	}
	wg.Wait()

	seen := make([]bool, producers*perP)
	var mu sync.Mutex
	for g := 0; g < producers; g++ {
		th, _ := reg.Attach("c")
		wg.Add(1)
		go func(th *threading.Thread) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				x := s.Pop(th).(int)
				mu.Lock()
				if seen[x] {
					t.Errorf("value %d popped twice", x)
				}
				seen[x] = true
				mu.Unlock()
			}
		}(th)
	}
	wg.Wait()
	main, _ := reg.Attach("main")
	if !s.Empty(main) {
		t.Fatalf("stack not empty: %d left", s.Size(main))
	}
	for x, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost", x)
		}
	}
}

// TestStringBufferConcurrentAppend checks no bytes are lost when many
// threads append fixed-size chunks.
func TestStringBufferConcurrentAppend(t *testing.T) {
	t.Parallel()
	ctx := NewContext(core.NewDefault(), object.NewHeap())
	reg := threading.NewRegistry()
	sb := ctx.NewStringBuffer()
	const goroutines, perG, chunk = 5, 100, 7
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th, _ := reg.Attach("w")
		wg.Add(1)
		go func(th *threading.Thread) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sb.Append(th, "abcdefg")
			}
		}(th)
	}
	wg.Wait()
	main, _ := reg.Attach("main")
	if got := sb.Length(main); got != goroutines*perG*chunk {
		t.Fatalf("Length = %d, want %d", got, goroutines*perG*chunk)
	}
}

// TestBitSetConcurrentDisjointRanges sets disjoint bit ranges from
// several threads; the union must be exact.
func TestBitSetConcurrentDisjointRanges(t *testing.T) {
	t.Parallel()
	ctx := NewContext(core.NewDefault(), object.NewHeap())
	reg := threading.NewRegistry()
	b := ctx.NewBitSet(0)
	const goroutines, perG = 6, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th, _ := reg.Attach("w")
		wg.Add(1)
		go func(g int, th *threading.Thread) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				b.Set(th, g*perG+i)
			}
		}(g, th)
	}
	wg.Wait()
	main, _ := reg.Attach("main")
	if got := b.Cardinality(main); got != goroutines*perG {
		t.Fatalf("Cardinality = %d, want %d", got, goroutines*perG)
	}
	for i := 0; i < goroutines*perG; i++ {
		if !b.Get(main, i) {
			t.Fatalf("bit %d lost", i)
		}
	}
}

// TestHashtableRehashPreservesEntries grows far past the initial
// threshold; every entry must survive the nested Rehash calls.
func TestHashtableRehashPreservesEntries(t *testing.T) {
	t.Parallel()
	ctx := NewContext(core.NewDefault(), object.NewHeap())
	reg := threading.NewRegistry()
	th, _ := reg.Attach("t")
	h := ctx.NewHashtable()
	const n = 500
	for i := 0; i < n; i++ {
		h.Put(th, i, i*i)
	}
	if h.Size(th) != n {
		t.Fatalf("Size = %d, want %d", h.Size(th), n)
	}
	for i := 0; i < n; i++ {
		if h.Get(th, i) != i*i {
			t.Fatalf("Get(%d) = %v, want %d", i, h.Get(th, i), i*i)
		}
	}
}
