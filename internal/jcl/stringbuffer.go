package jcl

import (
	"strconv"

	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// StringBuffer is java.lang.StringBuffer: a synchronized mutable string.
// Every Java string concatenation the 1.1 compiler emitted became a pair
// of synchronized StringBuffer appends, which is why document generators
// like javadoc appear in the paper's benchmark suite.
type StringBuffer struct {
	ctx *Context
	obj *object.Object
	buf []byte
}

// NewStringBuffer allocates an empty StringBuffer.
func (c *Context) NewStringBuffer() *StringBuffer {
	return &StringBuffer{ctx: c, obj: c.heap.New("StringBuffer")}
}

// Object returns the buffer's lockable identity.
func (sb *StringBuffer) Object() *object.Object { return sb.obj }

// Append appends s and returns the buffer. Synchronized; when the buffer
// must grow it calls the synchronized EnsureCapacity from inside its own
// region, a nested lock as in JDK 1.1.
func (sb *StringBuffer) Append(t *threading.Thread, s string) *StringBuffer {
	sb.ctx.synchronized(t, sb.obj, func() {
		if len(sb.buf)+len(s) > cap(sb.buf) {
			sb.EnsureCapacity(t, len(sb.buf)+len(s))
		}
		sb.buf = append(sb.buf, s...)
	})
	return sb
}

// EnsureCapacity grows the buffer to hold at least capacity bytes.
// Synchronized.
func (sb *StringBuffer) EnsureCapacity(t *threading.Thread, capacity int) {
	sb.ctx.synchronized(t, sb.obj, func() {
		if cap(sb.buf) < capacity {
			grown := make([]byte, len(sb.buf), 2*capacity)
			copy(grown, sb.buf)
			sb.buf = grown
		}
	})
}

// AppendChar appends one byte. Synchronized.
func (sb *StringBuffer) AppendChar(t *threading.Thread, ch byte) *StringBuffer {
	sb.ctx.synchronized(t, sb.obj, func() {
		sb.buf = append(sb.buf, ch)
	})
	return sb
}

// AppendInt appends the decimal rendering of n. Synchronized.
func (sb *StringBuffer) AppendInt(t *threading.Thread, n int64) *StringBuffer {
	sb.ctx.synchronized(t, sb.obj, func() {
		sb.buf = strconv.AppendInt(sb.buf, n, 10)
	})
	return sb
}

// Length returns the buffer length. Synchronized.
func (sb *StringBuffer) Length(t *threading.Thread) int {
	var n int
	sb.ctx.synchronized(t, sb.obj, func() {
		n = len(sb.buf)
	})
	return n
}

// CharAt returns the byte at index i; panics out of range. Synchronized.
func (sb *StringBuffer) CharAt(t *threading.Thread, i int) byte {
	var ch byte
	sb.ctx.synchronized(t, sb.obj, func() {
		ch = sb.buf[i]
	})
	return ch
}

// SetLength truncates or zero-extends the buffer. Synchronized.
func (sb *StringBuffer) SetLength(t *threading.Thread, n int) {
	sb.ctx.synchronized(t, sb.obj, func() {
		for len(sb.buf) < n {
			sb.buf = append(sb.buf, 0)
		}
		sb.buf = sb.buf[:n]
	})
}

// Reverse reverses the buffer in place and returns it. Synchronized.
func (sb *StringBuffer) Reverse(t *threading.Thread) *StringBuffer {
	sb.ctx.synchronized(t, sb.obj, func() {
		for i, j := 0, len(sb.buf)-1; i < j; i, j = i+1, j-1 {
			sb.buf[i], sb.buf[j] = sb.buf[j], sb.buf[i]
		}
	})
	return sb
}

// String returns the buffer contents. Synchronized (toString in Java).
func (sb *StringBuffer) String(t *threading.Thread) string {
	var s string
	sb.ctx.synchronized(t, sb.obj, func() {
		s = string(sb.buf)
	})
	return s
}
