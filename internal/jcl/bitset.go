package jcl

import (
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// BitSet is java.util.BitSet. The paper's jax benchmark made nineteen
// million calls to BitSet.get: "The get method is not synchronized;
// however, it executes a synchronized block after checking for some error
// conditions" (§3.4). This implementation reproduces that exact shape:
// Get's bounds check runs unsynchronized, then the bit is read inside a
// synchronized block.
type BitSet struct {
	ctx  *Context
	obj  *object.Object
	bits []uint64
}

const bitsPerWord = 64

// NewBitSet allocates a bit set with at least nbits of capacity.
func (c *Context) NewBitSet(nbits int) *BitSet {
	words := (nbits + bitsPerWord - 1) / bitsPerWord
	if words == 0 {
		words = 1
	}
	return &BitSet{ctx: c, obj: c.heap.New("BitSet"), bits: make([]uint64, words)}
}

// Object returns the BitSet's lockable identity.
func (b *BitSet) Object() *object.Object { return b.obj }

// ensure grows the word array to cover bit index i. Caller must hold the
// lock.
func (b *BitSet) ensure(i int) {
	w := i/bitsPerWord + 1
	for len(b.bits) < w {
		b.bits = append(b.bits, 0)
	}
}

// Get reports bit i. Unsynchronized bounds check, then a synchronized
// block, as in JDK 1.1.
func (b *BitSet) Get(t *threading.Thread, i int) bool {
	if i < 0 {
		panic("jcl: negative bit index")
	}
	var set bool
	b.ctx.synchronized(t, b.obj, func() {
		w := i / bitsPerWord
		if w < len(b.bits) {
			set = b.bits[w]&(1<<uint(i%bitsPerWord)) != 0
		}
	})
	return set
}

// Set sets bit i. Synchronized.
func (b *BitSet) Set(t *threading.Thread, i int) {
	if i < 0 {
		panic("jcl: negative bit index")
	}
	b.ctx.synchronized(t, b.obj, func() {
		b.ensure(i)
		b.bits[i/bitsPerWord] |= 1 << uint(i%bitsPerWord)
	})
}

// Clear clears bit i. Synchronized.
func (b *BitSet) Clear(t *threading.Thread, i int) {
	if i < 0 {
		panic("jcl: negative bit index")
	}
	b.ctx.synchronized(t, b.obj, func() {
		w := i / bitsPerWord
		if w < len(b.bits) {
			b.bits[w] &^= 1 << uint(i%bitsPerWord)
		}
	})
}

// And intersects with other in place. Synchronized on the receiver.
func (b *BitSet) And(t *threading.Thread, other *BitSet) {
	b.ctx.synchronized(t, b.obj, func() {
		for i := range b.bits {
			if i < len(other.bits) {
				b.bits[i] &= other.bits[i]
			} else {
				b.bits[i] = 0
			}
		}
	})
}

// Or unions with other in place. Synchronized on the receiver.
func (b *BitSet) Or(t *threading.Thread, other *BitSet) {
	b.ctx.synchronized(t, b.obj, func() {
		for i, w := range other.bits {
			b.ensure(i * bitsPerWord)
			b.bits[i] |= w
		}
	})
}

// Xor symmetric-differences with other in place. Synchronized on the
// receiver.
func (b *BitSet) Xor(t *threading.Thread, other *BitSet) {
	b.ctx.synchronized(t, b.obj, func() {
		for i, w := range other.bits {
			b.ensure(i * bitsPerWord)
			b.bits[i] ^= w
		}
	})
}

// Size returns the capacity in bits. Synchronized.
func (b *BitSet) Size(t *threading.Thread) int {
	var n int
	b.ctx.synchronized(t, b.obj, func() {
		n = len(b.bits) * bitsPerWord
	})
	return n
}

// Cardinality counts the set bits. Synchronized.
func (b *BitSet) Cardinality(t *threading.Thread) int {
	var n int
	b.ctx.synchronized(t, b.obj, func() {
		for _, w := range b.bits {
			for ; w != 0; w &= w - 1 {
				n++
			}
		}
	})
	return n
}
