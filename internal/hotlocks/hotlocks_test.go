package hotlocks

import (
	"sync"
	"testing"
	"time"

	"thinlock/internal/object"
	"thinlock/internal/threading"
)

type fixture struct {
	h    *HotLocks
	heap *object.Heap
	reg  *threading.Registry
}

func newFixture(opts Options) *fixture {
	return &fixture{h: New(opts), heap: object.NewHeap(), reg: threading.NewRegistry()}
}

func (f *fixture) thread(t *testing.T) *threading.Thread {
	t.Helper()
	th, err := f.reg.Attach("t")
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestColdLockUnlock(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{})
	th := f.thread(t)
	o := f.heap.New("X")
	f.h.Lock(th, o)
	if err := f.h.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
	s := f.h.Stats()
	if s.ColdOps == 0 {
		t.Error("no cold ops recorded")
	}
	if s.HotOps != 0 {
		t.Error("hot ops recorded before promotion")
	}
}

func TestPromotionAfterThreshold(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{Threshold: 4})
	th := f.thread(t)
	o := f.heap.New("X")
	for i := 0; i < 3; i++ {
		f.h.Lock(th, o)
		if err := f.h.Unlock(th, o); err != nil {
			t.Fatal(err)
		}
	}
	if f.h.Stats().Promotions != 0 {
		t.Fatal("promoted before threshold")
	}
	f.h.Lock(th, o) // 4th lock: promotes
	if err := f.h.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
	if f.h.Stats().Promotions != 1 {
		t.Fatalf("Promotions = %d, want 1", f.h.Stats().Promotions)
	}
	if o.Header()&hotBit == 0 {
		t.Fatal("header has no hot bit after promotion")
	}
	// Subsequent ops are hot.
	before := f.h.Stats().HotOps
	f.h.Lock(th, o)
	if err := f.h.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
	if f.h.Stats().HotOps != before+2 {
		t.Errorf("HotOps = %d, want %d", f.h.Stats().HotOps, before+2)
	}
	if f.h.HotCount() != 1 {
		t.Errorf("HotCount = %d, want 1", f.h.HotCount())
	}
}

func TestPromotionPreservesMiscBits(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{Threshold: 1})
	th := f.thread(t)
	o := f.heap.New("X")
	misc := o.Misc()
	f.h.Lock(th, o)
	if err := f.h.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
	if o.Header()&object.MiscMask != misc {
		t.Errorf("misc bits %#x -> %#x across promotion", misc, o.Header()&object.MiscMask)
	}
}

func TestOnly32SlotsGetHot(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{Threshold: 1})
	th := f.thread(t)
	// Promote far more objects than there are slots.
	hot := 0
	for i := 0; i < 100; i++ {
		o := f.heap.New("X")
		f.h.Lock(th, o)
		if err := f.h.Unlock(th, o); err != nil {
			t.Fatal(err)
		}
		if o.Header()&hotBit != 0 {
			hot++
		}
	}
	if hot != DefaultSlots {
		t.Errorf("hot objects = %d, want exactly %d", hot, DefaultSlots)
	}
	if f.h.HotCount() != DefaultSlots {
		t.Errorf("HotCount = %d, want %d", f.h.HotCount(), DefaultSlots)
	}
}

func TestNestedLockingHotAndCold(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{Threshold: 3})
	th := f.thread(t)
	o := f.heap.New("X")
	// Cold nested.
	f.h.Lock(th, o)
	f.h.Lock(th, o)
	if err := f.h.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
	if err := f.h.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
	// Promote, then hot nested.
	f.h.Lock(th, o)
	if err := f.h.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
	if o.Header()&hotBit == 0 {
		t.Fatal("not promoted")
	}
	f.h.Lock(th, o)
	f.h.Lock(th, o)
	f.h.Lock(th, o)
	for i := 0; i < 3; i++ {
		if err := f.h.Unlock(th, o); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.h.Unlock(th, o); err != ErrIllegalMonitorState {
		t.Fatalf("extra unlock: err = %v", err)
	}
}

func TestIllegalStates(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")
	if err := f.h.Unlock(a, o); err != ErrIllegalMonitorState {
		t.Fatalf("unlock never-locked: %v", err)
	}
	if _, err := f.h.Wait(a, o, 0); err != ErrIllegalMonitorState {
		t.Fatalf("wait never-locked: %v", err)
	}
	if err := f.h.Notify(a, o); err != ErrIllegalMonitorState {
		t.Fatalf("notify never-locked: %v", err)
	}
	if err := f.h.NotifyAll(a, o); err != ErrIllegalMonitorState {
		t.Fatalf("notifyAll never-locked: %v", err)
	}
	f.h.Lock(a, o)
	if err := f.h.Unlock(b, o); err != ErrIllegalMonitorState {
		t.Fatalf("unlock by non-owner: %v", err)
	}
	if err := f.h.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
}

func TestMutualExclusionAcrossPromotion(t *testing.T) {
	t.Parallel()
	// Contend on one object while it crosses the promotion threshold;
	// mutual exclusion must hold throughout the transition.
	f := newFixture(Options{Threshold: 50})
	o := f.heap.New("X")
	const goroutines, iters = 8, 300
	var counter int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th := f.thread(t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f.h.Lock(th, o)
				counter++
				if err := f.h.Unlock(th, o); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
	if f.h.Stats().Promotions != 1 {
		t.Errorf("Promotions = %d, want 1", f.h.Stats().Promotions)
	}
}

func TestColdCacheSweep(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{MaxCold: 8, Threshold: 1000})
	th := f.thread(t)
	for i := 0; i < 40; i++ {
		o := f.heap.New("X")
		f.h.Lock(th, o)
		if err := f.h.Unlock(th, o); err != nil {
			t.Fatal(err)
		}
	}
	if f.h.Stats().Sweeps == 0 {
		t.Error("cold cache never swept under churn")
	}
}

func TestWaitNotifyHot(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{Threshold: 1})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")
	// Promote first.
	f.h.Lock(a, o)
	if err := f.h.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	if o.Header()&hotBit == 0 {
		t.Fatal("not promoted")
	}
	woke := make(chan bool, 1)
	go func() {
		f.h.Lock(a, o)
		n, err := f.h.Wait(a, o, 0)
		if err != nil {
			t.Error(err)
		}
		woke <- n
		if err := f.h.Unlock(a, o); err != nil {
			t.Error(err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		f.h.Lock(b, o)
		if err := f.h.NotifyAll(b, o); err != nil {
			t.Fatal(err)
		}
		if err := f.h.Unlock(b, o); err != nil {
			t.Fatal(err)
		}
		select {
		case n := <-woke:
			if !n {
				t.Fatal("timeout wake")
			}
			return
		case <-time.After(10 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("hot waiter never notified")
			}
		}
	}
}

func TestWaitNotifyCold(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{Threshold: 1000}) // never promotes
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")
	woke := make(chan bool, 1)
	go func() {
		f.h.Lock(a, o)
		n, err := f.h.Wait(a, o, 0)
		if err != nil {
			t.Error(err)
		}
		woke <- n
		if err := f.h.Unlock(a, o); err != nil {
			t.Error(err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		f.h.Lock(b, o)
		if err := f.h.Notify(b, o); err != nil {
			t.Fatal(err)
		}
		if err := f.h.Unlock(b, o); err != nil {
			t.Fatal(err)
		}
		select {
		case n := <-woke:
			if !n {
				t.Fatal("timeout wake")
			}
			return
		case <-time.After(10 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("cold waiter never notified")
			}
		}
	}
}

func TestColdCountAndSlots(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{Threshold: 1000}) // never promotes
	th := f.thread(t)
	if f.h.Slots() != DefaultSlots {
		t.Errorf("Slots = %d", f.h.Slots())
	}
	for i := 0; i < 5; i++ {
		o := f.heap.New("X")
		f.h.Lock(th, o)
		if err := f.h.Unlock(th, o); err != nil {
			t.Fatal(err)
		}
	}
	if f.h.ColdCount() != 5 {
		t.Errorf("ColdCount = %d, want 5", f.h.ColdCount())
	}
}

func TestName(t *testing.T) {
	t.Parallel()
	if NewDefault().Name() != "IBM112" {
		t.Error("Name mismatch")
	}
}

func TestHotWordEncoding(t *testing.T) {
	t.Parallel()
	w := hotWord(17, 0xA5)
	if w&hotBit == 0 {
		t.Error("hot bit missing")
	}
	if slotOf(w) != 17 {
		t.Errorf("slot = %d, want 17", slotOf(w))
	}
	if w&object.MiscMask != 0xA5 {
		t.Errorf("misc = %#x, want 0xA5", w&object.MiscMask)
	}
}
