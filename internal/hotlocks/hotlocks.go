// Package hotlocks implements the IBM JDK 1.1.2 baseline the paper calls
// "IBM112": a small fixed set of pre-allocated "hot locks" in front of a
// monitor cache.
//
// Per §3 of the paper: "The IBM112 implementation assumes that most
// applications will have a small number of heavily used locks. It
// therefore pre-allocates a small number (32) of hot locks. The system
// begins by using the default fat locks, slightly modified to record
// locking frequency. When a fat lock is detected to be hot, a pointer to
// the hot lock is placed in the header of the object ... One bit in the
// header word indicates whether the word is a hot lock pointer or regular
// header data."
//
// Once an object is hot, locking follows the header pointer, compares a
// thread identifier and increments a count — fast, which is why IBM112
// nearly matches thin locks on NestedSync and beats JDK111 under
// contention on few objects (Figure 4). Its Achilles heel, reproduced
// here, is that only 32 objects can be hot: workloads with larger working
// sets fall back to the global-locked cache, and MultiSync collapses past
// n = 32.
package hotlocks

import (
	"sync"
	"sync/atomic"
	"time"

	"thinlock/internal/lockdep"
	"thinlock/internal/lockprof"
	"thinlock/internal/monitor"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

// ErrIllegalMonitorState mirrors monitor.ErrIllegalMonitorState.
var ErrIllegalMonitorState = monitor.ErrIllegalMonitorState

// DefaultSlots is the number of pre-allocated hot locks in the paper.
const DefaultSlots = 32

// DefaultThreshold is the locking frequency at which a fat lock is
// "detected to be hot" and promoted.
const DefaultThreshold = 8

// defaultMaxCold bounds the cold cache before it sweeps quiescent
// entries.
const defaultMaxCold = 1024

// Header encoding: bit 31 flags a hot-lock pointer; bits 30..8 hold the
// hot slot index; the low 8 misc bits stay in place (the displaced
// header data the paper moves into the hot lock structure is, in this
// model, only the misc byte, which we can leave untouched).
const (
	hotBit    uint32 = 1 << 31
	slotShift        = 8
)

func hotWord(slot int, misc uint32) uint32 {
	return hotBit | uint32(slot)<<slotShift | misc&object.MiscMask
}

func slotOf(w uint32) int { return int((w &^ hotBit) >> slotShift) }

// Options configures a HotLocks instance.
type Options struct {
	// Slots is the number of hot locks; 0 means DefaultSlots (32).
	Slots int
	// Threshold is the promotion frequency; 0 means DefaultThreshold.
	Threshold uint32
	// MaxCold bounds the cold cache; 0 means a default of 1024.
	MaxCold int
}

// coldEntry is a cache-resident fat lock recording locking frequency.
type coldEntry struct {
	mon  *monitor.Monitor
	freq uint32
	pins int // threads between lookup and monitor op; guarded by mu
	// promoting marks that a thread has reserved a hot slot for this
	// entry and will install the header once it owns the monitor.
	promoting bool
}

// Stats is a snapshot of hot-lock behaviour.
type Stats struct {
	// HotOps counts operations served directly through a hot slot.
	HotOps uint64
	// ColdOps counts operations that went through the cache.
	ColdOps uint64
	// Promotions counts objects promoted to hot slots.
	Promotions uint64
	// Sweeps counts cold-cache cleanup scans.
	Sweeps uint64
}

// HotLocks is the IBM112 locker. It implements lockapi.Locker.
type HotLocks struct {
	mu        sync.Mutex
	cold      map[uint64]*coldEntry
	slots     []*monitor.Monitor
	nextSlot  int
	threshold uint32
	maxCold   int

	hotOps     atomic.Uint64
	coldOps    atomic.Uint64
	promotions atomic.Uint64
	sweeps     atomic.Uint64
}

// New returns a HotLocks instance with the given options.
func New(opts Options) *HotLocks {
	slots := opts.Slots
	if slots <= 0 {
		slots = DefaultSlots
	}
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	maxCold := opts.MaxCold
	if maxCold <= 0 {
		maxCold = defaultMaxCold
	}
	return &HotLocks{
		cold:      make(map[uint64]*coldEntry),
		slots:     make([]*monitor.Monitor, slots),
		threshold: threshold,
		maxCold:   maxCold,
	}
}

// NewDefault returns the paper's configuration: 32 hot locks.
func NewDefault() *HotLocks { return New(Options{}) }

// Name implements lockapi.Locker.
func (h *HotLocks) Name() string { return "IBM112" }

// Stats returns a snapshot of the counters.
func (h *HotLocks) Stats() Stats {
	return Stats{
		HotOps:     h.hotOps.Load(),
		ColdOps:    h.coldOps.Load(),
		Promotions: h.promotions.Load(),
		Sweeps:     h.sweeps.Load(),
	}
}

// HotCount reports how many hot slots are occupied.
func (h *HotLocks) HotCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nextSlot
}

// ColdCount reports how many cold cache entries currently exist.
func (h *HotLocks) ColdCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.cold)
}

// Slots reports the configured number of hot-lock slots.
func (h *HotLocks) Slots() int { return len(h.slots) }

// hot returns the hot monitor for a hot header word.
func (h *HotLocks) hot(t *threading.Thread, w uint32) *monitor.Monitor {
	h.hotOps.Add(1)
	telemetry.Inc(t, telemetry.CtrHotOps)
	return h.slots[slotOf(w)]
}

// coldLookup finds or creates the pinned cold entry for o and bumps its
// frequency. It reserves a hot slot when the entry crosses the
// threshold; the reservation index is returned (or -1).
func (h *HotLocks) coldLookup(t *threading.Thread, o *object.Object, create bool) (*coldEntry, int) {
	h.coldOps.Add(1)
	telemetry.Inc(t, telemetry.CtrColdOps)
	h.mu.Lock()
	e := h.cold[o.ID()]
	if e == nil {
		if !create {
			h.mu.Unlock()
			return nil, -1
		}
		if len(h.cold) >= h.maxCold {
			h.sweepLocked()
		}
		e = &coldEntry{mon: monitor.New()}
		h.cold[o.ID()] = e
	}
	e.pins++
	slot := -1
	if create {
		e.freq++
		if e.freq >= h.threshold && !e.promoting && h.nextSlot < len(h.slots) {
			// Reserve a slot; the header is installed by the caller
			// once it owns the monitor, so no other thread can be
			// mid-critical-section when the pointer appears.
			e.promoting = true
			slot = h.nextSlot
			h.nextSlot++
		}
	}
	h.mu.Unlock()
	return e, slot
}

// sweepLocked drops quiescent, unpinned cold entries. Caller holds h.mu.
func (h *HotLocks) sweepLocked() {
	h.sweeps.Add(1)
	telemetry.Inc(nil, telemetry.CtrColdSweeps)
	for id, e := range h.cold {
		if e.pins == 0 && !e.promoting && e.mon.Quiescent() {
			delete(h.cold, id)
		}
	}
}

func (h *HotLocks) unpin(e *coldEntry) {
	h.mu.Lock()
	e.pins--
	h.mu.Unlock()
}

// Lock implements lockapi.Locker. Like JDK111, every IBM112 acquisition
// routes through a monitor (hot slot or cold cache) — there is no
// header-only fast path — so the whole operation is reported to the
// contention profiler.
func (h *HotLocks) Lock(t *threading.Thread, o *object.Object) {
	if p := lockprof.Active(); p != nil {
		p.SlowPathEnter(t, o)
		start := telemetry.Now()
		h.lockBody(t, o)
		p.SlowPathExit(t, o, telemetry.Now()-start)
	} else {
		h.lockBody(t, o)
	}
	if d := lockdep.Active(); d != nil {
		d.Acquired(t, o)
	}
}

func (h *HotLocks) lockBody(t *threading.Thread, o *object.Object) {
	w := o.Header()
	if w&hotBit != 0 {
		lockdep.Blocked(t, o, lockdep.WaitFat)
		h.hot(t, w).Enter(t)
		return
	}
	e, slot := h.coldLookup(t, o, true)
	lockdep.Blocked(t, o, lockdep.WaitFat)
	e.mon.Enter(t)
	if slot >= 0 {
		// Promote: we own the monitor, so no thread is inside a
		// critical section on this object; threads blocked on the
		// monitor keep working because the slot aliases the same
		// monitor structure.
		h.mu.Lock()
		h.slots[slot] = e.mon
		delete(h.cold, o.ID())
		h.mu.Unlock()
		o.SetHeader(hotWord(slot, w))
		h.promotions.Add(1)
		telemetry.Inc(t, telemetry.CtrHotPromotions)
	}
	h.unpin(e)
}

// Unlock implements lockapi.Locker.
func (h *HotLocks) Unlock(t *threading.Thread, o *object.Object) error {
	err := h.unlockBody(t, o)
	if err == nil {
		if d := lockdep.Active(); d != nil {
			d.Released(t, o)
		}
	}
	return err
}

func (h *HotLocks) unlockBody(t *threading.Thread, o *object.Object) error {
	lockprof.UnlockSlow(t, o)
	w := o.Header()
	if w&hotBit != 0 {
		return h.hot(t, w).Exit(t)
	}
	e, _ := h.coldLookup(t, o, false)
	if e == nil {
		// The object may have been promoted between our header read
		// and the cache lookup.
		if w = o.Header(); w&hotBit != 0 {
			return h.hot(t, w).Exit(t)
		}
		return ErrIllegalMonitorState
	}
	err := e.mon.Exit(t)
	h.unpin(e)
	return err
}

// Wait implements lockapi.Locker.
func (h *HotLocks) Wait(t *threading.Thread, o *object.Object, d time.Duration) (bool, error) {
	if ld := lockdep.Active(); ld != nil {
		ld.CondWaitBegin(t, o)
		notified, err := h.waitBody(t, o, d)
		ld.CondWaitEnd(t, o)
		return notified, err
	}
	return h.waitBody(t, o, d)
}

func (h *HotLocks) waitBody(t *threading.Thread, o *object.Object, d time.Duration) (bool, error) {
	w := o.Header()
	if w&hotBit != 0 {
		return h.hot(t, w).Wait(t, d)
	}
	e, _ := h.coldLookup(t, o, false)
	if e == nil {
		if w = o.Header(); w&hotBit != 0 {
			return h.hot(t, w).Wait(t, d)
		}
		return false, ErrIllegalMonitorState
	}
	notified, err := e.mon.Wait(t, d)
	h.unpin(e)
	return notified, err
}

// Notify implements lockapi.Locker.
func (h *HotLocks) Notify(t *threading.Thread, o *object.Object) error {
	w := o.Header()
	if w&hotBit != 0 {
		return h.hot(t, w).Notify(t)
	}
	e, _ := h.coldLookup(t, o, false)
	if e == nil {
		if w = o.Header(); w&hotBit != 0 {
			return h.hot(t, w).Notify(t)
		}
		return ErrIllegalMonitorState
	}
	err := e.mon.Notify(t)
	h.unpin(e)
	return err
}

// NotifyAll implements lockapi.Locker.
func (h *HotLocks) NotifyAll(t *threading.Thread, o *object.Object) error {
	w := o.Header()
	if w&hotBit != 0 {
		return h.hot(t, w).NotifyAll(t)
	}
	e, _ := h.coldLookup(t, o, false)
	if e == nil {
		if w = o.Header(); w&hotBit != 0 {
			return h.hot(t, w).NotifyAll(t)
		}
		return ErrIllegalMonitorState
	}
	err := e.mon.NotifyAll(t)
	h.unpin(e)
	return err
}
