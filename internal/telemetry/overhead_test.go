package telemetry_test

// Overhead contract for the telemetry layer (see package comment):
// disabled hooks must add no allocation to any lock path, enabled
// hooks must add no allocation to the slow path, and enabled telemetry
// must not materially slow the uncontended lock/unlock cycle (whose
// fast path carries no hooks at all).

import (
	"sort"
	"testing"
	"time"

	"thinlock/internal/core"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

type lockFixture struct {
	l    *core.ThinLocks
	heap *object.Heap
	th   *threading.Thread
	o    *object.Object
}

func newLockFixture(t testing.TB) *lockFixture {
	t.Helper()
	f := &lockFixture{l: core.NewDefault(), heap: object.NewHeap()}
	reg := threading.NewRegistry()
	th, err := reg.Attach("bench")
	if err != nil {
		t.Fatal(err)
	}
	f.th = th
	f.o = f.heap.New("Object")
	return f
}

// Not parallel: owns the global telemetry registration.
func TestDisabledHooksDoNotAllocate(t *testing.T) {
	telemetry.Disable()
	f := newLockFixture(t)
	if allocs := testing.AllocsPerRun(100, func() {
		f.l.Lock(f.th, f.o)
		if err := f.l.Unlock(f.th, f.o); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("disabled lock/unlock allocates %.1f objects per op", allocs)
	}
	// Nested acquisition exercises the slow path and its (disabled)
	// hook sites.
	if allocs := testing.AllocsPerRun(100, func() {
		f.l.Lock(f.th, f.o)
		f.l.Lock(f.th, f.o)
		f.l.Unlock(f.th, f.o)
		f.l.Unlock(f.th, f.o)
	}); allocs != 0 {
		t.Errorf("disabled nested lock allocates %.1f objects per op", allocs)
	}
}

// Not parallel: owns the global telemetry registration.
func TestEnabledSlowPathDoesNotAllocate(t *testing.T) {
	telemetry.Enable(telemetry.New())
	defer telemetry.Disable()
	f := newLockFixture(t)
	if allocs := testing.AllocsPerRun(100, func() {
		f.l.Lock(f.th, f.o)
		f.l.Lock(f.th, f.o) // nested: slow path, records counter + latency
		f.l.Unlock(f.th, f.o)
		f.l.Unlock(f.th, f.o)
	}); allocs != 0 {
		t.Errorf("enabled slow path allocates %.1f objects per op", allocs)
	}
	if got := telemetry.Active().Counter(telemetry.CtrSlowPathEntries); got == 0 {
		t.Error("slow path hook did not record (test measured the wrong path)")
	}
}

// medianCycle times reps uncontended lock/unlock cycles and returns the
// median of samples runs, which is robust against scheduler noise.
func medianCycle(f *lockFixture, samples, reps int) time.Duration {
	ds := make([]time.Duration, 0, samples)
	for s := 0; s < samples; s++ {
		start := time.Now()
		for i := 0; i < reps; i++ {
			f.l.Lock(f.th, f.o)
			f.l.Unlock(f.th, f.o)
		}
		ds = append(ds, time.Since(start))
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// TestEnabledOverheadIsBounded checks the acceptance bound: enabled
// telemetry keeps the uncontended cycle within budget of the
// uninstrumented run. The fast path has no hook sites, so the true
// ratio is ~1.0; the assertion allows 2x so CI scheduling jitter cannot
// flake, while the strict 15% bound is reported by the benchmarks
// below. Not parallel: owns the global telemetry registration and
// times itself.
func TestEnabledOverheadIsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	f := newLockFixture(t)
	const samples, reps = 9, 20000
	telemetry.Disable()
	medianCycle(f, 3, reps) // warm up
	off := medianCycle(f, samples, reps)
	telemetry.Enable(telemetry.New())
	defer telemetry.Disable()
	on := medianCycle(f, samples, reps)
	if off > 0 && float64(on) > 2*float64(off) {
		t.Errorf("enabled telemetry slowed uncontended cycle %.2fx (off=%v on=%v)",
			float64(on)/float64(off), off, on)
	}
}

// BenchmarkUncontendedLockUnlock/Disabled vs /Enabled is the precise
// overhead measurement behind the 15%% acceptance bound:
//
//	go test -bench UncontendedLockUnlock -benchmem ./internal/telemetry/
func BenchmarkUncontendedLockUnlock(b *testing.B) {
	run := func(b *testing.B) {
		f := newLockFixture(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.l.Lock(f.th, f.o)
			f.l.Unlock(f.th, f.o)
		}
	}
	b.Run("Disabled", func(b *testing.B) {
		telemetry.Disable()
		run(b)
	})
	b.Run("Enabled", func(b *testing.B) {
		telemetry.Enable(telemetry.New())
		defer telemetry.Disable()
		run(b)
	})
}

// BenchmarkNestedLockUnlock measures the slow path, where the hooks
// actually live.
func BenchmarkNestedLockUnlock(b *testing.B) {
	run := func(b *testing.B) {
		f := newLockFixture(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.l.Lock(f.th, f.o)
			f.l.Lock(f.th, f.o)
			f.l.Unlock(f.th, f.o)
			f.l.Unlock(f.th, f.o)
		}
	}
	b.Run("Disabled", func(b *testing.B) {
		telemetry.Disable()
		run(b)
	})
	b.Run("Enabled", func(b *testing.B) {
		telemetry.Enable(telemetry.New())
		defer telemetry.Disable()
		run(b)
	})
}

// BenchmarkHookDispatch isolates one disabled vs enabled hook call.
func BenchmarkHookDispatch(b *testing.B) {
	b.Run("Disabled", func(b *testing.B) {
		telemetry.Disable()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			telemetry.Inc(nil, telemetry.CtrSlowPathEntries)
		}
	})
	b.Run("Enabled", func(b *testing.B) {
		telemetry.Enable(telemetry.New())
		defer telemetry.Disable()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			telemetry.Inc(nil, telemetry.CtrSlowPathEntries)
		}
	})
}
