package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// HistSnapshot is one histogram's merged state.
type HistSnapshot struct {
	// Count is the number of observations.
	Count uint64 `json:"count"`
	// Sum is the sum of all observations.
	Sum uint64 `json:"sum"`
	// Buckets[b] counts observations that fell in log2 bucket b (see
	// BucketUpperBound).
	Buckets []uint64 `json:"buckets"`
}

// Mean returns the average observation, or 0 with no observations.
func (h HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) with within-bucket
// linear interpolation: the target rank is located in the first bucket
// whose cumulative count reaches it, and the estimate interpolates
// between that bucket's lower and upper bound by the rank's position
// inside the bucket. q=1 therefore returns the final occupied bucket's
// upper bound, and a log2 bucket no longer overstates the quantile by
// up to 2x the way the old upper-bound estimate did. The open-ended
// last bucket has no upper bound to interpolate toward and reports its
// lower bound. Returns 0 with no observations.
func (h HistSnapshot) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := q * float64(h.Count)
	if target < 1 {
		target = 1
	}
	var cum uint64
	for b, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= target {
			lo := bucketLowerBound(b)
			if b >= NumBuckets-1 {
				return lo
			}
			hi := BucketUpperBound(b)
			frac := (target - float64(cum)) / float64(n)
			return lo + uint64(frac*float64(hi-lo)+0.5)
		}
		cum += n
	}
	return bucketLowerBound(NumBuckets - 1)
}

// merge adds o into h.
func (h *HistSnapshot) merge(o HistSnapshot) {
	h.Count += o.Count
	h.Sum += o.Sum
	if len(h.Buckets) < len(o.Buckets) {
		grown := make([]uint64, len(o.Buckets))
		copy(grown, h.Buckets)
		h.Buckets = grown
	}
	for b, n := range o.Buckets {
		h.Buckets[b] += n
	}
}

// Snapshot is a point-in-time merge of every shard, keyed by metric
// name. Snapshots from different Telemetry instances (or macrobench
// phases) can be merged.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot merges all shards into a Snapshot. It is safe to call while
// other threads are recording; the result is a consistent-enough sum
// (each cell is read atomically).
func (m *Telemetry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64, NumCounters),
		Histograms: make(map[string]HistSnapshot, NumHistos),
	}
	for c := Counter(0); c < NumCounters; c++ {
		var n uint64
		for i := range m.shards {
			n += m.shards[i].counters[c].Load()
		}
		s.Counters[c.Name()] = n
	}
	for h := Histo(0); h < NumHistos; h++ {
		hs := HistSnapshot{Buckets: make([]uint64, NumBuckets)}
		for i := range m.shards {
			sh := &m.shards[i]
			for b := 0; b < NumBuckets; b++ {
				hs.Buckets[b] += sh.buckets[h][b].Load()
			}
			hs.Sum += sh.sums[h].Load()
		}
		for _, n := range hs.Buckets {
			hs.Count += n
		}
		s.Histograms[h.Name()] = hs
	}
	return s
}

// Merge returns a new Snapshot with o's counts added to s's.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Histograms {
		c := HistSnapshot{Count: v.Count, Sum: v.Sum, Buckets: append([]uint64(nil), v.Buckets...)}
		out.Histograms[k] = c
	}
	for k, v := range o.Histograms {
		c := out.Histograms[k]
		c.merge(v)
		out.Histograms[k] = c
	}
	return out
}

// Delta returns s minus prev, counter-wise (for live-rate displays).
// Histogram deltas subtract bucket-wise; counts that shrank (after a
// Reset) clamp to zero.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = sub(v, prev.Counters[k])
	}
	for k, v := range s.Histograms {
		p := prev.Histograms[k]
		d := HistSnapshot{
			Count:   sub(v.Count, p.Count),
			Sum:     sub(v.Sum, p.Sum),
			Buckets: make([]uint64, len(v.Buckets)),
		}
		for b := range v.Buckets {
			var pb uint64
			if b < len(p.Buckets) {
				pb = p.Buckets[b]
			}
			d.Buckets[b] = sub(v.Buckets[b], pb)
		}
		out.Histograms[k] = d
	}
	return out
}

// Counter returns the named counter's value (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Inflations returns the total inflation count across all causes.
func (s Snapshot) Inflations() uint64 {
	return s.Counters["inflations_contention"] +
		s.Counters["inflations_overflow"] +
		s.Counters["inflations_wait"]
}

// WriteJSON writes the snapshot as expvar-style JSON: one object with
// sorted keys, counters as numbers, histograms as structured values.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// PromPrefix is prepended to every Prometheus metric name.
const PromPrefix = "thinlock_"

// EscapeLabelValue escapes a Prometheus label value per the text
// exposition format: backslash as \\, double-quote as \", and line
// feed as \n. (Go's %q is close but escapes other bytes too, which
// scrapers are not required to accept.)
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format: counters as `thinlock_<name>_total`, histograms as classic
// cumulative `_bucket`/`_sum`/`_count` series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "# TYPE %s%s_total counter\n", PromPrefix, k)
		fmt.Fprintf(&b, "%s%s_total %d\n", PromPrefix, k, s.Counters[k])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		hnames = append(hnames, k)
	}
	sort.Strings(hnames)
	for _, k := range hnames {
		h := s.Histograms[k]
		fmt.Fprintf(&b, "# TYPE %s%s histogram\n", PromPrefix, k)
		var cum uint64
		for bkt, n := range h.Buckets {
			cum += n
			// Skip interior empty buckets to keep the exposition
			// compact; cumulative semantics are unaffected.
			if n == 0 && bkt != len(h.Buckets)-1 {
				continue
			}
			le := "+Inf"
			if ub := BucketUpperBound(bkt); ub != ^uint64(0) {
				le = fmt.Sprintf("%d", ub)
			}
			fmt.Fprintf(&b, "%s%s_bucket{le=\"%s\"} %d\n", PromPrefix, k, EscapeLabelValue(le), cum)
		}
		fmt.Fprintf(&b, "%s%s_sum %d\n", PromPrefix, k, h.Sum)
		fmt.Fprintf(&b, "%s%s_count %d\n", PromPrefix, k, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders a compact human-readable summary: nonzero counters in
// sorted order, then histogram means.
func (s Snapshot) String() string {
	names := make([]string, 0, len(s.Counters))
	for k, v := range s.Counters {
		if v > 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%-28s %d\n", k, s.Counters[k])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for k, h := range s.Histograms {
		if h.Count > 0 {
			hnames = append(hnames, k)
		}
	}
	sort.Strings(hnames)
	for _, k := range hnames {
		h := s.Histograms[k]
		fmt.Fprintf(&b, "%-28s n=%d mean=%.0f p50~%d p99~%d\n",
			k, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
	}
	if b.Len() == 0 {
		return "(no telemetry recorded)\n"
	}
	return b.String()
}
