package telemetry_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

func attach(t *testing.T, reg *threading.Registry, name string) *threading.Thread {
	t.Helper()
	th, err := reg.Attach(name)
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestCounterNamesAreUniqueAndStable(t *testing.T) {
	t.Parallel()
	seen := make(map[string]bool)
	for c := telemetry.Counter(0); c < telemetry.NumCounters; c++ {
		n := c.Name()
		if n == "" || n == "unknown" {
			t.Errorf("counter %d has no name", c)
		}
		if seen[n] {
			t.Errorf("duplicate counter name %q", n)
		}
		seen[n] = true
	}
	if telemetry.NumCounters.Name() != "unknown" {
		t.Error("out-of-range counter must report unknown")
	}
	for h := telemetry.Histo(0); h < telemetry.NumHistos; h++ {
		if h.Name() == "" || h.Name() == "unknown" {
			t.Errorf("histogram %d has no name", h)
		}
	}
}

func TestIncSumsAcrossThreads(t *testing.T) {
	t.Parallel()
	m := telemetry.New()
	reg := threading.NewRegistry()
	a := attach(t, reg, "a")
	b := attach(t, reg, "b")
	m.Inc(a, telemetry.CtrSlowPathEntries)
	m.Inc(b, telemetry.CtrSlowPathEntries)
	m.Inc(nil, telemetry.CtrSlowPathEntries) // threadless hook site
	m.Add(a, telemetry.CtrCASFailures, 5)
	if got := m.Counter(telemetry.CtrSlowPathEntries); got != 3 {
		t.Errorf("slow path entries = %d, want 3", got)
	}
	if got := m.Counter(telemetry.CtrCASFailures); got != 5 {
		t.Errorf("cas failures = %d, want 5", got)
	}
}

func TestObserveBucketsLogScale(t *testing.T) {
	t.Parallel()
	m := telemetry.New()
	// 0 and negatives land in bucket 0; v lands in bucket bits.Len64(v).
	m.Observe(nil, telemetry.HistAcquireSlowNs, 0)
	m.Observe(nil, telemetry.HistAcquireSlowNs, -7)
	m.Observe(nil, telemetry.HistAcquireSlowNs, 1)    // bucket 1
	m.Observe(nil, telemetry.HistAcquireSlowNs, 1000) // bucket 10
	s := m.Snapshot()
	h := s.Histograms[telemetry.HistAcquireSlowNs.Name()]
	if h.Count != 4 {
		t.Fatalf("count = %d, want 4", h.Count)
	}
	if h.Sum != 1001 {
		t.Errorf("sum = %d, want 1001 (negatives clamp)", h.Sum)
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[10] != 1 {
		t.Errorf("buckets = %v", h.Buckets[:12])
	}
}

func TestBucketUpperBound(t *testing.T) {
	t.Parallel()
	if telemetry.BucketUpperBound(0) != 0 {
		t.Error("bucket 0 holds only 0")
	}
	if telemetry.BucketUpperBound(4) != 15 {
		t.Errorf("bucket 4 upper bound = %d, want 15", telemetry.BucketUpperBound(4))
	}
	if telemetry.BucketUpperBound(telemetry.NumBuckets-1) != ^uint64(0) {
		t.Error("last bucket must be unbounded")
	}
}

func TestHistQuantileAndMean(t *testing.T) {
	t.Parallel()
	m := telemetry.New()
	for i := 0; i < 90; i++ {
		m.Observe(nil, telemetry.HistMonitorStallNs, 10) // bucket 4, le 15
	}
	for i := 0; i < 10; i++ {
		m.Observe(nil, telemetry.HistMonitorStallNs, 1000) // bucket 10, le 1023
	}
	h := m.Snapshot().Histograms[telemetry.HistMonitorStallNs.Name()]
	// Interpolated p50: rank 50 of 90 observations in bucket 4 ([8,15])
	// lands at 8 + (50/90)*7 ≈ 11.9, not at the old upper bound 15.
	if got := h.Quantile(0.5); got != 12 {
		t.Errorf("p50 = %d, want 12", got)
	}
	// Interpolated p99: rank 99, 90 below bucket 10 ([512,1023]),
	// 512 + (9/10)*511 ≈ 971.9.
	if got := h.Quantile(0.99); got != 972 {
		t.Errorf("p99 = %d, want 972", got)
	}
	want := (90*10.0 + 10*1000.0) / 100
	if h.Mean() != want {
		t.Errorf("mean = %f, want %f", h.Mean(), want)
	}
	var empty telemetry.HistSnapshot
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty histogram must report zeros")
	}
}

// TestHistQuantileInterpolation pins the within-bucket interpolation
// contract on the degenerate shapes: an empty histogram, every
// observation in one bucket, the zero bucket, and a histogram saturated
// into the open-ended last bucket.
func TestHistQuantileInterpolation(t *testing.T) {
	t.Parallel()

	t.Run("empty", func(t *testing.T) {
		var empty telemetry.HistSnapshot
		for _, q := range []float64{0.01, 0.5, 0.99, 1} {
			if got := empty.Quantile(q); got != 0 {
				t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
			}
		}
	})

	t.Run("single-bucket", func(t *testing.T) {
		m := telemetry.New()
		for i := 0; i < 4; i++ {
			m.Observe(nil, telemetry.HistAcquireSlowNs, 10) // bucket 4: [8,15]
		}
		h := m.Snapshot().Histograms[telemetry.HistAcquireSlowNs.Name()]
		// p50 interpolates halfway into [8,15]: 8 + 0.5*7 = 11.5 → 12.
		if got := h.Quantile(0.5); got != 12 {
			t.Errorf("single-bucket p50 = %d, want 12", got)
		}
		// q=1 must reach the bucket's upper bound exactly.
		if got := h.Quantile(1); got != 15 {
			t.Errorf("single-bucket p100 = %d, want 15", got)
		}
		// A tiny q still anchors at rank 1: 8 + (1/4)*7 = 9.75 → 10.
		if got := h.Quantile(0.0001); got != 10 {
			t.Errorf("single-bucket p0.01 = %d, want 10", got)
		}
	})

	t.Run("zero-bucket", func(t *testing.T) {
		m := telemetry.New()
		m.Observe(nil, telemetry.HistAcquireSlowNs, 0)
		h := m.Snapshot().Histograms[telemetry.HistAcquireSlowNs.Name()]
		if got := h.Quantile(0.99); got != 0 {
			t.Errorf("zero-bucket p99 = %d, want 0", got)
		}
	})

	t.Run("saturated", func(t *testing.T) {
		m := telemetry.New()
		for i := 0; i < 3; i++ {
			// Far beyond the last bounded bucket; lands in the
			// open-ended bucket NumBuckets-1.
			m.Observe(nil, telemetry.HistAcquireSlowNs, int64(1)<<60)
		}
		h := m.Snapshot().Histograms[telemetry.HistAcquireSlowNs.Name()]
		// No upper bound to interpolate toward: report the bucket's
		// lower bound 2^(NumBuckets-2) rather than MaxUint64.
		wantLower := uint64(1) << uint(telemetry.NumBuckets-2)
		for _, q := range []float64{0.5, 0.99, 1} {
			if got := h.Quantile(q); got != wantLower {
				t.Errorf("saturated Quantile(%v) = %d, want %d", q, got, wantLower)
			}
		}
	})
}

func TestSnapshotMergeAndDelta(t *testing.T) {
	t.Parallel()
	m1 := telemetry.New()
	m2 := telemetry.New()
	m1.Inc(nil, telemetry.CtrInflationsContention)
	m1.Observe(nil, telemetry.HistAcquireSlowNs, 100)
	m2.Add(nil, telemetry.CtrInflationsContention, 2)
	m2.Inc(nil, telemetry.CtrInflationsWait)
	m2.Observe(nil, telemetry.HistAcquireSlowNs, 200)

	merged := m1.Snapshot().Merge(m2.Snapshot())
	if merged.Counter("inflations_contention") != 3 {
		t.Errorf("merged contention = %d, want 3", merged.Counter("inflations_contention"))
	}
	if merged.Inflations() != 4 {
		t.Errorf("merged inflations = %d, want 4", merged.Inflations())
	}
	h := merged.Histograms["acquire_slow_ns"]
	if h.Count != 2 || h.Sum != 300 {
		t.Errorf("merged histogram = %+v", h)
	}

	before := m1.Snapshot()
	m1.Add(nil, telemetry.CtrInflationsContention, 9)
	m1.Observe(nil, telemetry.HistAcquireSlowNs, 50)
	d := m1.Snapshot().Delta(before)
	if d.Counter("inflations_contention") != 9 {
		t.Errorf("delta contention = %d, want 9", d.Counter("inflations_contention"))
	}
	if dh := d.Histograms["acquire_slow_ns"]; dh.Count != 1 || dh.Sum != 50 {
		t.Errorf("delta histogram = %+v", dh)
	}
	// Shrinking counts (after a Reset) clamp to zero, never underflow.
	m1.Reset()
	d = m1.Snapshot().Delta(before)
	if d.Counter("inflations_contention") != 0 {
		t.Errorf("post-reset delta = %d, want 0", d.Counter("inflations_contention"))
	}
}

func TestReset(t *testing.T) {
	t.Parallel()
	m := telemetry.New()
	m.Inc(nil, telemetry.CtrDeflations)
	m.Observe(nil, telemetry.HistEntryQueueDepth, 3)
	m.Reset()
	s := m.Snapshot()
	if s.Counter("deflations") != 0 {
		t.Error("counter survived Reset")
	}
	if s.Histograms["entry_queue_depth"].Count != 0 {
		t.Error("histogram survived Reset")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	t.Parallel()
	m := telemetry.New()
	m.Add(nil, telemetry.CtrVMMonitorEnter, 7)
	m.Observe(nil, telemetry.HistAcquireSlowNs, 12)
	var buf bytes.Buffer
	if err := m.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got telemetry.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got.Counter("vm_monitorenter_ops") != 7 {
		t.Errorf("round-tripped counter = %d, want 7", got.Counter("vm_monitorenter_ops"))
	}
	if got.Histograms["acquire_slow_ns"].Count != 1 {
		t.Error("round-tripped histogram lost its observation")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	t.Parallel()
	m := telemetry.New()
	m.Add(nil, telemetry.CtrSlowPathEntries, 42)
	m.Observe(nil, telemetry.HistAcquireSlowNs, 10)   // le 15
	m.Observe(nil, telemetry.HistAcquireSlowNs, 1000) // le 1023
	var buf bytes.Buffer
	if err := m.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE thinlock_slow_path_entries_total counter",
		"thinlock_slow_path_entries_total 42",
		"# TYPE thinlock_acquire_slow_ns histogram",
		`thinlock_acquire_slow_ns_bucket{le="15"} 1`,
		`thinlock_acquire_slow_ns_bucket{le="1023"} 2`,
		`thinlock_acquire_slow_ns_bucket{le="+Inf"} 2`,
		"thinlock_acquire_slow_ns_sum 1010",
		"thinlock_acquire_slow_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// Every series line must parse as "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestSnapshotString(t *testing.T) {
	t.Parallel()
	m := telemetry.New()
	if s := m.Snapshot().String(); !strings.Contains(s, "no telemetry") {
		t.Errorf("empty summary = %q", s)
	}
	m.Inc(nil, telemetry.CtrWaits)
	m.Observe(nil, telemetry.HistMonitorStallNs, 128)
	s := m.Snapshot().String()
	if !strings.Contains(s, "waits") || !strings.Contains(s, "monitor_stall_ns") {
		t.Errorf("summary missing series: %q", s)
	}
}

func TestNowIsMonotonic(t *testing.T) {
	t.Parallel()
	a := telemetry.Now()
	b := telemetry.Now()
	if b < a {
		t.Errorf("Now went backwards: %d then %d", a, b)
	}
}

// TestConcurrentRecordingAndSnapshot hammers one Telemetry from many
// goroutines while snapshots are taken mid-flight; run with -race this
// is the data-race check for the sharded counters.
func TestConcurrentRecordingAndSnapshot(t *testing.T) {
	t.Parallel()
	m := telemetry.New()
	reg := threading.NewRegistry()
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := attach(t, reg, "w")
		wg.Add(1)
		go func(th *threading.Thread) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Inc(th, telemetry.CtrSlowPathEntries)
				m.Observe(th, telemetry.HistAcquireSlowNs, int64(i%1024))
			}
		}(th)
	}
	// Snapshot while mutating: must not race, and counts must be sane.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			s := m.Snapshot()
			if s.Counter("slow_path_entries") > workers*per {
				t.Error("snapshot overcounted")
				return
			}
		}
	}()
	wg.Wait()
	<-done
	s := m.Snapshot()
	if got := s.Counter("slow_path_entries"); got != workers*per {
		t.Errorf("final count = %d, want %d", got, workers*per)
	}
	if got := s.Histograms["acquire_slow_ns"].Count; got != workers*per {
		t.Errorf("final histogram count = %d, want %d", got, workers*per)
	}
}

// TestGlobalEnableDisable exercises the package-level hook funnel. Not
// parallel: it owns the global registration (parallel tests in this
// package only start after sequential ones finish).
func TestGlobalEnableDisable(t *testing.T) {
	if telemetry.Enabled() {
		t.Fatal("telemetry unexpectedly enabled at test start")
	}
	// Disabled: all hooks are no-ops.
	telemetry.Inc(nil, telemetry.CtrWaits)
	telemetry.Add(nil, telemetry.CtrWaits, 3)
	telemetry.Observe(nil, telemetry.HistMonitorStallNs, 1)

	m := telemetry.Enable(telemetry.New())
	defer telemetry.Disable()
	if !telemetry.Enabled() || telemetry.Active() != m {
		t.Fatal("Enable did not install the instance")
	}
	telemetry.Inc(nil, telemetry.CtrWaits)
	telemetry.Add(nil, telemetry.CtrWaits, 2)
	telemetry.Observe(nil, telemetry.HistMonitorStallNs, 64)
	if got := m.Counter(telemetry.CtrWaits); got != 3 {
		t.Errorf("enabled hooks recorded %d, want 3", got)
	}
	if got := m.Snapshot().Histograms["monitor_stall_ns"].Count; got != 1 {
		t.Errorf("enabled Observe recorded %d, want 1", got)
	}

	telemetry.Disable()
	telemetry.Inc(nil, telemetry.CtrWaits)
	if got := m.Counter(telemetry.CtrWaits); got != 3 {
		t.Errorf("disabled hook still recorded: %d", got)
	}
	if telemetry.Enabled() {
		t.Error("Disable did not uninstall")
	}
}
