// Package telemetry is the always-on observability layer for the lock
// implementations: per-thread-sharded, cache-line-padded atomic counters
// and log-scale latency histograms cheap enough to leave enabled during
// timed, contended runs.
//
// The paper's entire argument rests on measurement (the Table 1 sync
// counts, the Figure 3 nesting profile, the inflation and contention
// rates that justify the 24-bit encoding), but the characterization
// wrappers in internal/lockstat and internal/locktrace serialize every
// event through one mutex and are therefore restricted to untimed
// passes. This package takes the opposite contract:
//
//   - recording a counter is one atomic add into a shard selected by the
//     acting thread's index, so concurrent threads do not share cache
//     lines on the hot counters;
//   - every hook site is guarded by a single atomic pointer load
//     (Active/Enabled); with telemetry disabled a hook compiles to a
//     load, a compare and a not-taken branch, and allocates nothing;
//   - hooks live only on slow paths (lock slow path, monitor queueing,
//     cache lookups) plus the VM's monitorenter/monitorexit dispatch —
//     the paper's 17-instruction thin-lock fast path is untouched.
//
// The overhead contract is enforced by the benchmarks and allocation
// tests in overhead_test.go.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"

	"thinlock/internal/threading"
)

// Counter enumerates the runtime counters. The order defines the layout
// of a shard and of Snapshot arrays; names are given by Name.
type Counter uint8

const (
	// CtrSlowPathEntries counts thin-lock acquisitions that left the
	// inlined fast path (nested locks, inflated locks, contention).
	CtrSlowPathEntries Counter = iota
	// CtrCASFailures counts compare-and-swap attempts on the lock word
	// that lost a race and had to retry.
	CtrCASFailures
	// CtrInflationsContention counts inflations caused by contention for
	// a thin lock.
	CtrInflationsContention
	// CtrInflationsOverflow counts inflations caused by nested-count
	// overflow.
	CtrInflationsOverflow
	// CtrInflationsWait counts inflations caused by waiting on a
	// thin-locked object.
	CtrInflationsWait
	// CtrDeflations counts fat locks turned back into thin locks.
	CtrDeflations
	// CtrSpinRounds counts individual back-off pauses while spinning on
	// a thin lock held by another thread.
	CtrSpinRounds
	// CtrQueuedParks counts contenders parked on a flat-lock-contention
	// queue (queued-inflation extension).
	CtrQueuedParks
	// CtrFLCWakeups counts owner-side contention-queue wakeups.
	CtrFLCWakeups
	// CtrMonitorContendedEntries counts monitor entries that had to join
	// the entry queue.
	CtrMonitorContendedEntries
	// CtrMonitorHandoffs counts direct ownership handoffs from an
	// exiting owner to the head of the entry queue.
	CtrMonitorHandoffs
	// CtrMonitorRetirements counts monitors retired by the deflation
	// extension.
	CtrMonitorRetirements
	// CtrWaits counts monitor Wait calls.
	CtrWaits
	// CtrWaitTimerWakeups counts waits whose wakeup came from the timer
	// rather than a notification.
	CtrWaitTimerWakeups
	// CtrNotifies counts Notify and NotifyAll calls.
	CtrNotifies
	// CtrVMMonitorEnter counts monitorenter opcodes executed by the
	// bytecode interpreter.
	CtrVMMonitorEnter
	// CtrVMMonitorExit counts monitorexit opcodes executed by the
	// bytecode interpreter.
	CtrVMMonitorExit
	// CtrCacheLookups counts JDK111 monitor-cache consultations.
	CtrCacheLookups
	// CtrCacheMisses counts JDK111 lookups that had to bind a monitor.
	CtrCacheMisses
	// CtrCacheSweeps counts JDK111 free-list refill sweeps.
	CtrCacheSweeps
	// CtrHotOps counts IBM112 operations served through a hot slot.
	CtrHotOps
	// CtrColdOps counts IBM112 operations that went through the cold
	// cache.
	CtrColdOps
	// CtrHotPromotions counts IBM112 objects promoted to hot slots.
	CtrHotPromotions
	// CtrColdSweeps counts IBM112 cold-cache cleanup scans.
	CtrColdSweeps
	// CtrBiasInstalls counts bias reservations installed on previously
	// unlocked objects.
	CtrBiasInstalls
	// CtrBiasedAcquires counts lock acquisitions served by the biased
	// owner fast path (no read-modify-write atomics).
	CtrBiasedAcquires
	// CtrBiasTransfers counts stale-epoch reservations transferred to a
	// new owner without a full revocation.
	CtrBiasTransfers
	// CtrBiasRevocationsContention counts revocations forced by a second
	// thread contending for a biased object.
	CtrBiasRevocationsContention
	// CtrBiasRevocationsWait counts owner self-revocations forced by
	// Wait on a biased object.
	CtrBiasRevocationsWait
	// CtrBiasRevocationsOverflow counts owner self-revocations forced by
	// recursion past the biased depth limit.
	CtrBiasRevocationsOverflow
	// CtrBulkRebiases counts class-epoch bumps (bulk rebias heuristic).
	CtrBulkRebiases
	// CtrBulkRevokes counts classes declared unbiasable (bulk revoke).
	CtrBulkRevokes
	// CtrMonitorFrees counts monitor indices returned to the table's
	// recycler after deflation (compact-monitor extension).
	CtrMonitorFrees
	// CtrMonitorRecycles counts inflations served with a recycled
	// monitor index instead of extending the table.
	CtrMonitorRecycles

	// NumCounters is the number of defined counters.
	NumCounters
)

// counterNames are the stable metric names (snake_case, used as JSON
// keys and, prefixed, as Prometheus metric names).
var counterNames = [NumCounters]string{
	CtrSlowPathEntries:         "slow_path_entries",
	CtrCASFailures:             "cas_failures",
	CtrInflationsContention:    "inflations_contention",
	CtrInflationsOverflow:      "inflations_overflow",
	CtrInflationsWait:          "inflations_wait",
	CtrDeflations:              "deflations",
	CtrSpinRounds:              "spin_rounds",
	CtrQueuedParks:             "queued_parks",
	CtrFLCWakeups:              "flc_wakeups",
	CtrMonitorContendedEntries: "monitor_contended_entries",
	CtrMonitorHandoffs:         "monitor_handoffs",
	CtrMonitorRetirements:      "monitor_retirements",
	CtrWaits:                   "waits",
	CtrWaitTimerWakeups:        "wait_timer_wakeups",
	CtrNotifies:                "notifies",
	CtrVMMonitorEnter:          "vm_monitorenter_ops",
	CtrVMMonitorExit:           "vm_monitorexit_ops",
	CtrCacheLookups:            "cache_lookups",
	CtrCacheMisses:             "cache_misses",
	CtrCacheSweeps:             "cache_sweeps",
	CtrHotOps:                  "hot_ops",
	CtrColdOps:                 "cold_ops",
	CtrHotPromotions:           "hot_promotions",
	CtrColdSweeps:              "cold_sweeps",
	CtrBiasInstalls:            "bias_installs",
	CtrBiasedAcquires:          "biased_acquires",
	CtrBiasTransfers:           "bias_transfers",

	CtrBiasRevocationsContention: "bias_revocations_contention",
	CtrBiasRevocationsWait:       "bias_revocations_wait",
	CtrBiasRevocationsOverflow:   "bias_revocations_overflow",
	CtrBulkRebiases:              "bulk_rebiases",
	CtrBulkRevokes:               "bulk_revokes",
	CtrMonitorFrees:              "monitor_frees",
	CtrMonitorRecycles:           "monitor_recycles",
}

// Name returns the counter's stable metric name.
func (c Counter) Name() string {
	if c >= NumCounters {
		return "unknown"
	}
	return counterNames[c]
}

// Histo enumerates the latency/depth histograms.
type Histo uint8

const (
	// HistAcquireSlowNs is the latency of thin-lock slow-path
	// acquisitions, in nanoseconds.
	HistAcquireSlowNs Histo = iota
	// HistMonitorStallNs is the time a thread spent blocked in a
	// monitor's entry queue, in nanoseconds.
	HistMonitorStallNs
	// HistBiasHandshakeNs is the time a thread stalled in the bias
	// revocation handshake: the owner reconciling against a revocation
	// of its reservation, or a contender waiting out the revocation
	// sentinel.
	HistBiasHandshakeNs
	// HistEntryQueueDepth is the entry-queue depth observed each time a
	// thread joined a monitor's entry queue.
	HistEntryQueueDepth
	// HistHoldNs is the measured lock hold time of sampled contended
	// acquisitions (acquisition to the same thread's next slow-path
	// unlock). It is fed by the lockprof hold measurement, so it only
	// populates while the contention profiler is enabled.
	HistHoldNs

	// NumHistos is the number of defined histograms.
	NumHistos
)

var histoNames = [NumHistos]string{
	HistAcquireSlowNs:   "acquire_slow_ns",
	HistMonitorStallNs:  "monitor_stall_ns",
	HistBiasHandshakeNs: "bias_handshake_ns",
	HistEntryQueueDepth: "entry_queue_depth",
	HistHoldNs:          "hold_ns",
}

// Name returns the histogram's stable metric name.
func (h Histo) Name() string {
	if h >= NumHistos {
		return "unknown"
	}
	return histoNames[h]
}

// NumBuckets is the number of log2-scale histogram buckets. Bucket b
// holds observations v with bits.Len64(v) == b, i.e. bucket 0 holds 0,
// bucket b holds [2^(b-1), 2^b-1]; the last bucket absorbs everything
// larger (~2^46 ns ≈ 20 hours, far beyond any lock stall).
const NumBuckets = 48

// BucketUpperBound returns the inclusive upper bound of bucket b
// (used as the Prometheus `le` label).
func BucketUpperBound(b int) uint64 {
	if b >= NumBuckets-1 {
		return ^uint64(0)
	}
	return 1<<uint(b) - 1
}

// bucketLowerBound returns the inclusive lower bound of bucket b (the
// interpolation anchor for Quantile).
func bucketLowerBound(b int) uint64 {
	if b <= 0 {
		return 0
	}
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return 1 << uint(b-1)
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// shardBits selects the shard count. Thread indices are handed out
// densely from 1, so consecutive threads land in distinct shards.
const shardBits = 6

// NumShards is the number of counter shards.
const NumShards = 1 << shardBits

// shard is one thread-sharded slice of every counter and histogram.
// The trailing pad keeps the next shard's hot counters off this shard's
// last cache line.
type shard struct {
	counters [NumCounters]atomic.Uint64
	buckets  [NumHistos][NumBuckets]atomic.Uint64
	sums     [NumHistos]atomic.Uint64
	_        [64]byte
}

// Telemetry is one set of sharded counters and histograms. The zero
// value is ready to use; instances are safe for concurrent use.
type Telemetry struct {
	shards [NumShards]shard
}

// New returns an empty Telemetry.
func New() *Telemetry { return &Telemetry{} }

// shardFor selects the shard for the acting thread (shard 0 for nil,
// used by hooks that run without a thread in scope).
//
//lockvet:noalloc
func (m *Telemetry) shardFor(t *threading.Thread) *shard {
	if t == nil {
		return &m.shards[0]
	}
	return &m.shards[int(t.Index())&(NumShards-1)]
}

// Inc adds 1 to c in t's shard.
//
//lockvet:noalloc
func (m *Telemetry) Inc(t *threading.Thread, c Counter) {
	m.shardFor(t).counters[c].Add(1)
}

// Add adds n to c in t's shard.
//
//lockvet:noalloc
func (m *Telemetry) Add(t *threading.Thread, c Counter, n uint64) {
	m.shardFor(t).counters[c].Add(n)
}

// Observe records v into histogram h in t's shard. Negative values
// clamp to zero.
//
//lockvet:noalloc
func (m *Telemetry) Observe(t *threading.Thread, h Histo, v int64) {
	s := m.shardFor(t)
	s.buckets[h][bucketOf(v)].Add(1)
	if v > 0 {
		s.sums[h].Add(uint64(v))
	}
}

// Reset zeroes every counter and histogram. Concurrent updates during a
// reset land in whichever side of the sweep reaches their cell.
func (m *Telemetry) Reset() {
	for i := range m.shards {
		s := &m.shards[i]
		for c := range s.counters {
			s.counters[c].Store(0)
		}
		for h := range s.buckets {
			for b := range s.buckets[h] {
				s.buckets[h][b].Store(0)
			}
			s.sums[h].Store(0)
		}
	}
}

// Counter sums c across all shards.
func (m *Telemetry) Counter(c Counter) uint64 {
	var n uint64
	for i := range m.shards {
		n += m.shards[i].counters[c].Load()
	}
	return n
}

// active is the globally installed Telemetry the hook helpers feed.
var active atomic.Pointer[Telemetry]

// base anchors Now; time.Since on a monotonic base compiles to a
// nanotime read and a subtraction, with no allocation.
var base = time.Now()

// Enable installs m as the global hook target (nil disables) and
// returns m.
func Enable(m *Telemetry) *Telemetry {
	active.Store(m)
	return m
}

// Disable uninstalls the global hook target.
func Disable() { active.Store(nil) }

// Active returns the installed Telemetry, or nil when disabled. Hook
// sites that need several recordings (or a timestamp) load it once.
//
//lockvet:noalloc
func Active() *Telemetry { return active.Load() }

// Enabled reports whether a global Telemetry is installed.
//
//lockvet:noalloc
func Enabled() bool { return active.Load() != nil }

// Inc records 1 to c on the installed Telemetry; a no-op (one atomic
// load, one branch, no allocation) when disabled.
//
//lockvet:noalloc
func Inc(t *threading.Thread, c Counter) {
	if m := active.Load(); m != nil {
		m.Inc(t, c)
	}
}

// Add records n to c on the installed Telemetry; no-op when disabled.
//
//lockvet:noalloc
func Add(t *threading.Thread, c Counter, n uint64) {
	if m := active.Load(); m != nil {
		m.Add(t, c, n)
	}
}

// Observe records v into h on the installed Telemetry; no-op when
// disabled.
//
//lockvet:noalloc
func Observe(t *threading.Thread, h Histo, v int64) {
	if m := active.Load(); m != nil {
		m.Observe(t, h, v)
	}
}

// Now returns monotonic nanoseconds since process start, suitable for
// latency observations. It does not allocate.
//
//lockvet:noalloc
func Now() int64 { return int64(time.Since(base)) }
