package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenSnapshot is a hand-built snapshot (not taken from a live
// Telemetry) so the golden file does not churn when new metrics are
// added: it pins the exposition *format* — name prefixing, TYPE lines,
// sorted order, cumulative buckets, interior-empty-bucket elision and
// the +Inf terminal bucket — not the metric roster.
func goldenSnapshot() Snapshot {
	return Snapshot{
		Counters: map[string]uint64{
			"slow_path_entries": 42,
			"cas_failures":      7,
			"inflations_wait":   0,
		},
		Histograms: map[string]HistSnapshot{
			"acquire_slow_ns": {
				Count: 6,
				Sum:   1234,
				// Bucket 1 (le=1): 1 obs; bucket 3 (le=7): 2; bucket 5
				// (le=31): 3; interior empties elided, last bucket is +Inf.
				Buckets: fullBuckets(map[int]uint64{1: 1, 3: 2, 5: 3}),
			},
		},
	}
}

func fullBuckets(nonzero map[int]uint64) []uint64 {
	bs := make([]uint64, NumBuckets)
	for b, n := range nonzero {
		bs[b] = n
	}
	return bs
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenSnapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with go test -run Golden -update ./internal/telemetry/)", err)
	}
	if got != string(want) {
		t.Errorf("prometheus exposition drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"plain.site (file.go:12)", "plain.site (file.go:12)"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"line\nfeed", `line\nfeed`},
		{"all\\three\"here\n", `all\\three\"here\n`},
		// Escaping must be byte-exact and idempotent-unsafe characters
		// only; tabs and UTF-8 pass through untouched.
		{"tab\tandé", "tab\tandé"},
		// A literal backslash-n in the input is two characters and must
		// come out as \\n, not be confused with a newline's \n.
		{`literal\nhere`, `literal\\nhere`},
		{`trailing\`, `trailing\\`},
		{`\\double`, `\\\\double`},
		// The slow path walks bytes; multi-byte runes around (and between)
		// escapes must survive intact — 2-byte, 3-byte and 4-byte forms.
		{"héllo\"wörld\n", "héllo\\\"wörld\\n"},
		{"日本\\語", `日本\\語`},
		{"emoji🔒\"lock", "emoji🔒\\\"lock"},
		{"🧵\n🧵", `🧵\n🧵`},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// The fast path must not copy when nothing needs escaping.
	s := "no-escaping-needed"
	if got := EscapeLabelValue(s); got != s {
		t.Errorf("clean string changed: %q", got)
	}
}
