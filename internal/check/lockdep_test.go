package check

import (
	"math/rand"
	"testing"

	"thinlock/internal/core"
	"thinlock/internal/jcl"
	"thinlock/internal/lockapi/conformance"
	"thinlock/internal/lockdep"
	"thinlock/internal/object"
	"thinlock/internal/threading"
	"thinlock/internal/workloads"
)

// TestLockdepHasNoFalsePositives is the watchdog's soundness gate: with
// lockdep globally enabled, the full conformance suite and differential
// rounds across every registered implementation must complete with zero
// lock-order inversions and zero wait-for cycles. The differential
// generator acquires objects in index order by construction (see
// TestGeneratorDiscipline), so any report here is lockdep inventing a
// deadlock that cannot happen.
//
// Not parallel at top level: it owns the global lockdep registration.
// The inner t.Run groups let their parallel subtests finish before the
// final assertions run (an enclosing Run does not return until its
// parallel descendants complete).
func TestLockdepHasNoFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("certification run; skipped in -short")
	}
	d := lockdep.Enable(lockdep.New(lockdep.Config{}))
	defer lockdep.Disable()

	impls := Implementations()

	t.Run("conformance", func(t *testing.T) {
		for _, name := range ImplementationNames() {
			name := name
			mk := impls[name]
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				conformance.Run(t, mk)
			})
		}
	})

	t.Run("differential", func(t *testing.T) {
		shapes := []struct{ threads, objects, ops int }{
			{2, 1, 12},
			{4, 3, 25},
			{3, 2, 40},
		}
		for _, name := range ImplementationNames() {
			name := name
			mk := impls[name]
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				for r := 0; r < 4; r++ {
					shape := shapes[r%len(shapes)]
					rng := rand.New(rand.NewSource(int64(r)*271 + 31))
					p := Generate(rng, shape.threads, shape.objects, shape.ops)
					if fs := CheckProgram(mk, p, testConfig(int64(r))); len(fs) != 0 {
						t.Fatalf("round %d: %s violated invariants under lockdep:\n  %v", r, name, fs)
					}
				}
			})
		}
	})

	// The churn workload drives the compact extension's whole monitor
	// lifecycle — inflation, deflation, index recycling — under lockdep;
	// its per-generation barriers are deadlock-free by construction, so
	// any inversion or cycle reported here is a false positive from
	// lockdep confusing a recycled monitor index with its previous
	// object.
	t.Run("workload", func(t *testing.T) {
		w, ok := workloads.ByName("churn")
		if !ok {
			t.Fatal("churn workload not registered")
		}
		l := core.New(core.Options{RecycleMonitors: true})
		ctx := jcl.NewContext(l, object.NewHeap())
		reg := threading.NewRegistry()
		th, err := reg.Attach("lockdep-churn")
		if err != nil {
			t.Fatal(err)
		}
		if sum := w.Run(ctx, th, 4); sum == 0 {
			t.Fatal("churn checksum is zero; workload may be degenerate")
		}
		if l.Stats().MonitorRecycles == 0 {
			t.Fatal("churn recycled no monitor index; the lifecycle was not exercised")
		}
	})

	st := d.Stats()
	if st.Inversions != 0 {
		t.Errorf("lockdep reported %d inversions on deadlock-free suites (false positives):", st.Inversions)
		for _, r := range d.Inversions() {
			t.Errorf("\n%v", r)
		}
	}
	if cycles := d.DetectWaitCycles(); len(cycles) != 0 {
		t.Errorf("lockdep reports live wait-for cycles after all suites drained: %v", cycles)
	}
	if st.Events == 0 {
		t.Error("lockdep observed no events — hooks not wired through the checker?")
	}
}
