package check

import (
	"fmt"
	"strings"

	"thinlock/internal/core"
)

// This file is the small-scope exhaustive explorer: a model checker for
// the thin-lock transition table itself. The stress harness (run.go)
// samples schedules of real executions; this explorer instead enumerates
// *every* interleaving of the protocol's atomic actions for tiny
// programs (≤3 threads × ≤4 lock/unlock ops × ≤2 objects) against an
// abstract state machine whose transitions are written with the real
// lock-word encodings of internal/core/lockword.go.
//
// The model is deliberately honest about the paper's central trick: the
// owner's nested locking, nested unlocking and final unlocking are
// *plain stores of a previously loaded value*, not atomic updates. Each
// lock/unlock operation is therefore split into its observable atomic
// actions — the load of the header word, then a compare-and-swap or a
// (possibly stale) store — and the explorer interleaves those actions
// freely across threads. If the locking discipline ("no thread other
// than the owner ever writes the lock word of a thin-locked object",
// §2.3) were unsound anywhere in the transition table, some interleaving
// would store a stale word and the spec invariant would catch the
// corruption. Blocked threads (spinning on a thin lock held by another
// thread, or queued on a fat monitor) are modeled as disabled until the
// state they poll changes, which keeps the state graph finite without
// losing any distinct interleaving.
//
// The spec checked after every transition is the lock-word state-machine
// contract derived from lockword.go (Figure 1 of the paper):
//
//   - mutual exclusion: at most one thread has completed recursion
//     depth > 0 on an object;
//   - a thin word's owner/count must equal exactly the spec depth of
//     that thread (count stores depth−1) with all other depths zero;
//   - an unlocked word implies all depths are zero;
//   - an inflated word must reference an allocated monitor whose
//     owner/count mirror the spec depths;
//   - the UnlkC&S variant's unlock compare-and-swap must never fail
//     (the discipline makes it unneeded — that is the §3.5 claim);
//   - an unlock that errors must come from a thread whose spec depth is
//     zero (ErrIllegalMonitorState exactly when not owned).
//
// Cross-object deadlocks (two threads acquiring two objects in opposite
// orders) are reachable terminal states and are *not* violations: they
// are program bugs, not lock-word bugs, and the stress harness's
// generator excludes them by ordered acquisition.

// Explorer size bounds. These are small-scope limits, not soft caps:
// the explorer enumerates every interleaving within them.
const (
	MaxModelThreads = 3
	MaxModelOps     = 4
	MaxModelObjects = 2
)

// ModelConfig parameterizes the abstract machine.
type ModelConfig struct {
	// Variant selects the implementation alternative; every variant
	// except VariantNOP maps onto the model (the fence-only differences
	// between Standard, Inline, FnCall, MPSync and KernelCAS are
	// invisible under sequentially consistent interleaving semantics,
	// which is exactly why they share one transition table; UnlkC&S
	// additionally asserts its unlock CAS cannot fail).
	Variant core.Variant
	// CountBits narrows the nested-count field as in core.Options;
	// 0 means 8. CountBits=1 reaches count overflow within 3 ops.
	CountBits int
	// OverflowOffByOne plants the same seeded bug as
	// core.Mutations.OverflowOffByOne into the model, so tests can
	// prove the explorer detects a broken transition table.
	OverflowOffByOne bool
}

// mop is one model operation: lock or unlock of one object.
type mop struct {
	lock bool
	obj  int8
}

func (m mop) String() string {
	k := "unlock"
	if m.lock {
		k = "lock"
	}
	return fmt.Sprintf("%s(%d)", k, m.obj)
}

// monState is the abstract fat monitor for one object (allocated at
// most once per object: the model has no deflation, matching the
// paper's protocol where inflation is permanent).
type monState struct {
	exists bool
	owner  int8 // 0 = none, else thread number (1-based)
	count  uint32
}

// thState is one thread's position in the protocol.
type thState struct {
	pc     int8
	phase  int8 // 0 = must load header; 1 = loaded; 2 = contention-inflation pending
	loaded uint32
	spun   bool
	depth  [MaxModelObjects]int8 // spec: completed recursion depth
}

// mstate is a full abstract machine state. It is a comparable value
// type so it can key the visited set directly.
type mstate struct {
	words [MaxModelObjects]uint32
	mons  [MaxModelObjects]monState
	ths   [MaxModelThreads]thState
}

// ExploreStats summarizes an exploration.
type ExploreStats struct {
	Programs    int
	States      int
	Transitions int
	Terminals   int
	// Coverage counts how often each transition kind of the protocol
	// was taken, proving the exploration actually visited the whole
	// transition table rather than vacuously passing.
	Coverage map[string]int
}

// explorer holds one program's exploration context.
type explorer struct {
	progs   [][]mop
	objects int
	mc      ModelConfig
	maxCnt  uint32

	visited map[mstate]struct{}
	stats   *ExploreStats
}

func shifted(t int) uint32 { return uint32(t+1) << core.IndexShift }

// miscFor seeds distinct nonzero misc bits per object, as object.Heap
// does, so the bit tricks are exercised against realistic values.
func miscFor(o int) uint32 { return [MaxModelObjects]uint32{0xA5, 0x5A}[o] }

// exploreProgram exhaustively explores every interleaving of the given
// per-thread programs, returning an error describing the first spec
// violation found (nil if the transition table conforms).
func exploreProgram(progs [][]mop, objects int, mc ModelConfig, stats *ExploreStats) error {
	bits := mc.CountBits
	if bits <= 0 || bits > 8 {
		bits = 8
	}
	e := &explorer{
		progs:   progs,
		objects: objects,
		mc:      mc,
		maxCnt:  uint32(1)<<bits - 1,
		visited: make(map[mstate]struct{}),
		stats:   stats,
	}
	var init mstate
	for o := 0; o < objects; o++ {
		init.words[o] = miscFor(o)
	}
	stats.Programs++
	if err := e.dfs(init, nil); err != nil {
		return fmt.Errorf("variant %v: spec violation\nprogram:\n%s\nschedule:\n  %s",
			mc.Variant, renderProgs(progs), err)
	}
	return nil
}

// renderProgs prints the per-thread programs.
func renderProgs(progs [][]mop) string {
	var b strings.Builder
	for t, ops := range progs {
		fmt.Fprintf(&b, "  t%d:", t+1)
		for _, op := range ops {
			fmt.Fprintf(&b, " %s", op)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// dfs explores all interleavings from s. path carries the transition
// labels taken so a violation can print its schedule.
func (e *explorer) dfs(s mstate, path []string) error {
	if _, ok := e.visited[s]; ok {
		return nil
	}
	e.visited[s] = struct{}{}
	e.stats.States++

	anyEnabled := false
	for t := range e.progs {
		next, kind, enabled, verr := e.step(s, t)
		if !enabled {
			continue
		}
		anyEnabled = true
		e.stats.Transitions++
		e.stats.Coverage[kind]++
		label := fmt.Sprintf("t%d:%s", t+1, kind)
		if verr != nil {
			return fmt.Errorf("%s\n  after: %s\n  at: %s", verr, strings.Join(path, " "), label)
		}
		if err := e.checkState(&next); err != nil {
			return fmt.Errorf("%s\n  after: %s %s", err, strings.Join(path, " "), label)
		}
		if err := e.dfs(next, append(path, label)); err != nil {
			return err
		}
	}
	if !anyEnabled {
		e.stats.Terminals++
	}
	return nil
}

// step computes thread t's single enabled transition from s, if any.
// The transition is deterministic per (state, thread): the only
// nondeterminism in the system is the interleaving choice, which dfs
// enumerates. verr reports protocol-internal assertions (the UnlkC&S
// unlock CAS failing, an unlock error at positive spec depth).
func (e *explorer) step(s mstate, t int) (next mstate, kind string, enabled bool, verr error) {
	th := &s.ths[t]
	prog := e.progs[t]
	if int(th.pc) >= len(prog) {
		return s, "", false, nil
	}
	op := prog[th.pc]
	o := int(op.obj)
	tid := shifted(t)
	complete := func() {
		th.pc++
		th.phase = 0
		th.loaded = 0
		th.spun = false
	}

	// Phase 2: contention-driven inflation pending (we won the CAS after
	// spinning and now publish a fat lock, §2.3.4's locality principle).
	if th.phase == 2 {
		s.mons[o] = monState{exists: true, owner: int8(t + 1), count: 1}
		s.words[o] = core.InflatedWord(uint32(o), s.words[o])
		complete()
		return s, "inflate-contention", true, nil
	}

	// Phase 0: load the header word (one atomic load).
	if th.phase == 0 {
		th.loaded = s.words[o]
		th.phase = 1
		return s, "load", true, nil
	}

	w := th.loaded
	if op.lock {
		switch {
		case core.IsInflated(w):
			m := &s.mons[o]
			switch m.owner {
			case 0:
				m.owner = int8(t + 1)
				m.count = 1
				th.depth[o]++
				complete()
				return s, "fat-enter", true, nil
			case int8(t + 1):
				m.count++
				th.depth[o]++
				complete()
				return s, "fat-reenter", true, nil
			default:
				return s, "", false, nil // queued on the monitor
			}

		case core.IsUnlocked(w):
			// The initial acquisition: the protocol's only CAS.
			if s.words[o] != w {
				th.phase = 0
				return s, "cas-fail", true, nil
			}
			s.words[o] = w | tid
			th.depth[o]++
			if th.spun {
				th.phase = 2 // inflate next (contention was observed)
				return s, "cas-acquire-contended", true, nil
			}
			complete()
			return s, "cas-acquire", true, nil

		case core.ThinOwner(w) == uint16(t+1):
			if cnt := core.ThinCount(w); cnt < e.maxCnt {
				// Nested lock: a plain store of the stale loaded word
				// plus one count unit — the discipline's soundness is
				// exactly what makes this safe, and exactly what the
				// explorer verifies.
				s.words[o] = w + core.CountUnit
				th.depth[o]++
				complete()
				return s, "nested-store", true, nil
			}
			// Count saturated: overflow inflation carrying the full
			// nesting depth into the fat lock.
			locks := e.maxCnt + 2
			if e.mc.OverflowOffByOne {
				locks-- // model-level seeded bug
			}
			s.mons[o] = monState{exists: true, owner: int8(t + 1), count: locks}
			s.words[o] = core.InflatedWord(uint32(o), w)
			th.depth[o]++
			complete()
			return s, "inflate-overflow", true, nil

		default:
			// Thin-locked by another thread: spin. The re-read is
			// enabled only once the word has changed; re-reading an
			// unchanged word reproduces the same state, so eliding it
			// loses no interleavings while keeping the graph finite.
			if s.words[o] == w {
				return s, "", false, nil
			}
			th.phase = 0
			th.spun = true
			return s, "spin-reload", true, nil
		}
	}

	// Unlock.
	switch {
	case core.IsInflated(w):
		m := &s.mons[o]
		if !m.exists {
			return s, "", true, fmt.Errorf("inflated word for obj %d without an allocated monitor", o)
		}
		if m.owner != int8(t+1) {
			if th.depth[o] != 0 {
				verr = fmt.Errorf("t%d got ErrIllegalMonitorState unlocking obj %d at spec depth %d", t+1, o, th.depth[o])
			}
			complete()
			return s, "unlock-err", true, verr
		}
		m.count--
		th.depth[o]--
		if m.count == 0 {
			m.owner = 0
			complete()
			return s, "fat-release", true, nil
		}
		complete()
		return s, "fat-exit", true, nil

	case core.ThinOwner(w) == uint16(t+1):
		if core.ThinCount(w) == 0 {
			// Final release: the paper's plain store (or, for the
			// UnlkC&S variant, a CAS that the discipline guarantees
			// can never fail — asserted here).
			if e.mc.Variant == core.VariantUnlockCAS && s.words[o] != w {
				return s, "unlock-cas", true, fmt.Errorf(
					"UnlkC&S unlock CAS failed: word %#x changed under owner t%d (loaded %#x)",
					s.words[o], t+1, w)
			}
			s.words[o] = w ^ tid
			th.depth[o]--
			complete()
			return s, "final-store", true, nil
		}
		s.words[o] = w - core.CountUnit
		th.depth[o]--
		complete()
		return s, "nested-unlock", true, nil

	default:
		// Unlocked or thin-locked by another thread: error.
		if th.depth[o] != 0 {
			verr = fmt.Errorf("t%d got ErrIllegalMonitorState unlocking obj %d at spec depth %d", t+1, o, th.depth[o])
		}
		complete()
		return s, "unlock-err", true, verr
	}
}

// checkState asserts the lock-word spec at one reachable state.
func (e *explorer) checkState(s *mstate) error {
	for o := 0; o < e.objects; o++ {
		w := s.words[o]
		holders := 0
		holder := -1
		for t := range e.progs {
			if s.ths[t].depth[o] > 0 {
				holders++
				holder = t
			}
		}
		if holders > 1 {
			return fmt.Errorf("mutual exclusion violated on obj %d: %d threads at depth > 0", o, holders)
		}
		switch {
		case core.IsInflated(w):
			m := s.mons[o]
			if !m.exists {
				return fmt.Errorf("obj %d: inflated word %#x but no monitor allocated", o, w)
			}
			switch {
			case m.owner == 0 && holders != 0:
				return fmt.Errorf("obj %d: monitor free but t%d has spec depth %d", o, holder+1, s.ths[holder].depth[o])
			case m.owner != 0:
				if holders != 1 || int(m.owner) != holder+1 {
					return fmt.Errorf("obj %d: monitor owned by t%d but spec holder is t%d", o, m.owner, holder+1)
				}
				if m.count != uint32(s.ths[holder].depth[o]) {
					return fmt.Errorf("obj %d: monitor count %d != spec depth %d of t%d",
						o, m.count, s.ths[holder].depth[o], holder+1)
				}
			}
		case core.IsUnlocked(w):
			if holders != 0 {
				return fmt.Errorf("obj %d: word unlocked (%#x) but t%d has spec depth %d",
					o, w, holder+1, s.ths[holder].depth[o])
			}
			if w&^core.MiscMask != 0 || w != miscFor(o) {
				return fmt.Errorf("obj %d: misc bits corrupted: %#x", o, w)
			}
		default:
			owner := int(core.ThinOwner(w))
			if owner < 1 || owner > len(e.progs) {
				return fmt.Errorf("obj %d: thin word %#x names nonexistent thread %d", o, w, owner)
			}
			if holders != 1 || holder+1 != owner {
				return fmt.Errorf("obj %d: thin word owned by t%d but spec holder is t%d (depth holders=%d)",
					o, owner, holder+1, holders)
			}
			if got, want := core.ThinCount(w)+1, uint32(s.ths[holder].depth[o]); got != want {
				return fmt.Errorf("obj %d: thin count encodes depth %d but spec depth is %d", o, got, want)
			}
			if w&core.MiscMask != miscFor(o) {
				return fmt.Errorf("obj %d: misc bits corrupted: %#x", o, w)
			}
		}
	}
	return nil
}

// ExploreAll enumerates every combination of per-thread programs of
// length 1..maxOps over the given object count (order-insensitive
// across threads, since threads are symmetric) and exhaustively
// explores each, returning aggregate statistics and the first violation
// found.
func ExploreAll(threads, maxOps, objects int, mc ModelConfig) (ExploreStats, error) {
	stats := ExploreStats{Coverage: make(map[string]int)}
	if threads < 1 || threads > MaxModelThreads {
		return stats, fmt.Errorf("check: threads must be 1..%d", MaxModelThreads)
	}
	if maxOps < 1 || maxOps > MaxModelOps {
		return stats, fmt.Errorf("check: maxOps must be 1..%d", MaxModelOps)
	}
	if objects < 1 || objects > MaxModelObjects {
		return stats, fmt.Errorf("check: objects must be 1..%d", MaxModelObjects)
	}
	if mc.Variant == core.VariantNOP {
		return stats, fmt.Errorf("check: VariantNOP removes locking and has no transition table to check")
	}
	seqs := allSeqs(maxOps, objects)
	idx := make([]int, threads)
	progs := make([][]mop, threads)
	var rec func(pos, min int) error
	rec = func(pos, min int) error {
		if pos == threads {
			for i, j := range idx {
				progs[i] = seqs[j]
			}
			return exploreProgram(progs, objects, mc, &stats)
		}
		for j := min; j < len(seqs); j++ {
			idx[pos] = j
			if err := rec(pos+1, j); err != nil {
				return err
			}
		}
		return nil
	}
	err := rec(0, 0)
	return stats, err
}

// allSeqs returns every op sequence of length 1..maxOps over the
// lock/unlock alphabet of the given objects.
func allSeqs(maxOps, objects int) [][]mop {
	var alphabet []mop
	for o := 0; o < objects; o++ {
		alphabet = append(alphabet, mop{true, int8(o)}, mop{false, int8(o)})
	}
	var out [][]mop
	var cur []mop
	var rec func()
	rec = func() {
		if len(cur) > 0 {
			out = append(out, append([]mop(nil), cur...))
		}
		if len(cur) == maxOps {
			return
		}
		for _, a := range alphabet {
			cur = append(cur, a)
			rec()
			cur = cur[:len(cur)-1]
		}
	}
	rec()
	return out
}
