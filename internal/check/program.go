// Package check is the concurrent differential-testing subsystem: it
// generates multi-threaded lock/unlock/wait/notify programs over small
// thread×object sets, executes them under any lockapi.Locker while
// recording per-object event histories, and validates invariants on the
// result: mutual exclusion, balanced nesting, ErrIllegalMonitorState
// agreement with the reference oracle, and monitor-table leak-freedom
// after quiescence. A companion small-scope explorer (explore.go)
// enumerates *all* interleavings of tiny programs against an abstract
// lock-word state machine, so the thin-lock transition table itself is
// model-checked rather than sampled.
//
// The single-threaded differential tests in internal/reference cover the
// easy half of the paper's claim (identical observable behaviour on one
// thread); this package covers the half where lock-word protocols
// actually break: contended inflation, wait/notify handoff and deflation
// races in rare interleavings.
package check

import (
	"fmt"
	"math/rand"
	"strings"
)

// OpKind is one kind of program step.
type OpKind int

const (
	// OpLock acquires the object's monitor (always succeeds).
	OpLock OpKind = iota
	// OpUnlock releases one level (fails when not held).
	OpUnlock
	// OpWait is a short timed wait (fails when not held).
	OpWait
	// OpNotify wakes one waiter (fails when not held).
	OpNotify
	// OpNotifyAll wakes all waiters (fails when not held).
	OpNotifyAll
	// OpWork simulates critical-section (or think-time) work: a short
	// sleep that widens race windows and lengthens hold times.
	OpWork
)

// String returns the op-kind label used in printed schedules.
func (k OpKind) String() string {
	switch k {
	case OpLock:
		return "lock"
	case OpUnlock:
		return "unlock"
	case OpWait:
		return "wait"
	case OpNotify:
		return "notify"
	case OpNotifyAll:
		return "notifyAll"
	case OpWork:
		return "work"
	default:
		return "unknown"
	}
}

// Op is one step of one thread's program.
type Op struct {
	Kind OpKind
	Obj  int // ignored for OpWork
}

// String renders one op.
func (op Op) String() string {
	if op.Kind == OpWork {
		return "work"
	}
	return fmt.Sprintf("%s(%d)", op.Kind, op.Obj)
}

// Program is a deterministic multi-threaded lock program: thread i runs
// Threads[i] in order. Programs produced by Generate are deadlock-free
// by construction (see the generator's discipline), so any run that
// fails to terminate indicates a lost wakeup or a corrupted lock word,
// not a harness artifact.
type Program struct {
	Threads [][]Op
	Objects int
}

// NumOps returns the total operation count.
func (p Program) NumOps() int {
	n := 0
	for _, ops := range p.Threads {
		n += len(ops)
	}
	return n
}

// String renders the program in the form printed for failing schedules.
func (p Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "objects=%d threads=%d\n", p.Objects, len(p.Threads))
	for i, ops := range p.Threads {
		fmt.Fprintf(&b, "  t%d:", i+1)
		for _, op := range ops {
			b.WriteByte(' ')
			b.WriteString(op.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// clone deep-copies the program (the minimizer mutates copies).
func (p Program) clone() Program {
	q := Program{Objects: p.Objects, Threads: make([][]Op, len(p.Threads))}
	for i, ops := range p.Threads {
		q.Threads[i] = append([]Op(nil), ops...)
	}
	return q
}

// Generate produces a random program of the given shape. The generator
// follows a discipline that makes every program deadlock-free while
// still exercising all the interesting transitions:
//
//   - a thread may only acquire an object whose index is >= every object
//     it already holds (ordered acquisition kills lock-order cycles);
//     re-acquiring a held object (nesting) is always allowed, with a
//     bias toward deep nesting so count-overflow inflation is reached;
//   - a thread only waits on an object when it is the only object it
//     holds, so the re-acquisition after the wait cannot participate in
//     a cycle either; waits are short and timed, so a missing notify is
//     a timeout, not a hang;
//   - with small probability the generator emits deliberately illegal
//     operations (unlock/wait/notify of an unheld object), whose
//     ErrIllegalMonitorState outcome every implementation must agree on.
//
// Because legality of each op depends only on the issuing thread's own
// history, the success/error outcome of every operation is schedule
// independent and statically known: see Expected.
func Generate(rng *rand.Rand, threads, objects, opsPerThread int) Program {
	p := Program{Objects: objects, Threads: make([][]Op, threads)}
	for ti := 0; ti < threads; ti++ {
		depth := make([]int, objects)
		var ops []Op
		held := func() (n, only, max int) {
			only, max = -1, -1
			for o, d := range depth {
				if d > 0 {
					n++
					only = o
					max = o
				}
			}
			return
		}
		for len(ops) < opsPerThread {
			nHeld, soleObj, maxObj := held()
			o := rng.Intn(objects)
			switch r := rng.Float64(); {
			case r < 0.40: // acquire
				if nHeld > 0 && rng.Float64() < 0.55 {
					// Bias toward re-acquiring a held object: nesting
					// is what drives the count field toward overflow.
					o = soleObj
					for tries := 0; depth[o] == 0 && tries < 4; tries++ {
						o = rng.Intn(objects)
					}
					if depth[o] == 0 {
						o = maxObj
					}
				} else if o < maxObj {
					o = maxObj // ordered acquisition
				}
				ops = append(ops, Op{OpLock, o})
				depth[o]++
			case r < 0.75: // release (legal when possible)
				if depth[o] == 0 {
					if nHeld > 0 {
						o = maxObj
					} else if rng.Float64() > 0.25 {
						continue // only sometimes emit the illegal unlock
					}
				}
				ops = append(ops, Op{OpUnlock, o})
				if depth[o] > 0 {
					depth[o]--
				}
			case r < 0.83: // wait
				if nHeld == 1 && depth[o] == 0 {
					o = soleObj
				}
				legal := nHeld == 1 && depth[o] > 0
				if !legal && depth[o] > 0 {
					continue // would hold >1 object across the wait
				}
				if legal || rng.Float64() < 0.35 {
					ops = append(ops, Op{OpWait, o})
				}
			case r < 0.95: // notify / notifyAll
				if depth[o] == 0 && nHeld > 0 {
					o = maxObj
				}
				kind := OpNotify
				if rng.Float64() < 0.4 {
					kind = OpNotifyAll
				}
				ops = append(ops, Op{kind, o})
			default:
				ops = append(ops, Op{Kind: OpWork})
			}
		}
		p.Threads[ti] = ops
	}
	return p
}

// Expected computes, per thread and op, whether the op must succeed
// (true) or must return ErrIllegalMonitorState (false), by abstract
// interpretation of each thread's own program. The result is schedule
// independent: Lock always succeeds (it blocks rather than fails), Work
// always succeeds, and the error cases of Unlock/Wait/Notify/NotifyAll
// depend only on the nesting depth the issuing thread has built up,
// which no other thread can alter.
func Expected(p Program) [][]bool {
	exp := make([][]bool, len(p.Threads))
	for ti, ops := range p.Threads {
		depth := make([]int, p.Objects)
		exp[ti] = make([]bool, len(ops))
		for i, op := range ops {
			switch op.Kind {
			case OpLock, OpWork:
				exp[ti][i] = true
				if op.Kind == OpLock {
					depth[op.Obj]++
				}
			case OpUnlock:
				exp[ti][i] = depth[op.Obj] > 0
				if depth[op.Obj] > 0 {
					depth[op.Obj]--
				}
			case OpWait, OpNotify, OpNotifyAll:
				exp[ti][i] = depth[op.Obj] > 0
			}
		}
	}
	return exp
}
