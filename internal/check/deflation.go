package check

// The deflation corpus: hand-written schedules aimed at the monitor
// lifecycle of the compact extension. A deflating final unlock races a
// contender's enter; the stale-index window between a fat header load
// and the monitor-table lookup overlaps the index being freed and
// reused by a second object; waiters pin their monitor; recursive holds
// veto deflation. The generated-program stress (Generate) finds these
// shapes eventually; the corpus makes every run hit them, which is why
// both the certification tests and `lockcheck -mutate deflate-*` start
// here.
//
// Corpus programs lean on timed waits and work ops to open the races,
// so they should run with a short WaitTimeout (~2ms) and WorkDuration
// (~1ms) — see DeflationCorpusConfig.

import "time"

// NamedProgram pairs a checker program with the hazard it targets.
type NamedProgram struct {
	Name string
	P    Program
}

// DeflationCorpusConfig is the Config the deflation corpus is tuned
// for: waits short enough that inflate→deflate cycles churn quickly,
// work ops long enough that a holder dwells while contenders arrive.
func DeflationCorpusConfig(schedule int64, timeout time.Duration) Config {
	return Config{
		Schedule:     schedule,
		Timeout:      timeout,
		WaitTimeout:  2 * time.Millisecond,
		WorkDuration: time.Millisecond,
	}
}

// DeflationCorpus returns the deflation-race programs. Every correct
// implementation must pass all of them under every schedule seed;
// non-deflating implementations pass trivially.
func DeflationCorpus() []NamedProgram {
	return []NamedProgram{
		{
			// Wait-driven inflate/deflate cycles on one object while two
			// threads hammer plain lock/unlock: every final unlock is a
			// deflation candidate racing an enter.
			Name: "deflate-vs-enter",
			P: Program{Objects: 1, Threads: [][]Op{
				{{OpLock, 0}, {OpWait, 0}, {OpUnlock, 0}, {OpLock, 0}, {OpWait, 0}, {OpUnlock, 0}, {OpLock, 0}, {OpWait, 0}, {OpUnlock, 0}},
				{{OpLock, 0}, {OpUnlock, 0}, {OpLock, 0}, {OpUnlock, 0}, {OpLock, 0}, {OpUnlock, 0}, {OpLock, 0}, {OpUnlock, 0}},
				{{Kind: OpWork}, {OpLock, 0}, {Kind: OpWork}, {OpUnlock, 0}, {OpLock, 0}, {OpUnlock, 0}},
			}},
		},
		{
			// The churner deflates object 0 and immediately re-inflates
			// object 1 (reusing the freed index), while dedicated threads
			// hammer each object: a stale index in flight must never
			// resolve to the other object's monitor.
			Name: "reinflate-stale-index",
			P: Program{Objects: 2, Threads: [][]Op{
				{{OpLock, 0}, {OpWait, 0}, {OpUnlock, 0}, {OpLock, 1}, {OpWait, 1}, {OpUnlock, 1}, {OpLock, 0}, {OpWait, 0}, {OpUnlock, 0}, {OpLock, 1}, {OpWait, 1}, {OpUnlock, 1}},
				{{OpLock, 0}, {Kind: OpWork}, {OpUnlock, 0}, {OpLock, 0}, {OpUnlock, 0}, {OpLock, 0}, {OpUnlock, 0}},
				{{OpLock, 1}, {Kind: OpWork}, {OpUnlock, 1}, {OpLock, 1}, {OpUnlock, 1}, {OpLock, 1}, {OpUnlock, 1}},
			}},
		},
		{
			// A heavier cut of the same hazard: four inflate/deflate
			// cycles ping-ponging one table index between two objects
			// while two threads keep re-entering object 0's fat path, so
			// a lookup that dwells on a stale header value lands on the
			// freed-and-reused index. This is the program that kills the
			// DeflateEpochSkip mutation deterministically.
			Name: "stale-index-dwell",
			P:    staleIndexDwell(),
		},
		{
			// A notifier races the waiter's deflating final unlock: the
			// wait set must pin the monitor until the handoff completes.
			Name: "notify-vs-deflate",
			P: Program{Objects: 1, Threads: [][]Op{
				{{OpLock, 0}, {OpWait, 0}, {OpUnlock, 0}, {OpLock, 0}, {OpUnlock, 0}},
				{{OpLock, 0}, {OpNotify, 0}, {OpUnlock, 0}, {OpLock, 0}, {OpNotifyAll, 0}, {OpUnlock, 0}},
			}},
		},
		{
			// Deep recursion inflated mid-hold (the wait at depth 3): the
			// intermediate fat unlocks must not deflate while count > 0,
			// and the final one must, cleanly, under contention.
			Name: "no-deflate-while-nested",
			P: Program{Objects: 1, Threads: [][]Op{
				{{OpLock, 0}, {OpLock, 0}, {OpLock, 0}, {OpWait, 0}, {OpUnlock, 0}, {Kind: OpWork}, {OpUnlock, 0}, {OpUnlock, 0}, {OpLock, 0}, {OpUnlock, 0}},
				{{Kind: OpWork}, {OpLock, 0}, {OpUnlock, 0}, {OpLock, 0}, {OpUnlock, 0}},
			}},
		},
	}
}

func staleIndexDwell() Program {
	var churn []Op
	for i := 0; i < 4; i++ {
		churn = append(churn,
			Op{OpLock, 0}, Op{OpWait, 0}, Op{OpUnlock, 0},
			Op{OpLock, 1}, Op{OpWait, 1}, Op{OpUnlock, 1})
	}
	var hammer []Op
	for i := 0; i < 6; i++ {
		hammer = append(hammer, Op{OpLock, 0}, Op{Kind: OpWork}, Op{OpUnlock, 0})
	}
	return Program{Objects: 2, Threads: [][]Op{churn, hammer, hammer}}
}
