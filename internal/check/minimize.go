package check

// Minimize shrinks a failing program while it keeps failing, so the
// schedule printed for a failure is close to the essential core of the
// bug rather than the 100-op haystack the fuzzer found it in. stillFails
// must re-run the candidate (typically over a handful of schedule seeds,
// comparing the failure kind against the original) and report whether
// it reproduces.
//
// The strategy is a delta-debugging loop over two granularities: whole
// threads first, then exponentially shrinking op chunks within each
// thread, repeated until a full pass removes nothing. Removing ops can
// only make a generated program's remaining ops "more illegal" (every
// removal shrinks the issuing thread's held-set, and expectations are
// recomputed from the shrunk program), so candidates stay well formed;
// removals that would introduce a harness-level hang are rejected by
// stillFails itself, because a hang changes the failure kind.
func Minimize(p Program, stillFails func(Program) bool) Program {
	best := p.clone()
	for changed := true; changed; {
		changed = false

		// Pass 1: drop whole threads.
		for ti := 0; ti < len(best.Threads); ti++ {
			if len(best.Threads) == 1 {
				break
			}
			cand := best.clone()
			cand.Threads = append(cand.Threads[:ti], cand.Threads[ti+1:]...)
			if stillFails(cand) {
				best = cand
				changed = true
				ti--
			}
		}

		// Pass 2: drop chunks of ops, halving the chunk size.
		for ti := range best.Threads {
			for size := len(best.Threads[ti]); size >= 1; size /= 2 {
				for at := 0; at+size <= len(best.Threads[ti]); {
					cand := best.clone()
					ops := cand.Threads[ti]
					cand.Threads[ti] = append(ops[:at:at], ops[at+size:]...)
					if len(cand.Threads[ti]) == 0 && len(cand.Threads) > 1 {
						cand.Threads = append(cand.Threads[:ti], cand.Threads[ti+1:]...)
					}
					if stillFails(cand) && cand.NumOps() < best.NumOps() {
						best = cand
						changed = true
						if len(best.Threads) <= ti {
							break
						}
					} else {
						at += size
					}
				}
				if len(best.Threads) <= ti {
					break
				}
			}
		}
	}

	// Pass 3: drop now-unused objects so the printed program is tight.
	used := make([]bool, best.Objects)
	for _, ops := range best.Threads {
		for _, op := range ops {
			if op.Kind != OpWork {
				used[op.Obj] = true
			}
		}
	}
	remap := make([]int, best.Objects)
	n := 0
	for o, u := range used {
		if u {
			remap[o] = n
			n++
		}
	}
	if n > 0 && n < best.Objects {
		cand := best.clone()
		cand.Objects = n
		for ti := range cand.Threads {
			for i := range cand.Threads[ti] {
				if cand.Threads[ti][i].Kind != OpWork {
					cand.Threads[ti][i].Obj = remap[cand.Threads[ti][i].Obj]
				}
			}
		}
		if stillFails(cand) {
			best = cand
		}
	}
	return best
}

// SameKind reports whether fs contains a failure of kind k; it is the
// usual predicate fed to Minimize so shrinking preserves the failure
// class instead of wandering to an unrelated (possibly harness-induced)
// one.
func SameKind(fs []Failure, k FailureKind) bool {
	for _, f := range fs {
		if f.Kind == k {
			return true
		}
	}
	return false
}
