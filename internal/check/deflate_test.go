package check

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thinlock/internal/core"
	"thinlock/internal/lockapi"
)

// The deflation corpus itself lives in deflation.go (DeflationCorpus),
// shared with `lockcheck -mutate deflate-*`; the tests here certify it
// against the oracle and prove it kills the seeded deflation mutations.

// compactImpls are the deflating configurations the corpus certifies:
// the compact extension itself, and compact over a 2-bit count so
// overflow-driven inflations deflate under recursive holds.
func compactImpls() []func() lockapi.Locker {
	return []func() lockapi.Locker{
		func() lockapi.Locker { return core.New(core.Options{RecycleMonitors: true}) },
		func() lockapi.Locker { return core.New(core.Options{RecycleMonitors: true, CountBits: 2}) },
	}
}

// TestCompactDeflationCorpus runs every deflation corpus program against
// both compact configurations under several schedule seeds, with the
// oracle on: zero divergences allowed.
func TestCompactDeflationCorpus(t *testing.T) {
	t.Parallel()
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for mi, mk := range compactImpls() {
		mi, mk := mi, mk
		t.Run(fmt.Sprintf("impl%d", mi), func(t *testing.T) {
			t.Parallel()
			for _, tc := range DeflationCorpus() {
				for seed := 0; seed < seeds; seed++ {
					cfg := Config{
						Schedule:     int64(seed),
						Timeout:      30 * time.Second,
						WaitTimeout:  2 * time.Millisecond,
						WorkDuration: time.Millisecond,
					}
					if fs := CheckProgram(mk, tc.P, cfg); len(fs) != 0 {
						min := Minimize(tc.P, func(q Program) bool {
							return SameKind(CheckProgram(mk, q, cfg), fs[0].Kind)
						})
						t.Fatalf("%s seed %d: %v\nminimized:\n%s", tc.Name, seed, fs, min)
					}
				}
			}
		})
	}
}

// TestCompactScheduleCertification is the deflation-race acceptance
// gate, mirroring the biased certification: at least ten thousand
// distinct explored schedules across the deflation corpus, against the
// reference oracle, with zero divergences. Schedules are spread over
// both compact configurations with an oversubscribed worker pool;
// -short runs a 1/20 slice.
func TestCompactScheduleCertification(t *testing.T) {
	target := 10_000
	if testing.Short() {
		target = 500
	}
	mks := compactImpls()
	corpus := DeflationCorpus()

	type job struct {
		p    Program
		mk   func() lockapi.Locker
		seed int64
		desc string
	}
	jobs := make(chan job, 64)
	var ran atomic.Int64
	var mu sync.Mutex
	var firstFail string

	// Each run is latency-bound (schedule jitter and wait timeouts, not
	// CPU), so the pool oversubscribes the processors heavily.
	workers := 4 * runtime.GOMAXPROCS(0)
	if workers > 32 {
		workers = 32
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				cfg := Config{
					Schedule:    j.seed,
					Timeout:     30 * time.Second,
					WaitTimeout: time.Millisecond,
				}
				if fs := CheckProgram(j.mk, j.p, cfg); len(fs) != 0 {
					mu.Lock()
					if firstFail == "" {
						firstFail = fmt.Sprintf("%s seed %d: %v\nprogram:\n%s", j.desc, j.seed, fs, j.p)
					}
					mu.Unlock()
				}
				ran.Add(1)
			}
		}()
	}

	seed := int64(0)
	for n := 0; n < target; {
		for ci, tc := range corpus {
			for mi, mk := range mks {
				if n >= target {
					break
				}
				mu.Lock()
				failed := firstFail != ""
				mu.Unlock()
				if failed {
					n = target
					break
				}
				jobs <- job{p: tc.P, mk: mk, seed: seed, desc: fmt.Sprintf("corpus[%d] impl[%d] %s", ci, mi, tc.Name)}
				n++
			}
		}
		seed++
	}
	close(jobs)
	wg.Wait()

	if firstFail != "" {
		t.Fatal(firstFail)
	}
	if got := ran.Load(); got < int64(target) {
		t.Fatalf("explored %d schedules, want ≥ %d", got, target)
	}
	t.Logf("certified %d explored schedules with zero divergences", ran.Load())
}

// corpusProgram fetches a deflation corpus entry by name.
func corpusProgram(t *testing.T, name string) Program {
	t.Helper()
	for _, tc := range DeflationCorpus() {
		if tc.Name == name {
			return tc.P
		}
	}
	t.Fatalf("deflation corpus has no program %q", name)
	return Program{}
}

// TestCheckerCatchesDeflateEpochSkip seeds the missing grace period
// (freed monitor indices recycle immediately, and the fat-lock lookup
// dwells on a stale header value without pinning). The bug needs a
// reader caught between its header load and the monitor lookup while
// the deflater frees the index and a second object's inflation reuses
// it — the corpus's stale-index-dwell program churns wait-driven
// inflate/deflate cycles across two objects while two readers hammer
// object 0, and the test retries schedule seeds. The phantom monitor
// surfaces as a mutual-exclusion violation, an illegal-state error
// (outcome divergence), or a reader stranded on another object's
// monitor (stuck).
func TestCheckerCatchesDeflateEpochSkip(t *testing.T) {
	t.Parallel()
	mutant := func() lockapi.Locker {
		return core.New(core.Options{
			RecycleMonitors: true,
			TestMutations:   core.Mutations{DeflateEpochSkip: true},
		})
	}
	clean := func() lockapi.Locker { return core.New(core.Options{RecycleMonitors: true}) }

	p := corpusProgram(t, "stale-index-dwell")
	cfg := Config{
		Timeout:      5 * time.Second,
		WaitTimeout:  2 * time.Millisecond,
		WorkDuration: time.Millisecond,
		SkipOracle:   true,
	}

	for seed := int64(0); seed < 4; seed++ {
		cfg.Schedule = seed
		if fs := CheckProgram(clean, p, cfg); len(fs) != 0 {
			t.Fatalf("unmutated compact implementation failed (seed %d): %v", seed, fs)
		}
	}

	caught := false
	for seed := int64(0); seed < 30 && !caught; seed++ {
		cfg.Schedule = seed
		fs := CheckProgram(mutant, p, cfg)
		for _, k := range []FailureKind{FailMutex, FailOutcome, FailStuck, FailLeak} {
			if SameKind(fs, k) {
				t.Logf("DeflateEpochSkip caught at seed %d: %v", seed, fs)
				caught = true
				break
			}
		}
	}
	if !caught {
		t.Fatal("checker never reported the seeded DeflateEpochSkip mutation")
	}
}

// TestCheckerCatchesDeflateQueueIgnore seeds the dropped entry queue
// (deflation retires a monitor without checking for queued contenders).
// The program parks a notified waiter on the entry queue while the
// notifier still holds: the notifier's final unlock then deflates over
// the queued thread, which sleeps forever — a stuck schedule. The park
// is timing dependent (the waiter must re-enter while the notifier
// holds), so the notifier holds across two work ops and the test
// retries schedule seeds.
func TestCheckerCatchesDeflateQueueIgnore(t *testing.T) {
	t.Parallel()
	mutant := func() lockapi.Locker {
		return core.New(core.Options{
			RecycleMonitors: true,
			TestMutations:   core.Mutations{DeflateQueueIgnore: true},
		})
	}
	clean := func() lockapi.Locker { return core.New(core.Options{RecycleMonitors: true}) }

	p := Program{
		Objects: 1,
		Threads: [][]Op{
			{{OpLock, 0}, {OpWait, 0}, {OpUnlock, 0}},
			{{Kind: OpWork}, {OpLock, 0}, {OpNotify, 0}, {Kind: OpWork}, {Kind: OpWork}, {OpUnlock, 0}},
		},
	}
	cfg := Config{
		Timeout:      1500 * time.Millisecond,
		WaitTimeout:  50 * time.Millisecond,
		WorkDuration: 5 * time.Millisecond,
		SkipOracle:   true,
	}

	for seed := int64(0); seed < 4; seed++ {
		cfg.Schedule = seed
		if fs := CheckProgram(clean, p, cfg); len(fs) != 0 {
			t.Fatalf("unmutated compact implementation failed (seed %d): %v", seed, fs)
		}
	}

	var caught []Failure
	var seed int64
	for seed = 0; seed < 10; seed++ {
		cfg.Schedule = seed
		if fs := CheckProgram(mutant, p, cfg); SameKind(fs, FailStuck) {
			caught = fs
			break
		}
	}
	if caught == nil {
		t.Fatal("checker never reported the stranded contender as a stuck schedule")
	}
	min := Minimize(p, func(q Program) bool {
		c := cfg
		c.Schedule = seed
		return SameKind(CheckProgram(mutant, q, c), FailStuck)
	})
	t.Logf("DeflateQueueIgnore caught at seed %d: %v\nminimized failing schedule:\n%s",
		seed, caught, min)
}
