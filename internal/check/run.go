package check

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"thinlock/internal/biased"
	"thinlock/internal/core"
	"thinlock/internal/lockapi"
	"thinlock/internal/locktrace"
	"thinlock/internal/object"
	"thinlock/internal/reference"
	"thinlock/internal/threading"
)

// FailureKind classifies a checker finding.
type FailureKind int

const (
	// FailMutex is a mutual-exclusion violation: two threads inside the
	// same object's critical section, or a lost critical-section update.
	FailMutex FailureKind = iota
	// FailOutcome is an op whose success/error outcome diverged from the
	// statically expected one (ErrIllegalMonitorState disagreement).
	FailOutcome
	// FailStuck is a schedule that did not terminate before the
	// watchdog: a deadlock or lost wakeup.
	FailStuck
	// FailHistory is a per-object event-history invariant violation
	// (unbalanced nesting in the recorded trace).
	FailHistory
	// FailLeak is a monitor-table or final-lock-state leak detected
	// after quiescence.
	FailLeak
)

// String returns the failure-kind label.
func (k FailureKind) String() string {
	switch k {
	case FailMutex:
		return "mutual-exclusion"
	case FailOutcome:
		return "outcome-divergence"
	case FailStuck:
		return "stuck-schedule"
	case FailHistory:
		return "history-invariant"
	case FailLeak:
		return "quiescence-leak"
	default:
		return "unknown"
	}
}

// Failure is one invariant violation found by a run.
type Failure struct {
	Kind FailureKind
	Msg  string
}

// String implements fmt.Stringer.
func (f Failure) String() string { return f.Kind.String() + ": " + f.Msg }

// Config tunes one checker run.
type Config struct {
	// Schedule seeds the per-thread jitter injected between operations;
	// runs with the same program and schedule seed perturb thread
	// timing the same way.
	Schedule int64
	// Timeout is the watchdog bound for the whole program (default 20s).
	Timeout time.Duration
	// WaitTimeout is the duration passed to OpWait (default 1ms).
	WaitTimeout time.Duration
	// WorkDuration is the sleep performed by OpWork (default 2ms).
	WorkDuration time.Duration
	// SkipOracle disables the reference-oracle comparison run (used by
	// the oracle's own self-check).
	SkipOracle bool
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 20 * time.Second
	}
	if c.WaitTimeout <= 0 {
		c.WaitTimeout = time.Millisecond
	}
	if c.WorkDuration <= 0 {
		c.WorkDuration = 2 * time.Millisecond
	}
	return c
}

// Result is the observable outcome of executing a program under one
// implementation.
type Result struct {
	// Failures are the invariant violations found (empty = clean run).
	Failures []Failure
	// Outcomes[t][i] reports whether thread t's i-th op succeeded.
	// Valid only when the run was not stuck.
	Outcomes [][]bool
	// Events is the recorded per-object event history.
	Events []locktrace.Event
	// Stuck reports whether the watchdog fired.
	Stuck bool
}

// shadow is the harness's own view of one object's ownership, updated
// only at points where the implementation under test guarantees
// exclusivity. owner is the claiming thread index (0 = free); crit is a
// deliberately non-atomic counter bumped inside the critical section —
// if mutual exclusion is broken, updates are lost (detected by the
// final sum) and `go test -race` flags the write-write race directly.
type shadow struct {
	owner atomic.Int32
	crit  uint64
}

// Run executes p against the implementation built by mk, checking
// invariants as it goes. It is safe to call concurrently with itself
// (each call owns all its state).
func Run(mk func() lockapi.Locker, p Program, cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{Outcomes: make([][]bool, len(p.Threads))}

	tr := locktrace.New(mk(), p.NumOps()*4+256)
	heap := object.NewHeap()
	objs := make([]*object.Object, p.Objects)
	for i := range objs {
		objs[i] = heap.New("chk")
	}
	reg := threading.NewRegistry()
	shadows := make([]shadow, p.Objects)

	var (
		mu       sync.Mutex // guards res.Failures
		locks    atomic.Uint64
		progress = make([]atomic.Int32, len(p.Threads))
		start    = make(chan struct{})
		wg       sync.WaitGroup
	)
	fail := func(kind FailureKind, format string, args ...any) {
		mu.Lock()
		res.Failures = append(res.Failures, Failure{kind, fmt.Sprintf(format, args...)})
		mu.Unlock()
	}

	exp := Expected(p)
	for ti := range p.Threads {
		ti := ti
		th, err := reg.Attach(fmt.Sprintf("chk%d", ti+1))
		if err != nil {
			fail(FailStuck, "attach: %v", err)
			return res
		}
		res.Outcomes[ti] = make([]bool, len(p.Threads[ti]))
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Schedule + int64(ti)*7919))
			tid := int32(th.Index())
			depth := make([]int, p.Objects)
			<-start
			for i, op := range p.Threads[ti] {
				progress[ti].Store(int32(i))
				// Seeded schedule jitter: perturb the interleaving so
				// different Schedule seeds explore different races.
				switch j := rng.Float64(); {
				case j < 0.30:
					runtime.Gosched()
				case j < 0.40:
					time.Sleep(time.Duration(rng.Intn(20)) * time.Microsecond)
				}
				ok := true
				switch op.Kind {
				case OpLock:
					tr.Lock(th, objs[op.Obj])
					locks.Add(1)
					sh := &shadows[op.Obj]
					if depth[op.Obj] == 0 {
						if prev := sh.owner.Swap(tid); prev != 0 {
							fail(FailMutex, "t%d acquired obj %d while t%d was inside (op %d)",
								tid, op.Obj, prev, i)
						}
					} else if cur := sh.owner.Load(); cur != tid {
						fail(FailMutex, "t%d nested-acquired obj %d but shadow owner is t%d (op %d)",
							tid, op.Obj, cur, i)
					}
					sh.crit++ // intentional plain write: exclusivity tripwire
					depth[op.Obj]++
				case OpUnlock:
					if depth[op.Obj] == 1 {
						// Clear the shadow before the implementation
						// releases, so the next owner finds it free.
						shadows[op.Obj].owner.CompareAndSwap(tid, 0)
					}
					err := tr.Unlock(th, objs[op.Obj])
					ok = err == nil
					if ok && depth[op.Obj] > 0 {
						depth[op.Obj]--
					}
				case OpWait:
					legal := depth[op.Obj] > 0
					if legal {
						shadows[op.Obj].owner.CompareAndSwap(tid, 0)
					}
					_, err := tr.Wait(th, objs[op.Obj], cfg.WaitTimeout)
					ok = err == nil
					if legal && ok {
						// The wait re-acquired the monitor before
						// returning; reclaim the shadow.
						if prev := shadows[op.Obj].owner.Swap(tid); prev != 0 {
							fail(FailMutex, "t%d returned from wait on obj %d while t%d was inside (op %d)",
								tid, op.Obj, prev, i)
						}
						shadows[op.Obj].crit++
					}
				case OpNotify:
					ok = tr.Notify(th, objs[op.Obj]) == nil
				case OpNotifyAll:
					ok = tr.NotifyAll(th, objs[op.Obj]) == nil
				case OpWork:
					time.Sleep(cfg.WorkDuration)
				}
				res.Outcomes[ti][i] = ok
				if ok != exp[ti][i] {
					fail(FailOutcome, "t%d op %d (%s): got success=%v, want %v",
						tid, i, op, ok, exp[ti][i])
				}
			}
			progress[ti].Store(int32(len(p.Threads[ti])))
			// Unwind whatever is still held so every clean run ends
			// quiescent; unwind releases must all succeed.
			for o := p.Objects - 1; o >= 0; o-- {
				for depth[o] > 0 {
					if depth[o] == 1 {
						shadows[o].owner.CompareAndSwap(tid, 0)
					}
					if err := tr.Unlock(th, objs[o]); err != nil {
						fail(FailOutcome, "t%d unwind unlock obj %d failed: %v", tid, o, err)
						break
					}
					depth[o]--
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	close(start)
	select {
	case <-done:
	case <-time.After(cfg.Timeout):
		res.Stuck = true
		var where []string
		for ti := range p.Threads {
			i := int(progress[ti].Load())
			if i < len(p.Threads[ti]) {
				where = append(where, fmt.Sprintf("t%d stuck at op %d (%s)", ti+1, i, p.Threads[ti][i]))
			}
		}
		fail(FailStuck, "watchdog after %v: %s", cfg.Timeout, joinOr(where, "all threads past their ops (unwind stuck)"))
		return res // goroutines are abandoned; their state is never read again
	}

	// Quiescence: every critical-section increment must have survived.
	var critTotal uint64
	for i := range shadows {
		if o := shadows[i].owner.Load(); o != 0 {
			fail(FailLeak, "obj %d shadow owner t%d after quiescence", i, o)
		}
		critTotal += shadows[i].crit
	}
	var waits uint64
	for _, e := range tr.Events() {
		if e.Kind == locktrace.EvWait && !e.Failed {
			waits++
		}
	}
	if want := locks.Load() + waits; critTotal != want {
		fail(FailMutex, "lost critical-section updates: crit=%d, want %d (mutual exclusion broken)",
			critTotal, want)
	}

	res.Events = tr.Events()
	for _, f := range checkHistory(res.Events) {
		res.Failures = append(res.Failures, f)
	}
	for _, f := range checkQuiescence(tr.Inner(), objs) {
		res.Failures = append(res.Failures, f)
	}
	return res
}

// checkQuiescence validates that the implementation reached a clean
// final state: no object still locked, no monitor left with an owner or
// occupied queues, and (for thin locks) the monitor table accounts for
// exactly one monitor per inflation. Monitors that deflation retired are
// unreachable from any header but are guaranteed quiescent by
// Monitor.Retire's precondition; a monitor leaked with waiters still
// queued would have held a thread and tripped the watchdog instead.
func checkQuiescence(l lockapi.Locker, objs []*object.Object) []Failure {
	var fs []Failure
	switch impl := l.(type) {
	case *core.ThinLocks:
		for i, o := range objs {
			if m := impl.Monitor(o); m != nil {
				if !m.Quiescent() {
					fs = append(fs, Failure{FailLeak,
						fmt.Sprintf("obj %d monitor not quiescent after run: %v", i, m)})
				}
			} else if hi := impl.HolderIndex(o); hi != 0 {
				fs = append(fs, Failure{FailLeak,
					fmt.Sprintf("obj %d still thin-locked by t%d after run", i, hi)})
			}
		}
		if s := impl.Stats(); uint64(s.FatLocks) != s.Inflations() {
			fs = append(fs, Failure{FailLeak,
				fmt.Sprintf("monitor table holds %d monitors for %d inflations", s.FatLocks, s.Inflations())})
		}
	case *biased.Locker:
		for i, o := range objs {
			if m := impl.Monitor(o); m != nil {
				if !m.Quiescent() {
					fs = append(fs, Failure{FailLeak,
						fmt.Sprintf("obj %d monitor not quiescent after run: %v", i, m)})
				}
			} else if hi := impl.HolderIndex(o); hi != 0 {
				fs = append(fs, Failure{FailLeak,
					fmt.Sprintf("obj %d still thin-locked by t%d after run", i, hi)})
			} else if core.IsBiasRevoking(o.Header()) {
				fs = append(fs, Failure{FailLeak,
					fmt.Sprintf("obj %d stuck in revocation sentinel after run", i)})
			}
			// A plain biased header is fine: an unheld reservation is not
			// a lock, and a held one would have tripped the shadow-owner
			// check above.
		}
		if s := impl.Stats(); uint64(s.FatLocks) != s.Inflations() {
			fs = append(fs, Failure{FailLeak,
				fmt.Sprintf("monitor table holds %d monitors for %d inflations", s.FatLocks, s.Inflations())})
		}
	case *reference.Locker:
		for i, o := range objs {
			if impl.Owner(o) != 0 || impl.Count(o) != 0 {
				fs = append(fs, Failure{FailLeak,
					fmt.Sprintf("obj %d oracle state owner=%d count=%d after run", i, impl.Owner(o), impl.Count(o))})
			}
		}
	}
	return fs
}

// joinOr renders ss separated by "; ", or fallback when empty.
func joinOr(ss []string, fallback string) string {
	if len(ss) == 0 {
		return fallback
	}
	out := ss[0]
	for _, s := range ss[1:] {
		out += "; " + s
	}
	return out
}

// CheckProgram runs p under the implementation built by mk and, unless
// disabled, under the reference oracle, and returns every invariant
// violation found, including any op whose outcome disagrees between the
// implementation and the oracle.
func CheckProgram(mk func() lockapi.Locker, p Program, cfg Config) []Failure {
	res := Run(mk, p, cfg)
	fs := res.Failures
	if res.Stuck || cfg.SkipOracle {
		return fs
	}
	oracle := Run(func() lockapi.Locker { return reference.New() }, p, Config{
		Schedule:     cfg.Schedule,
		Timeout:      cfg.Timeout,
		WaitTimeout:  cfg.WaitTimeout,
		WorkDuration: cfg.WorkDuration,
	})
	if oracle.Stuck {
		fs = append(fs, Failure{FailStuck, "reference oracle run stuck (harness bug?)"})
		return fs
	}
	for ti := range p.Threads {
		for i := range p.Threads[ti] {
			if res.Outcomes[ti][i] != oracle.Outcomes[ti][i] {
				fs = append(fs, Failure{FailOutcome,
					fmt.Sprintf("t%d op %d (%s): implementation success=%v, oracle success=%v",
						ti+1, i, p.Threads[ti][i], res.Outcomes[ti][i], oracle.Outcomes[ti][i])})
			}
		}
	}
	return fs
}
