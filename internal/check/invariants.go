package check

import (
	"fmt"

	"thinlock/internal/locktrace"
)

// checkHistory validates per-object event-history invariants on a
// recorded trace. Events of one thread appear in program order (each
// thread records its own operations sequentially), so per-(thread,
// object) nesting balance is well defined even though events of
// different threads interleave arbitrarily in the global sequence:
//
//   - a thread's successful releases never outnumber its successful
//     acquires on any object at any prefix of its history (depth never
//     goes negative);
//   - after the run (which unwinds all held locks) every thread's
//     depth on every object is back to zero;
//   - a successful wait must happen at positive depth: the thread must
//     have an acquire in its past that is not yet matched by a release.
func checkHistory(events []locktrace.Event) []Failure {
	var fs []Failure
	type key struct {
		thread uint16
		obj    uint64
	}
	depth := make(map[key]int)
	for _, e := range events {
		if e.Failed {
			continue
		}
		k := key{e.Thread, e.Object}
		switch e.Kind {
		case locktrace.EvAcquire:
			depth[k]++
		case locktrace.EvRelease:
			depth[k]--
			if depth[k] < 0 {
				fs = append(fs, Failure{FailHistory,
					fmt.Sprintf("history: t%d released %s#%d more often than acquired (event #%d)",
						e.Thread, e.Class, e.Object, e.Seq)})
				depth[k] = 0
			}
		case locktrace.EvWait:
			if depth[k] <= 0 {
				fs = append(fs, Failure{FailHistory,
					fmt.Sprintf("history: t%d completed wait on %s#%d at depth 0 (event #%d)",
						e.Thread, e.Class, e.Object, e.Seq)})
			}
		}
	}
	for k, d := range depth {
		if d != 0 {
			fs = append(fs, Failure{FailHistory,
				fmt.Sprintf("history: t%d ended with depth %d on obj#%d", k.thread, d, k.obj)})
		}
	}
	return fs
}
