package check

import (
	"math/rand"
	"testing"
	"time"

	"thinlock/internal/core"
	"thinlock/internal/locktrace"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// testConfig is the schedule configuration the differential tests run
// under: short waits and work keep wall-clock time down without
// shrinking the race windows to nothing.
func testConfig(seed int64) Config {
	return Config{
		Schedule:     seed,
		Timeout:      30 * time.Second,
		WaitTimeout:  2 * time.Millisecond,
		WorkDuration: time.Millisecond,
	}
}

// TestGeneratorDiscipline replays the generator's own legality argument
// against its output: deadlock freedom rests on ordered acquisition and
// on waits happening only while a single object is held, so violating
// either would invalidate every other test in this package.
func TestGeneratorDiscipline(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := Generate(rng, 4, 3, 40)
		if got := len(p.Threads); got != 4 {
			t.Fatalf("seed %d: %d threads, want 4", seed, got)
		}
		for ti, ops := range p.Threads {
			if len(ops) != 40 {
				t.Fatalf("seed %d: t%d has %d ops, want 40", seed, ti+1, len(ops))
			}
			depth := make([]int, p.Objects)
			for i, op := range ops {
				held, maxHeld := 0, -1
				for o, d := range depth {
					if d > 0 {
						held++
						maxHeld = o
					}
				}
				switch op.Kind {
				case OpLock:
					if depth[op.Obj] == 0 && op.Obj < maxHeld {
						t.Fatalf("seed %d: t%d op %d acquires obj %d below held obj %d (unordered acquisition)",
							seed, ti+1, i, op.Obj, maxHeld)
					}
					depth[op.Obj]++
				case OpUnlock:
					if depth[op.Obj] > 0 {
						depth[op.Obj]--
					}
				case OpWait:
					if depth[op.Obj] > 0 && held != 1 {
						t.Fatalf("seed %d: t%d op %d waits on obj %d while holding %d objects",
							seed, ti+1, i, op.Obj, held)
					}
				}
			}
		}
	}
}

// TestExpected pins the static outcome computation on a handcrafted
// program covering every op kind's legal and illegal form.
func TestExpected(t *testing.T) {
	t.Parallel()
	p := Program{
		Objects: 2,
		Threads: [][]Op{
			{
				{OpUnlock, 0},     // illegal: nothing held
				{OpLock, 0},       // ok
				{OpLock, 0},       // ok (nested)
				{OpWait, 1},       // illegal: obj 1 not held
				{OpWait, 0},       // ok
				{OpNotify, 0},     // ok
				{OpNotifyAll, 1},  // illegal
				{OpUnlock, 0},     // ok
				{OpUnlock, 0},     // ok (final)
				{OpNotify, 0},     // illegal: released
				{Kind: OpWork},    // ok
			},
		},
	}
	want := []bool{false, true, true, false, true, true, false, true, true, false, true}
	got := Expected(p)[0]
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("op %d (%s): Expected = %v, want %v", i, p.Threads[0][i], got[i], want[i])
		}
	}
}

// TestDifferentialAllImplementations is the tentpole stress test: every
// registered implementation runs the same generated programs, under
// varied shapes (wide, deeply nested, high-contention single object),
// and must produce zero invariant violations and oracle-identical
// outcomes. A failure minimizes the program before reporting so the log
// carries an actionable schedule.
func TestDifferentialAllImplementations(t *testing.T) {
	shapes := []struct{ threads, objects, ops int }{
		{2, 1, 12},
		{4, 3, 25},
		{6, 1, 30},
		{3, 2, 40},
	}
	rounds := 8
	if testing.Short() {
		rounds = 3
	}
	impls := Implementations()
	for _, name := range ImplementationNames() {
		name := name
		mk := impls[name]
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for r := 0; r < rounds; r++ {
				shape := shapes[r%len(shapes)]
				rng := rand.New(rand.NewSource(int64(r)*1000 + 17))
				p := Generate(rng, shape.threads, shape.objects, shape.ops)
				cfg := testConfig(int64(r))
				fs := CheckProgram(mk, p, cfg)
				if len(fs) == 0 {
					continue
				}
				min := Minimize(p, func(q Program) bool {
					return SameKind(CheckProgram(mk, q, cfg), fs[0].Kind)
				})
				t.Fatalf("round %d: %s violated invariants:\n  %v\nprogram:\n%sminimized:\n%s",
					r, name, fs, p, min)
			}
		})
	}
}

// TestMinimizeShrinksToEssentialOp drives the minimizer with a synthetic
// failure predicate (the program contains unlock(1)) and checks it
// shrinks a 3-thread, multi-op program down to that single op.
func TestMinimizeShrinksToEssentialOp(t *testing.T) {
	t.Parallel()
	p := Program{
		Objects: 2,
		Threads: [][]Op{
			{{OpLock, 0}, {OpLock, 0}, {OpUnlock, 0}, {OpUnlock, 0}, {Kind: OpWork}},
			{{OpLock, 1}, {OpUnlock, 1}, {OpNotify, 0}, {OpWait, 1}},
			{{OpUnlock, 1}, {OpLock, 0}, {OpUnlock, 0}},
		},
	}
	hasEssential := func(q Program) bool {
		for _, ops := range q.Threads {
			for _, op := range ops {
				if op.Kind == OpUnlock && op.Obj == 1 {
					return true
				}
			}
		}
		return false
	}
	min := Minimize(p, hasEssential)
	if min.NumOps() != 1 || !hasEssential(min) {
		t.Fatalf("Minimize left %d ops (want 1 essential op):\n%s", min.NumOps(), min)
	}
}

// TestCheckHistory pins the trace-invariant checker on synthetic event
// sequences: over-release, wait at depth zero, and a clean balanced run.
func TestCheckHistory(t *testing.T) {
	t.Parallel()
	over := []locktrace.Event{
		{Seq: 1, Kind: locktrace.EvAcquire, Thread: 1, Object: 7},
		{Seq: 2, Kind: locktrace.EvRelease, Thread: 1, Object: 7},
		{Seq: 3, Kind: locktrace.EvRelease, Thread: 1, Object: 7},
	}
	if fs := checkHistory(over); !SameKind(fs, FailHistory) {
		t.Errorf("over-release not flagged: %v", fs)
	}
	waitAtZero := []locktrace.Event{
		{Seq: 1, Kind: locktrace.EvWait, Thread: 2, Object: 9},
	}
	if fs := checkHistory(waitAtZero); !SameKind(fs, FailHistory) {
		t.Errorf("wait at depth zero not flagged: %v", fs)
	}
	clean := []locktrace.Event{
		{Seq: 1, Kind: locktrace.EvAcquire, Thread: 1, Object: 7},
		{Seq: 2, Kind: locktrace.EvAcquire, Thread: 1, Object: 7},
		{Seq: 3, Kind: locktrace.EvWait, Thread: 1, Object: 7},
		{Seq: 4, Kind: locktrace.EvRelease, Thread: 1, Object: 7},
		{Seq: 5, Kind: locktrace.EvRelease, Thread: 1, Object: 7},
		{Seq: 6, Kind: locktrace.EvRelease, Thread: 1, Object: 7, Failed: true},
	}
	if fs := checkHistory(clean); len(fs) != 0 {
		t.Errorf("clean history flagged: %v", fs)
	}
}

// TestQuiescenceDetectsHeldLock proves the leak checker has teeth: an
// object left thin-locked after a run must be reported.
func TestQuiescenceDetectsHeldLock(t *testing.T) {
	t.Parallel()
	impl := core.NewDefault()
	reg := threading.NewRegistry()
	th, err := reg.Attach("leaky")
	if err != nil {
		t.Fatal(err)
	}
	heap := object.NewHeap()
	held, free := heap.New("chk"), heap.New("chk")
	impl.Lock(th, held)
	fs := checkQuiescence(impl, []*object.Object{held, free})
	if !SameKind(fs, FailLeak) {
		t.Fatalf("held lock not reported as leak: %v", fs)
	}
	if err := impl.Unlock(th, held); err != nil {
		t.Fatal(err)
	}
	if fs := checkQuiescence(impl, []*object.Object{held, free}); len(fs) != 0 {
		t.Fatalf("quiescent state flagged: %v", fs)
	}
}
