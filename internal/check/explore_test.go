package check

import (
	"testing"

	"thinlock/internal/core"
)

// modelVariants is every implementation variant with a transition table
// (all of core's variants except VariantNOP, which removes locking).
var modelVariants = []core.Variant{
	core.VariantStandard,
	core.VariantInline,
	core.VariantFnCall,
	core.VariantMPSync,
	core.VariantKernelCAS,
	core.VariantUnlockCAS,
}

// TestExploreAllVariantsConform is the acceptance run: for every variant
// with a transition table, exhaustively explore all interleavings of all
// 2-thread programs of up to 3 lock/unlock ops on one object, and assert
// the lock-word spec at every reachable state. The coverage assertion
// proves the exploration actually drove the whole protocol — a model
// that silently never inflates would pass vacuously otherwise.
func TestExploreAllVariantsConform(t *testing.T) {
	// With one object the op alphabet is {lock(0), unlock(0)}, so there
	// are 2+4+8 = 14 sequences of length 1..3 and C(14+1,2) = 105
	// unordered program pairs.
	const wantPrograms = 105
	mustCover := []string{
		"load", "cas-acquire", "cas-fail", "spin-reload",
		"cas-acquire-contended", "inflate-contention",
		"nested-store", "nested-unlock", "final-store", "unlock-err",
		"fat-enter", "fat-reenter", "fat-exit", "fat-release",
	}
	for _, v := range modelVariants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			stats, err := ExploreAll(2, 3, 1, ModelConfig{Variant: v})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Programs != wantPrograms {
				t.Errorf("explored %d programs, want %d", stats.Programs, wantPrograms)
			}
			if stats.States == 0 || stats.Transitions < stats.States {
				t.Errorf("implausible exploration: %d states, %d transitions",
					stats.States, stats.Transitions)
			}
			for _, k := range mustCover {
				if stats.Coverage[k] == 0 {
					t.Errorf("transition %q never exercised", k)
				}
			}
			t.Logf("%s: %d programs, %d states, %d transitions, %d terminals",
				v, stats.Programs, stats.States, stats.Transitions, stats.Terminals)
		})
	}
}

// TestExploreOverflowInflation narrows the count field to one bit so the
// 257-locks overflow path (§2.3.3) is reachable within three ops, and
// checks it for the standard variant and for UnlkC&S (whose unlock CAS
// must also survive the post-overflow states).
func TestExploreOverflowInflation(t *testing.T) {
	t.Parallel()
	for _, v := range []core.Variant{core.VariantStandard, core.VariantUnlockCAS} {
		stats, err := ExploreAll(2, 3, 1, ModelConfig{Variant: v, CountBits: 1})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Coverage["inflate-overflow"] == 0 {
			t.Errorf("%s: overflow inflation never exercised with a 1-bit count", v)
		}
	}
}

// TestExploreThreeThreads runs the widest configuration: all unordered
// triples of 1..2-op sequences, so three-way CAS races and fat-monitor
// queueing with two blocked entrants are enumerated.
func TestExploreThreeThreads(t *testing.T) {
	t.Parallel()
	// 6 sequences of length 1..2 over one object; C(6+2,3) = 56
	// unordered triples.
	stats, err := ExploreAll(3, 2, 1, ModelConfig{Variant: core.VariantStandard})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Programs != 56 {
		t.Errorf("explored %d programs, want 56", stats.Programs)
	}
	if stats.Coverage["cas-fail"] == 0 || stats.Coverage["fat-enter"] == 0 {
		t.Errorf("three-thread races under-explored: coverage %v", stats.Coverage)
	}
}

// TestExploreTwoObjects checks cross-object independence, including
// programs that deadlock by acquiring the two objects in opposite
// orders: a deadlock is a reachable terminal state of a buggy *program*,
// not a spec violation of the *lock words*, and must be traversed
// without tripping the checker.
func TestExploreTwoObjects(t *testing.T) {
	t.Parallel()
	// 20 sequences of length 1..2 over two objects; C(20+1,2) = 210
	// unordered pairs, including {[L0 L1], [L1 L0]}.
	stats, err := ExploreAll(2, 2, 2, ModelConfig{Variant: core.VariantStandard})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Programs != 210 {
		t.Errorf("explored %d programs, want 210", stats.Programs)
	}
	if stats.Terminals == 0 {
		t.Error("no terminal states reached")
	}
}

// TestExploreCatchesSeededModelMutation proves the explorer has teeth:
// planting the overflow off-by-one into the model's transition table
// must produce a spec violation (monitor count disagreeing with the
// spec depth at the moment of overflow inflation).
func TestExploreCatchesSeededModelMutation(t *testing.T) {
	t.Parallel()
	_, err := ExploreAll(1, 3, 1, ModelConfig{
		Variant:          core.VariantStandard,
		CountBits:        1,
		OverflowOffByOne: true,
	})
	if err == nil {
		t.Fatal("explorer accepted a transition table with the overflow off-by-one seeded")
	}
	t.Logf("explorer caught the seeded model mutation:\n%v", err)
}

// TestExploreRejectsNOP: the no-op variant removes locking entirely and
// has no transition table to conform to.
func TestExploreRejectsNOP(t *testing.T) {
	t.Parallel()
	if _, err := ExploreAll(2, 2, 1, ModelConfig{Variant: core.VariantNOP}); err == nil {
		t.Fatal("VariantNOP accepted")
	}
}
