package check

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thinlock/internal/biased"
	"thinlock/internal/lockapi"
)

// revocationPrograms is the corpus of hand-written schedules that aim
// interleavings straight at the revocation protocol: a contender
// arriving while a reservation is held, wait-driven self-revocation
// racing a revoker, and multi-object churn that drives the bulk-rebias
// transfer path. The generated-program stress test finds these shapes
// eventually; the corpus makes every run hit them.
func revocationPrograms() []struct {
	name string
	p    Program
} {
	return []struct {
		name string
		p    Program
	}{
		{
			// The reserver holds across work ops while a second thread
			// revokes mid-hold; the walked word must carry the exact
			// depth, then hand over.
			name: "revoke-held-reservation",
			p: Program{Objects: 1, Threads: [][]Op{
				{{OpLock, 0}, {OpLock, 0}, {Kind: OpWork}, {OpUnlock, 0}, {Kind: OpWork}, {OpUnlock, 0}, {OpLock, 0}, {OpUnlock, 0}},
				{{Kind: OpWork}, {OpLock, 0}, {OpUnlock, 0}, {OpLock, 0}, {OpUnlock, 0}},
			}},
		},
		{
			// Wait forces the owner's self-revocation to a fat lock while
			// a second thread contends and notifies: the revoke-for-wait
			// and revoke-for-contention paths race on one object.
			name: "wait-revoke-races-contender",
			p: Program{Objects: 1, Threads: [][]Op{
				{{OpLock, 0}, {OpWait, 0}, {OpUnlock, 0}, {OpLock, 0}, {OpUnlock, 0}},
				{{OpLock, 0}, {OpNotify, 0}, {OpUnlock, 0}, {OpLock, 0}, {OpNotifyAll, 0}, {OpUnlock, 0}},
			}},
		},
		{
			// Owner churn across two objects of one class: revocation
			// after revocation bumps the class epoch, so later contenders
			// exercise stale-reservation transfer instead of plain
			// revocation (under the default rebiasing configuration).
			name: "class-churn-rebias",
			p: Program{Objects: 2, Threads: [][]Op{
				{{OpLock, 0}, {OpUnlock, 0}, {OpLock, 1}, {OpUnlock, 1}, {OpLock, 0}, {OpUnlock, 0}},
				{{OpLock, 1}, {OpUnlock, 1}, {OpLock, 0}, {OpUnlock, 0}, {OpLock, 1}, {OpUnlock, 1}},
				{{Kind: OpWork}, {OpLock, 0}, {OpLock, 0}, {OpUnlock, 0}, {OpUnlock, 0}, {OpLock, 1}, {OpUnlock, 1}},
			}},
		},
		{
			// Deep nesting while a second thread's wait inflates the same
			// object: nested reacquires race the wait-driven revocation.
			name: "deep-nesting-vs-wait",
			p:    deepNestingProgram(10),
		},
	}
}

// deepNestingProgram nests one thread depth levels deep on an object a
// second thread waits on and notifies.
func deepNestingProgram(depth int) Program {
	var deep []Op
	for i := 0; i < depth; i++ {
		deep = append(deep, Op{OpLock, 0})
	}
	deep = append(deep, Op{Kind: OpWork}, Op{OpNotify, 0})
	for i := 0; i < depth; i++ {
		deep = append(deep, Op{OpUnlock, 0})
	}
	return Program{Objects: 1, Threads: [][]Op{
		deep,
		{{Kind: OpWork}, {OpLock, 0}, {OpWait, 0}, {OpUnlock, 0}},
	}}
}

// TestBiasedRevocationCorpus runs every corpus program against both
// biased configurations under several schedule seeds, with the oracle
// on: zero divergences allowed.
func TestBiasedRevocationCorpus(t *testing.T) {
	impls := map[string]func() lockapi.Locker{
		"Biased":          func() lockapi.Locker { return biased.NewDefault() },
		"Biased-norebias": func() lockapi.Locker { return biased.New(biased.Options{DisableRebias: true}) },
		// Aggressive thresholds reach bulk rebias and bulk revoke within
		// the corpus's handful of revocations.
		"Biased-hair-trigger": func() lockapi.Locker {
			return biased.New(biased.Options{EpochBits: 1, RebiasThreshold: 1, RevokeThreshold: 2})
		},
	}
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for name, mk := range impls {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, tc := range revocationPrograms() {
				for seed := 0; seed < seeds; seed++ {
					cfg := Config{
						Schedule:     int64(seed),
						Timeout:      30 * time.Second,
						WaitTimeout:  2 * time.Millisecond,
						WorkDuration: time.Millisecond,
					}
					if fs := CheckProgram(mk, tc.p, cfg); len(fs) != 0 {
						min := Minimize(tc.p, func(q Program) bool {
							return SameKind(CheckProgram(mk, q, cfg), fs[0].Kind)
						})
						t.Fatalf("%s seed %d: %v\nminimized:\n%s", tc.name, seed, fs, min)
					}
				}
			}
		})
	}
}

// TestBiasedScheduleCertification is the acceptance gate: at least ten
// thousand distinct explored schedules across the revocation corpus and
// generated programs, against the reference oracle, with zero
// divergences. Schedules are spread over both biased configurations and
// run with an aggressive worker pool to keep wall-clock bounded; -short
// runs a 1/20 slice.
func TestBiasedScheduleCertification(t *testing.T) {
	target := 10_000
	if testing.Short() {
		target = 500
	}
	mks := []func() lockapi.Locker{
		func() lockapi.Locker { return biased.NewDefault() },
		func() lockapi.Locker { return biased.New(biased.Options{DisableRebias: true}) },
	}
	corpus := revocationPrograms()

	type job struct {
		p    Program
		mk   func() lockapi.Locker
		seed int64
		desc string
	}
	jobs := make(chan job, 64)
	var ran atomic.Int64
	var mu sync.Mutex
	var firstFail string

	// Each run is latency-bound (schedule jitter and wait timeouts, not
	// CPU), so the pool oversubscribes the processors heavily.
	workers := 4 * runtime.GOMAXPROCS(0)
	if workers > 32 {
		workers = 32
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				cfg := Config{
					Schedule:    j.seed,
					Timeout:     30 * time.Second,
					WaitTimeout: time.Millisecond,
				}
				if fs := CheckProgram(j.mk, j.p, cfg); len(fs) != 0 {
					mu.Lock()
					if firstFail == "" {
						firstFail = fmt.Sprintf("%s seed %d: %v\nprogram:\n%s", j.desc, j.seed, fs, j.p)
					}
					mu.Unlock()
				}
				ran.Add(1)
			}
		}()
	}

	seed := int64(0)
	for n := 0; n < target; {
		for ci, tc := range corpus {
			for mi, mk := range mks {
				if n >= target {
					break
				}
				mu.Lock()
				failed := firstFail != ""
				mu.Unlock()
				if failed {
					n = target
					break
				}
				jobs <- job{p: tc.p, mk: mk, seed: seed, desc: fmt.Sprintf("corpus[%d] impl[%d] %s", ci, mi, tc.name)}
				n++
			}
		}
		seed++
	}
	close(jobs)
	wg.Wait()

	if firstFail != "" {
		t.Fatal(firstFail)
	}
	if got := ran.Load(); got < int64(target) {
		t.Fatalf("explored %d schedules, want ≥ %d", got, target)
	}
	t.Logf("certified %d explored schedules with zero divergences", ran.Load())
}

// TestCheckerCatchesRevokeOffByOne seeds the revocation walker's
// depth/count conversion bug (the walked thin word carries one phantom
// recursion level) and proves the differential checker reports it. The
// divergence needs a revocation to happen while the reserver still has
// unlocks left, so the reserver holds across work ops and the test
// retries schedule seeds; the bug surfaces as an outcome divergence (an
// unlock that must be illegal succeeds against the phantom level) or as
// the contender stuck behind a phantom holder.
func TestCheckerCatchesRevokeOffByOne(t *testing.T) {
	t.Parallel()
	mutant := func() lockapi.Locker {
		return biased.New(biased.Options{
			DisableRebias: true,
			TestMutations: biased.Mutations{RevokeOffByOne: true},
		})
	}
	clean := func() lockapi.Locker { return biased.New(biased.Options{DisableRebias: true}) }

	p := Program{
		Objects: 1,
		Threads: [][]Op{
			{{OpLock, 0}, {Kind: OpWork}, {Kind: OpWork}, {OpUnlock, 0}, {OpUnlock, 0}},
			{{Kind: OpWork}, {OpLock, 0}, {OpUnlock, 0}},
		},
	}
	cfg := Config{
		Timeout:      1500 * time.Millisecond,
		WorkDuration: 5 * time.Millisecond,
		SkipOracle:   true,
	}

	for seed := int64(0); seed < 4; seed++ {
		cfg.Schedule = seed
		if fs := CheckProgram(clean, p, cfg); len(fs) != 0 {
			t.Fatalf("unmutated biased implementation failed (seed %d): %v", seed, fs)
		}
	}

	var caught []Failure
	var seed int64
	for seed = 0; seed < 10; seed++ {
		cfg.Schedule = seed
		fs := CheckProgram(mutant, p, cfg)
		if SameKind(fs, FailOutcome) || SameKind(fs, FailStuck) {
			caught = fs
			break
		}
	}
	if caught == nil {
		t.Fatal("checker never reported the seeded RevokeOffByOne mutation")
	}
	min := Minimize(p, func(q Program) bool {
		c := cfg
		c.Schedule = seed
		fs := CheckProgram(mutant, q, c)
		return SameKind(fs, FailOutcome) || SameKind(fs, FailStuck)
	})
	t.Logf("RevokeOffByOne caught at seed %d: %v\nminimized failing schedule:\n%s", seed, caught, min)
}

// TestCheckerCatchesSkipOwnerValidation seeds the broken Dekker
// handshake (the owner's fast path trusts its bias slot without
// re-validating the header) and proves the checker reports it. An owner
// that keeps operating through a revoked reservation updates only its
// private slot, so its releases never reach the shared word: the
// contender spins forever behind the walked thin word (a stuck
// schedule), or the phantom hold surfaces as a leak or lost update. The
// revocation must land while the owner still has operations in flight,
// so the program interleaves repeated reacquires with the contender and
// the test retries seeds.
func TestCheckerCatchesSkipOwnerValidation(t *testing.T) {
	t.Parallel()
	mutant := func() lockapi.Locker {
		return biased.New(biased.Options{
			DisableRebias: true,
			TestMutations: biased.Mutations{SkipOwnerValidation: true},
		})
	}
	clean := func() lockapi.Locker { return biased.New(biased.Options{DisableRebias: true}) }

	p := Program{
		Objects: 1,
		Threads: [][]Op{
			{{OpLock, 0}, {Kind: OpWork}, {OpUnlock, 0}, {OpLock, 0}, {Kind: OpWork}, {OpUnlock, 0}, {OpLock, 0}, {OpUnlock, 0}},
			{{Kind: OpWork}, {OpLock, 0}, {Kind: OpWork}, {OpUnlock, 0}},
		},
	}
	cfg := Config{
		Timeout:      1500 * time.Millisecond,
		WorkDuration: 3 * time.Millisecond,
		SkipOracle:   true,
	}

	for seed := int64(0); seed < 4; seed++ {
		cfg.Schedule = seed
		if fs := CheckProgram(clean, p, cfg); len(fs) != 0 {
			t.Fatalf("unmutated biased implementation failed (seed %d): %v", seed, fs)
		}
	}

	caught := false
	for seed := int64(0); seed < 10 && !caught; seed++ {
		cfg.Schedule = seed
		fs := CheckProgram(mutant, p, cfg)
		for _, k := range []FailureKind{FailStuck, FailMutex, FailLeak, FailOutcome} {
			if SameKind(fs, k) {
				t.Logf("SkipOwnerValidation caught at seed %d: %v", seed, fs)
				caught = true
				break
			}
		}
	}
	if !caught {
		t.Fatal("checker never reported the seeded SkipOwnerValidation mutation")
	}
}
