package check

import (
	"sort"

	"thinlock/internal/biased"
	"thinlock/internal/core"
	"thinlock/internal/hotlocks"
	"thinlock/internal/lockapi"
	"thinlock/internal/monitorcache"
	"thinlock/internal/reference"
)

// Implementations returns fresh-instance factories for every lock
// implementation the checker certifies: the paper's thin locks plus the
// queued-inflation, deflation, compact (deflation + monitor-index
// recycling) and narrow-count variants, the biased
// reservation locker (with and without rebiasing), both historical
// baselines, and the reference oracle itself (checked like any other
// implementation — an oracle nobody checks is just a second opinion).
func Implementations() map[string]func() lockapi.Locker {
	return map[string]func() lockapi.Locker{
		"ThinLock":        func() lockapi.Locker { return core.NewDefault() },
		"ThinLock-queued": func() lockapi.Locker { return core.New(core.Options{QueuedInflation: true}) },
		"ThinLock-defl":   func() lockapi.Locker { return core.New(core.Options{EnableDeflation: true}) },
		"ThinLock-compact": func() lockapi.Locker {
			return core.New(core.Options{RecycleMonitors: true})
		},
		"ThinLock-2bit":   func() lockapi.Locker { return core.New(core.Options{CountBits: 2}) },
		"Biased":          func() lockapi.Locker { return biased.NewDefault() },
		"Biased-norebias": func() lockapi.Locker { return biased.New(biased.Options{DisableRebias: true}) },
		"JDK111":          func() lockapi.Locker { return monitorcache.New(monitorcache.Options{Capacity: 4}) },
		"IBM112":          func() lockapi.Locker { return hotlocks.New(hotlocks.Options{Threshold: 2}) },
		"Reference":       func() lockapi.Locker { return reference.New() },
	}
}

// ImplementationNames returns the registry's keys in sorted order.
func ImplementationNames() []string {
	m := Implementations()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
