package check

import (
	"testing"
	"time"

	"thinlock/internal/core"
	"thinlock/internal/lockapi"
)

// These tests are the checker's proof of usefulness: each seeded
// mutation from core.Mutations plants a realistic protocol bug, and the
// checker must catch it (and print a minimized failing schedule), while
// the unmutated implementation must pass the identical program. A
// harness that cannot fail detects nothing.

// TestCheckerCatchesOverflowOffByOne seeds the overflow-inflation
// off-by-one (the fat monitor is born one recursion level short) into a
// thin lock with a 2-bit count, so five nested locks overflow. The bug
// surfaces as outcome divergence: the object unlocks one level early,
// so a later unlock that must succeed returns ErrIllegalMonitorState.
func TestCheckerCatchesOverflowOffByOne(t *testing.T) {
	t.Parallel()
	mutant := func() lockapi.Locker {
		return core.New(core.Options{
			CountBits:     2,
			TestMutations: core.Mutations{OverflowOffByOne: true},
		})
	}
	clean := func() lockapi.Locker { return core.New(core.Options{CountBits: 2}) }

	var ops []Op
	for i := 0; i < 5; i++ {
		ops = append(ops, Op{OpLock, 0})
	}
	for i := 0; i < 5; i++ {
		ops = append(ops, Op{OpUnlock, 0})
	}
	p := Program{Objects: 1, Threads: [][]Op{ops}}
	cfg := Config{Timeout: 10 * time.Second}

	if fs := CheckProgram(clean, p, cfg); len(fs) != 0 {
		t.Fatalf("unmutated implementation failed the overflow program: %v", fs)
	}
	fs := CheckProgram(mutant, p, cfg)
	if !SameKind(fs, FailOutcome) {
		t.Fatalf("checker missed the seeded OverflowOffByOne mutation: %v", fs)
	}
	min := Minimize(p, func(q Program) bool {
		return SameKind(CheckProgram(mutant, q, cfg), FailOutcome)
	})
	if !SameKind(CheckProgram(mutant, min, cfg), FailOutcome) {
		t.Fatalf("minimized program no longer fails:\n%s", min)
	}
	t.Logf("OverflowOffByOne caught: %v\nminimized failing schedule:\n%s", fs, min)
}

// TestCheckerCatchesDropQueuedWake seeds the lost-wakeup bug (the
// releasing owner skips the queued-contender wake of the Tasuki
// protocol) into the queued-inflation variant. A contender that parked
// during the owner's critical section then sleeps forever, which the
// watchdog reports as a stuck schedule. The park is timing dependent
// (the contender must arrive while the lock is held), so the test holds
// the lock across two work ops and retries a few schedule seeds.
func TestCheckerCatchesDropQueuedWake(t *testing.T) {
	t.Parallel()
	mutant := func() lockapi.Locker {
		return core.New(core.Options{
			QueuedInflation: true,
			TestMutations:   core.Mutations{DropQueuedWake: true},
		})
	}
	clean := func() lockapi.Locker { return core.New(core.Options{QueuedInflation: true}) }

	p := Program{
		Objects: 1,
		Threads: [][]Op{
			{{OpLock, 0}, {Kind: OpWork}, {Kind: OpWork}, {OpUnlock, 0}},
			{{OpLock, 0}, {OpUnlock, 0}},
		},
	}
	cfg := Config{
		Timeout:      1500 * time.Millisecond,
		WorkDuration: 5 * time.Millisecond,
		SkipOracle:   true,
	}

	for seed := int64(0); seed < 4; seed++ {
		cfg.Schedule = seed
		if fs := CheckProgram(clean, p, cfg); len(fs) != 0 {
			t.Fatalf("unmutated queued implementation failed (seed %d): %v", seed, fs)
		}
	}

	var caught []Failure
	var seed int64
	for seed = 0; seed < 8; seed++ {
		cfg.Schedule = seed
		if fs := CheckProgram(mutant, p, cfg); SameKind(fs, FailStuck) {
			caught = fs
			break
		}
	}
	if caught == nil {
		t.Fatal("checker never reported the dropped wakeup as a stuck schedule")
	}
	min := Minimize(p, func(q Program) bool {
		c := cfg
		c.Schedule = seed
		return SameKind(CheckProgram(mutant, q, c), FailStuck)
	})
	t.Logf("DropQueuedWake caught at seed %d: %v\nminimized failing schedule:\n%s",
		seed, caught, min)
}
