// Package arch is the simulated hardware layer underneath the lock
// implementations.
//
// The paper's implementation ran on three kinds of machines — PowerPC
// uniprocessors, PowerPC multiprocessors, and older POWER machines without
// user-level atomic instructions — and §3.5.1 studies the cost of the
// resulting code-path variants. This package models those machines:
//
//   - PowerPCUP: user-level compare-and-swap, no memory barriers needed.
//   - PowerPCMP: user-level compare-and-swap plus isync/sync barriers
//     after lock and before unlock.
//   - POWER: no user-level compare-and-swap; the operation is performed
//     by a kernel service. We model the kernel service the way such
//     kernels implemented it — a global serialization lock around a plain
//     read-modify-write — which honestly reproduces both the extra cost
//     and the whole-machine serialization of the kernel path.
//
// On the Go side, sync/atomic's CompareAndSwapUint32 is the expensive
// fenced read-modify-write and atomic Load/Store compile to plain moves on
// x86, so the paper's central cost asymmetry (CAS much more expensive than
// load/store) is preserved without any artificial delays.
package arch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// CPU selects one of the simulated machine models.
type CPU int

const (
	// PowerPCUP is a PowerPC uniprocessor: native compare-and-swap,
	// no barriers.
	PowerPCUP CPU = iota
	// PowerPCMP is a PowerPC multiprocessor: native compare-and-swap,
	// isync after lock and sync before unlock.
	PowerPCMP
	// POWER is an old POWER/POWER2 machine: compare-and-swap is a call
	// into the kernel.
	POWER
)

// String returns the model name used in reports.
func (c CPU) String() string {
	switch c {
	case PowerPCUP:
		return "PowerPC-UP"
	case PowerPCMP:
		return "PowerPC-MP"
	case POWER:
		return "POWER"
	default:
		return "unknown-cpu"
	}
}

// kernelLock serializes the simulated kernel compare-and-swap service,
// mirroring the global serialization of a kernel-provided atomic primitive.
var kernelLock sync.Mutex

// CAS performs a compare-and-swap of *addr from old to new under the given
// CPU model and reports whether the swap happened.
func CAS(cpu CPU, addr *uint32, old, new uint32) bool {
	switch cpu {
	case POWER:
		return kernelCAS(addr, old, new)
	default:
		return atomic.CompareAndSwapUint32(addr, old, new)
	}
}

// kernelCAS emulates a kernel compare-and-swap service call: a global
// lock around a plain read-modify-write. The function is kept out of
// line so the call itself contributes the "system call" overhead.
//
//go:noinline
func kernelCAS(addr *uint32, old, new uint32) bool {
	kernelLock.Lock()
	// Inside the "kernel" the store may be plain, but Go's race
	// detector (and weak machines) require the atomic pair.
	ok := atomic.LoadUint32(addr) == old
	if ok {
		atomic.StoreUint32(addr, new)
	}
	kernelLock.Unlock()
	return ok
}

// fenceWord is a dummy location used to issue full memory barriers.
var fenceWord uint32

// ISync models the PowerPC isync instruction issued after acquiring a
// lock on a multiprocessor: an acquire barrier. Go's memory model gives
// us the ordering for free from the CAS, so the barrier exists purely to
// charge the instruction's cost, which we approximate with a locked
// no-op read-modify-write.
func ISync() {
	atomic.AddUint32(&fenceWord, 0)
}

// Sync models the PowerPC sync instruction issued before releasing a
// lock on a multiprocessor: a full barrier.
func Sync() {
	atomic.AddUint32(&fenceWord, 0)
}

// spinsBeforeYield is how many busy-wait rounds Backoff performs before
// starting to yield the processor.
const spinsBeforeYield = 4

// maxSleep caps the exponential back-off sleep.
const maxSleep = time.Millisecond

// Backoff implements the exponential back-off of Anderson [1] referenced
// by the paper (§2.3.4) for the spin-locking loop used during inflation.
// The zero value is ready to use.
type Backoff struct {
	round uint
}

// Pause waits an amount of time that grows with the number of calls:
// first a few busy spins, then scheduler yields, then short sleeps with
// exponentially increasing duration.
func (b *Backoff) Pause() {
	switch {
	case b.round < spinsBeforeYield:
		procYield(1 << b.round)
	case b.round < spinsBeforeYield+4:
		runtime.Gosched()
	default:
		d := time.Microsecond << (b.round - spinsBeforeYield - 4)
		if d > maxSleep {
			d = maxSleep
		}
		time.Sleep(d)
	}
	if b.round < 63 {
		b.round++
	}
}

// Rounds reports how many times Pause has been called.
func (b *Backoff) Rounds() uint { return b.round }

// Reset restarts the back-off schedule.
func (b *Backoff) Reset() { b.round = 0 }

// spinSink defeats dead-code elimination of the busy-wait loop.
var spinSink uint32

// procYield burns a few cycles without touching shared memory, standing
// in for a PAUSE-style instruction in the spin loop.
//
//go:noinline
func procYield(n uint) {
	var x uint32
	for i := uint(0); i < n; i++ {
		x += uint32(i)
	}
	atomic.StoreUint32(&spinSink, x)
}
