package arch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestCPUString(t *testing.T) {
	t.Parallel()
	tests := []struct {
		cpu  CPU
		want string
	}{
		{PowerPCUP, "PowerPC-UP"},
		{PowerPCMP, "PowerPC-MP"},
		{POWER, "POWER"},
		{CPU(99), "unknown-cpu"},
	}
	for _, tt := range tests {
		if got := tt.cpu.String(); got != tt.want {
			t.Errorf("CPU(%d).String() = %q, want %q", tt.cpu, got, tt.want)
		}
	}
}

func TestCASSuccess(t *testing.T) {
	t.Parallel()
	for _, cpu := range []CPU{PowerPCUP, PowerPCMP, POWER} {
		var w uint32 = 7
		if !CAS(cpu, &w, 7, 42) {
			t.Errorf("%v: CAS(7->42) on 7 failed", cpu)
		}
		if w != 42 {
			t.Errorf("%v: word = %d after successful CAS, want 42", cpu, w)
		}
	}
}

func TestCASFailure(t *testing.T) {
	t.Parallel()
	for _, cpu := range []CPU{PowerPCUP, PowerPCMP, POWER} {
		var w uint32 = 9
		if CAS(cpu, &w, 7, 42) {
			t.Errorf("%v: CAS(7->42) on 9 succeeded", cpu)
		}
		if w != 9 {
			t.Errorf("%v: word = %d after failed CAS, want 9 unchanged", cpu, w)
		}
	}
}

// TestCASAtomicity hammers one word from many goroutines; every increment
// must be preserved under each CPU model.
func TestCASAtomicity(t *testing.T) {
	t.Parallel()
	const (
		goroutines = 8
		increments = 2000
	)
	for _, cpu := range []CPU{PowerPCUP, PowerPCMP, POWER} {
		var w uint32
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < increments; i++ {
					for {
						old := atomic.LoadUint32(&w)
						if CAS(cpu, &w, old, old+1) {
							break
						}
					}
				}
			}()
		}
		wg.Wait()
		if w != goroutines*increments {
			t.Errorf("%v: final = %d, want %d", cpu, w, goroutines*increments)
		}
	}
}

func TestBackoffProgression(t *testing.T) {
	t.Parallel()
	var b Backoff
	if b.Rounds() != 0 {
		t.Fatalf("fresh Backoff rounds = %d, want 0", b.Rounds())
	}
	for i := 0; i < 12; i++ {
		b.Pause()
	}
	if b.Rounds() != 12 {
		t.Errorf("rounds = %d after 12 pauses, want 12", b.Rounds())
	}
	b.Reset()
	if b.Rounds() != 0 {
		t.Errorf("rounds = %d after Reset, want 0", b.Rounds())
	}
}

func TestBackoffRoundsSaturate(t *testing.T) {
	t.Parallel()
	b := Backoff{round: 63}
	// Must not overflow the shift; Pause at the cap keeps round at 63.
	b.Pause()
	if b.Rounds() != 63 {
		t.Errorf("rounds = %d, want saturation at 63", b.Rounds())
	}
}

func TestFencesAreCallable(t *testing.T) {
	t.Parallel()
	// The fences only charge cost; verify they are safe to call
	// concurrently.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ISync()
				Sync()
			}
		}()
	}
	wg.Wait()
}

func BenchmarkNativeCAS(b *testing.B) {
	var w uint32
	for i := 0; i < b.N; i++ {
		CAS(PowerPCUP, &w, 0, 1)
		atomic.StoreUint32(&w, 0)
	}
}

func BenchmarkKernelCAS(b *testing.B) {
	var w uint32
	for i := 0; i < b.N; i++ {
		CAS(POWER, &w, 0, 1)
		atomic.StoreUint32(&w, 0)
	}
}

func BenchmarkPlainStore(b *testing.B) {
	var w uint32
	for i := 0; i < b.N; i++ {
		atomic.StoreUint32(&w, uint32(i))
	}
}
