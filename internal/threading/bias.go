// Bias slots: the per-thread half of lock reservation (internal/biased).
//
// A biased lock's recursion depth is deliberately NOT kept in the shared
// lock word — that is what makes the owner's reacquire/release free of
// read-modify-write atomics. Instead each Thread carries a small table
// of bias slots; a slot records one object the thread has reserved, the
// exact biased header word it installed, and the current recursion
// depth. The owning goroutine is the only writer of a slot; a revoking
// thread reads it (after winning the revocation sentinel CAS on the
// object header) to learn the depth at which the bias must be walked to
// a conventional thin or fat lock. The depth store is a full atomic
// store so the owner's store→load sequence and the revoker's
// store(CAS)→load sequence form a Dekker-style handshake: at least one
// side observes the other.

package threading

import "sync/atomic"

// BiasSlots is the number of objects one thread can have reserved at a
// time. When the table is full further objects simply aren't biased
// (the locker falls back to its ordinary CAS path), so the size is a
// quality knob, not a correctness bound.
const BiasSlots = 8

// BiasSlot is one reservation held by a thread. Only the owning
// goroutine writes it; revokers read it through the atomics.
type BiasSlot struct {
	id    atomic.Uint64 // object allocation id; 0 = slot free
	word  atomic.Uint32 // biased header word this thread installed
	depth atomic.Uint64 // current recursion depth (locks held)
}

// ObjectID returns the id of the reserved object (0 for a free slot).
func (s *BiasSlot) ObjectID() uint64 { return s.id.Load() }

// Word returns the biased header word the owner installed.
func (s *BiasSlot) Word() uint32 { return s.word.Load() }

// SetWord records the biased header word about to be installed. Owner
// only.
func (s *BiasSlot) SetWord(w uint32) { s.word.Store(w) }

// Depth returns the recursion depth published in the slot.
func (s *BiasSlot) Depth() uint64 { return s.depth.Load() }

// SetDepth publishes a new recursion depth. Owner only. The atomic
// store is the owner's half of the revocation handshake.
func (s *BiasSlot) SetDepth(d uint64) { s.depth.Store(d) }

// Release frees the slot. Owner only. The depth and word are cleared
// before the id so a concurrent scanner never pairs a recycled id with
// stale state.
func (s *BiasSlot) Release() {
	s.depth.Store(0)
	s.word.Store(0)
	s.id.Store(0)
}

// BiasSlotFor returns the slot this thread holds for the object with
// the given allocation id, or nil. Safe to call from any goroutine
// (revokers scan the owner's table); the result is meaningful to a
// revoker only while it holds the object's revocation sentinel.
func (t *Thread) BiasSlotFor(id uint64) *BiasSlot {
	if id == 0 {
		return nil
	}
	for i := range t.biasSlots {
		if t.biasSlots[i].id.Load() == id {
			return &t.biasSlots[i]
		}
	}
	return nil
}

// ClaimBiasSlot reserves a slot for the object with the given id and
// returns it, or nil when the table is full. Owner only. A slot already
// holding the same id is reused — the table must never hold two slots
// for one object, or BiasSlotFor becomes ambiguous (possible when a
// transferred-away reservation left a stale slot behind and the object
// is re-reserved). The caller must SetWord/SetDepth before publishing
// the biased header word, and Release the slot when the reservation
// dies.
func (t *Thread) ClaimBiasSlot(id uint64) *BiasSlot {
	var free *BiasSlot
	for i := range t.biasSlots {
		s := &t.biasSlots[i]
		switch s.id.Load() {
		case id:
			return s
		case 0:
			if free == nil {
				free = s
			}
		}
	}
	if free != nil {
		free.id.Store(id)
	}
	return free
}
