package threading

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestAttachAssignsIndices(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	a, err := r.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	if a.Index() == 0 || b.Index() == 0 {
		t.Fatalf("indices must be nonzero: a=%d b=%d", a.Index(), b.Index())
	}
	if a.Index() == b.Index() {
		t.Fatalf("distinct threads share index %d", a.Index())
	}
	if a.Shifted() != uint32(a.Index())<<IndexShift {
		t.Errorf("Shifted() = %#x, want index %d << %d", a.Shifted(), a.Index(), IndexShift)
	}
}

func TestIndexFitsIn15Bits(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		th, err := r.Attach("t")
		if err != nil {
			t.Fatal(err)
		}
		if th.Index() > MaxThreads {
			t.Fatalf("index %d exceeds 15-bit space", th.Index())
		}
		// The shifted form must not touch the shape bit (bit 31) or
		// the count/misc bits (low 16).
		if th.Shifted()&0x8000FFFF != 0 {
			t.Fatalf("shifted index %#x spills outside bits 30..16", th.Shifted())
		}
	}
}

func TestLookup(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	a, _ := r.Attach("a")
	if got := r.Lookup(a.Index()); got != a {
		t.Errorf("Lookup(%d) = %v, want %v", a.Index(), got, a)
	}
	if got := r.Lookup(0); got != nil {
		t.Errorf("Lookup(0) = %v, want nil", got)
	}
	if got := r.Lookup(12345); got != nil {
		t.Errorf("Lookup(unassigned) = %v, want nil", got)
	}
}

func TestDetachRecyclesIndex(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	a, _ := r.Attach("a")
	idx := a.Index()
	r.Detach(a)
	if r.Lookup(idx) != nil {
		t.Fatalf("Lookup(%d) non-nil after detach", idx)
	}
	b, _ := r.Attach("b")
	if b.Index() != idx {
		t.Errorf("recycled index = %d, want %d", b.Index(), idx)
	}
	if r.Attached() != 1 {
		t.Errorf("Attached() = %d, want 1", r.Attached())
	}
}

func TestDetachIsIdempotent(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	a, _ := r.Attach("a")
	r.Detach(a)
	r.Detach(a) // second detach must not corrupt the free list
	b, _ := r.Attach("b")
	c, _ := r.Attach("c")
	if b.Index() == c.Index() {
		t.Fatalf("double-detach caused duplicate index %d", b.Index())
	}
	r.Detach(nil) // must not panic
}

func TestRegistryExhaustion(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("allocates 32767 threads")
	}
	r := NewRegistry()
	for i := 0; i < MaxThreads; i++ {
		if _, err := r.Attach("t"); err != nil {
			t.Fatalf("attach %d failed early: %v", i, err)
		}
	}
	if _, err := r.Attach("overflow"); err != ErrTooManyThreads {
		t.Fatalf("attach beyond MaxThreads: err = %v, want ErrTooManyThreads", err)
	}
}

func TestRegistryStats(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	a, _ := r.Attach("a")
	b, _ := r.Attach("b")
	r.Detach(a)
	if r.Peak() != 2 {
		t.Errorf("Peak() = %d, want 2", r.Peak())
	}
	if r.TotalAttached() != 2 {
		t.Errorf("TotalAttached() = %d, want 2", r.TotalAttached())
	}
	if r.Attached() != 1 {
		t.Errorf("Attached() = %d, want 1", r.Attached())
	}
	r.Detach(b)
}

func TestGoRunsAndDetaches(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	var ran *Thread
	done, err := r.Go("worker", func(th *Thread) { ran = th })
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if ran == nil {
		t.Fatal("fn never ran")
	}
	if r.Attached() != 0 {
		t.Errorf("Attached() = %d after Go completes, want 0", r.Attached())
	}
}

func TestConcurrentAttachDetach(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				th, err := r.Attach("t")
				if err != nil {
					t.Error(err)
					return
				}
				r.Detach(th)
			}
		}()
	}
	wg.Wait()
	if r.Attached() != 0 {
		t.Errorf("Attached() = %d, want 0", r.Attached())
	}
}

// Property: indices handed out at any instant are unique.
func TestUniqueIndicesProperty(t *testing.T) {
	t.Parallel()
	prop := func(n uint8) bool {
		r := NewRegistry()
		seen := make(map[uint16]bool)
		for i := 0; i < int(n%64)+1; i++ {
			th, err := r.Attach("t")
			if err != nil {
				return false
			}
			if seen[th.Index()] {
				return false
			}
			seen[th.Index()] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestParkerUnparkBeforePark(t *testing.T) {
	t.Parallel()
	var p Parker
	p.Unpark()
	doneCh := make(chan struct{})
	go func() {
		p.Park() // must not block: permit already available
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("Park blocked despite earlier Unpark")
	}
}

func TestParkerUnparksCoalesce(t *testing.T) {
	t.Parallel()
	var p Parker
	p.Unpark()
	p.Unpark()
	p.Unpark()
	if !p.ParkTimeout(0) {
		t.Fatal("no permit after Unpark")
	}
	if p.ParkTimeout(0) {
		t.Fatal("second permit available; Unparks must coalesce to one")
	}
}

func TestParkerTimeout(t *testing.T) {
	t.Parallel()
	var p Parker
	start := time.Now()
	if p.ParkTimeout(20 * time.Millisecond) {
		t.Fatal("ParkTimeout returned true with no permit")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("ParkTimeout returned after %v, want >= ~20ms", elapsed)
	}
}

func TestParkerParkAfterUnparkCrossGoroutine(t *testing.T) {
	t.Parallel()
	var p Parker
	released := make(chan struct{})
	go func() {
		p.Park()
		close(released)
	}()
	time.Sleep(10 * time.Millisecond)
	p.Unpark()
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("Park never released by Unpark")
	}
}

type fakeWaitNode struct{ woke chan struct{} }

func (f *fakeWaitNode) WakeForInterrupt() { close(f.woke) }

func TestInterruptStatusAndWake(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	th, _ := r.Attach("t")
	if th.IsInterrupted() {
		t.Fatal("fresh thread interrupted")
	}
	n := &fakeWaitNode{woke: make(chan struct{})}
	th.SetWaitNode(n)
	th.Interrupt()
	select {
	case <-n.woke:
	default:
		t.Fatal("Interrupt did not wake the wait node")
	}
	if !th.IsInterrupted() {
		t.Fatal("interrupt status not set")
	}
	if !th.Interrupted() {
		t.Fatal("Interrupted() did not report status")
	}
	if th.IsInterrupted() {
		t.Fatal("Interrupted() did not clear status")
	}
	th.SetWaitNode(nil)
	th.Interrupt() // no node: must not panic
}

func TestThreadString(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	th, _ := r.Attach("worker")
	want := "thread(worker#1)"
	if th.String() != want {
		t.Errorf("String() = %q, want %q", th.String(), want)
	}
}

func BenchmarkAttachDetach(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < b.N; i++ {
		th, _ := r.Attach("t")
		r.Detach(th)
	}
}

func BenchmarkParkUnpark(b *testing.B) {
	var p Parker
	for i := 0; i < b.N; i++ {
		p.Unpark()
		p.Park()
	}
}
