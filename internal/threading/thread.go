// Package threading provides the thread substrate thin locks depend on.
//
// The paper's algorithm identifies lock owners by a 15-bit *thread index*
// into a table that maps indices to thread structures (§2.3). The index is
// stored pre-shifted by 16 bits in the thread's execution environment so
// the locking fast path needs no extra ALU operation. This package
// reproduces that machinery on top of goroutines: a Thread is an explicit
// handle (the analogue of the JVM execution-environment pointer) that the
// caller threads through lock operations, and a Registry hands out and
// recycles the 15-bit indices.
//
// Blocking is built on a channel-based binary semaphore (Parker), since Go
// does not expose a goroutine park/unpark primitive.
package threading

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// IndexBits is the width of a thread index in the lock word.
const IndexBits = 15

// MaxThreads is the number of simultaneously attached threads a Registry
// supports. Index 0 is reserved to mean "unlocked", leaving 2^15-1 usable
// indices.
const MaxThreads = 1<<IndexBits - 1

// IndexShift is how far the thread index is shifted within the lock word.
const IndexShift = 16

// ErrTooManyThreads is returned by Attach when all 2^15-1 indices are in
// use.
var ErrTooManyThreads = errors.New("threading: thread index space exhausted")

// ErrInterrupted is returned from blocking operations when the thread's
// interrupt status was set.
var ErrInterrupted = errors.New("threading: interrupted")

// Thread is the per-thread execution environment. All lock operations
// take the acting Thread explicitly; a Thread must only ever be used by
// the goroutine it was attached for.
type Thread struct {
	// shifted is the thread index pre-shifted by IndexShift, exactly as
	// the paper stores it, so the lock fast path ORs it in directly.
	shifted uint32

	name        string
	registry    *Registry
	parker      Parker
	interrupted atomic.Bool

	// waitMu guards waitNode, the node for an in-progress monitor wait,
	// so Interrupt can find and wake it.
	waitMu   sync.Mutex
	waitNode Interruptible

	// frameMethod/framePC are the interpreter's currently executing
	// method and bytecode pc, published by internal/vm around lock
	// operations so the contention profiler can attribute a slow-path
	// acquisition to its bytecode site. Only the owning goroutine reads
	// or writes them (the same single-goroutine discipline as the rest
	// of the Thread), so plain fields suffice.
	frameMethod string
	framePC     int32
	frameSet    bool

	// biasSlots holds the thread's lock reservations (see bias.go).
	// Written only by the owning goroutine; read by revoking threads.
	biasSlots [BiasSlots]BiasSlot
}

// Interruptible is implemented by blocked states (e.g. a monitor wait
// node) that an Interrupt call must be able to wake.
type Interruptible interface {
	// WakeForInterrupt attempts to wake the blocked thread because it
	// was interrupted.
	WakeForInterrupt()
}

// Index returns the thread's 15-bit index (1..MaxThreads). It is 0 only
// for a zero Thread that was never attached.
func (t *Thread) Index() uint16 { return uint16(t.shifted >> IndexShift) }

// Shifted returns the pre-shifted index, ready to be ORed into a lock
// word.
func (t *Thread) Shifted() uint32 { return t.shifted }

// Name returns the name given at Attach time.
func (t *Thread) Name() string { return t.name }

// Registry returns the registry the thread is attached to, so code
// holding only a thread (e.g. a workload body) can attach helpers.
func (t *Thread) Registry() *Registry { return t.registry }

// String implements fmt.Stringer.
func (t *Thread) String() string {
	return fmt.Sprintf("thread(%s#%d)", t.name, t.Index())
}

// Parker returns the thread's parking semaphore.
func (t *Thread) Parker() *Parker { return &t.parker }

// Interrupt sets the thread's interrupt status and wakes it if it is
// blocked in an interruptible wait.
func (t *Thread) Interrupt() {
	t.interrupted.Store(true)
	t.waitMu.Lock()
	n := t.waitNode
	t.waitMu.Unlock()
	if n != nil {
		n.WakeForInterrupt()
	}
}

// Interrupted reports and clears the thread's interrupt status, like
// java.lang.Thread.interrupted.
func (t *Thread) Interrupted() bool {
	return t.interrupted.Swap(false)
}

// IsInterrupted reports the interrupt status without clearing it.
func (t *Thread) IsInterrupted() bool { return t.interrupted.Load() }

// PublishFrame records the interpreter frame (method name + bytecode pc)
// about to perform a lock operation on this thread, for lock-site
// attribution. Must be called by the owning goroutine and paired with
// ClearFrame.
//
//lockvet:noalloc
func (t *Thread) PublishFrame(method string, pc int32) {
	t.frameMethod = method
	t.framePC = pc
	t.frameSet = true
}

// ClearFrame clears the published interpreter frame.
//
//lockvet:noalloc
func (t *Thread) ClearFrame() {
	t.frameMethod = ""
	t.framePC = 0
	t.frameSet = false
}

// Frame returns the published interpreter frame, if any. Must be called
// by the owning goroutine.
func (t *Thread) Frame() (method string, pc int32, ok bool) {
	return t.frameMethod, t.framePC, t.frameSet
}

// SetWaitNode publishes (or, with nil, clears) the thread's current
// interruptible wait so Interrupt can reach it. It is called by the
// monitor implementation around a wait.
func (t *Thread) SetWaitNode(n Interruptible) {
	t.waitMu.Lock()
	t.waitNode = n
	t.waitMu.Unlock()
}

// Registry hands out thread indices and maps them back to Threads,
// mirroring the paper's index→thread-pointer table.
type Registry struct {
	mu       sync.Mutex
	threads  []*Thread // index → thread; slot 0 is always nil
	free     []uint16  // recycled indices, LIFO
	attached int

	peakAttached int
	totalAttach  uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{threads: make([]*Thread, 1, 64)}
}

// Attach allocates an index and returns a new Thread for the calling
// goroutine. The returned Thread must be released with Detach when the
// logical thread terminates.
func (r *Registry) Attach(name string) (*Thread, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	var idx uint16
	switch {
	case len(r.free) > 0:
		idx = r.free[len(r.free)-1]
		r.free = r.free[:len(r.free)-1]
	case len(r.threads) <= MaxThreads:
		idx = uint16(len(r.threads))
		r.threads = append(r.threads, nil)
	default:
		return nil, ErrTooManyThreads
	}

	t := &Thread{
		shifted:  uint32(idx) << IndexShift,
		name:     name,
		registry: r,
	}
	r.threads[idx] = t
	r.attached++
	r.totalAttach++
	if r.attached > r.peakAttached {
		r.peakAttached = r.attached
	}
	return t, nil
}

// Detach releases the thread's index for reuse. The Thread must not be
// used afterwards, and must not hold any locks.
func (r *Registry) Detach(t *Thread) {
	if t == nil || t.shifted == 0 {
		return
	}
	idx := t.Index()
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(idx) >= len(r.threads) || r.threads[idx] != t {
		return // already detached or foreign thread
	}
	r.threads[idx] = nil
	r.free = append(r.free, idx)
	r.attached--
}

// Lookup returns the Thread with the given index, or nil if the index is
// unassigned.
func (r *Registry) Lookup(idx uint16) *Thread {
	r.mu.Lock()
	defer r.mu.Unlock()
	if idx == 0 || int(idx) >= len(r.threads) {
		return nil
	}
	return r.threads[idx]
}

// Attached reports the number of currently attached threads.
func (r *Registry) Attached() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attached
}

// Peak reports the maximum number of simultaneously attached threads.
func (r *Registry) Peak() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peakAttached
}

// TotalAttached reports the number of Attach calls ever made.
func (r *Registry) TotalAttached() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totalAttach
}

// Go attaches a new Thread, runs fn with it on a fresh goroutine, and
// detaches it when fn returns. The returned channel is closed after the
// detach completes.
func (r *Registry) Go(name string, fn func(*Thread)) (<-chan struct{}, error) {
	t, err := r.Attach(name)
	if err != nil {
		return nil, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer r.Detach(t)
		fn(t)
	}()
	return done, nil
}

// Parker is a one-permit binary semaphore used to block and unblock a
// thread. Unpark before Park leaves a permit so the wakeup is never lost;
// multiple Unparks coalesce into one permit.
type Parker struct {
	once sync.Once
	ch   chan struct{}
}

func (p *Parker) init() {
	p.once.Do(func() { p.ch = make(chan struct{}, 1) })
}

// Park blocks until a permit is available and consumes it.
func (p *Parker) Park() {
	p.init()
	<-p.ch
}

// ParkTimeout blocks until a permit is available or d elapses. It reports
// whether a permit was consumed (true) or the timeout fired (false).
// A non-positive d polls without blocking.
func (p *Parker) ParkTimeout(d time.Duration) bool {
	p.init()
	if d <= 0 {
		select {
		case <-p.ch:
			return true
		default:
			return false
		}
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-p.ch:
		return true
	case <-timer.C:
		return false
	}
}

// Unpark makes one permit available if none is pending.
func (p *Parker) Unpark() {
	p.init()
	select {
	case p.ch <- struct{}{}:
	default:
	}
}
