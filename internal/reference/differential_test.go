package reference

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"thinlock/internal/core"
	"thinlock/internal/hotlocks"
	"thinlock/internal/lockapi"
	"thinlock/internal/monitorcache"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// implementations under differential test.
func underTest() map[string]func() lockapi.Locker {
	return map[string]func() lockapi.Locker{
		"ThinLock":        func() lockapi.Locker { return core.NewDefault() },
		"ThinLock-queued": func() lockapi.Locker { return core.New(core.Options{QueuedInflation: true}) },
		"ThinLock-defl":   func() lockapi.Locker { return core.New(core.Options{EnableDeflation: true}) },
		"ThinLock-2bit":   func() lockapi.Locker { return core.New(core.Options{CountBits: 2}) },
		"JDK111":          func() lockapi.Locker { return monitorcache.New(monitorcache.Options{Capacity: 4}) },
		"IBM112":          func() lockapi.Locker { return hotlocks.New(hotlocks.Options{Threshold: 2}) },
	}
}

// traceOp is one step of a generated single-threaded trace.
type traceOp struct {
	kind int // 0 lock, 1 unlock, 2 notify, 3 notifyAll, 4 timed wait(0ms)
	obj  int
}

// runTrace executes ops against l, returning the observable outcome
// sequence (error or not per op).
func runTrace(t *testing.T, l lockapi.Locker, heap *object.Heap,
	th *threading.Thread, objs []*object.Object, ops []traceOp) []bool {
	t.Helper()
	outcomes := make([]bool, len(ops))
	depth := make([]int, len(objs))
	for i, op := range ops {
		o := objs[op.obj]
		switch op.kind {
		case 0:
			l.Lock(th, o)
			depth[op.obj]++
			outcomes[i] = true
		case 1:
			err := l.Unlock(th, o)
			outcomes[i] = err == nil
			if err == nil {
				depth[op.obj]--
			}
		case 2:
			outcomes[i] = l.Notify(th, o) == nil
		case 3:
			outcomes[i] = l.NotifyAll(th, o) == nil
		case 4:
			// Tiny timed wait: must time out (no notifiers) and
			// restore the depth; error exactly when not owned.
			_, err := l.Wait(th, o, time.Microsecond)
			outcomes[i] = err == nil
		}
	}
	// Unwind all held locks so every implementation ends clean.
	for i, d := range depth {
		for j := 0; j < d; j++ {
			if err := l.Unlock(th, objs[i]); err != nil {
				t.Fatalf("%s: unwind unlock failed: %v", l.Name(), err)
			}
		}
	}
	return outcomes
}

// TestDifferentialSingleThreadTraces drives random operation sequences
// through the oracle and every optimized implementation; the outcome
// sequences (success/error per operation) must be identical.
func TestDifferentialSingleThreadTraces(t *testing.T) {
	t.Parallel()
	const numObjects = 3
	gen := func(seed int64, length int) []traceOp {
		rng := rand.New(rand.NewSource(seed))
		ops := make([]traceOp, length)
		for i := range ops {
			ops[i] = traceOp{kind: rng.Intn(5), obj: rng.Intn(numObjects)}
		}
		return ops
	}

	prop := func(seed int64) bool {
		ops := gen(seed, 60)

		runUnder := func(mk func() lockapi.Locker) []bool {
			heap := object.NewHeap()
			reg := threading.NewRegistry()
			th, err := reg.Attach("d")
			if err != nil {
				t.Fatal(err)
			}
			objs := make([]*object.Object, numObjects)
			for i := range objs {
				objs[i] = heap.New("X")
			}
			return runUnder2(t, mk(), heap, th, objs, ops)
		}

		want := runUnder(func() lockapi.Locker { return New() })
		for name, mk := range underTest() {
			got := runUnder(mk)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("seed %d: %s diverges from oracle at op %d (%+v): got %v want %v",
						seed, name, i, ops[i], got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// runUnder2 adapts runTrace (keeps the closure above readable).
func runUnder2(t *testing.T, l lockapi.Locker, heap *object.Heap,
	th *threading.Thread, objs []*object.Object, ops []traceOp) []bool {
	return runTrace(t, l, heap, th, objs, ops)
}

// TestDifferentialDeepNesting compares deep-recursion behaviour: the
// oracle has no inflation threshold, so all implementations must agree
// on pure lock/unlock outcomes even across the thin-count overflow.
func TestDifferentialDeepNesting(t *testing.T) {
	t.Parallel()
	const depth = 300 // crosses the 8-bit thin count boundary
	runUnder := func(mk func() lockapi.Locker) []bool {
		heap := object.NewHeap()
		reg := threading.NewRegistry()
		th, _ := reg.Attach("d")
		o := heap.New("X")
		l := mk()
		var out []bool
		for i := 0; i < depth; i++ {
			l.Lock(th, o)
			out = append(out, true)
		}
		for i := 0; i < depth; i++ {
			out = append(out, l.Unlock(th, o) == nil)
		}
		out = append(out, l.Unlock(th, o) == nil) // must fail everywhere
		return out
	}
	want := runUnder(func() lockapi.Locker { return New() })
	for name, mk := range underTest() {
		got := runUnder(mk)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s diverges at step %d", name, i)
			}
		}
	}
}

// TestOracleBasics sanity-checks the oracle itself.
func TestOracleBasics(t *testing.T) {
	t.Parallel()
	l := New()
	heap := object.NewHeap()
	reg := threading.NewRegistry()
	a, _ := reg.Attach("a")
	b, _ := reg.Attach("b")
	o := heap.New("X")

	if l.Owner(o) != 0 || l.Count(o) != 0 {
		t.Fatal("fresh object not unlocked")
	}
	l.Lock(a, o)
	l.Lock(a, o)
	if l.Owner(o) != a.Index() || l.Count(o) != 2 {
		t.Fatalf("owner=%d count=%d", l.Owner(o), l.Count(o))
	}
	if err := l.Unlock(b, o); err != ErrIllegalMonitorState {
		t.Fatal("non-owner unlock succeeded")
	}
	if err := l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	if err := l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	if err := l.Unlock(a, o); err != ErrIllegalMonitorState {
		t.Fatal("over-unlock succeeded")
	}

	// Contended handoff.
	l.Lock(a, o)
	done := make(chan struct{})
	go func() {
		l.Lock(b, o)
		if err := l.Unlock(b, o); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("oracle lost a blocked entrant")
	}

	// Wait/notify.
	woke := make(chan bool, 1)
	go func() {
		l.Lock(a, o)
		n, err := l.Wait(a, o, 0)
		if err != nil {
			t.Error(err)
		}
		woke <- n
		_ = l.Unlock(a, o)
	}()
	time.Sleep(10 * time.Millisecond)
	l.Lock(b, o)
	if err := l.Notify(b, o); err != nil {
		t.Fatal(err)
	}
	if err := l.Unlock(b, o); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-woke:
		if !n {
			t.Fatal("waiter woke without notify")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("oracle lost a waiter")
	}
	if l.Name() != "Reference" {
		t.Fatal("name")
	}
}
