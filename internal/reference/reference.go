// Package reference provides a deliberately simple, obviously-correct
// monitor implementation used as a differential-testing oracle: a global
// mutex guards a map from object id to a straightforward monitor state
// machine. It makes no attempt to be fast; its only job is to define the
// expected observable behaviour (ownership, recursion counts, error
// cases, wait/notify transfers) that the optimized implementations —
// thin locks and both baselines — must match on identical traces.
package reference

import (
	"sync"
	"time"

	"thinlock/internal/monitor"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// ErrIllegalMonitorState mirrors the shared error for misuse.
var ErrIllegalMonitorState = monitor.ErrIllegalMonitorState

// state is the oracle's per-object monitor.
type state struct {
	owner   *threading.Thread
	count   int
	waiters []*waiter
	// entryWake signals lock availability to blocked entrants.
	entryWake chan struct{}
}

type waiter struct {
	ch       chan struct{} // closed on notify
	notified bool
}

// irqNode adapts the oracle's channel-based wait to the interrupt
// delivery of threading.Thread.Interrupt, which wakes whatever
// Interruptible the thread registered. Interrupt may fire more than
// once; the sync.Once keeps the close idempotent.
type irqNode struct {
	once sync.Once
	ch   chan struct{}
}

// WakeForInterrupt implements threading.Interruptible.
func (n *irqNode) WakeForInterrupt() { n.once.Do(func() { close(n.ch) }) }

// Locker is the oracle. It implements lockapi.Locker.
type Locker struct {
	mu     sync.Mutex
	states map[uint64]*state
}

// New returns an empty oracle.
func New() *Locker {
	return &Locker{states: make(map[uint64]*state)}
}

// Name implements lockapi.Locker.
func (l *Locker) Name() string { return "Reference" }

// get returns the state for o, creating it if needed. Caller holds l.mu.
func (l *Locker) get(o *object.Object) *state {
	s := l.states[o.ID()]
	if s == nil {
		s = &state{entryWake: make(chan struct{})}
		l.states[o.ID()] = s
	}
	return s
}

// Lock implements lockapi.Locker.
func (l *Locker) Lock(t *threading.Thread, o *object.Object) {
	for {
		l.mu.Lock()
		s := l.get(o)
		if s.owner == nil {
			s.owner = t
			s.count = 1
			l.mu.Unlock()
			return
		}
		if s.owner == t {
			s.count++
			l.mu.Unlock()
			return
		}
		wake := s.entryWake
		l.mu.Unlock()
		<-wake // wait for a release broadcast, then retry
	}
}

// Unlock implements lockapi.Locker.
func (l *Locker) Unlock(t *threading.Thread, o *object.Object) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.get(o)
	if s.owner != t {
		return ErrIllegalMonitorState
	}
	s.count--
	if s.count == 0 {
		s.owner = nil
		close(s.entryWake)
		s.entryWake = make(chan struct{})
	}
	return nil
}

// Wait implements lockapi.Locker.
func (l *Locker) Wait(t *threading.Thread, o *object.Object, d time.Duration) (bool, error) {
	l.mu.Lock()
	s := l.get(o)
	if s.owner != t {
		l.mu.Unlock()
		return false, ErrIllegalMonitorState
	}
	if t.IsInterrupted() {
		l.mu.Unlock()
		t.Interrupted()
		return false, threading.ErrInterrupted
	}
	w := &waiter{ch: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	saved := s.count
	s.count = 0
	s.owner = nil
	close(s.entryWake)
	s.entryWake = make(chan struct{})
	in := &irqNode{ch: make(chan struct{})}
	t.SetWaitNode(in)
	l.mu.Unlock()

	notified, interrupted := false, false
	if d > 0 {
		timer := time.NewTimer(d)
		select {
		case <-w.ch:
			notified = true
		case <-timer.C:
		case <-in.ch:
			interrupted = true
		}
		timer.Stop()
	} else {
		select {
		case <-w.ch:
			notified = true
		case <-in.ch:
			interrupted = true
		}
	}
	t.SetWaitNode(nil)

	l.mu.Lock()
	if !notified {
		if w.notified {
			// Notify raced the timeout: treat as notified.
			notified = true
		} else {
			for i, x := range s.waiters {
				if x == w {
					s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
					break
				}
			}
		}
	}
	l.mu.Unlock()

	// Re-acquire at the saved depth.
	l.Lock(t, o)
	l.mu.Lock()
	s.count = saved
	l.mu.Unlock()
	// As in internal/monitor: an interrupt wake whose status is still
	// pending reports ErrInterrupted (consuming the status); if a
	// concurrent notify raced ahead of the interrupt delivery, the
	// wakeup counts as the notification and the status stays pending.
	if interrupted && t.Interrupted() {
		return notified, threading.ErrInterrupted
	}
	return notified, nil
}

// Notify implements lockapi.Locker.
func (l *Locker) Notify(t *threading.Thread, o *object.Object) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.get(o)
	if s.owner != t {
		return ErrIllegalMonitorState
	}
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.notified = true
		close(w.ch)
	}
	return nil
}

// NotifyAll implements lockapi.Locker.
func (l *Locker) NotifyAll(t *threading.Thread, o *object.Object) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.get(o)
	if s.owner != t {
		return ErrIllegalMonitorState
	}
	for _, w := range s.waiters {
		w.notified = true
		close(w.ch)
	}
	s.waiters = nil
	return nil
}

// Owner reports the oracle's view of o's owner index (0 if unlocked).
func (l *Locker) Owner(o *object.Object) uint16 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s := l.states[o.ID()]; s != nil && s.owner != nil {
		return s.owner.Index()
	}
	return 0
}

// Count reports the oracle's view of o's recursion count.
func (l *Locker) Count(o *object.Object) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s := l.states[o.ID()]; s != nil {
		return s.count
	}
	return 0
}
