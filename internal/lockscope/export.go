package lockscope

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteJSON writes the series as indented JSON. Output is deterministic
// for a given series: field order follows the struct definitions and
// site order is fixed at sampling time.
func (s Series) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// csvHeader is the fixed CSV column order: the Sample scalar fields in
// declaration order, then the fired-anomaly count and the window's
// hottest site.
const csvHeader = "index,at_ns,window_ns," +
	"slow_per_sec,cas_fail_per_sec,cas_fail_ratio," +
	"inflations_contention,inflations_overflow,inflations_wait," +
	"inflations_per_sec,deflations_per_sec,parks_per_sec," +
	"acquire_p50_ns,acquire_p99_ns,park_p50_ns,park_p99_ns,hold_p50_ns,hold_p99_ns," +
	"anomalies,top_site"

// WriteCSV writes the series as one row per sample under a fixed
// header. Floats use the shortest round-trip representation, so output
// is byte-identical across runs for identical samples. Site timelines
// beyond the hottest label and the anomaly log itself are JSON-only.
func (s Series) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(csvHeader)
	b.WriteByte('\n')
	for _, sm := range s.Samples {
		topSite := ""
		if len(sm.Sites) > 0 {
			topSite = sm.Sites[0].Label
		}
		cols := []string{
			strconv.FormatUint(sm.Index, 10),
			strconv.FormatInt(sm.AtNs, 10),
			strconv.FormatInt(sm.WindowNs, 10),
			fmtFloat(sm.SlowPerSec),
			fmtFloat(sm.CASFailPerSec),
			fmtFloat(sm.CASFailRatio),
			strconv.FormatUint(sm.Inflations.Contention, 10),
			strconv.FormatUint(sm.Inflations.Overflow, 10),
			strconv.FormatUint(sm.Inflations.Wait, 10),
			fmtFloat(sm.InflationsPerSec),
			fmtFloat(sm.DeflationsPerSec),
			fmtFloat(sm.ParksPerSec),
			strconv.FormatUint(sm.AcquireP50Ns, 10),
			strconv.FormatUint(sm.AcquireP99Ns, 10),
			strconv.FormatUint(sm.ParkP50Ns, 10),
			strconv.FormatUint(sm.ParkP99Ns, 10),
			strconv.FormatUint(sm.HoldP50Ns, 10),
			strconv.FormatUint(sm.HoldP99Ns, 10),
			strconv.Itoa(len(sm.Anomalies)),
			csvQuote(topSite),
		}
		b.WriteString(strings.Join(cols, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// fmtFloat renders a rate with the shortest representation that
// round-trips, the same contract encoding/json uses.
func fmtFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// csvQuote quotes a field per RFC 4180 when it contains a delimiter,
// quote, or newline (site labels carry parentheses and colons, and VM
// labels could in principle carry anything).
func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Sparkline renders values as a unicode block-character strip (the
// terminal timeline of lockmon -scope), scaled to the series' own
// maximum. Zero-width input yields the empty string.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		if v < 0 {
			v = 0
		}
		i := 0
		if max > 0 {
			i = int(v / max * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[i])
	}
	return b.String()
}

// FormatSampleLine renders one sample as the single-line terminal form
// used by lockmon -scope.
func FormatSampleLine(sm Sample, spark string) string {
	line := fmt.Sprintf("lockscope: slow/s %.0f %s cas-fail %.1f%% park-p99 %s hold-p99 %s",
		sm.SlowPerSec, spark, 100*sm.CASFailRatio,
		fmtNs(sm.ParkP99Ns), fmtNs(sm.HoldP99Ns))
	if len(sm.Sites) > 0 {
		line += " top " + sm.Sites[0].Label
	}
	for _, a := range sm.Anomalies {
		line += fmt.Sprintf("  !! %s spike %.3g (baseline %.3g)", a.Metric, a.Value, a.Mean)
	}
	return line
}

// fmtNs renders a nanosecond value compactly.
func fmtNs(ns uint64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
