package lockscope

import "math"

// ewma tracks an exponentially weighted mean and variance of one
// metric, the baseline the anomaly detector judges each new window
// against. The variance EWMA uses the same smoothing factor (a standard
// EWMA control chart); sigma is floored at a fraction of the mean so a
// perfectly flat warmup cannot make any subsequent nonzero value an
// "infinite sigma" spike.
type ewma struct {
	n        int
	mean     float64
	variance float64
}

// observe scores x against the state accumulated so far, then folds x
// into the baseline. It reports anomalous only when the detector is
// past warmup, x clears the metric's absolute floor (minValue), and x
// sits more than sigmaK standard deviations above the mean — spikes
// only; contention falling off a cliff is good news, not an anomaly.
//
// The returned mean/sigma are the pre-update baseline (what the report
// shows the spike was judged against).
func (e *ewma) observe(x, alpha, sigmaK float64, warmup int, minValue float64) (score, mean, sigma float64, anomalous bool) {
	mean = e.mean
	sigma = math.Sqrt(e.variance)
	// Floors keep sigma nonzero after a flat (often all-idle) warmup:
	// without them the first nonzero window would divide by zero, and
	// with a pure epsilon every rounding wiggle would be a spike. The
	// minValue-derived floor scales the "meaningful change" to the
	// metric's own noise threshold.
	if floor := 0.1 * math.Abs(mean); sigma < floor {
		sigma = floor
	}
	if floor := 0.05 * minValue; sigma < floor {
		sigma = floor
	}
	if sigma > 0 {
		score = (x - mean) / sigma
	}
	anomalous = e.n >= warmup && x >= minValue && x > mean && score > sigmaK

	if e.n == 0 {
		e.mean = x
	} else {
		diff := x - e.mean
		incr := alpha * diff
		e.mean += incr
		e.variance = (1 - alpha) * (e.variance + diff*incr)
	}
	e.n++
	return score, mean, sigma, anomalous
}
