package lockscope_test

import (
	"strings"
	"testing"
	"time"

	"thinlock/internal/lockscope"
	"thinlock/internal/telemetry"
)

// fixtureSource drives a Scope deterministically: each call returns the
// next scripted cumulative state. The first call feeds New's baseline
// capture, so a script of N+1 states yields N windows.
type fixtureSource struct {
	states []fixtureState
	i      int
	nowNs  int64
}

type fixtureState struct {
	counters map[string]uint64
	stalls   []int64 // monitor_stall_ns observations since process start
	sites    []lockscope.SiteCount
}

func (f *fixtureSource) capture() (telemetry.Snapshot, []lockscope.SiteCount) {
	st := f.states[f.i]
	if f.i < len(f.states)-1 {
		f.i++
	}
	m := telemetry.New()
	for name, v := range st.counters {
		m.Add(nil, counterByName(name), v)
	}
	for _, ns := range st.stalls {
		m.Observe(nil, telemetry.HistMonitorStallNs, ns)
	}
	return m.Snapshot(), st.sites
}

// now advances the injected clock by 250ms per window.
func (f *fixtureSource) now() int64 {
	f.nowNs += 250e6
	return f.nowNs
}

func counterByName(name string) telemetry.Counter {
	for c := telemetry.Counter(0); c < telemetry.NumCounters; c++ {
		if c.Name() == name {
			return c
		}
	}
	panic("unknown counter " + name)
}

func newFixtureScope(t *testing.T, src *fixtureSource, cfg lockscope.Config) *lockscope.Scope {
	t.Helper()
	cfg.Source = src.capture
	cfg.NowNs = src.now
	return lockscope.New(cfg)
}

func TestSampleRatesAndQuantiles(t *testing.T) {
	t.Parallel()
	src := &fixtureSource{states: []fixtureState{
		{counters: map[string]uint64{"slow_path_entries": 0}},
		{
			// One 250ms window with 100 slow entries, 25 CAS failures,
			// 2 contention inflations, 1 deflation, 10 parks, and a
			// stall distribution.
			counters: map[string]uint64{
				"slow_path_entries":      100,
				"cas_failures":           25,
				"inflations_contention":  2,
				"deflations":             1,
				"queued_parks":           4,
				"monitor_contended_entries": 6,
			},
			stalls: []int64{
				10, 10, 10, 10, 10, 10, 10, 10, 10, // bucket [8,15]
				1000, // bucket [512,1023]
			},
			sites: []lockscope.SiteCount{
				{Label: "hot.site (a.go:1)", Kind: "go", SlowEntries: 60, DelayNs: 500},
				{Label: "warm.site (b.go:2)", Kind: "go", SlowEntries: 40, DelayNs: 100},
			},
		},
	}}
	sc := newFixtureScope(t, src, lockscope.Config{Interval: 250 * time.Millisecond})
	s := sc.ForceSample()

	if s.Index != 0 {
		t.Errorf("first sample index = %d, want 0", s.Index)
	}
	if s.WindowNs != 250e6 {
		t.Errorf("window = %dns, want 250ms", s.WindowNs)
	}
	if s.SlowPerSec != 400 { // 100 entries / 0.25s
		t.Errorf("slow/s = %v, want 400", s.SlowPerSec)
	}
	if s.CASFailPerSec != 100 {
		t.Errorf("casfail/s = %v, want 100", s.CASFailPerSec)
	}
	if s.CASFailRatio != 0.2 { // 25/(25+100)
		t.Errorf("cas ratio = %v, want 0.2", s.CASFailRatio)
	}
	if s.Inflations.Contention != 2 || s.Inflations.Total() != 2 {
		t.Errorf("inflations = %+v, want contention 2", s.Inflations)
	}
	if s.InflationsPerSec != 8 || s.DeflationsPerSec != 4 {
		t.Errorf("inflations/s deflations/s = %v/%v, want 8/4", s.InflationsPerSec, s.DeflationsPerSec)
	}
	if s.ParksPerSec != 40 { // (4+6)/0.25s
		t.Errorf("parks/s = %v, want 40", s.ParksPerSec)
	}
	if s.ParkP50Ns == 0 || s.ParkP50Ns > 15 {
		t.Errorf("park p50 = %d, want within bucket [8,15]", s.ParkP50Ns)
	}
	if s.ParkP99Ns < 512 || s.ParkP99Ns > 1023 {
		t.Errorf("park p99 = %d, want within bucket [512,1023]", s.ParkP99Ns)
	}
	if len(s.Sites) != 2 || s.Sites[0].Label != "hot.site (a.go:1)" || s.Sites[0].SlowEntries != 60 {
		t.Errorf("sites = %+v, want hot.site first with 60 entries", s.Sites)
	}

	// A second window with no new activity must read as all-idle even
	// though the cumulative counters are unchanged and nonzero.
	idle := sc.ForceSample()
	if idle.SlowPerSec != 0 || idle.CASFailRatio != 0 || len(idle.Sites) != 0 {
		t.Errorf("idle window not zero: %+v", idle)
	}
}

func TestRingRetainsNewestAndSince(t *testing.T) {
	t.Parallel()
	states := []fixtureState{{counters: map[string]uint64{}}}
	for i := 1; i <= 10; i++ {
		states = append(states, fixtureState{
			counters: map[string]uint64{"slow_path_entries": uint64(10 * i)},
		})
	}
	src := &fixtureSource{states: states}
	sc := newFixtureScope(t, src, lockscope.Config{Capacity: 4})
	for i := 0; i < 10; i++ {
		sc.ForceSample()
	}
	series := sc.Series(0)
	if len(series.Samples) != 4 {
		t.Fatalf("ring retained %d samples, want capacity 4", len(series.Samples))
	}
	for i, s := range series.Samples {
		if want := uint64(6 + i); s.Index != want {
			t.Errorf("sample %d index = %d, want %d (newest four, oldest first)", i, s.Index, want)
		}
	}
	if got := sc.Series(2).Samples; len(got) != 2 || got[1].Index != 9 {
		t.Errorf("Series(2) = %d samples ending %d, want 2 ending 9", len(got), got[len(got)-1].Index)
	}
	since := sc.Since(7)
	if len(since) != 2 || since[0].Index != 8 || since[1].Index != 9 {
		t.Errorf("Since(7) indices wrong: %+v", since)
	}
}

// TestAnomalyDetectorFlagsInjectedSpike is the acceptance-criteria
// detector test: a steady contention baseline, then one window whose
// CAS-failure ratio and park p99 both spike, must be flagged with the
// responsible sites attached; the quiet windows must not be.
func TestAnomalyDetectorFlagsInjectedSpike(t *testing.T) {
	t.Parallel()
	var states []fixtureState
	var slow, fail uint64
	var stalls []int64
	states = append(states, fixtureState{counters: map[string]uint64{}})
	// 8 baseline windows: 2% CAS-failure ratio, stalls ~1ms.
	for i := 0; i < 8; i++ {
		slow += 98
		fail += 2
		stalls = append(stalls, 1e6, 1e6, 1e6, 1e6)
		states = append(states, fixtureState{
			counters: map[string]uint64{"slow_path_entries": slow, "cas_failures": fail},
			stalls:   append([]int64(nil), stalls...),
		})
	}
	// Spike window: 60% failure ratio and ~100ms stalls.
	slow += 40
	fail += 60
	stalls = append(stalls, 100e6, 100e6, 100e6, 100e6)
	states = append(states, fixtureState{
		counters: map[string]uint64{"slow_path_entries": slow, "cas_failures": fail},
		stalls:   append([]int64(nil), stalls...),
		sites: []lockscope.SiteCount{
			{Label: "spike.culprit (hot.go:7)", Kind: "go", SlowEntries: 40, CASFailures: 60},
		},
	})
	src := &fixtureSource{states: states}
	sc := newFixtureScope(t, src, lockscope.Config{})

	var flagged []lockscope.Anomaly
	for i := 0; i < 9; i++ {
		s := sc.ForceSample()
		if i < 8 && len(s.Anomalies) != 0 {
			t.Errorf("baseline window %d flagged: %+v", i, s.Anomalies)
		}
		flagged = append(flagged, s.Anomalies...)
	}
	byMetric := map[string]lockscope.Anomaly{}
	for _, a := range flagged {
		byMetric[a.Metric] = a
	}
	cas, ok := byMetric[lockscope.MetricCASFailRatio]
	if !ok {
		t.Fatalf("CAS-failure spike not flagged (got %+v)", flagged)
	}
	if cas.Value < 0.5 || cas.Score <= 0 {
		t.Errorf("cas anomaly = %+v, want value ~0.6 and positive score", cas)
	}
	if len(cas.Sites) == 0 || !strings.Contains(cas.Sites[0], "spike.culprit") {
		t.Errorf("cas anomaly sites = %v, want the culprit site", cas.Sites)
	}
	if _, ok := byMetric[lockscope.MetricParkP99]; !ok {
		t.Errorf("park-p99 spike not flagged (got %+v)", flagged)
	}
	// The anomaly log in the series must carry the same record.
	series := sc.Series(0)
	if len(series.Anomalies) != len(flagged) {
		t.Errorf("series anomaly log has %d entries, want %d", len(series.Anomalies), len(flagged))
	}
}

func TestSubscribeDeliversPublishedWindows(t *testing.T) {
	t.Parallel()
	src := &fixtureSource{states: []fixtureState{
		{counters: map[string]uint64{}},
		{counters: map[string]uint64{"slow_path_entries": 50}},
	}}
	sc := newFixtureScope(t, src, lockscope.Config{})
	ch, cancel := sc.Subscribe()
	sc.ForceSample()
	select {
	case u := <-ch:
		if u.Sample.Index != 0 || u.Sample.SlowPerSec != 200 {
			t.Errorf("update = %+v, want index 0 at 200 slow/s", u.Sample)
		}
	case <-time.After(time.Second):
		t.Fatal("no update delivered")
	}
	cancel()
	if _, open := <-ch; open {
		t.Error("channel not closed after cancel")
	}
	// A second cancel is a no-op, and sampling after cancel must not
	// panic on the closed channel.
	cancel()
	sc.ForceSample()
}

// TestBackgroundSamplerPublishes exercises Start/Stop with the real
// clock: the default source against the installed global telemetry.
// Not parallel: owns the global telemetry registration.
func TestBackgroundSamplerPublishes(t *testing.T) {
	m := telemetry.Enable(telemetry.New())
	defer telemetry.Disable()
	sc := lockscope.Enable(lockscope.New(lockscope.Config{Interval: 5 * time.Millisecond}))
	defer lockscope.Disable()
	sc.Start()
	defer sc.Stop()

	m.Add(nil, telemetry.CtrSlowPathEntries, 1000)
	deadline := time.After(3 * time.Second)
	for {
		series := sc.Series(0)
		if len(series.Samples) >= 2 {
			var nonzero int
			for _, s := range series.Samples {
				if s.SlowPerSec > 0 {
					nonzero++
				}
			}
			if nonzero >= 1 {
				break
			}
		}
		select {
		case <-deadline:
			t.Fatalf("sampler published %d samples, want >=2 with activity", len(series.Samples))
		case <-time.After(5 * time.Millisecond):
		}
	}
	sc.Stop()
	// Stop twice is a no-op; the ring stays readable.
	if len(sc.Series(0).Samples) == 0 {
		t.Error("series unreadable after Stop")
	}
}

func TestSparkline(t *testing.T) {
	t.Parallel()
	if got := lockscope.Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	got := lockscope.Sparkline([]float64{0, 1, 2, 4})
	if want := "▁▂▄█"; got != want {
		t.Errorf("sparkline = %q, want %q", got, want)
	}
	if got := lockscope.Sparkline([]float64{0, 0}); got != "▁▁" {
		t.Errorf("flat sparkline = %q, want lowest blocks", got)
	}
}
