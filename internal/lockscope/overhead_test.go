package lockscope_test

// Overhead contract for the time-series sampler (see the lockscope
// package comment): lockscope adds no hook to any lock path — the
// sampler reads the sharded telemetry cells from its own goroutine —
// so the lock fast and slow paths must stay allocation-free whether the
// scope is disabled, enabled, or actively sampling. The disabled-path
// cost of the package is the single atomic load in Enabled().

import (
	"testing"
	"time"

	"thinlock/internal/core"
	"thinlock/internal/lockscope"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

type lockFixture struct {
	l  *core.ThinLocks
	th *threading.Thread
	o  *object.Object
}

func newLockFixture(t testing.TB) *lockFixture {
	t.Helper()
	f := &lockFixture{l: core.NewDefault()}
	th, err := threading.NewRegistry().Attach("bench")
	if err != nil {
		t.Fatal(err)
	}
	f.th = th
	f.o = object.NewHeap().New("Object")
	return f
}

func cycles(t *testing.T, f *lockFixture, what string) {
	t.Helper()
	if allocs := testing.AllocsPerRun(100, func() {
		f.l.Lock(f.th, f.o)
		f.l.Unlock(f.th, f.o)
	}); allocs != 0 {
		t.Errorf("%s: fast path allocates %.1f objects per op", what, allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		f.l.Lock(f.th, f.o)
		f.l.Lock(f.th, f.o)
		f.l.Unlock(f.th, f.o)
		f.l.Unlock(f.th, f.o)
	}); allocs != 0 {
		t.Errorf("%s: nested slow path allocates %.1f objects per op", what, allocs)
	}
}

// Not parallel: owns the global scope and telemetry registrations.
func TestDisabledScopeDoesNotAllocate(t *testing.T) {
	lockscope.Disable()
	telemetry.Disable()
	f := newLockFixture(t)
	cycles(t, f, "scope disabled")
	if lockscope.Enabled() {
		t.Fatal("scope unexpectedly enabled")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if lockscope.Enabled() {
			t.Fatal("scope unexpectedly enabled")
		}
	}); allocs != 0 {
		t.Errorf("Enabled() check allocates %.1f objects", allocs)
	}
}

// Not parallel: owns the global scope and telemetry registrations. An
// actively sampling scope must leave the lock paths allocation-free:
// all its work happens on the sampler goroutine.
func TestEnabledScopeKeepsLockPathsAllocationFree(t *testing.T) {
	telemetry.Enable(telemetry.New())
	defer telemetry.Disable()
	sc := lockscope.Enable(lockscope.New(lockscope.Config{Interval: time.Millisecond}))
	defer lockscope.Disable()
	sc.Start()
	defer sc.Stop()
	f := newLockFixture(t)
	cycles(t, f, "scope sampling")
}
