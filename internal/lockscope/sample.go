package lockscope

import (
	"sort"

	"thinlock/internal/telemetry"
)

// Metric names used by the anomaly detector and exports.
const (
	MetricCASFailRatio = "cas_fail_ratio"
	MetricParkP99      = "park_p99_ns"
)

// SiteSample is one site's activity inside a single window (deltas, not
// cumulative totals).
type SiteSample struct {
	Label       string `json:"label"`
	Kind        string `json:"kind"`
	SlowEntries uint64 `json:"slow_entries"`
	CASFailures uint64 `json:"cas_failures,omitempty"`
	ParkNs      uint64 `json:"park_ns,omitempty"`
	DelayNs     uint64 `json:"delay_ns,omitempty"`
}

// InflationDeltas is the per-cause inflation count inside one window.
type InflationDeltas struct {
	Contention uint64 `json:"contention"`
	Overflow   uint64 `json:"overflow"`
	Wait       uint64 `json:"wait"`
}

// Total sums the causes.
func (d InflationDeltas) Total() uint64 { return d.Contention + d.Overflow + d.Wait }

// Sample is one published window: rates per second derived from counter
// deltas, percentiles derived from histogram-bucket deltas, and the
// top-K sites active in the window. Samples are immutable once
// published; field order is the canonical JSON/CSV column order.
type Sample struct {
	// Index is the sample's position in the scope's lifetime (0-based,
	// monotonic; the ring retains the newest Capacity of them).
	Index uint64 `json:"index"`
	// AtNs is the window's end, in monotonic nanoseconds since process
	// start (telemetry.Now).
	AtNs int64 `json:"at_ns"`
	// WindowNs is the measured window duration (nominally the sampling
	// interval; ForceSample cuts shorter windows).
	WindowNs int64 `json:"window_ns"`

	// SlowPerSec is the slow-path entry rate.
	SlowPerSec float64 `json:"slow_per_sec"`
	// CASFailPerSec is the lock-word CAS retry rate.
	CASFailPerSec float64 `json:"cas_fail_per_sec"`
	// CASFailRatio is failed CAS attempts over all slow-path CAS
	// attempts in the window, failures/(failures+entries) — bounded
	// [0,1), rising toward 1 as the lock word thrashes.
	CASFailRatio float64 `json:"cas_fail_ratio"`
	// Inflations are the window's inflation counts by cause.
	Inflations InflationDeltas `json:"inflations"`
	// InflationsPerSec is the total inflation rate.
	InflationsPerSec float64 `json:"inflations_per_sec"`
	// DeflationsPerSec is the monitor deflation rate.
	DeflationsPerSec float64 `json:"deflations_per_sec"`
	// ParksPerSec is the rate of contenders blocking (queued parks plus
	// monitor contended entries).
	ParksPerSec float64 `json:"parks_per_sec"`

	// AcquireP50Ns/AcquireP99Ns are slow-path acquisition latency
	// percentiles over this window's observations only (histogram
	// deltas, interpolated — see telemetry.HistSnapshot.Quantile).
	AcquireP50Ns uint64 `json:"acquire_p50_ns"`
	AcquireP99Ns uint64 `json:"acquire_p99_ns"`
	// ParkP50Ns/ParkP99Ns are monitor entry-queue stall percentiles
	// over this window.
	ParkP50Ns uint64 `json:"park_p50_ns"`
	ParkP99Ns uint64 `json:"park_p99_ns"`
	// HoldP50Ns/HoldP99Ns are sampled contended hold-time percentiles
	// over this window (populated while lockprof is enabled).
	HoldP50Ns uint64 `json:"hold_p50_ns"`
	HoldP99Ns uint64 `json:"hold_p99_ns"`

	// Sites are the top-K sites by slow entries in this window,
	// descending, ties broken by delay then label.
	Sites []SiteSample `json:"sites,omitempty"`
	// Anomalies flagged at this window, if any.
	Anomalies []Anomaly `json:"anomalies,omitempty"`
}

// Anomaly is one detector firing: metric's value left the EWMA band.
type Anomaly struct {
	// Index/AtNs locate the window that fired.
	Index uint64 `json:"index"`
	AtNs  int64  `json:"at_ns"`
	// Metric is MetricCASFailRatio or MetricParkP99.
	Metric string `json:"metric"`
	// Value is the window's observed value; Mean and Sigma are the
	// EWMA baseline it was judged against (state *before* this window).
	Value float64 `json:"value"`
	Mean  float64 `json:"mean"`
	Sigma float64 `json:"sigma"`
	// Score is (Value-Mean)/Sigma.
	Score float64 `json:"score"`
	// Sites are the labels of the window's top sites — the likely
	// culprits.
	Sites []string `json:"sites,omitempty"`
}

// Series is a bounded slice of history: what /debug/lockscope/series
// returns and what the future policy engine will consume.
type Series struct {
	// IntervalNs is the nominal sampling cadence.
	IntervalNs int64 `json:"interval_ns"`
	// Capacity is the ring size (max retained samples).
	Capacity int `json:"capacity"`
	// Samples are oldest first.
	Samples []Sample `json:"samples"`
	// Anomalies is the retained anomaly log, oldest first.
	Anomalies []Anomaly `json:"anomalies"`
}

// derive turns one window's telemetry delta and site deltas into a
// Sample (Index and Anomalies are filled by the caller).
func derive(d telemetry.Snapshot, sites []SiteCount, atNs, windowNs int64, topK int) Sample {
	perSec := func(n uint64) float64 {
		return float64(n) / (float64(windowNs) / 1e9)
	}
	slow := d.Counter("slow_path_entries")
	casFail := d.Counter("cas_failures")
	s := Sample{
		AtNs:          atNs,
		WindowNs:      windowNs,
		SlowPerSec:    perSec(slow),
		CASFailPerSec: perSec(casFail),
		Inflations: InflationDeltas{
			Contention: d.Counter("inflations_contention"),
			Overflow:   d.Counter("inflations_overflow"),
			Wait:       d.Counter("inflations_wait"),
		},
		DeflationsPerSec: perSec(d.Counter("deflations")),
		ParksPerSec:      perSec(d.Counter("queued_parks") + d.Counter("monitor_contended_entries")),
	}
	if casFail+slow > 0 {
		s.CASFailRatio = float64(casFail) / float64(casFail+slow)
	}
	s.InflationsPerSec = perSec(s.Inflations.Total())

	quant := func(name string) (p50, p99 uint64) {
		h := d.Histograms[name]
		return h.Quantile(0.5), h.Quantile(0.99)
	}
	s.AcquireP50Ns, s.AcquireP99Ns = quant("acquire_slow_ns")
	s.ParkP50Ns, s.ParkP99Ns = quant("monitor_stall_ns")
	s.HoldP50Ns, s.HoldP99Ns = quant("hold_ns")

	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.SlowEntries != b.SlowEntries {
			return a.SlowEntries > b.SlowEntries
		}
		if a.DelayNs != b.DelayNs {
			return a.DelayNs > b.DelayNs
		}
		return a.Label < b.Label
	})
	if len(sites) > topK {
		sites = sites[:topK]
	}
	for _, sc := range sites {
		s.Sites = append(s.Sites, SiteSample{
			Label:       sc.Label,
			Kind:        sc.Kind,
			SlowEntries: sc.SlowEntries,
			CASFailures: sc.CASFailures,
			ParkNs:      sc.ParkNs,
			DelayNs:     sc.DelayNs,
		})
	}
	return s
}
