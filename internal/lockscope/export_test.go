package lockscope_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"thinlock/internal/lockscope"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current encoder output")

// goldenSeries is a fixed fixture covering the encoder edge cases: a
// busy window with sites and an anomaly, an idle all-zero window, and a
// site label containing a comma (CSV quoting).
func goldenSeries() lockscope.Series {
	return lockscope.Series{
		IntervalNs: 250e6,
		Capacity:   256,
		Samples: []lockscope.Sample{
			{
				Index: 41, AtNs: 10_250_000_000, WindowNs: 250_000_000,
				SlowPerSec: 400, CASFailPerSec: 100, CASFailRatio: 0.2,
				Inflations:       lockscope.InflationDeltas{Contention: 2, Wait: 1},
				InflationsPerSec: 12, DeflationsPerSec: 4, ParksPerSec: 40,
				AcquireP50Ns: 812, AcquireP99Ns: 14_890,
				ParkP50Ns: 1_048_000, ParkP99Ns: 9_400_000,
				HoldP50Ns: 2_100, HoldP99Ns: 88_000,
				Sites: []lockscope.SiteSample{
					{Label: "bank.transfer (bank.go:71)", Kind: "go", SlowEntries: 60, CASFailures: 15, ParkNs: 5_000_000, DelayNs: 9_000_000},
					{Label: "weird,label (gen.go:3)", Kind: "vm", SlowEntries: 40, CASFailures: 10, ParkNs: 1_000_000, DelayNs: 2_000_000},
				},
				Anomalies: []lockscope.Anomaly{{
					Index: 41, AtNs: 10_250_000_000,
					Metric: lockscope.MetricCASFailRatio,
					Value:  0.2, Mean: 0.02, Sigma: 0.0025, Score: 72,
					Sites: []string{"bank.transfer (bank.go:71)"},
				}},
			},
			{Index: 42, AtNs: 10_500_000_000, WindowNs: 250_000_000},
		},
		Anomalies: []lockscope.Anomaly{{
			Index: 41, AtNs: 10_250_000_000,
			Metric: lockscope.MetricCASFailRatio,
			Value:  0.2, Mean: 0.02, Sigma: 0.0025, Score: 72,
			Sites: []string{"bank.transfer (bank.go:71)"},
		}},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (run with -update after intentional changes)\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := goldenSeries().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.Bytes()
	checkGolden(t, "series.golden.json", first)
	// Byte-identical across runs.
	var again bytes.Buffer
	if err := goldenSeries().WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Error("JSON encoding not deterministic across runs")
	}
}

func TestWriteCSVGolden(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := goldenSeries().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.Bytes()
	checkGolden(t, "series.golden.csv", first)
	var again bytes.Buffer
	if err := goldenSeries().WriteCSV(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Error("CSV encoding not deterministic across runs")
	}
}
