// Package lockscope is the continuous time-series layer of the
// observability stack: a background sampler that, at a fixed cadence,
// captures the cumulative telemetry counters and the profiler's
// per-site totals, differences them against the previous capture, and
// publishes one windowed Sample — per-second rates, CAS-failure ratio,
// inflation/deflation deltas by cause, acquire/park/hold percentiles
// computed from histogram *deltas*, and the top-K sites active in the
// window — into a fixed-capacity ring that readers (the /debug
// endpoints, lockmon -scope, macrobench timelines) consume without
// blocking the writer.
//
// Everything upstream of this package is cumulative: telemetry answers
// "how much since process start", lockprof answers "where since process
// start". Neither can answer "is contention rising right now, and
// where?" — the question the adaptive spin/park and per-site policy
// work (ROADMAP items 2 and 4) needs answered continuously. The Series
// this package exports is deliberately shaped as that input feed: a
// bounded history of windowed rates plus an EWMA-based anomaly log that
// names the sites responsible for CAS-failure-ratio and park-p99
// spikes.
//
// Overhead contract, same discipline as telemetry/lockprof/lockdep:
// lockscope adds no hook to any lock path at all — the sampler reads
// the already-sharded telemetry cells from its own goroutine, entirely
// off the critical path. Enabled() is one atomic load; with the scope
// disabled (or enabled) the lock fast and slow paths stay exactly as
// allocation-free as they were, enforced by overhead_test.go.
//
// Dependency note: lockprof serves this package's HTTP endpoints, so
// lockscope must not import lockprof. Per-site counts arrive through
// the SiteSource hook, which lockprof installs from an init.
package lockscope

import (
	"sync"
	"sync/atomic"
	"time"

	"thinlock/internal/telemetry"
)

// Defaults for Config fields left zero.
const (
	DefaultInterval = 250 * time.Millisecond
	DefaultCapacity = 256
	DefaultTopK     = 5
	DefaultAlpha    = 0.25
	DefaultSigma    = 4.0
	DefaultWarmup   = 5
)

// anomalyCapacity bounds the anomaly ring. Anomalies are rare by
// construction (a spike resets the EWMA baseline), so a small ring
// holds far more history than the sample ring it annotates.
const anomalyCapacity = 64

// SiteCount is one site's cumulative contention counters, as supplied
// by the installed SiteSource (internal/lockprof in production). The
// sampler differences consecutive captures keyed by (Label, Kind) to
// derive per-window site activity.
type SiteCount struct {
	Label       string
	Kind        string
	SlowEntries uint64
	CASFailures uint64
	ParkNs      uint64
	DelayNs     uint64
}

// siteSource supplies cumulative per-site counters; nil slices are fine
// (site timelines simply stay empty). Installed once by lockprof's
// init, read per tick.
var siteSource atomic.Pointer[func() []SiteCount]

// SetSiteSource installs the cumulative per-site counter supplier.
func SetSiteSource(f func() []SiteCount) {
	siteSource.Store(&f)
}

// defaultSource captures the globally installed telemetry snapshot and
// the installed site source's counts. With telemetry disabled the
// snapshot is empty and every derived rate is zero.
func defaultSource() (telemetry.Snapshot, []SiteCount) {
	var snap telemetry.Snapshot
	if m := telemetry.Active(); m != nil {
		snap = m.Snapshot()
	}
	var sites []SiteCount
	if f := siteSource.Load(); f != nil && *f != nil {
		sites = (*f)()
	}
	return snap, sites
}

// Config configures a Scope.
type Config struct {
	// Interval is the sampling cadence (default 250ms).
	Interval time.Duration
	// Capacity is the sample ring size in windows (default 256, 64s of
	// history at the default cadence).
	Capacity int
	// TopK is how many sites each sample's timeline keeps (default 5).
	TopK int
	// Alpha is the EWMA smoothing factor of the anomaly detector
	// (default 0.25).
	Alpha float64
	// Sigma is the anomaly threshold in EWMA standard deviations
	// (default 4).
	Sigma float64
	// Warmup is how many windows the detector observes before it may
	// flag (default 5).
	Warmup int
	// Source overrides the capture of cumulative state; nil reads the
	// globally installed telemetry and the SiteSource hook. Tests
	// inject fixtures here.
	Source func() (telemetry.Snapshot, []SiteCount)
	// NowNs overrides the monotonic clock; nil uses telemetry.Now.
	NowNs func() int64
}

// Scope is one running time-series sampler. Create with New, install
// globally with Enable, start the background cadence with Start (or
// drive windows manually with ForceSample). Readers — Series, Since,
// Subscribe — never block the sampler: published samples are immutable
// and reached through atomic pointers.
type Scope struct {
	interval time.Duration
	capacity int
	topK     int
	source   func() (telemetry.Snapshot, []SiteCount)
	nowNs    func() int64

	// ring holds the published samples; head is the count of samples
	// ever published, so sample i lives in ring[i%capacity]. Readers
	// validate Sample.Index after the load, which makes a concurrent
	// wrap-around harmless (the stale slot is simply discarded).
	ring []atomic.Pointer[Sample]
	head atomic.Uint64

	anomalies [anomalyCapacity]atomic.Pointer[Anomaly]
	anHead    atomic.Uint64

	// mu serializes writers only (the ticker goroutine and ForceSample
	// callers); it is never taken on any lock path or by readers.
	mu        sync.Mutex
	prevTel   telemetry.Snapshot
	prevSites map[siteKey]SiteCount
	prevNs    int64
	casDet    ewma
	parkDet   ewma
	alpha     float64
	sigma     float64
	warmup    int

	subMu  sync.Mutex
	subs   map[int]chan Update
	nextID int

	stop chan struct{}
	done chan struct{}
}

type siteKey struct{ label, kind string }

// Update is one published window, delivered to Subscribe channels.
type Update struct {
	Sample Sample
	// Anomalies are the anomalies flagged at this window (usually
	// none); they are also embedded in Sample.Anomalies.
	Anomalies []Anomaly
}

// New returns a Scope and takes the baseline capture: the first sample
// windows from here.
func New(cfg Config) *Scope {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.TopK <= 0 {
		cfg.TopK = DefaultTopK
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = DefaultAlpha
	}
	if cfg.Sigma <= 0 {
		cfg.Sigma = DefaultSigma
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = DefaultWarmup
	}
	if cfg.Source == nil {
		cfg.Source = defaultSource
	}
	if cfg.NowNs == nil {
		cfg.NowNs = telemetry.Now
	}
	s := &Scope{
		interval: cfg.Interval,
		capacity: cfg.Capacity,
		topK:     cfg.TopK,
		source:   cfg.Source,
		nowNs:    cfg.NowNs,
		ring:     make([]atomic.Pointer[Sample], cfg.Capacity),
		alpha:    cfg.Alpha,
		sigma:    cfg.Sigma,
		warmup:   cfg.Warmup,
		subs:     make(map[int]chan Update),
	}
	tel, sites := s.source()
	s.prevTel = tel
	s.prevSites = indexSites(sites)
	s.prevNs = s.nowNs()
	return s
}

// Interval returns the configured sampling cadence.
func (s *Scope) Interval() time.Duration { return s.interval }

// Capacity returns the sample ring size in windows.
func (s *Scope) Capacity() int { return s.capacity }

// Start launches the background sampler goroutine. Start after Enable
// and Stop before Disable; starting twice panics.
func (s *Scope) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		panic("lockscope: Start called twice")
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				s.ForceSample()
			}
		}
	}(s.stop, s.done)
}

// Stop halts the background sampler (no-op if never started). The ring
// and its history remain readable.
func (s *Scope) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// ForceSample captures one window immediately — the boundary between
// the previous capture and now — publishes it, and returns it. The
// background cadence uses it for every tick; macrobench uses it to
// close a phase at an exact boundary; tests use it to drive windows
// deterministically.
func (s *Scope) ForceSample() Sample {
	s.mu.Lock()
	tel, sites := s.source()
	now := s.nowNs()
	win := now - s.prevNs
	if win <= 0 {
		win = 1
	}
	cur := indexSites(sites)
	sample := derive(tel.Delta(s.prevTel), diffSites(cur, s.prevSites), now, win, s.topK)
	sample.Index = s.head.Load()
	s.prevTel = tel
	s.prevSites = cur
	s.prevNs = now

	fired := s.detect(&sample)
	sample.Anomalies = fired

	// Publish: store the immutable sample, then advance head so readers
	// never see an index without its slot filled.
	sp := new(Sample)
	*sp = sample
	s.ring[sample.Index%uint64(s.capacity)].Store(sp)
	s.head.Add(1)
	for i := range fired {
		a := new(Anomaly)
		*a = fired[i]
		s.anomalies[s.anHead.Load()%anomalyCapacity].Store(a)
		s.anHead.Add(1)
	}
	s.mu.Unlock()

	s.publish(Update{Sample: sample, Anomalies: fired})
	return sample
}

// detect runs the EWMA anomaly detectors against the freshly derived
// sample and returns any anomalies fired this window. Called with mu
// held.
func (s *Scope) detect(sample *Sample) []Anomaly {
	var fired []Anomaly
	for _, d := range []struct {
		det      *ewma
		metric   string
		value    float64
		minValue float64
	}{
		// A CAS-failure ratio below 5% is normal optimistic-retry
		// noise; park p99 under 10µs is scheduler jitter, not a stall.
		{&s.casDet, MetricCASFailRatio, sample.CASFailRatio, 0.05},
		{&s.parkDet, MetricParkP99, float64(sample.ParkP99Ns), 10_000},
	} {
		score, mean, sigma, anomalous := d.det.observe(d.value, s.alpha, s.sigma, s.warmup, d.minValue)
		if !anomalous {
			continue
		}
		a := Anomaly{
			Index:  sample.Index,
			AtNs:   sample.AtNs,
			Metric: d.metric,
			Value:  d.value,
			Mean:   mean,
			Sigma:  sigma,
			Score:  score,
		}
		for _, st := range sample.Sites {
			a.Sites = append(a.Sites, st.Label)
		}
		fired = append(fired, a)
	}
	return fired
}

// Series returns the newest n samples (all retained history if n <= 0)
// oldest first, plus the retained anomaly log. Reads are lock-free:
// samples are immutable once published and a slot overwritten by a
// concurrent wrap is detected by its Index and skipped.
func (s *Scope) Series(n int) Series {
	out := Series{
		IntervalNs: int64(s.interval),
		Capacity:   s.capacity,
		Samples:    s.collect(n, 0),
	}
	h := s.anHead.Load()
	lo := uint64(0)
	if h > anomalyCapacity {
		lo = h - anomalyCapacity
	}
	for i := lo; i < h; i++ {
		if a := s.anomalies[i%anomalyCapacity].Load(); a != nil && a.Index >= lo {
			out.Anomalies = append(out.Anomalies, *a)
		}
	}
	return out
}

// Since returns every retained sample with Index > after, oldest first
// (macrobench's phase cut).
func (s *Scope) Since(after uint64) []Sample {
	return s.collect(0, after+1)
}

// collect gathers up to n newest samples with Index >= min.
func (s *Scope) collect(n int, min uint64) []Sample {
	h := s.head.Load()
	lo := uint64(0)
	if h > uint64(s.capacity) {
		lo = h - uint64(s.capacity)
	}
	if lo < min {
		lo = min
	}
	if n > 0 && h-lo > uint64(n) {
		lo = h - uint64(n)
	}
	if lo >= h {
		return nil
	}
	out := make([]Sample, 0, h-lo)
	for i := lo; i < h; i++ {
		sp := s.ring[i%uint64(s.capacity)].Load()
		if sp == nil || sp.Index != i {
			continue // overwritten by a concurrent wrap
		}
		out = append(out, *sp)
	}
	return out
}

// Subscribe returns a channel of published windows and a cancel
// function. Delivery is best-effort: a subscriber that falls more than
// a small buffer behind misses windows rather than stalling the
// sampler.
func (s *Scope) Subscribe() (<-chan Update, func()) {
	ch := make(chan Update, 16)
	s.subMu.Lock()
	id := s.nextID
	s.nextID++
	s.subs[id] = ch
	s.subMu.Unlock()
	return ch, func() {
		s.subMu.Lock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(ch)
		}
		s.subMu.Unlock()
	}
}

// publish fans an update out to subscribers, dropping on full buffers.
func (s *Scope) publish(u Update) {
	s.subMu.Lock()
	for _, ch := range s.subs {
		select {
		case ch <- u:
		default:
		}
	}
	s.subMu.Unlock()
}

// indexSites keys cumulative site counts for differencing.
func indexSites(sites []SiteCount) map[siteKey]SiteCount {
	if len(sites) == 0 {
		return nil
	}
	m := make(map[siteKey]SiteCount, len(sites))
	for _, sc := range sites {
		k := siteKey{sc.Label, sc.Kind}
		// Duplicate labels (shouldn't happen post-merge) sum.
		agg := m[k]
		agg.Label, agg.Kind = sc.Label, sc.Kind
		agg.SlowEntries += sc.SlowEntries
		agg.CASFailures += sc.CASFailures
		agg.ParkNs += sc.ParkNs
		agg.DelayNs += sc.DelayNs
		m[k] = agg
	}
	return m
}

// diffSites returns the per-window site deltas (cur minus prev,
// clamped at zero for counters that reset).
func diffSites(cur, prev map[siteKey]SiteCount) []SiteCount {
	if len(cur) == 0 {
		return nil
	}
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	out := make([]SiteCount, 0, len(cur))
	for k, c := range cur {
		p := prev[k]
		d := SiteCount{
			Label:       c.Label,
			Kind:        c.Kind,
			SlowEntries: sub(c.SlowEntries, p.SlowEntries),
			CASFailures: sub(c.CASFailures, p.CASFailures),
			ParkNs:      sub(c.ParkNs, p.ParkNs),
			DelayNs:     sub(c.DelayNs, p.DelayNs),
		}
		if d.SlowEntries == 0 && d.CASFailures == 0 && d.ParkNs == 0 && d.DelayNs == 0 {
			continue
		}
		out = append(out, d)
	}
	return out
}

// active is the globally installed Scope the endpoints and CLIs read.
var active atomic.Pointer[Scope]

// Enable installs s as the global scope (nil disables) and returns s.
func Enable(s *Scope) *Scope {
	active.Store(s)
	return s
}

// Disable uninstalls the global scope. The caller owns stopping it.
func Disable() { active.Store(nil) }

// Active returns the installed Scope, or nil when disabled.
//
//lockvet:noalloc
func Active() *Scope { return active.Load() }

// Enabled reports whether a global Scope is installed — one atomic
// load, the whole disabled-path cost of this package.
//
//lockvet:noalloc
func Enabled() bool { return active.Load() != nil }
