package lockscope

// DashboardHTML is the self-contained live dashboard served at
// /debug/lockscope/. No external assets, fonts or libraries: one page
// of inline CSS and JS that subscribes to /debug/lockscope/stream
// (falling back to polling /debug/lockscope/series when SSE is
// unavailable) and renders stat tiles with canvas sparklines, the
// current top-site table, and the anomaly log.
//
// Note for maintainers: this string is a Go raw literal, so the
// embedded JavaScript must not use backtick template literals.
const DashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>lockscope — live lock contention</title>
<style>
  :root {
    color-scheme: light dark;
    --surface-1: #fcfcfb; --surface-2: #f0efec;
    --text-primary: #0b0b0b; --text-secondary: #52514e;
    --series-slow: #2a78d6;   /* blue: slow-path rate */
    --series-cas: #eb6834;    /* orange: CAS-failure ratio */
    --series-park: #1baf7a;   /* aqua: park p99 */
    --status-serious: #e34948;
    --grid: #d8d7d2;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      --surface-1: #1a1a19; --surface-2: #262624;
      --text-primary: #ffffff; --text-secondary: #c3c2b7;
      --series-slow: #3987e5;
      --series-cas: #d95926;
      --series-park: #199e70;
      --status-serious: #e66767;
      --grid: #3a3a37;
    }
  }
  body { margin: 0; background: var(--surface-1); color: var(--text-primary);
         font: 14px/1.5 system-ui, sans-serif; padding: 20px; }
  h1 { font-size: 18px; margin: 0 0 2px; }
  .sub { color: var(--text-secondary); font-size: 12px; margin-bottom: 16px; }
  .sub .dot { display: inline-block; width: 8px; height: 8px; border-radius: 50%;
              background: var(--series-park); margin-right: 4px; }
  .sub.stale .dot { background: var(--status-serious); }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
  .tile { background: var(--surface-2); border-radius: 8px; padding: 12px 14px;
          min-width: 180px; flex: 1 1 180px; }
  .tile .label { color: var(--text-secondary); font-size: 12px; }
  .tile .value { font-size: 24px; font-variant-numeric: tabular-nums; margin: 2px 0 6px; }
  .tile canvas { display: block; width: 100%; height: 36px; }
  .tile .hover { color: var(--text-secondary); font-size: 11px; min-height: 14px;
                 font-variant-numeric: tabular-nums; }
  h2 { font-size: 14px; margin: 18px 0 6px; }
  table { border-collapse: collapse; width: 100%; font-variant-numeric: tabular-nums; }
  th, td { text-align: left; padding: 3px 10px 3px 0; border-bottom: 1px solid var(--grid);
           font-size: 13px; }
  th { color: var(--text-secondary); font-weight: 500; font-size: 12px; }
  td.num, th.num { text-align: right; }
  #anomalies li { margin: 2px 0; font-size: 13px; }
  #anomalies .flag { color: var(--status-serious); font-weight: 600; }
  #anomalies .when, .muted { color: var(--text-secondary); }
</style>
</head>
<body>
<h1>lockscope — live lock contention</h1>
<div class="sub" id="status"><span class="dot"></span><span id="statustext">connecting…</span></div>

<div class="tiles">
  <div class="tile" data-metric="slow_per_sec" data-color="--series-slow" data-fmt="rate">
    <div class="label">slow-path entries / s</div>
    <div class="value">–</div><canvas></canvas><div class="hover"></div>
  </div>
  <div class="tile" data-metric="cas_fail_ratio" data-color="--series-cas" data-fmt="pct">
    <div class="label">CAS-failure ratio</div>
    <div class="value">–</div><canvas></canvas><div class="hover"></div>
  </div>
  <div class="tile" data-metric="park_p99_ns" data-color="--series-park" data-fmt="ns">
    <div class="label">park p99</div>
    <div class="value">–</div><canvas></canvas><div class="hover"></div>
  </div>
  <div class="tile" data-metric="hold_p99_ns" data-color="--series-park" data-fmt="ns">
    <div class="label">hold p99</div>
    <div class="value">–</div><canvas></canvas><div class="hover"></div>
  </div>
  <div class="tile" data-metric="inflations_per_sec" data-color="--series-slow" data-fmt="rate">
    <div class="label">inflations / s</div>
    <div class="value">–</div><canvas></canvas><div class="hover"></div>
  </div>
</div>

<h2>Hottest sites (current window)</h2>
<table id="sites">
  <thead><tr><th>site</th><th class="num">slow entries</th><th class="num">CAS fails</th>
  <th class="num">park</th><th class="num">delay</th></tr></thead>
  <tbody><tr><td class="muted" colspan="5">waiting for samples…</td></tr></tbody>
</table>

<h2>Anomaly log</h2>
<ul id="anomalies"><li class="muted">none observed</li></ul>

<script>
(function () {
  "use strict";
  var HISTORY = 120;
  var samples = [];
  var anomalies = [];
  var statusEl = document.getElementById("status");
  var statusText = document.getElementById("statustext");

  function fmtNs(v) {
    if (v >= 1e9) return (v / 1e9).toFixed(2) + "s";
    if (v >= 1e6) return (v / 1e6).toFixed(2) + "ms";
    if (v >= 1e3) return (v / 1e3).toFixed(1) + "µs";
    return Math.round(v) + "ns";
  }
  function fmtVal(v, kind) {
    if (kind === "pct") return (100 * v).toFixed(1) + "%";
    if (kind === "ns") return fmtNs(v);
    return v >= 1000 ? Math.round(v).toLocaleString() : v.toFixed(v >= 10 ? 0 : 1);
  }

  var tiles = [].slice.call(document.querySelectorAll(".tile")).map(function (el) {
    return {
      el: el,
      metric: el.dataset.metric,
      fmt: el.dataset.fmt,
      color: getComputedStyle(document.documentElement).getPropertyValue(el.dataset.color).trim(),
      value: el.querySelector(".value"),
      canvas: el.querySelector("canvas"),
      hover: el.querySelector(".hover")
    };
  });

  function drawSpark(t) {
    var c = t.canvas, dpr = window.devicePixelRatio || 1;
    var w = c.clientWidth, h = c.clientHeight;
    if (!w || !h) return;
    c.width = w * dpr; c.height = h * dpr;
    var ctx = c.getContext("2d");
    ctx.scale(dpr, dpr);
    ctx.clearRect(0, 0, w, h);
    if (samples.length < 2) return;
    var max = 0;
    samples.forEach(function (s) { max = Math.max(max, s[t.metric] || 0); });
    if (max <= 0) max = 1;
    ctx.beginPath();
    ctx.lineWidth = 2; ctx.lineJoin = "round"; ctx.strokeStyle = t.color;
    samples.forEach(function (s, i) {
      var x = i / (samples.length - 1) * (w - 2) + 1;
      var y = h - 2 - ((s[t.metric] || 0) / max) * (h - 4);
      if (i === 0) ctx.moveTo(x, y); else ctx.lineTo(x, y);
    });
    ctx.stroke();
    // Flag anomalous windows on the strip: ring + fill, not color alone
    // (the anomaly log below carries the textual record).
    samples.forEach(function (s, i) {
      if (!s.anomalies || !s.anomalies.length) return;
      var x = i / (samples.length - 1) * (w - 2) + 1;
      var y = h - 2 - ((s[t.metric] || 0) / max) * (h - 4);
      ctx.beginPath();
      ctx.arc(x, y, 4, 0, 2 * Math.PI);
      ctx.fillStyle = getComputedStyle(document.documentElement)
        .getPropertyValue("--status-serious").trim();
      ctx.fill();
      ctx.lineWidth = 2;
      ctx.strokeStyle = getComputedStyle(document.documentElement)
        .getPropertyValue("--surface-2").trim();
      ctx.stroke();
    });
  }

  tiles.forEach(function (t) {
    t.canvas.addEventListener("mousemove", function (ev) {
      if (!samples.length) return;
      var r = t.canvas.getBoundingClientRect();
      var i = Math.round((ev.clientX - r.left) / Math.max(1, r.width) * (samples.length - 1));
      i = Math.max(0, Math.min(samples.length - 1, i));
      var s = samples[i];
      t.hover.textContent = "t+" + (s.at_ns / 1e9).toFixed(1) + "s: " +
        fmtVal(s[t.metric] || 0, t.fmt);
    });
    t.canvas.addEventListener("mouseleave", function () { t.hover.textContent = ""; });
  });

  function render() {
    var cur = samples[samples.length - 1];
    tiles.forEach(function (t) {
      if (cur) t.value.textContent = fmtVal(cur[t.metric] || 0, t.fmt);
      drawSpark(t);
    });
    var tbody = document.querySelector("#sites tbody");
    if (cur && cur.sites && cur.sites.length) {
      tbody.innerHTML = "";
      cur.sites.forEach(function (st) {
        var tr = document.createElement("tr");
        [st.label,
         String(st.slow_entries || 0), String(st.cas_failures || 0),
         fmtNs(st.park_ns || 0), fmtNs(st.delay_ns || 0)].forEach(function (v, i) {
          var td = document.createElement("td");
          if (i > 0) td.className = "num";
          td.textContent = v;
          tr.appendChild(td);
        });
        tbody.appendChild(tr);
      });
    } else if (cur) {
      tbody.innerHTML = '<tr><td class="muted" colspan="5">no contended sites this window</td></tr>';
    }
    var list = document.getElementById("anomalies");
    if (anomalies.length) {
      list.innerHTML = "";
      anomalies.slice(-20).reverse().forEach(function (a) {
        var li = document.createElement("li");
        var flag = document.createElement("span");
        flag.className = "flag";
        flag.textContent = "⚠ " + a.metric;
        li.appendChild(flag);
        var txt = " spiked to " + (a.metric === "cas_fail_ratio"
          ? (100 * a.value).toFixed(1) + "%" : fmtNs(a.value)) +
          " (baseline " + (a.metric === "cas_fail_ratio"
          ? (100 * a.mean).toFixed(1) + "%" : fmtNs(a.mean)) +
          ", " + a.score.toFixed(1) + "σ)" +
          (a.sites && a.sites.length ? " at " + a.sites.join(", ") : "");
        li.appendChild(document.createTextNode(txt));
        var when = document.createElement("span");
        when.className = "when";
        when.textContent = " — t+" + (a.at_ns / 1e9).toFixed(1) + "s";
        li.appendChild(when);
        list.appendChild(li);
      });
    }
  }

  function push(s) {
    samples.push(s);
    if (samples.length > HISTORY) samples.shift();
    if (s.anomalies) anomalies = anomalies.concat(s.anomalies);
    render();
  }
  function setStatus(ok, text) {
    statusEl.className = ok ? "sub" : "sub stale";
    statusText.textContent = text;
  }

  // Seed history from the series endpoint, then follow the live stream.
  fetch("/debug/lockscope/series?n=" + HISTORY)
    .then(function (r) { return r.json(); })
    .then(function (series) {
      (series.samples || []).forEach(function (s) {
        samples.push(s);
        if (samples.length > HISTORY) samples.shift();
      });
      anomalies = series.anomalies || [];
      render();
    })
    .catch(function () {});

  var pollTimer = null;
  function startPolling() {
    if (pollTimer) return;
    setStatus(false, "stream unavailable — polling every 2s");
    pollTimer = setInterval(function () {
      fetch("/debug/lockscope/series?n=1")
        .then(function (r) { return r.json(); })
        .then(function (series) {
          var last = (series.samples || [])[series.samples.length - 1];
          if (last && (!samples.length || last.index > samples[samples.length - 1].index)) push(last);
        })
        .catch(function () { setStatus(false, "scope unreachable"); });
    }, 2000);
  }

  if (window.EventSource) {
    var es = new EventSource("/debug/lockscope/stream");
    es.addEventListener("sample", function (ev) {
      setStatus(true, "live");
      push(JSON.parse(ev.data));
    });
    es.onerror = function () { startPolling(); };
  } else {
    startPolling();
  }
})();
</script>
</body>
</html>
`
