// Package monitorcache implements the Sun JDK 1.1.1 baseline the paper
// calls "JDK111": monitors are kept outside of objects and looked up in a
// global monitor cache on every operation.
//
// The paper's critique of this design (§1, §3.3) is structural, and this
// implementation reproduces that structure honestly:
//
//   - the cache itself must be locked during lookups "to prevent race
//     conditions with concurrent modifiers", so every monitorenter and
//     monitorexit pays a global lock acquisition plus a hash lookup;
//   - monitor structures come from a bounded pool; when the working set
//     of locked objects exceeds the pool, the cache "thrashes its free
//     list": each miss must sweep the pool for recyclable monitors,
//     which is what bends the MultiSync curve in Figure 4.
//
// Entries are pinned while a thread is between the lookup and the monitor
// operation so a sweep never recycles a monitor another thread is about
// to enter.
package monitorcache

import (
	"sync"
	"sync/atomic"
	"time"

	"thinlock/internal/lockdep"
	"thinlock/internal/lockprof"
	"thinlock/internal/monitor"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

// ErrIllegalMonitorState mirrors monitor.ErrIllegalMonitorState for
// operations on objects the thread does not hold.
var ErrIllegalMonitorState = monitor.ErrIllegalMonitorState

// DefaultCapacity is the default size of the monitor pool. The historical
// JDK preallocated a cache of comparable magnitude; the exact value only
// moves the MultiSync knee.
const DefaultCapacity = 128

// Options configures a Cache.
type Options struct {
	// Capacity is the monitor pool size; 0 means DefaultCapacity.
	Capacity int
}

// entry associates an object with a pooled monitor.
type entry struct {
	objID uint64
	mon   *monitor.Monitor
	// pins counts threads between lookup and monitor operation (plus
	// waiters); a pinned entry is never recycled. Guarded by Cache.mu.
	pins int
}

// Stats is a snapshot of cache behaviour counters.
type Stats struct {
	// Lookups counts cache consultations (every lock, unlock, wait and
	// notify performs one).
	Lookups uint64
	// Misses counts lookups that had to bind a fresh monitor.
	Misses uint64
	// Sweeps counts free-list refills that scanned the whole pool.
	Sweeps uint64
	// Recycled counts monitors reclaimed by sweeps.
	Recycled uint64
	// Expansions counts pool growth events forced by a sweep that found
	// nothing recyclable.
	Expansions uint64
}

// Cache is the JDK111 locker: a global-locked object→monitor hash table
// with a bounded monitor pool. It implements lockapi.Locker.
type Cache struct {
	mu       sync.Mutex
	table    map[uint64]*entry
	free     []*entry
	capacity int

	lookups    atomic.Uint64
	misses     atomic.Uint64
	sweeps     atomic.Uint64
	recycled   atomic.Uint64
	expansions atomic.Uint64
}

// New returns a cache with the given options.
func New(opts Options) *Cache {
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	c := &Cache{
		table:    make(map[uint64]*entry, capacity),
		capacity: capacity,
	}
	for i := 0; i < capacity; i++ {
		c.free = append(c.free, &entry{mon: monitor.New()})
	}
	return c
}

// NewDefault returns a cache with the default pool size.
func NewDefault() *Cache { return New(Options{}) }

// Name implements lockapi.Locker.
func (c *Cache) Name() string { return "JDK111" }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Lookups:    c.lookups.Load(),
		Misses:     c.misses.Load(),
		Sweeps:     c.sweeps.Load(),
		Recycled:   c.recycled.Load(),
		Expansions: c.expansions.Load(),
	}
}

// PoolSize reports the current monitor pool size (capacity plus any
// forced expansions).
func (c *Cache) PoolSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// lookup finds or creates the pinned entry for o. The caller must
// eventually call unpin.
func (c *Cache) lookup(t *threading.Thread, o *object.Object) *entry {
	c.lookups.Add(1)
	telemetry.Inc(t, telemetry.CtrCacheLookups)
	c.mu.Lock()
	e, ok := c.table[o.ID()]
	if !ok {
		c.misses.Add(1)
		telemetry.Inc(t, telemetry.CtrCacheMisses)
		e = c.takeFreeLocked()
		e.objID = o.ID()
		c.table[o.ID()] = e
	}
	e.pins++
	c.mu.Unlock()
	return e
}

// lookupExisting finds and pins the entry for o, or returns nil if the
// object has no monitor bound (it cannot be locked).
func (c *Cache) lookupExisting(t *threading.Thread, o *object.Object) *entry {
	c.lookups.Add(1)
	telemetry.Inc(t, telemetry.CtrCacheLookups)
	c.mu.Lock()
	e := c.table[o.ID()]
	if e != nil {
		e.pins++
	}
	c.mu.Unlock()
	return e
}

// takeFreeLocked pops a free entry, sweeping the table for recyclable
// monitors when the free list is empty. Caller holds c.mu.
func (c *Cache) takeFreeLocked() *entry {
	if len(c.free) == 0 {
		c.sweepLocked()
	}
	if len(c.free) == 0 {
		// Nothing recyclable: the pool must grow. The historical JDK
		// allocated more monitor structures here; the paper notes the
		// space overhead "may be considerable".
		c.expansions.Add(1)
		c.capacity++
		return &entry{mon: monitor.New()}
	}
	e := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	return e
}

// sweepLocked scans the entire table, unbinding every entry whose
// monitor is quiescent and unpinned — the free-list thrash the paper
// blames for JDK111's MultiSync slowdown. Caller holds c.mu.
func (c *Cache) sweepLocked() {
	c.sweeps.Add(1)
	telemetry.Inc(nil, telemetry.CtrCacheSweeps)
	for id, e := range c.table {
		if e.pins == 0 && e.mon.Quiescent() {
			delete(c.table, id)
			e.objID = 0
			c.free = append(c.free, e)
			c.recycled.Add(1)
		}
	}
}

// unpin releases the caller's pin on e.
func (c *Cache) unpin(e *entry) {
	c.mu.Lock()
	e.pins--
	c.mu.Unlock()
}

// Lock implements lockapi.Locker. Every JDK111 acquisition is a slow
// path — there is no fast path to protect — so the whole operation is
// reported to the contention profiler.
func (c *Cache) Lock(t *threading.Thread, o *object.Object) {
	if p := lockprof.Active(); p != nil {
		p.SlowPathEnter(t, o)
		start := telemetry.Now()
		c.lockBody(t, o)
		p.SlowPathExit(t, o, telemetry.Now()-start)
	} else {
		c.lockBody(t, o)
	}
	if d := lockdep.Active(); d != nil {
		d.Acquired(t, o)
	}
}

func (c *Cache) lockBody(t *threading.Thread, o *object.Object) {
	e := c.lookup(t, o)
	lockdep.Blocked(t, o, lockdep.WaitFat)
	e.mon.Enter(t)
	c.unpin(e)
}

// Unlock implements lockapi.Locker. Like monitorenter, monitorexit must
// consult the cache.
func (c *Cache) Unlock(t *threading.Thread, o *object.Object) error {
	err := c.unlockBody(t, o)
	if err == nil {
		if d := lockdep.Active(); d != nil {
			d.Released(t, o)
		}
	}
	return err
}

func (c *Cache) unlockBody(t *threading.Thread, o *object.Object) error {
	lockprof.UnlockSlow(t, o)
	e := c.lookupExisting(t, o)
	if e == nil {
		return ErrIllegalMonitorState
	}
	err := e.mon.Exit(t)
	c.unpin(e)
	return err
}

// Wait implements lockapi.Locker. The pin spans the whole wait so the
// sweep never recycles a monitor with a waiter in flight.
func (c *Cache) Wait(t *threading.Thread, o *object.Object, d time.Duration) (bool, error) {
	if ld := lockdep.Active(); ld != nil {
		ld.CondWaitBegin(t, o)
		notified, err := c.waitBody(t, o, d)
		ld.CondWaitEnd(t, o)
		return notified, err
	}
	return c.waitBody(t, o, d)
}

func (c *Cache) waitBody(t *threading.Thread, o *object.Object, d time.Duration) (bool, error) {
	e := c.lookupExisting(t, o)
	if e == nil {
		return false, ErrIllegalMonitorState
	}
	notified, err := e.mon.Wait(t, d)
	c.unpin(e)
	return notified, err
}

// Notify implements lockapi.Locker.
func (c *Cache) Notify(t *threading.Thread, o *object.Object) error {
	e := c.lookupExisting(t, o)
	if e == nil {
		return ErrIllegalMonitorState
	}
	err := e.mon.Notify(t)
	c.unpin(e)
	return err
}

// NotifyAll implements lockapi.Locker.
func (c *Cache) NotifyAll(t *threading.Thread, o *object.Object) error {
	e := c.lookupExisting(t, o)
	if e == nil {
		return ErrIllegalMonitorState
	}
	err := e.mon.NotifyAll(t)
	c.unpin(e)
	return err
}

// BoundMonitors reports how many objects currently have monitors bound,
// for tests and diagnostics.
func (c *Cache) BoundMonitors() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.table)
}
