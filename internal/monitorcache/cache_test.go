package monitorcache

import (
	"sync"
	"testing"
	"time"

	"thinlock/internal/object"
	"thinlock/internal/testutil"
	"thinlock/internal/threading"
)

type fixture struct {
	c    *Cache
	heap *object.Heap
	reg  *threading.Registry
}

func newFixture(opts Options) *fixture {
	return &fixture{c: New(opts), heap: object.NewHeap(), reg: threading.NewRegistry()}
}

func (f *fixture) thread(t *testing.T) *threading.Thread {
	t.Helper()
	th, err := f.reg.Attach("t")
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestLockUnlockBasic(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{})
	th := f.thread(t)
	o := f.heap.New("X")
	f.c.Lock(th, o)
	if f.c.BoundMonitors() != 1 {
		t.Errorf("BoundMonitors = %d, want 1", f.c.BoundMonitors())
	}
	if err := f.c.Unlock(th, o); err != nil {
		t.Fatal(err)
	}
	s := f.c.Stats()
	if s.Lookups != 2 {
		t.Errorf("Lookups = %d, want 2 (enter and exit both consult the cache)", s.Lookups)
	}
	if s.Misses != 1 {
		t.Errorf("Misses = %d, want 1", s.Misses)
	}
}

func TestNestedLocking(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{})
	th := f.thread(t)
	o := f.heap.New("X")
	for i := 0; i < 5; i++ {
		f.c.Lock(th, o)
	}
	for i := 0; i < 5; i++ {
		if err := f.c.Unlock(th, o); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.c.Unlock(th, o); err != ErrIllegalMonitorState {
		t.Fatalf("extra unlock: err = %v", err)
	}
}

func TestUnlockOfNeverLockedObject(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{})
	th := f.thread(t)
	o := f.heap.New("X")
	if err := f.c.Unlock(th, o); err != ErrIllegalMonitorState {
		t.Fatalf("err = %v, want ErrIllegalMonitorState", err)
	}
	if _, err := f.c.Wait(th, o, 0); err != ErrIllegalMonitorState {
		t.Fatalf("wait err = %v, want ErrIllegalMonitorState", err)
	}
	if err := f.c.Notify(th, o); err != ErrIllegalMonitorState {
		t.Fatalf("notify err = %v", err)
	}
	if err := f.c.NotifyAll(th, o); err != ErrIllegalMonitorState {
		t.Fatalf("notifyAll err = %v", err)
	}
}

func TestFreeListSweepWhenWorkingSetExceedsCapacity(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{Capacity: 8})
	th := f.thread(t)
	// Lock/unlock 50 distinct objects: the pool of 8 must sweep.
	for i := 0; i < 50; i++ {
		o := f.heap.New("X")
		f.c.Lock(th, o)
		if err := f.c.Unlock(th, o); err != nil {
			t.Fatal(err)
		}
	}
	s := f.c.Stats()
	if s.Sweeps == 0 {
		t.Error("working set over capacity never swept the free list")
	}
	if s.Recycled == 0 {
		t.Error("sweeps recycled nothing")
	}
	if f.c.PoolSize() != 8 {
		t.Errorf("pool grew to %d; recyclable monitors were available", f.c.PoolSize())
	}
}

func TestPoolExpandsWhenAllMonitorsHeld(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{Capacity: 4})
	th := f.thread(t)
	objs := make([]*object.Object, 6)
	for i := range objs {
		objs[i] = f.heap.New("X")
		f.c.Lock(th, objs[i]) // hold all of them: nothing recyclable
	}
	if f.c.Stats().Expansions == 0 {
		t.Error("holding more monitors than capacity did not expand the pool")
	}
	if f.c.PoolSize() <= 4 {
		t.Errorf("PoolSize = %d, want > 4", f.c.PoolSize())
	}
	for _, o := range objs {
		if err := f.c.Unlock(th, o); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecycledMonitorServesNewObject(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{Capacity: 1})
	th := f.thread(t)
	a := f.heap.New("A")
	b := f.heap.New("B")
	f.c.Lock(th, a)
	if err := f.c.Unlock(th, a); err != nil {
		t.Fatal(err)
	}
	f.c.Lock(th, b) // forces recycling of a's monitor
	if err := f.c.Unlock(th, b); err != nil {
		t.Fatal(err)
	}
	// a's binding is gone; unlocking it must now fail.
	if err := f.c.Unlock(th, a); err != ErrIllegalMonitorState {
		t.Fatalf("unlock after recycle: err = %v", err)
	}
}

func TestMutualExclusion(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{})
	o := f.heap.New("X")
	const goroutines, iters = 8, 300
	var counter int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th := f.thread(t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f.c.Lock(th, o)
				counter++
				if err := f.c.Unlock(th, o); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

// TestConcurrentDistinctObjectsUnderPressure checks that the sweep never
// recycles a monitor out from under a thread that is about to use it.
func TestConcurrentDistinctObjectsUnderPressure(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{Capacity: 4})
	const goroutines, iters, objects = 6, 200, 32
	objs := make([]*object.Object, objects)
	for i := range objs {
		objs[i] = f.heap.New("X")
	}
	counters := make([]int64, objects)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		th := f.thread(t)
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (seed*31 + i*7) % objects
				f.c.Lock(th, objs[k])
				counters[k]++
				if err := f.c.Unlock(th, objs[k]); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, c := range counters {
		total += c
	}
	if total != goroutines*iters {
		t.Fatalf("total = %d, want %d (increments lost)", total, goroutines*iters)
	}
}

func TestWaitNotifyThroughCache(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("X")
	woke := make(chan bool, 1)
	go func() {
		f.c.Lock(a, o)
		n, err := f.c.Wait(a, o, 0)
		if err != nil {
			t.Error(err)
		}
		woke <- n
		if err := f.c.Unlock(a, o); err != nil {
			t.Error(err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		f.c.Lock(b, o)
		if err := f.c.Notify(b, o); err != nil {
			t.Fatal(err)
		}
		if err := f.c.Unlock(b, o); err != nil {
			t.Fatal(err)
		}
		select {
		case n := <-woke:
			if !n {
				t.Fatal("waiter woke by timeout")
			}
			return
		case <-time.After(10 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("waiter never notified")
			}
		}
	}
}

// TestWaiterSurvivesSweepPressure: an object whose monitor hosts a waiter
// must not be recycled even under free-list pressure.
func TestWaiterSurvivesSweepPressure(t *testing.T) {
	t.Parallel()
	f := newFixture(Options{Capacity: 2})
	a, b := f.thread(t), f.thread(t)
	o := f.heap.New("W")
	woke := make(chan struct{})
	go func() {
		f.c.Lock(a, o)
		if _, err := f.c.Wait(a, o, 0); err != nil {
			t.Error(err)
		}
		close(woke)
		if err := f.c.Unlock(a, o); err != nil {
			t.Error(err)
		}
	}()
	// Wait for the waiter to enter the wait set, then churn the cache.
	testutil.Eventually(t, 0, "waiter parked in the wait set", func() bool {
		e := f.c.lookupExisting(nil, o)
		if e == nil {
			return false
		}
		defer f.c.unpin(e)
		return e.mon.WaitSetLen() == 1
	})
	for i := 0; i < 30; i++ {
		x := f.heap.New("X")
		f.c.Lock(b, x)
		if err := f.c.Unlock(b, x); err != nil {
			t.Fatal(err)
		}
	}
	f.c.Lock(b, o)
	if err := f.c.Notify(b, o); err != nil {
		t.Fatal(err)
	}
	if err := f.c.Unlock(b, o); err != nil {
		t.Fatal(err)
	}
	select {
	case <-woke:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter lost: monitor recycled under it")
	}
}

func TestName(t *testing.T) {
	t.Parallel()
	if NewDefault().Name() != "JDK111" {
		t.Error("Name mismatch")
	}
	if NewDefault().PoolSize() != DefaultCapacity {
		t.Error("default capacity mismatch")
	}
}
