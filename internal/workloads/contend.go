package workloads

import (
	"fmt"
	"runtime"

	"thinlock/internal/jcl"
	"thinlock/internal/lockapi"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// bankWorkers is the fixed worker-thread count of the bankmt workload.
const bankWorkers = 4

// bankAccounts is the number of shared accounts the workers fight over.
const bankAccounts = 8

// runBankmt is the suite's one genuinely multithreaded workload: four
// worker threads transfer between eight shared accounts, so thin locks
// inflate under real contention and the telemetry slow-path counters
// have something to count. Each account's balance lives at index 0 of a
// shared Vector; a separate plain guard object per account serializes
// the read-modify-write, so the Vector's own synchronized calls stay
// uncontended (and shallow) while the guards carry the contention.
//
// Determinism: each worker executes a fixed per-worker sequence of
// deposits and withdrawals whose amounts depend only on (worker, round).
// Deposits and withdrawals are separate critical sections (no worker
// ever holds two guards), and balance updates commute, so the final
// balances — and therefore the checksum — are independent of the
// schedule.
//
// Some rounds yield the processor *inside* a critical section. Without
// this, a single-CPU host runs each worker's tiny critical sections to
// completion unpreempted and no lock is ever observed held — the
// workload would show zero contention exactly where contention is the
// point. The in-section yield models a thread descheduled while holding
// a lock (the pathology §2.3.4's inflation-on-contention exists for)
// and makes inflations, parks and contended sites reproducible
// regardless of GOMAXPROCS. The yield schedule is a pure function of
// (worker, round), and the checksum stays schedule-independent.
func runBankmt(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	l := ctx.Locker()
	heap := ctx.Heap()

	accounts := make([]*jcl.Vector, bankAccounts)
	guards := make([]*object.Object, bankAccounts)
	for i := range accounts {
		v := ctx.NewVector()
		v.AddElement(t, int64(1000*(i+1)))
		accounts[i] = v
		guards[i] = heap.New("Object")
	}
	ledger := ctx.NewVector()
	ledgerGuard := heap.New("Object")

	rounds := 40 * size
	reg := t.Registry()
	dones := make([]<-chan struct{}, 0, bankWorkers)
	for w := 0; w < bankWorkers; w++ {
		w := w
		done, err := reg.Go(fmt.Sprintf("bank-%d", w), func(wt *threading.Thread) {
			for r := 0; r < rounds; r++ {
				// Fixed per-(worker, round) transfer: move amt from
				// account src to account dst, in two independent
				// critical sections so no two guards are ever held
				// at once.
				src := (w + r) % bankAccounts
				dst := (w*3 + r*5 + 1) % bankAccounts
				amt := int64((w+1)*(r%7) + 1)
				lockapi.Synchronized(l, wt, guards[src], func() {
					bal := accounts[src].ElementAt(wt, 0).(int64)
					if (r+w)%4 == 0 {
						runtime.Gosched()
					}
					accounts[src].SetElementAt(wt, bal-amt, 0)
				})
				lockapi.Synchronized(l, wt, guards[dst], func() {
					bal := accounts[dst].ElementAt(wt, 0).(int64)
					if (r+w)%4 == 2 {
						runtime.Gosched()
					}
					accounts[dst].SetElementAt(wt, bal+amt, 0)
				})
				if r%8 == 0 {
					lockapi.Synchronized(l, wt, ledgerGuard, func() {
						ledger.AddElement(wt, int64(w))
						runtime.Gosched()
					})
				}
			}
		})
		if err != nil {
			panic(fmt.Sprintf("workloads: bankmt attach: %v", err))
		}
		dones = append(dones, done)
	}
	for _, done := range dones {
		<-done
	}

	// Checksum folds only schedule-independent state: the final
	// balances (addition commutes, so they are deterministic) and the
	// ledger size (fixed count per worker).
	var sum uint64
	for i, a := range accounts {
		sum = mix(sum, uint64(i))
		sum = mix(sum, uint64(a.ElementAt(t, 0).(int64)))
	}
	sum = mix(sum, uint64(ledger.Size(t)))
	return sum
}
