package workloads

import (
	"thinlock/internal/jcl"
	"thinlock/internal/threading"
)

// runJavalex models the javalex benchmark: the paper measured 3.4 million
// method calls of which 2.4 million were synchronized, almost one million
// of them to Vector.elementAt (§3.4). The workload tokenizes synthetic
// source, then makes repeated synchronized elementAt passes over the
// token vector — DFA-construction style.
func runJavalex(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	src := sourceText(80 * size)
	tokens := tokenize(ctx, t, src)

	var sum uint64
	n := tokens.Size(t)
	// Repeated scanning passes over the token vector, one synchronized
	// elementAt per step, plus enumeration passes (also synchronized).
	for pass := 0; pass < 12; pass++ {
		for i := 0; i < n; i++ {
			tok := tokens.ElementAt(t, i).(string)
			sum = mix(sum, hashString(tok)+uint64(pass))
		}
	}
	e := tokens.Elements()
	for e.HasMoreElements(t) {
		sum = mix(sum, hashString(e.NextElement(t).(string)))
	}
	return sum
}

// runJavaparser models the Sun grammar parser: a shift/reduce pass over
// the token vector using a synchronized Stack, with Vector reads per
// lookahead.
func runJavaparser(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	src := sourceText(60 * size)
	tokens := tokenize(ctx, t, src)
	stack := ctx.NewStack()

	var sum uint64
	n := tokens.Size(t)
	for pass := 0; pass < 6; pass++ {
		for i := 0; i < n; i++ {
			tok := tokens.ElementAt(t, i).(string)
			switch tok {
			case ";", "}", ")":
				// Reduce: pop to the matching opener or statement head.
				for !stack.Empty(t) {
					top := stack.Pop(t).(string)
					sum = mix(sum, hashString(top))
					if top == "{" || top == "(" || top == ";" {
						break
					}
				}
				stack.Push(t, ";")
			default:
				stack.Push(t, tok)
			}
		}
		// Drain between passes.
		for !stack.Empty(t) {
			sum = mix(sum, hashString(stack.Pop(t).(string)))
		}
	}
	return sum
}

// runJavac models the Sun compiler's front half: tokenize, intern
// identifiers in a synchronized Hashtable symbol table, build a Vector
// "IR", and emit through a StringBuffer.
func runJavac(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	src := sourceText(70 * size)
	tokens := tokenize(ctx, t, src)
	symtab := ctx.NewHashtable()
	ir := ctx.NewVector()

	n := tokens.Size(t)
	nextID := 0
	for i := 0; i < n; i++ {
		tok := tokens.ElementAt(t, i).(string)
		if isIdentChar(tok[0]) && !isDigit(tok[0]) {
			if v := symtab.Get(t, tok); v == nil {
				nextID++
				symtab.Put(t, tok, nextID)
			}
			ir.AddElement(t, symtab.Get(t, tok))
		} else {
			ir.AddElement(t, tok)
		}
	}

	// "Code generation": walk the IR, emitting text.
	out := ctx.NewStringBuffer()
	m := ir.Size(t)
	for i := 0; i < m; i++ {
		switch v := ir.ElementAt(t, i).(type) {
		case int:
			out.Append(t, "sym").AppendInt(t, int64(v))
		case string:
			out.Append(t, v)
		}
		if i%8 == 7 {
			out.AppendChar(t, '\n')
		}
	}

	sum := hashString(out.String(t))
	return mix(uint64(symtab.Size(t)), sum)
}
