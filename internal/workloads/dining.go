package workloads

import (
	"fmt"
	"runtime"

	"thinlock/internal/jcl"
	"thinlock/internal/lockapi"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// diningPhilosophers is the table size of the dining workloads.
const diningPhilosophers = 5

// runDining is the classic dining-philosophers kernel in its *correct*
// form: every philosopher takes the lower-numbered fork first, so the
// global acquisition order is consistent and no deadlock is possible —
// but neighbours still contend for every fork, each meal nests one fork
// inside the other, and the in-section yields make the contention
// reproducible on any GOMAXPROCS (as in bankmt). This is the lockdep
// zero-false-positive workload: heavy nesting, heavy contention, and a
// run must produce no lock-order inversion and no wait-for cycle.
//
// Determinism: each philosopher eats a fixed number of meals; per-fork
// use counts are increments (commute) and the checksum folds only the
// final counts.
func runDining(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	l := ctx.Locker()
	heap := ctx.Heap()

	forks := make([]*object.Object, diningPhilosophers)
	uses := make([]*jcl.Vector, diningPhilosophers)
	for i := range forks {
		forks[i] = heap.New("Fork")
		v := ctx.NewVector()
		v.AddElement(t, int64(0))
		uses[i] = v
	}

	meals := 30 * size
	reg := t.Registry()
	dones := make([]<-chan struct{}, 0, diningPhilosophers)
	for p := 0; p < diningPhilosophers; p++ {
		p := p
		done, err := reg.Go(fmt.Sprintf("phil-%d", p), func(pt *threading.Thread) {
			left, right := p, (p+1)%diningPhilosophers
			lo, hi := left, right
			if lo > hi {
				lo, hi = hi, lo
			}
			for m := 0; m < meals; m++ {
				lockapi.Synchronized(l, pt, forks[lo], func() {
					if (m+p)%4 == 0 {
						runtime.Gosched() // hold the first fork while descheduled
					}
					lockapi.Synchronized(l, pt, forks[hi], func() {
						for _, f := range []int{lo, hi} {
							n := uses[f].ElementAt(pt, 0).(int64)
							uses[f].SetElementAt(pt, n+1, 0)
						}
					})
				})
			}
		})
		if err != nil {
			panic(fmt.Sprintf("workloads: dining attach: %v", err))
		}
		dones = append(dones, done)
	}
	for _, done := range dones {
		<-done
	}

	var sum uint64
	for i, v := range uses {
		sum = mix(sum, uint64(i))
		sum = mix(sum, uint64(v.ElementAt(t, 0).(int64)))
	}
	return sum
}

// runAbba is the lock-order-inversion workload: one worker repeatedly
// locks guard A then B, and — only after the first worker has fully
// finished — a second worker locks B then A. The two phases never
// overlap, so the run can never hang; but two threads have now
// established inverse nesting orders, which is exactly the latent ABBA
// hazard lockdep's order graph exists to flag *without* needing the
// hang. A run under `lockmon -lockdep` must report one inversion cycle
// on A and B; a run without lockdep behaves like any other workload.
func runAbba(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	l := ctx.Locker()
	heap := ctx.Heap()

	a, b := heap.New("GuardA"), heap.New("GuardB")
	counter := ctx.NewVector()
	counter.AddElement(t, int64(0))

	rounds := 50 * size
	phase := func(name string, first, second *object.Object) {
		done, err := t.Registry().Go(name, func(wt *threading.Thread) {
			for r := 0; r < rounds; r++ {
				lockapi.Synchronized(l, wt, first, func() {
					if r%16 == 0 {
						runtime.Gosched()
					}
					lockapi.Synchronized(l, wt, second, func() {
						n := counter.ElementAt(wt, 0).(int64)
						counter.SetElementAt(wt, n+1, 0)
					})
				})
			}
		})
		if err != nil {
			panic(fmt.Sprintf("workloads: abba attach: %v", err))
		}
		<-done // phases are strictly sequential: inversion without deadlock
	}
	phase("abba-0", a, b)
	phase("abba-1", b, a)

	return mix(mix(0, uint64(counter.ElementAt(t, 0).(int64))), uint64(rounds))
}

// Hazards returns workloads that are *deliberately broken*: they
// deadlock (or can), by design, to exercise the lockdep wait-for
// detector and the stall watchdog end to end. They are intentionally
// kept out of All() — anything that iterates the regular suite (tests,
// macrobench sweeps) must never hang — and are reachable only by name
// through ByName or `lockmon -list`.
func Hazards() []Workload {
	return []Workload{
		{
			Name:        "dining-deadlock",
			Source:      "(this repository) misordered dining philosophers",
			Description: "HAZARD: every philosopher takes the left fork first; deadlocks by design and never returns",
			DefaultSize: 1,
			Concurrent:  true,
			Run:         runDiningDeadlock,
		},
	}
}

// runDiningDeadlock is the misordered variant: every philosopher takes
// its *left* fork first (a cyclic order), with a barrier ensuring all
// five hold their left fork before any reaches right. The cycle forms
// deterministically and the function never returns; it exists to be run
// under `lockmon -watchdog`, whose stall dump must name all five
// philosophers, the forks they hold, and the forks they block on.
func runDiningDeadlock(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	_ = size
	l := ctx.Locker()
	heap := ctx.Heap()

	forks := make([]*object.Object, diningPhilosophers)
	for i := range forks {
		forks[i] = heap.New("Fork")
	}

	firstHeld := make(chan struct{}, diningPhilosophers)
	proceed := make(chan struct{})
	reg := t.Registry()
	dones := make([]<-chan struct{}, 0, diningPhilosophers)
	for p := 0; p < diningPhilosophers; p++ {
		p := p
		done, err := reg.Go(fmt.Sprintf("phil-%d", p), func(pt *threading.Thread) {
			l.Lock(pt, forks[p])
			firstHeld <- struct{}{}
			<-proceed
			l.Lock(pt, forks[(p+1)%diningPhilosophers]) // deadlock: never acquired
			l.Unlock(pt, forks[(p+1)%diningPhilosophers])
			l.Unlock(pt, forks[p])
		})
		if err != nil {
			panic(fmt.Sprintf("workloads: dining-deadlock attach: %v", err))
		}
		dones = append(dones, done)
	}
	for i := 0; i < diningPhilosophers; i++ {
		<-firstHeld
	}
	close(proceed)
	for _, done := range dones {
		<-done // unreachable: the table is deadlocked
	}
	return 0
}
