package workloads

import (
	"fmt"

	"thinlock/internal/jcl"
	"thinlock/internal/lockapi"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// churnWorkers is the fixed worker-thread count of the churn workload.
// The rendezvous barrier below is written for exactly two parties.
const churnWorkers = 2

// churnPhases is the number of allocate-use-abandon generations.
const churnPhases = 8

// churnShareEvery spaces the shared rendezvous objects: every 16th
// private object, each worker also crosses a barrier on a shared object,
// which inflates it (the first arriver waits).
const churnShareEvery = 16

// runChurn is the monitor-lifecycle stress of the compact-monitor
// extension: two workers burn through generations of short-lived
// objects — at DefaultSize over ten million of them — locking each once
// and abandoning the whole generation at the phase boundary. Every
// churnShareEvery-th step the workers additionally rendezvous on a
// shared object whose barrier forces a wait, and waiting inflates, so
// each phase also inflates and abandons thousands of monitors.
//
// Under the paper's baseline implementations the monitor table (or
// monitor cache) footprint grows with every inflated object ever seen;
// under deflation + index recycling it stays bounded by the number of
// barriers simultaneously in flight (at most one per worker pair, since
// a two-party barrier keeps the workers within one rendezvous of each
// other). The churn stress test and the EXPERIMENTS churn table assert
// and report exactly that contrast.
//
// Determinism: worker w folds a pure function of (phase, step) into its
// own sums[w] slot; phases join before the next spawns, and the final
// checksum folds the two slots in a fixed order, so the result is
// independent of schedule and implementation. The barrier itself is a
// classic condition-variable handshake (set own flag, notify, wait for
// the partner's flag under the lock), so no wakeup can be lost.
func runChurn(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	l := ctx.Locker()
	heap := ctx.Heap()

	// Private objects per worker per phase; one shared barrier object
	// per churnShareEvery of them.
	perWorker := 1250 * size
	shared := perWorker / churnShareEvery
	if shared < 1 {
		shared = 1
	}

	sums := make([]uint64, churnWorkers)
	reg := t.Registry()
	for phase := 0; phase < churnPhases; phase++ {
		// A fresh working set per phase; the previous generation is
		// abandoned wholesale, monitors and all.
		barriers := make([]*object.Object, shared)
		arrived := make([][churnWorkers]bool, shared)
		for i := range barriers {
			barriers[i] = heap.New("Object")
		}

		dones := make([]<-chan struct{}, 0, churnWorkers)
		for w := 0; w < churnWorkers; w++ {
			w, phase := w, phase
			done, err := reg.Go(fmt.Sprintf("churn-%d-%d", phase, w), func(wt *threading.Thread) {
				for i := 0; i < perWorker; i++ {
					o := heap.New("Object")
					lockapi.Synchronized(l, wt, o, func() {
						sums[w] = mix(sums[w], uint64(phase)<<32|uint64(i))
					})
					if i%churnShareEvery == churnShareEvery-1 {
						j := (i / churnShareEvery) % shared
						churnBarrier(l, wt, barriers[j], &arrived[j], w)
						sums[w] = mix(sums[w], uint64(j))
					}
				}
			})
			if err != nil {
				panic(fmt.Sprintf("workloads: churn attach: %v", err))
			}
			dones = append(dones, done)
		}
		for _, done := range dones {
			<-done
		}
	}

	sum := uint64(churnWorkers)
	for _, s := range sums {
		sum = mix(sum, s)
	}
	return sum
}

// churnBarrier is a two-party rendezvous on o: worker w records its
// arrival, wakes a possibly-waiting partner, and waits until the partner
// has arrived too. The first arriver always waits, so every barrier
// object's lock inflates exactly once and — under the deflating
// implementations — deflates again when the last party releases it.
func churnBarrier(l lockapi.Locker, wt *threading.Thread, o *object.Object, arrived *[churnWorkers]bool, w int) {
	lockapi.Synchronized(l, wt, o, func() {
		arrived[w] = true
		if err := l.NotifyAll(wt, o); err != nil {
			panic(fmt.Sprintf("workloads: churn notify: %v", err))
		}
		for !arrived[1-w] {
			if _, err := l.Wait(wt, o, 0); err != nil {
				panic(fmt.Sprintf("workloads: churn wait: %v", err))
			}
		}
	})
}
