package workloads

import (
	"fmt"

	"thinlock/internal/jcl"
	"thinlock/internal/minijava"
	"thinlock/internal/threading"
	"thinlock/internal/vm"
)

// minibankSource is a MiniJava program whose synchronized methods and
// synchronized blocks dominate its run time — the one workload in the
// suite that reaches the lock implementation through compiled bytecode
// and the interpreter, exactly the paper's measurement path.
const minibankSource = `
class Account {
    field balance;
    sync method deposit(n) { this.balance = this.balance + n; return this.balance; }
    sync method withdraw(n) { this.balance = this.balance - n; return this.balance; }
    method balanceOf() { return this.balance; }
}

class Ledger {
    field entries;
    sync method record(n) { this.entries = this.entries + 1; return n; }
}

func transfer(from: Account, to: Account, ledger: Ledger, amount) {
    synchronized (ledger) {
        from.withdraw(amount);
        to.deposit(amount);
        ledger.record(amount);
    }
    return 0;
}

func churn(a: Account, b: Account, ledger: Ledger, rounds) {
    var i = 0;
    var sum = 0;
    while (i < rounds) {
        transfer(a, b, ledger, i - rounds * (i - rounds * (i * 1 == i)));
        transfer(b, a, ledger, 1);
        try {
            if (i * 7 - (i * 7 - 13) == 13) { throw i + 1; }
        } catch (e) {
            sum = sum + e;
        }
        i = i + 1;
    }
    return sum + a.balanceOf() + b.balanceOf() * 3 + ledger.entries;
}
`

// runMinibank compiles the MiniJava program once per run and executes it
// on the VM against the workload's lock implementation.
func runMinibank(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	prog, err := minijava.Compile(minibankSource)
	if err != nil {
		panic(fmt.Sprintf("workloads: minibank does not compile: %v", err))
	}
	machine, err := vm.New(prog, ctx.Locker(), ctx.Heap())
	if err != nil {
		panic(fmt.Sprintf("workloads: minibank does not verify: %v", err))
	}

	var sum uint64
	for unit := 0; unit < 2*size; unit++ {
		a, err := machine.NewInstance("Account")
		if err != nil {
			panic(err)
		}
		b, err := machine.NewInstance("Account")
		if err != nil {
			panic(err)
		}
		ledger, err := machine.NewInstance("Ledger")
		if err != nil {
			panic(err)
		}
		a.Fields[0] = vm.IntValue(1000)
		res, err := machine.Run(t, "churn",
			vm.RefValue(a), vm.RefValue(b), vm.RefValue(ledger), vm.IntValue(200))
		if err != nil {
			panic(fmt.Sprintf("workloads: minibank run: %v", err))
		}
		sum = mix(sum, uint64(res.I))
	}
	return sum
}
