package workloads

import (
	"strings"
	"sync/atomic"
	"testing"

	"thinlock/internal/biased"
	"thinlock/internal/core"
	"thinlock/internal/hotlocks"
	"thinlock/internal/jcl"
	"thinlock/internal/lockapi"
	"thinlock/internal/monitorcache"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

func runOnce(t *testing.T, w Workload, l lockapi.Locker, size int) uint64 {
	t.Helper()
	ctx := jcl.NewContext(l, object.NewHeap())
	reg := threading.NewRegistry()
	th, err := reg.Attach("w")
	if err != nil {
		t.Fatal(err)
	}
	return w.Run(ctx, th, size)
}

func TestAllWorkloadsAreWellFormed(t *testing.T) {
	t.Parallel()
	suite := All()
	if len(suite) != 16 {
		t.Fatalf("suite has %d workloads, want 16", len(suite))
	}
	seen := make(map[string]bool)
	for _, w := range suite {
		if w.Name == "" || w.Source == "" || w.Description == "" {
			t.Errorf("workload %+v missing metadata", w.Name)
		}
		if w.DefaultSize < 1 {
			t.Errorf("%s: DefaultSize = %d", w.Name, w.DefaultSize)
		}
		if w.Run == nil {
			t.Errorf("%s: nil Run", w.Name)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestByName(t *testing.T) {
	t.Parallel()
	if w, ok := ByName("jax"); !ok || w.Name != "jax" {
		t.Error("ByName(jax) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName found phantom workload")
	}
	// Hazards are reachable by name even though they are not in All().
	if w, ok := ByName("dining-deadlock"); !ok || w.Name != "dining-deadlock" {
		t.Error("ByName(dining-deadlock) failed")
	}
}

// Hazard workloads deadlock by design, so they are never *run* here —
// only their registration is checked: well-formed metadata, marked
// concurrent and as a hazard, and strictly disjoint from All() so
// nothing iterating the regular suite can hang.
func TestHazardsAreWellFormedAndDisjoint(t *testing.T) {
	t.Parallel()
	regular := make(map[string]bool)
	for _, w := range All() {
		regular[w.Name] = true
	}
	hazards := Hazards()
	if len(hazards) == 0 {
		t.Fatal("no hazard workloads registered")
	}
	seen := make(map[string]bool)
	for _, w := range hazards {
		if w.Name == "" || w.Source == "" || w.Description == "" || w.Run == nil {
			t.Errorf("hazard %q missing metadata", w.Name)
		}
		if !w.Concurrent {
			t.Errorf("hazard %s not marked Concurrent", w.Name)
		}
		if !strings.Contains(w.Description, "HAZARD") {
			t.Errorf("hazard %s description does not warn it is a hazard: %q", w.Name, w.Description)
		}
		if regular[w.Name] {
			t.Errorf("hazard %s also appears in All(); the regular suite would hang", w.Name)
		}
		if seen[w.Name] {
			t.Errorf("duplicate hazard %s", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	t.Parallel()
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			a := runOnce(t, w, core.NewDefault(), 2)
			b := runOnce(t, w, core.NewDefault(), 2)
			if a != b {
				t.Fatalf("two runs returned %#x and %#x", a, b)
			}
			if a == 0 {
				t.Error("checksum is zero; workload may be degenerate")
			}
		})
	}
}

func TestWorkloadsAgreeAcrossImplementations(t *testing.T) {
	t.Parallel()
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			thin := runOnce(t, w, core.NewDefault(), 2)
			jdk := runOnce(t, w, monitorcache.NewDefault(), 2)
			ibm := runOnce(t, w, hotlocks.NewDefault(), 2)
			bia := runOnce(t, w, biased.NewDefault(), 2)
			if thin != jdk || jdk != ibm || ibm != bia {
				t.Fatalf("checksums diverge: thin=%#x jdk=%#x ibm=%#x biased=%#x", thin, jdk, ibm, bia)
			}
		})
	}
}

func TestWorkloadsScaleWithSize(t *testing.T) {
	t.Parallel()
	// Larger size must mean more lock traffic (sanity for the sweep
	// parameter). Use thin-lock op-free determinism: compare via a
	// counting locker.
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			small := countOps(t, w, 1)
			large := countOps(t, w, 3)
			if large <= small {
				t.Fatalf("ops did not grow with size: %d -> %d", small, large)
			}
		})
	}
}

// countingLocker counts Lock calls. The counter is atomic because
// concurrent workloads lock from several worker threads.
type countingLocker struct {
	lockapi.Locker
	ops atomic.Uint64
}

func (c *countingLocker) Lock(t *threading.Thread, o *object.Object) {
	c.ops.Add(1)
	c.Locker.Lock(t, o)
}

func countOps(t *testing.T, w Workload, size int) uint64 {
	t.Helper()
	cl := &countingLocker{Locker: core.NewDefault()}
	ctx := jcl.NewContext(cl, object.NewHeap())
	reg := threading.NewRegistry()
	th, err := reg.Attach("w")
	if err != nil {
		t.Fatal(err)
	}
	w.Run(ctx, th, size)
	return cl.ops.Load()
}

func TestWorkloadsLeaveNoLocksHeld(t *testing.T) {
	t.Parallel()
	// After a run under thin locks, no object may remain locked: every
	// library call must have balanced lock/unlock.
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			l := core.NewDefault()
			heap := object.NewHeap()
			ctx := jcl.NewContext(l, heap)
			reg := threading.NewRegistry()
			th, err := reg.Attach("w")
			if err != nil {
				t.Fatal(err)
			}
			w.Run(ctx, th, 1)
			if s := l.Stats(); !w.Concurrent && s.Inflations() != 0 {
				t.Errorf("single-threaded workload inflated %d locks", s.Inflations())
			}
		})
	}
}

func TestSourceText(t *testing.T) {
	t.Parallel()
	src := sourceText(50)
	if !strings.HasPrefix(src, "class Synthetic {") {
		t.Error("sourceText prefix")
	}
	if !strings.Contains(src, ";") || !strings.Contains(src, "if (") {
		t.Error("sourceText lacks statements")
	}
	if sourceText(50) != src {
		t.Error("sourceText not deterministic")
	}
	if len(sourceText(100)) <= len(src) {
		t.Error("sourceText does not scale")
	}
}

func TestTokenizeShape(t *testing.T) {
	t.Parallel()
	l := core.NewDefault()
	ctx := jcl.NewContext(l, object.NewHeap())
	reg := threading.NewRegistry()
	th, _ := reg.Attach("t")
	tokens := tokenize(ctx, th, "int x1 = y + 3;")
	var got []string
	for i := 0; i < tokens.Size(th); i++ {
		got = append(got, tokens.ElementAt(th, i).(string))
	}
	want := []string{"int", "x1", "=", "y", "+", "3", ";"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestHashString(t *testing.T) {
	t.Parallel()
	if hashString("") != 0 {
		t.Error("empty hash")
	}
	// Matches java.lang.String.hashCode folding: "Ab" = 'A'*31 + 'b'.
	if hashString("Ab") != 'A'*31+'b' {
		t.Errorf("hashString(Ab) = %d", hashString("Ab"))
	}
}

func TestMix(t *testing.T) {
	t.Parallel()
	if mix(1, 2) == mix(2, 1) {
		t.Error("mix is order-insensitive; too weak for checksums")
	}
	if mix(0, 0) == 0 {
		t.Error("mix(0,0) must not be zero-preserving in chains")
	}
}

func TestJaxTouchesManyBits(t *testing.T) {
	t.Parallel()
	// The jax model must actually converge and produce nonzero sets.
	sum := runOnce(t, mustByName(t, "jax"), core.NewDefault(), 1)
	if sum == 0 {
		t.Error("jax checksum zero")
	}
}

func mustByName(t *testing.T, name string) Workload {
	t.Helper()
	w, ok := ByName(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	return w
}
