package workloads

// runSessiond is the suite's single-owner workload: one thread owns a
// small, long-lived working set of synchronized containers and hammers
// them with short critical sections, round after round. This is the
// access pattern lock reservation (internal/biased) is built for — the
// same thread reacquiring the same locks millions of times with no
// second thread ever contending — and the anti-pattern for
// implementations that pay a compare-and-swap or a monitor-cache lookup
// on every reacquisition. The containers deliberately outlive all
// rounds: a fresh-object workload would measure allocation and first
// acquisition (install cost) rather than reacquisition, which crema
// already covers.

import (
	"thinlock/internal/jcl"
	"thinlock/internal/threading"
)

// sessionTables is the number of long-lived synchronized objects in the
// working set — small enough that a reservation-based locker can keep
// every one of them reserved at once.
const sessionTables = 4

func runSessiond(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	state := make([]*jcl.Hashtable, sessionTables)
	logs := make([]*jcl.Vector, sessionTables)
	for i := range state {
		state[i] = ctx.NewHashtable()
		logs[i] = ctx.NewVector()
	}
	buf := ctx.NewStringBuffer()
	keys := []string{"user", "cart", "seen", "last", "tags", "rank"}

	var sum uint64
	rounds := 400 * size
	for r := 0; r < rounds; r++ {
		tbl := state[r%sessionTables]
		log := logs[(r/3)%sessionTables]
		key := keys[r%len(keys)]
		// Read-modify-write on the session table: two synchronized
		// Hashtable ops back to back on the same object.
		var n int64
		if v := tbl.Get(t, key); v != nil {
			n = v.(int64)
		}
		tbl.Put(t, key, n+int64(r%7)+1)
		// Append-only event log: one synchronized AddElement, plus a
		// synchronized size probe every few rounds.
		log.AddElement(t, int64(r))
		if r%5 == 0 {
			sum = mix(sum, uint64(log.Size(t)))
		}
		// A short burst of synchronized StringBuffer appends renders the
		// event, nesting reacquisitions of one object tightly.
		buf.SetLength(t, 0)
		for i := 0; i < 3; i++ {
			buf.AppendChar(t, byte('a'+(r+i)%26))
		}
		sum = mix(sum, hashString(buf.String(t)))
	}
	for i := range state {
		sum = mix(sum, uint64(state[i].Size(t)))
		sum = mix(sum, uint64(logs[i].Size(t)))
	}
	return sum
}
