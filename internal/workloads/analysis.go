package workloads

import (
	"fmt"

	"thinlock/internal/jcl"
	"thinlock/internal/threading"
)

// runJax models the jax translator, whose profile was dominated by 19
// million calls to BitSet.get — "two orders of magnitude more than for
// any other method" (§3.4). The workload runs an iterative
// reaching-definitions style dataflow over a synthetic control-flow
// graph, with per-node gen/kill/in/out BitSets.
func runJax(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	nodes := 16 * size
	bits := 8 * size

	gen := make([]*jcl.BitSet, nodes)
	kill := make([]*jcl.BitSet, nodes)
	in := make([]*jcl.BitSet, nodes)
	out := make([]*jcl.BitSet, nodes)
	heap := ctx.Heap()
	for i := 0; i < nodes; i++ {
		// Plain per-node IR objects (never synchronized).
		heap.New("FlowNode")
		heap.New("Insn[]")
		heap.New("int[]")
		gen[i] = ctx.NewBitSet(bits)
		kill[i] = ctx.NewBitSet(bits)
		in[i] = ctx.NewBitSet(bits)
		out[i] = ctx.NewBitSet(bits)
		// Deterministic sparse gen/kill sets.
		gen[i].Set(t, (i*7)%bits)
		gen[i].Set(t, (i*13+5)%bits)
		kill[i].Set(t, (i*11+3)%bits)
	}

	// Fixpoint: out[i] = gen[i] | (in[i] &^ kill[i]);
	// in[i] = out[pred1] | out[pred2]. Predecessors form a static
	// deterministic graph. All bit reads go through the synchronized
	// BitSet.Get path, as in jax.
	changed := true
	rounds := 0
	var sum uint64
	for changed && rounds < 20 {
		changed = false
		rounds++
		for i := 0; i < nodes; i++ {
			p1 := (i + nodes - 1) % nodes
			p2 := (i * 3 % nodes)
			for b := 0; b < bits; b++ {
				inBit := out[p1].Get(t, b) || out[p2].Get(t, b)
				if inBit && !in[i].Get(t, b) {
					in[i].Set(t, b)
				}
				outBit := gen[i].Get(t, b) || (in[i].Get(t, b) && !kill[i].Get(t, b))
				if outBit && !out[i].Get(t, b) {
					out[i].Set(t, b)
					changed = true
				}
			}
		}
	}
	for i := 0; i < nodes; i++ {
		sum = mix(sum, uint64(out[i].Cardinality(t))<<8|uint64(in[i].Cardinality(t)))
	}
	return mix(sum, uint64(rounds))
}

// runHashjava models the HashJava obfuscator: every identifier in the
// source is looked up in (and inserted into) a shared synchronized
// Hashtable mapping it to a generated short name, and the output is
// rebuilt through StringBuffers.
func runHashjava(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	src := sourceText(65 * size)
	tokens := tokenize(ctx, t, src)
	names := ctx.NewHashtable()
	out := ctx.NewStringBuffer()

	next := 0
	obfuscate := func(ident string) string {
		if v := names.Get(t, ident); v != nil {
			return v.(string)
		}
		next++
		short := fmt.Sprintf("z%d", next)
		names.Put(t, ident, short)
		return short
	}

	n := tokens.Size(t)
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < n; i++ {
			tok := tokens.ElementAt(t, i).(string)
			if isIdentChar(tok[0]) && !isDigit(tok[0]) {
				out.Append(t, obfuscate(tok))
			} else {
				out.Append(t, tok)
			}
		}
		out.SetLength(t, 0) // new output file per pass
	}
	return mix(uint64(names.Size(t)), uint64(next))
}

// runJavadoc models the document generator: per declaration it renders
// HTML-ish text with synchronized StringBuffer appends and maintains a
// Vector index plus a cross-reference Hashtable.
func runJavadoc(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	index := ctx.NewVector()
	xref := ctx.NewHashtable()

	heap := ctx.Heap()
	var sum uint64
	for class := 0; class < 10*size; class++ {
		doc := ctx.NewStringBuffer()
		heap.New("ClassDoc")
		doc.Append(t, "<h1>Class C").AppendInt(t, int64(class)).Append(t, "</h1>\n")
		for method := 0; method < 12; method++ {
			doc.Append(t, "<h2>method m").AppendInt(t, int64(method)).Append(t, "</h2>\n")
			doc.Append(t, "<p>Returns the ")
			doc.Append(t, []string{"value", "index", "count", "name"}[method%4])
			doc.Append(t, " of this object.</p>\n")
			heap.New("MethodDoc")
			heap.New("String")
			key := fmt.Sprintf("C%d.m%d", class, method)
			xref.Put(t, key, class*100+method)
		}
		rendered := doc.String(t)
		index.AddElement(t, rendered)
		sum = mix(sum, uint64(doc.Length(t)))
	}
	// Index pass: resolve a deterministic sample of cross references.
	n := index.Size(t)
	for i := 0; i < n; i++ {
		s := index.ElementAt(t, i).(string)
		sum = mix(sum, hashString(s[:16]))
		key := fmt.Sprintf("C%d.m%d", i, i%12)
		if v := xref.Get(t, key); v != nil {
			sum = mix(sum, uint64(v.(int)))
		}
	}
	return sum
}

// runJnet models the neural-net toolkit: the inner loops are pure
// floating-point math over Go slices; the library is touched only for
// the synchronized Random and a Vector of layer snapshots. Of the suite
// this workload has by far the lowest sync density, so its speedup under
// thin locks should be the smallest — the left end of Figure 5.
func runJnet(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	rnd := ctx.NewRandom(42)
	history := ctx.NewVector()

	const inputs, hidden = 16, 12
	w1 := make([]float32, inputs*hidden)
	w2 := make([]float32, hidden)
	for i := range w1 {
		w1[i] = rnd.NextFloat(t) - 0.5
	}
	for i := range w2 {
		w2[i] = rnd.NextFloat(t) - 0.5
	}

	var acc float64
	for epoch := 0; epoch < 40*size; epoch++ {
		// Forward pass on a deterministic input.
		var hiddenOut [hidden]float32
		for h := 0; h < hidden; h++ {
			var s float32
			for i := 0; i < inputs; i++ {
				x := float32((epoch+i)%7) / 7
				s += w1[h*inputs+i] * x
			}
			if s < 0 {
				s = -s // cheap nonlinearity
			}
			hiddenOut[h] = s
		}
		var out float32
		for h := 0; h < hidden; h++ {
			out += w2[h] * hiddenOut[h]
		}
		// Tiny "training" nudge.
		target := float32(epoch%3) / 3
		err := target - out
		for h := 0; h < hidden; h++ {
			w2[h] += 0.001 * err * hiddenOut[h]
		}
		acc += float64(err)
		if epoch%10 == 0 {
			ctx.Heap().New("Sample")
		}
		if epoch%100 == 0 {
			history.AddElement(t, int(out*1000))
		}
	}
	var sum uint64
	n := history.Size(t)
	for i := 0; i < n; i++ {
		sum = mix(sum, uint64(int64(history.ElementAt(t, i).(int))&0xFFFF))
	}
	return mix(sum, uint64(int64(acc*1e3))&0xFFFFFFFF)
}

// runCrema models the Crema obfuscator: per "method" it allocates fresh
// synchronized containers (a Vector and a Stack) and discards them,
// creating a large working set of short-lived locked objects — the usage
// pattern that defeats a 32-entry hot-lock table and thrashes a monitor
// cache, but costs thin locks nothing.
func runCrema(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	heap := ctx.Heap()
	var sum uint64
	for unit := 0; unit < 40*size; unit++ {
		locals := ctx.NewVector()
		work := ctx.NewStack()
		for i := 0; i < 24; i++ {
			heap.New("Insn")
			locals.AddElement(t, (unit*31+i*7)%97)
			if i%3 == 0 {
				work.Push(t, i)
			}
		}
		for !work.Empty(t) {
			i := work.Pop(t).(int)
			sum = mix(sum, uint64(locals.ElementAt(t, i).(int)))
		}
		locals.RemoveAllElements(t)
	}
	return sum
}
