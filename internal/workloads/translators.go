package workloads

import (
	"fmt"

	"thinlock/internal/jcl"
	"thinlock/internal/threading"
)

// runNetrexx models the NetRexx-to-Java translator: line-oriented string
// rewriting dominated by synchronized StringBuffer traffic, with a
// keyword Hashtable consulted per token. Table 1 shows NetRexx with one
// of the suite's largest sync counts.
func runNetrexx(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	src := sourceText(70 * size)
	keywords := ctx.NewHashtable()
	for i, kw := range []string{"if", "int", "long", "Object", "String", "Vector", "class"} {
		keywords.Put(t, kw, i+1)
	}
	heap := ctx.Heap()

	out := ctx.NewStringBuffer()
	line := ctx.NewStringBuffer()
	var sum uint64
	flush := func() {
		// "Emit" the translated line, then reset the buffer.
		s := line.String(t)
		heap.New("String")
		out.Append(t, s).AppendChar(t, '\n')
		sum = mix(sum, hashString(s))
		line.SetLength(t, 0)
		if out.Length(t) > 1<<14 {
			out.SetLength(t, 0) // new output chunk
		}
	}

	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case c == '\n':
			flush()
		case isIdentChar(c):
			start := i
			for i < len(src) && isIdentChar(src[i]) {
				i++
			}
			word := src[start:i]
			i--
			heap.New("String")
			if v := keywords.Get(t, word); v != nil {
				// Translate the keyword, NetRexx-style.
				line.Append(t, "kw").AppendInt(t, int64(v.(int)))
			} else {
				line.Append(t, word)
			}
		default:
			line.AppendChar(t, c)
		}
	}
	flush()
	return mix(sum, uint64(out.Length(t)))
}

// runJavacup models the JavaCUP parser generator: LALR-style set
// construction over Vectors of item states, with a Stack-driven closure
// worklist. Stack.Pop's nested synchronized calls give this workload the
// suite's deepest Figure 3 profile, as javacup shows in the paper.
func runJavacup(ctx *jcl.Context, t *threading.Thread, size int) uint64 {
	heap := ctx.Heap()
	const symbols = 24
	productions := ctx.NewVector()
	for i := 0; i < 12*size; i++ {
		// A production is encoded as lhs*1000 + rhs1*31 + rhs2.
		heap.New("Production")
		lhs := i % symbols
		rhs1 := (i * 7) % symbols
		rhs2 := (i*13 + 5) % symbols
		productions.AddElement(t, lhs*1000+rhs1*31+rhs2)
	}

	// Closure computation: for each seed symbol, expand reachable
	// productions through a work stack; record state sizes.
	states := ctx.NewVector()
	var sum uint64
	n := productions.Size(t)
	for seed := 0; seed < symbols; seed++ {
		work := ctx.NewStack()
		seen := ctx.NewBitSet(symbols)
		work.Push(t, seed)
		stateSize := 0
		for !work.Empty(t) {
			sym := work.Pop(t).(int)
			if seen.Get(t, sym) {
				continue
			}
			seen.Set(t, sym)
			for i := 0; i < n; i++ {
				p := productions.ElementAt(t, i).(int)
				if p/1000 == sym {
					stateSize++
					next := (p % 1000) / 31
					if !seen.Get(t, next) {
						work.Push(t, next)
					}
				}
			}
		}
		heap.New("LalrState")
		states.AddElement(t, stateSize)
		sum = mix(sum, uint64(stateSize))
	}
	// Emit a parse table digest.
	table := ctx.NewStringBuffer()
	m := states.Size(t)
	for i := 0; i < m; i++ {
		table.Append(t, fmt.Sprintf("s%d:%d;", i, states.ElementAt(t, i).(int)))
	}
	return mix(sum, hashString(table.String(t)))
}
