// Package workloads contains the macro-benchmark programs for the
// paper's Table 1 / Figure 3 / Figure 5 experiments.
//
// The paper's suite is a set of real single-threaded language-processing
// tools (javac, javalex, jax, javadoc, obfuscators, a parser generator, a
// neural-net toolkit...) whose synchronization comes from thread-safe
// library classes. Those exact programs are unavailable here (they are
// 1990s Java artifacts), so each workload below is a synthetic program
// with the same *shape*: the same dominant library classes, the same kind
// of call mix, and sync-op volumes that scale with a size parameter. The
// characterization columns of Table 1 (objects created, synced objects,
// sync operations, syncs per synced object) and the Figure 3 nesting
// profile are regenerated from these workloads; see DESIGN.md §2 for the
// substitution rationale.
//
// Every workload is deterministic and returns a checksum, so tests can
// verify that all three lock implementations compute identical results.
package workloads

import (
	"fmt"

	"thinlock/internal/jcl"
	"thinlock/internal/threading"
)

// Workload is one macro-benchmark program.
type Workload struct {
	// Name is the report label, matching the paper's benchmark it is
	// modeled on.
	Name string
	// Source describes the paper benchmark this models.
	Source string
	// Description summarizes the synchronization profile.
	Description string
	// DefaultSize is the work multiplier used by cmd/macrobench.
	DefaultSize int
	// Concurrent marks workloads that spawn worker threads (and may
	// therefore inflate thin locks); single-threaded invariants such as
	// "no inflations" do not apply to them.
	Concurrent bool
	// Run executes the workload on thread t against ctx's library,
	// returning a deterministic checksum.
	Run func(ctx *jcl.Context, t *threading.Thread, size int) uint64
}

// All returns the workload suite in report order.
func All() []Workload {
	return []Workload{
		{
			Name:        "javalex",
			Source:      "JavaLex lexical analyzer generator (E. Berk)",
			Description: "token Vector hammered with synchronized elementAt calls",
			DefaultSize: 60,
			Run:         runJavalex,
		},
		{
			Name:        "javaparser",
			Source:      "Java grammar parser (Sun)",
			Description: "recursive-descent parsing over a token Vector with a Stack",
			DefaultSize: 40,
			Run:         runJavaparser,
		},
		{
			Name:        "jax",
			Source:      "Jax translator (IBM), 19M BitSet.get calls",
			Description: "iterative dataflow over BitSets; get's synchronized block dominates",
			DefaultSize: 12,
			Run:         runJax,
		},
		{
			Name:        "javac",
			Source:      "Java source-to-bytecode compiler (Sun)",
			Description: "lexing + Hashtable symbol tables + Vector IR + StringBuffer emission",
			DefaultSize: 30,
			Run:         runJavac,
		},
		{
			Name:        "hashjava",
			Source:      "HashJava obfuscator (K.B. Sriram)",
			Description: "identifier renaming through a shared Hashtable",
			DefaultSize: 40,
			Run:         runHashjava,
		},
		{
			Name:        "javadoc",
			Source:      "Java document generator (Sun)",
			Description: "StringBuffer-dominated text generation with Vector indexes",
			DefaultSize: 35,
			Run:         runJavadoc,
		},
		{
			Name:        "netrexx",
			Source:      "NetRexx to Java translator 1.0 (IBM)",
			Description: "line-oriented string rewriting; StringBuffer + keyword Hashtable",
			DefaultSize: 35,
			Run:         runNetrexx,
		},
		{
			Name:        "javacup",
			Source:      "JavaCUP parser generator (S. Hudson)",
			Description: "LALR closure over Vectors with a Stack worklist; deepest nesting",
			DefaultSize: 4,
			Run:         runJavacup,
		},
		{
			Name:        "jnet",
			Source:      "Java Neural Network ToolKit (W. Gander)",
			Description: "numeric inner loops; sparse synchronization (small speedup expected)",
			DefaultSize: 25,
			Run:         runJnet,
		},
		{
			Name:        "crema",
			Source:      "Crema obfuscator (H.P. van Vliet)",
			Description: "many short-lived synchronized containers; large lock working set",
			DefaultSize: 30,
			Run:         runCrema,
		},
		{
			Name:        "sessiond",
			Source:      "(this repository) single-owner session processor",
			Description: "one thread reacquiring a small long-lived working set; lock reservation's best case",
			DefaultSize: 25,
			Run:         runSessiond,
		},
		{
			Name:        "minibank",
			Source:      "(this repository) MiniJava program on the bytecode VM",
			Description: "compiled synchronized methods + blocks through the interpreter",
			DefaultSize: 10,
			Run:         runMinibank,
		},
		{
			Name:        "bankmt",
			Source:      "(this repository) contended bank-transfer kernel",
			Description: "4 worker threads transferring between 8 guarded accounts; inflates locks",
			DefaultSize: 20,
			Concurrent:  true,
			Run:         runBankmt,
		},
		{
			Name:        "dining",
			Source:      "(this repository) dining philosophers, ordered forks",
			Description: "5 philosophers nesting contended fork pairs in a consistent order; lockdep must stay silent",
			DefaultSize: 10,
			Concurrent:  true,
			Run:         runDining,
		},
		{
			Name:        "abba",
			Source:      "(this repository) sequential lock-order inversion",
			Description: "two non-overlapping workers nest two guards in opposite orders; lockdep must flag it, nothing hangs",
			DefaultSize: 10,
			Concurrent:  true,
			Run:         runAbba,
		},
		{
			Name:        "churn",
			Source:      "(this repository) monitor-lifecycle churn kernel",
			Description: "2 workers inflate-and-abandon generations of short-lived objects (10M+ at default size); bounds the monitor table under deflation + index recycling",
			DefaultSize: 500,
			Concurrent:  true,
			Run:         runChurn,
		},
	}
}

// ByName returns the named workload, searching the regular suite and
// then the deliberately-deadlocking Hazards().
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	for _, w := range Hazards() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// mix folds x into a running checksum.
func mix(sum uint64, x uint64) uint64 {
	sum ^= x + 0x9E3779B97F4A7C15 // golden-ratio offset so zeroes still stir
	sum *= 1099511628211          // FNV prime
	return sum
}

// sourceText synthesizes a deterministic Java-ish source file of roughly
// n statements for the text-processing workloads.
func sourceText(n int) string {
	idents := []string{"count", "index", "buffer", "table", "result", "value", "stream", "token"}
	types := []string{"int", "long", "Object", "String", "Vector"}
	s := "class Synthetic {\n"
	for i := 0; i < n; i++ {
		id := idents[i%len(idents)]
		ty := types[i%len(types)]
		s += fmt.Sprintf("  %s %s%d = %s%d + %d;\n", ty, id, i, id, (i+1)%n, i*7%13)
		if i%9 == 0 {
			s += fmt.Sprintf("  if (%s%d < %d) { %s%d = %d; }\n", id, i, i%29, id, i, i%11)
		}
	}
	return s + "}\n"
}

// isIdentChar reports whether c continues an identifier.
func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// isDigit reports whether c is a decimal digit.
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// tokenize scans src into a token Vector, paying one synchronized
// AddElement per token and synchronized StringBuffer appends per
// character, exactly the library call shape of a JDK 1.1 lexer. A reused
// scan buffer keeps the synchronized-object count low while every token
// still materializes plain heap objects (the String and its char array),
// reproducing Table 1's objects >> synced-objects ratio.
func tokenize(ctx *jcl.Context, t *threading.Thread, src string) *jcl.Vector {
	tokens := ctx.NewVector()
	scan := ctx.NewStringBuffer()
	heap := ctx.Heap()
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\n' || c == '\t':
			i++
		case isIdentChar(c):
			scan.SetLength(t, 0)
			for i < len(src) && isIdentChar(src[i]) {
				scan.AppendChar(t, src[i])
				i++
			}
			heap.New("String")
			heap.New("char[]")
			tokens.AddElement(t, scan.String(t))
		default:
			heap.New("String")
			tokens.AddElement(t, string(c))
			i++
		}
	}
	return tokens
}

// hashString folds s like java.lang.String.hashCode.
func hashString(s string) uint64 {
	var h uint64
	for i := 0; i < len(s); i++ {
		h = h*31 + uint64(s[i])
	}
	return h
}
