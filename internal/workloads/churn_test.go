package workloads

import (
	"testing"

	"thinlock/internal/core"
	"thinlock/internal/jcl"
	"thinlock/internal/object"
	"thinlock/internal/threading"
)

// runChurnOn runs the churn workload at the given size on l and returns
// its checksum.
func runChurnOn(t *testing.T, l *core.ThinLocks, size int) uint64 {
	t.Helper()
	w, ok := ByName("churn")
	if !ok {
		t.Fatal("churn workload not registered")
	}
	ctx := jcl.NewContext(l, object.NewHeap())
	reg := threading.NewRegistry()
	th, err := reg.Attach("w")
	if err != nil {
		t.Fatal(err)
	}
	return w.Run(ctx, th, size)
}

// TestChurnBoundsMonitorTable is the workload-level memory-bound
// assertion of the compact-monitor extension: after churning through
// thousands of inflated-and-abandoned objects, the monitor table must
// have deflated and recycled nearly all of them — its footprint stays
// O(barriers in flight), and it fails if the table only ever grows.
func TestChurnBoundsMonitorTable(t *testing.T) {
	t.Parallel()
	size := 40
	if testing.Short() {
		size = 8
	}
	l := core.New(core.Options{RecycleMonitors: true})
	if sum := runChurnOn(t, l, size); sum == 0 {
		t.Fatal("checksum is zero; workload may be degenerate")
	}

	s := l.Stats()
	if s.Inflations() == 0 {
		t.Fatal("churn inflated nothing; the workload exercised no monitors")
	}
	// Table must not only grow: deflations return indices to the
	// recycler and later inflations reuse them.
	if s.MonitorFrees == 0 {
		t.Fatal("table only ever grew: no monitor index was freed")
	}
	if s.MonitorRecycles == 0 {
		t.Fatal("table only ever grew: no freed index was reused")
	}
	// All abandoned generations have fully drained.
	if s.LiveMonitors != 0 {
		t.Fatalf("LiveMonitors = %d after run, want 0", s.LiveMonitors)
	}
	// Footprint bound: a two-party barrier keeps the workers within one
	// rendezvous of each other, so only a handful of monitors ever
	// coexist — while cumulative inflations number in the thousands.
	const spanBound = 16
	if s.TableSpan > spanBound {
		t.Fatalf("TableSpan = %d, want <= %d (O(concurrently-held), not O(ever-inflated))",
			s.TableSpan, spanBound)
	}
	if s.FatLocks <= spanBound {
		t.Fatalf("FatLocks = %d; churn too small to demonstrate the bound", s.FatLocks)
	}
}

// TestChurnGrowsTableWithoutRecycling pins the contrast the churn
// workload exists to expose: without index recycling the table footprint
// equals cumulative inflations.
func TestChurnGrowsTableWithoutRecycling(t *testing.T) {
	t.Parallel()
	l := core.NewDefault()
	runChurnOn(t, l, 4)
	s := l.Stats()
	if s.Inflations() == 0 {
		t.Fatal("churn inflated nothing")
	}
	if s.TableSpan != s.FatLocks {
		t.Fatalf("TableSpan = %d, FatLocks = %d; without recycling they must match",
			s.TableSpan, s.FatLocks)
	}
}
