package object

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestZeroValueIsUnlocked(t *testing.T) {
	t.Parallel()
	var o Object
	if o.Header() != 0 {
		t.Errorf("zero Object header = %#x, want 0", o.Header())
	}
	if o.Misc() != 0 {
		t.Errorf("zero Object misc = %#x, want 0", o.Misc())
	}
}

func TestHeapNewSeedsMiscBits(t *testing.T) {
	t.Parallel()
	h := NewHeap()
	sawDistinct := false
	var prev uint32
	for i := 0; i < 50; i++ {
		o := h.New("X")
		m := o.Misc()
		if m == 0 {
			t.Fatalf("object %d has zero misc bits", i)
		}
		if m > MiscMask {
			t.Fatalf("misc %#x exceeds 8 bits", m)
		}
		// The lock field (high 24 bits) must start clear: unlocked.
		if o.Header()&^MiscMask != 0 {
			t.Fatalf("fresh object lock field = %#x, want 0", o.Header()&^MiscMask)
		}
		if i > 0 && m != prev {
			sawDistinct = true
		}
		prev = m
	}
	if !sawDistinct {
		t.Error("all 50 objects share identical misc bits; want variety")
	}
}

func TestHeapIDsUniqueAndCounted(t *testing.T) {
	t.Parallel()
	h := NewHeap()
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		o := h.New("X")
		if seen[o.ID()] {
			t.Fatalf("duplicate id %d", o.ID())
		}
		seen[o.ID()] = true
	}
	if h.Allocated() != 100 {
		t.Errorf("Allocated() = %d, want 100", h.Allocated())
	}
}

func TestHeapConcurrentAllocation(t *testing.T) {
	t.Parallel()
	h := NewHeap()
	const goroutines, perG = 8, 500
	ids := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ids[g] = append(ids[g], h.New("X").ID())
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, batch := range ids {
		for _, id := range batch {
			if seen[id] {
				t.Fatalf("duplicate id %d across goroutines", id)
			}
			seen[id] = true
		}
	}
	if h.Allocated() != goroutines*perG {
		t.Errorf("Allocated() = %d, want %d", h.Allocated(), goroutines*perG)
	}
}

func TestCASHeader(t *testing.T) {
	t.Parallel()
	h := NewHeap()
	o := h.New("X")
	misc := o.Misc()
	if !o.CASHeader(misc, misc|0x10000) {
		t.Fatal("CAS from current header failed")
	}
	if o.Header() != misc|0x10000 {
		t.Fatalf("header = %#x after CAS", o.Header())
	}
	if o.CASHeader(misc, misc|0x20000) {
		t.Fatal("CAS from stale header succeeded")
	}
}

func TestSetHeaderPreservesNothing(t *testing.T) {
	t.Parallel()
	var o Object
	o.SetHeader(0xDEADBEEF)
	if o.Header() != 0xDEADBEEF {
		t.Fatalf("header = %#x, want 0xDEADBEEF", o.Header())
	}
}

func TestString(t *testing.T) {
	t.Parallel()
	h := NewHeap()
	o := h.New("Vector")
	if got, want := o.String(), "Vector#1"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	var z Object
	if got, want := z.String(), "object#0"; got != want {
		t.Errorf("zero String() = %q, want %q", got, want)
	}
}

// Property: misc bits survive any sequence of lock-field writes that
// respect the split (as all lock implementations must).
func TestMiscBitsStableUnderLockFieldWrites(t *testing.T) {
	t.Parallel()
	prop := func(writes []uint32) bool {
		h := NewHeap()
		o := h.New("X")
		misc := o.Misc()
		for _, w := range writes {
			o.SetHeader((w &^ MiscMask) | misc)
			if o.Misc() != misc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClassAndHeaderAddr(t *testing.T) {
	t.Parallel()
	h := NewHeap()
	o := h.New("Vector")
	if o.Class() != "Vector" {
		t.Errorf("Class = %q", o.Class())
	}
	if o.HeaderAddr() == nil {
		t.Fatal("HeaderAddr nil")
	}
	*o.HeaderAddr() = 0x12345678 // direct access is how arch.CAS reaches it
	if o.Header() != 0x12345678 {
		t.Errorf("header via addr = %#x", o.Header())
	}
}

func TestFlagBits(t *testing.T) {
	t.Parallel()
	h := NewHeap()
	o := h.New("X")
	if o.Flags() != 0 {
		t.Fatalf("fresh flags = %#x", o.Flags())
	}
	o.SetFlagBits(0b101)
	if o.Flags() != 0b101 {
		t.Fatalf("flags = %#x after set", o.Flags())
	}
	o.SetFlagBits(0b101) // idempotent fast path
	if o.Flags() != 0b101 {
		t.Fatalf("flags = %#x after redundant set", o.Flags())
	}
	o.ClearFlagBits(0b001)
	if o.Flags() != 0b100 {
		t.Fatalf("flags = %#x after clear", o.Flags())
	}
	o.ClearFlagBits(0b001) // idempotent fast path
	if o.Flags() != 0b100 {
		t.Fatalf("flags = %#x after redundant clear", o.Flags())
	}
}

func TestFlagBitsConcurrent(t *testing.T) {
	t.Parallel()
	// Concurrent set/clear of disjoint bits must not lose updates.
	h := NewHeap()
	o := h.New("X")
	var wg sync.WaitGroup
	for bit := uint32(0); bit < 8; bit++ {
		bit := bit
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				o.SetFlagBits(1 << bit)
				o.ClearFlagBits(1 << bit)
			}
			o.SetFlagBits(1 << bit)
		}()
	}
	wg.Wait()
	if o.Flags() != 0xFF {
		t.Fatalf("flags = %#x, want 0xFF (lost updates)", o.Flags())
	}
}

func BenchmarkHeapNew(b *testing.B) {
	h := NewHeap()
	for i := 0; i < b.N; i++ {
		_ = h.New("X")
	}
}

func BenchmarkHeaderLoad(b *testing.B) {
	h := NewHeap()
	o := h.New("X")
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += o.Header()
	}
	_ = sink
}
