// Package object provides the Java-style object model the lock
// implementations operate on.
//
// In the paper's JVM each object has a three-word header; 24 bits of one
// header word were freed up for the lock field, and the 8 bits sharing
// that word are constant while the object is locked (§2.3, Figure 1a).
// We reproduce that layout exactly: every Object carries a 32-bit header
// word whose high 24 bits are the lock field and whose low 8 bits are
// miscellaneous header data (we store a pseudo-hash there, and it is
// deliberately nonzero for most objects so the lock-word bit tricks are
// exercised against realistic values).
package object

import (
	"fmt"
	"sync/atomic"
)

// MiscMask selects the low 8 header bits that do not belong to the lock
// field.
const MiscMask uint32 = 0xFF

// Object is a heap object with a lockable header. The zero value is a
// valid unlocked object with zero misc bits; objects allocated from a
// Heap get varied misc bits and unique ids.
type Object struct {
	header uint32 // accessed only via sync/atomic
	// flags is a second header word for bits that must be writable by
	// non-owners, such as the flat-lock-contention bit of the queued
	// inflation extension. Keeping it outside the lock word preserves
	// the paper's discipline: owner stores to the lock word can never
	// clobber a concurrently-set flag.
	flags uint32

	id    uint64
	class string
}

// ID returns the object's allocation id (0 for a zero-value Object).
func (o *Object) ID() uint64 { return o.id }

// Class returns the object's class tag ("" for a zero-value Object).
func (o *Object) Class() string { return o.class }

// String implements fmt.Stringer.
func (o *Object) String() string {
	c := o.class
	if c == "" {
		c = "object"
	}
	return fmt.Sprintf("%s#%d", c, o.id)
}

// Header returns the current header word. The load is atomic but carries
// plain-load cost, matching the paper's use of ordinary load instructions
// on the lock word.
func (o *Object) Header() uint32 { return atomic.LoadUint32(&o.header) }

// SetHeader stores the header word with a plain store. Per the paper's
// locking discipline it must only be called by the thread that owns the
// object's lock (or during allocation).
func (o *Object) SetHeader(w uint32) { atomic.StoreUint32(&o.header, w) }

// CASHeader atomically replaces the header word if it equals old,
// reporting success. This is the expensive operation on the lock fast
// path.
func (o *Object) CASHeader(old, new uint32) bool {
	return atomic.CompareAndSwapUint32(&o.header, old, new)
}

// HeaderAddr exposes the header word's address for lock implementations
// that route the compare-and-swap through the simulated hardware layer.
func (o *Object) HeaderAddr() *uint32 { return &o.header }

// Misc returns the constant low 8 bits of the header.
func (o *Object) Misc() uint32 { return o.Header() & MiscMask }

// Flags returns the second header word.
func (o *Object) Flags() uint32 { return atomic.LoadUint32(&o.flags) }

// SetFlagBits atomically ORs bits into the flags word.
func (o *Object) SetFlagBits(bits uint32) {
	for {
		old := atomic.LoadUint32(&o.flags)
		if old&bits == bits || atomic.CompareAndSwapUint32(&o.flags, old, old|bits) {
			return
		}
	}
}

// ClearFlagBits atomically clears bits in the flags word.
func (o *Object) ClearFlagBits(bits uint32) {
	for {
		old := atomic.LoadUint32(&o.flags)
		if old&bits == 0 || atomic.CompareAndSwapUint32(&o.flags, old, old&^bits) {
			return
		}
	}
}

// Heap allocates objects and tracks the allocation statistics reported in
// the paper's Table 1.
type Heap struct {
	allocated atomic.Uint64
}

// NewHeap returns an empty heap.
func NewHeap() *Heap { return &Heap{} }

// New allocates an object of the given class. The low 8 header bits are
// seeded with a nonzero pseudo-hash derived from the allocation id, as a
// real VM would store hash or GC bits there.
func (h *Heap) New(class string) *Object {
	id := h.allocated.Add(1)
	o := &Object{id: id, class: class}
	// Mix the id so consecutive allocations get differing misc bits,
	// and force the result nonzero: constant-zero misc bits would hide
	// a whole family of lock-word encoding bugs.
	misc := uint32(id*2654435761) & MiscMask
	if misc == 0 {
		misc = 0xA5
	}
	o.SetHeader(misc)
	return o
}

// Allocated reports how many objects this heap has created.
func (h *Heap) Allocated() uint64 { return h.allocated.Load() }
