package biased

// Mutations plants deliberate protocol bugs into the biased-locking
// implementation so the differential checker (internal/check) can prove
// it detects revocation-protocol failures, mirroring
// core.Options.TestMutations. All fields default to off; production
// configurations never set them.
type Mutations struct {
	// RevokeOffByOne makes the revocation walker seed the conventional
	// lock word with the owner's full recursion depth instead of
	// (depth − 1), the classic conversion error between "locks held"
	// and the thin count's (locks − 1) encoding. A revoked reservation
	// surfaces one phantom recursion level: an object revoked at depth
	// 0 appears locked once, and a revoked held lock needs one unlock
	// too many — an outcome divergence in any schedule that revokes.
	RevokeOffByOne bool

	// SkipOwnerValidation makes the owner's biased fast path trust its
	// bias slot without re-validating the object header after
	// publishing the new depth — it breaks the owner's half of the
	// Dekker store/load handshake. An owner that keeps using a revoked
	// reservation updates only its private slot, so its nested locks
	// and unlocks never reach the shared word: the final release is
	// lost and a contender waits forever (a stuck schedule), or the
	// leaked lock word surfaces as a quiescence failure.
	SkipOwnerValidation bool
}
