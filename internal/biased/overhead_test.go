package biased

import (
	"testing"
	"time"

	"thinlock/internal/arch"
	"thinlock/internal/core"
	"thinlock/internal/lockapi"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

// TestFastPathZeroAllocWhenProfilingDisabled: with telemetry and
// lockprof inactive, the owner's biased reacquire/release and the
// revocation paths must not allocate — the hooks have to cost nothing
// when disabled. Deliberately not parallel: AllocsPerRun reads global
// allocation counters.
func TestFastPathZeroAllocWhenProfilingDisabled(t *testing.T) {
	if telemetry.Enabled() {
		t.Fatal("telemetry unexpectedly active")
	}
	w := newWorld(t, Options{})
	a := w.thread(t, "a")
	o := w.heap.New("obj")

	w.l.Lock(a, o) // install (allocates the class entry, once)
	if err := w.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		w.l.Lock(a, o)
		if err := w.l.Unlock(a, o); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("biased reacquire/release allocates %.2f objects/op with profiling disabled", avg)
	}

	// The revocation slow path (minus the one-time monitor allocations)
	// must be allocation-free too: revoke a fresh unheld reservation per
	// run.
	b := w.thread(t, "b")
	objs := make([]*object.Object, 100)
	for i := range objs {
		objs[i] = w.heap.New("revobj")
		w.l.Lock(a, objs[i])
		if err := w.l.Unlock(a, objs[i]); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(99, func() {
		w.l.Lock(b, objs[i])
		if err := w.l.Unlock(b, objs[i]); err != nil {
			t.Fatal(err)
		}
		i++
	}); avg > 0 {
		t.Errorf("revocation allocates %.2f objects/op with profiling disabled", avg)
	}
	if s := w.l.Stats(); s.Revocations() == 0 {
		t.Error("overhead run exercised no revocations — the measurement is vacuous")
	}
}

// TestBiasedReacquireBeatsThinCAS is the acceptance microbenchmark: the
// reservation's whole justification is that a same-owner reacquire (one
// plain depth store + one validating load) undercuts the thin lock's
// compare-and-swap fast path. Medians over several rounds; a generous
// margin and retries keep scheduler noise from flaking CI.
func TestBiasedReacquireBeatsThinCAS(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped under -short")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts the atomics being compared")
	}
	const (
		iters  = 200_000
		rounds = 7
	)
	measure := func(l lockapi.Locker, th *threading.Thread, o *object.Object) time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				l.Lock(th, o)
				if err := l.Unlock(th, o); err != nil {
					t.Fatal(err)
				}
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	for attempt := 1; ; attempt++ {
		bw := newWorld(t, Options{})
		bth := bw.thread(t, "b")
		bo := bw.heap.New("bench")
		bw.l.Lock(bth, bo) // reserve
		if err := bw.l.Unlock(bth, bo); err != nil {
			t.Fatal(err)
		}
		biasedTime := measure(bw.l, bth, bo)

		tl := core.New(core.Options{CPU: arch.PowerPCUP})
		treg := threading.NewRegistry()
		tth, err := treg.Attach("t")
		if err != nil {
			t.Fatal(err)
		}
		to := object.NewHeap().New("bench")
		thinTime := measure(tl, tth, to)

		if biasedTime < thinTime {
			t.Logf("biased reacquire %v vs thin CAS %v over %d pairs (%.2fx)",
				biasedTime, thinTime, iters, float64(thinTime)/float64(biasedTime))
			return
		}
		if attempt == 3 {
			t.Fatalf("biased reacquire (%v) did not beat thin CAS (%v) in %d attempts",
				biasedTime, thinTime, attempt)
		}
	}
}
