package biased

import (
	"sync/atomic"
	"time"

	"thinlock/internal/arch"
	"thinlock/internal/core"
	"thinlock/internal/lockdep"
	"thinlock/internal/lockprof"
	"thinlock/internal/monitor"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

// lockSlow handles everything the biased fast path does not: first
// acquisitions (reserve or thin-CAS), nested thin locking, revocation
// of other threads' reservations, inflation, and contention. The
// telemetry and lockprof wrappers live here, off the fast path, on the
// same zero-alloc-when-disabled pattern as core.
func (l *Locker) lockSlow(t *threading.Thread, o *object.Object) {
	m := telemetry.Active()
	p := lockprof.Active()
	if m == nil && p == nil {
		l.lockSlowBody(t, o)
		return
	}
	if m != nil {
		m.Inc(t, telemetry.CtrSlowPathEntries)
	}
	if p != nil {
		p.SlowPathEnter(t, o)
	}
	start := telemetry.Now()
	l.lockSlowBody(t, o)
	elapsed := telemetry.Now() - start
	if m != nil {
		m.Observe(t, telemetry.HistAcquireSlowNs, elapsed)
	}
	if p != nil {
		p.SlowPathExit(t, o, elapsed)
	}
}

// lockSlowBody is the slow-path state machine proper.
func (l *Locker) lockSlowBody(t *threading.Thread, o *object.Object) {
	hp := o.HeaderAddr()
	shifted := t.Shifted()
	var b arch.Backoff
	spun := false
	for {
		w := atomic.LoadUint32(hp)
		x := w ^ shifted
		switch {
		case x < thinNestedLimit:
			// Thin, owned by this thread, count < 127: nested lock via
			// the owner's plain store, exactly as in core.
			atomic.StoreUint32(hp, w+core.CountUnit)
			return

		case core.IsInflated(w):
			lockdep.Blocked(t, o, lockdep.WaitFat)
			l.table.Get(core.FatIndex(w)).Enter(t)
			return

		case core.IsBiasRevoking(w):
			// Another thread is mid-revocation (possibly of our own
			// reservation); it owns the word until it publishes the
			// walked state.
			lockdep.Blocked(t, o, lockdep.WaitRevocation)
			l.spinRounds.Add(1)
			telemetry.Inc(t, telemetry.CtrSpinRounds)
			b.Pause()

		case core.IsBiased(w):
			if s := t.BiasSlotFor(o.ID()); s != nil && w == s.Word() {
				// Our own reservation at the depth cap (the fast path
				// declines at maxBiasDepth): self-revoke straight to a
				// fat lock carrying the full depth.
				if l.selfRevokeOverflow(t, o, s, w) {
					return
				}
				continue // lost the sentinel race to a concurrent revoker
			}
			// Reserved by another thread (or a stale image of our own
			// index): revoke. A stale-epoch, unheld reservation may be
			// transferred to us instead, which acquires.
			if l.revoke(t, o, w) {
				return
			}

		case x&core.TIDMask == 0:
			// Thin, owned by this thread, count saturated at 127: the
			// next lock would collide with the bias bit, so inflate,
			// carrying the full nesting depth into the fat lock.
			l.inflOverflow.Add(1)
			telemetry.Inc(t, telemetry.CtrInflationsOverflow)
			lockprof.Inflation(t, o, lockprof.CauseOverflow)
			l.inflate(t, o, uint32(core.BiasMaxThinCount)+2)
			return

		case w&core.TIDMask == 0:
			// Unlocked: reserve it if the object and class are still
			// biasable, else take it as a conventional thin lock.
			if l.tryInstallBias(t, o, w) {
				return
			}
			if arch.CAS(l.cpu, hp, w, w&core.MiscMask|shifted) {
				if spun {
					// Locality of contention (§2.3.4): an object that
					// has shown contention once will again.
					l.spinAcq.Add(1)
					l.inflContention.Add(1)
					telemetry.Inc(t, telemetry.CtrInflationsContention)
					lockprof.Inflation(t, o, lockprof.CauseContention)
					l.inflate(t, o, 1)
				}
				return
			}
			telemetry.Inc(t, telemetry.CtrCASFailures)
			lockprof.CASFailure(t)

		default:
			// Thin-locked by another thread: spin with back-off until
			// the owner releases.
			lockdep.Blocked(t, o, lockdep.WaitSpin)
			spun = true
			l.spinRounds.Add(1)
			telemetry.Inc(t, telemetry.CtrSpinRounds)
			b.Pause()
		}
	}
}

// tryInstallBias attempts to reserve the unlocked object o (header w)
// for t. The bias slot is fully initialized before the CAS publishes
// the reservation, so a revoker that wins the sentinel later always
// finds consistent slot state.
func (l *Locker) tryInstallBias(t *threading.Thread, o *object.Object, w uint32) bool {
	if l.disableBias || o.Flags()&FlagBiasDead != 0 {
		return false
	}
	cls := l.classFor(o.Class())
	if cls.unbiasable.Load() {
		return false
	}
	s := t.ClaimBiasSlot(o.ID())
	if s == nil {
		return false // all slots reserved for other objects
	}
	nw := core.BiasedWord(t.Index(), cls.epoch.Load(), l.epochBits, w&core.MiscMask)
	s.SetWord(nw)
	s.SetDepth(1)
	if o.CASHeader(w, nw) {
		l.biasInstalls.Add(1)
		telemetry.Inc(t, telemetry.CtrBiasInstalls)
		return true
	}
	s.Release()
	return false
}

// inflate converts the thin lock the calling thread owns into a fat
// lock holding `locks` nested locks, as in core: the header store may
// be plain because the inflating thread owns the thin word.
func (l *Locker) inflate(t *threading.Thread, o *object.Object, locks uint32) *monitor.Monitor {
	m := l.table.Allocate()
	m.SeedOwner(t, locks)
	o.SetHeader(core.InflatedWord(m.Index(), o.Header()))
	return m
}

// unlockSlow releases one level through the header: nested and final
// thin unlocks (plain stores, the paper's discipline), fat exits, and
// errors. A revocation sentinel is waited out and the walked word
// reclassified.
func (l *Locker) unlockSlow(t *threading.Thread, o *object.Object) error {
	lockprof.UnlockSlow(t, o)
	hp := o.HeaderAddr()
	shifted := t.Shifted()
	for {
		w := atomic.LoadUint32(hp)
		x := w ^ shifted
		switch {
		case x < core.CountUnit:
			// Thin, owned by this thread, count 0: final release.
			atomic.StoreUint32(hp, w^shifted)
			return nil
		case x < core.BiasBit:
			// Thin, owned by this thread, count ≥ 1: nested release.
			atomic.StoreUint32(hp, w-core.CountUnit)
			return nil
		case core.IsInflated(w):
			return l.table.Get(core.FatIndex(w)).Exit(t)
		case core.IsBiasRevoking(w):
			l.awaitRevocation(t, o)
		default:
			// Unlocked, reserved by another thread, or thin-locked by
			// another thread: this thread does not own the monitor.
			return ErrIllegalMonitorState
		}
	}
}

// awaitRevocation waits out a revocation sentinel on o's header. The
// revoker unparks the reserving thread when it publishes the walked
// word; the parker timeout bounds the case where the waiting thread is
// not the one the revoker knows about. The stall is the handshake's
// cost and is recorded when telemetry is enabled.
func (l *Locker) awaitRevocation(t *threading.Thread, o *object.Object) {
	hp := o.HeaderAddr()
	if !core.IsBiasRevoking(atomic.LoadUint32(hp)) {
		return
	}
	tel := telemetry.Active()
	var start int64
	if tel != nil {
		start = telemetry.Now()
	}
	// This path does not end in an acquisition (unlock and wait also
	// ride out sentinels), so the wait-for edge is cleared explicitly.
	lockdep.Blocked(t, o, lockdep.WaitRevocation)
	var b arch.Backoff
	for core.IsBiasRevoking(atomic.LoadUint32(hp)) {
		if b.Rounds() >= 8 {
			t.Parker().ParkTimeout(100 * time.Microsecond)
		} else {
			b.Pause()
		}
	}
	lockdep.Unblocked(t)
	if tel != nil {
		tel.Observe(t, telemetry.HistBiasHandshakeNs, telemetry.Now()-start)
	}
}
