package biased

import (
	"testing"
	"time"

	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/testutil"
	"thinlock/internal/threading"
)

// world is one test's isolated locker, registry and heap.
type world struct {
	l    *Locker
	reg  *threading.Registry
	heap *object.Heap
}

func newWorld(t *testing.T, opts Options) *world {
	t.Helper()
	return &world{l: New(opts), reg: threading.NewRegistry(), heap: object.NewHeap()}
}

func (w *world) thread(t *testing.T, name string) *threading.Thread {
	t.Helper()
	th, err := w.reg.Attach(name)
	if err != nil {
		t.Fatalf("attach %s: %v", name, err)
	}
	return th
}

// TestReservationLifecycle: the first acquisition installs a
// reservation; re-acquisitions and releases by the owner leave the
// header word untouched and cost no further installs.
func TestReservationLifecycle(t *testing.T) {
	t.Parallel()
	w := newWorld(t, Options{})
	a := w.thread(t, "a")
	o := w.heap.New("obj")

	w.l.Lock(a, o)
	if !w.l.Biased(o) {
		t.Fatal("first lock did not install a reservation")
	}
	if hi := w.l.HolderIndex(o); hi != 0 {
		t.Fatalf("HolderIndex = %d for a biased word, want 0 (depth is slot-private)", hi)
	}
	header := o.Header()
	if err := w.l.Unlock(a, o); err != nil {
		t.Fatalf("unlock: %v", err)
	}
	if !w.l.Biased(o) {
		t.Fatal("release dropped the reservation")
	}
	for i := 0; i < 50; i++ {
		w.l.Lock(a, o)
		if err := w.l.Unlock(a, o); err != nil {
			t.Fatalf("round %d unlock: %v", i, err)
		}
	}
	if got := o.Header(); got != header {
		t.Fatalf("owner's reacquisitions wrote the header: %#08x → %#08x", header, got)
	}
	s := w.l.Stats()
	if s.BiasInstalls != 1 {
		t.Fatalf("BiasInstalls = %d, want 1", s.BiasInstalls)
	}
	if s.Revocations() != 0 || s.Inflations() != 0 || s.FatLocks != 0 {
		t.Fatalf("single-owner use triggered revocation/inflation: %+v", s)
	}
	if err := w.l.Unlock(a, o); err != ErrIllegalMonitorState {
		t.Fatalf("unheld unlock err = %v, want ErrIllegalMonitorState", err)
	}
}

// TestContenderRevokesUnheldReservation: a second thread locking an
// object whose reservation is not currently held must revoke the bias
// (rebiasing is off here, so no transfer) and acquire a conventional
// thin lock.
func TestContenderRevokesUnheldReservation(t *testing.T) {
	t.Parallel()
	w := newWorld(t, Options{DisableRebias: true})
	a, b := w.thread(t, "a"), w.thread(t, "b")
	o := w.heap.New("obj")

	w.l.Lock(a, o)
	if err := w.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	w.l.Lock(b, o)
	if w.l.Biased(o) {
		t.Fatal("reservation survived a contender's acquisition")
	}
	if hi := w.l.HolderIndex(o); hi != b.Index() {
		t.Fatalf("HolderIndex = %d, want %d", hi, b.Index())
	}
	if err := w.l.Unlock(b, o); err != nil {
		t.Fatal(err)
	}
	s := w.l.Stats()
	if s.RevocationsContention != 1 {
		t.Fatalf("RevocationsContention = %d, want 1", s.RevocationsContention)
	}
	if s.BiasTransfers != 0 {
		t.Fatalf("BiasTransfers = %d with rebiasing disabled", s.BiasTransfers)
	}
	// Revoking an unheld reservation allocates no monitor.
	if s.FatLocks != 0 {
		t.Fatalf("FatLocks = %d after an uncontended revocation", s.FatLocks)
	}
	// The object must never re-bias after revocation.
	w.l.Lock(a, o)
	if w.l.Biased(o) {
		t.Fatal("object re-biased after revocation")
	}
	if err := w.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
}

// TestContenderRevokesHeldReservation: revoking a reservation held at
// depth 2 must surface exactly depth 2 in the conventional word — the
// owner unwinds with exactly two unlocks and the blocked contender then
// acquires.
func TestContenderRevokesHeldReservation(t *testing.T) {
	t.Parallel()
	w := newWorld(t, Options{})
	a := w.thread(t, "a")
	o := w.heap.New("obj")

	w.l.Lock(a, o)
	w.l.Lock(a, o)
	acquired := make(chan struct{})
	done, err := w.reg.Go("b", func(b *threading.Thread) {
		w.l.Lock(b, o)
		close(acquired)
		if err := w.l.Unlock(b, o); err != nil {
			t.Errorf("b unlock: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the contender has revoked the bias (the word leaves the
	// biased state), proving the revocation ran against a *held*
	// reservation rather than after our releases.
	for w.l.Biased(o) {
		time.Sleep(50 * time.Microsecond)
	}
	select {
	case <-acquired:
		t.Fatal("contender acquired while the reservation was held at depth 2")
	default:
	}
	if err := w.l.Unlock(a, o); err != nil {
		t.Fatalf("unlock 1: %v", err)
	}
	if err := w.l.Unlock(a, o); err != nil {
		t.Fatalf("unlock 2: %v", err)
	}
	select {
	case <-done:
	case <-time.After(testutil.DefaultWaitTimeout):
		t.Fatal("contender never acquired after the owner unwound")
	}
	if err := w.l.Unlock(a, o); err != ErrIllegalMonitorState {
		t.Fatalf("third unlock err = %v, want ErrIllegalMonitorState", err)
	}
	s := w.l.Stats()
	if s.RevocationsContention != 1 {
		t.Fatalf("RevocationsContention = %d, want 1", s.RevocationsContention)
	}
	if uint64(s.FatLocks) != s.Inflations() {
		t.Fatalf("FatLocks = %d, Inflations = %d: monitor accounting broken", s.FatLocks, s.Inflations())
	}
}

// TestWaitSelfRevokesToFat: Wait on a reserved object must self-revoke
// straight to a fat lock carrying the reservation's depth.
func TestWaitSelfRevokesToFat(t *testing.T) {
	t.Parallel()
	w := newWorld(t, Options{})
	a := w.thread(t, "a")
	o := w.heap.New("obj")

	w.l.Lock(a, o)
	w.l.Lock(a, o)
	notified, err := w.l.Wait(a, o, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if notified {
		t.Fatal("notified = true on a timeout")
	}
	if !w.l.Inflated(o) {
		t.Fatal("Wait on a reservation did not inflate")
	}
	s := w.l.Stats()
	if s.RevocationsWait != 1 || s.InflationsWait != 1 {
		t.Fatalf("RevocationsWait = %d, InflationsWait = %d, want 1/1", s.RevocationsWait, s.InflationsWait)
	}
	for i := 0; i < 2; i++ {
		if err := w.l.Unlock(a, o); err != nil {
			t.Fatalf("unlock %d: %v", i, err)
		}
	}
	if err := w.l.Unlock(a, o); err != ErrIllegalMonitorState {
		t.Fatalf("extra unlock err = %v, want ErrIllegalMonitorState", err)
	}
}

// TestOverflowSelfRevokesToFat: recursion past the biased depth cap
// (128) self-revokes to a fat lock; the full depth must unwind exactly.
func TestOverflowSelfRevokesToFat(t *testing.T) {
	t.Parallel()
	w := newWorld(t, Options{})
	a := w.thread(t, "a")
	o := w.heap.New("obj")

	const depth = maxBiasDepth + 1 // one past the cap
	for i := 0; i < depth; i++ {
		w.l.Lock(a, o)
	}
	if !w.l.Inflated(o) {
		t.Fatal("recursion past the bias depth cap did not inflate")
	}
	s := w.l.Stats()
	if s.RevocationsOverflow != 1 || s.InflationsOverflow != 1 {
		t.Fatalf("RevocationsOverflow = %d, InflationsOverflow = %d, want 1/1",
			s.RevocationsOverflow, s.InflationsOverflow)
	}
	for i := 0; i < depth; i++ {
		if err := w.l.Unlock(a, o); err != nil {
			t.Fatalf("unlock %d: %v", i, err)
		}
	}
	if err := w.l.Unlock(a, o); err != ErrIllegalMonitorState {
		t.Fatalf("extra unlock err = %v, want ErrIllegalMonitorState", err)
	}
}

// TestBulkRebiasTransfersStaleReservation: after a class-epoch bump, an
// unheld reservation stamped with the old epoch is transferred to the
// contender (one CAS) instead of being revoked to a thin word.
func TestBulkRebiasTransfersStaleReservation(t *testing.T) {
	t.Parallel()
	w := newWorld(t, Options{RebiasThreshold: 1})
	a, b := w.thread(t, "a"), w.thread(t, "b")
	churn, target := w.heap.New("cls"), w.heap.New("cls")

	// Reserve the target first so it is stamped with epoch 0.
	w.l.Lock(a, target)
	if err := w.l.Unlock(a, target); err != nil {
		t.Fatal(err)
	}
	// One revocation on the class bumps the epoch (threshold 1),
	// making the target's reservation stale.
	w.l.Lock(a, churn)
	if err := w.l.Unlock(a, churn); err != nil {
		t.Fatal(err)
	}
	w.l.Lock(b, churn)
	if err := w.l.Unlock(b, churn); err != nil {
		t.Fatal(err)
	}
	if s := w.l.Stats(); s.BulkRebiases != 1 {
		t.Fatalf("BulkRebiases = %d after the threshold revocation, want 1", s.BulkRebiases)
	}
	// The contender now finds a stale, unheld reservation: transfer.
	w.l.Lock(b, target)
	if !w.l.Biased(target) {
		t.Fatal("stale reservation was revoked instead of transferred")
	}
	if err := w.l.Unlock(b, target); err != nil {
		t.Fatal(err)
	}
	s := w.l.Stats()
	if s.BiasTransfers != 1 {
		t.Fatalf("BiasTransfers = %d, want 1", s.BiasTransfers)
	}
	// The new reservation must serve its owner's fast path.
	w.l.Lock(b, target)
	if err := w.l.Unlock(b, target); err != nil {
		t.Fatal(err)
	}
	// And the original owner must still be able to lock (revoking b's
	// current-epoch reservation conventionally).
	w.l.Lock(a, target)
	if err := w.l.Unlock(a, target); err != nil {
		t.Fatal(err)
	}
}

// TestBulkRevokeDisablesClass: past the revoke threshold the class is
// declared unbiasable and new objects of that class go straight to thin
// words.
func TestBulkRevokeDisablesClass(t *testing.T) {
	t.Parallel()
	w := newWorld(t, Options{DisableRebias: true, RevokeThreshold: 2})
	a, b := w.thread(t, "a"), w.thread(t, "b")

	for i := 0; i < 2; i++ {
		o := w.heap.New("hot")
		w.l.Lock(a, o)
		if err := w.l.Unlock(a, o); err != nil {
			t.Fatal(err)
		}
		w.l.Lock(b, o)
		if err := w.l.Unlock(b, o); err != nil {
			t.Fatal(err)
		}
	}
	s := w.l.Stats()
	if s.BulkRevokes != 1 {
		t.Fatalf("BulkRevokes = %d after %d revocations, want 1", s.BulkRevokes, s.RevocationsContention)
	}
	fresh := w.heap.New("hot")
	w.l.Lock(a, fresh)
	if w.l.Biased(fresh) {
		t.Fatal("unbiasable class still installed a reservation")
	}
	if err := w.l.Unlock(a, fresh); err != nil {
		t.Fatal(err)
	}
	// An unrelated class is unaffected.
	other := w.heap.New("cold")
	w.l.Lock(a, other)
	if !w.l.Biased(other) {
		t.Fatal("bulk revoke of one class leaked into another")
	}
	if err := w.l.Unlock(a, other); err != nil {
		t.Fatal(err)
	}
}

// TestDisableBiasDegeneratesToThin: with bias off the implementation is
// a plain thin lock and never reserves anything.
func TestDisableBiasDegeneratesToThin(t *testing.T) {
	t.Parallel()
	w := newWorld(t, Options{DisableBias: true})
	a := w.thread(t, "a")
	o := w.heap.New("obj")

	w.l.Lock(a, o)
	if w.l.Biased(o) {
		t.Fatal("reservation installed with DisableBias")
	}
	if hi := w.l.HolderIndex(o); hi != a.Index() {
		t.Fatalf("HolderIndex = %d, want %d", hi, a.Index())
	}
	if err := w.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	if s := w.l.Stats(); s.BiasInstalls != 0 {
		t.Fatalf("BiasInstalls = %d with DisableBias", s.BiasInstalls)
	}
}

// TestNames pins the Name values the registries and reports key on.
func TestNames(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		opts Options
		want string
	}{
		{Options{}, "Biased"},
		{Options{DisableRebias: true}, "Biased-norebias"},
		{Options{DisableBias: true}, "Biased-off"},
	} {
		if got := New(tc.opts).Name(); got != tc.want {
			t.Errorf("Name(%+v) = %q, want %q", tc.opts, got, tc.want)
		}
	}
}

// TestTelemetryCountsBiasEvents: with telemetry enabled the biased
// acquire and revocation counters must come out nonzero for a workload
// that exercises them. Not parallel: telemetry is process-global.
func TestTelemetryCountsBiasEvents(t *testing.T) {
	tel := telemetry.Enable(telemetry.New())
	defer telemetry.Disable()
	w := newWorld(t, Options{DisableRebias: true})
	a, b := w.thread(t, "a"), w.thread(t, "b")
	o := w.heap.New("obj")

	w.l.Lock(a, o)
	for i := 0; i < 9; i++ {
		if err := w.l.Unlock(a, o); err != nil {
			t.Fatal(err)
		}
		w.l.Lock(a, o)
	}
	if err := w.l.Unlock(a, o); err != nil {
		t.Fatal(err)
	}
	w.l.Lock(b, o)
	if err := w.l.Unlock(b, o); err != nil {
		t.Fatal(err)
	}

	if got := tel.Counter(telemetry.CtrBiasInstalls); got != 1 {
		t.Errorf("bias_installs = %d, want 1", got)
	}
	if got := tel.Counter(telemetry.CtrBiasedAcquires); got != 9 {
		t.Errorf("biased_acquires = %d, want 9", got)
	}
	if got := tel.Counter(telemetry.CtrBiasRevocationsContention); got != 1 {
		t.Errorf("bias_revocations_contention = %d, want 1", got)
	}
}
