//go:build race

package biased

// raceEnabled reports whether the race detector instruments this build;
// timing assertions are meaningless under its overhead.
const raceEnabled = true
