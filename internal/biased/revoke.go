package biased

import (
	"sync/atomic"

	"thinlock/internal/core"
	"thinlock/internal/lockprof"
	"thinlock/internal/monitor"
	"thinlock/internal/object"
	"thinlock/internal/telemetry"
	"thinlock/internal/threading"
)

// revoke tears down the reservation w (biased, not to t) on o. The
// caller re-reads the header afterwards. It reports true when the
// revocation ended with the bias transferred to t — the lock is then
// acquired at depth 1.
//
// The protocol: CAS the biased word to the revocation sentinel (owner
// index 0), which no fast path validates against, making this thread
// the word's only writer. Find the reserving thread through the
// registry and read the recursion depth it last published in its bias
// slot; that single read is the revocation's linearization point — the
// owner's Dekker discipline (publish depth, then validate the header)
// guarantees any operation the read misses will reconcile against the
// word we publish. Then rewrite the header: the owner's exact depth as
// a conventional thin word, or — when unheld — unlocked, or
// transferred to us if the reservation's epoch was stale. Finally wake
// the owner in case it is stalled mid-reconciliation.
func (l *Locker) revoke(t *threading.Thread, o *object.Object, w uint32) bool {
	misc := w & core.MiscMask
	if !o.CASHeader(w, core.BiasRevokingWord(misc)) {
		return false // lost the race to another revoker or state change
	}

	ownerIdx := core.BiasOwner(w)
	var ownerT *threading.Thread
	if reg := t.Registry(); reg != nil {
		ownerT = reg.Lookup(ownerIdx)
	}
	var depth uint64
	if ownerT != nil {
		if s := ownerT.BiasSlotFor(o.ID()); s != nil && s.Word() == w {
			depth = s.Depth() // linearization point
		}
		// A missing or mismatched slot means the reservation is a stale
		// image (the index was recycled, or the thread moved on): no
		// lock is held through it, so depth 0 is exact.
	}

	cls := l.classFor(o.Class())
	if depth == 0 && l.canTransfer(cls, o, w) {
		if s := t.ClaimBiasSlot(o.ID()); s != nil {
			nw := core.BiasedWord(t.Index(), cls.epoch.Load(), l.epochBits, misc)
			s.SetWord(nw)
			s.SetDepth(1)
			o.SetHeader(nw)
			if ownerT != nil {
				ownerT.Parker().Unpark()
			}
			l.biasTransfers.Add(1)
			telemetry.Inc(t, telemetry.CtrBiasTransfers)
			return true
		}
	}

	// Full revocation: walk the reservation to a conventional word.
	var nw uint32
	switch {
	case l.mut.RevokeOffByOne:
		// Seeded bug: the walker seeds the thin count with the owner's
		// depth instead of (depth − 1) — one phantom recursion level,
		// and an unheld reservation revokes to a held lock.
		nw = core.ThinWord(ownerIdx, uint32(depth)&core.BiasMaxThinCount, misc)
	case depth > 0:
		nw = core.ThinWord(ownerIdx, uint32(depth-1), misc)
	default:
		nw = misc // unlocked
	}
	o.SetFlagBits(FlagBiasDead) // before publishing: no re-reservation
	l.bumpClassRevocation(t, cls)
	o.SetHeader(nw)
	if ownerT != nil {
		ownerT.Parker().Unpark()
	}
	l.revContention.Add(1)
	telemetry.Inc(t, telemetry.CtrBiasRevocationsContention)
	lockprof.Revocation(t, o, lockprof.CauseContention)
	return false
}

// canTransfer reports whether an unheld reservation w on o may be
// handed to a new owner instead of being revoked: rebias enabled, the
// class still biasable, the object never force-revoked, and the
// reservation's epoch stale (the class epoch moved on since it was
// stamped).
func (l *Locker) canTransfer(cls *classBias, o *object.Object, w uint32) bool {
	if l.disableRebias || cls.unbiasable.Load() || o.Flags()&FlagBiasDead != 0 {
		return false
	}
	mask := uint32(1)<<l.epochBits - 1
	return core.BiasEpoch(w, l.epochBits) != cls.epoch.Load()&mask
}

// bumpClassRevocation feeds the class heuristics: every RebiasEvery
// revocations the class epoch bumps (bulk rebias — outstanding
// reservations become stale and transferable); at RevokeAt revocations
// the class is declared unbiasable (bulk revoke).
func (l *Locker) bumpClassRevocation(t *threading.Thread, cls *classBias) {
	n := cls.revocations.Add(1)
	if !l.disableRebias && n%l.rebiasEvery == 0 && n < l.revokeAt {
		cls.epoch.Add(1)
		l.bulkRebiases.Add(1)
		telemetry.Inc(t, telemetry.CtrBulkRebiases)
	}
	if n >= l.revokeAt && cls.unbiasable.CompareAndSwap(false, true) {
		l.bulkRevokes.Add(1)
		telemetry.Inc(t, telemetry.CtrBulkRevokes)
	}
}

// selfRevokeOverflow revokes the calling thread's own reservation
// (slot s, header word w) because the next acquisition would exceed
// the biased depth cap, inflating directly to a fat lock seeded one
// level deeper. Reports false if a concurrent revoker won the sentinel
// first (the caller retries against the new header).
func (l *Locker) selfRevokeOverflow(t *threading.Thread, o *object.Object, s *threading.BiasSlot, w uint32) bool {
	if !o.CASHeader(w, core.BiasRevokingWord(w&core.MiscMask)) {
		return false
	}
	d := s.Depth()
	o.SetFlagBits(FlagBiasDead)
	m := l.table.Allocate()
	m.SeedOwner(t, uint32(d)+1)
	s.Release()
	o.SetHeader(core.InflatedWord(m.Index(), w))
	l.revOverflow.Add(1)
	l.inflOverflow.Add(1)
	telemetry.Inc(t, telemetry.CtrBiasRevocationsOverflow)
	telemetry.Inc(t, telemetry.CtrInflationsOverflow)
	lockprof.Revocation(t, o, lockprof.CauseOverflow)
	lockprof.Inflation(t, o, lockprof.CauseOverflow)
	return true
}

// waitRevoke self-revokes the calling thread's held reservation so a
// Wait can run on a fat lock, returning the seeded monitor. It returns
// nil when a concurrent revoker walked the reservation first; the
// caller then resolves through the header (which will show a thin or
// fat lock held by t at the same depth).
func (l *Locker) waitRevoke(t *threading.Thread, o *object.Object, s *threading.BiasSlot) *monitor.Monitor {
	hp := o.HeaderAddr()
	for {
		w := atomic.LoadUint32(hp)
		if w != s.Word() {
			if core.IsBiasRevoking(w) {
				l.awaitRevocation(t, o)
				continue
			}
			// Revoked under us: the header now carries our depth
			// conventionally.
			s.Release()
			return nil
		}
		if !o.CASHeader(w, core.BiasRevokingWord(w&core.MiscMask)) {
			continue
		}
		d := s.Depth()
		o.SetFlagBits(FlagBiasDead)
		m := l.table.Allocate()
		m.SeedOwner(t, uint32(d))
		s.Release()
		o.SetHeader(core.InflatedWord(m.Index(), w))
		l.revWait.Add(1)
		l.inflWait.Add(1)
		telemetry.Inc(t, telemetry.CtrBiasRevocationsWait)
		telemetry.Inc(t, telemetry.CtrInflationsWait)
		lockprof.Revocation(t, o, lockprof.CauseWait)
		lockprof.Inflation(t, o, lockprof.CauseWait)
		return m
	}
}

// reconcileLock runs when the owner's biased Lock fast path published
// depth `intended` but found the reservation gone: a revoker walked the
// word, having read either the pre-operation or the post-operation
// depth. Wait out any in-flight sentinel, then compare the depth the
// published word carries against `intended`: equal means the revoker
// counted our acquisition (nothing to do); one short means it missed it
// (complete the acquisition with the owner's ordinary nested store).
// Reports false when the word shows the reservation was unheld and not
// granted to us — the caller must acquire conventionally. The slot is
// dead in every case.
func (l *Locker) reconcileLock(t *threading.Thread, o *object.Object, s *threading.BiasSlot, intended uint64) bool {
	l.awaitRevocation(t, o)
	defer s.Release()
	hp := o.HeaderAddr()
	w := atomic.LoadUint32(hp)
	shifted := t.Shifted()
	if !core.IsInflated(w) && !core.IsBiased(w) && w&core.TIDMask == shifted {
		held := uint64(core.ThinCount(w)) + 1
		if held+1 == intended {
			atomic.StoreUint32(hp, w+core.CountUnit)
		}
		return true
	}
	if core.IsInflated(w) {
		m := l.table.Get(core.FatIndex(w))
		if m.Owner() == t {
			if uint64(m.Count())+1 == intended {
				m.Enter(t)
			}
			return true
		}
	}
	// Revoked at depth 0: unlocked, transferred elsewhere, or already
	// re-acquired by another thread. Our acquisition was not counted.
	return false
}

// reconcileUnlock is the release-side mirror of reconcileLock: the
// owner published depth `intended` (one less than it held) and found
// the reservation gone. If the walked word still carries the
// pre-release depth, complete the release conventionally; otherwise the
// revoker already counted it. The release itself always succeeds — the
// thread demonstrably held the lock through its reservation.
func (l *Locker) reconcileUnlock(t *threading.Thread, o *object.Object, s *threading.BiasSlot, intended uint64) {
	l.awaitRevocation(t, o)
	defer s.Release()
	hp := o.HeaderAddr()
	w := atomic.LoadUint32(hp)
	shifted := t.Shifted()
	if !core.IsInflated(w) && !core.IsBiased(w) && w&core.TIDMask == shifted {
		held := uint64(core.ThinCount(w)) + 1
		if held == intended+1 {
			if held == 1 {
				atomic.StoreUint32(hp, w&core.MiscMask) // final release
			} else {
				atomic.StoreUint32(hp, w-core.CountUnit)
			}
		}
		return
	}
	if core.IsInflated(w) {
		m := l.table.Get(core.FatIndex(w))
		if m.Owner() == t && uint64(m.Count()) == intended+1 {
			m.Exit(t)
		}
		return
	}
	// The revoker observed the post-release depth: nothing left to do.
}
