package biased_test

import (
	"testing"

	"thinlock/internal/biased"
	"thinlock/internal/lockapi"
	"thinlock/internal/lockapi/conformance"
)

// TestConformance runs the shared behavioural suite against every
// biased configuration directly from this package, so `go test
// ./internal/biased/...` (the race CI job) exercises the full monitor
// semantics without needing the registry-wide conformance run.
func TestConformance(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts biased.Options
	}{
		{"Default", biased.Options{}},
		{"NoRebias", biased.Options{DisableRebias: true}},
		{"BiasOff", biased.Options{DisableBias: true}},
		{"NarrowEpoch", biased.Options{EpochBits: 1, RebiasThreshold: 1, RevokeThreshold: 3}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			conformance.Run(t, func() lockapi.Locker { return biased.New(tc.opts) })
		})
	}
}
